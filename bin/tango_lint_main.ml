(* tango_lint — enforce hot-path, domain-safety and determinism
   discipline over lib/.

   Usage: tango_lint [--json] [--sarif FILE] [--rules] [--root DIR]
                     [--cache FILE] [--baseline FILE] [--write-baseline]
                     [PATH ...]

   Exit status: 0 when nothing unwaived-and-unbaselined is found, 1
   otherwise, 2 on usage errors. Stale baseline entries also exit 1 —
   the ratchet only turns one way. Run through the dune alias
   (`dune build @lint`, sandboxed, uncached) or via `make lint`
   (incremental cache + committed baseline). *)

module Rules = Tango_lint.Rules
module Engine = Tango_lint.Engine
module Report = Tango_lint.Report
module Sarif = Tango_lint.Sarif
module Baseline = Tango_lint.Baseline

let () =
  let json = ref false in
  let list_rules = ref false in
  let sarif = ref "" in
  let cache = ref "" in
  let baseline = ref "" in
  let write_baseline = ref false in
  let roots = ref [] in
  let add_root p = roots := p :: !roots in
  let spec =
    [
      ("--json", Arg.Set json, " emit the machine-readable report instead of text");
      ("--sarif", Arg.Set_string sarif, "FILE also write a SARIF 2.1.0 report to FILE");
      ("--rules", Arg.Set list_rules, " list the rules and their rationale, then exit");
      ("--root", Arg.String add_root, "DIR directory (or file) to lint; repeatable");
      ( "--cache",
        Arg.Set_string cache,
        "FILE digest-keyed incremental summary cache (read + rewritten)" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE committed findings baseline; listed findings are grandfathered" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " rewrite the --baseline file from the current findings, then exit 0" );
    ]
  in
  let usage =
    "tango_lint [--json] [--sarif FILE] [--rules] [--cache FILE] [--baseline \
     FILE] [--write-baseline] [--root DIR] [PATH ...]"
  in
  Arg.parse (Arg.align spec) add_root usage;
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%-22s %s\n" (Rules.id r) (Rules.describe r))
      Rules.all;
    exit 0
  end;
  let opt r = match !r with "" -> None | s -> Some s in
  if !write_baseline && opt baseline = None then begin
    prerr_endline "tango_lint: --write-baseline requires --baseline FILE";
    exit 2
  end;
  let roots = match List.rev !roots with [] -> [ "lib" ] | rs -> rs in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) roots with
  | Some missing ->
      Printf.eprintf "tango_lint: no such path %S\n" missing;
      exit 2
  | None -> ());
  if !write_baseline then begin
    (* Findings are computed against an empty baseline, then recorded. *)
    let result = Engine.run ?cache_path:(opt cache) roots in
    Baseline.save ~path:!baseline result.Engine.findings;
    Printf.printf "tango_lint: baseline %s written (%d finding%s)\n" !baseline
      (List.length result.Engine.findings)
      (if List.length result.Engine.findings = 1 then "" else "s");
    exit 0
  end;
  let result =
    Engine.run ?cache_path:(opt cache) ?baseline_path:(opt baseline) roots
  in
  (match opt sarif with
  | Some path ->
      let oc = open_out_bin path in
      Sarif.render oc result.Engine.findings;
      close_out oc
  | None -> ());
  if !json then Report.json stdout result else Report.text stdout result;
  exit
    (match (result.Engine.findings, result.Engine.stale_baseline) with
    | [], [] -> 0
    | _ -> 1)
