(* tango_lint — enforce hot-path and dataplane discipline over lib/.

   Usage: tango_lint [--json] [--rules] [--root DIR] [PATH ...]

   Exit status: 0 when nothing unwaived is found, 1 otherwise, 2 on
   usage errors. Run through the dune alias: `dune build @lint`. *)

module Rules = Tango_lint.Rules
module Engine = Tango_lint.Engine
module Report = Tango_lint.Report

let () =
  let json = ref false in
  let list_rules = ref false in
  let roots = ref [] in
  let add_root p = roots := p :: !roots in
  let spec =
    [
      ("--json", Arg.Set json, " emit the machine-readable report instead of text");
      ("--rules", Arg.Set list_rules, " list the rules and their rationale, then exit");
      ("--root", Arg.String add_root, "DIR directory (or file) to lint; repeatable");
    ]
  in
  let usage = "tango_lint [--json] [--rules] [--root DIR] [PATH ...]" in
  Arg.parse (Arg.align spec) add_root usage;
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%-14s %s\n" (Rules.id r) (Rules.describe r))
      Rules.all;
    exit 0
  end;
  let roots = match List.rev !roots with [] -> [ "lib" ] | rs -> rs in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) roots with
  | Some missing ->
      Printf.eprintf "tango_lint: no such path %S\n" missing;
      exit 2
  | None -> ());
  let result = Engine.lint_paths roots in
  if !json then Report.json stdout result else Report.text stdout result;
  exit (match result.Engine.findings with [] -> 0 | _ -> 1)
