(* tango — command-line front-end for the Tango reproduction.

   Subcommands:
     tango discover  — run the Fig. 3 path-discovery procedure
     tango fig3      — both discovery directions (= experiment E1)
     tango measure   — run the measurement plane and print per-path OWD
     tango simulate  — full scenario with application traffic and a policy
     tango overlay   — plan a Tango-of-N overlay on the triangle topology
     tango faults    — run a named fault-injection scenario (lib/faults)
     tango reconcile — fault scenario with the control-plane reconciler armed
     tango throughput — multicore batched dataplane (domain lanes + batches)
     tango load      — million-flow workload engine through the batched lanes

   Every subcommand takes --metrics FILE (JSON-lines snapshot: manifest,
   counters/gauges/histograms, trace events) and --prom FILE (Prometheus
   text format); schema in EXPERIMENTS.md. *)

open Cmdliner
open Tango
module Series = Tango_telemetry.Series
module Stats = Tango_sim.Stats
module Vultr = Tango_topo.Vultr
module Obs_metric = Tango_obs.Metric
module Obs_trace = Tango_obs.Trace
module Obs_manifest = Tango_obs.Manifest
module Obs_export = Tango_obs.Export

(* ------------------------------------------------------------------ *)
(* Observability plumbing                                              *)

let metrics_arg =
  let doc =
    "Write an observability snapshot to $(docv) as JSON-lines: one manifest \
     line, one line per counter/gauge/histogram, one line per trace event \
     (schema in EXPERIMENTS.md). Also turns metric recording on for the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let prom_arg =
  let doc =
    "Write the metric snapshot to $(docv) in Prometheus text format. Also \
     turns metric recording on for the run."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

(* Run [f] with recording on when an export was requested, then write
   the snapshot plus a per-run manifest. Handles are recovered from the
   registry by name — registration is idempotent. *)
let with_obs ~experiment ~seed ~config metrics prom f =
  match (metrics, prom) with
  | None, None -> f ()
  | _ ->
      Obs_metric.reset_values ();
      Obs_trace.clear Obs_trace.default;
      Obs_metric.set_enabled true;
      let session = Obs_manifest.start ~experiment ~seed ~config () in
      f ();
      Obs_metric.set_enabled false;
      let manifest =
        Obs_manifest.finish session
          ~virtual_s:(Obs_metric.gauge_value (Obs_metric.gauge "sim_virtual_time_seconds"))
          ~sim_events:(Obs_metric.counter_value (Obs_metric.counter "sim_events_total"))
          Obs_trace.default
      in
      let snapshot = Obs_export.snapshot () in
      Option.iter
        (fun path ->
          Obs_export.write_jsonl ~manifest path snapshot;
          Printf.printf "wrote %s\n" path)
        metrics;
      Option.iter
        (fun path ->
          Obs_export.write_prometheus path snapshot;
          Printf.printf "wrote %s\n" path)
        prom

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"N" ~doc)

let duration_arg default =
  let doc = "Virtual seconds of measurement." in
  Arg.(value & opt float default & info [ "duration" ] ~docv:"SECONDS" ~doc)

let probe_arg =
  let doc = "Probe spacing in seconds (the paper used 0.01)." in
  Arg.(value & opt float 0.01 & info [ "probe-interval" ] ~docv:"SECONDS" ~doc)

let scenario_arg =
  let doc = "Enable the Fig. 4 dynamics (route change + instability)." in
  Arg.(value & flag & info [ "scenario" ] ~doc)

let policy_arg =
  let policies =
    [
      ("bgp-default", Policy.Bgp_default);
      ("static-gtt", Policy.Static 2);
      ("lowest-owd", Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 2.0 });
      ( "jitter-aware",
        Policy.Jitter_aware { beta = 5.0; hysteresis_ms = 1.0; min_dwell_s = 2.0 } );
    ]
  in
  let doc =
    Printf.sprintf "Path-selection policy: %s."
      (String.concat ", " (List.map fst policies))
  in
  Arg.(
    value
    & opt (enum policies)
        (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 2.0 })
    & info [ "policy" ] ~docv:"POLICY" ~doc)

(* ------------------------------------------------------------------ *)
(* discover                                                            *)

let discover_run seed reverse max_paths =
  let topo = Vultr.build () in
  let engine = Tango_sim.Engine.create ~seed () in
  let configure (node : Tango_topo.Topology.node) =
    if node.Tango_topo.Topology.id = Vultr.vultr_la
       || node.Tango_topo.Topology.id = Vultr.vultr_ny
    then
      { Tango_bgp.Network.no_overrides with
        neighbor_weight = Some Vultr.vultr_neighbor_weight }
    else Tango_bgp.Network.no_overrides
  in
  let net = Tango_bgp.Network.create ~configure topo engine in
  let origin, observer, name =
    if reverse then (Vultr.server_la, Vultr.server_ny, "NY -> LA")
    else (Vultr.server_ny, Vultr.server_la, "LA -> NY")
  in
  let result =
    Discovery.run ~net ~origin ~observer
      ~probe_prefix:(Tango_net.Prefix.of_string_exn "2001:db8:4c63::/48")
      ~max_paths ()
  in
  Printf.printf "direction %s: %d paths (%d BGP updates, %.1fs virtual)\n" name
    (List.length result.Discovery.paths)
    result.Discovery.messages result.Discovery.convergence_time_s;
  List.iter
    (fun (p : Discovery.path) ->
      Printf.printf "  %d %-7s floor %.1f ms  as-path [%s]  {%s}\n"
        p.Discovery.index p.Discovery.label p.Discovery.floor_owd_ms
        (Tango_bgp.As_path.to_string p.Discovery.as_path)
        (String.concat ","
           (List.map Tango_bgp.Community.to_string
              (Tango_bgp.Community.Set.elements p.Discovery.communities))))
    result.Discovery.paths

let discover seed reverse max_paths metrics prom =
  with_obs ~experiment:"discover" ~seed
    ~config:
      (Printf.sprintf "discover seed=%d reverse=%b max_paths=%d" seed reverse
         max_paths)
    metrics prom
    (fun () -> discover_run seed reverse max_paths)

let max_paths_arg =
  Arg.(value & opt int 16 & info [ "max-paths" ] ~docv:"N" ~doc:"Stop after N paths.")

let discover_cmd =
  let reverse =
    Arg.(value & flag & info [ "reverse" ] ~doc:"Discover NY -> LA instead.")
  in
  Cmd.v
    (Cmd.info "discover" ~doc:"Run the Fig. 3 iterative path discovery")
    Term.(const discover $ seed_arg $ reverse $ max_paths_arg $ metrics_arg $ prom_arg)

(* Both discovery directions in one run — experiment E1 / Figure 3. *)
let fig3 seed max_paths metrics prom =
  with_obs ~experiment:"fig3" ~seed
    ~config:(Printf.sprintf "fig3 seed=%d max_paths=%d" seed max_paths)
    metrics prom
    (fun () ->
      discover_run seed false max_paths;
      discover_run seed true max_paths)

let fig3_cmd =
  Cmd.v
    (Cmd.info "fig3"
       ~doc:"Run Fig. 3 path discovery in both directions (experiment E1)")
    Term.(const fig3 $ seed_arg $ max_paths_arg $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* measure                                                             *)

let measure seed duration probe_interval scenario csv config metrics prom =
  with_obs ~experiment:"measure" ~seed
    ~config:
      (Printf.sprintf "measure seed=%d duration=%g probe_interval=%g scenario=%b"
         seed duration probe_interval scenario)
    metrics prom
  @@ fun () ->
  let scenario =
    if scenario then Some (Tango_workload.Fig4.create ~horizon_s:duration ())
    else None
  in
  let pair, probe_interval, report_interval =
    match config with
    | None ->
        ( Pair.setup_vultr ~seed ?scenario ~clock_offset_la_ns:0L
            ~clock_offset_ny_ns:0L (),
          probe_interval, 0.1 )
    | Some path -> (
        match Config.parse_file path with
        | Error e ->
            Printf.eprintf "config error: %s\n" e;
            exit 2
        | Ok cfg -> (
            match Config.apply_vultr cfg with
            | Error e ->
                Printf.eprintf "config error: %s\n" e;
                exit 2
            | Ok pair ->
                let probe, report = Config.measurement_args cfg in
                (pair, probe, report)))
  in
  Pair.start_measurement pair ~probe_interval_s:probe_interval
    ~report_interval_s:report_interval ~for_s:duration ();
  Pair.run_for pair (duration +. 1.0);
  let print_direction name pop labels =
    Printf.printf "%s:\n  %-8s %8s %8s %8s %8s %10s\n" name "path" "mean" "min"
      "p99" "jitter" "samples";
    List.iteri
      (fun path label ->
        let s = Series.stats (Pop.inbound_owd_series pop ~path) in
        Printf.printf "  %-8s %8.2f %8.2f %8.2f %8.4f %10d\n" label
          s.Stats.mean s.Stats.min s.Stats.p99
          (Pop.inbound_jitter_ms pop ~path)
          s.Stats.n)
      labels
  in
  print_direction "NY -> LA (measured at LA)" (Pair.pop_la pair)
    (List.map (fun p -> p.Discovery.label) (Pair.paths_to_la pair));
  print_direction "LA -> NY (measured at NY)" (Pair.pop_ny pair)
    (List.map (fun p -> p.Discovery.label) (Pair.paths_to_ny pair));
  match csv with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let labels = List.map (fun p -> p.Discovery.label) (Pair.paths_to_la pair) in
      let series =
        List.mapi
          (fun path _ ->
            Series.downsample (Pop.inbound_owd_series (Pair.pop_la pair) ~path)
              ~bucket_s:1.0)
          labels
      in
      let path = Filename.concat dir "owd_ny_to_la.csv" in
      Tango_telemetry.Export.aligned_to_file path ~labels series;
      Printf.printf "wrote %s\n" path

let measure_cmd =
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Write downsampled series as CSV into DIR.")
  in
  let config =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"FILE"
          ~doc:"Load a tango.conf deployment configuration (policies, clock \
                offsets, measurement cadence).")
  in
  Cmd.v
    (Cmd.info "measure" ~doc:"Run the one-way measurement plane")
    Term.(
      const measure $ seed_arg $ duration_arg 60.0 $ probe_arg $ scenario_arg
      $ csv $ config $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate seed duration policy rate_hz metrics prom =
  with_obs ~experiment:"simulate" ~seed
    ~config:
      (Printf.sprintf "simulate seed=%d duration=%g policy=%s rate=%g" seed
         duration (Policy.spec_to_string policy) rate_hz)
    metrics prom
  @@ fun () ->
  let scenario = Tango_workload.Fig4.create ~horizon_s:duration () in
  let pair =
    Pair.setup_vultr ~seed ~scenario ~policy_ny:policy ~clock_offset_la_ns:0L
      ~clock_offset_ny_ns:0L ()
  in
  let engine = Pair.engine pair in
  let ny = Pair.pop_ny pair and la = Pair.pop_la pair in
  let t0 = Tango_sim.Engine.now engine in
  Pair.start_measurement pair ~probe_interval_s:0.02 ~for_s:duration ();
  Tango_workload.Traffic.periodic engine ~interval_s:(1.0 /. rate_hz)
    ~until_s:(t0 +. duration) (fun _ -> ignore (Pop.send_app ny ()));
  Pair.run_for pair (duration +. 1.0);
  let app = Series.stats (Pop.app_latency_series la) in
  Printf.printf
    "policy %-12s  app packets %d  mean %.2f ms  p99 %.2f ms  max %.2f ms  switches %d\n"
    (Policy.spec_to_string
       (match policy with p -> p))
    (Pop.app_received la)
    (app.Stats.mean *. 1000.0)
    (app.Stats.p99 *. 1000.0)
    (app.Stats.max *. 1000.0)
    (Pop.policy_switches ny)

let simulate_cmd =
  let rate =
    Arg.(
      value & opt float 50.0
      & info [ "rate" ] ~docv:"HZ" ~doc:"Application packet rate.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the Fig. 4 scenario with application traffic and a policy")
    Term.(
      const simulate $ seed_arg $ duration_arg 120.0 $ policy_arg $ rate
      $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* overlay                                                             *)

let overlay seed metrics prom =
  with_obs ~experiment:"overlay" ~seed
    ~config:(Printf.sprintf "overlay seed=%d" seed)
    metrics prom
  @@ fun () ->
  let topo = Overlay.Triangle.build () in
  let engine = Tango_sim.Engine.create ~seed () in
  let configure (node : Tango_topo.Topology.node) =
    if node.Tango_topo.Topology.id = Vultr.vultr_la
       || node.Tango_topo.Topology.id = Vultr.vultr_ny
    then
      { Tango_bgp.Network.no_overrides with
        neighbor_weight = Some Vultr.vultr_neighbor_weight }
    else Tango_bgp.Network.no_overrides
  in
  let net = Tango_bgp.Network.create ~configure topo engine in
  Overlay.Triangle.announce_hosts net;
  let servers = [| Vultr.server_la; Vultr.server_ny; Overlay.Triangle.server_chi |] in
  let names = [| "LA"; "NY"; "CHI" |] in
  let owd ~src ~dst =
    if src = dst then 0.0
    else
      Overlay.Triangle.static_owd_ms net ~src:servers.(src) ~dst:servers.(dst)
  in
  List.iter
    (fun (p : Overlay.plan) ->
      let route =
        match p.Overlay.route with
        | Overlay.Direct -> "direct"
        | Overlay.Relay hops ->
            "via " ^ String.concat "," (List.map (fun i -> names.(i)) hops)
      in
      Printf.printf "%-3s -> %-3s %-10s %6.1f ms (direct %.1f ms)\n"
        names.(p.Overlay.src) names.(p.Overlay.dst) route p.Overlay.owd_ms
        p.Overlay.direct_ms)
    (Overlay.plan_routes ~owd_ms:owd ~sites:3 ())

let overlay_cmd =
  Cmd.v
    (Cmd.info "overlay" ~doc:"Plan a Tango-of-N overlay (triangle topology)")
    Term.(const overlay $ seed_arg $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)

module F_spec = Tango_faults.Spec
module F_scenario = Tango_faults.Scenario
module F_inject = Tango_faults.Inject
module Ctrl = Tango_ctrl.Reconcile
module Ctrl_channel = Tango_ctrl.Channel

(* Whether the reconciler can repair what this fault breaks: it
   re-derives BGP state (routes, communities), not links or clocks. *)
let reconciler_repairs (spec : F_spec.t) =
  match spec.F_spec.kind with
  | F_spec.Bgp_withdraw | F_spec.Bgp_flap _ | F_spec.Community_drop -> true
  | F_spec.Blackhole | F_spec.Flap _ | F_spec.Brownout _
  | F_spec.Probe_starvation | F_spec.Clock_step _ | F_spec.Relay_kill
  | F_spec.Mesh_partition _ | F_spec.Relay_detour | F_spec.Relay_tamper _
  | F_spec.Relay_replay ->
      false

let faults_list () =
  Printf.printf "available fault scenarios:\n";
  Printf.printf "  %-15s %-12s %s\n" "name" "reconciler" "description";
  List.iter
    (fun (s : F_scenario.t) ->
      let reconciler =
        if List.exists reconciler_repairs s.F_scenario.specs then "repairs"
        else "no-op"
      in
      Printf.printf "  %-15s %-12s %s\n" s.F_scenario.name reconciler
        s.F_scenario.description)
    F_scenario.all

(* Recovery time, as the faults summary defines it: from the close of
   the last fault window ({!F_inject.last_off_s}) to the first app
   packet delivered at the receiver afterwards. *)
let print_recovery ~t0 ~receiver inj =
  let last_off = F_inject.last_off_s inj in
  if not (Float.is_finite last_off) then
    Printf.printf "  recovery: n/a (no fault window closed)\n"
  else
    let restored =
      Series.fold
        (Pop.app_latency_series receiver)
        ~init:None
        ~f:(fun acc ~time ~value:_ ->
          match acc with
          | Some _ -> acc
          | None -> if time >= last_off then Some (time -. last_off) else None)
    in
    match restored with
    | Some dt ->
        Printf.printf
          "  recovery: delivery restored %.3f s after last fault window \
           (t=%7.3f)\n"
          dt
          (last_off +. dt -. t0)
    | None ->
        Printf.printf
          "  recovery: delivery NOT restored after last fault window \
           (t=%7.3f)\n"
          (last_off -. t0)

let print_reconciler ~pair reconciler =
  match reconciler with
  | None -> Printf.printf "  reconciler: off\n"
  | Some r ->
      Printf.printf "  reconciler: armed (checks %d, budget %d msgs/epoch)\n"
        (Ctrl.checks r) (Ctrl.config r).Ctrl.budget_msgs;
      List.iter
        (fun dir ->
          let s = Ctrl.stats r dir in
          Printf.printf
            "    %-5s epochs %d (failed %d, truncated %d)  msgs last %d total \
             %d  last re-discovery %s  paths %d\n"
            (Ctrl.direction_to_string dir)
            s.Ctrl.epochs s.Ctrl.failed s.Ctrl.truncated s.Ctrl.last_msgs
            s.Ctrl.total_msgs
            (if Float.is_finite s.Ctrl.last_recovery_s then
               Printf.sprintf "%.3f s" s.Ctrl.last_recovery_s
             else "n/a")
            s.Ctrl.paths)
        [ Ctrl.To_ny; Ctrl.To_la ];
      (match Ctrl.channel r with
      | None -> Printf.printf "    channel: off\n"
      | Some ch ->
          List.iter
            (fun (name, pop) ->
              Printf.printf
                "    channel %-3s heartbeats sent %d received %d  peer %s  \
                 losses %d recoveries %d\n"
                name
                (Ctrl_channel.heartbeats_sent ch pop)
                (Ctrl_channel.heartbeats_received ch pop)
                (if Ctrl_channel.peer_alive ch pop then "alive" else "lost")
                (Ctrl_channel.losses ch pop)
                (Ctrl_channel.recoveries ch pop))
            [ ("LA", Pair.pop_la pair); ("NY", Pair.pop_ny pair) ])

let faults_run scenario_name seed duration backoff rate_hz with_reconciler =
  let sc = F_scenario.get scenario_name in
  let pair =
    Pair.setup_vultr ~seed
      ~readmit_backoff_s:(if backoff > 0.0 then backoff else 0.0)
      ()
  in
  let engine = Pair.engine pair in
  let la = Pair.pop_la pair and ny = Pair.pop_ny pair in
  let t0 = Tango_sim.Engine.now engine in
  Printf.printf "scenario %s: %s\n" sc.F_scenario.name sc.F_scenario.description;
  List.iter
    (fun spec -> Printf.printf "  armed: %s\n" (F_spec.to_string spec))
    sc.F_scenario.specs;
  let inj = F_inject.arm ~pair ~seed sc.F_scenario.specs in
  let reconciler =
    if with_reconciler then
      Some (Ctrl.arm ~pair ~seed ~until_s:(t0 +. duration) ())
    else None
  in
  let app_sent = ref 0 in
  Pair.start_measurement pair ~probe_interval_s:0.01 ~dead_after_probes:10
    ~for_s:duration ();
  Tango_workload.Traffic.periodic engine ~interval_s:(1.0 /. rate_hz)
    ~until_s:(t0 +. duration) (fun _ ->
      incr app_sent;
      ignore (Pop.send_app la ()));
  Pair.run_for pair (duration +. 1.0);
  Printf.printf "timeline (t relative to arming):\n";
  List.iter
    (fun (at, what) -> Printf.printf "  t=%7.3f %s\n" (at -. t0) what)
    (F_inject.timeline inj);
  let app = Series.stats (Pop.app_latency_series ny) in
  Printf.printf "summary:\n";
  Printf.printf "  faults injected %d, path switches inside fault windows %d\n"
    (F_inject.injected inj)
    (F_inject.switches_during inj);
  Printf.printf "  LA policy: switches %d, degraded episodes %d%s\n"
    (Pop.policy_switches la)
    (Policy.degraded_episodes (Pop.policy la))
    (if Pop.policy_degraded la then " (still degraded)" else "");
  Printf.printf "  NY policy: switches %d, degraded episodes %d\n"
    (Pop.policy_switches ny)
    (Policy.degraded_episodes (Pop.policy ny));
  print_reconciler ~pair reconciler;
  print_recovery ~t0 ~receiver:ny inj;
  Printf.printf "  app LA->NY: sent %d received %d  mean %.2f ms  p99 %.2f ms\n"
    !app_sent (Pop.app_received ny)
    (app.Stats.mean *. 1000.0)
    (app.Stats.p99 *. 1000.0);
  let fabric = Pair.fabric pair in
  Printf.printf "  fabric: sent %d delivered %d dropped %d\n"
    (Tango_dataplane.Fabric.sent fabric)
    (Tango_dataplane.Fabric.delivered fabric)
    (Tango_dataplane.Fabric.dropped fabric);
  Printf.printf "  LA outbound paths (peer-reported):\n";
  let labels =
    List.map (fun p -> p.Discovery.label) (Pair.paths_to_ny pair)
  in
  Array.iteri
    (fun i (s : Policy.path_stats) ->
      let label = try List.nth labels i with _ -> "?" in
      Printf.printf
        "    %d %-7s owd %8.2f ms  loss %.3f  age %6.2f s  samples %d%s\n" i
        label s.Policy.owd_ewma_ms s.Policy.loss_rate s.Policy.age_s
        s.Policy.samples
        (if
           Policy.readmit_banned (Pop.policy la) ~path:i
             ~now_s:(Tango_sim.Engine.now engine)
         then "  [banned]"
         else ""))
    (Pop.outbound_stats la)

let faults scenario_name seed duration backoff rate_hz reconcile_flag list_flag
    metrics prom =
  if list_flag then faults_list ()
  else
    with_obs ~experiment:"faults" ~seed
      ~config:
        (Printf.sprintf
           "faults scenario=%s seed=%d duration=%g backoff=%g reconcile=%b"
           scenario_name seed duration backoff reconcile_flag)
      metrics prom
      (fun () ->
        faults_run scenario_name seed duration backoff rate_hz reconcile_flag)

let scenario_name_arg default =
  Arg.(
    value & opt string default
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Named fault scenario (see --list).")

let rate_hz_arg =
  Arg.(
    value & opt float 50.0
    & info [ "rate" ] ~docv:"HZ" ~doc:"Application packet rate LA -> NY.")

let faults_cmd =
  let backoff =
    Arg.(
      value & opt float 0.5
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base re-admission backoff for flap damping (0 disables; \
             doubles per failure, capped at 30 s).")
  in
  let reconcile_flag =
    Arg.(
      value & flag
      & info [ "reconcile" ]
          ~doc:
            "Arm the control-plane reconciler (churn watch, budgeted \
             re-discovery, in-band pair channel) alongside the faults.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenarios and exit.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a named fault-injection scenario against the two-site pair")
    Term.(
      const faults $ scenario_name_arg "blackhole" $ seed_arg
      $ duration_arg 30.0 $ backoff $ rate_hz_arg $ reconcile_flag $ list_flag
      $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* reconcile                                                           *)

let reconcile_run scenario_name seed duration rate_hz budget cadence no_channel
    =
  let sc = F_scenario.get scenario_name in
  let pair = Pair.setup_vultr ~seed ~readmit_backoff_s:0.5 () in
  let engine = Pair.engine pair in
  let la = Pair.pop_la pair and ny = Pair.pop_ny pair in
  let t0 = Tango_sim.Engine.now engine in
  Printf.printf "scenario %s: %s\n" sc.F_scenario.name sc.F_scenario.description;
  List.iter
    (fun spec -> Printf.printf "  armed: %s\n" (F_spec.to_string spec))
    sc.F_scenario.specs;
  let inj = F_inject.arm ~pair ~seed sc.F_scenario.specs in
  let config =
    { Ctrl.default_config with Ctrl.budget_msgs = budget; Ctrl.cadence_s = cadence }
  in
  let reconciler =
    Ctrl.arm ~pair ~config ~seed ~with_channel:(not no_channel)
      ~until_s:(t0 +. duration) ()
  in
  let app_sent = ref 0 in
  Pair.start_measurement pair ~probe_interval_s:0.01 ~dead_after_probes:10
    ~for_s:duration ();
  Tango_workload.Traffic.periodic engine ~interval_s:(1.0 /. rate_hz)
    ~until_s:(t0 +. duration) (fun _ ->
      incr app_sent;
      ignore (Pop.send_app la ()));
  Pair.run_for pair (duration +. 1.0);
  Printf.printf "timeline (t relative to arming):\n";
  List.iter
    (fun (at, what) -> Printf.printf "  t=%7.3f %s\n" (at -. t0) what)
    (F_inject.timeline inj);
  let app = Series.stats (Pop.app_latency_series ny) in
  Printf.printf "summary:\n";
  Printf.printf "  faults injected %d\n" (F_inject.injected inj);
  print_reconciler ~pair (Some reconciler);
  print_recovery ~t0 ~receiver:ny inj;
  Printf.printf "  app LA->NY: sent %d received %d  mean %.2f ms  p99 %.2f ms\n"
    !app_sent (Pop.app_received ny)
    (app.Stats.mean *. 1000.0)
    (app.Stats.p99 *. 1000.0);
  Printf.printf "  path tables: LA->NY %d paths (epoch %d), NY->LA %d paths \
                 (epoch %d)\n"
    (List.length (Pair.paths_to_ny pair))
    (Pop.table_epoch la)
    (List.length (Pair.paths_to_la pair))
    (Pop.table_epoch ny)

let reconcile scenario_name seed duration rate_hz budget cadence no_channel
    list_flag metrics prom =
  if list_flag then faults_list ()
  else
    with_obs ~experiment:"reconcile" ~seed
      ~config:
        (Printf.sprintf
           "reconcile scenario=%s seed=%d duration=%g budget=%d cadence=%g \
            channel=%b"
           scenario_name seed duration budget cadence (not no_channel))
      metrics prom
      (fun () ->
        reconcile_run scenario_name seed duration rate_hz budget cadence
          no_channel)

let reconcile_cmd =
  let budget =
    Arg.(
      value & opt int Ctrl.default_config.Ctrl.budget_msgs
      & info [ "budget" ] ~docv:"MSGS"
          ~doc:"Hard BGP-message budget per re-discovery epoch.")
  in
  let cadence =
    Arg.(
      value & opt float Ctrl.default_config.Ctrl.cadence_s
      & info [ "cadence" ] ~docv:"SECONDS"
          ~doc:"Periodic churn-check interval.")
  in
  let no_channel =
    Arg.(
      value & flag
      & info [ "no-channel" ]
          ~doc:"Run without the in-band pair control channel.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenarios and exit.")
  in
  Cmd.v
    (Cmd.info "reconcile"
       ~doc:
         "Run a fault scenario with the control-plane reconciler armed: \
          churn detection, budgeted re-discovery and the in-band pair \
          channel")
    Term.(
      const reconcile $ scenario_name_arg "bgp-flap" $ seed_arg
      $ duration_arg 30.0 $ rate_hz_arg $ budget $ cadence $ no_channel
      $ list_flag $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* throughput                                                          *)

let throughput domains batch flows generations seed fingerprint_only metrics
    prom =
  with_obs ~experiment:"throughput" ~seed
    ~config:
      (Printf.sprintf
         "throughput domains=%d batch=%d flows=%d generations=%d seed=%d"
         domains batch flows generations seed)
    metrics prom
  @@ fun () ->
  let r = Throughput.run ~domains ~batch ~flows ~generations ~seed () in
  Throughput.print_summary ~timing:(not fingerprint_only) r

let throughput_cmd =
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Dataplane lanes, one OCaml domain each.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:"Packet-batch flush threshold, between 1 and 64.")
  in
  let flows =
    Arg.(value & opt int 512 & info [ "flows" ] ~docv:"N" ~doc:"Concurrent flows.")
  in
  let generations =
    Arg.(
      value & opt int 2000
      & info [ "generations" ] ~docv:"N"
          ~doc:"Packets per flow (one per 1 ms virtual generation).")
  in
  let fingerprint_flag =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:
            "Print only the deterministic summary (no wall-clock/pps \
             line), so runs at different --domains/--batch settings are \
             byte-comparable.")
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:
         "Run the multicore batched dataplane: flow-sharded domain lanes, \
          64-packet batches, deterministic merge")
    Term.(
      const throughput $ domains $ batch $ flows $ generations $ seed_arg
      $ fingerprint_flag $ metrics_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* load                                                                *)

module Wload = Tango_workload.Load

let load_one ~domains ~batch ~flows ~generations ~seed ~cache ~ceiling
    ~idle_gens ~fingerprint_only =
  let plan = Wload.plan (Wload.default_config ~flows ~generations ~seed ()) in
  (* --cache 0 sizes the per-lane cache to an eighth of the flow count
     (so elephants and the active edge of the wave fit while the long
     tail contends), a negative value disables the bound. *)
  let cache_capacity =
    if cache > 0 then Some cache
    else if cache = 0 then Some (max 1024 (flows / 8))
    else None
  in
  let r =
    Throughput.run ~domains ~batch ~seed ~plan ?cache_capacity
      ~tracker_ceiling:ceiling ~tracker_idle_gens:idle_gens ()
  in
  Throughput.print_load_summary ~timing:(not fingerprint_only) plan r

let load domains batch flows generations seed cache ceiling idle_gens sweep
    fingerprint_only metrics prom =
  with_obs ~experiment:"load" ~seed
    ~config:
      (Printf.sprintf
         "load domains=%d batch=%d flows=%d generations=%d seed=%d cache=%d \
          ceiling=%d idle_gens=%d sweep=%b"
         domains batch flows generations seed cache ceiling idle_gens sweep)
    metrics prom
  @@ fun () ->
  let points = if sweep then [ 1_000; 10_000; 100_000; 1_000_000 ] else [ flows ] in
  List.iter
    (fun flows ->
      load_one ~domains ~batch ~flows ~generations ~seed ~cache ~ceiling
        ~idle_gens ~fingerprint_only)
    points

let load_cmd =
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Dataplane lanes, one OCaml domain each.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:"Packet-batch flush threshold, between 1 and 64.")
  in
  let flows =
    Arg.(
      value & opt int 10_000
      & info [ "flows" ] ~docv:"N" ~doc:"Concurrent flows (ignored with --sweep).")
  in
  let generations =
    Arg.(
      value & opt int 400
      & info [ "generations" ] ~docv:"N"
          ~doc:"Workload horizon in 1 ms virtual generations.")
  in
  let cache =
    Arg.(
      value & opt int 0
      & info [ "cache" ] ~docv:"N"
          ~doc:
            "Per-lane flow-cache capacity (clock-hand eviction). 0 sizes it \
             to flows/8 (min 1024); a negative value disables the bound.")
  in
  let ceiling =
    Arg.(
      value & opt int 0
      & info [ "ceiling" ] ~docv:"N"
          ~doc:
            "Per-lane advisory ceiling on resident tracker state (0 = none); \
             the report shows the measured peak either way.")
  in
  let idle_gens =
    Arg.(
      value & opt int 0
      & info [ "idle-gens" ] ~docv:"N"
          ~doc:
            "Expire a flow's sequence tracker after it has been idle for \
             more than N virtual generations, freeing its \
             provisional-loss state (0 = aging off).")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Run the full flow-count sweep 10^3, 10^4, 10^5, 10^6.")
  in
  let fingerprint_flag =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:
            "Print only the deterministic summary (no wall-clock/pps line), \
             so repeat runs at fixed settings are byte-comparable.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive the million-flow workload engine (heavy-tailed sizes, \
          diurnal waves, RPC/bulk/CBR mix) through the batched multicore \
          dataplane")
    Term.(
      const load $ domains $ batch $ flows $ generations $ seed_arg $ cache
      $ ceiling $ idle_gens $ sweep $ fingerprint_flag $ metrics_arg
      $ prom_arg)

(* ------------------------------------------------------------------ *)
(* mesh                                                                *)

module Nmesh = Tango_mesh.Mesh

let mesh_n ~pops ~trees ~seed ~scenario ~fingerprint_only ~duration ~attest
    ~quarantine_s ~suspect_threshold =
  let specs =
    match scenario with
    | None -> []
    | Some name -> (Tango_faults.Scenario.get name).Tango_faults.Scenario.specs
  in
  let r =
    Nmesh.run ~pops ~trees ~seed ~duration_s:duration ~specs ~attest
      ~quarantine_s ~suspect_threshold ()
  in
  if fingerprint_only then
    Printf.printf "mesh pops=%d trees=%d seed=%d delivered=%d fp=%s\n"
      r.Nmesh.pops r.Nmesh.trees seed r.Nmesh.delivered r.Nmesh.fingerprint
  else begin
    Printf.printf "mesh: %d PoPs, %d edges, %d trees (diversity %.2f), %d flows\n"
      r.Nmesh.pops r.Nmesh.edges r.Nmesh.trees r.Nmesh.diversity r.Nmesh.flows;
    Printf.printf
      "traffic: sent %d delivered %d dropped %d (reroutes %d, max rotations %d)\n"
      r.Nmesh.sent r.Nmesh.delivered r.Nmesh.dropped r.Nmesh.reroutes
      r.Nmesh.max_rotations;
    if r.Nmesh.killed >= 0 then
      Printf.printf
        "relay-kill: PoP %d, %d flows affected, detect %.1f ms, recovery %.1f \
         ms, %d unrecovered, %d discoveries after fault\n"
        r.Nmesh.killed r.Nmesh.affected_flows r.Nmesh.detect_ms
        r.Nmesh.recovery_ms r.Nmesh.unrecovered r.Nmesh.discovery_after_fault
    else if r.Nmesh.misbehaving >= 0 then
      Printf.printf
        "misbehavior: %d flows transiting PoP %d, %d discoveries after onset\n"
        r.Nmesh.affected_flows r.Nmesh.misbehaving
        r.Nmesh.discovery_after_fault
    else if r.Nmesh.affected_flows > 0 then
      Printf.printf
        "partition: %d flows affected, recovery %.1f ms, %d unrecovered, %d \
         discoveries after fault\n"
        r.Nmesh.affected_flows r.Nmesh.recovery_ms r.Nmesh.unrecovered
        r.Nmesh.discovery_after_fault;
    Printf.printf
      "control: %d gossip msgs, %d hellos, convergence %.1f ms, %d distinct \
       digests\n"
      r.Nmesh.gossip_msgs r.Nmesh.hello_msgs r.Nmesh.convergence_ms
      r.Nmesh.distinct_digests;
    if r.Nmesh.attest then begin
      Printf.printf
        "attest: rejected %d (wrong-path %d truncated %d replayed %d forged \
         %d), excused %d\n"
        r.Nmesh.rejected r.Nmesh.wrong_path r.Nmesh.truncated r.Nmesh.replayed
        r.Nmesh.forged r.Nmesh.excused;
      if r.Nmesh.misbehaving >= 0 then
        Printf.printf
          "byzantine: PoP %d, first verdict %.1f ms after onset, target \
           quarantined %b\n"
          r.Nmesh.misbehaving r.Nmesh.first_verdict_ms
          r.Nmesh.quarantined_target;
      Printf.printf
        "quarantine: %d applied, %d readmitted, %d false (non-target)\n"
        r.Nmesh.quarantines r.Nmesh.readmissions r.Nmesh.false_quarantines
    end;
    Printf.printf "fingerprint: %s\n" r.Nmesh.fingerprint
  end

let mesh seed duration pops trees scenario fingerprint_only attest quarantine_s
    suspect_threshold metrics prom =
  if pops > 0 then
    with_obs ~experiment:"mesh" ~seed
      ~config:
        (Printf.sprintf "mesh pops=%d trees=%d seed=%d duration=%g" pops trees
           seed duration)
      metrics prom
    @@ fun () ->
    mesh_n ~pops ~trees ~seed ~scenario ~fingerprint_only ~duration ~attest
      ~quarantine_s ~suspect_threshold
  else
  with_obs ~experiment:"mesh" ~seed
    ~config:(Printf.sprintf "mesh seed=%d duration=%g" seed duration)
    metrics prom
  @@ fun () ->
  let m = Mesh.setup_triangle ~seed () in
  Printf.printf "three-site mesh up; measuring for %.0fs...\n%!" duration;
  Mesh.start_measurement m ~for_s:duration ();
  Mesh.run_for m (duration /. 2.0);
  Mesh.plan_routes m;
  for _ = 1 to 200 do
    Mesh.send_app m ~src:2 ~dst:0 ()
  done;
  Mesh.run_for m ((duration /. 2.0) +. 1.0);
  for src = 0 to 2 do
    for dst = 0 to 2 do
      if src <> dst then begin
        let route =
          match Mesh.route m ~src ~dst with
          | Overlay.Direct -> "direct"
          | Overlay.Relay hops ->
              "via " ^ String.concat "," (List.map (Mesh.site_name m) hops)
        in
        Printf.printf "%-3s -> %-3s %-10s measured %.1f ms\n"
          (Mesh.site_name m src) (Mesh.site_name m dst) route
          (Mesh.measured_owd_ms m ~src ~dst)
      end
    done
  done;
  let lat = Mesh.app_latency_at m ~site:0 in
  Printf.printf
    "CHI->LA app traffic: %d delivered (relayed via NY: %d), p50 %.1f ms\n"
    (Mesh.app_received_at m ~site:0)
    (Mesh.transited_at m ~site:1)
    (lat.Tango_sim.Stats.p50 *. 1000.0)

let mesh_cmd =
  let pops =
    Arg.(
      value & opt int 0
      & info [ "pops" ] ~docv:"N"
          ~doc:
            "Host an $(docv)-PoP relay mesh in one process (flat PoP-indexed \
             state, shared event heap). 0 runs the legacy three-site live \
             overlay.")
  in
  let trees =
    Arg.(
      value & opt int 3
      & info [ "trees" ] ~docv:"K"
          ~doc:"Precomputed arborescences per destination (O(1) failover).")
  in
  let scenario =
    Arg.(
      value & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Arm a mesh fault scenario (relay-kill, mesh-partition). Only \
             meaningful with --pops.")
  in
  let fingerprint_flag =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:"Print only the one-line deterministic delivery fingerprint.")
  in
  let attest_flag =
    Arg.(
      value & flag
      & info [ "attest" ]
          ~doc:
            "Verifiable forwarding: stamp per-hop digest chains, judge every \
             delivery against the committed route, and quarantine convicted \
             relays. Only meaningful with --pops.")
  in
  let quarantine_s =
    Arg.(
      value & opt float 2.0
      & info [ "quarantine-s" ] ~docv:"SECONDS"
          ~doc:
            "First quarantine duration for a convicted relay (doubles per \
             episode, capped at 60 s).")
  in
  let suspect_threshold =
    Arg.(
      value & opt int 4
      & info [ "suspect-threshold" ] ~docv:"N"
          ~doc:
            "Unlocalized bad verdicts a route intermediate accumulates before \
             it is quarantined on suspicion.")
  in
  Cmd.v
    (Cmd.info "mesh" ~doc:"Run the Tango-of-N overlay (triangle or N-PoP mesh)")
    Term.(
      const mesh $ seed_arg $ duration_arg 20.0 $ pops $ trees $ scenario
      $ fingerprint_flag $ attest_flag $ quarantine_s $ suspect_threshold
      $ metrics_arg $ prom_arg)

let () =
  let info =
    Cmd.info "tango" ~version:"1.0.0"
      ~doc:"Cooperative edge-to-edge routing (HotNets '22 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            discover_cmd;
            fig3_cmd;
            measure_cmd;
            simulate_cmd;
            overlay_cmd;
            mesh_cmd;
            faults_cmd;
            reconcile_cmd;
            throughput_cmd;
            load_cmd;
          ]))
