# Convenience wrapper around dune. `make check` is the CI gate: build,
# formatting, the full test suite, then a fast end-to-end smoke of the
# experiment harness (fig3 takes well under a second).

.PHONY: all build fmt test lint lint-json smoke obs-smoke faults-smoke reconcile-smoke throughput-smoke bench bench-json bench-compare check clean

all: build

build:
	dune build

fmt:
	dune build @fmt

test:
	dune runtest

# Static analysis: hot-path allocation / poly-compare / exception
# discipline over lib/ (rules in DESIGN.md, schema in EXPERIMENTS.md).
lint:
	dune build @lint

lint-json:
	dune exec bin/tango_lint_main.exe -- --json --root lib

smoke:
	dune exec bench/main.exe -- --experiment fig3 --no-micro

bench:
	dune exec bench/main.exe

# Machine-readable microbench results (schema in EXPERIMENTS.md).
bench-json:
	dune exec bench/main.exe -- --experiment micro --json BENCH.json

# Regression gate: fail when a fast-path benchmark slowed by >25% or a
# zero-allocation op started touching the major heap.
bench-compare: bench-json
	dune exec bench/compare.exe -- BENCH_baseline.json BENCH.json

# End-to-end observability smoke: run an experiment with --metrics and
# validate the emitted JSON-lines snapshot against the schema.
obs-smoke:
	dune exec bin/tango_cli.exe -- fig3 --metrics _build/obs_smoke.jsonl --prom _build/obs_smoke.prom > /dev/null
	dune exec test/validate_obs.exe -- _build/obs_smoke.jsonl

# Fault-injection smoke: list the scenario library, then drive a short
# blackhole run end to end (lib/faults -> Sim.Engine -> Pop/Policy).
faults-smoke:
	dune exec bin/tango_cli.exe -- faults --list > /dev/null
	dune exec bin/tango_cli.exe -- faults --scenario blackhole --duration 12 > /dev/null

# Reconciliation smoke: BGP churn with the control-plane reconciler
# armed (lib/ctrl -> churn watch, budgeted re-discovery, pair channel).
reconcile-smoke:
	dune exec bin/tango_cli.exe -- reconcile --scenario bgp-flap --duration 12 > /dev/null

# Multicore dataplane smoke: a tiny E14 run on 2 domain lanes (the
# deterministic summary prints; wall-clock rows are the only noise).
throughput-smoke:
	dune exec bench/main.exe -- --experiment throughput-scaling --domains 2 --batch 64 > /dev/null
	dune exec bin/tango_cli.exe -- throughput --domains 2 --generations 200 --fingerprint > /dev/null

check: build fmt test lint smoke obs-smoke faults-smoke reconcile-smoke throughput-smoke

clean:
	dune clean
