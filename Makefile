# Convenience wrapper around dune. `make check` is the CI gate: build,
# formatting, the full test suite, then a fast end-to-end smoke of the
# experiment harness (fig3 takes well under a second).

.PHONY: all build fmt test lint lint-fast lint-json lint-sarif lint-timed smoke obs-smoke faults-smoke reconcile-smoke throughput-smoke mesh-smoke load-smoke attest-smoke bench bench-json bench-compare check clean

all: build

build:
	dune build

fmt:
	dune build @fmt

test:
	dune runtest

# Static analysis: intraprocedural hot-path rules, the interprocedural
# hot-reach closure, domain-safety and determinism checks over lib/
# (rules in DESIGN.md §12, schemas in EXPERIMENTS.md). The dune alias
# is the hermetic form; lint-fast drives the binary directly with the
# digest-keyed incremental cache for sub-second warm runs.
lint:
	dune build @lint

LINT_FLAGS = --root lib --baseline LINT_BASELINE.json --cache _build/tango_lint_cache.json

lint-fast: build
	dune exec bin/tango_lint_main.exe -- $(LINT_FLAGS)

lint-json: build
	dune exec bin/tango_lint_main.exe -- --json $(LINT_FLAGS)

lint-sarif: build
	dune exec bin/tango_lint_main.exe -- --sarif _build/tango_lint.sarif $(LINT_FLAGS)
	@echo "SARIF written to _build/tango_lint.sarif"

# Timing guard: a warm-cache lint of the whole tree must finish in
# under 2 seconds (scale plumbing promise, DESIGN.md §12).
lint-timed: build
	dune exec bin/tango_lint_main.exe -- $(LINT_FLAGS) > /dev/null
	t0=$$(date +%s%N); \
	dune exec bin/tango_lint_main.exe -- $(LINT_FLAGS) > /dev/null; \
	t1=$$(date +%s%N); ms=$$(( (t1 - t0) / 1000000 )); \
	echo "warm lint: $${ms} ms"; \
	test $${ms} -lt 2000 || { echo "warm lint exceeded 2s budget"; exit 1; }

smoke:
	dune exec bench/main.exe -- --experiment fig3 --no-micro

bench:
	dune exec bench/main.exe

# Machine-readable microbench results (schema in EXPERIMENTS.md).
bench-json:
	dune exec bench/main.exe -- --experiment micro --json BENCH.json

# Regression gate: fail when a fast-path benchmark slowed by >25% or a
# zero-allocation op started touching the major heap.
bench-compare: bench-json
	dune exec bench/compare.exe -- BENCH_baseline.json BENCH.json

# End-to-end observability smoke: run an experiment with --metrics and
# validate the emitted JSON-lines snapshot against the schema.
obs-smoke:
	dune exec bin/tango_cli.exe -- fig3 --metrics _build/obs_smoke.jsonl --prom _build/obs_smoke.prom > /dev/null
	dune exec test/validate_obs.exe -- _build/obs_smoke.jsonl

# Fault-injection smoke: list the scenario library, then drive a short
# blackhole run end to end (lib/faults -> Sim.Engine -> Pop/Policy).
faults-smoke:
	dune exec bin/tango_cli.exe -- faults --list > /dev/null
	dune exec bin/tango_cli.exe -- faults --scenario blackhole --duration 12 > /dev/null

# Reconciliation smoke: BGP churn with the control-plane reconciler
# armed (lib/ctrl -> churn watch, budgeted re-discovery, pair channel).
reconcile-smoke:
	dune exec bin/tango_cli.exe -- reconcile --scenario bgp-flap --duration 12 > /dev/null

# Multicore dataplane smoke: a tiny E14 run on 2 domain lanes (the
# deterministic summary prints; wall-clock rows are the only noise).
throughput-smoke:
	dune exec bench/main.exe -- --experiment throughput-scaling --domains 2 --batch 64 > /dev/null
	dune exec bin/tango_cli.exe -- throughput --domains 2 --generations 200 --fingerprint > /dev/null

# Relay-mesh smoke: the E15 gates at the N=64 design point, plus a
# 16-PoP relay-kill run through the CLI (lib/mesh end to end).
mesh-smoke:
	dune exec bench/main.exe -- --experiment mesh-scaling --pops 64 --no-micro > /dev/null
	dune exec bin/tango_cli.exe -- mesh --pops 16 --scenario relay-kill --fingerprint > /dev/null

# Load-engine smoke: the E16 gates at a narrowed 20k-flow point (ratio,
# ceiling, hit-rate, fingerprint determinism), plus a CLI run with a
# tight cache and an explicit tracker ceiling (lib/workload end to end).
load-smoke:
	dune exec bench/main.exe -- --experiment load-engine --flows 20000 --no-micro > _build/load_smoke.out
	grep -c "GATE: PASS" _build/load_smoke.out | grep -qx 5
	! grep -q "GATE: FAIL" _build/load_smoke.out
	dune exec bin/tango_cli.exe -- load --domains 2 --flows 20000 --cache 1024 --ceiling 65536 --fingerprint > /dev/null

# Verifiable-forwarding smoke: the E17 gates (detection within one
# confirm cadence, intended-verdict purity, clean-sweep zero false
# quarantines, fingerprint determinism) at the 16-PoP point, plus an
# attested Byzantine run through the CLI (lib/mesh/attest end to end).
attest-smoke:
	dune exec bench/main.exe -- --experiment verifiable-forwarding --pops 16 --no-micro > _build/attest_smoke.out
	grep -c "GATE: PASS" _build/attest_smoke.out | grep -qx 4
	! grep -q "GATE: FAIL" _build/attest_smoke.out
	dune exec bin/tango_cli.exe -- mesh --pops 16 --attest --scenario relay-tamper --fingerprint > /dev/null

check: build fmt test lint smoke obs-smoke faults-smoke reconcile-smoke throughput-smoke mesh-smoke load-smoke attest-smoke

clean:
	dune clean
