# Convenience wrapper around dune. `make check` is the CI gate: build,
# formatting, the full test suite, then a fast end-to-end smoke of the
# experiment harness (fig3 takes well under a second).

.PHONY: all build fmt test lint lint-json smoke bench bench-json check clean

all: build

build:
	dune build

fmt:
	dune build @fmt

test:
	dune runtest

# Static analysis: hot-path allocation / poly-compare / exception
# discipline over lib/ (rules in DESIGN.md, schema in EXPERIMENTS.md).
lint:
	dune build @lint

lint-json:
	dune exec bin/tango_lint_main.exe -- --json --root lib

smoke:
	dune exec bench/main.exe -- --experiment fig3 --no-micro

bench:
	dune exec bench/main.exe

# Machine-readable microbench results (schema in EXPERIMENTS.md).
bench-json:
	dune exec bench/main.exe -- --experiment micro --json BENCH.json

check: build fmt test lint smoke

clean:
	dune clean
