(** Online detection of the two §5 phenomena: route-change level shifts
    and instability spike periods. *)

type event =
  | Level_shift of { at : float; before_ms : float; after_ms : float }
      (** Sustained change of the delay floor (Fig. 4 middle: +5 ms for
          ~10 min after a GTT internal route change). *)
  | Spike of { at : float; value_ms : float; baseline_ms : float }
      (** Transient excursion well above the floor (Fig. 4 right: up to
          78 ms against a 28 ms floor). *)

val pp_event : Format.formatter -> event -> unit

type t

val create :
  ?window_s:float ->
  ?shift_threshold_ms:float ->
  ?spike_threshold_ms:float ->
  ?cooldown_s:float ->
  unit ->
  t
(** [window_s] (default 5): length of each of the two adjacent comparison
    windows for level shifts. [shift_threshold_ms] (default 2): minimum
    difference of window means to report a shift. [spike_threshold_ms]
    (default 10): excursion above the older window's mean to report a
    spike. [cooldown_s] (default 30 for shifts, spikes use [window_s])
    suppresses duplicate reports of one incident. *)

val add : t -> time:float -> float -> unit
(** Feed one sample; allocation-free. Any freshly detected event is
    appended to the history read back by {!events}. *)

val event_count : t -> int
(** Events detected so far, without materializing them. *)

val events : t -> event list
(** All events so far, oldest first. Allocates; cold read side. *)
