(* Flat ring buffer of (time, value) samples in two unboxed float
   arrays — the window holds no boxed cells, so the per-sample path
   allocates nothing once the ring has grown to its steady-state size.

   Extrema are tracked by monotonic wedges (the classic sliding-window
   min/max deque): the min wedge keeps a strictly increasing run of
   values whose front is the current minimum, the max wedge a strictly
   decreasing run. Each sample enters and leaves a wedge at most once,
   so add/evict stay O(1) amortized. *)

(* A growable deque of (time, value) pairs over flat arrays. [head] is
   the index of the oldest element; elements occupy
   [head .. head+len-1] modulo capacity. *)
type ring = {
  mutable times : float array;
  mutable vals : float array;
  mutable head : int;
  mutable len : int;
}

let initial_capacity = 16

let ring_create () =
  {
    times = Array.make initial_capacity 0.0;
    vals = Array.make initial_capacity 0.0;
    head = 0;
    len = 0;
  }

let ring_grow r =
  let cap = Array.length r.times in
  let times = Array.make (2 * cap) 0.0 and vals = Array.make (2 * cap) 0.0 in
  let first = cap - r.head in
  (* Unroll the wrap so the live elements start at index 0. *)
  Array.blit r.times r.head times 0 first;
  Array.blit r.times 0 times first (r.len - first);
  Array.blit r.vals r.head vals 0 first;
  Array.blit r.vals 0 vals first (r.len - first);
  r.times <- times;
  r.vals <- vals;
  r.head <- 0

let[@hot] ring_push_back r ~time v =
  if r.len = Array.length r.times then ring_grow r;
  let i = (r.head + r.len) land (Array.length r.times - 1) in
  r.times.(i) <- time;
  r.vals.(i) <- v;
  r.len <- r.len + 1

let[@hot] ring_front_time r = r.times.(r.head)

let[@hot] ring_front_value r = r.vals.(r.head)

let[@hot] ring_pop_front r =
  r.head <- (r.head + 1) land (Array.length r.times - 1);
  r.len <- r.len - 1

let[@hot] ring_back_value r =
  r.vals.((r.head + r.len - 1) land (Array.length r.times - 1))

let[@hot] ring_pop_back r = r.len <- r.len - 1

(* The running aggregates live in a flat float array rather than mutable
   record fields: a mixed record boxes every float store, which would
   put two allocations back on the per-sample path. *)
let sum_ix = 0

let sum_sq_ix = 1

let last_time_ix = 2

type t = {
  window_s : float;
  samples : ring;
  min_wedge : ring;  (* values strictly increasing; front = window min *)
  max_wedge : ring;  (* values strictly decreasing; front = window max *)
  acc : float array;  (* sum, sum_sq, last_time *)
}

let create ~window_s =
  if window_s <= 0.0 then invalid_arg "Rolling.create: non-positive window";
  {
    window_s;
    samples = ring_create ();
    min_wedge = ring_create ();
    max_wedge = ring_create ();
    acc = [| 0.0; 0.0; neg_infinity |];
  }

let[@hot] evict t ~now =
  let cutoff = now -. t.window_s in
  while t.samples.len > 0 && ring_front_time t.samples < cutoff do
    let v = ring_front_value t.samples in
    ring_pop_front t.samples;
    t.acc.(sum_ix) <- t.acc.(sum_ix) -. v;
    t.acc.(sum_sq_ix) <- t.acc.(sum_sq_ix) -. (v *. v)
  done;
  while t.min_wedge.len > 0 && ring_front_time t.min_wedge < cutoff do
    ring_pop_front t.min_wedge
  done;
  while t.max_wedge.len > 0 && ring_front_time t.max_wedge < cutoff do
    ring_pop_front t.max_wedge
  done

let[@hot] add t ~time value =
  if time < t.acc.(last_time_ix) then
    invalid_arg "Rolling.add: time went backwards";
  t.acc.(last_time_ix) <- time;
  ring_push_back t.samples ~time value;
  t.acc.(sum_ix) <- t.acc.(sum_ix) +. value;
  t.acc.(sum_sq_ix) <- t.acc.(sum_sq_ix) +. (value *. value);
  (* A new sample dominates every older one that is no more extreme; it
     also outlives them, so those can never be the extremum again. *)
  while t.min_wedge.len > 0 && ring_back_value t.min_wedge >= value do
    ring_pop_back t.min_wedge
  done;
  ring_push_back t.min_wedge ~time value;
  while t.max_wedge.len > 0 && ring_back_value t.max_wedge <= value do
    ring_pop_back t.max_wedge
  done;
  ring_push_back t.max_wedge ~time value;
  evict t ~now:time

let count t = t.samples.len

let mean t =
  let n = count t in
  if n = 0 then nan else t.acc.(sum_ix) /. float_of_int n

let stddev t =
  let n = count t in
  if n < 2 then 0.0
  else begin
    let nf = float_of_int n in
    let variance =
      (t.acc.(sum_sq_ix) /. nf) -. ((t.acc.(sum_ix) /. nf) ** 2.0)
    in
    sqrt (Float.max 0.0 variance)
  end

let min_value t = if t.min_wedge.len = 0 then infinity else ring_front_value t.min_wedge

let max_value t =
  if t.max_wedge.len = 0 then neg_infinity else ring_front_value t.max_wedge

let window_s t = t.window_s
