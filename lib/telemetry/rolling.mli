(** Rolling time-window statistics over a live stream.

    Maintains mean/stddev/extrema of the samples whose timestamps lie
    within the trailing window, in O(1) amortized per sample. Samples
    live in a flat ring buffer (two unboxed float arrays), so the
    steady-state per-sample path allocates nothing. This is the
    primitive behind the paper's jitter metric ("the mean standard
    deviation of a 1-second rolling window", §5). *)

type t

val create : window_s:float -> t
(** Raises [Invalid_argument] on a non-positive window. *)

val add : t -> time:float -> float -> unit
(** Feed a sample; samples older than [time - window] are evicted.
    Times must be non-decreasing. *)

val count : t -> int
val mean : t -> float
(** [nan] when the window is empty. *)

val stddev : t -> float
(** Population stddev of the current window; [0.] with < 2 samples. *)

val min_value : t -> float
(** Smallest sample currently in the window, tracked incrementally by a
    monotonic wedge — O(1) per read, O(1) amortized per sample.
    [infinity] when empty. *)

val max_value : t -> float
(** Largest sample currently in the window; same cost model as
    {!min_value}. [neg_infinity] when empty. *)

val window_s : t -> float
