type event =
  | Level_shift of { at : float; before_ms : float; after_ms : float }
  | Spike of { at : float; value_ms : float; baseline_ms : float }

let pp_event ppf = function
  | Level_shift { at; before_ms; after_ms } ->
      Format.fprintf ppf "level shift at %.1fs: %.2fms -> %.2fms" at before_ms
        after_ms
  | Spike { at; value_ms; baseline_ms } ->
      Format.fprintf ppf "spike at %.1fs: %.2fms (baseline %.2fms)" at value_ms
        baseline_ms

(* Detection runs on the per-reception hot path (one [add] per data
   packet), so the sample delay line and the event history are flat
   parallel arrays grown cold on overflow — no queues, no boxed
   tuples, no option results. Constructed [event] values exist only on
   the cold read side ({!events}). *)

(* Event history slots: kind tag + three payload floats. *)
let ev_shift = 0

let ev_spike = 1

type t = {
  older : Rolling.t;  (* window [t-2w, t-w], approximated by delayed feed *)
  recent : Rolling.t;
  (* Delay line: samples waiting to age into [older]; flat ring indexed
     by [buf_head .. buf_head + buf_len - 1] modulo capacity. *)
  mutable buf_times : floatarray;
  mutable buf_values : floatarray;
  mutable buf_head : int;
  mutable buf_len : int;
  window_s : float;
  shift_threshold_ms : float;
  spike_threshold_ms : float;
  cooldown_s : float;
  mutable last_shift_at : float;
  mutable last_spike_at : float;
  (* Event history, oldest first, flat: kind tag plus (at, a, b) where
     (a, b) is (before, after) for shifts and (value, baseline) for
     spikes. *)
  mutable ev_kinds : int array;
  mutable ev_at : floatarray;
  mutable ev_a : floatarray;
  mutable ev_b : floatarray;
  mutable ev_count : int;
}

let create ?(window_s = 5.0) ?(shift_threshold_ms = 2.0)
    ?(spike_threshold_ms = 10.0) ?(cooldown_s = 30.0) () =
  {
    older = Rolling.create ~window_s;
    recent = Rolling.create ~window_s;
    buf_times = Float.Array.make 64 0.0;
    buf_values = Float.Array.make 64 0.0;
    buf_head = 0;
    buf_len = 0;
    window_s;
    shift_threshold_ms;
    spike_threshold_ms;
    cooldown_s;
    last_shift_at = neg_infinity;
    last_spike_at = neg_infinity;
    ev_kinds = Array.make 16 0;
    ev_at = Float.Array.make 16 0.0;
    ev_a = Float.Array.make 16 0.0;
    ev_b = Float.Array.make 16 0.0;
    ev_count = 0;
  }

(* Cold: double the delay ring, unwrapping the live span to the front. *)
let grow_buffer t =
  let cap = Float.Array.length t.buf_times in
  let times = Float.Array.make (2 * cap) 0.0 in
  let values = Float.Array.make (2 * cap) 0.0 in
  for i = 0 to t.buf_len - 1 do
    let src = (t.buf_head + i) mod cap in
    Float.Array.set times i (Float.Array.get t.buf_times src);
    Float.Array.set values i (Float.Array.get t.buf_values src)
  done;
  t.buf_times <- times;
  t.buf_values <- values;
  t.buf_head <- 0

(* Cold: double the event history arrays. *)
let grow_events t =
  let cap = Array.length t.ev_kinds in
  let kinds = Array.make (2 * cap) 0 in
  Array.blit t.ev_kinds 0 kinds 0 t.ev_count;
  let at = Float.Array.make (2 * cap) 0.0 in
  Float.Array.blit t.ev_at 0 at 0 t.ev_count;
  let a = Float.Array.make (2 * cap) 0.0 in
  Float.Array.blit t.ev_a 0 a 0 t.ev_count;
  let b = Float.Array.make (2 * cap) 0.0 in
  Float.Array.blit t.ev_b 0 b 0 t.ev_count;
  t.ev_kinds <- kinds;
  t.ev_at <- at;
  t.ev_a <- a;
  t.ev_b <- b

let push_event t ~kind ~at ~a ~b =
  if t.ev_count >= Array.length t.ev_kinds then grow_events t;
  let i = t.ev_count in
  t.ev_kinds.(i) <- kind;
  Float.Array.set t.ev_at i at;
  Float.Array.set t.ev_a i a;
  Float.Array.set t.ev_b i b;
  t.ev_count <- i + 1

let[@hot] add t ~time value =
  (* Samples flow into [recent] immediately and into [older] once they
     are a window old, so the two windows cover adjacent spans. *)
  Rolling.add t.recent ~time value;
  if t.buf_len >= Float.Array.length t.buf_times then grow_buffer t;
  let cap = Float.Array.length t.buf_times in
  let slot = (t.buf_head + t.buf_len) mod cap in
  Float.Array.set t.buf_times slot time;
  Float.Array.set t.buf_values slot value;
  t.buf_len <- t.buf_len + 1;
  let horizon = time -. t.window_s in
  let continue = ref true in
  while !continue && t.buf_len > 0 do
    let ts = Float.Array.get t.buf_times t.buf_head in
    if ts <= horizon then begin
      Rolling.add t.older ~time:ts (Float.Array.get t.buf_values t.buf_head);
      t.buf_head <- (t.buf_head + 1) mod cap;
      t.buf_len <- t.buf_len - 1
    end
    else continue := false
  done;
  let baseline = Rolling.mean t.older in
  if Rolling.count t.older >= 10 && not (Float.is_nan baseline) then
    if
      value -. baseline > t.spike_threshold_ms
      && time -. t.last_spike_at > t.window_s
    then begin
      t.last_spike_at <- time;
      push_event t ~kind:ev_spike ~at:time ~a:value ~b:baseline
    end
    else begin
      let recent_mean = Rolling.mean t.recent in
      if
        Rolling.count t.recent >= 10
        && (not (Float.is_nan recent_mean))
        && abs_float (recent_mean -. baseline) > t.shift_threshold_ms
        && time -. t.last_shift_at > t.cooldown_s
      then begin
        t.last_shift_at <- time;
        push_event t ~kind:ev_shift ~at:time ~a:baseline ~b:recent_mean
      end
    end

let event_count t = t.ev_count

let events t =
  let out = ref [] in
  for i = t.ev_count - 1 downto 0 do
    let at = Float.Array.get t.ev_at i in
    let a = Float.Array.get t.ev_a i in
    let b = Float.Array.get t.ev_b i in
    let e =
      if t.ev_kinds.(i) = ev_spike then
        Spike { at; value_ms = a; baseline_ms = b }
      else Level_shift { at; before_ms = a; after_ms = b }
    in
    out := e :: !out
  done;
  !out
