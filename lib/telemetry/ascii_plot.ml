type t = { label : string; glyph : char; series : Series.t }

let span items =
  List.fold_left
    (fun (lo, hi) item ->
      match (Series.first_time item.series, Series.last_time item.series) with
      | Some a, Some b -> (Float.min lo a, Float.max hi b)
      | _ -> (lo, hi))
    (infinity, neg_infinity) items

let render ?(width = 72) ?(height = 16) ?t0 ?t1 ?title items =
  if List.is_empty items then invalid_arg "Ascii_plot.render: no series";
  if width < 8 || height < 2 then invalid_arg "Ascii_plot.render: canvas too small";
  let auto_lo, auto_hi = span items in
  let t0 = match t0 with Some v -> v | None -> auto_lo in
  let t1 = match t1 with Some v -> v | None -> auto_hi in
  if not (Float.is_finite t0 && Float.is_finite t1 && t1 > t0) then
    invalid_arg "Ascii_plot.render: empty or invalid time range";
  (* Column-average every series over the canvas grid. *)
  let columns item =
    let sums = Array.make width 0.0 and counts = Array.make width 0 in
    Series.iter item.series (fun ~time ~value ->
        if time >= t0 && time <= t1 then begin
          let column =
            min (width - 1)
              (int_of_float (float_of_int width *. (time -. t0) /. (t1 -. t0)))
          in
          sums.(column) <- sums.(column) +. value;
          counts.(column) <- counts.(column) + 1
        end);
    Array.init width (fun i ->
        if counts.(i) = 0 then None else Some (sums.(i) /. float_of_int counts.(i)))
  in
  let all_columns = List.map (fun item -> (item, columns item)) items in
  let v_lo, v_hi =
    List.fold_left
      (fun acc (_, cols) ->
        Array.fold_left
          (fun (lo, hi) cell ->
            match cell with
            | Some v -> (Float.min lo v, Float.max hi v)
            | None -> (lo, hi))
          acc cols)
      (infinity, neg_infinity) all_columns
  in
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  (match title with
  | Some s -> Buffer.add_string buf (Printf.sprintf "%s\n" s)
  | None -> ());
  if not (Float.is_finite v_lo) then begin
    Buffer.add_string buf "  (no data in range)\n";
    Buffer.contents buf
  end
  else begin
    let v_hi = if v_hi = v_lo then v_lo +. 1.0 else v_hi in
    let canvas = Array.make_matrix height width ' ' in
    List.iter
      (fun (item, cols) ->
        Array.iteri
          (fun x cell ->
            match cell with
            | None -> ()
            | Some v ->
                let y =
                  int_of_float
                    ((v -. v_lo) /. (v_hi -. v_lo) *. float_of_int (height - 1))
                in
                let row = height - 1 - min (height - 1) (max 0 y) in
                canvas.(row).(x) <- item.glyph)
          cols)
      all_columns;
    for row = 0 to height - 1 do
      let axis_value = v_hi -. (float_of_int row /. float_of_int (height - 1) *. (v_hi -. v_lo)) in
      let label =
        if row = 0 || row = height - 1 || row = height / 2 then
          Printf.sprintf "%8.1f |" axis_value
        else "         |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun x -> canvas.(row).(x)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
    let left = Printf.sprintf "%.1fs" t0 and right = Printf.sprintf "%.1fs" t1 in
    let gap = max 1 (width - String.length left - String.length right) in
    Buffer.add_string buf
      (Printf.sprintf "          %s%s%s\n" left (String.make gap ' ') right);
    Buffer.add_string buf "          ";
    List.iter
      (fun (item, cols) ->
        let has_data = Array.exists Option.is_some cols in
        Buffer.add_string buf
          (Printf.sprintf "%c=%s%s  " item.glyph item.label
             (if has_data then "" else " (no data)")))
      all_columns;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let render_to_channel oc ?width ?height ?t0 ?t1 ?title items =
  output_string oc (render ?width ?height ?t0 ?t1 ?title items)
