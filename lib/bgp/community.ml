type t = int * int

let v upper lower =
  let check name x =
    if x < 0 || x > 0xFFFF then
      invalid_arg (Printf.sprintf "Community.v: %s half %d out of range" name x)
  in
  check "upper" upper;
  check "lower" lower;
  (upper, lower)

let compare (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let equal a b = compare a b = 0

let to_string (a, b) = Printf.sprintf "%d:%d" a b

let of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "missing ':' in community %S" s)
  | Some i -> (
      let upper = String.sub s 0 i in
      let lower = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt upper, int_of_string_opt lower) with
      | Some a, Some b when a >= 0 && a <= 0xFFFF && b >= 0 && b <= 0xFFFF ->
          Ok (a, b)
      | _ -> Error (Printf.sprintf "invalid community %S" s))

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

type action =
  | No_export_to of int
  | Export_only_to of int
  | Prepend_to of int * int
  | No_export_transit

(* Namespaces modelled on Vultr's AS20473 guide: 64600:asn "do not
   announce to asn", 64601:asn "announce only to asn", 6460n:asn
   (n=2..4) "prepend n-1 times to asn", 20473:6001 "do not announce to
   any transit". Neighbor ASNs above 65535 cannot ride in the lower half
   of a classic community; all transit ASNs in our scenarios fit. *)
let ns_no_export = 64600

let ns_export_only = 64601

let ns_prepend_base = 64601 (* 64602 = prepend 1, 64603 = 2, 64604 = 3 *)

let no_export_transit_comm = (20473, 6001)

let action_to_community = function
  | No_export_to asn -> v ns_no_export asn
  | Export_only_to asn -> v ns_export_only asn
  | Prepend_to (asn, n) ->
      if n < 1 || n > 3 then
        invalid_arg "Community.action_to_community: prepend count must be 1-3";
      v (ns_prepend_base + n + 1) asn
  | No_export_transit -> no_export_transit_comm

let action_of_community (upper, lower) =
  if equal (upper, lower) no_export_transit_comm then Some No_export_transit
  else if upper = ns_no_export then Some (No_export_to lower)
  else if upper = ns_export_only then Some (Export_only_to lower)
  else if upper >= ns_prepend_base + 2 && upper <= ns_prepend_base + 4 then
    Some (Prepend_to (lower, upper - ns_prepend_base - 1))
  else None

let actions_of_set set =
  Set.fold
    (fun c acc -> match action_of_community c with Some a -> a :: acc | None -> acc)
    set []
  |> List.rev

let no_export_well_known = (65535, 65281)
