module Topology = Tango_topo.Topology
module Engine = Tango_sim.Engine
module Prefix = Tango_net.Prefix

type overrides = {
  allowas_in : bool option;
  interprets_actions : bool option;
  remove_private_on_export : bool option;
  neighbor_weight : (int -> int) option;
  neighbor_local_pref : (int -> int option) option;
}

let no_overrides =
  {
    allowas_in = None;
    interprets_actions = None;
    remove_private_on_export = None;
    neighbor_weight = None;
    neighbor_local_pref = None;
  }

type t = {
  topo : Topology.t;
  engine : Engine.t;
  speakers : (int, Speaker.t) Hashtbl.t;
  processing_delay_s : float;
  mrai_s : float;
  (* Per-session MRAI state: when a session last sent, what is queued
     (latest update per prefix wins), and whether a flush is armed. *)
  last_sent : (int * int, float) Hashtbl.t;
  pending : (int * int, (Prefix.t, Update.t) Hashtbl.t) Hashtbl.t;
  flush_armed : (int * int, unit) Hashtbl.t;
  mutable messages : int;
  (* Monotone table-state stamp: bumped on every origination, withdrawal
     and delivered update, i.e. whenever any loc-RIB may have changed.
     Derived read-side caches (the fabric's batched route cache) compare
     it to decide whether their resolved routes are still current;
     over-counting is harmless, missing a change is not. *)
  mutable revision : int;
  (* Table-observation hooks: fired synchronously whenever a node
     (re-)originates or withdraws a prefix — the event source behind
     event-driven reconciliation checks. Empty by default, so the
     origination path costs nothing extra. *)
  mutable origin_listeners : (node:int -> Prefix.t -> unit) list;
}

let asn_shared topo asn =
  let count = ref 0 in
  List.iter
    (fun (n : Topology.node) -> if n.asn = asn then incr count)
    (Topology.nodes topo);
  !count > 1

let has_private_customer topo node_id =
  List.exists
    (fun c -> (Topology.node topo c).Topology.private_asn)
    (Topology.customers topo node_id)

let create ?(processing_delay_s = 0.05) ?(mrai_s = 0.0)
    ?(configure = fun _ -> no_overrides) topo engine =
  let t =
    {
      topo;
      engine;
      speakers = Hashtbl.create 64;
      processing_delay_s;
      mrai_s;
      last_sent = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      flush_armed = Hashtbl.create 64;
      messages = 0;
      revision = 0;
      origin_listeners = [];
    }
  in
  List.iter
    (fun (node : Topology.node) ->
      let ov = configure node in
      let dfl v = function Some x -> x | None -> v in
      let provider_side = has_private_customer topo node.id in
      let speaker =
        Speaker.create ~node_id:node.id ~asn:node.asn
          ~allowas_in:(dfl (asn_shared topo node.asn) ov.allowas_in)
          ~remove_private_on_export:(dfl provider_side ov.remove_private_on_export)
          ~interprets_actions:(dfl provider_side ov.interprets_actions)
          ()
      in
      List.iter
        (fun (peer_id, rel, _link) ->
          let weight =
            match ov.neighbor_weight with Some f -> f peer_id | None -> 0
          in
          let import_local_pref =
            match ov.neighbor_local_pref with
            | Some f -> f peer_id
            | None -> None
          in
          Speaker.add_neighbor speaker ~node_id:peer_id
            ~asn:(Topology.asn topo peer_id) ~rel ~weight ?import_local_pref ())
        (Topology.neighbors topo node.id);
      Hashtbl.replace t.speakers node.id speaker)
    (Topology.nodes topo);
  t

let topology t = t.topo

let engine t = t.engine

let speaker t node_id =
  match Hashtbl.find_opt t.speakers node_id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Network.speaker: unknown node %d" node_id)

let session_delay t a b =
  let link_delay =
    match Topology.link t.topo a b with
    | Some l -> l.Tango_topo.Link.delay_ms /. 1000.0
    | None -> 0.0
  in
  link_delay +. t.processing_delay_s

let prefix_of_update = function
  | Update.Announce r -> r.Route.prefix
  | Update.Withdraw p -> p

let rec dispatch t ~from_node (emissions : Update.emission list) =
  List.iter
    (fun { Update.to_node; update } -> submit t from_node to_node update)
    emissions

and submit t from_node to_node update =
  if t.mrai_s <= 0.0 then transmit t from_node to_node update
  else begin
    let key = (from_node, to_node) in
    let now = Engine.now t.engine in
    let last =
      Option.value ~default:neg_infinity (Hashtbl.find_opt t.last_sent key)
    in
    if now -. last >= t.mrai_s then begin
      Hashtbl.replace t.last_sent key now;
      transmit t from_node to_node update
    end
    else begin
      (* Coalesce: only the most recent update per prefix survives. *)
      let queue =
        match Hashtbl.find_opt t.pending key with
        | Some q -> q
        | None ->
            let q = Hashtbl.create 4 in
            Hashtbl.replace t.pending key q;
            q
      in
      Hashtbl.replace queue (prefix_of_update update) update;
      if not (Hashtbl.mem t.flush_armed key) then begin
        Hashtbl.replace t.flush_armed key ();
        Engine.schedule_at t.engine ~time:(last +. t.mrai_s) (fun _ ->
            Hashtbl.remove t.flush_armed key;
            Hashtbl.replace t.last_sent key (Engine.now t.engine);
            match Hashtbl.find_opt t.pending key with
            | Some q ->
                Hashtbl.remove t.pending key;
                (* Flush in prefix order: transmit schedules events, and
                   event identity must not inherit Hashtbl hash order. *)
                Hashtbl.fold (fun p u acc -> (p, u) :: acc) q []
                |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)
                |> List.iter (fun (_, u) -> transmit t from_node to_node u)
            | None -> ())
      end
    end
  end

and transmit t from_node to_node update =
  let delay = session_delay t from_node to_node in
  Engine.schedule t.engine ~delay (fun _engine ->
      t.messages <- t.messages + 1;
      t.revision <- t.revision + 1;
      let receiver = speaker t to_node in
      let next = Speaker.receive receiver ~from_node update in
      dispatch t ~from_node:to_node next)

let notify_origin t ~node prefix =
  List.iter (fun f -> f ~node prefix) t.origin_listeners

let add_origin_listener t f = t.origin_listeners <- t.origin_listeners @ [ f ]

let announce t ~node prefix ?communities ?poison () =
  let s = speaker t node in
  let emissions = Speaker.originate s prefix ?communities ?poison () in
  t.revision <- t.revision + 1;
  dispatch t ~from_node:node emissions;
  notify_origin t ~node prefix

let withdraw t ~node prefix =
  let s = speaker t node in
  t.revision <- t.revision + 1;
  dispatch t ~from_node:node (Speaker.withdraw_origin s prefix);
  notify_origin t ~node prefix

let converge ?(timeout_s = 3600.0) t =
  let start = Engine.now t.engine in
  Engine.run ~until:(start +. timeout_s) t.engine;
  Engine.now t.engine -. start

let best_route t ~node prefix = Speaker.best (speaker t node) prefix

let as_path t ~node prefix =
  Option.map (fun (r : Route.t) -> r.Route.path) (best_route t ~node prefix)

let route_for_addr t ~node addr =
  let rib = Speaker.loc_rib (speaker t node) in
  List.fold_left
    (fun acc (prefix, route) ->
      if Prefix.mem prefix addr then
        match acc with
        | Some (best_prefix, _) when Prefix.length best_prefix >= Prefix.length prefix ->
            acc
        | Some _ | None -> Some (prefix, route)
      else acc)
    None rib
  |> Option.map snd

let forwarding_path t ~from_node addr =
  let rec walk node acc hops =
    if hops > 64 then None
    else begin
      match route_for_addr t ~node addr with
      | None -> None
      | Some route ->
          if Route.local route then Some (List.rev (node :: acc))
          else begin
            match route.Route.learned_from with
            | None -> Some (List.rev (node :: acc))
            | Some next -> walk next (node :: acc) (hops + 1)
          end
    end
  in
  walk from_node [] 0

let messages_delivered t = t.messages

let revision t = t.revision

let residual_nodes t prefix =
  Hashtbl.fold
    (fun node_id speaker acc ->
      if Speaker.residual speaker prefix then node_id :: acc else acc)
    t.speakers []
  |> List.sort Int.compare
