(** Event-driven BGP over a topology.

    One {!Speaker.t} per topology node; updates travel over the inter-AS
    links with the link's propagation delay plus a per-update processing
    delay, through the shared discrete-event {!Tango_sim.Engine.t}. With
    Gao–Rexford-consistent policies the system always converges (the
    event queue drains), at which point routes and AS-level forwarding
    paths can be queried. *)

type overrides = {
  allowas_in : bool option;
  interprets_actions : bool option;
  remove_private_on_export : bool option;
  neighbor_weight : (int -> int) option;  (** Neighbor node id -> weight. *)
  neighbor_local_pref : (int -> int option) option;
}

val no_overrides : overrides

type t

val create :
  ?processing_delay_s:float ->
  ?mrai_s:float ->
  ?configure:(Tango_topo.Topology.node -> overrides) ->
  Tango_topo.Topology.t ->
  Tango_sim.Engine.t ->
  t
(** Build speakers for every node. Defaults derived from the topology:
    [allowas_in] when the node's ASN appears on several nodes;
    [interprets_actions] and [remove_private_on_export] when the node has
    a private-ASN customer (i.e. it is the provider whose community guide
    the Tango servers follow). [processing_delay_s] (default 0.05) is
    added to the link delay for each update delivery. *)

val topology : t -> Tango_topo.Topology.t
val engine : t -> Tango_sim.Engine.t
val speaker : t -> int -> Speaker.t
(** Raises [Invalid_argument] for unknown node ids. *)

val announce :
  t ->
  node:int ->
  Tango_net.Prefix.t ->
  ?communities:Community.Set.t ->
  ?poison:int list ->
  unit ->
  unit
(** Originate (or re-originate) a prefix at a node; propagation is
    scheduled on the engine — call {!converge} to let it settle. *)

val withdraw : t -> node:int -> Tango_net.Prefix.t -> unit

val converge : ?timeout_s:float -> t -> float
(** Run the engine until no BGP work remains (or the timeout elapses);
    returns the virtual time consumed. *)

val best_route : t -> node:int -> Tango_net.Prefix.t -> Route.t option

val as_path : t -> node:int -> Tango_net.Prefix.t -> As_path.t option
(** AS path of the selected route at the node. *)

val route_for_addr : t -> node:int -> Tango_net.Addr.t -> Route.t option
(** Longest-prefix-match over the node's loc-RIB. *)

val forwarding_path : t -> from_node:int -> Tango_net.Addr.t -> int list option
(** Node-id path data packets follow from [from_node] to the address's
    originator, by chaining per-node best routes. [None] when the address
    is unroutable somewhere along the way; loops (impossible under sane
    policy) are cut after 64 hops and reported as [None]. *)

val messages_delivered : t -> int
(** Total BGP updates delivered since creation (churn / convergence
    cost metric). *)

val revision : t -> int
(** Monotone stamp of loc-RIB state: bumped on every origination,
    withdrawal and delivered update. Read-side route caches (the
    fabric's batched fast path) revalidate against it — equal revision
    means no table anywhere has changed since the cache was filled.
    May over-count (bumps with no visible best-route change); it never
    under-counts. *)

(** {1 Table observation hooks}

    Control-plane reconciliation ({!Tango_ctrl}) watches the network for
    churn: a listener fires synchronously each time any node originates,
    re-originates or withdraws a prefix (including the fault engine's
    BGP faults), and {!residual_nodes} audits per-prefix table state. *)

val add_origin_listener : t -> (node:int -> Tango_net.Prefix.t -> unit) -> unit
(** Register a callback invoked on every {!announce}/{!withdraw}, with
    the originating node and the prefix. Listeners run synchronously in
    registration order; exceptions propagate to the caller of the
    origination. *)

val residual_nodes : t -> Tango_net.Prefix.t -> int list
(** Sorted node ids whose speaker still holds {e any} state for
    [prefix] (adj-RIB-in, loc-RIB, adj-RIB-out or an origination) — []
    once the prefix has been fully withdrawn and propagated. *)
