module Relationship = Tango_topo.Relationship
module Prefix = Tango_net.Prefix

type neighbor = {
  node_id : int;
  asn : int;
  rel : Relationship.t;
  weight : int;
  import_local_pref : int option;
}

type origination = { communities : Community.Set.t; poison : int list }

type t = {
  node_id : int;
  asn : int;
  allowas_in : bool;
  remove_private_on_export : bool;
  interprets_actions : bool;
  mutable neighbor_list : neighbor list;
  adj_in : (Prefix.t * int, Route.t) Hashtbl.t;
  loc_rib : (Prefix.t, Route.t) Hashtbl.t;
  adj_out : (Prefix.t * int, Route.t) Hashtbl.t;
  originated : (Prefix.t, origination) Hashtbl.t;
  mutable updates_processed : int;
}

let create ~node_id ~asn ?(allowas_in = false)
    ?(remove_private_on_export = false) ?(interprets_actions = false) () =
  {
    node_id;
    asn;
    allowas_in;
    remove_private_on_export;
    interprets_actions;
    neighbor_list = [];
    adj_in = Hashtbl.create 32;
    loc_rib = Hashtbl.create 32;
    adj_out = Hashtbl.create 32;
    originated = Hashtbl.create 8;
    updates_processed = 0;
  }

let node_id t = t.node_id

let asn t = t.asn

let add_neighbor t ~node_id ~asn ~rel ?(weight = 0) ?import_local_pref () =
  if List.exists (fun (n : neighbor) -> n.node_id = node_id) t.neighbor_list then
    invalid_arg (Printf.sprintf "Speaker.add_neighbor: duplicate neighbor %d" node_id);
  t.neighbor_list <-
    t.neighbor_list @ [ { node_id; asn; rel; weight; import_local_pref } ]

let neighbors t = t.neighbor_list

let neighbor_exn t node_id =
  match List.find_opt (fun (n : neighbor) -> n.node_id = node_id) t.neighbor_list with
  | Some n -> n
  | None ->
      invalid_arg
        (Printf.sprintf "Speaker %d: unknown neighbor node %d" t.node_id node_id)

(* ------------------------------------------------------------------ *)
(* Import                                                              *)

let import t (neighbor : neighbor) (wire : Route.t) : Route.t option =
  if As_path.contains wire.Route.path t.asn && not t.allowas_in then None
  else begin
    let local_pref =
      match neighbor.import_local_pref with
      | Some lp -> lp
      | None -> Relationship.base_local_pref neighbor.rel
    in
    Some
      {
        wire with
        Route.next_hop = neighbor.node_id;
        learned_from = Some neighbor.node_id;
        local_pref;
        neighbor_weight = neighbor.weight;
      }
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let local_route t prefix (orig : origination) =
  let path =
    match orig.poison with
    | [] -> As_path.empty
    | poisons -> As_path.of_list (poisons @ [ t.asn ])
  in
  Route.make ~prefix ~path ~next_hop:t.node_id ~local_pref:1000
    ~communities:orig.communities ()

(* The relationship the route was learned over, treating local routes as
   customer routes (exportable to everyone). *)
let learned_rel t (r : Route.t) =
  match r.Route.learned_from with
  | None -> Relationship.Customer
  | Some from -> (neighbor_exn t from).rel

let action_filter t (r : Route.t) (to_neighbor : neighbor) =
  (* Provider action communities apply to routes this speaker learned
     from its customers (or originated on their behalf). Returns [None]
     to suppress the export, or the extra prepend count. *)
  let from_customer =
    match learned_rel t r with
    | Relationship.Customer -> true
    | Relationship.Peer | Relationship.Provider -> false
  in
  if not (t.interprets_actions && from_customer) then Some 0
  else begin
    let actions = Community.actions_of_set r.Route.communities in
    let transit_neighbor =
      match to_neighbor.rel with
      | Relationship.Provider | Relationship.Peer -> true
      | Relationship.Customer -> false
    in
    let suppressed =
      List.exists
        (function
          | Community.No_export_to asn -> asn = to_neighbor.asn
          | Community.No_export_transit -> transit_neighbor
          | Community.Export_only_to _ | Community.Prepend_to _ -> false)
        actions
    in
    let export_only =
      List.filter_map
        (function Community.Export_only_to asn -> Some asn | _ -> None)
        actions
    in
    let excluded_by_only =
      transit_neighbor && not (List.is_empty export_only)
      && not (List.mem to_neighbor.asn export_only)
    in
    if suppressed || excluded_by_only then None
    else begin
      let prepends =
        List.fold_left
          (fun acc -> function
            | Community.Prepend_to (asn, n) when asn = to_neighbor.asn ->
                acc + n
            | _ -> acc)
          0 actions
      in
      Some prepends
    end
  end

let export_route t (r : Route.t) (to_neighbor : neighbor) : Route.t option =
  let came_from_there =
    match r.Route.learned_from with
    | Some from -> from = to_neighbor.node_id
    | None -> false
  in
  if came_from_there then None
  else if Route.has_community r Community.no_export_well_known then None
  else if
    not
      (Relationship.export_allowed ~learned_from:(learned_rel t r)
         ~exporting_to:to_neighbor.rel)
  then None
  else begin
    match action_filter t r to_neighbor with
    | None -> None
    | Some extra_prepends ->
        let base_path =
          if t.remove_private_on_export then As_path.strip_private r.Route.path
          else r.Route.path
        in
        let path = As_path.prepend_n base_path t.asn (1 + extra_prepends) in
        Some
          (Route.make ~prefix:r.Route.prefix ~path ~next_hop:t.node_id
             ~origin:r.Route.origin ~communities:r.Route.communities ())
  end

(* ------------------------------------------------------------------ *)
(* Decision + diffing adj-RIB-out                                      *)

let candidates t prefix =
  let learned =
    List.filter_map
      (fun (n : neighbor) -> Hashtbl.find_opt t.adj_in (prefix, n.node_id))
      t.neighbor_list
  in
  let all =
    match Hashtbl.find_opt t.originated prefix with
    | Some orig -> local_route t prefix orig :: learned
    | None -> learned
  in
  Decision.rank all

let recompute t prefix : Update.emission list =
  let best = Decision.best (candidates t prefix) in
  let previous = Hashtbl.find_opt t.loc_rib prefix in
  let same =
    match (previous, best) with
    | None, None -> true
    | Some a, Some b -> a = b
    | None, Some _ | Some _, None -> false
  in
  if same then []
  else begin
    (match best with
    | Some r -> Hashtbl.replace t.loc_rib prefix r
    | None -> Hashtbl.remove t.loc_rib prefix);
    List.filter_map
      (fun neighbor ->
        let target = Option.map (fun r -> export_route t r neighbor) best in
        let target = Option.join target in
        let previous_out = Hashtbl.find_opt t.adj_out (prefix, neighbor.node_id) in
        match (previous_out, target) with
        | None, None -> None
        | Some old, Some next when old = next -> None
        | _, Some next ->
            Hashtbl.replace t.adj_out (prefix, neighbor.node_id) next;
            Some { Update.to_node = neighbor.node_id; update = Update.Announce next }
        | Some _, None ->
            Hashtbl.remove t.adj_out (prefix, neighbor.node_id);
            Some { Update.to_node = neighbor.node_id; update = Update.Withdraw prefix })
      t.neighbor_list
  end

(* ------------------------------------------------------------------ *)
(* Public mutations                                                    *)

let originate t prefix ?(communities = Community.Set.empty) ?(poison = []) () =
  Hashtbl.replace t.originated prefix { communities; poison };
  recompute t prefix

let withdraw_origin t prefix =
  Hashtbl.remove t.originated prefix;
  recompute t prefix

let receive t ~from_node update =
  t.updates_processed <- t.updates_processed + 1;
  let neighbor = neighbor_exn t from_node in
  match update with
  | Update.Announce wire ->
      let prefix = wire.Route.prefix in
      (match import t neighbor wire with
      | Some route -> Hashtbl.replace t.adj_in (prefix, from_node) route
      | None ->
          (* Rejected by policy: behaves like a withdraw of whatever this
             neighbor previously advertised. *)
          Hashtbl.remove t.adj_in (prefix, from_node));
      recompute t prefix
  | Update.Withdraw prefix ->
      Hashtbl.remove t.adj_in (prefix, from_node);
      recompute t prefix

let best t prefix = Hashtbl.find_opt t.loc_rib prefix

(* Sorted so longest-prefix scans and reconciliation sweeps never
   depend on Hashtbl iteration order. *)
let loc_rib t =
  Hashtbl.fold (fun p r acc -> (p, r) :: acc) t.loc_rib []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

(* Observation hook for control-plane reconciliation and leak tests:
   does any of the four per-speaker tables still reference [prefix]? *)
let residual t prefix =
  Hashtbl.mem t.loc_rib prefix
  || Hashtbl.mem t.originated prefix
  || List.exists
       (fun (n : neighbor) ->
         Hashtbl.mem t.adj_in (prefix, n.node_id)
         || Hashtbl.mem t.adj_out (prefix, n.node_id))
       t.neighbor_list

let updates_processed t = t.updates_processed
