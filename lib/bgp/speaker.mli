(** A BGP speaker: one router's RIBs, import/export policy and decision
    process.

    Speakers are pure state machines over {!Update.t} messages: every
    mutation returns the list of updates that should be delivered to
    neighbors, and the surrounding {!Network} decides when they arrive.
    Policy knobs:

    - [allowas_in]: accept paths containing our own ASN (needed when two
      sites share a provider ASN, as Vultr LA/NY do);
    - [remove_private_on_export]: strip private ASNs from exported paths
      (what Vultr does to its BGP customers' session ASNs);
    - [interprets_actions]: honor {!Community.action} communities on
      routes learned from customers — only the provider whose community
      guide the customer follows sets this. *)

type neighbor = {
  node_id : int;
  asn : int;
  rel : Tango_topo.Relationship.t;  (** The neighbor's role relative to this speaker. *)
  weight : int;
  import_local_pref : int option;
}

type t

val create :
  node_id:int ->
  asn:int ->
  ?allowas_in:bool ->
  ?remove_private_on_export:bool ->
  ?interprets_actions:bool ->
  unit ->
  t

val node_id : t -> int
val asn : t -> int

val add_neighbor :
  t ->
  node_id:int ->
  asn:int ->
  rel:Tango_topo.Relationship.t ->
  ?weight:int ->
  ?import_local_pref:int ->
  unit ->
  unit
(** Raises [Invalid_argument] on duplicate neighbor ids. *)

val neighbors : t -> neighbor list

val originate :
  t ->
  Tango_net.Prefix.t ->
  ?communities:Community.Set.t ->
  ?poison:int list ->
  unit ->
  Update.emission list
(** Originate (or re-originate with new attributes) a prefix.
    [poison] lists ASNs inserted before the origin so those ASes drop the
    route by loop detection. Returns the updates to deliver. *)

val withdraw_origin : t -> Tango_net.Prefix.t -> Update.emission list

val receive : t -> from_node:int -> Update.t -> Update.emission list
(** Process one update from a neighbor; raises [Invalid_argument] if
    [from_node] is not a configured neighbor. *)

val best : t -> Tango_net.Prefix.t -> Route.t option
(** Selected route, if any (locally originated prefixes included). *)

val candidates : t -> Tango_net.Prefix.t -> Route.t list
(** Every usable route for the prefix (adj-RIB-in survivors plus the
    local route), most preferred first. *)

val loc_rib : t -> (Tango_net.Prefix.t * Route.t) list
(** The full selected table, in unspecified order. *)

val residual : t -> Tango_net.Prefix.t -> bool
(** Whether {e any} of this speaker's tables (adj-RIB-in, loc-RIB,
    adj-RIB-out, originations) still references [prefix] — the
    observation hook behind the "no probe-prefix state survives
    discovery" invariant and the reconciler's leak checks. *)

val updates_processed : t -> int
(** Number of updates this speaker has received (churn metric). *)
