(** Deterministic mesh topologies in CSR (compressed sparse row) form.

    PoPs are dense integer ids; every directed edge is a {e slot}, and
    per-edge state across the library (liveness bits, hello
    timestamps) lives in flat arrays indexed by slot. Generation is a
    pure function of [(pops, degree, regions, seed)]: a 60x60 ms-scale
    coordinate plane (latency ~ distance), a ring for guaranteed
    connectivity, nearest-neighbor chords up to [degree], and
    geographic quadrant regions for partition faults. *)

type t

val generate : ?degree:int -> ?regions:int -> pops:int -> seed:int -> unit -> t
(** Defaults: [degree] 4, [regions] 4. Raises {!Err.Invalid} for
    [pops < 2], [pops > 4096], [degree < 2] or [regions < 1]. *)

val pops : t -> int
val regions : t -> int

val region : t -> int -> int
(** Region id of a PoP; raises {!Err.Invalid} out of range. *)

val edges : t -> int
(** Number of directed slots (twice the undirected edge count). *)

val slot_base : t -> int -> int
(** First slot of a PoP's CSR row; the row spans
    [\[slot_base t i, slot_base t i + degree t i)]. *)

val degree : t -> int -> int

val slot_dst : t -> int -> int
(** Neighbor PoP on a slot. *)

val slot_lat_ms : t -> int -> float
(** One-way latency of a slot, milliseconds (symmetric). *)

val slot_paths : t -> int -> int
(** Per-pair discovery diversity on the segment: how many distinct
    provider paths the endpoint pair discovered (2-4). *)

val slot_rev : t -> int -> int
(** The reverse slot: for slot (u,v), the slot of (v,u). *)

val slot : t -> src:int -> dst:int -> int
(** Slot of the directed edge [src]->[dst], or [-1] when not adjacent.
    O(log degree), allocation-free. *)

val lat_ms : t -> src:int -> dst:int -> float
(** Latency between adjacent PoPs; raises {!Err.Invalid} otherwise. *)
