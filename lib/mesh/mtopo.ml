module Rng = Tango_sim.Rng

(* Mesh topology in CSR form: PoPs are dense ids [0, pops), every
   directed edge is a "slot" and all per-edge state elsewhere in the
   library (liveness, hello timestamps) is a flat array indexed by
   slot. One process hosting hundreds of PoPs never chases a pointer
   per neighbor. *)
type t = {
  pops : int;
  regions : int;
  region : int array;
  xs : float array;
  ys : float array;
  adj_off : int array; (* length pops+1: slot range of pop i *)
  adj_dst : int array; (* per slot: neighbor pop id, ascending per row *)
  adj_lat_ms : float array; (* per slot: one-way latency, symmetric *)
  adj_paths : int array; (* per slot: discovered per-pair segment paths *)
  rev : int array; (* per slot (u->v): the slot of (v->u) *)
}

let pops t = t.pops
let regions t = t.regions

let region t pop =
  if pop < 0 || pop >= t.pops then Err.invalid "Mtopo.region: pop %d" pop;
  t.region.(pop)

let edges t = Array.length t.adj_dst
let[@hot] slot_base t pop = t.adj_off.(pop)
let[@hot] degree t pop = t.adj_off.(pop + 1) - t.adj_off.(pop)
let[@hot] slot_dst t s = t.adj_dst.(s)
let[@hot] slot_lat_ms t s = t.adj_lat_ms.(s)
let[@hot] slot_paths t s = t.adj_paths.(s)
let[@hot] slot_rev t s = t.rev.(s)

(* Binary search within src's CSR row (rows are sorted by neighbor id):
   the forwarding path resolves "is [dst] my neighbor, and on which
   slot?" in O(log degree) with no allocation. *)
let[@hot] slot t ~src ~dst =
  let lo = ref t.adj_off.(src) and hi = ref (t.adj_off.(src + 1) - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.adj_dst.(mid) in
    if v = dst then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < dst then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let lat_ms t ~src ~dst =
  let s = slot t ~src ~dst in
  if s < 0 then Err.invalid "Mtopo.lat_ms: %d-%d not adjacent" src dst;
  t.adj_lat_ms.(s)

(* Deterministic synthetic topology: PoPs scattered on a 60x60 ms-scale
   plane (latency ~ euclidean distance), a ring for guaranteed
   connectivity, plus per-PoP nearest-neighbor chords up to [degree].
   Every draw comes from one seeded Rng in a fixed order, so the graph
   is a pure function of (pops, degree, regions, seed). *)
let generate ?(degree = 4) ?(regions = 4) ~pops ~seed () =
  if pops < 2 then Err.invalid "Mtopo.generate: need at least 2 pops, got %d" pops;
  if pops > 4096 then Err.invalid "Mtopo.generate: %d pops exceeds 4096" pops;
  if degree < 2 then Err.invalid "Mtopo.generate: degree %d below 2" degree;
  if regions < 1 then Err.invalid "Mtopo.generate: no regions";
  let rng = Rng.create ~seed in
  let xs = Array.make pops 0.0 and ys = Array.make pops 0.0 in
  for i = 0 to pops - 1 do
    xs.(i) <- Rng.float rng 60.0;
    ys.(i) <- Rng.float rng 60.0
  done;
  (* Geographic quadrants folded onto [regions] ids: partition faults
     cut along these boundaries. *)
  let region =
    Array.init pops (fun i ->
        let q =
          (if xs.(i) >= 30.0 then 1 else 0) + if ys.(i) >= 30.0 then 2 else 0
        in
        q mod regions)
  in
  let adj = Bytes.make (pops * pops) '\000' in
  let link i j =
    if i <> j then begin
      Bytes.set adj ((i * pops) + j) '\001';
      Bytes.set adj ((j * pops) + i) '\001'
    end
  in
  let linked i j = Bytes.get adj ((i * pops) + j) = '\001' in
  let node_degree i =
    let d = ref 0 in
    for j = 0 to pops - 1 do
      if linked i j then incr d
    done;
    !d
  in
  for i = 0 to pops - 1 do
    link i ((i + 1) mod pops)
  done;
  let d2 i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    (dx *. dx) +. (dy *. dy)
  in
  (* Chords: each PoP connects to its nearest non-neighbors until it
     reaches [degree]. Candidate order is (distance, id) with an
     explicit comparator — no polymorphic compare. *)
  let cand = Array.make pops 0 in
  for i = 0 to pops - 1 do
    let n = ref 0 in
    for j = 0 to pops - 1 do
      if j <> i && not (linked i j) then begin
        cand.(!n) <- j;
        incr n
      end
    done;
    let sub = Array.sub cand 0 !n in
    Array.sort
      (fun a b ->
        let c = Float.compare (d2 i a) (d2 i b) in
        if c <> 0 then c else Int.compare a b)
      sub;
    let k = ref 0 in
    while node_degree i < degree && !k < !n do
      link i sub.(!k);
      incr k
    done
  done;
  (* CSR assembly; rows are naturally sorted by neighbor id. *)
  let adj_off = Array.make (pops + 1) 0 in
  for i = 0 to pops - 1 do
    adj_off.(i + 1) <- adj_off.(i) + node_degree i
  done;
  let nslots = adj_off.(pops) in
  let adj_dst = Array.make nslots 0 in
  let adj_lat_ms = Array.make nslots 0.0 in
  let adj_paths = Array.make nslots 0 in
  let cursor = ref 0 in
  for i = 0 to pops - 1 do
    for j = 0 to pops - 1 do
      if linked i j then begin
        adj_dst.(!cursor) <- j;
        adj_lat_ms.(!cursor) <- 0.5 +. (sqrt (d2 i j) /. 4.0);
        (* Per-pair discovery diversity metadata: how many distinct
           provider paths the pair's discovery found for this segment
           (2-4, keyed symmetrically off the endpoint ids). *)
        let lo = min i j and hi = max i j in
        adj_paths.(!cursor) <- 2 + (((lo * 31) + hi) mod 3);
        incr cursor
      end
    done
  done;
  let t =
    {
      pops;
      regions;
      region;
      xs;
      ys;
      adj_off;
      adj_dst;
      adj_lat_ms;
      adj_paths;
      rev = Array.make nslots (-1);
    }
  in
  for i = 0 to pops - 1 do
    for s = adj_off.(i) to adj_off.(i + 1) - 1 do
      t.rev.(s) <- slot t ~src:adj_dst.(s) ~dst:i
    done
  done;
  t
