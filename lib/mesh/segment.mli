(** The segment-stack shim: stitched multi-hop relay routes on the wire.

    A source PoP composes its per-pair discovered paths into an explicit
    stack of (relay PoP, segment path) entries — the IXP path-stitching
    idea — and each relay consumes one entry per hop. When the next
    stacked hop is dead, the packet flips to arborescence mode
    ({!flag_arbor}) and is steered by the precomputed trees of
    {!Arbor} instead; the [tree] field records which one.

    Encode/decode run on the relay hot path and are [\[@hot\]]-clean:
    they reuse the {!Tango_net.Wire} cursor primitives and touch no
    heap. The [stack] record is a preallocated scratch value, created
    once per relay world and reused for every frame. *)

type stack = {
  mutable flags : int;
  mutable tree : int;
  mutable top : int;  (** Index of the next unconsumed stack entry. *)
  mutable src : int;
  mutable dst : int;
  mutable flow : int;
  mutable seq : int;
  mutable count : int;
  mutable hop_budget : int;  (** TTL against routing loops. *)
  mutable digest : int;
      (** Attestation chain ({!Attest}); meaningful iff {!flag_attest}
          is set in [flags]. *)
  hops : int array;  (** [max_segments] slots; entries [0..count-1] live. *)
  seg_path : int array;
}

val version : int
val flag_arbor : int

val flag_attest : int
(** When set, an {!attest_bytes}-wide per-hop digest chain follows the
    stack entries. Attestation-off frames are byte-identical to the
    pre-attest wire format. *)

val max_segments : int
(** 15 stack entries — routes beyond that fall back to pure
    arborescence steering from the source. *)

val fixed_bytes : int

val attest_bytes : int
(** Width of the optional attestation field: 8 bytes. *)

val header_bytes : count:int -> int
(** Encoded size for a [count]-entry stack {e without} the attest
    field: [18 + 4*count]. *)

val attest_off : count:int -> int
(** Offset of the attest field relative to the header start (it sits
    right after the stack entries). *)

val frame_bytes : stack -> int
(** Full encoded size of [st]: {!header_bytes} plus {!attest_bytes}
    when {!flag_attest} is set. *)

val max_header_bytes : int

val create_stack : unit -> stack
(** Fresh zeroed scratch stack (the only allocating operation here). *)

val encode_into : buf:Bytes.t -> off:int -> stack -> int
(** Write the header at [off]; returns bytes written. Raises
    {!Err.Invalid} when the buffer is too short or [count] exceeds
    {!max_segments}. *)

val decode_into : buf:Bytes.t -> off:int -> len:int -> stack -> bool
(** Parse a header into the scratch stack. Returns [false] on garbage
    (bad version, impossible count/top, short buffer) — relays drop
    malformed frames, they never raise. *)

val patch_cursor : buf:Bytes.t -> off:int -> stack -> unit
(** Write back only the per-hop mutable fields (flags, tree, top, hop
    budget, and the attest digest when {!flag_attest} is set) of an
    already-encoded header — the relay fast path. The attest flag must
    not be {e set} by a patch on a frame encoded without it: the buffer
    has no room for the field. *)
