(** Mesh membership + table-digest gossip with deterministic fanout —
    the pairwise {!Tango_ctrl.Channel} generalized to N PoPs.

    Each PoP keeps a membership view (per-subject alive bit with a
    last-write-wins virtual-time stamp) and a version counter for its
    own routing table. Anti-entropy rounds push rows to a rotation of
    CSR neighbors that is a pure function of (round, fanout, degree):
    seeded runs gossip identically, message for message. View digests
    fold through the FNV-1a primitives of the pair channel
    ({!Tango_ctrl.Channel.digest_mix}), so pairwise heartbeat digests
    and mesh table digests are one comparable hash family.

    Gossip converges membership and lets sources account for remote
    failures; it is {e not} on the failover path — a relay whose next
    hop died rotates arborescences locally in O(1) (see {!Relay})
    without waiting for any round trip. *)

type t

val create :
  ?fanout:int -> ?interval_s:float -> topo:Mtopo.t -> engine:Tango_sim.Engine.t -> unit -> t
(** Defaults: [fanout] 2, [interval_s] 0.1. Everyone starts believed
    alive. Raises {!Err.Invalid} on a non-positive fanout/interval. *)

val start : t -> pop_alive:(int -> bool) -> until:float -> unit
(** Schedule anti-entropy rounds on the engine until [until].
    [pop_alive] is liveness ground truth (dead PoPs neither push nor
    merge). *)

val observe :
  t -> observer:int -> subject:int -> alive:bool -> now:float -> pop_alive:(int -> bool) -> unit
(** Local detection entry point: the relay layer reports a hello
    timeout (or recovery) it witnessed first-hand. *)

val thinks_alive : t -> observer:int -> subject:int -> bool

val bump_table_version : t -> pop:int -> unit
(** The relay layer bumps this when a PoP rotates its arborescence
    preference — table churn shows up in the digest. *)

val table_version : t -> pop:int -> int

val digest : t -> int -> int
(** FNV-1a over a PoP's membership view plus its table version. *)

val distinct_digests : t -> pop_alive:(int -> bool) -> int
(** Number of distinct digests among live PoPs: 1 = converged. *)

val all_dead_at : t -> subject:int -> float
(** Virtual time when the {e last} live PoP learned [subject] was dead
    ([nan] if that never happened) — the convergence latency metric. *)

val msgs : t -> int
val rounds : t -> int
