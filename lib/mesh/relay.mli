(** The mesh dataplane: PoP-indexed flat forwarding state, segment-stack
    consumption, and O(1) arborescence failover.

    One value hosts every PoP of the mesh — per-PoP and per-edge state
    is flat arrays indexed by PoP id / CSR slot, so a single process
    scales to hundreds of PoPs. Forwarding pops one stack entry per
    hop; when the stacked next hop is locally dead (hello timeout) the
    frame flips to arborescence mode and the relay rotates to the next
    precomputed tree — at most [Arbor.k] O(1) probes, with each dead
    tree fed to {!Tango.Policy.ban} like any other path fault. There is
    no rediscovery on the failover path; {!discovery_msgs} counts
    route-stitch computations so experiments can assert exactly that.

    Liveness is strictly local: a PoP trusts only its own hello view of
    its neighbors. Frames in flight toward a not-yet-detected dead
    relay are lost; that window is the recovery latency E15 measures. *)

type t

val create :
  ?hello_interval_s:float ->
  ?dead_after_s:float ->
  ?ban_s:float ->
  ?quarantine_s:float ->
  topo:Mtopo.t ->
  arbor:Arbor.t ->
  engine:Tango_sim.Engine.t ->
  gossip:Gossip.t ->
  unit ->
  t
(** Defaults: hellos every 25 ms, a neighbor is dead after 100 ms of
    silence, dead trees are banned for 1 s, a first quarantine lasts
    2 s (doubling per episode, capped at 60 s). Raises {!Err.Invalid}
    when [dead_after_s <= hello_interval_s] or a duration is
    non-positive. *)

val start_hellos : t -> until:float -> unit
(** One hello timer per PoP. Hellos are stamped directly into the
    neighbor's hearing slot with the link latency added — no per-hello
    event, so a 128-PoP mesh stays at tens of engine events per virtual
    second. *)

val set_on_deliver : t -> (flow:int -> seq:int -> tree:int -> now:float -> unit) -> unit

val send :
  t -> src:int -> flow:int -> seq:int -> hops:int array -> seg_paths:int array -> count:int -> unit
(** Encode a stitched route ([hops.(count-1)] is the destination) into
    a fresh frame and forward it from [src]. Raises {!Err.Invalid} when
    [count] is outside [1, {!Segment.max_segments}]. *)

val pop_alive : t -> int -> bool
(** Ground truth (not any PoP's local view). *)

val kill_pop : t -> pop:int -> unit
val revive_pop : t -> pop:int -> unit

val cut_region : t -> region:int -> unit
(** Take down every inter-region link touching [region], both
    directions. *)

val heal_region : t -> region:int -> unit

val detection_ms_after : t -> pop:int -> after:float -> float
(** Milliseconds after [after] until the {e slowest} live neighbor of
    [pop] flipped its hello view to dead; [-1] when none has. *)

val sent : t -> int
val delivered : t -> int
val dropped : t -> int
val forwarded : t -> int

val reroutes : t -> int
(** Arborescence rotations performed (stack-to-arbor flips plus dead
    trees skipped). *)

val max_rotations : t -> int
(** Worst-case dead-tree probes for a single forwarding decision —
    bounded by [Arbor.k]; the E15 constant-work gate. *)

val discovery_msgs : t -> int
val note_discovery : t -> unit
(** Route-stitch accounting: {!Mesh} notes each stitched-route
    computation; the counter must not move after a failure. *)

val hello_msgs : t -> int

val fingerprint : t -> string
(** FNV-1a fold of the delivery stream (flow, seq, tree, residual hop
    budget, microsecond delivery time, and — only when attestation is
    on — the verdict code) — byte-identical across repeats of a seeded
    run, and with attestation off byte-identical to the pre-attest
    fingerprint. *)

(** {1 Verifiable forwarding (attestation)} *)

val set_attest : t -> Attest.t -> unit
(** Turn attestation on: every {!send} stamps {!Segment.flag_attest}
    and seeds the per-hop digest chain, every forwarding relay folds
    into it, and the destination judges each non-excused delivery
    against the routes committed in the verifier. *)

val attest : t -> Attest.t option

val attest_rejected : t -> int
(** Frames refused at the destination on a bad verdict — counted here,
    in neither {!delivered} nor {!dropped}. *)

val attest_excused : t -> int
(** Attested frames delivered unjudged because arborescence failover
    re-steered them off their committed route (DESIGN.md §15 caveat). *)

val verdict_count : t -> Attest.verdict -> int
(** Judged deliveries per verdict (includes [Verified]). *)

val first_verdict_s : t -> float
(** Virtual time of the first bad verdict; [nan] while none. *)

(** {2 Quarantine} *)

val quarantines : t -> int
(** Quarantine episodes applied so far. *)

val readmissions : t -> int
(** Quarantined relays readmitted after serving their backoff. *)

val quarantined : t -> pop:int -> bool
(** Whether [pop] is quarantined {e right now}: no relay will choose it
    as a next hop ({!Tango.Policy.ban} bookkeeping plus the same
    local-viability check that covers dead neighbors), so traffic flips
    to arborescence steering around it. *)

val quarantined_count : t -> int

val ever_quarantined : t -> pop:int -> bool
(** Whether [pop] has served any quarantine episode this run. *)

(** {2 Fault injection: relay misbehavior} *)

type misbehavior =
  | Honest
  | Detour  (** Fold a neighbor off the route; burn an extra hop. *)
  | Forge  (** Garble the evidence chain after folding. *)
  | Truncate  (** Short-cut the route tail through the underlay. *)
  | Replay  (** Re-inject a captured transit frame every 100 ms. *)

val set_misbehavior : ?until:float -> t -> pop:int -> misbehavior -> unit
(** Arm (or clear, with [Honest]) misbehavior on [pop]. [until] bounds
    the [Replay] re-injection timer (pass the fault's end time; default
    unbounded). Raises {!Err.Invalid} on a bad pop id. *)
