module Engine = Tango_sim.Engine
module Rng = Tango_sim.Rng
module Spec = Tango_faults.Spec

(* Tango-of-N: one engine, one topology, N PoPs, stitched multi-hop
   routes, arborescence failover, membership gossip. [run] is the only
   entry point: build the world, arm mesh-level fault specs, drive
   seeded flows, and return a flat result record — everything a pure
   function of the parameters. *)

type result = {
  pops : int;
  edges : int;
  trees : int;
  diversity : float;
  flows : int;
  sent : int;
  delivered : int;
  dropped : int;
  reroutes : int;
  max_rotations : int;
  killed : int; (* target PoP of a relay-kill, -1 when none *)
  affected_flows : int; (* flows transiting the killed PoP / cut region *)
  detect_ms : float; (* slowest neighbor hello-timeout, -1 when n/a *)
  recovery_ms : float; (* slowest affected flow back in service, -1 n/a *)
  unrecovered : int; (* affected flows never delivered again *)
  discovery_after_fault : int; (* stitch computations after onset: the O(1) claim *)
  gossip_msgs : int;
  hello_msgs : int;
  convergence_ms : float; (* last live PoP learned of the death, -1 n/a *)
  distinct_digests : int; (* 1 = membership views converged at end *)
  attest : bool; (* attestation on for this run *)
  misbehaving : int; (* armed Byzantine relay, -1 when none *)
  rejected : int; (* bad-verdict rejections at destinations *)
  wrong_path : int; (* judged deliveries/rejections per verdict *)
  truncated : int;
  replayed : int;
  forged : int;
  excused : int; (* attested frames delivered unjudged (arbor failover) *)
  first_verdict_ms : float; (* onset -> first bad verdict, -1 n/a *)
  quarantines : int;
  readmissions : int;
  quarantined_target : bool; (* armed relay served a quarantine *)
  false_quarantines : int; (* ever-quarantined pops besides the target *)
  fingerprint : string;
}

(* Stitch a multi-hop relay route src->dst by walking arborescence 0:
   the same per-pair segments discovery would compose, in array form.
   Returns the entry count; hops.(count-1) = dst. Routes longer than
   the stack bound keep their first [max_segments - 1] hops and fall
   back to arborescence steering for the tail. *)
let stitch topo arbor ~src ~dst ~flow ~hops ~seg_paths =
  let count = ref 0 in
  let pop = ref src in
  let budget = Arbor.pops arbor in
  let steps = ref 0 in
  while !pop <> dst && !steps <= budget do
    let nh = Arbor.next_hop arbor ~dst ~tree:0 ~pop:!pop in
    if nh < 0 then steps := budget + 1 (* unreachable: emit dst-only *)
    else begin
      if !count < Segment.max_segments - 1 then begin
        hops.(!count) <- nh;
        let s = Mtopo.slot topo ~src:!pop ~dst:nh in
        seg_paths.(!count) <- flow mod Mtopo.slot_paths topo s;
        incr count
      end;
      pop := nh;
      incr steps
    end
  done;
  if !count = 0 || hops.(!count - 1) <> dst then begin
    hops.(!count) <- dst;
    seg_paths.(!count) <- 0;
    incr count
  end;
  !count

let kind_supported = function
  | Spec.Relay_kill | Spec.Mesh_partition _ | Spec.Relay_detour
  | Spec.Relay_tamper _ | Spec.Relay_replay ->
      true
  | Spec.Blackhole | Spec.Flap _ | Spec.Brownout _ | Spec.Probe_starvation
  | Spec.Clock_step _ | Spec.Bgp_withdraw | Spec.Bgp_flap _ | Spec.Community_drop
    ->
      false

let run ?(pops = 16) ?(degree = 4) ?(trees = 3) ?(seed = 42) ?flows
    ?(duration_s = 12.0) ?(pkt_interval_s = 0.02) ?(specs = [])
    ?(attest = false) ?(quarantine_s = 2.0) ?(suspect_threshold = 4) () =
  let nflows = match flows with Some f -> f | None -> min (2 * pops) 128 in
  if nflows < 1 then Err.invalid "Mesh.run: need at least one flow";
  if duration_s <= 0.0 then Err.invalid "Mesh.run: non-positive duration";
  if pkt_interval_s <= 0.0 then Err.invalid "Mesh.run: non-positive packet interval";
  List.iter
    (fun (s : Spec.t) ->
      Spec.validate s;
      if not (kind_supported s.Spec.kind) then
        Err.invalid "Mesh.run: %s is a pairwise fault; use Inject.arm"
          (Spec.kind_to_string s.Spec.kind);
      if s.Spec.start_s +. s.Spec.duration_s >= duration_s then
        Err.invalid "Mesh.run: fault window %g+%g must close before %g"
          s.Spec.start_s s.Spec.duration_s duration_s)
    specs;
  let engine = Engine.create ~seed ~heap_capacity:(16 * pops) () in
  let topo = Mtopo.generate ~degree ~pops ~seed () in
  let arbor = Arbor.build ~k:trees topo in
  let gossip = Gossip.create ~topo ~engine () in
  let relay = Relay.create ~topo ~arbor ~engine ~gossip ~quarantine_s () in
  (* Seeded flow endpoints, then stitched routes (each stitch is one
     "discovery" unit of work — the counter the O(1) gate watches). *)
  let rng = Engine.rng engine in
  let flow_src = Array.make nflows 0 and flow_dst = Array.make nflows 0 in
  let flow_hops = Array.make_matrix nflows Segment.max_segments 0 in
  let flow_paths = Array.make_matrix nflows Segment.max_segments 0 in
  let flow_count = Array.make nflows 0 in
  let flow_seq = Array.make nflows 0 in
  let recovered_at = Array.make nflows nan in
  for f = 0 to nflows - 1 do
    let src = Rng.int rng pops in
    let d = 1 + Rng.int rng (pops - 1) in
    let dst = (src + d) mod pops in
    flow_src.(f) <- src;
    flow_dst.(f) <- dst;
    flow_count.(f) <-
      stitch topo arbor ~src ~dst ~flow:f ~hops:flow_hops.(f)
        ~seg_paths:flow_paths.(f);
    Relay.note_discovery relay
  done;
  (* Attestation: the destination-side verifier learns each flow's
     committed route at stitch time. Only fully-stitched routes commit
     — a stitch that overflowed the stack (or emitted a bare dst for an
     unreachable pair) has a non-adjacent entry somewhere, and its
     frames arrive excused via arborescence steering. *)
  if attest then begin
    let att = Attest.create ~suspect_threshold ~pops ~flows:nflows () in
    for f = 0 to nflows - 1 do
      let contiguous = ref true in
      let prev = ref flow_src.(f) in
      for i = 0 to flow_count.(f) - 1 do
        if Mtopo.slot topo ~src:!prev ~dst:flow_hops.(f).(i) < 0 then
          contiguous := false;
        prev := flow_hops.(f).(i)
      done;
      if !contiguous then
        Attest.commit att ~flow:f ~src:flow_src.(f) ~hops:flow_hops.(f)
          ~count:flow_count.(f)
    done;
    Relay.set_attest relay att
  end;
  let mark_s = ref infinity in
  Relay.set_on_deliver relay (fun ~flow ~seq:_ ~tree:_ ~now ->
      if now >= !mark_s && Float.is_nan recovered_at.(flow) then
        recovered_at.(flow) <- now);
  (* Fault arming. Relay-kill target: the spec's [path] when positive,
     otherwise the PoP relaying the most stitched routes (intermediate
     hops only; ties to the lowest id). *)
  let transit_load = Array.make pops 0 in
  for f = 0 to nflows - 1 do
    for i = 0 to flow_count.(f) - 2 do
      transit_load.(flow_hops.(f).(i)) <- transit_load.(flow_hops.(f).(i)) + 1
    done
  done;
  let auto_target () =
    let best = ref 0 in
    for p = 1 to pops - 1 do
      if transit_load.(p) > transit_load.(!best) then best := p
    done;
    !best
  in
  let killed = ref (-1) in
  let misbehaving = ref (-1) in
  let mis_start = ref nan in
  let affected = ref [] in
  let discovery_at_mark = ref 0 in
  let note_mark now =
    if now < !mark_s then begin
      mark_s := now;
      discovery_at_mark := Relay.discovery_msgs relay;
      Array.fill recovered_at 0 nflows nan
    end
  in
  let flow_transits f target =
    let hit = ref false in
    for i = 0 to flow_count.(f) - 2 do
      if flow_hops.(f).(i) = target then hit := true
    done;
    !hit && flow_src.(f) <> target && flow_dst.(f) <> target
  in
  List.iter
    (fun (s : Spec.t) ->
      match s.Spec.kind with
      | Spec.Relay_kill ->
          let target = if s.Spec.path > 0 then s.Spec.path else auto_target () in
          if target >= pops then
            Err.invalid "Mesh.run: relay-kill target %d outside %d pops" target
              pops;
          Engine.schedule_at engine ~time:s.Spec.start_s (fun engine ->
              let now = Engine.now engine in
              note_mark now;
              killed := target;
              for f = 0 to nflows - 1 do
                if flow_transits f target then affected := f :: !affected
              done;
              Relay.kill_pop relay ~pop:target);
          Engine.schedule_at engine
            ~time:(s.Spec.start_s +. s.Spec.duration_s)
            (fun _ -> Relay.revive_pop relay ~pop:target)
      | Spec.Mesh_partition { region } ->
          if region >= Mtopo.regions topo then
            Err.invalid "Mesh.run: partition region %d outside %d regions" region
              (Mtopo.regions topo);
          Engine.schedule_at engine ~time:s.Spec.start_s (fun engine ->
              note_mark (Engine.now engine);
              for f = 0 to nflows - 1 do
                let sr = Mtopo.region topo flow_src.(f)
                and dr = Mtopo.region topo flow_dst.(f) in
                if (sr = region) <> (dr = region) then affected := f :: !affected
              done;
              Relay.cut_region relay ~region);
          Engine.schedule_at engine
            ~time:(s.Spec.start_s +. s.Spec.duration_s)
            (fun _ -> Relay.heal_region relay ~region)
      | Spec.Relay_detour | Spec.Relay_tamper _ | Spec.Relay_replay ->
          let target = if s.Spec.path > 0 then s.Spec.path else auto_target () in
          if target >= pops then
            Err.invalid "Mesh.run: misbehaving-relay target %d outside %d pops"
              target pops;
          let m =
            match s.Spec.kind with
            | Spec.Relay_detour -> Relay.Detour
            | Spec.Relay_tamper { truncate = true } -> Relay.Truncate
            | Spec.Relay_tamper { truncate = false } -> Relay.Forge
            | _ -> Relay.Replay
          in
          let stop = s.Spec.start_s +. s.Spec.duration_s in
          Engine.schedule_at engine ~time:s.Spec.start_s (fun engine ->
              let now = Engine.now engine in
              note_mark now;
              misbehaving := target;
              if Float.is_nan !mis_start then mis_start := now;
              for f = 0 to nflows - 1 do
                if flow_transits f target then affected := f :: !affected
              done;
              Relay.set_misbehavior relay ~pop:target ~until:stop m);
          Engine.schedule_at engine ~time:stop (fun _ ->
              Relay.set_misbehavior relay ~pop:target Relay.Honest)
      | _ -> assert false)
    specs;
  (* Control plane and flows. Flow starts stagger by a millisecond so a
     128-flow mesh never bursts its sends into one instant. *)
  Relay.start_hellos relay ~until:duration_s;
  Gossip.start gossip ~pop_alive:(Relay.pop_alive relay) ~until:duration_s;
  for f = 0 to nflows - 1 do
    let start = 0.5 +. (0.001 *. float_of_int (f mod 100)) in
    Engine.schedule_at engine ~time:start (fun engine ->
        Engine.every engine ~interval:pkt_interval_s ~until:duration_s
          (fun _ ->
            Relay.send relay ~src:flow_src.(f) ~flow:f ~seq:flow_seq.(f)
              ~hops:flow_hops.(f) ~seg_paths:flow_paths.(f)
              ~count:flow_count.(f);
            flow_seq.(f) <- flow_seq.(f) + 1))
  done;
  Engine.run ~until:duration_s engine;
  (* Post-run metrics. *)
  let detect_ms =
    if !killed >= 0 then Relay.detection_ms_after relay ~pop:!killed ~after:!mark_s
    else -1.0
  in
  let recovery_ms = ref (-1.0) in
  let unrecovered = ref 0 in
  List.iter
    (fun f ->
      if Float.is_nan recovered_at.(f) then incr unrecovered
      else recovery_ms := Float.max !recovery_ms ((recovered_at.(f) -. !mark_s) *. 1000.0))
    !affected;
  let convergence_ms =
    if !killed >= 0 then begin
      let at = Gossip.all_dead_at gossip ~subject:!killed in
      if Float.is_nan at then -1.0 else (at -. !mark_s) *. 1000.0
    end
    else -1.0
  in
  {
    pops;
    edges = Mtopo.edges topo / 2;
    trees;
    diversity = Arbor.diversity arbor;
    flows = nflows;
    sent = Relay.sent relay;
    delivered = Relay.delivered relay;
    dropped = Relay.dropped relay;
    reroutes = Relay.reroutes relay;
    max_rotations = Relay.max_rotations relay;
    killed = !killed;
    affected_flows = List.length !affected;
    detect_ms;
    recovery_ms = !recovery_ms;
    unrecovered = !unrecovered;
    discovery_after_fault =
      (if Float.is_finite !mark_s then Relay.discovery_msgs relay - !discovery_at_mark
       else 0);
    gossip_msgs = Gossip.msgs gossip;
    hello_msgs = Relay.hello_msgs relay;
    convergence_ms;
    distinct_digests = Gossip.distinct_digests gossip ~pop_alive:(Relay.pop_alive relay);
    attest;
    misbehaving = !misbehaving;
    rejected = Relay.attest_rejected relay;
    wrong_path = Relay.verdict_count relay Attest.Wrong_path;
    truncated = Relay.verdict_count relay Attest.Truncated;
    replayed = Relay.verdict_count relay Attest.Replayed;
    forged = Relay.verdict_count relay Attest.Forged;
    excused = Relay.attest_excused relay;
    first_verdict_ms =
      (let fv = Relay.first_verdict_s relay in
       if Float.is_nan fv || Float.is_nan !mis_start then -1.0
       else (fv -. !mis_start) *. 1000.0);
    quarantines = Relay.quarantines relay;
    readmissions = Relay.readmissions relay;
    quarantined_target =
      !misbehaving >= 0 && Relay.ever_quarantined relay ~pop:!misbehaving;
    false_quarantines =
      (let n = ref 0 in
       for p = 0 to pops - 1 do
         if p <> !misbehaving && Relay.ever_quarantined relay ~pop:p then incr n
       done;
       !n);
    fingerprint = Relay.fingerprint relay;
  }
