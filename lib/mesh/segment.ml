module Wire = Tango_net.Wire

(* The segment-stack shim: the source PoP stitches its per-pair
   discovered paths into a multi-hop relay route and encodes it as an
   explicit stack of (relay PoP, segment path) entries. Relays consume
   one entry per hop; when a hop is dead the packet flips to
   arborescence mode ([flag_arbor]) and the [tree] field names which
   precomputed arborescence is steering it from there on.

   Layout (big-endian, via the lib/net cursor primitives):

   {v
   off+0   version        (1B)  = 1
   off+1   flags          (1B)  bit0 = arborescence failover active
   off+2   tree           (1B)  current arborescence id
   off+3   top            (1B)  next unconsumed stack entry
   off+4   src PoP        (2B)
   off+6   dst PoP        (2B)
   off+8   flow id        (4B)
   off+12  seq            (4B)
   off+16  count          (1B)  stack entries
   off+17  hop budget     (1B)  TTL against routing loops
   off+18  count entries, 4B each: PoP (2B), segment path (1B), 0 (1B)
   v}

   When [flag_attest] is set an 8-byte attestation field follows the
   entries: the running per-hop digest chain of {!Attest}, stored as a
   31-bit high half and a 32-bit low half (an OCaml 63-bit int survives
   the round trip exactly). Attestation-off frames carry no extra bytes
   — the wire format is byte-identical to the pre-attest layout. *)

let version = 1
let flag_arbor = 0x01
let flag_attest = 0x02
let max_segments = 15
let fixed_bytes = 18
let attest_bytes = 8
let header_bytes ~count = fixed_bytes + (4 * count)
let attest_off ~count = header_bytes ~count
let max_header_bytes = fixed_bytes + (4 * max_segments) + attest_bytes

type stack = {
  mutable flags : int;
  mutable tree : int;
  mutable top : int;
  mutable src : int;
  mutable dst : int;
  mutable flow : int;
  mutable seq : int;
  mutable count : int;
  mutable hop_budget : int;
  mutable digest : int; (* attest chain; meaningful iff flag_attest set *)
  hops : int array; (* length max_segments: relay PoPs, dst last *)
  seg_path : int array; (* per entry: which discovered per-pair path *)
}

let create_stack () =
  {
    flags = 0;
    tree = 0;
    top = 0;
    src = 0;
    dst = 0;
    flow = 0;
    seq = 0;
    count = 0;
    hop_budget = 0;
    digest = 0;
    hops = Array.make max_segments 0;
    seg_path = Array.make max_segments 0;
  }

let[@hot] frame_bytes st =
  fixed_bytes + (4 * st.count)
  + if st.flags land flag_attest <> 0 then attest_bytes else 0

(* The 63-bit digest travels as a 31-bit high half and a 32-bit low
   half through the existing u32 cursor primitives. *)
let[@hot] put_digest ~buf ~off st =
  let base = attest_off ~count:st.count + off in
  Wire.set_u32 buf base ((st.digest lsr 32) land 0x7FFFFFFF);
  Wire.set_u32 buf (base + 4) (st.digest land 0xFFFFFFFF)

let[@hot] get_digest ~buf ~off st =
  let base = attest_off ~count:st.count + off in
  st.digest <- (Wire.get_u32 buf base lsl 32) lor Wire.get_u32 buf (base + 4)

let[@hot] encode_into ~buf ~off st =
  let len = frame_bytes st in
  if off < 0 || off + len > Bytes.length buf then
    Err.invalid "Segment.encode_into: %d-byte buffer, need %d at %d"
      (Bytes.length buf) len off;
  if st.count > max_segments then
    Err.invalid "Segment.encode_into: %d segments exceed %d" st.count
      max_segments;
  Bytes.set_uint8 buf off version;
  Bytes.set_uint8 buf (off + 1) (st.flags land 0xFF);
  Bytes.set_uint8 buf (off + 2) (st.tree land 0xFF);
  Bytes.set_uint8 buf (off + 3) (st.top land 0xFF);
  Wire.set_u16 buf (off + 4) st.src;
  Wire.set_u16 buf (off + 6) st.dst;
  Wire.set_u32 buf (off + 8) st.flow;
  Wire.set_u32 buf (off + 12) st.seq;
  Bytes.set_uint8 buf (off + 16) st.count;
  Bytes.set_uint8 buf (off + 17) (st.hop_budget land 0xFF);
  for i = 0 to st.count - 1 do
    let base = off + fixed_bytes + (4 * i) in
    Wire.set_u16 buf base st.hops.(i);
    Bytes.set_uint8 buf (base + 2) st.seg_path.(i);
    Bytes.set_uint8 buf (base + 3) 0
  done;
  if st.flags land flag_attest <> 0 then put_digest ~buf ~off st;
  len

(* Returns false on a malformed header instead of raising: relays drop
   garbage, they do not die — and the no-raise form keeps the decode
   branch allocation-free. *)
let[@hot] decode_into ~buf ~off ~len st =
  if off < 0 || len < fixed_bytes || off + len > Bytes.length buf then false
  else if Bytes.get_uint8 buf off <> version then false
  else begin
    let count = Bytes.get_uint8 buf (off + 16) in
    let top = Bytes.get_uint8 buf (off + 3) in
    let flags = Bytes.get_uint8 buf (off + 1) in
    let need =
      fixed_bytes + (4 * count)
      + if flags land flag_attest <> 0 then attest_bytes else 0
    in
    if count > max_segments || len < need || top > count then false
    else begin
      st.flags <- flags;
      st.tree <- Bytes.get_uint8 buf (off + 2);
      st.top <- top;
      st.src <- Wire.get_u16 buf (off + 4);
      st.dst <- Wire.get_u16 buf (off + 6);
      st.flow <- Wire.get_u32 buf (off + 8);
      st.seq <- Wire.get_u32 buf (off + 12);
      st.count <- count;
      st.hop_budget <- Bytes.get_uint8 buf (off + 17);
      for i = 0 to count - 1 do
        let base = off + fixed_bytes + (4 * i) in
        st.hops.(i) <- Wire.get_u16 buf base;
        st.seg_path.(i) <- Bytes.get_uint8 buf (base + 2)
      done;
      if flags land flag_attest <> 0 then get_digest ~buf ~off st
      else st.digest <- 0;
      true
    end
  end

(* In-place single-field updates: a relay that only advances the cursor
   or flips to arborescence mode patches the header instead of
   re-encoding all [count] entries. *)
let[@hot] patch_cursor ~buf ~off st =
  Bytes.set_uint8 buf (off + 1) (st.flags land 0xFF);
  Bytes.set_uint8 buf (off + 2) (st.tree land 0xFF);
  Bytes.set_uint8 buf (off + 3) (st.top land 0xFF);
  Bytes.set_uint8 buf (off + 17) (st.hop_budget land 0xFF);
  if st.flags land flag_attest <> 0 then put_digest ~buf ~off st
