module Engine = Tango_sim.Engine
module Channel = Tango_ctrl.Channel
module Metric = Tango_obs.Metric

(* lib/ctrl's pair channel generalized to a mesh: instead of one
   heartbeat per pair, every PoP keeps a membership view (who it thinks
   is alive, with a last-write-wins stamp per fact) plus a version
   counter for its own routing table, and anti-entropy rounds push the
   view to a deterministic rotation of neighbors. Fanout targets are a
   pure function of (round, fanout, degree) — no random peer sampling —
   so seeded runs gossip identically. Digests fold the view and table
   version through the same FNV-1a primitives as the pairwise channel,
   keeping pair and mesh digests one hash family. *)

let m_msgs = Metric.counter ~help:"Mesh gossip messages delivered" "mesh_gossip_msgs_total"

type t = {
  topo : Mtopo.t;
  engine : Engine.t;
  fanout : int;
  interval_s : float;
  view : Bytes.t; (* observer*pops + subject: 1 = alive *)
  stamp : float array; (* version stamp (virtual time) of each fact *)
  table_version : int array; (* per pop, bumped on arborescence rotation *)
  all_dead_at : float array; (* per subject: when the last live view agreed *)
  mutable round : int;
  mutable msgs : int;
}

let create ?(fanout = 2) ?(interval_s = 0.1) ~topo ~engine () =
  if fanout < 1 then Err.invalid "Gossip.create: fanout %d below 1" fanout;
  if interval_s <= 0.0 then Err.invalid "Gossip.create: non-positive interval";
  let n = Mtopo.pops topo in
  {
    topo;
    engine;
    fanout;
    interval_s;
    view = Bytes.make (n * n) '\001';
    stamp = Array.make (n * n) 0.0;
    table_version = Array.make n 0;
    all_dead_at = Array.make n nan;
    round = 0;
    msgs = 0;
  }

let msgs t = t.msgs
let rounds t = t.round
let thinks_alive t ~observer ~subject =
  Bytes.get t.view ((observer * Mtopo.pops t.topo) + subject) = '\001'

let bump_table_version t ~pop = t.table_version.(pop) <- t.table_version.(pop) + 1
let table_version t ~pop = t.table_version.(pop)
let all_dead_at t ~subject = t.all_dead_at.(subject)

(* Record the instant the last live observer learned [subject] is down
   — the convergence metric E15 reports. [pop_alive] is ground truth
   from the relay layer. *)
let note_if_converged t ~subject ~now ~pop_alive =
  if Float.is_nan t.all_dead_at.(subject) then begin
    let n = Mtopo.pops t.topo in
    let all = ref true in
    for o = 0 to n - 1 do
      if o <> subject && pop_alive o && Bytes.get t.view ((o * n) + subject) = '\001'
      then all := false
    done;
    if !all then t.all_dead_at.(subject) <- now
  end

let set_fact t ~observer ~subject ~alive ~now ~pop_alive =
  let n = Mtopo.pops t.topo in
  let cell = (observer * n) + subject in
  let v = if alive then '\001' else '\000' in
  if Bytes.get t.view cell <> v then begin
    Bytes.set t.view cell v;
    t.stamp.(cell) <- now;
    if not alive then note_if_converged t ~subject ~now ~pop_alive
  end
  else t.stamp.(cell) <- Float.max t.stamp.(cell) now

let observe t ~observer ~subject ~alive ~now ~pop_alive =
  set_fact t ~observer ~subject ~alive ~now ~pop_alive

(* Merge sender's row into receiver's: newer stamp wins; on equal
   stamps a dead fact beats a live one (deterministic tie-break that
   errs toward caution). *)
let merge t ~from ~into ~now ~pop_alive =
  let n = Mtopo.pops t.topo in
  for subject = 0 to n - 1 do
    let sc = (from * n) + subject and dc = (into * n) + subject in
    let s_stamp = t.stamp.(sc) and d_stamp = t.stamp.(dc) in
    let s_dead = Bytes.get t.view sc = '\000' in
    let d_dead = Bytes.get t.view dc = '\000' in
    if s_stamp > d_stamp || (Float.equal s_stamp d_stamp && s_dead && not d_dead)
    then begin
      if s_dead <> d_dead then begin
        Bytes.set t.view dc (if s_dead then '\000' else '\001');
        if s_dead then note_if_converged t ~subject ~now ~pop_alive
      end;
      t.stamp.(dc) <- s_stamp
    end
  done;
  t.msgs <- t.msgs + 1;
  Metric.incr m_msgs

let digest t pop =
  let n = Mtopo.pops t.topo in
  let h = ref Channel.digest_seed in
  for subject = 0 to n - 1 do
    h := Channel.digest_mix !h (Char.code (Bytes.get t.view ((pop * n) + subject)))
  done;
  Channel.digest_mix !h t.table_version.(pop)

let distinct_digests t ~pop_alive =
  let n = Mtopo.pops t.topo in
  let count = ref 0 in
  for p = 0 to n - 1 do
    if pop_alive p then begin
      let d = digest t p in
      let fresh = ref true in
      for q = 0 to p - 1 do
        if pop_alive q && digest t q = d then fresh := false
      done;
      if !fresh then incr count
    end
  done;
  !count

(* One anti-entropy round: every live PoP pushes its row to [fanout]
   neighbors chosen by rotating through its CSR row with the round
   number. The merge happens after the slot's latency, as a scheduled
   event — gossip traffic rides the same virtual links as data. *)
let start t ~pop_alive ~until =
  let n = Mtopo.pops t.topo in
  Engine.every t.engine ~interval:t.interval_s ~until (fun engine ->
      let r = t.round in
      t.round <- r + 1;
      for p = 0 to n - 1 do
        if pop_alive p then begin
          let deg = Mtopo.degree t.topo p in
          let base = Mtopo.slot_base t.topo p in
          for j = 0 to min t.fanout deg - 1 do
            let s = base + (((r * t.fanout) + j) mod deg) in
            let target = Mtopo.slot_dst t.topo s in
            let lat = Mtopo.slot_lat_ms t.topo s /. 1000.0 in
            Engine.schedule engine ~delay:lat (fun engine ->
                if pop_alive p && pop_alive target then
                  merge t ~from:p ~into:target ~now:(Engine.now engine)
                    ~pop_alive)
          done
        end
      done)
