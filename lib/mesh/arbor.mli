(** Precomputed spanning arborescences: k in-trees per destination.

    The O(1) failover layer. The generated topology always contains the
    id-ring, so a Hamiltonian cycle through each destination gives a
    free st-numbering [pi v = (v - dst) mod pops]. The {e low} tree
    descends pi (each node parents its lowest-depth strictly-lower-pi
    neighbor), the {e high} tree ascends pi to the ring predecessor of
    the destination, which parents it directly. Both are spanning
    in-trees — parent pointers strictly descend/ascend a total order,
    so every path is loop-free and arrives within [pops] hops — and
    their paths from any node are internally vertex-disjoint: they
    share only the node itself and the destination. A single dead
    relay therefore blocks at most one of the pair, and a packet
    stuck on one tree rotates to the other with an O(1) array probe —
    never a recomputation. Tree 0 (when [k >= 3]) is the plain BFS
    shortest-path tree that the stitching layer walks; trees beyond
    the first three rotate the parent choice through the ordered
    lower/higher candidates, best-effort extra diversity. *)

type t

val build : ?k:int -> Mtopo.t -> t
(** [k] trees per destination (default 3). O(pops^2 * degree * k) build,
    performed once, off the packet path. Raises {!Err.Invalid} for
    [k < 1] or [k > 255]. *)

val k : t -> int
val pops : t -> int

val next_hop : t -> dst:int -> tree:int -> pop:int -> int
(** Parent of [pop] on [tree] toward [dst]; [-1] at the destination
    itself (or for an unreachable node). Allocation-free O(1). *)

val depth : t -> dst:int -> pop:int -> int
(** BFS hop distance to [dst] ([-1] if unreachable) — tree 0 realizes
    exactly these shortest paths. *)

val closer_count : t -> dst:int -> pop:int -> int
(** Number of strictly-closer neighbors: the shortest-path diversity
    the topology offers at this node regardless of tie-breaks. *)

val distinct_parents : t -> dst:int -> pop:int -> int
(** Realized count of distinct parents of [pop] across the k trees
    toward [dst]. At least 2 wherever the low and high parents differ;
    the property tests assert the low/high paths are internally
    vertex-disjoint, which is the stronger guarantee. *)

val diversity : t -> float
(** Mean over all (dst, node) cells of
    [distinct_parents / min k (degree node)]: 1.0 when every node
    spreads its trees over as many distinct out-edges as the topology
    allows — the E15 "path diversity" column. *)
