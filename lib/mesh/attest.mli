(** Verifiable forwarding: per-hop digest chains over stitched routes.

    Each forwarding relay folds [(hop id, tree id, post-decrement TTL)]
    into a running FNV-1a chain carried in the segment header's attest
    field ({!Segment.flag_attest}); the receiving PoP recomputes the
    chain of the route it committed to at stitch time and classifies
    any mismatch into a typed verdict. The chain is evidence, not
    cryptography — see DESIGN.md §15 for the threat model — but it
    detects every modeled relay misbehavior deterministically at zero
    per-packet allocation.

    The verifier state is preallocated at creation: the hot entry
    points ({!chain_seed}, {!fold_hop}, {!check}, {!verify}) touch no
    heap beyond the amortized growth of the per-flow replay bitsets. *)

type verdict =
  | Verified  (** Chain equals the committed fold. *)
  | Wrong_path
      (** TTL shows more physical hops than the route has — the packet
          transited PoPs not on the committed path. *)
  | Truncated
      (** Chain matches a proper prefix of the committed fold, or the
          TTL shows fewer hops than committed: a relay short-cut the
          tail. *)
  | Replayed  (** (flow, seq) was already delivered. *)
  | Forged
      (** Same-length route but evidence no honest fold explains. *)

val verdict_code : verdict -> int
(** Stable small-int encoding (0..4), mixed into delivery fingerprints. *)

val verdict_to_string : verdict -> string

val route_cap : int
(** Committed-route slots per flow: {!Segment.max_segments}. *)

type t

val create : ?suspect_threshold:int -> pops:int -> flows:int -> unit -> t
(** Verifier for a [pops]-relay mesh carrying [flows] flows.
    [suspect_threshold] (default 4) is how many unlocalized bad
    verdicts an intermediate accumulates before {!suspicion} marks it
    quarantinable. *)

val suspect_threshold : t -> int

val commit : t -> flow:int -> src:int -> hops:int array -> count:int -> unit
(** Record the committed route for [flow]: [src] plus the stitched
    entries [hops.(0 .. count-2)] ([count] entries, destination last)
    — the out-of-band commitment exchange done at stitch time. *)

val committed : t -> flow:int -> bool

val route_len : t -> flow:int -> int
(** Forwarding relays committed for [flow] (0 = no commitment). *)

val route_hop : t -> flow:int -> i:int -> int
(** [i]-th forwarding relay of the committed route (0 = source). *)

val chain_seed : flow:int -> seq:int -> src:int -> dst:int -> int
(** Per-packet chain seed, derived from the flow tuple so replayed or
    re-addressed evidence never transplants. *)

val fold_hop : int -> hop:int -> tree:int -> ttl:int -> int
(** One relay's fold: mix [(hop, tree, ttl)] into the running chain. *)

val check : t -> Segment.stack -> bool
(** Pure chain check: recompute the full committed fold for the frame's
    flow and compare — the dominant per-packet verify cost (benched as
    [attest.verify]). *)

val verify : t -> Segment.stack -> verdict
(** Classify a delivered frame. Stateful: marks [(flow, seq)] seen, so
    calling twice on the same frame yields [Replayed]. Frames for
    uncommitted flows are [Verified] (nothing to check against); a
    flow id outside the verifier's universe or a seq past the replay
    window is [Forged] — no honest source produces either, and the
    check is total on arbitrary decoded headers (it never raises). *)

val judge : t -> Segment.stack -> verdict
(** {!verify} plus culprit handling: localizes Truncated/Wrong_path
    evidence (see {!last_culprit}) and bumps route-intermediate
    suspicion on unlocalizable bad verdicts. Clean deliveries do {e
    not} exonerate — a replaying relay's original traffic still
    verifies, so a verified-resets-suspicion rule would let it clear
    itself forever. *)

val last_culprit : t -> int
(** PoP the last {!judge} localized blame to, or [-1] when the
    evidence names none (Verified, Replayed, Forged, or an
    unlocalizable Truncated/Wrong_path chain). *)

val suspicion : t -> pop:int -> int
(** Accumulated unlocalized bad verdicts over routes through [pop].
    Crossing {!suspect_threshold} makes the relay quarantine it — an
    over-approximation by design; quarantine is reversible with
    backoff, never permanent. *)

val reset_suspicion : t -> pop:int -> unit
(** Consume [pop]'s suspicion (done at quarantine time, so a readmitted
    pop must re-offend from zero). *)
