module Engine = Tango_sim.Engine
module Policy = Tango.Policy
module Channel = Tango_ctrl.Channel
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* The mesh dataplane: every PoP's forwarding state lives in flat
   arrays indexed by PoP id or CSR slot — one process hosts hundreds of
   PoPs with no per-pair worlds. Forwarding consumes the segment stack
   hop by hop; when the stacked next hop is locally dead (hello
   timeout) the frame flips to arborescence mode and failover is a
   rotation to the next precomputed tree: an O(1) probe bounded by the
   tree count, never a rediscovery.

   Liveness is local knowledge only: a PoP trusts its own hello view
   of its neighbors and nothing else. Packets in flight toward a
   not-yet-detected dead relay are lost — that detection window is
   exactly the recovery latency E15 measures. *)

let m_sent = Metric.counter ~help:"Mesh frames sent" "mesh_sent_total"
let m_delivered = Metric.counter ~help:"Mesh frames delivered" "mesh_delivered_total"
let m_dropped = Metric.counter ~help:"Mesh frames dropped" "mesh_dropped_total"

let m_reroutes =
  Metric.counter ~help:"Mesh arborescence rotations (O(1) failovers)"
    "mesh_reroutes_total"

let m_rejected =
  Metric.counter ~help:"Mesh frames rejected by attestation verdicts"
    "mesh_attest_rejected_total"

let m_quarantines =
  Metric.counter ~help:"Relay quarantines applied from attest verdicts"
    "mesh_quarantines_total"

let m_readmissions =
  Metric.counter ~help:"Quarantined relays readmitted after backoff"
    "mesh_readmissions_total"

let k_verdict = Trace.kind "mesh.attest_verdict"
let k_quarantine = Trace.kind "mesh.quarantine"
let k_readmit = Trace.kind "mesh.readmit"

type misbehavior = Honest | Detour | Forge | Truncate | Replay

let misbehavior_code = function
  | Honest -> 0
  | Detour -> 1
  | Forge -> 2
  | Truncate -> 3
  | Replay -> 4

(* Fingerprint code for a delivered frame that arbor failover excused
   from judgment (the Attest verdict codes stop at 4). *)
let excused_code = 5

(* A re-quarantined relay serves quarantine_s * 2^(n-1), capped. *)
let quarantine_cap_s = 60.0

type t = {
  topo : Mtopo.t;
  arbor : Arbor.t;
  engine : Engine.t;
  gossip : Gossip.t;
  trees : int;
  hello_interval_s : float;
  dead_after_s : float;
  ban_s : float;
  pop_up : Bytes.t; (* per pop: ground truth *)
  link_up : Bytes.t; (* per slot: ground truth *)
  heard_s : float array; (* per slot (u->v): when v last heard u's hello *)
  nbr_alive : Bytes.t; (* per slot (u->v): v's local view of u *)
  suspected_at : float array; (* per slot: latest alive->dead transition *)
  policies : Policy.t array; (* per pop: tree preference + tree bans *)
  scratch : Segment.stack;
  quarantine_s : float;
  mutable att : Attest.t option; (* verifier; None = attestation off *)
  mis : Bytes.t; (* per pop: misbehavior code (fault injection) *)
  quarantined : Bytes.t; (* per pop: currently quarantined *)
  quar_policy : Policy.t; (* quarantine bans, one path id per pop *)
  quar_times : int array; (* per pop: quarantine episodes (backoff exp) *)
  rep_buf : Bytes.t; (* replaying relay's captured frame *)
  verdicts : int array; (* judged deliveries per verdict code *)
  mutable rep_len : int;
  mutable rep_until : float;
  mutable on_deliver : flow:int -> seq:int -> tree:int -> now:float -> unit;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable forwarded : int;
  mutable rejected : int;
  mutable excused : int;
  mutable quar_count : int;
  mutable quarantines : int;
  mutable readmissions : int;
  mutable first_verdict_s : float;
  mutable reroutes : int;
  mutable max_rot : int;
  mutable discovery_msgs : int;
  mutable hello_msgs : int;
  mutable fp_sum : int;
  mutable fp_xor : int;
}

let create ?(hello_interval_s = 0.025) ?(dead_after_s = 0.1) ?(ban_s = 1.0)
    ?(quarantine_s = 2.0) ~topo ~arbor ~engine ~gossip () =
  if hello_interval_s <= 0.0 then Err.invalid "Relay.create: non-positive hello interval";
  if dead_after_s <= hello_interval_s then
    Err.invalid "Relay.create: dead-after %g must exceed the hello interval %g"
      dead_after_s hello_interval_s;
  if ban_s <= 0.0 then Err.invalid "Relay.create: non-positive ban duration";
  if quarantine_s <= 0.0 then
    Err.invalid "Relay.create: non-positive quarantine duration";
  let n = Mtopo.pops topo in
  let slots = Mtopo.edges topo in
  let trees = Arbor.k arbor in
  {
    topo;
    arbor;
    engine;
    gossip;
    trees;
    hello_interval_s;
    dead_after_s;
    ban_s;
    pop_up = Bytes.make n '\001';
    link_up = Bytes.make slots '\001';
    heard_s = Array.make slots 0.0;
    nbr_alive = Bytes.make slots '\001';
    suspected_at = Array.make slots nan;
    policies =
      Array.init n (fun _ -> Policy.create ~path_capacity:trees (Policy.Static 0));
    scratch = Segment.create_stack ();
    quarantine_s;
    att = None;
    mis = Bytes.make n '\000';
    quarantined = Bytes.make n '\000';
    quar_policy = Policy.create ~path_capacity:n (Policy.Static 0);
    quar_times = Array.make n 0;
    rep_buf = Bytes.make Segment.max_header_bytes '\000';
    verdicts = Array.make 5 0;
    rep_len = 0;
    rep_until = 0.0;
    on_deliver = (fun ~flow:_ ~seq:_ ~tree:_ ~now:_ -> ());
    sent = 0;
    delivered = 0;
    dropped = 0;
    forwarded = 0;
    rejected = 0;
    excused = 0;
    quar_count = 0;
    quarantines = 0;
    readmissions = 0;
    first_verdict_s = nan;
    reroutes = 0;
    max_rot = 0;
    discovery_msgs = 0;
    hello_msgs = 0;
    fp_sum = Channel.digest_seed;
    fp_xor = 0;
  }

let set_on_deliver t f = t.on_deliver <- f
let pop_alive t pop = Bytes.get_uint8 t.pop_up pop = 1
let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let forwarded t = t.forwarded
let reroutes t = t.reroutes
let max_rotations t = t.max_rot
let discovery_msgs t = t.discovery_msgs
let hello_msgs t = t.hello_msgs
let note_discovery t = t.discovery_msgs <- t.discovery_msgs + 1
let set_attest t att = t.att <- Some att
let attest t = t.att
let attest_rejected t = t.rejected
let attest_excused t = t.excused
let verdict_count t v = t.verdicts.(Attest.verdict_code v)
let quarantines t = t.quarantines
let readmissions t = t.readmissions
let quarantined t ~pop = Bytes.get_uint8 t.quarantined pop = 1
let quarantined_count t = t.quar_count
let ever_quarantined t ~pop = t.quar_times.(pop) > 0
let first_verdict_s t = t.first_verdict_s

let set_misbehavior ?(until = infinity) t ~pop m =
  if pop < 0 || pop >= Mtopo.pops t.topo then
    Err.invalid "Relay.set_misbehavior: pop %d" pop;
  Bytes.set_uint8 t.mis pop (misbehavior_code m);
  if m = Replay then t.rep_until <- until

let fingerprint t =
  Printf.sprintf "%015x-%015x"
    (t.fp_sum land 0x0FFFFFFFFFFFFFFF)
    (t.fp_xor land 0x0FFFFFFFFFFFFFFF)

(* ------------------------------------------------------------------ *)
(* Fault surface: ground-truth toggles driven by Mesh's scenario
   arming. Detection still goes through hellos — nothing here touches
   any PoP's local view. *)

let kill_pop t ~pop =
  if pop < 0 || pop >= Mtopo.pops t.topo then Err.invalid "Relay.kill_pop: pop %d" pop;
  Bytes.set_uint8 t.pop_up pop 0

let revive_pop t ~pop =
  if pop < 0 || pop >= Mtopo.pops t.topo then Err.invalid "Relay.revive_pop: pop %d" pop;
  Bytes.set_uint8 t.pop_up pop 1

let set_region_links t ~region ~up =
  if region < 0 || region >= Mtopo.regions t.topo then
    Err.invalid "Relay: region %d out of range" region;
  let v = if up then 1 else 0 in
  let n = Mtopo.pops t.topo in
  for i = 0 to n - 1 do
    if Mtopo.region t.topo i = region then
      for s = Mtopo.slot_base t.topo i to
              Mtopo.slot_base t.topo i + Mtopo.degree t.topo i - 1 do
        if Mtopo.region t.topo (Mtopo.slot_dst t.topo s) <> region then begin
          Bytes.set_uint8 t.link_up s v;
          Bytes.set_uint8 t.link_up (Mtopo.slot_rev t.topo s) v
        end
      done
  done

let cut_region t ~region = set_region_links t ~region ~up:false
let heal_region t ~region = set_region_links t ~region ~up:true

(* ------------------------------------------------------------------ *)
(* Quarantine: the verdict-driven analogue of a probe-detected fault.
   A convicted relay is banned as a forwarding target — [slot_viable]
   treats it like a dead neighbor, so live traffic flips to
   arborescence steering around it, the same O(1) failover that covers
   honest crashes. Durations back off exponentially per episode via the
   standard {!Policy.ban} machinery (bookkeeping on a dedicated policy
   whose path ids are PoP ids); readmission is scheduled at the expiry
   and re-checks {!Policy.ban_remaining} so a re-conviction while
   serving extends the sentence rather than racing the timer. *)

let readmit t ~pop engine =
  let now = Engine.now engine in
  if
    Bytes.get_uint8 t.quarantined pop = 1
    && Policy.ban_remaining t.quar_policy ~path:pop ~now_s:now <= 0.0
  then begin
    Bytes.set_uint8 t.quarantined pop 0;
    t.quar_count <- t.quar_count - 1;
    t.readmissions <- t.readmissions + 1;
    Metric.incr m_readmissions;
    Trace.record Trace.default ~now ~kind:k_readmit pop t.quar_times.(pop)
  end

let quarantine t ~pop ~now =
  if Bytes.get_uint8 t.quarantined pop = 0 then begin
    Bytes.set_uint8 t.quarantined pop 1;
    t.quar_count <- t.quar_count + 1;
    t.quarantines <- t.quarantines + 1;
    t.quar_times.(pop) <- t.quar_times.(pop) + 1;
    (match t.att with
    | Some att -> Attest.reset_suspicion att ~pop
    | None -> ());
    let dur =
      Float.min quarantine_cap_s
        (t.quarantine_s *. (2.0 ** float_of_int (t.quar_times.(pop) - 1)))
    in
    Policy.ban t.quar_policy ~path:pop ~now_s:now ~for_s:dur;
    Metric.incr m_quarantines;
    Trace.record Trace.default ~now ~kind:k_quarantine pop t.quar_times.(pop);
    Engine.schedule t.engine ~delay:dur (fun engine -> readmit t ~pop engine)
  end

(* ------------------------------------------------------------------ *)
(* Hellos: one timer per PoP. A tick first re-evaluates the PoP's view
   of each neighbor against [dead_after_s], then stamps fresh hellos
   into the neighbors' hearing slots (written at send time with the
   link latency added — no per-hello event, which keeps a 128-PoP mesh
   at tens of events per virtual second instead of thousands). *)

let tick t pop engine =
  if Bytes.get_uint8 t.pop_up pop = 1 then begin
    let now = Engine.now engine in
    let base = Mtopo.slot_base t.topo pop in
    for s = base to base + Mtopo.degree t.topo pop - 1 do
      let u = Mtopo.slot_dst t.topo s in
      (* [pop]'s view of [u] lives on the reverse slot (u->pop). *)
      let rs = Mtopo.slot_rev t.topo s in
      let alive = now -. t.heard_s.(rs) <= t.dead_after_s in
      let cur = Bytes.get_uint8 t.nbr_alive rs in
      if alive && cur = 0 then begin
        Bytes.set_uint8 t.nbr_alive rs 1;
        Gossip.observe t.gossip ~observer:pop ~subject:u ~alive:true ~now
          ~pop_alive:(pop_alive t)
      end
      else if (not alive) && cur = 1 then begin
        Bytes.set_uint8 t.nbr_alive rs 0;
        t.suspected_at.(rs) <- now;
        Gossip.observe t.gossip ~observer:pop ~subject:u ~alive:false ~now
          ~pop_alive:(pop_alive t)
      end;
      if Bytes.get_uint8 t.link_up s = 1 then begin
        t.heard_s.(s) <- now +. (Mtopo.slot_lat_ms t.topo s /. 1000.0);
        t.hello_msgs <- t.hello_msgs + 1
      end
    done
  end

let start_hellos t ~until =
  for pop = 0 to Mtopo.pops t.topo - 1 do
    Engine.every t.engine ~interval:t.hello_interval_s ~until (tick t pop)
  done

(* Detection latency for a killed PoP: the slowest of its live
   neighbors to flip their view after [after]. -1 when none did. *)
let detection_ms_after t ~pop ~after =
  let worst = ref (-1.0) in
  for s = Mtopo.slot_base t.topo pop to
          Mtopo.slot_base t.topo pop + Mtopo.degree t.topo pop - 1 do
    let v = Mtopo.slot_dst t.topo s in
    if Bytes.get_uint8 t.pop_up v = 1 && t.suspected_at.(s) >= after then
      worst := Float.max !worst ((t.suspected_at.(s) -. after) *. 1000.0)
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Forwarding. *)

(* Is the directed slot usable from the forwarding PoP's local point of
   view? Link administratively up, the neighbor's hellos fresh, and the
   neighbor not serving an attestation quarantine (all-zero when
   attestation is off, so the check is behavior-neutral there). *)
let[@hot] slot_viable t s =
  Bytes.get_uint8 t.link_up s = 1
  && Bytes.get_uint8 t.nbr_alive (Mtopo.slot_rev t.topo s) = 1
  && Bytes.get_uint8 t.quarantined (Mtopo.slot_dst t.topo s) = 0

(* Next slot from the segment stack, or -1 when the stack is exhausted
   or its next hop is locally dead. *)
let[@hot] stack_next t pop st =
  if st.Segment.flags land Segment.flag_arbor = 0 && st.Segment.top < st.Segment.count
  then begin
    let cand = st.Segment.hops.(st.Segment.top) in
    let s = Mtopo.slot t.topo ~src:pop ~dst:cand in
    if s >= 0 && slot_viable t s then s else -1
  end
  else -1

(* Arborescence failover: probe trees in circular order starting at the
   tree stamped in the packet. Each tree is an in-tree, so a packet
   keeps the same tree until a locally-dead next hop forces a rotation;
   the dead tree is banned for [ban_s] (feeding the standard Policy
   flap machinery — bookkeeping, not a gate: a banned tree whose next
   hop is alive again still forwards). At most [trees] probes — the
   O(1) bound the E15 gate asserts. Returns the chosen slot (st.tree
   updated) or -1. *)
let[@hot] arbor_next t pop st ~now =
  let pol = t.policies.(pop) in
  let pref = st.Segment.tree in
  let chosen = ref (-1) in
  let rot = ref 0 in
  let i = ref 0 in
  while !chosen < 0 && !i < t.trees do
    let tree = (pref + !i) mod t.trees in
    let nh = Arbor.next_hop t.arbor ~dst:st.Segment.dst ~tree ~pop in
    if nh >= 0 then begin
      ignore (Policy.readmit_banned pol ~path:tree ~now_s:now);
      let s = Mtopo.slot t.topo ~src:pop ~dst:nh in
      if s >= 0 && slot_viable t s then begin
        chosen := s;
        st.Segment.tree <- tree
      end
      else begin
        Policy.ban pol ~path:tree ~now_s:now ~for_s:t.ban_s;
        incr rot
      end
    end
    else incr rot;
    incr i
  done;
  if !rot > 0 then begin
    t.reroutes <- t.reroutes + !rot;
    if !rot > t.max_rot then t.max_rot <- !rot;
    Gossip.bump_table_version t.gossip ~pop
  end;
  if !chosen >= 0 && Policy.current pol <> st.Segment.tree then
    Policy.retarget pol ~path:st.Segment.tree;
  !chosen

(* [verdict] -1 = unjudged (attestation off): mixed exactly as before
   the attest extension, so attestation-off fingerprints are
   byte-identical to the pre-attest ones. *)
let[@hot] mix_delivery t ~flow ~seq ~tree ~budget ~verdict ~now =
  let h = Channel.digest_mix t.fp_sum flow in
  let h = Channel.digest_mix h seq in
  let h = Channel.digest_mix h ((tree lsl 8) lor budget) in
  let h = Channel.digest_mix h (int_of_float (now *. 1e6)) in
  let h = if verdict >= 0 then Channel.digest_mix h verdict else h in
  t.fp_sum <- h;
  t.fp_xor <- t.fp_xor lxor h

let drop t =
  t.dropped <- t.dropped + 1;
  Metric.incr m_dropped

let deliver t st ~verdict ~now =
  t.delivered <- t.delivered + 1;
  Metric.incr m_delivered;
  mix_delivery t ~flow:st.Segment.flow ~seq:st.Segment.seq
    ~tree:st.Segment.tree ~budget:st.Segment.hop_budget ~verdict ~now;
  t.on_deliver ~flow:st.Segment.flow ~seq:st.Segment.seq
    ~tree:st.Segment.tree ~now

(* A bad verdict rejects the frame — counted as [rejected], neither
   delivered nor dropped — and feeds quarantine: localized evidence
   convicts the named culprit directly; unlocalized evidence bumped
   suspicion inside {!Attest.judge}, so sweep the route's intermediates
   for any that just crossed the threshold. *)
let reject t att st ~code ~now =
  t.rejected <- t.rejected + 1;
  Metric.incr m_rejected;
  if Float.is_nan t.first_verdict_s then t.first_verdict_s <- now;
  let culprit = Attest.last_culprit att in
  Trace.record Trace.default ~now ~kind:k_verdict code culprit;
  if culprit >= 0 then quarantine t ~pop:culprit ~now
  else begin
    let flow = st.Segment.flow in
    let n = Attest.route_len att ~flow in
    for i = 1 to n - 1 do
      let p = Attest.route_hop att ~flow ~i in
      if
        Bytes.get_uint8 t.quarantined p = 0
        && Attest.suspicion att ~pop:p >= Attest.suspect_threshold att
      then quarantine t ~pop:p ~now
    done
  end

(* Deterministic stand-in next hop for the detour fault: the first
   neighbor that is not the stacked next hop. *)
let detour_buddy t pop st =
  let base = Mtopo.slot_base t.topo pop in
  let deg = Mtopo.degree t.topo pop in
  let nxt =
    if st.Segment.top < st.Segment.count then st.Segment.hops.(st.Segment.top)
    else -1
  in
  let b = ref (Mtopo.slot_dst t.topo base) in
  let i = ref 1 in
  while !b = nxt && !i < deg do
    b := Mtopo.slot_dst t.topo (base + !i);
    incr i
  done;
  !b

let rec forward t ~pop ~now frame =
  let st = t.scratch in
  if not (Segment.decode_into ~buf:frame ~off:0 ~len:(Bytes.length frame) st)
  then drop t
  else if st.Segment.dst = pop then begin
    match t.att with
    | Some att when st.Segment.flags land Segment.flag_attest <> 0 ->
        if st.Segment.flags land Segment.flag_arbor <> 0 then begin
          (* Arbor failover re-steered this frame off its committed
             route, so the evidence cannot match by construction.
             Delivered excused, never judged — the §15 caveat. *)
          t.excused <- t.excused + 1;
          deliver t st ~verdict:excused_code ~now
        end
        else begin
          let v = Attest.judge att st in
          let code = Attest.verdict_code v in
          t.verdicts.(code) <- t.verdicts.(code) + 1;
          if v = Attest.Verified then deliver t st ~verdict:code ~now
          else reject t att st ~code ~now
        end
    | _ -> deliver t st ~verdict:(-1) ~now
  end
  else if st.Segment.hop_budget <= 0 then drop t
  else begin
    let m = Bytes.get_uint8 t.mis pop in
    (* A replaying relay captures the first transit frame it sees
       as-arrived and re-injects byte copies of it at itself every
       100 ms — each copy then takes the honest tail of the route and
       presents a pristine chain with a spent (flow, seq). Frames the
       relay itself sourced are not eligible: the replayer must sit on
       the captured flow's route as an intermediate, which is what lets
       the destination's suspicion scoring eventually reach it. *)
    if
      m = 4 && t.rep_len = 0 && st.Segment.src <> pop
      && Bytes.length frame <= Bytes.length t.rep_buf
    then begin
      t.rep_len <- Bytes.length frame;
      Bytes.blit frame 0 t.rep_buf 0 t.rep_len;
      let len = t.rep_len in
      Engine.every t.engine ~interval:0.1 ~until:t.rep_until (fun engine ->
          if Bytes.get_uint8 t.mis pop = 4 then
            arrive t ~pop engine (Bytes.sub t.rep_buf 0 len))
    end;
    st.Segment.hop_budget <- st.Segment.hop_budget - 1;
    let attest_on = st.Segment.flags land Segment.flag_attest <> 0 in
    if m = 1 then begin
      (* Detour: fold a neighbor off the committed route as if the
         packet transited it, and burn the extra physical hop. *)
      if attest_on then
        st.Segment.digest <-
          Attest.fold_hop st.Segment.digest ~hop:(detour_buddy t pop st)
            ~tree:st.Segment.tree ~ttl:st.Segment.hop_budget;
      st.Segment.hop_budget <- st.Segment.hop_budget - 1
    end;
    if attest_on then
      st.Segment.digest <-
        Attest.fold_hop st.Segment.digest ~hop:pop ~tree:st.Segment.tree
          ~ttl:st.Segment.hop_budget;
    if m = 2 && attest_on then
      (* Tamper: garble the evidence after folding — the chain stops
         matching any honest fold of the committed route. *)
      st.Segment.digest <- Channel.digest_mix st.Segment.digest 0xBADC0DE;
    if m = 3 then begin
      (* Truncate: short-cut the rest of the overlay route through the
         underlay, arriving directly at the destination on a fixed
         2 ms path that folds no further evidence. *)
      Segment.patch_cursor ~buf:frame ~off:0 st;
      t.forwarded <- t.forwarded + 1;
      let dst = st.Segment.dst in
      Engine.schedule t.engine ~delay:0.002 (fun engine ->
          arrive t ~pop:dst engine frame)
    end
    else begin
      let s = stack_next t pop st in
      let s =
        if s >= 0 then begin
          st.Segment.top <- st.Segment.top + 1;
          s
        end
        else begin
          (* Stack unusable: flip to arborescence steering. The flip
             itself is a reroute when a live stack entry was abandoned. *)
          if
            st.Segment.flags land Segment.flag_arbor = 0
            && st.Segment.top < st.Segment.count
          then begin
            t.reroutes <- t.reroutes + 1;
            Metric.incr m_reroutes
          end;
          st.Segment.flags <- st.Segment.flags lor Segment.flag_arbor;
          arbor_next t pop st ~now
        end
      in
      if s < 0 then drop t
      else begin
        Segment.patch_cursor ~buf:frame ~off:0 st;
        t.forwarded <- t.forwarded + 1;
        let nh = Mtopo.slot_dst t.topo s in
        let delay = Mtopo.slot_lat_ms t.topo s /. 1000.0 in
        Engine.schedule t.engine ~delay (fun engine -> arrive t ~pop:nh engine frame)
      end
    end
  end

and arrive t ~pop engine frame =
  if Bytes.get_uint8 t.pop_up pop = 1 then
    forward t ~pop ~now:(Engine.now engine) frame
  else drop t

let send t ~src ~flow ~seq ~hops ~seg_paths ~count =
  if count < 1 || count > Segment.max_segments then
    Err.invalid "Relay.send: %d segments outside [1,%d]" count Segment.max_segments;
  let st = t.scratch in
  st.Segment.tree <- Policy.current t.policies.(src);
  st.Segment.top <- 0;
  st.Segment.src <- src;
  st.Segment.dst <- hops.(count - 1);
  st.Segment.flow <- flow;
  st.Segment.seq <- seq;
  st.Segment.count <- count;
  st.Segment.hop_budget <- 255;
  (match t.att with
  | Some _ ->
      st.Segment.flags <- Segment.flag_attest;
      st.Segment.digest <-
        Attest.chain_seed ~flow ~seq ~src ~dst:st.Segment.dst
  | None ->
      st.Segment.flags <- 0;
      st.Segment.digest <- 0);
  Array.blit hops 0 st.Segment.hops 0 count;
  Array.blit seg_paths 0 st.Segment.seg_path 0 count;
  let frame = Bytes.create (Segment.frame_bytes st) in
  ignore (Segment.encode_into ~buf:frame ~off:0 st);
  t.sent <- t.sent + 1;
  Metric.incr m_sent;
  if Bytes.get_uint8 t.pop_up src = 1 then
    forward t ~pop:src ~now:(Engine.now t.engine) frame
  else drop t
