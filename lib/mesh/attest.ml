module Channel = Tango_ctrl.Channel

(* Verifiable forwarding: the forwarding-commitments idea (arXiv
   2309.13271) scaled down to the mesh's trust model. Every forwarding
   relay folds (hop id, tree id, post-decrement TTL) into a running
   FNV-1a chain carried in the segment header's attest field; the
   receiving PoP recomputes the chain it committed to at stitch time
   and classifies any mismatch.

   The chain is evidence, not cryptography — FNV-1a is trivially
   forgeable by an adversary that knows the scheme. What it buys at
   zero per-packet allocation is exactly what the experiments need:
   deterministic detection of every modeled misbehavior (silent
   detours, evidence suppression, underlay shortcuts, replays) and a
   localization story good enough to feed the quarantine machinery.
   DESIGN.md §15 spells out the threat model and the MAC upgrade path.

   Verdict classification, given the committed route of [n] forwarding
   relays (src plus the intermediates):

   - Replayed:   (flow, seq) already delivered — checked first, so a
                 byte-perfect copy of an honest frame is still caught.
   - Verified:   chain equals the committed fold.
   - Truncated:  the chain matches a proper prefix of the committed
                 fold, or the TTL shows fewer physical hops than the
                 route has — some relay short-cut the tail (e.g. an
                 underlay default-route tunnel past the overlay).
   - Wrong_path: the TTL shows extra physical hops — the packet
                 demonstrably transited PoPs not on the route.
   - Forged:     same-length route but a chain no honest fold explains
                 (garbled evidence field, suppressed fold).

   Localization: a Truncated chain names its last honest folder
   directly (the prefix length). A Wrong_path chain is searched for a
   single inserted hop — O(n^2 * pops) fold steps, mismatch path only.
   Replayed/Forged verdicts carry no position evidence; those fall
   back to suspicion scoring over the route's intermediates, where
   only repeat offenders cross the quarantine threshold. *)

type verdict = Verified | Wrong_path | Truncated | Replayed | Forged

let verdict_code = function
  | Verified -> 0
  | Wrong_path -> 1
  | Truncated -> 2
  | Replayed -> 3
  | Forged -> 4

let verdict_to_string = function
  | Verified -> "verified"
  | Wrong_path -> "wrong-path"
  | Truncated -> "truncated"
  | Replayed -> "replayed"
  | Forged -> "forged"

(* Route slots per flow: src plus at most [max_segments - 1]
   intermediates. *)
let route_cap = Segment.max_segments

type t = {
  pops : int;
  flows : int;
  suspect_threshold : int;
  route_len : int array; (* forwarding relays committed; 0 = no commitment *)
  route_hops : int array; (* flow-major [route_cap] slots: src, intermediates *)
  seen : Bytes.t array; (* per flow: delivered-seq bitset, grown on demand *)
  suspicion : int array; (* per pop: unlocalized bad verdicts on its routes *)
  mutable last_culprit : int; (* localization result of the last [judge] *)
}

let create ?(suspect_threshold = 4) ~pops ~flows () =
  if pops < 1 then Err.invalid "Attest.create: need at least one pop";
  if flows < 1 then Err.invalid "Attest.create: need at least one flow";
  if suspect_threshold < 1 then
    Err.invalid "Attest.create: suspect threshold %d not positive"
      suspect_threshold;
  {
    pops;
    flows;
    suspect_threshold;
    route_len = Array.make flows 0;
    route_hops = Array.make (flows * route_cap) 0;
    seen = Array.init flows (fun _ -> Bytes.make 64 '\000');
    suspicion = Array.make pops 0;
    last_culprit = -1;
  }

let suspect_threshold t = t.suspect_threshold

(* The receiving PoP learns the committed route out of band at stitch
   time — the control-plane commitment exchange of the paper. [hops] is
   the stitched entry array ([count] entries, destination last); the
   forwarding relays are the source plus [hops.(0 .. count - 2)]. Only
   fully-stitched routes commit: a route that overflows the stack falls
   back to arborescence steering mid-way and its frames arrive excused
   (arbor-flagged), never judged. *)
let commit t ~flow ~src ~hops ~count =
  if flow < 0 || flow >= t.flows then Err.invalid "Attest.commit: flow %d" flow;
  if count < 1 || count > route_cap then
    Err.invalid "Attest.commit: %d entries outside [1,%d]" count route_cap;
  let base = flow * route_cap in
  t.route_hops.(base) <- src;
  for i = 0 to count - 2 do
    t.route_hops.(base + 1 + i) <- hops.(i)
  done;
  t.route_len.(flow) <- count

let committed t ~flow = t.route_len.(flow) > 0

let route_len t ~flow = t.route_len.(flow)

let route_hop t ~flow ~i = t.route_hops.((flow * route_cap) + i)

(* ------------------------------------------------------------------ *)
(* Chain construction (hot: once per forwarded packet).                 *)

let[@hot] chain_seed ~flow ~seq ~src ~dst =
  let h = Channel.digest_mix Channel.digest_seed flow in
  let h = Channel.digest_mix h seq in
  Channel.digest_mix h ((src lsl 16) lor dst)

let[@hot] fold_hop d ~hop ~tree ~ttl =
  Channel.digest_mix d ((hop lsl 16) lor ((tree land 0xFF) lsl 8) lor (ttl land 0xFF))

(* Expected chain over the first [upto] committed folds: relay [i]
   folds with post-decrement TTL [254 - i] (the sender stamps 255 and
   every forward decrements before folding). *)
let[@hot] expected_prefix t st ~upto =
  let base = st.Segment.flow * route_cap in
  let d =
    ref
      (chain_seed ~flow:st.Segment.flow ~seq:st.Segment.seq ~src:st.Segment.src
         ~dst:st.Segment.dst)
  in
  for i = 0 to upto - 1 do
    d :=
      fold_hop !d
        ~hop:(Array.unsafe_get t.route_hops (base + i))
        ~tree:st.Segment.tree ~ttl:(254 - i)
  done;
  !d

(* The pure chain check the bench row measures: recompute the full
   committed fold and compare — the dominant per-packet verify cost. *)
let[@hot] check t st = st.Segment.digest = expected_prefix t st ~upto:t.route_len.(st.Segment.flow)

(* ------------------------------------------------------------------ *)
(* Replay tracking: per-flow delivered-seq bitsets.                     *)

let[@hot] seen_test_and_set t ~flow ~seq =
  let cur = Array.unsafe_get t.seen flow in
  let byte = seq lsr 3 in
  let cur =
    if byte >= Bytes.length cur then begin
      (* Double until the bit fits; Bytes.create + blit is the same
         amortized-growth idiom as Rolling's rings. *)
      let n = ref (Bytes.length cur) in
      while byte >= !n do
        n := !n * 2
      done;
      let grown = Bytes.make !n '\000' in
      Bytes.blit cur 0 grown 0 (Bytes.length cur);
      t.seen.(flow) <- grown;
      grown
    end
    else cur
  in
  let bit = 1 lsl (seq land 7) in
  let old = Bytes.get_uint8 cur byte in
  Bytes.set_uint8 cur byte (old lor bit);
  old land bit <> 0

(* ------------------------------------------------------------------ *)
(* Verification (hot: once per delivered packet).                       *)

(* Replay-tracking window: a seq past this bound cannot be an honest
   frame of any simulated flow (horizons give a few hundred seqs per
   flow), and admitting it would let a forged header force the bitset
   to grow by gigabytes. Out-of-window evidence is Forged, not grown. *)
let max_seq = (1 lsl 24) - 1

let[@hot] verify t st =
  let flow = st.Segment.flow in
  if flow < 0 || flow >= t.flows || st.Segment.seq < 0 || st.Segment.seq > max_seq
  then Forged
  else if seen_test_and_set t ~flow ~seq:st.Segment.seq then Replayed
  else begin
    let n = Array.unsafe_get t.route_len flow in
    if n = 0 then Verified
    else if check t st then Verified
    else begin
      (* Physical hops actually taken, per the TTL the relays burned. *)
      let taken = 255 - st.Segment.hop_budget in
      if taken < n then Truncated
      else if taken > n then Wrong_path
      else begin
        (* Same length: either a stripped chain (a relay short-cut and
           the chain matches a committed prefix) or evidence no honest
           fold explains. *)
        let d =
          ref
            (chain_seed ~flow ~seq:st.Segment.seq ~src:st.Segment.src
               ~dst:st.Segment.dst)
        in
        let hit = ref false in
        let base = flow * route_cap in
        for i = 0 to n - 2 do
          d :=
            fold_hop !d
              ~hop:(Array.unsafe_get t.route_hops (base + i))
              ~tree:st.Segment.tree ~ttl:(254 - i);
          if !d = st.Segment.digest then hit := true
        done;
        if !hit then Truncated else Forged
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Localization and suspicion (cold: mismatch path only).               *)

(* Blame a Truncated chain's last honest folder: the longest committed
   prefix the received digest matches ([k = 1] blames the source — a
   Byzantine source can short-cut its own route). -1 when no prefix
   matches. *)
let locate_truncated t st =
  let n = t.route_len.(st.Segment.flow) in
  let culprit = ref (-1) in
  for k = 1 to n - 1 do
    if st.Segment.digest = expected_prefix t st ~upto:k then
      culprit := route_hop t ~flow:st.Segment.flow ~i:(k - 1)
  done;
  !culprit

(* Blame a Wrong_path chain by searching for a single inserted hop:
   find (j, x) such that the committed fold with (x, ttl) inserted
   before fold [j] — and every later TTL shifted by the extra physical
   hop — reproduces the received digest. The relay that admitted the
   detour is committed fold [j] ([j = 0] blames the source itself: the
   insertion precedes every honest fold). [x] skips the blamed relay
   itself: "route hop [j] detoured through itself" folds hop [j] twice
   at consecutive TTLs, which is also how an honest fold of hop [j]
   preceded by a real detour through it at position [j + 1] reads — a
   physically impossible reading that would out-race the true match in
   ascending search order. O(n^2 * pops) fold steps, mismatch path
   only. *)
let locate_detour t st =
  let flow = st.Segment.flow in
  let n = t.route_len.(flow) in
  let base = flow * route_cap in
  let found = ref (-1) in
  let j = ref 0 in
  while !found < 0 && !j < n do
    let prefix = expected_prefix t st ~upto:!j in
    let blamed = t.route_hops.(base + !j) in
    let x = ref 0 in
    while !found < 0 && !x < t.pops do
      if !x <> blamed then begin
        let d = ref (fold_hop prefix ~hop:!x ~tree:st.Segment.tree ~ttl:(254 - !j)) in
        for i = !j to n - 1 do
          d := fold_hop !d ~hop:t.route_hops.(base + i) ~tree:st.Segment.tree ~ttl:(253 - i)
        done;
        if !d = st.Segment.digest then found := blamed
      end;
      incr x
    done;
    incr j
  done;
  !found

(* Unlocalizable verdicts (Replayed, Forged) bump suspicion for every
   intermediate on the evidence path. Deliberately, a clean delivery
   does NOT exonerate: a replaying relay's original traffic still
   verifies, so any verified-resets-suspicion rule would let it clear
   itself forever. The cost is over-approximation — a persistent
   offender drags its route co-intermediates over the threshold with
   it — which is why quarantine is reversible with backoff rather than
   permanent, and why {!reset_suspicion} zeroes the count at
   quarantine time (readmitted pops re-offend from scratch). *)
let accuse t ~flow =
  let n = t.route_len.(flow) in
  for i = 1 to n - 1 do
    let p = route_hop t ~flow ~i in
    t.suspicion.(p) <- t.suspicion.(p) + 1
  done

let suspicion t ~pop = t.suspicion.(pop)

(* Quarantining a pop consumes its accumulated suspicion: after
   readmission it must re-offend from zero before being re-quarantined
   on circumstantial evidence alone. *)
let reset_suspicion t ~pop = t.suspicion.(pop) <- 0

(* One-stop classification for the delivery path: verdict plus, for a
   bad one, the localized culprit in [last_culprit] (-1 when the
   evidence does not name one). *)
let judge t st =
  let v = verify t st in
  (match v with
  | Verified -> t.last_culprit <- -1
  | Truncated ->
      t.last_culprit <- locate_truncated t st;
      if t.last_culprit < 0 then accuse t ~flow:st.Segment.flow
  | Wrong_path ->
      t.last_culprit <- locate_detour t st;
      if t.last_culprit < 0 then accuse t ~flow:st.Segment.flow
  | Replayed | Forged ->
      t.last_culprit <- -1;
      (* Forged can also mean an out-of-range flow or seq (a header no
         honest source produced); there is no committed route to
         accuse then. *)
      let flow = st.Segment.flow in
      if flow >= 0 && flow < t.flows then accuse t ~flow);
  v

let last_culprit t = t.last_culprit
