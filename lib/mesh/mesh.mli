(** Tango-of-N orchestration: one engine hosting an N-PoP relay mesh.

    [run] builds a seeded world ({!Mtopo} topology, {!Arbor}
    arborescences, {!Gossip} membership, {!Relay} dataplane), stitches
    per-pair discovered segments into multi-hop source routes for a
    deterministic set of flows, arms mesh-level fault specs
    ([Relay_kill], [Mesh_partition], and the Byzantine-relay kinds
    [Relay_detour] / [Relay_tamper] / [Relay_replay]) from
    {!Tango_faults.Spec}, and returns a flat metrics record. Identical
    parameters give a byte-identical {!result.fingerprint}.

    With [~attest:true] the {!Attest} verifier is wired in: sources
    stamp per-hop digest chains, destinations judge every non-excused
    delivery against the committed routes, and bad verdicts feed the
    {!Relay} quarantine machinery (E17). *)

type result = {
  pops : int;
  edges : int;  (** undirected *)
  trees : int;
  diversity : float;  (** realized arborescence disjointness, 0-1 *)
  flows : int;
  sent : int;
  delivered : int;
  dropped : int;
  reroutes : int;
  max_rotations : int;  (** worst single-decision tree probes; O(1) gate *)
  killed : int;  (** relay-kill target, -1 when none *)
  affected_flows : int;
  detect_ms : float;  (** slowest neighbor hello timeout, -1 n/a *)
  recovery_ms : float;  (** slowest affected flow re-delivery, -1 n/a *)
  unrecovered : int;
  discovery_after_fault : int;  (** stitches after fault onset; must be 0 *)
  gossip_msgs : int;
  hello_msgs : int;
  convergence_ms : float;  (** membership convergence on the death, -1 n/a *)
  distinct_digests : int;  (** 1 = live views converged at end *)
  attest : bool;  (** attestation on for this run *)
  misbehaving : int;  (** armed Byzantine relay, -1 when none *)
  rejected : int;  (** bad-verdict rejections at destinations *)
  wrong_path : int;  (** judged frames per verdict *)
  truncated : int;
  replayed : int;
  forged : int;
  excused : int;  (** attested frames delivered unjudged (arbor failover) *)
  first_verdict_ms : float;  (** fault onset to first bad verdict, -1 n/a *)
  quarantines : int;
  readmissions : int;
  quarantined_target : bool;  (** the armed relay served a quarantine *)
  false_quarantines : int;  (** ever-quarantined pops besides the target *)
  fingerprint : string;
}

val run :
  ?pops:int ->
  ?degree:int ->
  ?trees:int ->
  ?seed:int ->
  ?flows:int ->
  ?duration_s:float ->
  ?pkt_interval_s:float ->
  ?specs:Tango_faults.Spec.t list ->
  ?attest:bool ->
  ?quarantine_s:float ->
  ?suspect_threshold:int ->
  unit ->
  result
(** Defaults: 16 PoPs, degree 4, 3 trees, seed 42, [min (2 * pops) 128]
    flows, 12 s horizon, one packet per flow per 20 ms, attestation off
    (first quarantine 2 s, suspicion threshold 4 when on). Flows start
    at 0.5 s (staggered 1 ms apart). Raises {!Err.Invalid} for a
    pairwise fault kind in [specs] (arm those through
    {!Tango_faults.Inject}), a fault window that does not close before
    [duration_s], or out-of-range parameters. A [Relay_kill] or
    Byzantine-relay spec's [path] field picks the target PoP; 0
    auto-selects the busiest relay (most stitched routes transiting it,
    ties to the lowest id). *)
