(** Declared contract-violation exception for the mesh library — bad
    topology parameters, malformed segment stacks, mis-aimed fault
    specs. See {!Tango_err}. *)

include Tango_err.S
