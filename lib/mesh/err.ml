(* Declared contract-violation exception for lib/mesh, sharing the
   printer/raise helper with the other per-library Err modules. The
   functor application is generative, so this [Invalid] is distinct
   from lib/net's and lib/faults'. *)

include Tango_err.Make (struct
  let lib = "Tango_mesh"
end)
