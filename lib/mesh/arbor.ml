(* Precomputed spanning arborescences (in-trees), k per destination, in
   the spirit of Chiesa-style circular arborescence routing: a relay
   whose next hop died does not recompute anything — it rotates to the
   next tree, an O(1) array probe.

   The generated topology always contains the id-ring, and a
   Hamiltonian cycle through the destination is a free st-numbering:
   [pi v = (v - dst) mod n] puts the destination first, its ring
   predecessor [t = dst - 1] last, and gives every other node both a
   lower and a higher neighbor. Two trees fall out:

   - the {e low} tree descends pi (each node parents its lowest-depth
     strictly-lower-pi neighbor) and reaches dst at pi = 0;
   - the {e high} tree ascends pi (lowest-depth strictly-higher-pi
     neighbor) to [t], which parents dst directly.

   Both are spanning in-trees (parent pointers strictly descend/ascend
   a total order), and their paths from any node v share only v and
   the destination — internally vertex-disjoint. That is the O(1)
   failover theorem: for a single dead relay K, a packet blocked on
   one tree at node w rotates to the other, whose path from w cannot
   contain K, and delivers. No funnel cell can strand a flow.

   Tree 0 (for k >= 3) is the plain BFS shortest-path tree — the
   stitching layer walks it — and trees beyond the first three are
   best-effort variants that rotate the parent choice among the
   lower/higher candidates. Every tree is acyclic on its own order, so
   any rotation interleaving is bounded by the segment hop budget. *)

type t = {
  topo : Mtopo.t;
  k : int;
  next : int array; (* ((dst*k)+tree)*pops + v -> parent pop, -1 at dst *)
  depth : int array; (* dst*pops + v -> BFS hops from v to dst *)
}

let k t = t.k
let pops t = Mtopo.pops t.topo
let[@hot] next_hop t ~dst ~tree ~pop = t.next.((((dst * t.k) + tree) * pops t) + pop)
let depth t ~dst ~pop = t.depth.((dst * pops t) + pop)

let closer_count t ~dst ~pop =
  let n = pops t in
  let dv = t.depth.((dst * n) + pop) in
  let c = ref 0 in
  if dv > 0 then
    for s = Mtopo.slot_base t.topo pop to
            Mtopo.slot_base t.topo pop + Mtopo.degree t.topo pop - 1 do
      let du = t.depth.((dst * n) + Mtopo.slot_dst t.topo s) in
      if du >= 0 && du < dv then incr c
    done;
  !c

let distinct_parents t ~dst ~pop =
  let distinct = ref 0 in
  for tree = 0 to t.k - 1 do
    let p = next_hop t ~dst ~tree ~pop in
    let fresh = ref (p >= 0) in
    for earlier = 0 to tree - 1 do
      if next_hop t ~dst ~tree:earlier ~pop = p then fresh := false
    done;
    if !fresh then incr distinct
  done;
  !distinct

let build ?(k = 3) topo =
  if k < 1 then Err.invalid "Arbor.build: need at least one tree, got %d" k;
  if k > 255 then Err.invalid "Arbor.build: %d trees exceed the wire field" k;
  let n = Mtopo.pops topo in
  let next = Array.make (n * n * k) (-1) in
  let depth = Array.make (n * n) (-1) in
  let queue = Array.make n 0 in
  for dst = 0 to n - 1 do
    let base = dst * n in
    (* BFS depths from dst (the graph is symmetric, so forward
       adjacency doubles as the reverse graph). Neighbors enqueue in
       slot order: deterministic depths. The ring makes the topology
       connected, so every node gets one. *)
    depth.(base + dst) <- 0;
    queue.(0) <- dst;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = depth.(base + u) in
      for s = Mtopo.slot_base topo u to Mtopo.slot_base topo u + Mtopo.degree topo u - 1 do
        let v = Mtopo.slot_dst topo s in
        if depth.(base + v) < 0 then begin
          depth.(base + v) <- du + 1;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done;
    let pi v = (v - dst + n) mod n in
    (* [rank 0]: lowest-depth lower-pi neighbor (ties to lowest pi) —
       the low tree's parent. [rank r]: the choice rotated r steps
       through the ordered lower-pi candidates, for best-effort extra
       trees. [higher = true] mirrors everything upward for the high
       tree; the pi = n-1 node parents dst directly. *)
    let pick v ~higher ~rank =
      if higher && pi v = n - 1 then dst
      else begin
        let vbase = Mtopo.slot_base topo v and deg = Mtopo.degree topo v in
        let count = ref 0 in
        for i = 0 to deg - 1 do
          let u = Mtopo.slot_dst topo (vbase + i) in
          if (if higher then pi u > pi v else pi u < pi v) then incr count
        done;
        (* [count] >= 1: the ring predecessor / successor is always
           there. Find the (rank mod count)-th candidate in (depth, pi)
           order without materializing the list: pi is unique per node,
           so [depth * n + pi] is a unique sort key. *)
        let want = rank mod !count in
        let chosen = ref (-1) and prev_key = ref (-1) in
        for _ = 0 to want do
          let best = ref (-1) and best_key = ref max_int in
          for i = 0 to deg - 1 do
            let u = Mtopo.slot_dst topo (vbase + i) in
            if (if higher then pi u > pi v else pi u < pi v) then begin
              let key = (depth.(base + u) * n) + pi u in
              if key > !prev_key && key < !best_key then begin
                best := u;
                best_key := key
              end
            end
          done;
          chosen := !best;
          prev_key := !best_key
        done;
        !chosen
      end
    in
    for v = 0 to n - 1 do
      if v <> dst then begin
        let dv = depth.(base + v) in
        (* Tree 0 for k >= 3: first strictly-closer neighbor in slot
           order — the BFS shortest-path tree the stitcher walks. For
           k <= 2 every tree slot goes to the low/high pair so the
           disjointness theorem still holds. *)
        for tree = 0 to k - 1 do
          let cell = ((((dst * k) + tree) * n) + v) in
          let role = if k >= 3 then tree else if k = 2 then tree + 1 else 0 in
          if role = 0 then begin
            let parent = ref (-1) in
            for s = Mtopo.slot_base topo v to
                    Mtopo.slot_base topo v + Mtopo.degree topo v - 1 do
              let u = Mtopo.slot_dst topo s in
              if !parent < 0 && depth.(base + u) < dv then parent := u
            done;
            next.(cell) <- !parent
          end
          else
            next.(cell) <-
              pick v ~higher:(role land 1 = 0) ~rank:((role - 1) / 2)
        done
      end
    done
  done;
  { topo; k; next; depth }

(* Average, over all (dst, v<>dst) pairs, of the fraction of parent
   diversity realized: distinct parents / min(k, degree). The E15
   "path diversity" column. *)
let diversity t =
  let n = pops t in
  let total = ref 0.0 and cells = ref 0 in
  for dst = 0 to n - 1 do
    for v = 0 to n - 1 do
      if v <> dst && t.depth.((dst * n) + v) > 0 then begin
        let possible = min t.k (Mtopo.degree t.topo v) in
        let distinct = distinct_parents t ~dst ~pop:v in
        total := !total +. (float_of_int distinct /. float_of_int possible);
        incr cells
      end
    done
  done;
  if !cells = 0 then 1.0 else !total /. float_of_int !cells
