(** Turning fault specs into scheduled simulator events.

    [arm] takes a two-site deployment ({!Tango.Pair}) and a spec list
    and schedules, on the pair's own {!Tango_sim.Engine}, an activation
    at each spec's onset and a deactivation at its end — so faults
    interleave deterministically with probes, reports and traffic, and
    the whole schedule is reproducible from the seed alone.

    What each kind does when it fires:
    - [Blackhole] / [Flap]: {!Tango_dataplane.Fabric.fail_link} on the
      path's distinguishing link (its last transit hop, resolved from
      the live BGP tables at activation time);
    - [Brownout]: {!Tango_dataplane.Fabric.set_link_fault} with the
      spec's loss and a fresh {!Tango_workload.Delay_process} burst;
    - [Probe_starvation]: {!Tango.Pop.set_probe_suppression} on the
      sending PoP;
    - [Clock_step]: {!Tango.Pop.step_clock} on the receiving PoP
      (stepped back on deactivation);
    - [Bgp_withdraw] / [Bgp_flap]: withdraw (and re-announce with the
      original communities) the path's tunnel prefix at its origin;
    - [Community_drop]: re-announce the prefix with an empty community
      set, restoring the original set on deactivation.

    Deactivation always restores the pre-fault state, so a run whose
    faults have all expired (or been {!clear}ed) is structurally
    fault-free again. *)

type t

val arm : pair:Tango.Pair.t -> ?seed:int -> Spec.t list -> t
(** Validate the specs against the deployment (path ids must exist in
    their direction) and schedule every activation/deactivation
    relative to the engine's current time. [seed] (default 42) feeds
    only the brownout delay bursts. Raises {!Err.Invalid} on an
    out-of-range path id (and propagates {!Spec.validate} failures). *)

val clear : t -> unit
(** Immediately deactivate every active fault, restoring links, link
    faults, probe trains, clocks and announcements — and disarm every
    not-yet-fired activation (their scheduled events become no-ops).
    Idempotent. *)

val cleared : t -> bool

val specs : t -> Spec.t list
(** The armed specs, in arming order. *)

val active : t -> int
(** Faults currently in their active window. *)

val injected : t -> int
(** Activations fired so far (a flap counts once, not per toggle). *)

val switches_during : t -> int
(** Path switches the affected sender's policy made inside completed
    fault windows — the switches-per-fault numerator. *)

val last_off_s : t -> float
(** Virtual time the latest fault window closed (deactivation or final
    {!clear}); [neg_infinity] before any window has closed. The faults
    summary measures recovery time from here. *)

val timeline : t -> (float * string) list
(** Human-readable activation/deactivation log, in event order:
    [(virtual time, "on|off <spec>")]. *)
