(* Declared contract-violation exception for lib/faults, sharing the
   printer/raise helper with the other per-library Err modules. The
   functor application is generative, so this [Invalid] is distinct
   from lib/net's and lib/dataplane's. *)

include Tango_err.Make (struct
  let lib = "Tango_faults"
end)
