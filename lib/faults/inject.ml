module Engine = Tango_sim.Engine
module Fabric = Tango_dataplane.Fabric
module Network = Tango_bgp.Network
module Delay_process = Tango_workload.Delay_process
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace
module Pair = Tango.Pair
module Pop = Tango.Pop
module Addressing = Tango.Addressing
module Discovery = Tango.Discovery

(* Process-wide observability (DESIGN.md §9). *)
let g_active =
  Metric.gauge ~help:"Fault windows currently active" "faults_active"

let m_injected =
  Metric.counter ~help:"Fault activations fired" "faults_injected_total"

let m_switches_during =
  Metric.counter
    ~help:"Path switches made by the affected sender inside fault windows"
    "fault_path_switches_total"

let k_on = Trace.kind "fault.on"

let k_off = Trace.kind "fault.off"

type armed = {
  spec : Spec.t;
  index : int;  (** Arming order; salts the brownout delay seed. *)
  mutable active : bool;
  (* Undo for the currently-applied effect. [None] while inactive, and
     also mid-flap when the toggling effect is in its "off" half. *)
  mutable undo : (unit -> unit) option;
  mutable switches_at_on : int;
}

type t = {
  pair : Pair.t;
  seed : int;
  mutable disarmed : bool;
  mutable active_count : int;
  mutable injected : int;
  mutable switches_during : int;
  mutable events : (float * string) list;  (** Reverse chronological. *)
  mutable last_off_s : float;  (** When the latest fault window closed. *)
  faults : armed array;
}

let sender_pop t = function
  | Spec.To_ny -> Pair.pop_la t.pair
  | Spec.To_la -> Pair.pop_ny t.pair

let receiver_pop t = function
  | Spec.To_ny -> Pair.pop_ny t.pair
  | Spec.To_la -> Pair.pop_la t.pair

let paths t = function
  | Spec.To_ny -> Pair.paths_to_ny t.pair
  | Spec.To_la -> Pair.paths_to_la t.pair

(* The path's distinguishing link: the hop from its last transit into
   the destination provider, resolved from the live BGP tables — so a
   path re-pinned by a concurrent BGP fault blackholes where it
   currently runs, not where it ran at arm time. The shared
   provider→server last hop is deliberately avoided: failing it would
   take down every path at once. *)
let path_link t ~dir ~path =
  let sender = sender_pop t dir in
  let addr = Addressing.tunnel_endpoint (Pop.remote_plan sender) ~path in
  let net = Pair.network t.pair in
  match Network.forwarding_path net ~from_node:(Pop.node sender) addr with
  | Some nodes when List.length nodes >= 3 ->
      let arr = Array.of_list nodes in
      let len = Array.length arr in
      Some (arr.(len - 3), arr.(len - 2))
  | Some _ | None -> None

let note t ~now msg spec =
  t.events <- (now, Printf.sprintf "%s %s" msg (Spec.to_string spec)) :: t.events

(* ------------------------------------------------------------------ *)
(* Per-kind apply functions: perform the effect now and return its
   undo, or [None] when the effect could not land (e.g. the path is
   currently unroutable, so there is no link to blackhole).            *)

let apply_blackhole t (a : armed) () =
  match path_link t ~dir:a.spec.dir ~path:a.spec.path with
  | None -> None
  | Some (from_node, to_node) ->
      let fabric = Pair.fabric t.pair in
      Fabric.fail_link fabric ~from_node ~to_node;
      Some (fun () -> Fabric.heal_link fabric ~from_node ~to_node)

let apply_brownout t (a : armed) ~loss ~extra_ms () =
  match path_link t ~dir:a.spec.dir ~path:a.spec.path with
  | None -> None
  | Some (from_node, to_node) ->
      let fabric = Pair.fabric t.pair in
      (* A fresh noise burst per activation, seeded from the arm seed
         and the fault's arming index only — reproducible, and distinct
         across faults. *)
      let dp =
        Delay_process.create
          ~seed:(t.seed + (1009 * (a.index + 1)))
          ~base_ms:extra_ms ~white_std_ms:(extra_ms /. 4.0) ()
      in
      Fabric.set_link_fault fabric ~from_node ~to_node ~loss
        ~extra_delay_ms:(fun ~time_s -> Delay_process.value dp ~time_s)
        ();
      Some (fun () -> Fabric.clear_link_fault fabric ~from_node ~to_node)

let apply_starvation t (a : armed) () =
  let pop = sender_pop t a.spec.dir in
  Pop.set_probe_suppression pop true;
  Some (fun () -> Pop.set_probe_suppression pop false)

let apply_clock_step t (a : armed) ~step_ms () =
  let pop = receiver_pop t a.spec.dir in
  let step_ns = Int64.of_float (step_ms *. 1e6) in
  Pop.step_clock pop ~step_ns;
  Some (fun () -> Pop.step_clock pop ~step_ns:(Int64.neg step_ns))

(* Tunnel prefixes toward a site are owned (and announced) by that
   site — the receiver of the faulted direction. *)
let bgp_target t (a : armed) =
  let owner = receiver_pop t a.spec.dir in
  let prefix =
    List.nth (Pop.plan owner).Addressing.tunnel_prefixes a.spec.path
  in
  let communities =
    (List.nth (paths t a.spec.dir) a.spec.path).Discovery.communities
  in
  (Pop.node owner, prefix, communities)

let apply_withdraw t (a : armed) () =
  let node, prefix, communities = bgp_target t a in
  let net = Pair.network t.pair in
  Network.withdraw net ~node prefix;
  Some (fun () -> Network.announce net ~node prefix ~communities ())

let apply_community_drop t (a : armed) () =
  let node, prefix, communities = bgp_target t a in
  let net = Pair.network t.pair in
  Network.announce net ~node prefix ();
  Some (fun () -> Network.announce net ~node prefix ~communities ())

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

(* Flapping faults toggle between applied and restored every half
   period; each toggle re-resolves the effect against live state. *)
let rec toggle t (a : armed) ~period_s ~end_s apply engine =
  if (not t.disarmed) && a.active then begin
    (match a.undo with
    | Some undo ->
        undo ();
        a.undo <- None
    | None -> a.undo <- apply ());
    let next = Engine.now engine +. (period_s /. 2.0) in
    if next < end_s then
      Engine.schedule_at engine ~time:next (toggle t a ~period_s ~end_s apply)
  end

let activate t (a : armed) ~end_s engine =
  if not t.disarmed then begin
    a.active <- true;
    t.active_count <- t.active_count + 1;
    t.injected <- t.injected + 1;
    a.switches_at_on <- Pop.policy_switches (sender_pop t a.spec.dir);
    Metric.set g_active (float_of_int t.active_count);
    Metric.incr m_injected;
    let now = Engine.now engine in
    Trace.record Trace.default ~now ~kind:k_on a.spec.path
      (Spec.kind_code a.spec.kind);
    note t ~now "on " a.spec;
    match a.spec.kind with
    | Spec.Blackhole -> a.undo <- apply_blackhole t a ()
    | Spec.Flap { period_s } ->
        toggle t a ~period_s ~end_s (apply_blackhole t a) engine
    | Spec.Brownout { loss; extra_ms } ->
        a.undo <- apply_brownout t a ~loss ~extra_ms ()
    | Spec.Probe_starvation -> a.undo <- apply_starvation t a ()
    | Spec.Clock_step { step_ms } -> a.undo <- apply_clock_step t a ~step_ms ()
    | Spec.Bgp_withdraw -> a.undo <- apply_withdraw t a ()
    | Spec.Bgp_flap { period_s } ->
        toggle t a ~period_s ~end_s (apply_withdraw t a) engine
    | Spec.Community_drop -> a.undo <- apply_community_drop t a ()
    | Spec.Relay_kill | Spec.Mesh_partition _ | Spec.Relay_detour
    | Spec.Relay_tamper _ | Spec.Relay_replay ->
        Err.invalid
          "Inject: %s targets a mesh world; arm it through Tango_mesh.Mesh.run, \
           not a pair"
          (Spec.kind_to_string a.spec.kind)
  end

let deactivate t (a : armed) engine =
  if a.active then begin
    a.active <- false;
    (match a.undo with
    | Some undo ->
        undo ();
        a.undo <- None
    | None -> ());
    t.active_count <- t.active_count - 1;
    Metric.set g_active (float_of_int t.active_count);
    let switches =
      Pop.policy_switches (sender_pop t a.spec.dir) - a.switches_at_on
    in
    t.switches_during <- t.switches_during + switches;
    Metric.add m_switches_during switches;
    let now = Engine.now engine in
    t.last_off_s <- Float.max t.last_off_s now;
    Trace.record Trace.default ~now ~kind:k_off a.spec.path
      (Spec.kind_code a.spec.kind);
    note t ~now "off" a.spec
  end

let path_targeted = function
  | Spec.Blackhole | Spec.Flap _ | Spec.Brownout _ | Spec.Bgp_withdraw
  | Spec.Bgp_flap _ | Spec.Community_drop ->
      true
  | Spec.Probe_starvation | Spec.Clock_step _ | Spec.Relay_kill
  | Spec.Mesh_partition _ | Spec.Relay_detour | Spec.Relay_tamper _
  | Spec.Relay_replay ->
      false

let arm ~pair ?(seed = 42) spec_list =
  let t =
    {
      pair;
      seed;
      disarmed = false;
      active_count = 0;
      injected = 0;
      switches_during = 0;
      events = [];
      last_off_s = neg_infinity;
      faults =
        Array.of_list
          (List.mapi
             (fun index spec ->
               Spec.validate spec;
               {
                 spec;
                 index;
                 active = false;
                 undo = None;
                 switches_at_on = 0;
               })
             spec_list);
    }
  in
  Array.iter
    (fun (a : armed) ->
      if path_targeted a.spec.kind then begin
        let count = List.length (paths t a.spec.dir) in
        if a.spec.path >= count then
          Err.invalid "Inject.arm: path %d out of range (%d %s paths)"
            a.spec.path count
            (Spec.dir_to_string a.spec.dir)
      end)
    t.faults;
  let engine = Pair.engine pair in
  let now = Engine.now engine in
  Array.iter
    (fun (a : armed) ->
      let end_s = now +. a.spec.start_s +. a.spec.duration_s in
      Engine.schedule_at engine ~time:(now +. a.spec.start_s)
        (activate t a ~end_s);
      Engine.schedule_at engine ~time:end_s (deactivate t a))
    t.faults;
  t

let clear t =
  if not t.disarmed then begin
    t.disarmed <- true;
    let engine = Pair.engine t.pair in
    Array.iter (fun a -> deactivate t a engine) t.faults
  end

let cleared t = t.disarmed

let specs t = Array.to_list (Array.map (fun a -> a.spec) t.faults)

let active t = t.active_count

let injected t = t.injected

let switches_during t = t.switches_during

let last_off_s t = t.last_off_s

let timeline t = List.rev t.events
