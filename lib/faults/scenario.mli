(** Named, curated fault schedules.

    A scenario is just a name, a sentence, and a {!Spec.t} list with
    onsets relative to arming time — the unit the CLI exposes
    ([tango_cli faults --scenario flap]) and E12 sweeps. Times assume
    the harness default of a ~30 s measurement window. *)

type t = {
  name : string;
  description : string;
  specs : Spec.t list;
}

val all : t list
(** Every built-in scenario, in documentation order. *)

val names : unit -> string list

val find : string -> t option
(** Lookup by exact name. *)

val get : string -> t
(** Like {!find} but raises {!Err.Invalid} with the known names on a
    miss — the CLI error path. *)
