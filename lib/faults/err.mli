(** Declared contract-violation exception for the fault-injection
    library — bad fault specs, unknown scenario names, out-of-range
    path ids. See {!Tango_err}. *)

include Tango_err.S
