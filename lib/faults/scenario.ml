type t = {
  name : string;
  description : string;
  specs : Spec.t list;
}

(* All onsets sit a few seconds into the run so policies have live
   measurements before the fault lands, and every window closes before
   the ~30 s harness horizon so recovery is observable too. *)
let all =
  [
    {
      name = "blackhole";
      description =
        "Gray failure: silently drop everything on the policy's favorite \
         (lowest-OWD) path for 10 s; BGP never notices.";
      specs = [ Spec.v ~path:2 ~start_s:5.0 ~duration_s:10.0 Spec.Blackhole ];
    };
    {
      name = "flap";
      description =
        "The favorite path's transit link flaps every second for 20 s — \
         the oscillation that re-admission backoff must damp.";
      specs =
        [
          Spec.v ~path:2 ~start_s:5.0 ~duration_s:20.0
            (Spec.Flap { period_s = 2.0 });
        ];
    };
    {
      name = "brownout";
      description =
        "The favorite path browns out for 10 s: 30% extra loss and a \
         noisy ~25 ms extra delay, without ever going fully dark.";
      specs =
        [
          Spec.v ~path:2 ~start_s:5.0 ~duration_s:10.0
            (Spec.Brownout { loss = 0.3; extra_ms = 25.0 });
        ];
    };
    {
      name = "starvation";
      description =
        "The LA probe train is starved for 5 s: probe-only paths age \
         out (staleness-based dead-path detection), while paths still \
         carrying data or reports stay passively measured.";
      specs = [ Spec.v ~start_s:5.0 ~duration_s:5.0 Spec.Probe_starvation ];
    };
    {
      name = "clock-step";
      description =
        "The NY receive clock steps +50 ms for 10 s, then steps back. \
         Absolute OWDs shift; relative path comparison must not.";
      specs =
        [
          Spec.v ~start_s:5.0 ~duration_s:10.0
            (Spec.Clock_step { step_ms = 50.0 });
        ];
    };
    {
      name = "bgp-withdraw";
      description =
        "NY withdraws the favorite path's tunnel prefix for 10 s — the \
         control-plane failure BGP does see and re-propagates.";
      specs = [ Spec.v ~path:2 ~start_s:5.0 ~duration_s:10.0 Spec.Bgp_withdraw ];
    };
    {
      name = "bgp-flap";
      description =
        "The favorite path's tunnel prefix is withdrawn and re-announced \
         every 2 s for 20 s, with full BGP propagation delays.";
      specs =
        [
          Spec.v ~path:2 ~start_s:5.0 ~duration_s:20.0
            (Spec.Bgp_flap { period_s = 4.0 });
        ];
    };
    {
      name = "community-drop";
      description =
        "Path 1's tunnel prefix loses its pinning community set for 10 s: \
         still reachable, but collapsed onto the provider default route.";
      specs =
        [ Spec.v ~path:1 ~start_s:5.0 ~duration_s:10.0 Spec.Community_drop ];
    };
    (* The two mesh-level scenarios: validated here like any other spec,
       but armed by Tango_mesh.Mesh.run against a mesh world (Inject.arm
       rejects them — there is no single pair to aim at). The [path]
       field of relay-kill carries the target PoP id; 0 = auto-pick the
       relay carrying the most stitched routes. *)
    {
      name = "relay-kill";
      description =
        "A relay PoP dies mid-flow for 4 s: hellos stop, frames \
         blackhole, and every route transiting it must rotate to the \
         next arborescence in O(1) — no rediscovery.";
      specs = [ Spec.v ~path:0 ~start_s:5.0 ~duration_s:4.0 Spec.Relay_kill ];
    };
    {
      name = "mesh-partition";
      description =
        "Region 1 is cut off for 4 s: every inter-region link touching \
         it drops, intra-region traffic keeps flowing, and cross-region \
         flows recover when the partition heals.";
      specs =
        [
          Spec.v ~start_s:5.0 ~duration_s:4.0
            (Spec.Mesh_partition { region = 1 });
        ];
    };
    (* The Byzantine-relay scenarios (E17): same mesh-only arming as
       relay-kill, path 0 = auto-pick the busiest transit relay. Each
       one exercises exactly one attestation verdict. *)
    {
      name = "relay-detour";
      description =
        "A relay silently detours every transit frame through an \
         off-route neighbor for 4 s: the digest chain stops matching \
         the committed route and the destination convicts it of \
         Wrong_path.";
      specs = [ Spec.v ~path:0 ~start_s:5.0 ~duration_s:4.0 Spec.Relay_detour ];
    };
    {
      name = "relay-tamper";
      description =
        "A relay garbles the evidence chain on every transit frame for \
         4 s: same-length route, inexplicable digest — the Forged \
         verdict, localized only by accumulated suspicion.";
      specs =
        [
          Spec.v ~path:0 ~start_s:5.0 ~duration_s:4.0
            (Spec.Relay_tamper { truncate = false });
        ];
    };
    {
      name = "relay-truncate";
      description =
        "A relay short-cuts the rest of the overlay route through the \
         underlay for 4 s: the chain matches a proper prefix of the \
         commitment and the Truncated verdict names the last honest \
         folder.";
      specs =
        [
          Spec.v ~path:0 ~start_s:5.0 ~duration_s:4.0
            (Spec.Relay_tamper { truncate = true });
        ];
    };
    {
      name = "relay-replay";
      description =
        "A relay captures one transit frame and re-injects byte copies \
         every 100 ms for 4 s: pristine chains over spent (flow, seq) \
         pairs — the Replayed verdict.";
      specs = [ Spec.v ~path:0 ~start_s:5.0 ~duration_s:4.0 Spec.Relay_replay ];
    };
    {
      name = "meltdown";
      description =
        "Everything at once: probes starved while every path blackholes \
         — drives the policy into its all-paths-degraded pinned mode.";
      specs =
        [
          Spec.v ~start_s:5.0 ~duration_s:10.0 Spec.Probe_starvation;
          Spec.v ~path:0 ~start_s:5.0 ~duration_s:10.0 Spec.Blackhole;
          Spec.v ~path:1 ~start_s:5.0 ~duration_s:10.0 Spec.Blackhole;
          Spec.v ~path:2 ~start_s:5.0 ~duration_s:10.0 Spec.Blackhole;
          Spec.v ~path:3 ~start_s:5.0 ~duration_s:10.0 Spec.Blackhole;
        ];
    };
  ]

let names () = List.map (fun s -> s.name) all

let find name = List.find_opt (fun s -> s.name = name) all

let get name =
  match find name with
  | Some s -> s
  | None ->
      Err.invalid "Scenario: unknown scenario %S (known: %s)" name
        (String.concat ", " (names ()))
