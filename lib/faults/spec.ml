module Rng = Tango_sim.Rng

type dir = To_la | To_ny

type kind =
  | Blackhole
  | Flap of { period_s : float }
  | Brownout of { loss : float; extra_ms : float }
  | Probe_starvation
  | Clock_step of { step_ms : float }
  | Bgp_withdraw
  | Bgp_flap of { period_s : float }
  | Community_drop
  | Relay_kill
  | Mesh_partition of { region : int }
  | Relay_detour
  | Relay_tamper of { truncate : bool }
  | Relay_replay

type t = {
  kind : kind;
  dir : dir;
  path : int;
  start_s : float;
  duration_s : float;
}

let[@hot] kind_code kind =
  match kind with
  | Blackhole -> 0
  | Flap _ -> 1
  | Brownout _ -> 2
  | Probe_starvation -> 3
  | Clock_step _ -> 4
  | Bgp_withdraw -> 5
  | Bgp_flap _ -> 6
  | Community_drop -> 7
  | Relay_kill -> 8
  | Mesh_partition _ -> 9
  | Relay_detour -> 10
  | Relay_tamper { truncate = false } -> 11
  | Relay_tamper { truncate = true } -> 12
  | Relay_replay -> 13

let kind_to_string = function
  | Blackhole -> "blackhole"
  | Flap { period_s } -> Printf.sprintf "flap(period=%gs)" period_s
  | Brownout { loss; extra_ms } ->
      Printf.sprintf "brownout(loss=%.2f,extra=%gms)" loss extra_ms
  | Probe_starvation -> "probe-starvation"
  | Clock_step { step_ms } -> Printf.sprintf "clock-step(%+gms)" step_ms
  | Bgp_withdraw -> "bgp-withdraw"
  | Bgp_flap { period_s } -> Printf.sprintf "bgp-flap(period=%gs)" period_s
  | Community_drop -> "community-drop"
  | Relay_kill -> "relay-kill"
  | Mesh_partition { region } -> Printf.sprintf "mesh-partition(region=%d)" region
  | Relay_detour -> "relay-detour"
  | Relay_tamper { truncate = false } -> "relay-tamper"
  | Relay_tamper { truncate = true } -> "relay-truncate"
  | Relay_replay -> "relay-replay"

let dir_to_string = function To_la -> "to-la" | To_ny -> "to-ny"

let to_string t =
  Printf.sprintf "%s %s path=%d @%gs+%gs" (kind_to_string t.kind)
    (dir_to_string t.dir) t.path t.start_s t.duration_s

let check_period ~what ~duration_s period_s =
  if period_s <= 0.0 then Err.invalid "Spec: %s period %g not positive" what period_s;
  if period_s > duration_s then
    Err.invalid "Spec: %s period %g exceeds duration %g" what period_s duration_s

let validate t =
  if t.path < 0 then Err.invalid "Spec: negative path id %d" t.path;
  if t.start_s < 0.0 then Err.invalid "Spec: negative start %g" t.start_s;
  if t.duration_s <= 0.0 then
    Err.invalid "Spec: non-positive duration %g" t.duration_s;
  match t.kind with
  | Blackhole | Probe_starvation | Bgp_withdraw | Community_drop -> ()
  | Flap { period_s } -> check_period ~what:"flap" ~duration_s:t.duration_s period_s
  | Bgp_flap { period_s } ->
      check_period ~what:"bgp-flap" ~duration_s:t.duration_s period_s
  | Brownout { loss; extra_ms } ->
      if loss < 0.0 || loss > 1.0 then
        Err.invalid "Spec: brownout loss %g outside [0,1]" loss;
      if extra_ms < 0.0 then Err.invalid "Spec: negative brownout delay %g" extra_ms
  | Clock_step { step_ms } ->
      if Float.equal step_ms 0.0 then Err.invalid "Spec: zero clock step"
  | Relay_kill -> ()
  | Mesh_partition { region } ->
      if region < 0 then Err.invalid "Spec: negative partition region %d" region
  | Relay_detour | Relay_tamper _ | Relay_replay -> ()

let v ?(dir = To_ny) ?(path = 0) ~start_s ~duration_s kind =
  let t = { kind; dir; path; start_s; duration_s } in
  validate t;
  t

(* Deterministic spec generator: every random draw goes through one
   [Rng.t] in a fixed order, so the schedule is a pure function of
   [seed] — the property the qcheck determinism tests pin down. The
   bound stays at the 8 pairwise kinds on purpose: [Relay_kill] and
   [Mesh_partition] only make sense against a mesh world (they are
   armed by [Tango_mesh], not {!Inject.arm}), and widening the draw
   would silently reshuffle every seeded schedule in E12 and the
   baselines. *)
let random_kind rng ~duration_s =
  match Rng.int rng 8 with
  | 0 -> Blackhole
  | 1 -> Flap { period_s = 0.25 +. Rng.float rng (duration_s -. 0.25) }
  | 2 ->
      Brownout
        { loss = Rng.float rng 0.8; extra_ms = 1.0 +. Rng.float rng 49.0 }
  | 3 -> Probe_starvation
  | 4 ->
      let magnitude = 1.0 +. Rng.float rng 99.0 in
      Clock_step { step_ms = (if Rng.bool rng then magnitude else -.magnitude) }
  | 5 -> Bgp_withdraw
  | 6 -> Bgp_flap { period_s = 0.5 +. Rng.float rng (duration_s -. 0.5) }
  | _ -> Community_drop

let random ~seed ~paths ~n =
  if paths <= 0 then Err.invalid "Spec.random: no paths";
  if n < 0 then Err.invalid "Spec.random: negative count";
  let rng = Rng.create ~seed in
  let rec go i acc =
    if i = n then List.rev acc
    else begin
      (* Draw in a fixed field order; durations at least 1 s so flap
         periods always fit. *)
      let start_s = Rng.float rng 30.0 in
      let duration_s = 1.0 +. Rng.float rng 29.0 in
      let path = Rng.int rng paths in
      let dir = if Rng.bool rng then To_ny else To_la in
      let kind = random_kind rng ~duration_s in
      go (i + 1) (v ~dir ~path ~start_s ~duration_s kind :: acc)
    end
  in
  go 0 []
