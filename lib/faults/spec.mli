(** Typed fault specifications.

    A fault spec names one thing that goes wrong, on one wide-area path
    in one direction, over one time window. Specs are plain data:
    {!Inject.arm} turns a list of them into scheduled simulator events,
    and {!Scenario} groups curated lists under stable names. Keeping
    the spec layer pure makes fault schedules trivially reproducible —
    the same spec list plus the same seed is the same run, byte for
    byte. *)

type dir =
  | To_la  (** Faults on the NY→LA direction (paths LA measures inbound). *)
  | To_ny  (** Faults on the LA→NY direction — the default. *)

type kind =
  | Blackhole
      (** Silently drop everything crossing the path's distinguishing
          transit link, BGP oblivious — the gray failure of §5. *)
  | Flap of { period_s : float }
      (** Alternate the blackhole on/off every [period_s / 2] seconds —
          the oscillating path that flap damping exists for. *)
  | Brownout of { loss : float; extra_ms : float }
      (** Degrade without killing: extra drop probability [loss] and a
          noisy extra delay around [extra_ms] ms (a
          {!Tango_workload.Delay_process} burst) on the path's
          distinguishing link. *)
  | Probe_starvation
      (** Suppress the sending PoP's probe train: the receiver's stats
          go stale everywhere at once and dead-path detection must fire
          on staleness alone. The [path] field is ignored. *)
  | Clock_step of { step_ms : float }
      (** NTP-style step of the {e receiving} PoP's clock. Relative OWD
          comparison must survive it (paper footnote 1); absolute OWDs
          shift. The [path] field is ignored. *)
  | Bgp_withdraw
      (** Withdraw the path's tunnel prefix at its origin — the
          control-plane failure BGP {e does} see. *)
  | Bgp_flap of { period_s : float }
      (** Withdraw / re-announce the tunnel prefix every [period_s / 2]
          seconds — route flapping with full propagation delays. *)
  | Community_drop
      (** Re-announce the tunnel prefix {e without} its community set:
          the prefix stays reachable but is no longer pinned to its
          path, collapsing onto the provider default. *)
  | Relay_kill
      (** Take a relay PoP down mid-flow: its hellos stop and every
          frame it would forward is dropped. The [path] field carries
          the target PoP id ([0] lets the mesh pick its busiest relay).
          Mesh-only — armed via [Tango_mesh.Mesh.run], not
          {!Inject.arm}. *)
  | Mesh_partition of { region : int }
      (** Cut every inter-region link touching topology [region] — a
          geographic partition. The [path] field is ignored. Mesh-only,
          like {!Relay_kill}. *)
  | Relay_detour
      (** Byzantine relay: forward every transit frame through an
          off-route neighbor (extra physical hop, off-route evidence
          fold) — the attestation layer's [Wrong_path] verdict. The
          [path] field carries the target PoP id, [0] = busiest transit
          relay. Mesh-only. *)
  | Relay_tamper of { truncate : bool }
      (** Byzantine relay: with [truncate = false], garble the evidence
          chain after folding ([Forged] verdict); with [truncate =
          true], short-cut the rest of the overlay route through the
          underlay ([Truncated] verdict). Targeting as {!Relay_detour}.
          Mesh-only. *)
  | Relay_replay
      (** Byzantine relay: capture one transit frame and re-inject byte
          copies every 100 ms for the fault window ([Replayed]
          verdict). Targeting as {!Relay_detour}. Mesh-only. *)

type t = {
  kind : kind;
  dir : dir;
  path : int;  (** Target path index in [dir]'s discovery order. *)
  start_s : float;  (** Onset, seconds after arming. *)
  duration_s : float;  (** Active window length, seconds. *)
}

val v : ?dir:dir -> ?path:int -> start_s:float -> duration_s:float -> kind -> t
(** Build and validate a spec ([dir] defaults to [To_ny], [path] to 0).
    Raises {!Err.Invalid} when a field is out of range: negative
    [start_s] or [path], non-positive [duration_s], flap periods outside
    (0, [duration_s]], brownout loss outside [0,1] or negative extra
    delay, zero clock step. *)

val validate : t -> unit
(** The checks behind {!v}, for specs built literally. *)

val kind_code : kind -> int
(** Stable small-int code per kind (trace-record payload). *)

val kind_to_string : kind -> string

val dir_to_string : dir -> string

val to_string : t -> string
(** One-line rendering, e.g.
    ["brownout(loss=0.30,extra=25ms) to-ny path=1 @5s+10s"]. *)

val random : seed:int -> paths:int -> n:int -> t list
(** [n] pseudo-random valid specs over path ids [0, paths)], fully
    determined by [seed] — the generator behind the fuzz-shaped
    property tests and the ["random"] scenario. Raises {!Err.Invalid}
    when [paths <= 0] or [n < 0]. *)
