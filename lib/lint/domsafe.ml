(* Domain-safety rules for the lane-visible modules of the multicore
   dataplane (DESIGN.md §11-12): sim/shard, core/throughput,
   dataplane/batch, dataplane/fabric.

   The pass is purely syntactic, so "lane-shared state" is identified by
   the one marker the untyped AST does expose: a record type that
   carries an [Atomic.t] field is the cross-domain handoff structure
   (the SPSC ring). The sanctioned publication pattern writes plain
   array slots (or plain fields) and then publishes them with a single
   [Atomic.set] of the cursor — those plain writes go through immutable
   fields holding arrays, so they are invisible to this rule by
   construction. What the rule does see, and flags, is a *plain mutable
   field* declared next to the Atomic cursor being written directly:
   that write has no publication edge, and a consumer on another domain
   may never observe it (or observe it torn out of order).

   Two module-wide rules ride along: Mutex/Condition/Semaphore anywhere
   in a lane-visible module (hot-annotated or not — Domsafe_blocking;
   inside [@hot] bodies the intraprocedural No_mutex_hot already fires,
   so this pass skips those bodies to keep findings unique), and
   [Domain.self]-dependent control flow (Domain_self): lane behaviour
   must be a function of the lane id and the seed, never of which
   domain the scheduler happened to pick. *)

open Parsetree

(* Does a core type mention [Atomic.t] anywhere? *)
let rec mentions_atomic (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
      (match txt with
      | Longident.Ldot (Longident.Lident "Atomic", "t") -> true
      | _ -> false)
      || List.exists mentions_atomic args
  | Ptyp_tuple ts -> List.exists mentions_atomic ts
  | Ptyp_arrow (_, a, b) -> mentions_atomic a || mentions_atomic b
  | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> mentions_atomic t
  | _ -> false

(* Mutable labels of record types that also carry an Atomic.t field:
   the lane-shared types. Label names are matched textually at the
   write site — the untyped AST cannot resolve the record type of a
   [Pexp_setfield], so a same-named mutable label on a lane-local type
   would be a false positive; none exists in the tree, and a genuine
   one can be waived with a reason. *)
let shared_mutable_labels structure =
  let labels = ref [] in
  let scan_type_decl (td : type_declaration) =
    match td.ptype_kind with
    | Ptype_record fields ->
        let has_atomic =
          List.exists (fun f -> mentions_atomic f.pld_type) fields
        in
        if has_atomic then
          List.iter
            (fun f ->
              match f.pld_mutable with
              | Mutable when not (mentions_atomic f.pld_type) ->
                  labels := f.pld_name.txt :: !labels
              | _ -> ())
            fields
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let type_declaration it td =
    scan_type_decl td;
    super.type_declaration it td
  in
  let it = { super with type_declaration } in
  it.structure it structure;
  !labels

let last_segment = function
  | Longident.Lident l -> l
  | Longident.Ldot (_, l) -> l
  | Longident.Lapply _ -> ""

let pass ~lane_visible ~file structure =
  if not lane_visible then []
  else begin
    let findings = ref [] in
    let add ~loc rule message =
      findings := Ast_check.loc_finding ~file ~loc rule message :: !findings
    in
    let shared = shared_mutable_labels structure in
    (* [in_hot] suppresses the blocking rule inside [@hot] bodies, where
       the intraprocedural No_mutex_hot already reports the same site. *)
    let in_hot = ref false in
    let super = Ast_iterator.default_iterator in
    let expr it e =
      (match e.pexp_desc with
      | Pexp_setfield (_, { txt = label; _ }, _)
        when List.mem (last_segment label) shared ->
          add ~loc:e.pexp_loc Rules.Domsafe_mutation
            (Printf.sprintf
               "plain write to mutable field %S of a lane-shared record (its \
                type carries an Atomic.t cursor); publish through the \
                Atomic-cursor ring pattern instead — this store has no \
                happens-before edge to the consuming domain"
               (last_segment label))
      | Pexp_ident
          { txt = Longident.Ldot (Longident.Lident (("Mutex" | "Condition" | "Semaphore") as m), _); _ }
        when not !in_hot ->
          add ~loc:e.pexp_loc Rules.Domsafe_blocking
            (Printf.sprintf
               "%s in a lane-visible module; the multicore dataplane is \
                lock-free end to end — blocking any lane stalls its domain \
                and, through the stop-the-world rendezvous, every other lane"
               m)
      | Pexp_ident
          { txt = Longident.Ldot (Longident.Ldot (Longident.Lident "Semaphore", _), _); _ }
        when not !in_hot ->
          add ~loc:e.pexp_loc Rules.Domsafe_blocking
            "Semaphore in a lane-visible module; the multicore dataplane is \
             lock-free end to end"
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Domain", "self"); _ } ->
          add ~loc:e.pexp_loc Rules.Domain_self
            "Domain.self in a lane-visible module: lane behaviour must depend \
             on the lane id and the seed, never on which domain the scheduler \
             picked — seeded runs stop being reproducible otherwise"
      | _ -> ());
      super.expr it e
    in
    let value_binding it vb =
      if Ast_check.has_hot_attr vb.pvb_attributes then begin
        let saved = !in_hot in
        in_hot := true;
        super.value_binding it vb;
        in_hot := saved
      end
      else super.value_binding it vb
    in
    let it = { super with expr; value_binding } in
    it.structure it structure;
    !findings
  end
