(* SARIF 2.1.0 export (EXPERIMENTS.md): one run, one driver
   ("tango_lint"), the full rule catalogue, one result per unwaived
   finding. Minimal but schema-valid — enough for GitHub code scanning
   and SARIF viewers to place findings on lines. SARIF columns are
   1-based; the linter's are 0-based, hence the +1. Call chains ride in
   the message text (SARIF codeFlows are overkill for a syntactic
   linter and triple the output size). *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let message_text (f : Rules.finding) =
  match f.chain with
  | [] -> f.message
  | chain -> Printf.sprintf "%s [call chain: %s]" f.message (String.concat " -> " chain)

let render oc (findings : Rules.finding list) =
  output_string oc "{\n";
  output_string oc "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  output_string oc "  \"version\": \"2.1.0\",\n";
  output_string oc "  \"runs\": [\n    {\n";
  output_string oc "      \"tool\": {\n        \"driver\": {\n";
  output_string oc "          \"name\": \"tango_lint\",\n";
  output_string oc "          \"version\": \"2\",\n";
  output_string oc "          \"rules\": [";
  List.iteri
    (fun i rule ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n            {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}"
        (Rules.id rule)
        (escape (Rules.describe rule)))
    Rules.all;
  output_string oc "\n          ]\n        }\n      },\n";
  output_string oc "      \"results\": [";
  List.iteri
    (fun i (f : Rules.finding) ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": \
         {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
         {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": {\"startLine\": \
         %d, \"startColumn\": %d}}}]}"
        (Rules.id f.rule)
        (escape (message_text f))
        (escape f.file) f.line (f.col + 1))
    findings;
  (match findings with [] -> () | _ -> output_string oc "\n      ");
  output_string oc "]\n    }\n  ]\n}\n"
