(* The AST-level rules, written against the 5.1 compiler-libs parsetree.
   Everything here is syntactic: the linter runs before (and without)
   type-checking, so the structured-operand tests are shape heuristics
   chosen to have near-zero false positives — a bare identifier is never
   flagged, a tuple / record / constructor / float literal always is.

   The hot-body discipline is factored as a *fact* collector
   ([binding_facts]): the same walk that backs the intraprocedural
   hot-alloc / no-mutex rules also summarizes every other function so
   the interprocedural pass (Hotset) can apply the discipline across
   call boundaries without re-parsing. *)

open Parsetree

type config = {
  hot_modules : string list;  (* path fragments of designated hot-path modules *)
  domsafe_modules : string list;  (* lane-visible modules of the multicore dataplane *)
  exn_ban_paths : string list;  (* path fragments where No_failwith applies *)
  wallclock_allow : string list;  (* path fragments where wall-clock reads are legal *)
  require_mli : bool;
}

let default =
  {
    hot_modules =
      [
        "net/wire.ml";
        "telemetry/rolling.ml";
        "dataplane/fabric.ml";
        "dataplane/seq_tracker.ml";
        "dataplane/flow_cache.ml";
        "dataplane/batch.ml";
        "sim/shard.ml";
        "core/pop.ml";
        "core/throughput.ml";
        "obs/metric.ml";
        "obs/trace.ml";
        "faults/spec.ml";
        "faults/inject.ml";
        "ctrl/watch.ml";
        "ctrl/channel.ml";
        "mesh/segment.ml";
        "mesh/arbor.ml";
        "mesh/relay.ml";
        "mesh/mtopo.ml";
        "mesh/attest.ml";
      ];
    domsafe_modules =
      [
        "sim/shard.ml";
        "core/throughput.ml";
        "dataplane/batch.ml";
        "dataplane/fabric.ml";
      ];
    exn_ban_paths = [ "lib/dataplane/"; "lib/net/" ];
    wallclock_allow = [ "obs/manifest.ml" ];
    require_mli = true;
  }

(* Fingerprint of everything that parameterizes the passes: the
   incremental cache keys on it so a config (or rule-set) change
   invalidates stale summaries wholesale. Bump the leading integer when
   a rule's behaviour changes without a config change. *)
let fingerprint config =
  String.concat "|"
    ([ "3" ]
    @ config.hot_modules @ [ ";" ] @ config.domsafe_modules @ [ ";" ]
    @ config.exn_ban_paths @ [ ";" ] @ config.wallclock_allow
    @ [ (if config.require_mli then "mli" else "nomli") ])

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

let path_matches path fragments = List.exists (contains_sub path) fragments

(* ------------------------------------------------------------------ *)
(* Shared shape helpers                                                 *)

let rec strip_wrappers e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_wrappers e
  | _ -> e

let float_ident = function
  | "nan" | "infinity" | "neg_infinity" | "epsilon_float" | "max_float" | "min_float" ->
      true
  | _ -> false

let float_op = function "+." | "-." | "*." | "/." | "**" -> true | _ -> false

(* Syntactically certain to be a float at runtime. *)
let is_float_like e =
  match (strip_wrappers e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident id; _ } -> float_ident id
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, args) ->
      float_op op || (String.equal op "~-." && (match args with [] -> false | _ -> true))
  | _ -> false

(* Syntactically certain to be a boxed / structured value: comparing it
   polymorphically walks memory (and a custom comparator exists). *)
let is_structured e =
  match (strip_wrappers e).pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_construct ({ txt = Longident.Lident ("[]" | "::" | "None"); _ }, None) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let loc_finding ~file ~(loc : Location.t) rule message =
  Rules.v ~file ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    rule message

let head_module = function
  | Longident.Ldot (Longident.Lident m, _) -> Some m
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R2 (+R2b) and R3: one pass over every expression in the file         *)

let poly_and_exn_pass config ~file structure =
  let findings = ref [] in
  let add ~loc rule message = findings := loc_finding ~file ~loc rule message :: !findings in
  let ban_exns = path_matches file config.exn_ban_paths in
  let check_equality ~loc op a b =
    if is_float_like a || is_float_like b then
      add ~loc Rules.Float_equal
        (Printf.sprintf
           "float (%s) is a NaN hazard on this operand; use Float.equal / Float.compare"
           op)
    else if is_structured a || is_structured b then
      add ~loc Rules.Poly_compare
        (Printf.sprintf
           "polymorphic (%s) on a structured operand; use a monomorphic equal \
            (String.equal, Option.is_none, List.is_empty, a custom comparator)"
           op)
  in
  let check_poly_fn ~loc name args =
    let operands = List.map snd args in
    if List.exists is_float_like operands then
      add ~loc Rules.Float_equal
        (Printf.sprintf "polymorphic %s on a float operand; use Float.%s" name name)
    else if List.exists is_structured operands then
      add ~loc Rules.Poly_compare
        (Printf.sprintf "polymorphic %s on a structured operand; use a monomorphic %s"
           name name)
  in
  let check_exn_expr e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident (("failwith" | "invalid_arg") as f); _ } ->
        add ~loc:e.pexp_loc Rules.No_failwith
          (Printf.sprintf
             "%s in a per-packet library; raise a declared exception (Err.Invalid) \
              or return a result"
             f)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("raise" | "raise_notrace"); _ }; _ },
          (_, arg) :: _ ) -> begin
        match (strip_wrappers arg).pexp_desc with
        | Pexp_construct
            ({ txt = Longident.Lident (("Invalid_argument" | "Failure") as exn); _ }, _) ->
            add ~loc:e.pexp_loc Rules.No_failwith
              (Printf.sprintf
                 "raising %s in a per-packet library; declare the exception instead" exn)
        | _ -> ()
      end
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
          [ (_, a); (_, b) ] ) ->
        check_equality ~loc:e.pexp_loc op a b
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("compare" | "min" | "max") as f); _ }; _ },
          args )
      when (match args with [] -> false | _ -> true) ->
        check_poly_fn ~loc:e.pexp_loc f args
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Hashtbl", "hash"); _ }; _ },
          args )
      when List.exists (fun (_, a) -> is_structured a) args ->
        add ~loc:e.pexp_loc Rules.Poly_compare
          "Hashtbl.hash on a structured operand walks the heap polymorphically; \
           combine component hashes instead"
    | _ -> ());
    if ban_exns then check_exn_expr e;
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* Hot-body facts: the R1/R1b discipline as data                        *)

type fact_kind = Alloc | Block

type fact = { f_line : int; f_col : int; f_kind : fact_kind; f_msg : string }

let has_hot_attr attrs =
  List.exists
    (fun a -> match a.attr_name.txt with "hot" | "tango.hot" -> true | _ -> false)
    attrs

let fact_of ~(loc : Location.t) kind msg =
  {
    f_line = loc.loc_start.pos_lnum;
    f_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    f_kind = kind;
    f_msg = msg;
  }

let body_facts body =
  let facts = ref [] in
  let add ~loc message = facts := fact_of ~loc Alloc message :: !facts in
  let add_blocking ~loc message = facts := fact_of ~loc Block message :: !facts in
  (* R1b: the packet path is lock-free — a blocking primitive inside a
     [@hot] body stalls its whole domain (and, through the stop-the-world
     rendezvous, every other lane too). Domain.cpu_relax is the one
     permitted Domain call: it is the spin-wait hint, not a block. *)
  let check_blocking ~loc lid =
    match lid with
    | Longident.Ldot (Longident.Lident (("Mutex" | "Condition" | "Semaphore") as m), _)
      ->
        add_blocking ~loc
          (Printf.sprintf
             "%s on the hot path can block the domain; the packet path is \
              lock-free by design"
             m)
    | Longident.Ldot (Longident.Ldot (Longident.Lident "Semaphore", _), _) ->
        add_blocking ~loc
          "Semaphore on the hot path can block the domain; the packet path is \
           lock-free by design"
    | Longident.Ldot (Longident.Lident "Domain", fn)
      when not (String.equal fn "cpu_relax") ->
        add_blocking ~loc
          (Printf.sprintf
             "Domain.%s on the hot path blocks or forks the domain; only \
              Domain.cpu_relax is allowed in [@hot] bodies"
             fn)
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  (* One fact per closure, not per curried parameter: strip the whole
     lambda chain before recursing so [fun a b -> ...] reports once. *)
  let rec strip_lambda_chain defaults e =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
        let defaults =
          match default with Some d -> d :: defaults | None -> defaults
        in
        strip_lambda_chain defaults body
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) ->
        strip_lambda_chain defaults body
    | _ -> (defaults, e)
  in
  let rec expr it e =
    match e.pexp_desc with
    | Pexp_fun _ ->
        add ~loc:e.pexp_loc
          "closure allocated on the hot path (also covers partial application \
           staged through a lambda)";
        let defaults, body = strip_lambda_chain [] e in
        List.iter (expr it) defaults;
        expr it body
    (* [a :: b] parses as a constructor carrying a tuple; flag the cons
       cell once and recurse into the elements, not the carrier tuple. *)
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg) ->
        add ~loc:e.pexp_loc "list cell allocated on the hot path";
        (match (strip_wrappers arg).pexp_desc with
        | Pexp_tuple comps -> List.iter (expr it) comps
        | _ -> expr it arg)
    | _ -> expr_tail it e
  and expr_tail it e =
    (match e.pexp_desc with
    | Pexp_function _ ->
        add ~loc:e.pexp_loc
          "closure allocated on the hot path (also covers partial application \
           staged through a lambda)"
    | Pexp_tuple _ -> add ~loc:e.pexp_loc "tuple allocated on the hot path"
    | Pexp_record _ -> add ~loc:e.pexp_loc "record allocated on the hot path"
    | Pexp_array _ -> add ~loc:e.pexp_loc "array allocated on the hot path"
    (* Flag on the identifier, not the application, so recursing into
       the callee cannot report the same occurrence twice. *)
    | Pexp_ident { txt = lid; _ } -> begin
        check_blocking ~loc:e.pexp_loc lid;
        match head_module lid with
        | Some (("Printf" | "Format") as m) ->
            add ~loc:e.pexp_loc
              (Printf.sprintf "%s call on the hot path allocates and formats" m)
        | Some "Queue" ->
            add ~loc:e.pexp_loc
              "Queue on the hot path boxes every element; use a flat ring instead"
        | _ -> ()
      end
    | _ -> ());
    (* Tuple-keyed Hashtbl traffic: the key itself is an allocation per
       packet plus a polymorphic hash walk. *)
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Hashtbl", _); _ }; _ },
          args )
      when List.exists (fun (_, a) -> match (strip_wrappers a).pexp_desc with
             | Pexp_tuple _ -> true
             | _ -> false)
             args ->
        add ~loc:e.pexp_loc "tuple-keyed Hashtbl on the hot path; pack the key into an int"
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it body;
  List.rev !facts

(* Walk past the binding's own parameter list: the outermost lambda
   chain IS the function, not an allocation — but per-call default
   argument expressions are checked. *)
let rec binding_facts e =
  match e.pexp_desc with
  | Pexp_fun (_, default, _, body) ->
      let defaults = match default with Some d -> body_facts d | None -> [] in
      defaults @ binding_facts body
  | Pexp_newtype (_, body) -> binding_facts body
  | Pexp_constraint (body, _) -> binding_facts body
  | _ -> body_facts e

let finding_of_fact ~file fact =
  let rule = match fact.f_kind with Alloc -> Rules.Hot_alloc | Block -> Rules.No_mutex_hot in
  Rules.v ~file ~line:fact.f_line ~col:fact.f_col rule fact.f_msg

(* ------------------------------------------------------------------ *)
(* R1 + R1b: the facts of [@hot] bodies become findings directly        *)

let hot_pass config ~file structure =
  if not (path_matches file config.hot_modules) then []
  else begin
    let findings = ref [] in
    let super = Ast_iterator.default_iterator in
    let value_binding it vb =
      if has_hot_attr vb.pvb_attributes then
        findings :=
          List.map (finding_of_fact ~file) (binding_facts vb.pvb_expr) @ !findings
      else super.value_binding it vb
    in
    let it = { super with value_binding } in
    it.structure it structure;
    !findings
  end

(* The domain-safety (Domsafe) and determinism (Determinism) passes are
   composed with these two in Engine — they live downstream of this
   module and reuse its helpers. *)
let check_structure config ~file structure =
  hot_pass config ~file structure @ poly_and_exn_pass config ~file structure
