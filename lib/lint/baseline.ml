(* Committed findings baseline with ratchet semantics (DESIGN.md §12).

   The baseline is the escape hatch that lets a new rule land before
   the tree is fully clean under it: findings recorded in the committed
   baseline file are "grandfathered" — reported, but not failing —
   while anything NOT in the baseline fails the run. The ratchet comes
   from the stale check: a baseline entry that no longer matches any
   current finding is itself reported, so the file can only shrink.
   (This repo's baseline is empty — the tree is clean — but the
   mechanism is what makes the next rule addition landable.)

   Matching is a multiset consume on (file, rule, message), not on line
   numbers: unrelated edits move lines constantly, and a baseline that
   churns with every edit trains people to regenerate it blindly, which
   defeats the ratchet. Two identical findings in one file need two
   baseline entries. *)

module J = Tango_obs.Json

type entry = { e_file : string; e_rule : string; e_message : string }

let entry_of_finding (f : Rules.finding) =
  { e_file = f.file; e_rule = Rules.id f.rule; e_message = f.message }

let entry_compare a b =
  match String.compare a.e_file b.e_file with
  | 0 -> begin
      match String.compare a.e_rule b.e_rule with
      | 0 -> String.compare a.e_message b.e_message
      | c -> c
    end
  | c -> c

exception Bad

let load ~path =
  if not (Sys.file_exists path) then []
  else
    try
      let ic = open_in_bin path in
      let source =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let str = function J.Str s -> s | _ -> raise Bad in
      let field name obj =
        match J.member name obj with Some v -> v | None -> raise Bad
      in
      match field "findings" (J.parse source) with
      | J.List items ->
          List.map
            (fun item ->
              {
                e_file = str (field "file" item);
                e_rule = str (field "rule" item);
                e_message = str (field "message" item);
              })
            items
      | _ -> raise Bad
    with J.Parse_error _ | Bad | Sys_error _ ->
      (* A baseline that cannot be read must not silently grandfather
         everything; treating it as empty makes every finding fail,
         which is the loud direction. *)
      []

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let save ~path findings =
  let entries =
    List.sort entry_compare (List.map entry_of_finding findings)
  in
  let oc = open_out_bin path in
  output_string oc "{\n  \"findings\": [";
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n    {\"file\": \"%s\", \"rule\": \"%s\", \"message\": \"%s\"}"
        (escape e.e_file) (escape e.e_rule) (escape e.e_message))
    entries;
  (match entries with [] -> () | _ -> output_string oc "\n  ");
  output_string oc "]\n}\n";
  close_out oc

(* Multiset consume: each baseline entry can absolve exactly one
   finding. Returns (new findings, grandfathered findings, stale
   baseline entries). *)
let partition ~baseline findings =
  let remaining = ref (List.map (fun e -> (e, ref false)) baseline) in
  let fresh, grandfathered =
    List.partition
      (fun f ->
        let e = entry_of_finding f in
        match
          List.find_opt
            (fun (b, consumed) -> (not !consumed) && entry_compare b e = 0)
            !remaining
        with
        | Some (_, consumed) ->
            consumed := true;
            false
        | None -> true)
      findings
  in
  let stale =
    List.filter_map
      (fun (e, consumed) -> if !consumed then None else Some e)
      !remaining
  in
  (fresh, grandfathered, stale)
