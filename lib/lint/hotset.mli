(** Interprocedural hot-path closure (rule [Hot_reach]; DESIGN.md §12).

    Breadth-first closure of the call graph from the [[@hot]] roots of
    the configured hot modules. Allocation/blocking facts of reached
    bindings become [Hot_reach] findings at the callee's location, each
    carrying the full shortest call chain from a root
    (["Pop.dispatch_batch"; "Fabric.send_batch"; ...]). Bindings the
    intraprocedural pass already owns ([[@hot]] bindings inside hot
    modules) are traversed but not re-reported. *)

val findings :
  config:Ast_check.config ->
  lib_map:(string * string) list ->
  Callgraph.summary list ->
  Rules.finding list
(** Deterministic (location-sorted, deduplicated) finding list. *)
