(** The rule catalogue of [tango_lint] and the finding record every
    check produces. Rule identifiers (the kebab-case strings) are the
    stable names used in reports and in waiver comments. *)

type rule =
  | Hot_alloc  (** R1: allocation ban inside [@hot] functions of hot modules *)
  | No_mutex_hot
      (** R1b: no Mutex/Condition/Semaphore and no blocking Domain ops
          inside [@hot] functions — the lock-free packet path must never
          block a domain ([Domain.cpu_relax] is the one exception) *)
  | Hot_reach
      (** R6: interprocedural extension of R1/R1b — the alloc and
          blocking bans apply to every function transitively reachable
          from a [@hot] body; findings carry the call chain *)
  | Domsafe_mutation
      (** R7: plain mutable-field writes to lane-shared records (types
          carrying an [Atomic.t] field) outside the sanctioned
          Atomic-cursor ring-publication pattern *)
  | Domsafe_blocking
      (** R7b: Mutex/Condition/Semaphore anywhere in lane-visible
          modules, hot-annotated or not *)
  | Domain_self  (** R7c: [Domain.self]-dependent control flow in lane modules *)
  | Wallclock
      (** R8: wall-clock reads outside lib/obs manifest code break
          seeded reproducibility *)
  | Unseeded_random  (** R8b: global [Random] state instead of seeded state *)
  | Iter_order
      (** R8c: [Hashtbl.iter]/[fold] feeding merges or exported output —
          iteration-order nondeterminism; collect-and-sort is exempt *)
  | Poly_compare  (** R2: polymorphic compare/equal/hash on structured values *)
  | Float_equal  (** R2b: float (in)equality — NaN hazard *)
  | No_failwith  (** R3: undeclared exceptions in per-packet libraries *)
  | Missing_mli  (** R4: .ml without a matching .mli *)
  | Waiver  (** R5: malformed or unused waiver comments *)
  | Parse_error  (** the file failed to parse at all *)

val all : rule list

val id : rule -> string
(** Stable kebab-case identifier, e.g. ["hot-alloc"]. *)

val of_id : string -> rule option

val describe : rule -> string
(** One-line human rationale, used by [--rules] and the docs. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
  chain : string list;
      (** display names of the call chain from a [@hot] root down to the
          offending function for interprocedural findings; [[]] for
          local findings *)
}

val v : file:string -> line:int -> col:int -> rule -> string -> finding
(** A finding with an empty chain. *)

val finding_compare : finding -> finding -> int
(** Order by file, line, column, then rule id — the report order. *)
