(** Whole-lib/ call graph over the untyped parsetree (DESIGN.md §12).

    Files are reduced to {!summary} values — local findings, waivers,
    and one {!binding} per named function with its body facts and
    referenced identifiers. {!build} links the summaries into a graph;
    {!resolve} maps a referenced identifier to a node using the repo's
    layout conventions (same file, sibling module in the same wrapped
    library, [Tango_x.Module.fn] through the {!library_map}, [open]ed
    prefixes). Unresolvable references (stdlib, functor-generated code)
    end the chain: the analysis is a conservative under-approximation
    across those boundaries. *)

type call = { c_target : string; c_line : int; c_col : int }

type binding = {
  b_name : string;  (** dotted path within the file, e.g. ["Ring.push"] *)
  b_line : int;
  b_col : int;
  b_hot : bool;  (** carries a [[@hot]] attribute *)
  b_facts : Ast_check.fact list;  (** allocation/blocking facts of the body *)
  b_calls : call list;  (** identifiers referenced by the body *)
}

type summary = {
  s_path : string;
  s_findings : Rules.finding list;  (** local-pass findings, pre-waiver *)
  s_waivers : Waivers.t list;
  s_waiver_findings : Rules.finding list;  (** malformed-waiver findings *)
  s_opens : string list;
  s_bindings : binding list;
}

val flatten_longident : Longident.t -> string
(** ["Tango_dataplane.Fabric.send"]-style dotted rendering. *)

val extract : Parsetree.structure -> string list * binding list
(** [(opens, bindings)] of one file. Module aliases
    ([module F = Tango_x.Fabric]) are expanded into call targets at
    extraction time. Top-level and module-nested bindings register under
    their dotted path; expression-nested named bindings (e.g. a [@hot]
    continuation inside a lane body) register under their bare name. *)

val library_map : roots:string list -> (string * string) list
(** Wrapped-library module name -> source directory, built by reading
    [(name ...)] from each [<root>/<dir>/dune]
    (e.g. [("Tango_dataplane", "lib/dataplane")]). *)

type t

val build : lib_map:(string * string) list -> summary list -> t

val key : path:string -> name:string -> string
(** Node key, ["<path>#<binding name>"]. *)

val find : t -> string -> (string * binding) option
(** Look a node up by {!key}. *)

val resolve : t -> from_path:string -> string -> string option
(** Resolve a referenced dotted identifier seen in [from_path] to a node
    key, or [None] if it crosses a boundary the linter cannot see
    through. *)

val display_name : path:string -> name:string -> string
(** Human form for chain rendering: ["Fabric.send_batch"] from
    [path:"lib/dataplane/fabric.ml" name:"send_batch"]. *)
