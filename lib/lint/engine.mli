(** Driver: file discovery, per-file summaries (cache-served), whole-
    program passes, waiver application, baseline partition. *)

type result = {
  files : string list;  (** every .ml scanned, sorted within each root *)
  findings : Rules.finding list;
      (** unwaived, not grandfathered findings, report order — these
          fail the run *)
  waived : (Rules.finding * string) list;
      (** suppressed findings with the waiver's recorded reason *)
  grandfathered : Rules.finding list;
      (** findings absolved by the committed baseline: reported, not
          failing *)
  stale_baseline : Baseline.entry list;
      (** baseline entries that matched no current finding — the
          ratchet: remove them *)
  cache_hits : int;  (** files served from the summary cache *)
  cache_misses : int;  (** files parsed this run *)
}

val summarize : config:Ast_check.config -> string -> string * Callgraph.summary
(** [(digest, summary)] of one file: waiver scan, parse, all local
    passes (hot/poly/exn + domain-safety + determinism), callgraph
    extraction. Parse failures surface as a [Parse_error] finding in the
    summary, not an exception. *)

val run :
  ?config:Ast_check.config ->
  ?cache_path:string ->
  ?baseline_path:string ->
  string list ->
  result
(** The full v2 pipeline over every .ml under the given
    files/directories. [cache_path] enables the incremental summary
    cache (read + rewrite); [baseline_path] enables grandfathering. *)

val lint_file :
  ?config:Ast_check.config -> string -> Rules.finding list * (Rules.finding * string) list
(** Lint one file with the local passes only (no call graph, cache or
    baseline); returns (unwaived, waived). *)

val lint_paths : ?config:Ast_check.config -> string list -> result
(** [run] without cache or baseline. *)
