(** Driver: file discovery, parsing, rule passes, waiver application. *)

type result = {
  files : string list;  (** every .ml scanned, sorted within each root *)
  findings : Rules.finding list;  (** unwaived findings, report order *)
  waived : (Rules.finding * string) list;
      (** suppressed findings with the waiver's recorded reason *)
}

val lint_file :
  ?config:Ast_check.config -> string -> Rules.finding list * (Rules.finding * string) list
(** Lint one file; returns (unwaived, waived). Parse failures surface as
    a [Parse_error] finding, not an exception. *)

val lint_paths : ?config:Ast_check.config -> string list -> result
(** Lint every .ml under the given files/directories (recursively). *)
