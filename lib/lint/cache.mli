(** Digest-keyed incremental summary cache (DESIGN.md §12).

    Per-file {!Callgraph.summary} values keyed by the MD5 digest of the
    file's bytes; the whole store is additionally keyed by the config
    {!Ast_check.fingerprint}, so a config change invalidates everything.
    A missing, corrupt or version-skewed cache file loads as empty — the
    cache can cost a cold run, never a wrong result. Missing-mli
    findings are not part of summaries (they depend on the .mli's
    existence, not the .ml's bytes) and are recomputed fresh by the
    engine each run. *)

type t

val empty : unit -> t

val load : path:string -> config_fp:string -> t
(** Read the store; any failure (absent file, parse error, format or
    config-fingerprint mismatch) yields {!empty}. *)

val find : t -> path:string -> digest:string -> Callgraph.summary option
(** Cache hit only when the stored digest matches the file's current
    digest. *)

val save : path:string -> config_fp:string -> (string * Callgraph.summary) list -> unit
(** Write the store atomically (temp file + rename). Entries are
    [(digest, summary)] pairs for every file of the current run; files
    no longer on disk simply drop out. *)
