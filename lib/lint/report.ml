let text oc (r : Engine.result) =
  List.iter
    (fun (f : Rules.finding) ->
      Printf.fprintf oc "%s:%d:%d: [%s] %s\n" f.file f.line f.col (Rules.id f.rule)
        f.message)
    r.Engine.findings;
  Printf.fprintf oc "tango_lint: %d file%s scanned, %d finding%s, %d waived\n"
    (List.length r.Engine.files)
    (if List.length r.Engine.files = 1 then "" else "s")
    (List.length r.Engine.findings)
    (if List.length r.Engine.findings = 1 then "" else "s")
    (List.length r.Engine.waived)

(* Same hand-rolled JSON idiom as bench/micro.ml: the schema is small
   and stable, documented in EXPERIMENTS.md. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_finding oc ~indent ~last (f : Rules.finding) =
  Printf.fprintf oc
    "%s{ \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"message\": \"%s\" }%s\n"
    indent (json_escape f.file) f.line f.col (Rules.id f.rule) (json_escape f.message)
    (if last then "" else ",")

let json oc (r : Engine.result) =
  let n_findings = List.length r.Engine.findings in
  let n_waived = List.length r.Engine.waived in
  output_string oc "{\n";
  output_string oc "  \"schema_version\": 1,\n";
  output_string oc "  \"tool\": \"tango_lint\",\n";
  Printf.fprintf oc "  \"rules\": [ %s ],\n"
    (String.concat ", " (List.map (fun ru -> "\"" ^ Rules.id ru ^ "\"") Rules.all));
  Printf.fprintf oc "  \"files_scanned\": %d,\n" (List.length r.Engine.files);
  output_string oc "  \"findings\": [\n";
  List.iteri
    (fun i f -> json_finding oc ~indent:"    " ~last:(i = n_findings - 1) f)
    r.Engine.findings;
  output_string oc "  ],\n";
  output_string oc "  \"waived\": [\n";
  List.iteri
    (fun i ((f : Rules.finding), reason) ->
      Printf.fprintf oc
        "    { \"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"reason\": \"%s\" }%s\n"
        (json_escape f.file) f.line (Rules.id f.rule) (json_escape reason)
        (if i = n_waived - 1 then "" else ","))
    r.Engine.waived;
  output_string oc "  ],\n";
  Printf.fprintf oc "  \"summary\": { \"errors\": %d, \"waived\": %d }\n" n_findings
    n_waived;
  output_string oc "}\n"
