let text oc (r : Engine.result) =
  List.iter
    (fun (f : Rules.finding) ->
      Printf.fprintf oc "%s:%d:%d: [%s] %s\n" f.file f.line f.col (Rules.id f.rule)
        f.message;
      match f.chain with
      | [] -> ()
      | chain -> Printf.fprintf oc "    call chain: %s\n" (String.concat " -> " chain))
    r.Engine.findings;
  List.iter
    (fun (f : Rules.finding) ->
      Printf.fprintf oc "%s:%d:%d: [%s] (grandfathered) %s\n" f.file f.line f.col
        (Rules.id f.rule) f.message)
    r.Engine.grandfathered;
  List.iter
    (fun (e : Baseline.entry) ->
      Printf.fprintf oc
        "baseline: stale entry (%s, %s, %S) matches no current finding — remove it\n"
        e.Baseline.e_file e.Baseline.e_rule e.Baseline.e_message)
    r.Engine.stale_baseline;
  Printf.fprintf oc
    "tango_lint: %d file%s scanned (%d cached, %d parsed), %d finding%s, %d \
     waived, %d grandfathered\n"
    (List.length r.Engine.files)
    (if List.length r.Engine.files = 1 then "" else "s")
    r.Engine.cache_hits r.Engine.cache_misses
    (List.length r.Engine.findings)
    (if List.length r.Engine.findings = 1 then "" else "s")
    (List.length r.Engine.waived)
    (List.length r.Engine.grandfathered)

(* Same hand-rolled JSON idiom as bench/micro.ml: the schema is small
   and stable, documented in EXPERIMENTS.md. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_chain (f : Rules.finding) =
  match f.chain with
  | [] -> ""
  | chain ->
      Printf.sprintf ", \"chain\": [%s]"
        (String.concat ", "
           (List.map (fun c -> "\"" ^ json_escape c ^ "\"") chain))

let json_finding oc ~indent ~last (f : Rules.finding) =
  Printf.fprintf oc
    "%s{ \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"message\": \"%s\"%s }%s\n"
    indent (json_escape f.file) f.line f.col (Rules.id f.rule) (json_escape f.message)
    (json_chain f)
    (if last then "" else ",")

let json oc (r : Engine.result) =
  let n_findings = List.length r.Engine.findings in
  let n_waived = List.length r.Engine.waived in
  let n_grandfathered = List.length r.Engine.grandfathered in
  let n_stale = List.length r.Engine.stale_baseline in
  output_string oc "{\n";
  output_string oc "  \"schema_version\": 2,\n";
  output_string oc "  \"tool\": \"tango_lint\",\n";
  Printf.fprintf oc "  \"rules\": [ %s ],\n"
    (String.concat ", " (List.map (fun ru -> "\"" ^ Rules.id ru ^ "\"") Rules.all));
  Printf.fprintf oc "  \"files_scanned\": %d,\n" (List.length r.Engine.files);
  Printf.fprintf oc "  \"cache\": { \"hits\": %d, \"misses\": %d },\n"
    r.Engine.cache_hits r.Engine.cache_misses;
  output_string oc "  \"findings\": [\n";
  List.iteri
    (fun i f -> json_finding oc ~indent:"    " ~last:(i = n_findings - 1) f)
    r.Engine.findings;
  output_string oc "  ],\n";
  output_string oc "  \"waived\": [\n";
  List.iteri
    (fun i ((f : Rules.finding), reason) ->
      Printf.fprintf oc
        "    { \"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"reason\": \"%s\" }%s\n"
        (json_escape f.file) f.line (Rules.id f.rule) (json_escape reason)
        (if i = n_waived - 1 then "" else ","))
    r.Engine.waived;
  output_string oc "  ],\n";
  output_string oc "  \"grandfathered\": [\n";
  List.iteri
    (fun i f -> json_finding oc ~indent:"    " ~last:(i = n_grandfathered - 1) f)
    r.Engine.grandfathered;
  output_string oc "  ],\n";
  output_string oc "  \"stale_baseline\": [\n";
  List.iteri
    (fun i (e : Baseline.entry) ->
      Printf.fprintf oc
        "    { \"file\": \"%s\", \"rule\": \"%s\", \"message\": \"%s\" }%s\n"
        (json_escape e.Baseline.e_file) (json_escape e.Baseline.e_rule)
        (json_escape e.Baseline.e_message)
        (if i = n_stale - 1 then "" else ","))
    r.Engine.stale_baseline;
  output_string oc "  ],\n";
  Printf.fprintf oc
    "  \"summary\": { \"errors\": %d, \"waived\": %d, \"grandfathered\": %d, \
     \"stale_baseline\": %d }\n"
    n_findings n_waived n_grandfathered n_stale;
  output_string oc "}\n"
