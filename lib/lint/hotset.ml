(* Interprocedural hot-path closure (rule Hot_reach; DESIGN.md §12).

   Roots are the [@hot]-annotated bindings of the configured hot
   modules — the same set the intraprocedural pass checks. From each
   root we chase resolved calls breadth-first; BFS parent pointers give
   the shortest call chain from a root to every reached binding, which
   is what the report prints:

     Pop.dispatch_batch -> Fabric.send_batch -> <alloc here>

   A reached binding's allocation/blocking facts become Hot_reach
   findings at the callee's location (where the fix goes), each carrying
   the full chain. Bindings that the intraprocedural pass already
   checked — [@hot] bindings inside designated hot modules, roots
   included — are traversed but not re-reported, so every site surfaces
   under exactly one rule and existing waivers keep working. *)

type node = {
  n_path : string;
  n_binding : Callgraph.binding;
  n_chain : string list;  (* display names, root first, this node last *)
}

let findings ~(config : Ast_check.config) ~lib_map summaries =
  let graph = Callgraph.build ~lib_map summaries in
  let is_hot_module path = Ast_check.path_matches path config.hot_modules in
  let intraprocedurally_checked ~path (b : Callgraph.binding) =
    b.b_hot && is_hot_module path
  in
  let visited = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue ~path (b : Callgraph.binding) ~chain =
    let k = Callgraph.key ~path ~name:b.b_name in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      let display = Callgraph.display_name ~path ~name:b.b_name in
      Queue.add { n_path = path; n_binding = b; n_chain = chain @ [ display ] } queue
    end
  in
  (* Seed with the [@hot] roots, in summary order for determinism. *)
  List.iter
    (fun (s : Callgraph.summary) ->
      if is_hot_module s.s_path then
        List.iter
          (fun (b : Callgraph.binding) ->
            if b.b_hot then enqueue ~path:s.s_path b ~chain:[])
          s.s_bindings)
    summaries;
  let findings = ref [] in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    (* Report facts of bindings the intraprocedural pass does not own. *)
    if not (intraprocedurally_checked ~path:n.n_path n.n_binding) then
      List.iter
        (fun (f : Ast_check.fact) ->
          let base = Ast_check.finding_of_fact ~file:n.n_path f in
          findings :=
            {
              base with
              Rules.rule = Rules.Hot_reach;
              message =
                Printf.sprintf "%s (reachable from a [@hot] body)" base.Rules.message;
              chain = n.n_chain;
            }
            :: !findings)
        n.n_binding.b_facts;
    (* Chase resolved calls. *)
    List.iter
      (fun (c : Callgraph.call) ->
        match Callgraph.resolve graph ~from_path:n.n_path c.c_target with
        | Some k -> begin
            match Callgraph.find graph k with
            | Some (path, b) -> enqueue ~path b ~chain:n.n_chain
            | None -> ()
          end
        | None -> ())
      n.n_binding.b_calls
  done;
  (* Deduplicate by location+rule: a nested binding's facts may appear
     both via its encloser's body walk and via its own node. Sorting
     also detaches the output from hash-table iteration order. *)
  List.sort_uniq
    (fun (a : Rules.finding) b ->
      match Rules.finding_compare a b with
      | 0 -> compare a.message b.message
      | c -> c)
    !findings
