(* Whole-lib/ call graph over the untyped parsetree.

   Each file is reduced to a [summary]: its local findings (cached by
   the incremental layer), its waiver inventory, and one [binding] per
   named function — carrying the hot attribute, the allocation/blocking
   facts of its body (Ast_check.binding_facts) and the identifiers it
   references. The graph layer resolves those references across module
   boundaries so Hotset can chase the transitive closure of the [@hot]
   roots.

   Resolution is name-based, not type-based — the linter runs without
   the typer — and leans on the repo's layout conventions:

   - [Lident f] resolves to a binding named [f] in the same file (a
     local let, or a nested one registered under its bare name);
   - [M.f] resolves, in order, to a binding [M.f] of the same file (a
     submodule), to [f] in the sibling file [m.ml] of the same
     directory (same wrapped library), or through a module alias
     ([module M = Tango_x.Y]) collected from the file;
   - [Tango_x.M.f] resolves through the library map — built by reading
     [(name ...)] out of each [lib/*/dune] — to [lib/x/m.ml#f];
   - [open]ed modules are tried as prefixes last.

   Unresolvable references (stdlib, functor-generated code such as the
   [Tango_err.Make] instances, shadowed locals) terminate the chain
   silently: the analysis is deliberately a conservative
   under-approximation across those boundaries, documented in
   DESIGN.md §12. *)

open Parsetree

type call = { c_target : string; c_line : int; c_col : int }

type binding = {
  b_name : string;  (* dotted path within the file, e.g. "Ring.push" *)
  b_line : int;
  b_col : int;
  b_hot : bool;
  b_facts : Ast_check.fact list;
  b_calls : call list;
}

type summary = {
  s_path : string;
  s_findings : Rules.finding list;  (* local-pass findings, pre-waiver *)
  s_waivers : Waivers.t list;
  s_waiver_findings : Rules.finding list;  (* malformed-waiver findings *)
  s_opens : string list;
  s_bindings : binding list;
}

(* ------------------------------------------------------------------ *)
(* Extraction                                                           *)

let flatten_longident lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (l, _) -> go acc l
  in
  String.concat "." (go [] lid)

let collect_aliases structure =
  let aliases = ref [] in
  let super = Ast_iterator.default_iterator in
  let module_binding it mb =
    (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Pmod_ident { txt; _ } ->
        aliases := (name, flatten_longident txt) :: !aliases
    | _ -> ());
    super.module_binding it mb
  in
  let it = { super with module_binding } in
  it.structure it structure;
  !aliases

let collect_opens structure =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
          Some (flatten_longident txt)
      | _ -> None)
    structure

(* Expand a leading alias segment: with [module F = Tango_x.Fabric],
   "F.send" becomes "Tango_x.Fabric.send". One level is enough — the
   tree aliases library modules, not aliases of aliases. *)
let expand_alias aliases dotted =
  match String.index_opt dotted '.' with
  | None -> dotted
  | Some i -> begin
      let head = String.sub dotted 0 i in
      match List.assoc_opt head aliases with
      | Some target -> target ^ String.sub dotted i (String.length dotted - i)
      | None -> dotted
    end

let collect_calls aliases body =
  let calls = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        calls :=
          {
            c_target = expand_alias aliases (flatten_longident txt);
            c_line = loc.loc_start.pos_lnum;
            c_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
          }
          :: !calls
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it body;
  List.rev !calls

(* Only syntactic functions become graph nodes: a value binding
   ([let empty_route = {...}], [let drop_counters = Array.make ...])
   runs its body once at module initialization (or at its enclosing
   let), so referencing it from a hot body costs nothing per call — its
   facts would be false positives. Eta-reduced functions
   ([let f = g x]) are values syntactically and fall outside the graph:
   the conservative under-approximation again. *)
let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* Register every named function binding — top-level, module-nested
   (dotted name) and expression-nested (bare name) — as a graph node.
   Nested bodies also contribute facts to their enclosing binding
   (calling the encloser allocates/runs them); duplicate findings are
   deduplicated by location at the engine level. *)
let collect_bindings aliases structure =
  let bindings = ref [] in
  let add_binding ~prefix (vb : value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ }
      when is_function vb.pvb_expr
           || Ast_check.has_hot_attr vb.pvb_attributes ->
        let loc = vb.pvb_pat.ppat_loc in
        bindings :=
          {
            b_name = String.concat "." (prefix @ [ name ]);
            b_line = loc.loc_start.pos_lnum;
            b_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
            b_hot = Ast_check.has_hot_attr vb.pvb_attributes;
            b_facts = Ast_check.binding_facts vb.pvb_expr;
            b_calls = collect_calls aliases vb.pvb_expr;
          }
          :: !bindings
    | _ -> ()
  in
  (* Expression-nested named bindings (e.g. the [@hot] delivery
     continuation inside a lane body) register under their bare name. *)
  let nested_pass prefix e =
    let super = Ast_iterator.default_iterator in
    let expr it e =
      (match e.pexp_desc with
      | Pexp_let (_, vbs, _) -> List.iter (add_binding ~prefix) vbs
      | _ -> ());
      super.expr it e
    in
    let it = { super with expr } in
    it.expr it e
  in
  let rec structure_items prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                add_binding ~prefix vb;
                nested_pass prefix vb.pvb_expr)
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some name; _ };
              pmb_expr = { pmod_desc = Pmod_structure items; _ };
              _;
            } ->
            structure_items (prefix @ [ name ]) items
        | _ -> ())
      items
  in
  structure_items [] structure;
  List.rev !bindings

let extract structure =
  let aliases = collect_aliases structure in
  (collect_opens structure, collect_bindings aliases structure)

(* ------------------------------------------------------------------ *)
(* Library map: wrapped library module name -> source directory         *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Pull [(name foo)] out of a dune file without a sexp parser: find the
   token "(name", take the atom up to the closing paren. *)
let library_name_of_dune source =
  match
    let n = String.length source in
    let tok = "(name" in
    let rec find i =
      if i + String.length tok > n then None
      else if String.equal (String.sub source i (String.length tok)) tok then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some i -> begin
      let j = ref (i + 5) in
      while !j < String.length source && (source.[!j] = ' ' || source.[!j] = '\n') do
        incr j
      done;
      let k = ref !j in
      while
        !k < String.length source
        && source.[!k] <> ')'
        && source.[!k] <> ' '
        && source.[!k] <> '\n'
      do
        incr k
      done;
      if !k > !j then Some (String.sub source !j (!k - !j)) else None
    end

let library_map ~roots =
  List.concat_map
    (fun root ->
      if not (Sys.file_exists root && Sys.is_directory root) then []
      else
        Sys.readdir root |> Array.to_list |> List.sort String.compare
        |> List.filter_map (fun entry ->
               let dir = Filename.concat root entry in
               let dune = Filename.concat dir "dune" in
               if Sys.is_directory dir && Sys.file_exists dune then
                 match library_name_of_dune (read_file dune) with
                 | Some name -> Some (String.capitalize_ascii name, dir)
                 | None -> None
               else None))
    roots

(* ------------------------------------------------------------------ *)
(* The graph                                                            *)

type t = {
  by_path : (string, summary) Hashtbl.t;
  by_key : (string, string * binding) Hashtbl.t;  (* "path#name" -> (path, b) *)
  lib_map : (string * string) list;
}

let key ~path ~name = path ^ "#" ^ name

let build ~lib_map summaries =
  let by_path = Hashtbl.create 128 in
  let by_key = Hashtbl.create 1024 in
  List.iter
    (fun s ->
      Hashtbl.replace by_path s.s_path s;
      List.iter
        (fun b ->
          let k = key ~path:s.s_path ~name:b.b_name in
          (* First binding wins on duplicate names (shadowing later
             definitions is the conservative choice for chains). *)
          if not (Hashtbl.mem by_key k) then Hashtbl.add by_key k (s.s_path, b))
        s.s_bindings)
    summaries;
  { by_path; by_key; lib_map }

let find t k = Hashtbl.find_opt t.by_key k

let display_name ~path ~name =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base ^ "." ^ name

(* Resolve one referenced identifier from [from_path] to a node key. *)
let resolve t ~from_path target =
  let segments = String.split_on_char '.' target in
  let in_file path name =
    let k = key ~path ~name in
    if Hashtbl.mem t.by_key k then Some k else None
  in
  let try_library segs =
    match segs with
    | lib :: md :: (_ :: _ as rest) -> begin
        match List.assoc_opt lib t.lib_map with
        | Some dir ->
            in_file
              (Filename.concat dir (String.uncapitalize_ascii md ^ ".ml"))
              (String.concat "." rest)
        | None -> None
      end
    | _ -> None
  in
  let try_sibling segs =
    match segs with
    | md :: (_ :: _ as rest)
      when String.length md > 0
           && Char.uppercase_ascii md.[0] = md.[0]
           && not (String.equal md "") ->
        let sibling =
          Filename.concat (Filename.dirname from_path)
            (String.uncapitalize_ascii md ^ ".ml")
        in
        if String.equal sibling from_path then None
        else in_file sibling (String.concat "." rest)
    | _ -> None
  in
  let ( <|> ) a b = match a with Some _ -> a | None -> b () in
  in_file from_path target
  <|> fun () ->
  try_library segments
  <|> fun () ->
  try_sibling segments
  <|> fun () ->
  let opens =
    match Hashtbl.find_opt t.by_path from_path with
    | Some s -> s.s_opens
    | None -> []
  in
  List.find_map
    (fun o -> try_library (String.split_on_char '.' (o ^ "." ^ target)))
    opens
