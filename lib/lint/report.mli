(** Rendering of lint results: compiler-style text diagnostics and the
    machine-readable JSON report (schema documented in EXPERIMENTS.md). *)

val text : out_channel -> Engine.result -> unit
(** One [file:line:col: [rule] message] line per finding plus a summary
    trailer. *)

val json : out_channel -> Engine.result -> unit
(** Stable [schema_version 1] JSON object with [findings], [waived] and
    a [summary]. *)
