(** Rendering of lint results: compiler-style text diagnostics and the
    machine-readable JSON report (schema_version 2, documented in
    EXPERIMENTS.md). SARIF export lives in {!Sarif}. *)

val text : out_channel -> Engine.result -> unit
(** One [file:line:col: [rule] message] line per finding (with an
    indented call-chain line for interprocedural findings), then
    grandfathered findings, stale-baseline notices, and a summary
    trailer with cache hit/miss counts. *)

val json : out_channel -> Engine.result -> unit
(** Stable [schema_version 2] JSON object with [findings] (carrying
    [chain] for interprocedural findings), [waived], [grandfathered],
    [stale_baseline], [cache] counters and a [summary]. *)
