(** The AST-level rule implementations. Purely syntactic — shape
    heuristics over the untyped parsetree, tuned so a bare identifier is
    never flagged while tuples / records / constructors / float literals
    always are. *)

type config = {
  hot_modules : string list;
      (** Path fragments (e.g. ["dataplane/fabric.ml"]) of the designated
          hot-path modules where [Hot_alloc] applies to [@hot] bindings. *)
  domsafe_modules : string list;
      (** Path fragments of the lane-visible multicore-dataplane modules
          where the domain-safety rules apply. *)
  exn_ban_paths : string list;
      (** Path fragments (e.g. ["lib/net/"]) where [No_failwith] applies. *)
  wallclock_allow : string list;
      (** Path fragments where wall-clock reads are sanctioned
          (manifest / wall-duration code in lib/obs). *)
  require_mli : bool;  (** Whether [Missing_mli] is enforced by the engine. *)
}

val default : config
(** The repo's designated hot modules and per-packet library paths. *)

val fingerprint : config -> string
(** Stable fingerprint of the config and the rule-set version; the
    incremental cache stores it so config or rule changes invalidate
    cached summaries wholesale. *)

val path_matches : string -> string list -> bool
(** [path_matches path fragments] — substring match on the normalized path. *)

val strip_wrappers : Parsetree.expression -> Parsetree.expression
(** Peel [Pexp_constraint] / [Pexp_coerce] wrappers. *)

val has_hot_attr : Parsetree.attributes -> bool
(** Whether a binding carries [[@hot]] (or [[@tango.hot]]). *)

val loc_finding :
  file:string -> loc:Location.t -> Rules.rule -> string -> Rules.finding

(** {1 Hot-body facts}

    The R1/R1b discipline expressed as data: the same walk that flags
    [@hot] bodies intraprocedurally summarizes every other function so
    the interprocedural pass (Hotset) can apply the discipline along
    call chains without re-walking the AST. *)

type fact_kind = Alloc | Block

type fact = { f_line : int; f_col : int; f_kind : fact_kind; f_msg : string }

val binding_facts : Parsetree.expression -> fact list
(** Allocation and blocking facts of a binding's body, walking past the
    binding's own parameter lambda chain (the outermost lambdas are the
    function, not an allocation) but checking default-argument
    expressions. *)

val finding_of_fact : file:string -> fact -> Rules.finding
(** [Hot_alloc] for [Alloc] facts, [No_mutex_hot] for [Block] facts. *)

val check_structure : config -> file:string -> Parsetree.structure -> Rules.finding list
(** Run the hot-allocation, polymorphic-compare and exception-ban passes
    over one parsed implementation. The domain-safety and determinism
    passes ([Domsafe], [Determinism]) are composed with these by the
    engine. Waivers are applied by the engine, not here. *)
