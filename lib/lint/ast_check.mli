(** The AST-level rule implementations. Purely syntactic — shape
    heuristics over the untyped parsetree, tuned so a bare identifier is
    never flagged while tuples / records / constructors / float literals
    always are. *)

type config = {
  hot_modules : string list;
      (** Path fragments (e.g. ["dataplane/fabric.ml"]) of the designated
          hot-path modules where [Hot_alloc] applies to [@hot] bindings. *)
  exn_ban_paths : string list;
      (** Path fragments (e.g. ["lib/net/"]) where [No_failwith] applies. *)
  require_mli : bool;  (** Whether [Missing_mli] is enforced by the engine. *)
}

val default : config
(** The repo's designated hot modules and per-packet library paths. *)

val path_matches : string -> string list -> bool
(** [path_matches path fragments] — substring match on the normalized path. *)

val check_structure : config -> file:string -> Parsetree.structure -> Rules.finding list
(** Run the hot-allocation, polymorphic-compare and exception-ban passes
    over one parsed implementation. Waivers are applied by the engine,
    not here. *)
