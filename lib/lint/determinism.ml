(* Determinism rules — the static side of the seed-sweep guarantee
   (DESIGN.md §12): byte-identical output for identical seeds is this
   repo's crown jewel, enforced dynamically by the cmp-based seed-sweep
   rules in test/dune and statically here.

   Three leak classes:

   - Wall-clock reads ([Unix.gettimeofday], [Unix.time], [Sys.time]).
     Sanctioned only in the configured allow set (lib/obs manifest code,
     which records wall durations *about* a run, never *into* one).

   - Global [Random] state. [Random.self_init] seeds from the
     environment; even seeded global state is domain-local in OCaml 5,
     so the same program text draws different streams depending on
     which domain runs it. Explicit [Random.State] values threaded from
     a seed are fine ([Random.State.make_self_init] is not).

   - [Hashtbl.iter] / [Hashtbl.fold]: iteration order is a function of
     the hash, the table's growth history and the stdlib version — an
     implementation detail that must never order a merge, a reduction
     with a non-commutative operator, or exported output. The
     collect-and-sort idiom is recognized and exempt: a fold or iter
     that sits (syntactically) inside an application of
     [List.sort] / [List.stable_sort] / [List.sort_uniq] — e.g.
     [Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort cmp]
     — produces an order-independent result. *)

open Parsetree

let wallclock = function
  | Longident.Ldot (Longident.Lident "Unix", (("gettimeofday" | "time") as f)) ->
      Some ("Unix." ^ f)
  | Longident.Ldot (Longident.Lident "Sys", "time") -> Some "Sys.time"
  | _ -> None

let sort_fn = function
  | Longident.Ldot
      ( Longident.Lident ("List" | "Array"),
        ("sort" | "stable_sort" | "sort_uniq" | "fast_sort") ) ->
      true
  | _ -> false

(* Spans of every sort application in the file: a Hashtbl.iter/fold
   whose location falls inside one is the sanctioned collect-and-sort
   idiom. The pipe operators keep source order, so [fold ... |> sort]
   parses as an application of (|>) whose span covers the fold. *)
let sorted_spans structure =
  let spans = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) when sort_fn txt ->
        spans := e.pexp_loc :: !spans
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("|>" | "@@"); _ }; _ },
          args )
      when List.exists
             (fun (_, a) ->
               match (Ast_check.strip_wrappers a).pexp_desc with
               | Pexp_ident { txt; _ } -> sort_fn txt
               | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
                   sort_fn txt
               | _ -> false)
             args ->
        spans := e.pexp_loc :: !spans
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  !spans

let inside (spans : Location.t list) (loc : Location.t) =
  List.exists
    (fun (s : Location.t) ->
      s.loc_start.pos_cnum <= loc.loc_start.pos_cnum
      && loc.loc_end.pos_cnum <= s.loc_end.pos_cnum
      && String.equal s.loc_start.pos_fname loc.loc_start.pos_fname)
    spans

let pass ~wallclock_allowed ~file structure =
  let findings = ref [] in
  let add ~loc rule message =
    findings := Ast_check.loc_finding ~file ~loc rule message :: !findings
  in
  let spans = sorted_spans structure in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> begin
        (match wallclock txt with
        | Some name when not wallclock_allowed ->
            add ~loc:e.pexp_loc Rules.Wallclock
              (Printf.sprintf
                 "%s leaks wall time into a seeded run; derive times from the \
                  engine's virtual clock, or move the read into the lib/obs \
                  manifest layer"
                 name)
        | _ -> ());
        match txt with
        | Longident.Ldot (Longident.Lident "Random", "self_init") ->
            add ~loc:e.pexp_loc Rules.Unseeded_random
              "Random.self_init seeds from the environment; seeded runs stop \
               being reproducible — thread an explicit seed instead"
        | Longident.Ldot (Longident.Lident "Random", fn) ->
            add ~loc:e.pexp_loc Rules.Unseeded_random
              (Printf.sprintf
                 "Random.%s draws from the global (domain-local) state; use \
                  Sim.Rng or an explicit seeded Random.State"
                 fn)
        | Longident.Ldot
            (Longident.Ldot (Longident.Lident "Random", "State"), "make_self_init")
          ->
            add ~loc:e.pexp_loc Rules.Unseeded_random
              "Random.State.make_self_init seeds from the environment; make \
               the state from an explicit seed"
        | _ -> ()
      end
    | Pexp_apply
        ( {
            pexp_desc =
              Pexp_ident
                { txt = Longident.Ldot (Longident.Lident "Hashtbl", (("iter" | "fold") as f)); _ };
            _;
          },
          _ )
      when not (inside spans e.pexp_loc) ->
        add ~loc:e.pexp_loc Rules.Iter_order
          (Printf.sprintf
             "Hashtbl.%s order is an implementation detail; if the result \
              feeds a merge, a reduction or exported output, collect and sort \
              (Hashtbl.fold ... |> List.sort ...) or iterate sorted keys"
             f)
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  !findings
