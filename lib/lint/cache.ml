(* Digest-keyed incremental summary cache (DESIGN.md §12).

   The expensive part of a lint run is parsing 70+ files and walking
   their ASTs; the whole-program passes (hot-reach closure, baseline
   matching) recompute from summaries in well under a millisecond. So
   the cache stores the per-file summaries, keyed by the MD5 digest of
   the file's content plus the config fingerprint: touch one file and
   only that file re-parses; change the lint config and the whole cache
   self-invalidates. Missing-mli is the one check deliberately NOT
   cached with the summary — it depends on the .mli's existence, not on
   the .ml's bytes — and the engine recomputes it fresh on every run.

   The on-disk format is plain JSON (written by hand, read back with
   the Tango_obs.Json strict parser — same no-dependency policy as
   BENCH.json). A missing, corrupt or version-skewed cache file reads
   as empty: the cache can only ever cost a cold run, never a wrong
   result. *)

let format_version = 1

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_list b xs write_one =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      write_one x)
    xs;
  Buffer.add_char b ']'

let write_finding b (f : Rules.finding) =
  Buffer.add_string b
    (Printf.sprintf {|{"line":%d,"col":%d,"rule":"%s","message":"%s","chain":|}
       f.line f.col (Rules.id f.rule) (escape f.message));
  write_list b f.chain (fun c -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape c)));
  Buffer.add_char b '}'

let write_waiver b (w : Waivers.t) =
  Buffer.add_string b
    (Printf.sprintf {|{"line":%d,"rule":"%s","reason":"%s"}|} w.line
       (Rules.id w.rule) (escape w.reason))

let write_fact b (f : Ast_check.fact) =
  Buffer.add_string b
    (Printf.sprintf {|{"line":%d,"col":%d,"kind":"%s","msg":"%s"}|} f.f_line
       f.f_col
       (match f.f_kind with Ast_check.Alloc -> "alloc" | Ast_check.Block -> "block")
       (escape f.f_msg))

let write_call b (c : Callgraph.call) =
  Buffer.add_string b
    (Printf.sprintf {|{"t":"%s","line":%d,"col":%d}|} (escape c.c_target) c.c_line
       c.c_col)

let write_binding b (bd : Callgraph.binding) =
  Buffer.add_string b
    (Printf.sprintf {|{"name":"%s","line":%d,"col":%d,"hot":%b,"facts":|}
       (escape bd.b_name) bd.b_line bd.b_col bd.b_hot);
  write_list b bd.b_facts (write_fact b);
  Buffer.add_string b {|,"calls":|};
  write_list b bd.b_calls (write_call b);
  Buffer.add_char b '}'

let write_summary b ~digest (s : Callgraph.summary) =
  Buffer.add_string b (Printf.sprintf {|{"digest":"%s","findings":|} digest);
  write_list b s.s_findings (write_finding b);
  Buffer.add_string b {|,"waiver_findings":|};
  write_list b s.s_waiver_findings (write_finding b);
  Buffer.add_string b {|,"waivers":|};
  write_list b s.s_waivers (write_waiver b);
  Buffer.add_string b {|,"opens":|};
  write_list b s.s_opens (fun o -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape o)));
  Buffer.add_string b {|,"bindings":|};
  write_list b s.s_bindings (write_binding b);
  Buffer.add_char b '}'

let save ~path ~config_fp (entries : (string * Callgraph.summary) list) =
  let b = Buffer.create 65536 in
  Buffer.add_string b
    (Printf.sprintf {|{"format":%d,"config":"%s","files":{|} format_version
       (escape config_fp));
  let sorted =
    List.sort (fun (_, a) (_, b) -> String.compare a.Callgraph.s_path b.Callgraph.s_path) entries
  in
  List.iteri
    (fun i (digest, (s : Callgraph.summary)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (escape s.s_path));
      write_summary b ~digest s)
    sorted;
  Buffer.add_string b "}}\n";
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc b;
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)

module J = Tango_obs.Json

type t = (string, string * Callgraph.summary) Hashtbl.t
(* path -> (digest, summary) *)

let empty () : t = Hashtbl.create 16

exception Bad

let str = function J.Str s -> s | _ -> raise Bad
let num = function J.Num n -> int_of_float n | _ -> raise Bad
let bool_ = function J.Bool b -> b | _ -> raise Bad
let list_ = function J.List l -> l | _ -> raise Bad
let field name obj = match J.member name obj with Some v -> v | None -> raise Bad

let read_finding ~file j : Rules.finding =
  let rule =
    match Rules.of_id (str (field "rule" j)) with Some r -> r | None -> raise Bad
  in
  {
    Rules.file;
    line = num (field "line" j);
    col = num (field "col" j);
    rule;
    message = str (field "message" j);
    chain = List.map str (list_ (field "chain" j));
  }

let read_waiver j : Waivers.t =
  let rule =
    match Rules.of_id (str (field "rule" j)) with Some r -> r | None -> raise Bad
  in
  { Waivers.line = num (field "line" j); rule; reason = str (field "reason" j); used = false }

let read_fact j : Ast_check.fact =
  {
    Ast_check.f_line = num (field "line" j);
    f_col = num (field "col" j);
    f_kind =
      (match str (field "kind" j) with
      | "alloc" -> Ast_check.Alloc
      | "block" -> Ast_check.Block
      | _ -> raise Bad);
    f_msg = str (field "msg" j);
  }

let read_call j : Callgraph.call =
  {
    Callgraph.c_target = str (field "t" j);
    c_line = num (field "line" j);
    c_col = num (field "col" j);
  }

let read_binding j : Callgraph.binding =
  {
    Callgraph.b_name = str (field "name" j);
    b_line = num (field "line" j);
    b_col = num (field "col" j);
    b_hot = bool_ (field "hot" j);
    b_facts = List.map read_fact (list_ (field "facts" j));
    b_calls = List.map read_call (list_ (field "calls" j));
  }

let read_summary ~path j : string * Callgraph.summary =
  ( str (field "digest" j),
    {
      Callgraph.s_path = path;
      s_findings = List.map (read_finding ~file:path) (list_ (field "findings" j));
      s_waiver_findings =
        List.map (read_finding ~file:path) (list_ (field "waiver_findings" j));
      s_waivers = List.map read_waiver (list_ (field "waivers" j));
      s_opens = List.map str (list_ (field "opens" j));
      s_bindings = List.map read_binding (list_ (field "bindings" j));
    } )

let load ~path ~config_fp : t =
  if not (Sys.file_exists path) then empty ()
  else
    try
      let ic = open_in_bin path in
      let source =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let j = J.parse source in
      if num (field "format" j) <> format_version then empty ()
      else if not (String.equal (str (field "config" j)) config_fp) then empty ()
      else begin
        let tbl = empty () in
        (match field "files" j with
        | J.Obj fields ->
            List.iter
              (fun (path, sj) -> Hashtbl.replace tbl path (read_summary ~path sj))
              fields
        | _ -> raise Bad);
        tbl
      end
    with Bad | J.Parse_error _ | Sys_error _ -> empty ()

let find (t : t) ~path ~digest =
  match Hashtbl.find_opt t path with
  | Some (d, s) when String.equal d digest -> Some s
  | _ -> None
