(** SARIF 2.1.0 export of unwaived findings ([--sarif FILE];
    EXPERIMENTS.md). One run, driver ["tango_lint"], the full rule
    catalogue, one [result] per finding. Columns are converted to
    SARIF's 1-based convention; interprocedural call chains are appended
    to the message text. *)

val render : out_channel -> Rules.finding list -> unit
