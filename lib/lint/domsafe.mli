(** Domain-safety rules for the lane-visible modules of the multicore
    dataplane (rules [Domsafe_mutation], [Domsafe_blocking],
    [Domain_self]; DESIGN.md §12).

    Lane-shared state is identified syntactically: a record type
    carrying an [Atomic.t] field is the cross-domain handoff structure.
    Direct writes to its plain mutable fields bypass the sanctioned
    Atomic-cursor ring-publication pattern and are findings; the
    sanctioned pattern itself (plain array-slot writes published by an
    [Atomic.set] of the cursor) is invisible to the rule by
    construction, so it needs no exemption list. *)

val pass :
  lane_visible:bool -> file:string -> Parsetree.structure -> Rules.finding list
(** Run the pass; returns [[]] when [lane_visible] is false (the file is
    not in the configured [domsafe_modules] set). *)
