(* Waivers are single-line comments of the form

     tango-lint: allow <rule> — <reason>   (wrapped in a normal OCaml comment)

   placed either at the end of the offending line or on the line just
   above it. The separator may be an em-dash, "--" or "-". A waiver
   that names an unknown rule, lacks a reason, or suppresses nothing is
   itself a finding: exceptions to the rules stay visible in review. *)

type t = { line : int; rule : Rules.rule; reason : string; mutable used : bool }

(* Built by concatenation so the scanner does not flag its own
   definition as a malformed waiver. *)
let marker = "(* " ^ "tango-lint:"

let contains_at s off sub =
  off >= 0
  && off + String.length sub <= String.length s
  && String.equal (String.sub s off (String.length sub)) sub

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if contains_at s i sub then Some i else go (i + 1) in
  go 0

(* Split "allow <rule> <sep> <reason>" into its parts. Returns
   [Error message] for anything malformed. *)
let parse_body body =
  let body = String.trim body in
  let allow = "allow " in
  if not (contains_at body 0 allow) then
    Error "expected 'allow <rule> \xe2\x80\x94 <reason>' after 'tango-lint:'"
  else begin
    let rest =
      let n = String.length allow in
      String.trim (String.sub body n (String.length body - n))
    in
    let rule_end =
      match String.index_opt rest ' ' with Some i -> i | None -> String.length rest
    in
    let rule_id = String.sub rest 0 rule_end in
    let tail = String.trim (String.sub rest rule_end (String.length rest - rule_end)) in
    let reason =
      (* Accept an em-dash, "--" or "-" between rule and reason. *)
      if contains_at tail 0 "\xe2\x80\x94" then
        Some (String.trim (String.sub tail 3 (String.length tail - 3)))
      else if contains_at tail 0 "--" then
        Some (String.trim (String.sub tail 2 (String.length tail - 2)))
      else if contains_at tail 0 "-" then
        Some (String.trim (String.sub tail 1 (String.length tail - 1)))
      else None
    in
    match (Rules.of_id rule_id, reason) with
    | None, _ -> Error (Printf.sprintf "unknown rule %S in waiver" rule_id)
    | Some _, None | Some _, Some "" ->
        Error (Printf.sprintf "waiver for %s is missing its reason" rule_id)
    | Some rule, Some reason -> Ok (rule, reason)
  end

let scan ~path source =
  let waivers = ref [] and findings = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      match find_sub line marker with
      | None -> ()
      | Some off -> begin
          let body_off = off + String.length marker in
          let close =
            match find_sub (String.sub line body_off (String.length line - body_off)) "*)" with
            | Some c -> Some (body_off + c)
            | None -> None
          in
          match close with
          | None ->
              findings :=
                Rules.v ~file:path ~line:lnum ~col:off Rules.Waiver
                  "waiver comment must open and close on one line"
                :: !findings
          | Some close -> begin
              match parse_body (String.sub line body_off (close - body_off)) with
              | Error message ->
                  findings :=
                    Rules.v ~file:path ~line:lnum ~col:off Rules.Waiver message
                    :: !findings
              | Ok (rule, reason) ->
                  waivers := { line = lnum; rule; reason; used = false } :: !waivers
            end
        end)
    lines;
  (List.rev !waivers, List.rev !findings)

let covers t ~rule ~line =
  String.equal (Rules.id rule) (Rules.id t.rule) && (line = t.line || line = t.line + 1)

let unused_findings ~path waivers =
  List.filter_map
    (fun w ->
      if w.used then None
      else
        Some
          (Rules.v ~file:path ~line:w.line ~col:0 Rules.Waiver
             (Printf.sprintf "unused waiver for %s: nothing to suppress here"
                (Rules.id w.rule))))
    waivers
