(** Parsing and bookkeeping for [(* tango-lint: allow <rule> — <reason> *)]
    waiver comments. A waiver suppresses findings of its rule on its own
    line (end-of-line comment) or the line immediately below (comment
    above the offending expression). *)

type t = {
  line : int;
  rule : Rules.rule;
  reason : string;
  mutable used : bool;  (** set by the engine when the waiver suppresses a finding *)
}

val scan : path:string -> string -> t list * Rules.finding list
(** Scan raw source text. Returns the well-formed waivers plus one
    [Waiver] finding per malformed comment (unknown rule, missing
    reason, unterminated). *)

val covers : t -> rule:Rules.rule -> line:int -> bool

val unused_findings : path:string -> t list -> Rules.finding list
(** A [Waiver] finding for every waiver whose [used] flag was never set:
    stale waivers must not accumulate. *)
