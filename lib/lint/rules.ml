type rule =
  | Hot_alloc
  | No_mutex_hot
  | Hot_reach
  | Domsafe_mutation
  | Domsafe_blocking
  | Domain_self
  | Wallclock
  | Unseeded_random
  | Iter_order
  | Poly_compare
  | Float_equal
  | No_failwith
  | Missing_mli
  | Waiver
  | Parse_error

let all =
  [
    Hot_alloc;
    No_mutex_hot;
    Hot_reach;
    Domsafe_mutation;
    Domsafe_blocking;
    Domain_self;
    Wallclock;
    Unseeded_random;
    Iter_order;
    Poly_compare;
    Float_equal;
    No_failwith;
    Missing_mli;
    Waiver;
    Parse_error;
  ]

let id = function
  | Hot_alloc -> "hot-alloc"
  | No_mutex_hot -> "no-mutex-in-hot"
  | Hot_reach -> "hot-reach"
  | Domsafe_mutation -> "domsafe-mutation"
  | Domsafe_blocking -> "domsafe-blocking"
  | Domain_self -> "domsafe-domain-self"
  | Wallclock -> "determinism-wallclock"
  | Unseeded_random -> "determinism-random"
  | Iter_order -> "determinism-iteration"
  | Poly_compare -> "poly-compare"
  | Float_equal -> "float-equal"
  | No_failwith -> "no-failwith"
  | Missing_mli -> "missing-mli"
  | Waiver -> "waiver"
  | Parse_error -> "parse-error"

let of_id s = List.find_opt (fun r -> String.equal (id r) s) all

let describe = function
  | Hot_alloc ->
      "no allocation (closures, tuples, lists, records, arrays), Printf/Format, \
       Queue or tuple-keyed Hashtbl use inside [@hot] functions of designated \
       hot-path modules"
  | No_mutex_hot ->
      "no Mutex, Condition or Semaphore use and no blocking Domain operations \
       (spawn, join) inside [@hot] functions of designated hot-path modules — \
       the multicore packet path is lock-free; Domain.cpu_relax is allowed"
  | Hot_reach ->
      "the hot-alloc and no-mutex disciplines apply to every function \
       transitively reachable from a [@hot] body, not just the annotated \
       entry points; violations report the full call chain from the hot root"
  | Domsafe_mutation ->
      "a record type carrying an Atomic.t field is lane-shared; writing its \
       plain mutable fields directly bypasses the sanctioned ring-publication \
       pattern (plain array/field writes made visible by an Atomic cursor \
       store) and races across domains"
  | Domsafe_blocking ->
      "no Mutex, Condition or Semaphore anywhere in the lane-visible modules \
       of the multicore dataplane — blocking a lane stalls its domain and, \
       through the stop-the-world rendezvous, every other lane"
  | Domain_self ->
      "no Domain.self-dependent control flow in lane-visible modules: lane \
       behaviour must be a function of the lane id and the seed, never of \
       which domain the scheduler picked"
  | Wallclock ->
      "no wall-clock reads (Unix.gettimeofday, Unix.time, Sys.time) outside \
       lib/obs manifest code: seeded runs must be byte-reproducible, and wall \
       time is the classic leak"
  | Unseeded_random ->
      "no global Random state (Random.int, Random.self_init, ...): all \
       randomness flows from an explicit seed through Sim.Rng or \
       Random.State, or seeded runs stop being reproducible"
  | Iter_order ->
      "no Hashtbl.iter / Hashtbl.fold feeding a merge, reduction or exported \
       output: iteration order is an implementation detail; collect and sort \
       (Hashtbl.fold ... |> List.sort ...) instead"
  | Poly_compare ->
      "no polymorphic =, <>, compare, min, max or Hashtbl.hash on structured \
       (non-immediate) operands; use monomorphic comparators"
  | Float_equal -> "no = / <> / compare on float operands: NaN makes them a hazard"
  | No_failwith ->
      "no failwith / invalid_arg / raise Invalid_argument / raise Failure in \
       per-packet libraries (lib/net, lib/dataplane); declare the exception"
  | Missing_mli -> "every lib/**/*.ml must have a matching .mli interface"
  | Waiver -> "waiver comments must name a known rule and carry a reason"
  | Parse_error -> "the file must parse"

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
  chain : string list;
      (* call chain from a [@hot] root for interprocedural findings;
         [] for local findings *)
}

let v ~file ~line ~col rule message =
  { file; line; col; rule; message; chain = [] }

let finding_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (id a.rule) (id b.rule)
