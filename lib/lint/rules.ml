type rule =
  | Hot_alloc
  | No_mutex_hot
  | Poly_compare
  | Float_equal
  | No_failwith
  | Missing_mli
  | Waiver
  | Parse_error

let all =
  [
    Hot_alloc;
    No_mutex_hot;
    Poly_compare;
    Float_equal;
    No_failwith;
    Missing_mli;
    Waiver;
    Parse_error;
  ]

let id = function
  | Hot_alloc -> "hot-alloc"
  | No_mutex_hot -> "no-mutex-in-hot"
  | Poly_compare -> "poly-compare"
  | Float_equal -> "float-equal"
  | No_failwith -> "no-failwith"
  | Missing_mli -> "missing-mli"
  | Waiver -> "waiver"
  | Parse_error -> "parse-error"

let of_id s = List.find_opt (fun r -> String.equal (id r) s) all

let describe = function
  | Hot_alloc ->
      "no allocation (closures, tuples, lists, records, arrays), Printf/Format, \
       Queue or tuple-keyed Hashtbl use inside [@hot] functions of designated \
       hot-path modules"
  | No_mutex_hot ->
      "no Mutex, Condition or Semaphore use and no blocking Domain operations \
       (spawn, join) inside [@hot] functions of designated hot-path modules — \
       the multicore packet path is lock-free; Domain.cpu_relax is allowed"
  | Poly_compare ->
      "no polymorphic =, <>, compare, min, max or Hashtbl.hash on structured \
       (non-immediate) operands; use monomorphic comparators"
  | Float_equal -> "no = / <> / compare on float operands: NaN makes them a hazard"
  | No_failwith ->
      "no failwith / invalid_arg / raise Invalid_argument / raise Failure in \
       per-packet libraries (lib/net, lib/dataplane); declare the exception"
  | Missing_mli -> "every lib/**/*.ml must have a matching .mli interface"
  | Waiver -> "waiver comments must name a known rule and carry a reason"
  | Parse_error -> "the file must parse"

type finding = { file : string; line : int; col : int; rule : rule; message : string }

let finding_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (id a.rule) (id b.rule)
