(** Committed findings baseline with ratchet semantics (DESIGN.md §12).

    Findings listed in the committed baseline file (LINT_BASELINE.json)
    are grandfathered: reported but not failing. Findings absent from it
    fail. Baseline entries matching nothing are stale and reported — the
    file can only shrink. Matching is a multiset consume on
    (file, rule, message); line numbers are deliberately excluded so
    unrelated edits do not churn the baseline. *)

type entry = { e_file : string; e_rule : string; e_message : string }

val entry_compare : entry -> entry -> int

val load : path:string -> entry list
(** An absent or unreadable baseline loads as [[]] — every finding then
    fails, which is the loud failure direction. *)

val save : path:string -> Rules.finding list -> unit
(** Write the given findings as the new baseline ([--write-baseline]). *)

val partition :
  baseline:entry list ->
  Rules.finding list ->
  Rules.finding list * Rules.finding list * entry list
(** [(fresh, grandfathered, stale)]: findings not covered by the
    baseline, findings it absolves, and entries that matched nothing. *)
