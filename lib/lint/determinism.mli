(** Determinism rules — the static side of the seed-sweep guarantee
    (rules [Wallclock], [Unseeded_random], [Iter_order]; DESIGN.md §12).

    Flags wall-clock reads outside the configured allow set, global
    [Random] state, and [Hashtbl.iter]/[fold] whose order could leak
    into a merge or exported output. The collect-and-sort idiom
    ([Hashtbl.fold ... |> List.sort ...], or the fold nested anywhere
    inside a [List.sort]/[Array.sort] application) is recognized and
    exempt. *)

val pass :
  wallclock_allowed:bool ->
  file:string ->
  Parsetree.structure ->
  Rules.finding list
(** [wallclock_allowed] is true when the file matches the config's
    [wallclock_allow] fragments (lib/obs manifest code). The Random and
    Hashtbl rules apply everywhere. *)
