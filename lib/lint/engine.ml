(* Orchestration: find the .ml files, parse each one with the 5.1
   compiler front end, run the AST passes, check interface completeness,
   then fold waivers in. Everything returns data; printing lives in
   Report. *)

type result = {
  files : string list;
  findings : Rules.finding list;  (* unwaived, sorted *)
  waived : (Rules.finding * string) list;  (* finding, waiver reason *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_findings ~file exn =
  let fallback message = [ { Rules.file; line = 1; col = 0; rule = Rules.Parse_error; message } ] in
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
      let loc = report.Location.main.Location.loc in
      [
        {
          Rules.file;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol;
          rule = Rules.Parse_error;
          message = Format.asprintf "%t" report.Location.main.Location.txt;
        };
      ]
  | Some `Already_displayed | None -> fallback (Printexc.to_string exn)

let lint_file ?(config = Ast_check.default) file =
  let source = read_file file in
  let waivers, waiver_findings = Waivers.scan ~path:file source in
  let parsed =
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf file;
    match Parse.implementation lexbuf with
    | structure -> Ok structure
    | exception exn -> Error (parse_findings ~file exn)
  in
  let ast_findings =
    match parsed with
    | Ok structure -> Ast_check.check_structure config ~file structure
    | Error findings -> findings
  in
  let mli_findings =
    if config.Ast_check.require_mli && not (Sys.file_exists (file ^ "i")) then
      [
        {
          Rules.file;
          line = 1;
          col = 0;
          rule = Rules.Missing_mli;
          message = "no matching .mli: every library module declares its interface";
        };
      ]
    else []
  in
  let raw = ast_findings @ mli_findings @ waiver_findings in
  let waived, unwaived =
    List.partition_map
      (fun (f : Rules.finding) ->
        match
          List.find_opt (fun w -> Waivers.covers w ~rule:f.rule ~line:f.line) waivers
        with
        | Some w ->
            w.Waivers.used <- true;
            Either.Left (f, w.Waivers.reason)
        | None -> Either.Right f)
      raw
  in
  let unwaived = unwaived @ Waivers.unused_findings ~path:file waivers in
  (unwaived, waived)

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_paths ?(config = Ast_check.default) paths =
  let files = List.concat_map ml_files_under paths in
  let findings, waived =
    List.fold_left
      (fun (fs, ws) file ->
        let f, w = lint_file ~config file in
        (f @ fs, w @ ws))
      ([], []) files
  in
  {
    files;
    findings = List.sort Rules.finding_compare findings;
    waived =
      List.sort (fun (a, _) (b, _) -> Rules.finding_compare a b) waived;
  }
