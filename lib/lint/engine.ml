(* Orchestration (DESIGN.md §12). The v2 pipeline:

     discover .ml files
       -> per-file summary (parse + local passes + callgraph facts)
            [served from the digest-keyed Cache when the bytes and the
             config fingerprint both match]
       -> whole-program passes over the summaries (Hotset hot-reach)
       -> fresh missing-mli check (depends on the .mli's existence,
          never cached)
       -> waiver application (after the graph passes, so a waiver on an
          interprocedural finding registers as used)
       -> unused-waiver findings
       -> baseline partition (fresh fail; grandfathered report;
          stale entries surface)

   Everything returns data; printing lives in Report / Sarif. *)

type result = {
  files : string list;
  findings : Rules.finding list;  (* unwaived, not grandfathered: these fail *)
  waived : (Rules.finding * string) list;  (* finding, waiver reason *)
  grandfathered : Rules.finding list;  (* absolved by the committed baseline *)
  stale_baseline : Baseline.entry list;  (* baseline entries matching nothing *)
  cache_hits : int;
  cache_misses : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_findings ~file exn =
  let fallback message = [ Rules.v ~file ~line:1 ~col:0 Rules.Parse_error message ] in
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
      let loc = report.Location.main.Location.loc in
      [
        Rules.v ~file ~line:loc.Location.loc_start.Lexing.pos_lnum
          ~col:
            (loc.Location.loc_start.Lexing.pos_cnum
            - loc.Location.loc_start.Lexing.pos_bol)
          Rules.Parse_error
          (Format.asprintf "%t" report.Location.main.Location.txt);
      ]
  | Some `Already_displayed | None -> fallback (Printexc.to_string exn)

(* One file -> (digest, summary). All local passes run here; whole-
   program passes and the mli check run downstream in [run]. *)
let summarize ~(config : Ast_check.config) file =
  let source = read_file file in
  let digest = Digest.to_hex (Digest.string source) in
  let waivers, waiver_findings = Waivers.scan ~path:file source in
  let parsed =
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf file;
    match Parse.implementation lexbuf with
    | structure -> Ok structure
    | exception exn -> Error (parse_findings ~file exn)
  in
  let summary =
    match parsed with
    | Error findings ->
        {
          Callgraph.s_path = file;
          s_findings = findings;
          s_waivers = waivers;
          s_waiver_findings = waiver_findings;
          s_opens = [];
          s_bindings = [];
        }
    | Ok structure ->
        let local =
          Ast_check.check_structure config ~file structure
          @ Domsafe.pass
              ~lane_visible:(Ast_check.path_matches file config.domsafe_modules)
              ~file structure
          @ Determinism.pass
              ~wallclock_allowed:
                (Ast_check.path_matches file config.wallclock_allow)
              ~file structure
        in
        let opens, bindings = Callgraph.extract structure in
        {
          Callgraph.s_path = file;
          s_findings = local;
          s_waivers = waivers;
          s_waiver_findings = waiver_findings;
          s_opens = opens;
          s_bindings = bindings;
        }
  in
  (digest, summary)

let mli_findings ~(config : Ast_check.config) file =
  if config.Ast_check.require_mli && not (Sys.file_exists (file ^ "i")) then
    [
      Rules.v ~file ~line:1 ~col:0 Rules.Missing_mli
        "no matching .mli: every library module declares its interface";
    ]
  else []

let apply_waivers ~waivers_by_file findings =
  List.partition_map
    (fun (f : Rules.finding) ->
      let waivers =
        match Hashtbl.find_opt waivers_by_file f.Rules.file with
        | Some ws -> ws
        | None -> []
      in
      match
        List.find_opt
          (fun w -> Waivers.covers w ~rule:f.Rules.rule ~line:f.Rules.line)
          waivers
      with
      | Some w ->
          w.Waivers.used <- true;
          Either.Left (f, w.Waivers.reason)
      | None -> Either.Right f)
    findings

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let run ?(config = Ast_check.default) ?cache_path ?baseline_path paths =
  let files = List.concat_map ml_files_under paths in
  let config_fp = Ast_check.fingerprint config in
  let cache =
    match cache_path with
    | Some path -> Cache.load ~path ~config_fp
    | None -> Cache.empty ()
  in
  let hits = ref 0 and misses = ref 0 in
  let entries =
    List.map
      (fun file ->
        let digest = Digest.to_hex (Digest.string (read_file file)) in
        match Cache.find cache ~path:file ~digest with
        | Some summary ->
            incr hits;
            (digest, summary)
        | None ->
            incr misses;
            summarize ~config file)
      files
  in
  (match cache_path with
  | Some path -> Cache.save ~path ~config_fp entries
  | None -> ());
  let summaries = List.map snd entries in
  let lib_map =
    Callgraph.library_map
      ~roots:(List.filter (fun p -> Sys.file_exists p && Sys.is_directory p) paths)
  in
  let reach = Hotset.findings ~config ~lib_map summaries in
  let waivers_by_file = Hashtbl.create 64 in
  List.iter
    (fun (s : Callgraph.summary) ->
      Hashtbl.replace waivers_by_file s.Callgraph.s_path s.Callgraph.s_waivers)
    summaries;
  let raw =
    List.concat_map
      (fun (s : Callgraph.summary) -> s.Callgraph.s_findings @ s.Callgraph.s_waiver_findings)
      summaries
    @ reach
    @ List.concat_map (mli_findings ~config) files
  in
  let waived, unwaived = apply_waivers ~waivers_by_file raw in
  let unused =
    List.concat_map
      (fun (s : Callgraph.summary) ->
        Waivers.unused_findings ~path:s.Callgraph.s_path s.Callgraph.s_waivers)
      summaries
  in
  let baseline =
    match baseline_path with Some path -> Baseline.load ~path | None -> []
  in
  let fresh, grandfathered, stale =
    Baseline.partition ~baseline (unwaived @ unused)
  in
  {
    files;
    findings = List.sort Rules.finding_compare fresh;
    waived = List.sort (fun (a, _) (b, _) -> Rules.finding_compare a b) waived;
    grandfathered = List.sort Rules.finding_compare grandfathered;
    stale_baseline = List.sort_uniq Baseline.entry_compare stale;
    cache_hits = !hits;
    cache_misses = !misses;
  }

(* Single-file entry point, local passes only (no call graph, no
   baseline): what the fixture tests drive and what stays cheap to
   reason about. Returns (unwaived, waived). *)
let lint_file ?(config = Ast_check.default) file =
  let _digest, summary = summarize ~config file in
  let waivers_by_file = Hashtbl.create 1 in
  Hashtbl.replace waivers_by_file file summary.Callgraph.s_waivers;
  let raw =
    summary.Callgraph.s_findings @ summary.Callgraph.s_waiver_findings
    @ mli_findings ~config file
  in
  let waived, unwaived = apply_waivers ~waivers_by_file raw in
  let unwaived =
    unwaived @ Waivers.unused_findings ~path:file summary.Callgraph.s_waivers
  in
  (unwaived, waived)

let lint_paths ?(config = Ast_check.default) paths = run ~config paths
