(** Process-wide metric registry: named counters, gauges and
    log-bucketed histograms backed by flat int/float arrays.

    The record paths ({!incr}, {!add}, {!set}, {!observe}) are O(1) and
    allocation-free, so they are safe inside [@hot] bodies of the packet
    fast path. All of them are gated on one process-wide switch
    ({!set_enabled}), default off: an uninstrumented run pays a load and
    a branch per call site and nothing else.

    Registration ({!counter}, {!gauge}, {!histogram}) is the cold path —
    do it once, at module-init time, and keep the returned handle.
    Registering an already-registered name returns the existing handle;
    re-registering it as a different kind (or a histogram with a
    different layout) raises [Invalid_argument]. Metric names must match
    [[A-Za-z0-9_:]+] so they render directly in both export formats. *)

type counter

type gauge

type histogram

val enabled : unit -> bool
(** Whether recording is live. Off by default. *)

val set_enabled : bool -> unit
(** Flip the process-wide recording switch ([--metrics] sets it). *)

(** {1 Registration (cold path)} *)

val counter : ?help:string -> string -> counter
(** [counter name] registers (or looks up) a monotonically increasing
    counter. *)

val gauge : ?help:string -> string -> gauge
(** [gauge name] registers (or looks up) a last-value-wins gauge. *)

val histogram : ?help:string -> ?lo_exp:int -> ?buckets:int -> string -> histogram
(** [histogram name] registers a log-bucketed histogram: bucket [i]
    (for [0 <= i < buckets]) counts observations [v] with
    [2^(lo_exp+i-1) < v <= 2^(lo_exp+i)] (bucket 0 also absorbs
    everything below, including non-positive values), and one extra
    overflow bucket at index [buckets] absorbs the rest (including
    nan/inf). Defaults: [lo_exp = -20] (≈ 1 µs when observing seconds),
    [buckets = 24] (≈ 16 s). *)

(** {1 Recording (hot path, allocation-free)} *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit

val set_ratio : gauge -> num:int -> den:int -> unit
(** [set] the gauge to [num /. den], or [0.] when [den] is zero — the
    shared guard for hit-rate and occupancy-fraction gauges. *)

val observe : histogram -> float -> unit

(** {1 Reading (cold path: tests and exporters)} *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val histogram_bucket_count : histogram -> int
(** Finite bucket count; the overflow bucket at that index is extra. *)

val bucket_of : histogram -> float -> int
(** The bucket index {!observe} would count [v] into (works with the
    switch off). *)

val bucket_upper_bound : histogram -> int -> float
(** Inclusive upper bound of a bucket; [infinity] for the overflow
    bucket. Raises [Invalid_argument] outside [0, bucket_count]. *)

val bucket_count_value : histogram -> int -> int
(** Observations recorded in one bucket. *)

val histogram_sum : histogram -> float
(** Sum of every finite observed value (nan excluded). *)

val histogram_total : histogram -> int
(** Total observations, overflow bucket included. *)

type view = { name : string; help : string; value : value }

and value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      upper_bounds : float array;
          (** finite bucket bounds, ascending; overflow implicit *)
      counts : int array;  (** [bucket_count + 1] entries, overflow last *)
      sum : float;
      count : int;
    }

val views : unit -> view list
(** Every registered metric with its current value, sorted by name. *)

val reset_values : unit -> unit
(** Zero every counter/gauge/histogram, keeping registrations: a fresh
    run in the same process aggregates from a clean slate. *)
