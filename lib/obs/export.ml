(* Snapshot renderers: JSON-lines (one self-contained object per line,
   manifest first) and Prometheus text format. Schema documented in
   EXPERIMENTS.md; bump [schema_version] on any incompatible change.
   This is the cold path — it runs once per exported run. *)

type event = { time : float; kind : string; a : int; b : int }

type snapshot = { metrics : Metric.view list; events : event list }

let snapshot ?(trace = Trace.default) () =
  let events = ref [] in
  Trace.iter trace (fun ~time ~kind ~a ~b ->
      events := { time; kind = Trace.kind_name kind; a; b } :: !events);
  { metrics = Metric.views (); events = List.rev !events }

(* ------------------------------------------------------------------ *)
(* JSON-lines                                                          *)

let schema_version = 1

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* JSON has no inf/nan literals; non-finite values render as null. *)
let add_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.12g" v)
  else Buffer.add_string b "null"

let add_string b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

let add_manifest b (m : Manifest.t) =
  Buffer.add_string b "{\"type\":\"manifest\",\"schema_version\":";
  Buffer.add_string b (string_of_int schema_version);
  Buffer.add_string b ",\"tool\":\"tango-obs\",\"experiment\":";
  add_string b m.Manifest.experiment;
  Buffer.add_string b ",\"seed\":";
  Buffer.add_string b (string_of_int m.Manifest.seed);
  Buffer.add_string b ",\"config_digest\":";
  add_string b m.Manifest.config_digest;
  Buffer.add_string b ",\"started_unix_s\":";
  add_float b m.Manifest.started_unix_s;
  Buffer.add_string b ",\"wall_s\":";
  add_float b m.Manifest.wall_s;
  Buffer.add_string b ",\"virtual_s\":";
  add_float b m.Manifest.virtual_s;
  Buffer.add_string b ",\"sim_events\":";
  Buffer.add_string b (string_of_int m.Manifest.sim_events);
  Buffer.add_string b ",\"trace_recorded\":";
  Buffer.add_string b (string_of_int m.Manifest.trace_recorded);
  Buffer.add_string b ",\"trace_dropped\":";
  Buffer.add_string b (string_of_int m.Manifest.trace_dropped);
  Buffer.add_string b "}\n"

let add_metric b (v : Metric.view) =
  (match v.Metric.value with
  | Metric.Counter_value n ->
      Buffer.add_string b "{\"type\":\"counter\",\"name\":";
      add_string b v.Metric.name;
      Buffer.add_string b ",\"help\":";
      add_string b v.Metric.help;
      Buffer.add_string b ",\"value\":";
      Buffer.add_string b (string_of_int n)
  | Metric.Gauge_value g ->
      Buffer.add_string b "{\"type\":\"gauge\",\"name\":";
      add_string b v.Metric.name;
      Buffer.add_string b ",\"help\":";
      add_string b v.Metric.help;
      Buffer.add_string b ",\"value\":";
      add_float b g
  | Metric.Histogram_value { upper_bounds; counts; sum; count } ->
      Buffer.add_string b "{\"type\":\"histogram\",\"name\":";
      add_string b v.Metric.name;
      Buffer.add_string b ",\"help\":";
      add_string b v.Metric.help;
      Buffer.add_string b ",\"le\":[";
      Array.iteri
        (fun i bound ->
          if i > 0 then Buffer.add_char b ',';
          add_float b bound)
        upper_bounds;
      Buffer.add_string b "],\"counts\":[";
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int c))
        counts;
      Buffer.add_string b "],\"sum\":";
      add_float b sum;
      Buffer.add_string b ",\"count\":";
      Buffer.add_string b (string_of_int count));
  Buffer.add_string b "}\n"

let add_event b e =
  Buffer.add_string b "{\"type\":\"event\",\"t\":";
  add_float b e.time;
  Buffer.add_string b ",\"kind\":";
  add_string b e.kind;
  Buffer.add_string b ",\"a\":";
  Buffer.add_string b (string_of_int e.a);
  Buffer.add_string b ",\"b\":";
  Buffer.add_string b (string_of_int e.b);
  Buffer.add_string b "}\n"

let to_jsonl ?manifest snap =
  let b = Buffer.create 4096 in
  (match manifest with None -> () | Some m -> add_manifest b m);
  List.iter (add_metric b) snap.metrics;
  List.iter (add_event b) snap.events;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text format                                              *)

(* Prometheus exposition renders non-finite values as +Inf/-Inf/NaN. *)
let prom_float v =
  if Float.is_finite v then Printf.sprintf "%.12g" v
  else if Float.is_nan v then "NaN"
  else if v > 0.0 then "+Inf"
  else "-Inf"

let prom_name name = "tango_" ^ name

let add_prom_header b name help kind =
  if String.length help > 0 then begin
    Buffer.add_string b "# HELP ";
    Buffer.add_string b name;
    Buffer.add_char b ' ';
    String.iter
      (fun c -> if c = '\n' then Buffer.add_char b ' ' else Buffer.add_char b c)
      help;
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b "# TYPE ";
  Buffer.add_string b name;
  Buffer.add_char b ' ';
  Buffer.add_string b kind;
  Buffer.add_char b '\n'

let add_prom_metric b (v : Metric.view) =
  let name = prom_name v.Metric.name in
  match v.Metric.value with
  | Metric.Counter_value n ->
      add_prom_header b name v.Metric.help "counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" name n)
  | Metric.Gauge_value g ->
      add_prom_header b name v.Metric.help "gauge";
      Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_float g))
  | Metric.Histogram_value { upper_bounds; counts; sum; count } ->
      add_prom_header b name v.Metric.help "histogram";
      let cumulative = ref 0 in
      Array.iteri
        (fun i bound ->
          cumulative := !cumulative + counts.(i);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (prom_float bound)
               !cumulative))
        upper_bounds;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name count);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (prom_float sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" name count)

let to_prometheus snap =
  let b = Buffer.create 4096 in
  List.iter (add_prom_metric b) snap.metrics;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* File convenience                                                    *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_jsonl ?manifest path snap = write_file path (to_jsonl ?manifest snap)

let write_prometheus path snap = write_file path (to_prometheus snap)
