(** Per-run metadata emitted with every snapshot, so a metrics file is
    self-describing: which experiment ran, under which seed and config,
    how long it took (wall and virtual), and how much the flight
    recorder saw. Schema documented in EXPERIMENTS.md. *)

type t = {
  experiment : string;  (** experiment id(s), e.g. ["fig3"] *)
  seed : int;  (** the deterministic simulation seed *)
  config_digest : string;  (** MD5 hex of the run configuration, [""] if none *)
  started_unix_s : float;  (** wall-clock start, Unix seconds *)
  wall_s : float;  (** wall-clock duration of the run *)
  virtual_s : float;  (** simulated time reached *)
  sim_events : int;  (** events the sim engine executed *)
  trace_recorded : int;  (** trace records ever written *)
  trace_dropped : int;  (** trace records lost to wraparound *)
}

val v :
  experiment:string ->
  seed:int ->
  ?config_digest:string ->
  started_unix_s:float ->
  wall_s:float ->
  virtual_s:float ->
  sim_events:int ->
  trace_recorded:int ->
  trace_dropped:int ->
  unit ->
  t
(** Assemble a manifest from explicit fields (tests and replays). *)

val digest_of_string : string -> string
(** MD5 hex digest of a canonical configuration string. *)

val now_unix_s : unit -> float
(** [Unix.gettimeofday]. *)

type session

val start : experiment:string -> seed:int -> ?config:string -> unit -> session
(** Pin the wall clock at run start; [config] is the raw configuration
    text to digest (the file contents, a CLI summary — anything
    canonical). *)

val finish : session -> virtual_s:float -> sim_events:int -> Trace.t -> t
(** Close the session into a manifest, reading the trace counters. *)
