(* Minimal strict JSON reader. The toolchain ships no JSON library, and
   every consumer parses machine-written output (BENCH.json, --metrics
   JSON-lines), so a small recursive-descent parser over the full input
   string is enough. Cold path only. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.equal (String.sub s !pos m) word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              advance ();
              Buffer.add_char b '"';
              go ()
          | Some '\\' ->
              advance ();
              Buffer.add_char b '\\';
              go ()
          | Some '/' ->
              advance ();
              Buffer.add_char b '/';
              go ()
          | Some 'n' ->
              advance ();
              Buffer.add_char b '\n';
              go ()
          | Some 't' ->
              advance ();
              Buffer.add_char b '\t';
              go ()
          | Some 'r' ->
              advance ();
              Buffer.add_char b '\r';
              go ()
          | Some 'b' ->
              advance ();
              Buffer.add_char b '\b';
              go ()
          | Some 'f' ->
              advance ();
              Buffer.add_char b '\012';
              go ()
          | Some 'u' ->
              (* Our writers only emit \uXXXX for control characters,
                 which are ASCII; decode the low byte, map the rest to
                 '?' rather than transcoding UTF-16. *)
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> Num v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let number_opt v = match v with Some (Num x) -> Some x | _ -> None

let string_opt v = match v with Some (Str x) -> Some x | _ -> None

let int_opt v =
  match v with
  | Some (Num x) when Float.is_integer x -> Some (int_of_float x)
  | _ -> None
