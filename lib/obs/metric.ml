(* Process-wide metric registry: named counters, gauges and
   log-bucketed histograms, all backed by flat int/float arrays so the
   record paths ([incr]/[add]/[set]/[observe]) are O(1) and
   allocation-free — they can run inside [@hot] bodies of the packet
   fast path. Registration is the cold path (module-init time) and may
   allocate freely.

   Recording is gated on one process-wide switch, default off: an
   uninstrumented run executes a load + branch per call site and leaves
   every experiment output untouched. `--metrics` flips the switch. *)

type kind = Counter | Gauge | Histogram

(* Handles are plain indices into the per-kind flat value stores. *)
type counter = int

type gauge = int

type histogram = int

type hist_layout = {
  (* Bucket i (0 <= i < bucket_count) covers values <= 2^(lo_exp + i),
     each lower-bounded by the previous bucket; index [bucket_count] is
     the overflow (+inf) bucket. *)
  lo_exp : int;
  bucket_count : int;
  base : int;  (* offset of bucket 0 in [hist_counts] *)
}

type registration = { name : string; help : string; kind : kind; index : int }

type state = {
  mutable on : bool;
  mutable registrations : registration list;  (* newest first *)
  mutable counters : int array;
  mutable counter_count : int;
  mutable gauges : floatarray;
  mutable gauge_count : int;
  mutable hists : hist_layout array;
  mutable hist_count : int;
  mutable hist_counts : int array;  (* all histograms' buckets, packed *)
  mutable hist_used : int;  (* words of [hist_counts] in use *)
  mutable hist_sums : floatarray;
  mutable hist_totals : int array;  (* observation count per histogram *)
}

let state =
  {
    on = false;
    registrations = [];
    counters = Array.make 16 0;
    counter_count = 0;
    gauges = Float.Array.make 16 0.0;
    gauge_count = 0;
    hists = [||];
    hist_count = 0;
    hist_counts = Array.make 64 0;
    hist_used = 0;
    hist_sums = Float.Array.make 8 0.0;
    hist_totals = Array.make 8 0;
  }

let enabled () = state.on

let set_enabled on = state.on <- on

(* ------------------------------------------------------------------ *)
(* Registration (cold path)                                            *)

let registered name =
  List.find_opt (fun r -> String.equal r.name name) state.registrations

let check_name caller name kind =
  if String.length name = 0 then
    invalid_arg (Printf.sprintf "Metric.%s: empty metric name" caller);
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | c ->
          invalid_arg
            (Printf.sprintf "Metric.%s: invalid character %C in name %S" caller
               c name))
    name;
  match registered name with
  | Some r when r.kind <> kind ->
      invalid_arg
        (Printf.sprintf "Metric.%s: %S is already registered as another kind"
           caller name)
  | other -> other

let register name help kind index =
  state.registrations <- { name; help; kind; index } :: state.registrations

let grow_ints a = Array.append a (Array.make (max 16 (Array.length a)) 0)

let grow_floats a =
  let n = Float.Array.length a in
  let b = Float.Array.make (2 * max 8 n) 0.0 in
  Float.Array.blit a 0 b 0 n;
  b

let counter ?(help = "") name =
  match check_name "counter" name Counter with
  | Some r -> r.index
  | None ->
      let index = state.counter_count in
      if index >= Array.length state.counters then
        state.counters <- grow_ints state.counters;
      state.counter_count <- index + 1;
      register name help Counter index;
      index

let gauge ?(help = "") name =
  match check_name "gauge" name Gauge with
  | Some r -> r.index
  | None ->
      let index = state.gauge_count in
      if index >= Float.Array.length state.gauges then
        state.gauges <- grow_floats state.gauges;
      state.gauge_count <- index + 1;
      register name help Gauge index;
      index

let max_buckets = 64

let histogram ?(help = "") ?(lo_exp = -20) ?(buckets = 24) name =
  if buckets < 1 || buckets > max_buckets then
    invalid_arg
      (Printf.sprintf "Metric.histogram: bucket count %d outside [1, %d]"
         buckets max_buckets);
  match check_name "histogram" name Histogram with
  | Some r ->
      let l = state.hists.(r.index) in
      if l.lo_exp <> lo_exp || l.bucket_count <> buckets then
        invalid_arg
          (Printf.sprintf
             "Metric.histogram: %S re-registered with a different layout" name);
      r.index
  | None ->
      let index = state.hist_count in
      let base = state.hist_used in
      let words = buckets + 1 (* overflow bucket *) in
      if base + words > Array.length state.hist_counts then
        state.hist_counts <-
          Array.append state.hist_counts
            (Array.make (max words (Array.length state.hist_counts)) 0);
      state.hist_used <- base + words;
      if index >= Array.length state.hists then begin
        let grown =
          Array.make (2 * max 4 (Array.length state.hists))
            { lo_exp = 0; bucket_count = 0; base = 0 }
        in
        Array.blit state.hists 0 grown 0 index;
        state.hists <- grown
      end;
      state.hists.(index) <- { lo_exp; bucket_count = buckets; base };
      if index >= Array.length state.hist_totals then
        state.hist_totals <- grow_ints state.hist_totals;
      if index >= Float.Array.length state.hist_sums then
        state.hist_sums <- grow_floats state.hist_sums;
      state.hist_count <- index + 1;
      register name help Histogram index;
      index

(* ------------------------------------------------------------------ *)
(* Recording (hot path)                                                *)

let[@hot] incr c = if state.on then state.counters.(c) <- state.counters.(c) + 1

let[@hot] add c n = if state.on then state.counters.(c) <- state.counters.(c) + n

let[@hot] set g v = if state.on then Float.Array.set state.gauges g v

(* Ratio gauges (hit rates, occupancy fractions) share a guard so every
   publisher doesn't reinvent the zero-denominator case. *)
let[@hot] set_ratio g ~num ~den =
  if state.on then
    Float.Array.set state.gauges g
      (if den = 0 then 0.0 else float_of_int num /. float_of_int den)

(* ceil(log2 v) straight from the IEEE-754 exponent field: O(1), no
   lookup over the bucket bounds, and the Int64 intermediates stay
   unboxed in native code. Subnormals and non-positive values clamp to
   the lowest bucket; nan/inf land in the overflow bucket. *)
let[@hot] ceil_log2 v =
  if v <= 0.0 then min_int
  else begin
    let bits = Int64.bits_of_float v in
    let biased = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7FF in
    if biased = 0x7FF then max_int (* inf: clamp past every finite bucket *)
    else begin
      let mantissa = Int64.to_int (Int64.logand bits 0xF_FFFF_FFFF_FFFFL) in
      (* 2^e exactly (mantissa zero) rounds to e, anything above to e+1. *)
      (biased - 1023) + (if mantissa = 0 && biased <> 0 then 0 else 1)
    end
  end

let[@hot] bucket_index lo_exp bucket_count v =
  if Float.is_nan v then bucket_count
  else begin
    let e = ceil_log2 v in
    (* Compare before subtracting: [e] is [max_int] for inf, and
       [e - lo_exp] would wrap. [lo_exp + bucket_count] is small. *)
    if e <= lo_exp then 0
    else if e >= lo_exp + bucket_count then bucket_count
    else e - lo_exp
  end

let[@hot] observe h v =
  if state.on then begin
    let layout = state.hists.(h) in
    let i = bucket_index layout.lo_exp layout.bucket_count v in
    state.hist_counts.(layout.base + i) <- state.hist_counts.(layout.base + i) + 1;
    state.hist_totals.(h) <- state.hist_totals.(h) + 1;
    if not (Float.is_nan v) then
      Float.Array.set state.hist_sums h (Float.Array.get state.hist_sums h +. v)
  end

(* ------------------------------------------------------------------ *)
(* Read side (cold path)                                               *)

let counter_value c = state.counters.(c)

let gauge_value g = Float.Array.get state.gauges g

let histogram_bucket_count h = state.hists.(h).bucket_count

let bucket_of h v =
  let layout = state.hists.(h) in
  bucket_index layout.lo_exp layout.bucket_count v

let bucket_upper_bound h i =
  let layout = state.hists.(h) in
  if i < 0 || i > layout.bucket_count then
    invalid_arg (Printf.sprintf "Metric.bucket_upper_bound: no bucket %d" i)
  else if i = layout.bucket_count then infinity
  else Float.ldexp 1.0 (layout.lo_exp + i)

let bucket_count_value h i =
  let layout = state.hists.(h) in
  if i < 0 || i > layout.bucket_count then
    invalid_arg (Printf.sprintf "Metric.bucket_count_value: no bucket %d" i)
  else state.hist_counts.(layout.base + i)

let histogram_sum h = Float.Array.get state.hist_sums h

let histogram_total h = state.hist_totals.(h)

type view = {
  name : string;
  help : string;
  value : value;
}

and value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      upper_bounds : float array;  (* finite bounds; overflow is implicit *)
      counts : int array;  (* bucket_count + 1 entries, overflow last *)
      sum : float;
      count : int;
    }

let view_of_registration r =
  let value =
    match r.kind with
    | Counter -> Counter_value state.counters.(r.index)
    | Gauge -> Gauge_value (Float.Array.get state.gauges r.index)
    | Histogram ->
        let layout = state.hists.(r.index) in
        Histogram_value
          {
            upper_bounds =
              Array.init layout.bucket_count (fun i ->
                  Float.ldexp 1.0 (layout.lo_exp + i));
            counts =
              Array.init (layout.bucket_count + 1) (fun i ->
                  state.hist_counts.(layout.base + i));
            sum = Float.Array.get state.hist_sums r.index;
            count = state.hist_totals.(r.index);
          }
  in
  { name = r.name; help = r.help; value }

let views () =
  List.rev_map view_of_registration state.registrations
  |> List.sort (fun a b -> String.compare a.name b.name)

(* Zero every value, keeping all registrations: a fresh run in the same
   process starts its aggregation from a clean slate. *)
let reset_values () =
  Array.fill state.counters 0 (Array.length state.counters) 0;
  Float.Array.fill state.gauges 0 (Float.Array.length state.gauges) 0.0;
  Array.fill state.hist_counts 0 (Array.length state.hist_counts) 0;
  Array.fill state.hist_totals 0 (Array.length state.hist_totals) 0;
  Float.Array.fill state.hist_sums 0 (Float.Array.length state.hist_sums) 0.0
