(** Snapshot renderers for the obs registry: JSON-lines (one
    self-contained object per line, manifest first) and Prometheus text
    exposition format. Cold path — runs once per exported run. The
    line-level schema is documented in EXPERIMENTS.md. *)

type event = { time : float; kind : string; a : int; b : int }

type snapshot = { metrics : Metric.view list; events : event list }

val snapshot : ?trace:Trace.t -> unit -> snapshot
(** Capture every registered metric plus the live trace records
    (oldest-first) from [trace] (default {!Trace.default}). *)

val schema_version : int
(** Version stamped into the manifest line; bumped on any incompatible
    shape change. *)

val to_jsonl : ?manifest:Manifest.t -> snapshot -> string
(** JSON-lines rendering: the manifest line (when given), then one line
    per counter/gauge/histogram, then one line per trace event.
    Non-finite floats render as [null]. *)

val to_prometheus : snapshot -> string
(** Prometheus text format: metric names prefixed [tango_], histograms
    as cumulative [_bucket{le="..."}] series plus [_sum]/[_count].
    Trace events and the manifest have no Prometheus representation and
    are omitted. *)

val write_jsonl : ?manifest:Manifest.t -> string -> snapshot -> unit
(** [write_jsonl path snap] writes {!to_jsonl} output to [path]. *)

val write_prometheus : string -> snapshot -> unit
(** [write_prometheus path snap] writes {!to_prometheus} output to
    [path]. *)
