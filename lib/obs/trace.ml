(* Fixed-capacity ring buffer of packed event records: virtual time, an
   event-kind tag and two integer payloads, striped across four flat
   arrays so recording writes four slots and never allocates. When the
   ring is full the newest event overwrites the oldest and the drop
   counter advances — a bounded-memory flight recorder, not a log.

   Kinds are small dense ints minted by [kind] at module-init time;
   the name table exists only for export. Recording shares the
   process-wide switch in [Metric]. *)

type t = {
  capacity : int;
  times : floatarray;
  kinds : int array;
  payload_a : int array;
  payload_b : int array;
  mutable next : int;  (* slot the next record lands in *)
  mutable length : int;  (* live records, <= capacity *)
  mutable dropped : int;  (* records overwritten after wraparound *)
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    times = Float.Array.make capacity 0.0;
    kinds = Array.make capacity 0;
    payload_a = Array.make capacity 0;
    payload_b = Array.make capacity 0;
    next = 0;
    length = 0;
    dropped = 0;
  }

(* ------------------------------------------------------------------ *)
(* Kind registry (cold path)                                           *)

(* Flat tag-indexed name table, doubled on demand: [kind] is cold
   (module-init) but the lookup side stays O(1) either way. *)
let kind_names = ref (Array.make 8 "")

let kind_count = ref 0

let kind name =
  if String.length name = 0 then invalid_arg "Trace.kind: empty kind name";
  let names = !kind_names in
  let tag = ref (-1) in
  for i = 0 to !kind_count - 1 do
    if String.equal names.(i) name then tag := i
  done;
  if !tag >= 0 then !tag
  else begin
    if !kind_count >= Array.length !kind_names then begin
      let grown = Array.make (2 * Array.length !kind_names) "" in
      Array.blit !kind_names 0 grown 0 !kind_count;
      kind_names := grown
    end;
    let t = !kind_count in
    !kind_names.(t) <- name;
    kind_count := t + 1;
    t
  end

let kind_name tag =
  if tag < 0 || tag >= !kind_count then
    invalid_arg (Printf.sprintf "Trace.kind_name: unknown kind tag %d" tag)
  else !kind_names.(tag)

(* ------------------------------------------------------------------ *)
(* Recording (hot path)                                                *)

let[@hot] record t ~now ~kind:k a b =
  if Metric.enabled () then begin
    let slot = t.next in
    Float.Array.set t.times slot now;
    t.kinds.(slot) <- k;
    t.payload_a.(slot) <- a;
    t.payload_b.(slot) <- b;
    t.next <- (if slot + 1 >= t.capacity then 0 else slot + 1);
    if t.length < t.capacity then t.length <- t.length + 1
    else t.dropped <- t.dropped + 1
  end

(* ------------------------------------------------------------------ *)
(* Read side (cold path)                                               *)

let capacity t = t.capacity

let length t = t.length

let dropped t = t.dropped

let recorded t = t.length + t.dropped

let iter t f =
  (* Oldest record first: when wrapped, the oldest lives at [next]. *)
  let start = if t.length < t.capacity then 0 else t.next in
  for i = 0 to t.length - 1 do
    let slot = (start + i) mod t.capacity in
    f ~time:(Float.Array.get t.times slot) ~kind:t.kinds.(slot)
      ~a:t.payload_a.(slot) ~b:t.payload_b.(slot)
  done

let clear t =
  t.next <- 0;
  t.length <- 0;
  t.dropped <- 0

(* The process-wide flight recorder the instrumented subsystems write
   into; exporters snapshot it alongside the metric registry. *)
let default = create ()
