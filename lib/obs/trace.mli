(** Fixed-capacity ring buffer of packed event records — a bounded
    flight recorder of what the system actually did during a run.

    Each record is (virtual time, kind tag, two int payloads), striped
    across flat arrays: {!record} writes four slots and allocates
    nothing. When the ring is full, the newest record overwrites the
    oldest and {!dropped} advances. Recording shares the process-wide
    switch of {!Metric.set_enabled} and is a no-op while it is off. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] makes a ring of [capacity] records (default 65536).
    Raises [Invalid_argument] when [capacity < 1]. *)

val default : t
(** The process-wide flight recorder the instrumented subsystems write
    into; exporters snapshot it alongside the metric registry. *)

(** {1 Kinds (cold path)} *)

val kind : string -> int
(** [kind name] mints (or looks up) the dense int tag for an event
    kind. Register kinds at module-init time and keep the tag. *)

val kind_name : int -> string
(** Inverse of {!kind}. Raises [Invalid_argument] on unknown tags. *)

(** {1 Recording (hot path, allocation-free)} *)

val record : t -> now:float -> kind:int -> int -> int -> unit
(** [record t ~now ~kind a b] appends one event record. O(1), no
    allocation, overwrites the oldest record once the ring is full. *)

(** {1 Read side (cold path)} *)

val capacity : t -> int

val length : t -> int
(** Live records currently in the ring. *)

val dropped : t -> int
(** Records overwritten after wraparound. *)

val recorded : t -> int
(** Total records ever written: [length + dropped]. *)

val iter :
  t -> (time:float -> kind:int -> a:int -> b:int -> unit) -> unit
(** Visit live records oldest-first. *)

val clear : t -> unit
(** Empty the ring and zero the drop counter. *)
