(** Minimal strict JSON reader for machine-written artifacts
    (BENCH.json, --metrics JSON-lines). Cold path: the regression gate
    and the schema validator parse with it; nothing in the simulator
    does. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Carries ["<reason> at byte <offset>"]. *)

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an error.
    [\uXXXX] escapes outside ASCII decode as ['?']. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] when absent or not an object. *)

val number_opt : t option -> float option

val string_opt : t option -> string option

val int_opt : t option -> int option
(** [Some] only for numbers with no fractional part. *)
