(* Per-run metadata: what ran, under which seed and configuration, for
   how long, and how much the flight recorder saw. One manifest is
   emitted per exported snapshot so a metrics file is self-describing —
   the reader never has to guess which invocation produced it. *)

type t = {
  experiment : string;
  seed : int;
  config_digest : string;
  started_unix_s : float;
  wall_s : float;
  virtual_s : float;
  sim_events : int;
  trace_recorded : int;
  trace_dropped : int;
}

let v ~experiment ~seed ?(config_digest = "") ~started_unix_s ~wall_s
    ~virtual_s ~sim_events ~trace_recorded ~trace_dropped () =
  {
    experiment;
    seed;
    config_digest;
    started_unix_s;
    wall_s;
    virtual_s;
    sim_events;
    trace_recorded;
    trace_dropped;
  }

let digest_of_string s = Digest.to_hex (Digest.string s)

let now_unix_s () = Unix.gettimeofday ()

(* A clock pinned at creation so [finish] measures one run's wall time. *)
type session = { run_experiment : string; run_seed : int; run_config : string; t0 : float }

let start ~experiment ~seed ?(config = "") () =
  { run_experiment = experiment; run_seed = seed; run_config = config; t0 = now_unix_s () }

let finish session ~virtual_s ~sim_events trace =
  {
    experiment = session.run_experiment;
    seed = session.run_seed;
    config_digest =
      (if String.length session.run_config = 0 then ""
       else digest_of_string session.run_config);
    started_unix_s = session.t0;
    wall_s = now_unix_s () -. session.t0;
    virtual_s;
    sim_events;
    trace_recorded = Trace.recorded trace;
    trace_dropped = Trace.dropped trace;
  }
