module Network = Tango_bgp.Network
module As_path = Tango_bgp.As_path
module Prefix = Tango_net.Prefix

type verdict = Live | Moved | Gone

let verdict_to_string = function
  | Live -> "live"
  | Moved -> "moved"
  | Gone -> "gone"

type entry = { prefix : Prefix.t; mutable baseline : As_path.t option }

type t = { net : Network.t; observer : int; entries : entry array }

let snapshot_of t (e : entry) =
  e.baseline <- Network.as_path t.net ~node:t.observer e.prefix

let create ~net ~observer ~prefixes =
  let t =
    {
      net;
      observer;
      entries =
        Array.of_list
          (List.map (fun prefix -> { prefix; baseline = None }) prefixes);
    }
  in
  Array.iter (snapshot_of t) t.entries;
  t

let observer t = t.observer

let size t = Array.length t.entries

let prefix t i = t.entries.(i).prefix

let baseline t i = t.entries.(i).baseline

(* The classification itself: pure, allocation-free, and on the hot
   side of every reconciliation check. *)
let[@hot] verdict_of ~baseline ~current =
  match current with
  | None -> Gone
  | Some cur -> (
      match baseline with
      | Some base -> if As_path.equal base cur then Live else Moved
      | None -> Moved)

let classify t i =
  let e = t.entries.(i) in
  verdict_of ~baseline:e.baseline
    ~current:(Network.as_path t.net ~node:t.observer e.prefix)

let check t = Array.init (Array.length t.entries) (fun i -> classify t i)

let all_live t =
  let n = Array.length t.entries in
  let rec go i =
    i >= n || (match classify t i with Live -> go (i + 1) | Moved | Gone -> false)
  in
  go 0

let rebase t = Array.iter (snapshot_of t) t.entries
