(** The in-band pair control channel: heartbeats and path-table digests
    riding the pair's own tunnels (DESIGN.md §10).

    Each endpoint sends a heartbeat every [heartbeat_interval_s] on the
    path its live policy currently prefers — control fate-shares with
    data and fails over with it. A heartbeat carries the sender's
    path-table generation ({!Tango.Pop.table_epoch}) and a digest of its
    outbound table, so the peer can tell when a reconciliation swapped
    tables on the far side.

    An endpoint that has heard nothing for [peer_timeout_s] declares
    peer loss: its PoP is pinned ({!Tango.Pop.set_pinned}) into
    unilateral mode — with the peer gone, stat reports have stopped too,
    and the adaptive policy would be driven purely by staleness noise.
    While lost, heartbeats rotate across {e every} tunnel, so one live
    tunnel in either direction is enough to re-establish contact. The
    first heartbeat that gets through ends the episode: the PoP is
    unpinned and the [on_recover] hook (the reconciler's re-sync
    trigger) fires. *)

type Tango_net.Packet.content +=
  | Heartbeat of { seq : int; epoch : int; digest : int }

val digest_paths : Tango.Discovery.path list -> int
(** Order-sensitive fingerprint of a path table (indices and AS paths),
    as carried in heartbeats. *)

val digest_seed : int
(** FNV-1a offset basis used by every Tango digest. *)

val digest_mix : int -> int -> int
(** One FNV-1a fold step: [digest_mix h v] absorbs [v] into [h]. Mesh
    gossip ({!Tango_mesh.Gossip}) folds membership views and table
    versions with this so pairwise and mesh digests share one hash. *)

type t

val attach :
  engine:Tango_sim.Engine.t ->
  pop_a:Tango.Pop.t ->
  pop_b:Tango.Pop.t ->
  ?heartbeat_interval_s:float ->
  ?peer_timeout_s:float ->
  ?until_s:float ->
  epoch_of:(Tango.Pop.t -> int) ->
  digest_of:(Tango.Pop.t -> int) ->
  unit ->
  t
(** Install ctrl-port handlers on both PoPs and schedule the heartbeat
    tick. Defaults: heartbeat every 0.1 s, peer timeout 0.5 s.
    [epoch_of]/[digest_of] supply what each endpoint advertises about
    its own outbound table. Raises [Invalid_argument] unless
    [0 < heartbeat_interval_s < peer_timeout_s]. *)

val set_on_loss : t -> (Tango.Pop.t -> unit) -> unit
(** Hook invoked (with the local PoP) when that endpoint declares peer
    loss. *)

val set_on_recover : t -> (Tango.Pop.t -> unit) -> unit
(** Hook invoked (with the local PoP) when a lost peer is heard again —
    the reconciler re-syncs on it. *)

(** {1 Per-endpoint state} (all raise [Invalid_argument] for a PoP that
    is not an endpoint of this channel) *)

val peer_alive : t -> Tango.Pop.t -> bool
val heartbeats_sent : t -> Tango.Pop.t -> int
val heartbeats_received : t -> Tango.Pop.t -> int

val losses : t -> Tango.Pop.t -> int
(** Peer-loss episodes this endpoint entered. *)

val recoveries : t -> Tango.Pop.t -> int

val peer_epoch : t -> Tango.Pop.t -> int
(** Table generation the peer last advertised. *)

val peer_digest : t -> Tango.Pop.t -> int

val heartbeat_interval_s : t -> float
val peer_timeout_s : t -> float
