(** Control-plane reconciliation for a Tango pair (DESIGN.md §10).

    Discovery runs once at bring-up, but the underlay keeps moving: BGP
    churn withdraws tunnel-prefix routes, strips their communities or
    re-homes them onto different wide-area paths, silently invalidating
    the pair's path tables. The reconciler closes the loop, per
    direction:

    + {b Detect} — a {!Watch} over the peer site's tunnel prefixes,
      checked on a cadence {e and} after every BGP origin event
      (debounced), classifies each table entry Live / Moved / Gone.
    + {b Re-discover} — an epoch re-derives only the table suffix from
      the first non-Live index: the trusted prefix's suppression sets
      are replayed ({!Tango.Discovery.suppression_of}) and exploration
      resumes from there as an asynchronous announce → settle → observe
      loop on the engine (never a recursive converge). Each epoch runs
      under a hard BGP-message budget; a failed or truncated epoch
      retries after exponential backoff with jitter.
    + {b Swap} — the new table is installed atomically
      ({!Tango.Pop.install_outbound_paths}: new tunnels, flow-cache
      invalidation, epoch stamp), dead paths are drained via the
      policy's ban machinery, and the receiver re-announces its tunnel
      prefixes with the fresh suppression sets — which is what actively
      restores routes the churn tore down.
    + {b Pair control} — an in-band {!Channel} (heartbeats + table
      digests) detects peer loss, pins the survivor into unilateral
      mode, and triggers a full re-sync check on recovery.

    With no churn the reconciler only runs read-only checks: it sends no
    BGP updates and never touches the data plane. *)

type config = {
  cadence_s : float;  (** Periodic check interval. *)
  debounce_s : float;  (** Delay from a BGP origin event to its check. *)
  settle_s : float;
      (** Virtual time allowed for an announcement to propagate before
          observing. *)
  budget_msgs : int;  (** Hard per-epoch BGP message budget. *)
  iteration_cost_hint : int;
      (** Initial estimate of one origination's message cost (refined
          from observation as the epoch runs). *)
  backoff_base_s : float;
  backoff_max_s : float;
  jitter_frac : float;  (** Uniform jitter fraction on top of backoff. *)
  max_paths : int;
  drain_ban_s : float;  (** Ban length used to drain dead paths. *)
}

val default_config : config
(** cadence 1 s, debounce 0.2 s, settle 0.75 s, budget 600 messages,
    hint 40, backoff 1 s doubling to 30 s with 10% jitter, 16 paths,
    5 s drain. *)

type direction = To_ny | To_la
(** Direction of the {e data} the reconciled table carries (To_ny = the
    table LA uses toward NY, watched at LA, announced by NY). *)

val direction_to_string : direction -> string

type t

val arm :
  pair:Tango.Pair.t ->
  ?config:config ->
  ?seed:int ->
  ?with_channel:bool ->
  ?heartbeat_interval_s:float ->
  ?peer_timeout_s:float ->
  until_s:float ->
  unit ->
  t
(** Arm reconciliation on a live pair: snapshot watches, register the
    BGP origin listener, schedule cadence checks until [until_s]
    (absolute virtual time), and — unless [with_channel] is [false] —
    attach the in-band control channel. [seed] feeds only the backoff
    jitter, so runs are reproducible. Raises [Invalid_argument] on a
    non-positive settle time or budget. *)

type dir_stats = {
  epochs : int;  (** Epochs started. *)
  failed : int;  (** Epochs that found no usable table at all. *)
  truncated : int;  (** Epochs cut short by the message budget. *)
  last_msgs : int;  (** BGP messages spent by the latest epoch. *)
  total_msgs : int;
  last_recovery_s : float;
      (** Duration of the latest successful epoch ([nan] before one). *)
  paths : int;  (** Current table size. *)
}

val stats : t -> direction -> dir_stats

val config : t -> config

val channel : t -> Channel.t option

val checks : t -> int
(** Churn checks run so far (cadence + event-driven). *)

val watch : t -> direction -> Watch.t

val force_check : t -> direction -> unit
(** Run one check right now (testing / CLI hook). *)
