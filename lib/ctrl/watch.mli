(** Churn detection: per-prefix snapshots of the observer-side best AS
    path, classified against the live BGP table.

    A watch records, for each watched prefix (in practice: the peer
    site's per-path tunnel prefixes), the AS path its observer node
    selected at snapshot time. A check re-reads the table and classifies
    every prefix:

    - [Live]: same AS path as the baseline — the tunnel's wide-area
      route is intact;
    - [Moved]: a route exists but its AS path changed — the tunnel now
      rides a different wide-area path, so its discovery-time metadata
      (transits, label, delay floor) is stale;
    - [Gone]: no route at all — the tunnel black-holes.

    Checks are read-only and cheap (one table lookup and one AS-path
    comparison per prefix, no allocation beyond the lookup), so the
    reconciler can run them both on a cadence and after every BGP origin
    event. *)

type verdict = Live | Moved | Gone

val verdict_to_string : verdict -> string

type t

val create :
  net:Tango_bgp.Network.t -> observer:int -> prefixes:Tango_net.Prefix.t list -> t
(** Snapshot the observer's current best path for every prefix as the
    baseline. *)

val observer : t -> int

val size : t -> int
(** Number of watched prefixes. *)

val prefix : t -> int -> Tango_net.Prefix.t

val baseline : t -> int -> Tango_bgp.As_path.t option
(** The snapshotted path ([None] when the prefix was unroutable at
    snapshot time). *)

val verdict_of :
  baseline:Tango_bgp.As_path.t option ->
  current:Tango_bgp.As_path.t option ->
  verdict
(** The pure classification rule. *)

val classify : t -> int -> verdict
(** Classify one watched prefix against the live table. *)

val check : t -> verdict array
(** Classify every watched prefix, in watch order. *)

val all_live : t -> bool
(** [true] iff every watched prefix classifies [Live]; stops at the
    first deviation, so the common no-churn case costs the least. *)

val rebase : t -> unit
(** Re-snapshot every baseline from the live table — done after a
    reconciliation epoch installs a new path table. *)
