module Engine = Tango_sim.Engine
module Rng = Tango_sim.Rng
module Network = Tango_bgp.Network
module As_path = Tango_bgp.As_path
module Prefix = Tango_net.Prefix
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace
module Pair = Tango.Pair
module Pop = Tango.Pop
module Policy = Tango.Policy
module Discovery = Tango.Discovery
module Addressing = Tango.Addressing

(* Process-wide observability (DESIGN.md §10). *)
let m_checks =
  Metric.counter ~help:"Churn checks run (cadence + event-driven)"
    "reconcile_checks_total"

let m_epochs =
  Metric.counter ~help:"Reconciliation epochs started" "reconcile_epochs_total"

let m_epochs_failed =
  Metric.counter
    ~help:"Reconciliation epochs that found no usable path table"
    "reconcile_epochs_failed_total"

let m_paths_moved =
  Metric.counter ~help:"Watched prefixes classified Moved at epoch start"
    "reconcile_paths_moved_total"

let m_paths_gone =
  Metric.counter ~help:"Watched prefixes classified Gone at epoch start"
    "reconcile_paths_gone_total"

let m_bgp_messages =
  Metric.counter ~help:"BGP updates caused by reconciliation epochs"
    "reconcile_bgp_messages_total"

let m_budget_exhausted =
  Metric.counter ~help:"Epochs truncated by the per-epoch BGP message budget"
    "reconcile_budget_exhausted_total"

let h_rediscovery =
  Metric.histogram
    ~help:"Virtual time from epoch start to installed, rebased path table \
           (seconds)"
    ~lo_exp:(-6) ~buckets:16 "reconcile_rediscovery_seconds"

let k_epoch = Trace.kind "reconcile.epoch"

let k_install = Trace.kind "reconcile.install"

type config = {
  cadence_s : float;
  debounce_s : float;
  settle_s : float;
  budget_msgs : int;
  iteration_cost_hint : int;
  backoff_base_s : float;
  backoff_max_s : float;
  jitter_frac : float;
  max_paths : int;
  drain_ban_s : float;
}

let default_config =
  {
    cadence_s = 1.0;
    debounce_s = 0.2;
    settle_s = 0.75;
    budget_msgs = 600;
    iteration_cost_hint = 40;
    backoff_base_s = 1.0;
    backoff_max_s = 30.0;
    jitter_frac = 0.1;
    max_paths = 16;
    drain_ban_s = 5.0;
  }

type direction = To_ny | To_la

let direction_to_string = function To_ny -> "to-ny" | To_la -> "to-la"

let mechanism = `Communities

type dir_state = {
  direction : direction;
  sender : Pop.t;  (* installs the table; its node observes *)
  origin : int;  (* receiver's node: announces probe + tunnel prefixes *)
  observer : int;
  probe_prefix : Prefix.t;
  tunnel_prefixes : Prefix.t array;
  watch : Watch.t;
  mutable paths : Discovery.path list;
  mutable running : bool;
  mutable check_scheduled : bool;
  mutable fails : int;  (* consecutive failed/truncated epochs *)
  mutable not_before_s : float;  (* backoff gate *)
  mutable epochs : int;
  mutable epochs_failed : int;
  mutable epochs_truncated : int;
  mutable last_epoch_msgs : int;
  mutable total_msgs : int;
  mutable last_recovery_s : float;  (* duration of last successful epoch *)
  mutable cost_hint : int;  (* max BGP cost of one origination seen so far *)
}

type t = {
  config : config;
  engine : Engine.t;
  net : Network.t;
  pair : Pair.t;
  rng : Rng.t;
  until_s : float;
  to_ny : dir_state;
  to_la : dir_state;
  mutable channel : Channel.t option;
  mutable checks : int;
}

type dir_stats = {
  epochs : int;
  failed : int;
  truncated : int;
  last_msgs : int;
  total_msgs : int;
  last_recovery_s : float;
  paths : int;
}

let dir_state t = function To_ny -> t.to_ny | To_la -> t.to_la

let dir_tag = function To_ny -> 0 | To_la -> 1

let msgs t = Network.messages_delivered t.net

let policy_of st = Pop.policy st.sender

(* ------------------------------------------------------------------ *)
(* The epoch state machine. One epoch re-derives the suffix of the
   path table starting at the first non-Live index, as an asynchronous
   announce → settle → observe loop on the engine — never a recursive
   Network.converge, which would fast-forward virtual time from inside
   a scheduled event. *)

let rec iterate t st ~msgs_before ~started_s suppressed acc index =
  let spent = msgs t - msgs_before in
  if index >= t.config.max_paths then
    finish t st ~msgs_before ~started_s ~truncated:false acc
  else if spent + (2 * st.cost_hint) > t.config.budget_msgs then begin
    (* Not enough budget for another iteration plus the final withdraw:
       stop here, install what we have, retry the rest after backoff. *)
    Metric.incr m_budget_exhausted;
    finish t st ~msgs_before ~started_s ~truncated:true acc
  end
  else begin
    let before_iter = msgs t in
    Discovery.announce_step ~net:t.net ~origin:st.origin
      ~probe_prefix:st.probe_prefix ~mechanism ~suppressed ();
    Engine.schedule t.engine ~delay:t.config.settle_s (fun _ ->
        st.cost_hint <- max st.cost_hint (msgs t - before_iter);
        match
          Discovery.observe_step ~net:t.net ~origin:st.origin
            ~observer:st.observer ~probe_prefix:st.probe_prefix ~mechanism
            ~suppressed ~index ()
        with
        | None -> finish t st ~msgs_before ~started_s ~truncated:false acc
        | Some p
          when List.exists
                 (fun (q : Discovery.path) ->
                   As_path.equal q.Discovery.as_path p.Discovery.as_path)
                 acc ->
            finish t st ~msgs_before ~started_s ~truncated:false acc
        | Some p -> (
            match Discovery.next_suppression ~mechanism ~suppressed p with
            | None ->
                finish t st ~msgs_before ~started_s ~truncated:false (p :: acc)
            | Some grown ->
                iterate t st ~msgs_before ~started_s grown (p :: acc)
                  (index + 1)))
  end

and finish t st ~msgs_before ~started_s ~truncated acc =
  (* Withdraw the probe prefix first — no probe state may survive the
     epoch — then let the withdrawal settle before installing. *)
  Network.withdraw t.net ~node:st.origin st.probe_prefix;
  Engine.schedule t.engine ~delay:t.config.settle_s (fun _ ->
      let paths = List.rev acc in
      match paths with
      | [] ->
          (* The observer cannot see the origin at all right now. *)
          st.epochs_failed <- st.epochs_failed + 1;
          Metric.incr m_epochs_failed;
          conclude t st ~msgs_before ~started_s ~ok:false ~truncated
      | _ :: _ ->
          let old_n = List.length st.paths in
          let new_n = List.length paths in
          (match st.direction with
          | To_ny -> Pair.update_paths_to_ny t.pair paths
          | To_la -> Pair.update_paths_to_la t.pair paths);
          Pop.install_outbound_paths st.sender paths;
          st.paths <- paths;
          (* Lift the drains on indices the new table validates; indices
             beyond it stay banned until their drain expires. *)
          for i = 0 to new_n - 1 do
            Policy.unban (policy_of st) ~path:i
          done;
          (* Re-announce the receiver's tunnel prefixes with the fresh
             suppression sets — this actively restores routes the churn
             withdrew or stripped — and withdraw prefixes the new table
             no longer backs. Budget-gated like the iterations. *)
          let truncated = ref truncated in
          Array.iteri
            (fun i prefix ->
              if i < new_n || i < old_n then begin
                if msgs t - msgs_before + st.cost_hint > t.config.budget_msgs
                then truncated := true
                else if i < new_n then
                  Network.announce t.net ~node:st.origin prefix
                    ~communities:(List.nth paths i).Discovery.communities ()
                else Network.withdraw t.net ~node:st.origin prefix
              end)
            st.tunnel_prefixes;
          Trace.record Trace.default ~now:(Engine.now t.engine)
            ~kind:k_install (dir_tag st.direction) new_n;
          Engine.schedule t.engine ~delay:t.config.settle_s (fun _ ->
              Watch.rebase st.watch;
              conclude t st ~msgs_before ~started_s ~ok:true
                ~truncated:!truncated))

and conclude t st ~msgs_before ~started_s ~ok ~truncated =
  let now = Engine.now t.engine in
  let spent = msgs t - msgs_before in
  st.last_epoch_msgs <- spent;
  st.total_msgs <- st.total_msgs + spent;
  Metric.add m_bgp_messages spent;
  st.running <- false;
  if truncated then st.epochs_truncated <- st.epochs_truncated + 1;
  if ok && not truncated then begin
    st.fails <- 0;
    st.not_before_s <- now;
    st.last_recovery_s <- now -. started_s;
    Metric.observe h_rediscovery (now -. started_s);
    Trace.record Trace.default ~now ~kind:k_epoch (dir_tag st.direction) spent
  end
  else begin
    (* Exponential backoff with jitter before touching BGP again. *)
    st.fails <- st.fails + 1;
    let backoff =
      Float.min t.config.backoff_max_s
        (t.config.backoff_base_s *. (2.0 ** float_of_int (st.fails - 1)))
    in
    let backoff = backoff *. (1.0 +. (t.config.jitter_frac *. Rng.float t.rng 1.0)) in
    st.not_before_s <- now +. backoff;
    schedule_check t st ~delay:backoff
  end

and start_epoch t st =
  let now = Engine.now t.engine in
  let verdicts = Watch.check st.watch in
  let n_watched = Array.length verdicts in
  let first_bad = ref n_watched in
  for i = n_watched - 1 downto 0 do
    match verdicts.(i) with
    | Watch.Live -> ()
    | Watch.Moved ->
        Metric.incr m_paths_moved;
        first_bad := i
    | Watch.Gone ->
        Metric.incr m_paths_gone;
        first_bad := i
  done;
  if !first_bad < n_watched then begin
    st.running <- true;
    st.epochs <- st.epochs + 1;
    Metric.incr m_epochs;
    (* Drain the affected dead paths right away: traffic leaves them via
       the ban machinery while re-discovery runs, instead of waiting for
       staleness detection. Affected-but-Live indices keep carrying
       traffic — only their table metadata is being re-derived. *)
    List.iteri
      (fun i (_ : Discovery.path) ->
        if i >= !first_bad && i < n_watched then
          match verdicts.(i) with
          | Watch.Gone ->
              Policy.ban (policy_of st) ~path:i ~now_s:now
                ~for_s:t.config.drain_ban_s
          | Watch.Live | Watch.Moved -> ())
      st.paths;
    let keep = List.filteri (fun i _ -> i < !first_bad) st.paths in
    let suppressed = Discovery.suppression_of ~mechanism keep in
    iterate t st ~msgs_before:(msgs t) ~started_s:now suppressed
      (List.rev keep) !first_bad
  end

and check_dir t st =
  if Engine.now t.engine <= t.until_s then begin
    t.checks <- t.checks + 1;
    Metric.incr m_checks;
    if
      (not st.running)
      && Engine.now t.engine >= st.not_before_s
      && not (Watch.all_live st.watch)
    then start_epoch t st
  end

and schedule_check t st ~delay =
  let now = Engine.now t.engine in
  if (not st.check_scheduled) && now +. delay <= t.until_s then begin
    st.check_scheduled <- true;
    Engine.schedule t.engine ~delay (fun _ ->
        st.check_scheduled <- false;
        check_dir t st)
  end

(* ------------------------------------------------------------------ *)
(* Arming *)

let make_dir ~net ~pair ~direction =
  let sender, receiver, subnet_index =
    match direction with
    | To_ny -> (Pair.pop_la pair, Pair.pop_ny pair, 16 * 95)
    | To_la -> (Pair.pop_ny pair, Pair.pop_la pair, 16 * 94)
  in
  let tunnel_prefixes =
    Array.of_list (Pop.plan receiver).Addressing.tunnel_prefixes
  in
  let paths =
    match direction with
    | To_ny -> Pair.paths_to_ny pair
    | To_la -> Pair.paths_to_la pair
  in
  {
    direction;
    sender;
    origin = Pop.node receiver;
    observer = Pop.node sender;
    probe_prefix = Prefix.subnet Addressing.default_block 16 subnet_index;
    tunnel_prefixes;
    watch =
      Watch.create ~net ~observer:(Pop.node sender)
        ~prefixes:(Array.to_list tunnel_prefixes);
    paths;
    running = false;
    check_scheduled = false;
    fails = 0;
    not_before_s = neg_infinity;
    epochs = 0;
    epochs_failed = 0;
    epochs_truncated = 0;
    last_epoch_msgs = 0;
    total_msgs = 0;
    last_recovery_s = nan;
    cost_hint = 0;
  }

let arm ~pair ?(config = default_config) ?(seed = 0) ?(with_channel = true)
    ?heartbeat_interval_s ?peer_timeout_s ~until_s () =
  if config.settle_s <= 0.0 then invalid_arg "Reconcile.arm: non-positive settle";
  if config.budget_msgs <= 0 then invalid_arg "Reconcile.arm: non-positive budget";
  let engine = Pair.engine pair in
  let net = Pair.network pair in
  let t =
    {
      config;
      engine;
      net;
      pair;
      rng = Rng.create ~seed:(seed + 0x7ec0);
      until_s;
      to_ny = make_dir ~net ~pair ~direction:To_ny;
      to_la = make_dir ~net ~pair ~direction:To_la;
      channel = None;
      checks = 0;
    }
  in
  t.to_ny.cost_hint <- config.iteration_cost_hint;
  t.to_la.cost_hint <- config.iteration_cost_hint;
  (* Event-driven checks: any (re-)origination touching a watched tunnel
     prefix — BGP faults included — schedules a debounced check of the
     affected direction. Our own epoch announcements are filtered by the
     running flag and the probe prefixes never match. *)
  Network.add_origin_listener net (fun ~node:_ prefix ->
      let interesting st =
        (not st.running)
        && Array.exists (fun p -> Prefix.equal p prefix) st.tunnel_prefixes
      in
      if interesting t.to_ny then
        schedule_check t t.to_ny ~delay:config.debounce_s;
      if interesting t.to_la then
        schedule_check t t.to_la ~delay:config.debounce_s);
  (* Cadence checks. [Engine.every] fires immediately too, which is a
     no-op on a healthy table. *)
  Engine.every engine ~interval:config.cadence_s ~until:until_s (fun _ ->
      check_dir t t.to_ny;
      check_dir t t.to_la);
  if with_channel then begin
    let pop_la = Pair.pop_la pair and pop_ny = Pair.pop_ny pair in
    let digest_of pop =
      Channel.digest_paths
        (if Pop.node pop = Pop.node pop_la then Pair.paths_to_ny pair
         else Pair.paths_to_la pair)
    in
    let channel =
      Channel.attach ~engine ~pop_a:pop_la ~pop_b:pop_ny ?heartbeat_interval_s
        ?peer_timeout_s ~until_s ~epoch_of:Pop.table_epoch ~digest_of ()
    in
    (* Re-sync on recovery: a partition may have hidden churn from the
       watches' event sources, so check both directions at once. *)
    Channel.set_on_recover channel (fun _pop ->
        schedule_check t t.to_ny ~delay:0.0;
        schedule_check t t.to_la ~delay:0.0);
    t.channel <- Some channel
  end;
  t

(* ------------------------------------------------------------------ *)
(* Read side *)

let config t = t.config

let channel t = t.channel

let checks t = t.checks

let watch t direction = (dir_state t direction).watch

let stats t direction =
  let st = dir_state t direction in
  {
    epochs = st.epochs;
    failed = st.epochs_failed;
    truncated = st.epochs_truncated;
    last_msgs = st.last_epoch_msgs;
    total_msgs = st.total_msgs;
    last_recovery_s = st.last_recovery_s;
    paths = List.length st.paths;
  }

let force_check t direction = check_dir t (dir_state t direction)
