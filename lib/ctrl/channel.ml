module Engine = Tango_sim.Engine
module Packet = Tango_net.Packet
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace
module Pop = Tango.Pop
module Discovery = Tango.Discovery
module As_path = Tango_bgp.As_path

(* Process-wide observability (DESIGN.md §10). *)
let m_hb_sent =
  Metric.counter ~help:"Control-channel heartbeats sent" "ctrl_heartbeats_sent_total"

let m_hb_received =
  Metric.counter ~help:"Control-channel heartbeats received"
    "ctrl_heartbeats_received_total"

let m_peer_loss =
  Metric.counter ~help:"Peer-loss episodes entered (control channel timed out)"
    "ctrl_peer_loss_total"

let m_peer_recovered =
  Metric.counter ~help:"Peer-loss episodes ended by a heartbeat getting through"
    "ctrl_peer_recovered_total"

let g_peer_alive =
  Metric.gauge ~help:"Endpoints currently hearing their peer (0-2)"
    "ctrl_peer_alive"

let k_loss = Trace.kind "ctrl.peer_loss"

let k_recover = Trace.kind "ctrl.peer_recover"

type Packet.content += Heartbeat of { seq : int; epoch : int; digest : int }

(* FNV-1a folded over each path's index and AS-path entries: a compact
   fingerprint of an outbound path table, cheap enough to ride in every
   heartbeat. The seed/mix primitives are exported so mesh gossip
   (Tango_mesh.Gossip) fingerprints its membership and routing tables
   with the same hash and the digests stay comparable end to end. *)
let digest_seed = 0x2545f4914f6cdd1d
let digest_mix h v = (h lxor v) * 0x100000001b3

let digest_paths paths =
  List.fold_left
    (fun h (p : Discovery.path) ->
      let h = digest_mix h p.Discovery.index in
      List.fold_left digest_mix h (As_path.to_list p.Discovery.as_path))
    digest_seed paths

type endpoint = {
  pop : Pop.t;
  mutable seq : int;
  mutable sent : int;
  mutable received : int;
  mutable last_heard_s : float;
  mutable peer_alive : bool;
  mutable peer_epoch : int;
  mutable peer_digest : int;
  mutable losses : int;
  mutable recoveries : int;
}

type t = {
  engine : Engine.t;
  heartbeat_interval_s : float;
  peer_timeout_s : float;
  a : endpoint;
  b : endpoint;
  epoch_of : Pop.t -> int;
  digest_of : Pop.t -> int;
  mutable on_loss : (Pop.t -> unit) option;
  mutable on_recover : (Pop.t -> unit) option;
}

let alive_count t =
  (if t.a.peer_alive then 1 else 0) + if t.b.peer_alive then 1 else 0

let set_alive_gauge t = Metric.set g_peer_alive (float_of_int (alive_count t))

let send_heartbeat t ep =
  let content =
    Heartbeat
      { seq = ep.seq; epoch = t.epoch_of ep.pop; digest = t.digest_of ep.pop }
  in
  (* While the peer is lost, rotate the heartbeat across every tunnel:
     the policy is pinned (possibly to the dead path), and any single
     live tunnel must be able to carry the recovery. *)
  let path =
    if ep.peer_alive then None else Some (ep.seq mod Pop.path_count ep.pop)
  in
  ignore (Pop.send_ctrl ep.pop ?path ~content ());
  ep.seq <- ep.seq + 1;
  ep.sent <- ep.sent + 1;
  Metric.incr m_hb_sent

let check_timeout t ep =
  let now = Engine.now t.engine in
  if ep.peer_alive && now -. ep.last_heard_s > t.peer_timeout_s then begin
    (* Peer loss: stat reports have stopped with the heartbeats, so the
       adaptive policy would be flying blind on staleness. Pin it —
       unilateral mode — until the peer is heard again. *)
    ep.peer_alive <- false;
    ep.losses <- ep.losses + 1;
    Pop.set_pinned ep.pop true;
    Metric.incr m_peer_loss;
    set_alive_gauge t;
    Trace.record Trace.default ~now ~kind:k_loss (Pop.node ep.pop) ep.losses;
    match t.on_loss with Some f -> f ep.pop | None -> ()
  end

let receive t ep ~now (packet : Packet.t) =
  match packet.Packet.content with
  | Some (Heartbeat { seq = _; epoch; digest }) ->
      ep.received <- ep.received + 1;
      ep.last_heard_s <- now;
      ep.peer_epoch <- epoch;
      ep.peer_digest <- digest;
      Metric.incr m_hb_received;
      if not ep.peer_alive then begin
        (* Recovery: unpin and let the policy re-evaluate immediately;
           the owner (reconciler) re-syncs path tables via on_recover. *)
        ep.peer_alive <- true;
        ep.recoveries <- ep.recoveries + 1;
        Pop.set_pinned ep.pop false;
        Metric.incr m_peer_recovered;
        set_alive_gauge t;
        Trace.record Trace.default ~now ~kind:k_recover (Pop.node ep.pop)
          ep.recoveries;
        match t.on_recover with Some f -> f ep.pop | None -> ()
      end
  | Some _ | None -> ()

let tick t _engine =
  send_heartbeat t t.a;
  send_heartbeat t t.b;
  check_timeout t t.a;
  check_timeout t t.b

let attach ~engine ~pop_a ~pop_b ?(heartbeat_interval_s = 0.1)
    ?(peer_timeout_s = 0.5) ?until_s ~epoch_of ~digest_of () =
  if heartbeat_interval_s <= 0.0 then
    invalid_arg "Channel.attach: non-positive heartbeat interval";
  if peer_timeout_s <= heartbeat_interval_s then
    invalid_arg "Channel.attach: peer timeout must exceed the heartbeat interval";
  let now = Engine.now engine in
  let endpoint pop =
    {
      pop;
      seq = 0;
      sent = 0;
      received = 0;
      last_heard_s = now;
      peer_alive = true;
      peer_epoch = 0;
      peer_digest = 0;
      losses = 0;
      recoveries = 0;
    }
  in
  let t =
    {
      engine;
      heartbeat_interval_s;
      peer_timeout_s;
      a = endpoint pop_a;
      b = endpoint pop_b;
      epoch_of;
      digest_of;
      on_loss = None;
      on_recover = None;
    }
  in
  Pop.set_ctrl_handler pop_a (fun ~now packet -> receive t t.a ~now packet);
  Pop.set_ctrl_handler pop_b (fun ~now packet -> receive t t.b ~now packet);
  set_alive_gauge t;
  Engine.every engine ~interval:heartbeat_interval_s ?until:until_s (tick t);
  t

let set_on_loss t f = t.on_loss <- Some f

let set_on_recover t f = t.on_recover <- Some f

let endpoint_of t pop =
  if Pop.node pop = Pop.node t.a.pop then t.a
  else if Pop.node pop = Pop.node t.b.pop then t.b
  else invalid_arg "Channel: pop is not an endpoint of this channel"

let peer_alive t pop = (endpoint_of t pop).peer_alive

let heartbeats_sent t pop = (endpoint_of t pop).sent

let heartbeats_received t pop = (endpoint_of t pop).received

let losses t pop = (endpoint_of t pop).losses

let recoveries t pop = (endpoint_of t pop).recoveries

let peer_epoch t pop = (endpoint_of t pop).peer_epoch

let peer_digest t pop = (endpoint_of t pop).peer_digest

let heartbeat_interval_s t = t.heartbeat_interval_s

let peer_timeout_s t = t.peer_timeout_s
