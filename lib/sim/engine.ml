module Metric = Tango_obs.Metric

(* Process-wide observability: every engine in the process aggregates
   into the same counters (see DESIGN.md §8). *)
let m_events = Metric.counter ~help:"Simulation events executed" "sim_events_total"

let g_now =
  Metric.gauge ~help:"Virtual time reached by the most recent engine run"
    "sim_virtual_time_seconds"

type event = { time : float; seq : int; callback : t -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 42) ?(heap_capacity = 0) () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~capacity:heap_capacity ~cmp:compare_event ();
    root_rng = Rng.create ~seed;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t ~time callback =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g precedes now %g" time
         t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; callback }

let schedule t ~delay callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) callback

let every t ~interval ?until callback =
  if interval <= 0.0 then invalid_arg "Engine.every: non-positive interval";
  let rec tick engine =
    callback engine;
    let next = now engine +. interval in
    match until with
    | Some stop when next > stop -> ()
    | Some _ | None -> schedule_at engine ~time:next tick
  in
  schedule t ~delay:0.0 tick

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      Metric.incr m_events;
      Metric.set g_now t.clock;
      ev.callback t;
      true

let run ?until ?max_events t =
  let executed = ref 0 in
  let continue () =
    match max_events with None -> true | Some m -> !executed < m
  in
  let rec loop () =
    if continue () then
      match Heap.peek t.queue with
      | None -> ()
      | Some ev -> (
          match until with
          | Some stop when ev.time > stop ->
              t.clock <- stop;
              Metric.set g_now t.clock
          | Some _ | None ->
              ignore (step t);
              incr executed;
              loop ())
  in
  loop ()

let cancel_all t = Heap.clear t.queue
