(** Array-backed binary min-heap, specialised by a comparison function.

    Used as the pending-event queue of the discrete-event engine; kept
    generic so tests can exercise it on plain integers. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element on top).
    [capacity] is a sizing hint: the backing array is allocated at that
    size on the first push instead of doubling up from 8, which matters
    when one engine hosts hundreds of PoPs worth of timers (mesh-scale
    runs push tens of thousands of events). Negative capacity raises
    [Invalid_argument]. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element; O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element; O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
(** Remove every element. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructively list all elements in ascending order; O(n log n). *)
