type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  mutable reserve : int;
}

let create ?(capacity = 0) ~cmp () =
  if capacity < 0 then invalid_arg "Heap.create: negative capacity";
  { cmp; data = [||]; size = 0; reserve = capacity }

(* The backing array cannot be pre-sized at [create] time: the element
   type has no witness value yet. The reservation is honoured lazily on
   the first [push], which sizes the array once instead of doubling
   through log2(capacity) intermediate copies. *)

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = max (max 8 t.reserve) (2 * capacity) in
    let data = Array.make new_capacity x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && t.cmp t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.size && t.cmp t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_sorted_list t =
  let copy =
    {
      cmp = t.cmp;
      data = Array.sub t.data 0 t.size;
      size = t.size;
      reserve = 0;
    }
  in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
