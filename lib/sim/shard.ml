(* Flow-sharded domain lanes with a deterministic merge.

   The multicore dataplane (DESIGN.md §11) splits flows across N lanes
   by flow hash; each lane runs on its own OCaml 5 domain against its
   own lane-local state (fabric, trackers, caches), so the per-packet
   path takes no lock and shares no mutable cache line. Results come
   back as flat timestamped records through one single-producer /
   single-consumer ring per lane, and a single reducer drains the rings
   in (virtual-time, lane-id, ring-position) order — a k-way merge whose
   output order is a pure function of the records, never of scheduling.
   That is what keeps seeded runs byte-reproducible at any domain count.

   Rings are preallocated flat arrays (no per-record boxing); the
   producer side is [@hot] and allocation-free. Publication safety
   follows the OCaml memory model: every plain field write a producer
   makes before its Atomic tail store is visible to a reader that
   observes the new tail. *)

let lane_of_hash ~lanes hash =
  if lanes <= 0 then invalid_arg "Shard.lane_of_hash: non-positive lane count";
  (hash land max_int) mod lanes

module Ring = struct
  type t = {
    mask : int;
    time : float array;
    a : int array;
    b : int array;
    c : int array;
    v : float array;
    tail : int Atomic.t;  (* producer cursor: next slot to fill *)
    head : int Atomic.t;  (* consumer cursor: next slot to read *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Shard.Ring.create: non-positive capacity";
    let cap = ref 1 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    let n = !cap in
    {
      mask = n - 1;
      time = Array.make n 0.0;
      a = Array.make n 0;
      b = Array.make n 0;
      c = Array.make n 0;
      v = Array.make n 0.0;
      tail = Atomic.make 0;
      head = Atomic.make 0;
    }

  let capacity t = t.mask + 1

  let length t = Atomic.get t.tail - Atomic.get t.head

  let is_empty t = length t = 0

  let[@hot] push t ~time ~a ~b ~c ~v =
    let tail = Atomic.get t.tail in
    if tail - Atomic.get t.head > t.mask then
      invalid_arg "Shard.Ring.push: ring full (undersized for the workload)";
    let i = tail land t.mask in
    Array.unsafe_set t.time i time;
    Array.unsafe_set t.a i a;
    Array.unsafe_set t.b i b;
    Array.unsafe_set t.c i c;
    Array.unsafe_set t.v i v;
    Atomic.set t.tail (tail + 1)

  let[@hot] peek_time t =
    let head = Atomic.get t.head in
    if Atomic.get t.tail = head then infinity
    else Array.unsafe_get t.time (head land t.mask)

  let[@hot] peek_b t =
    let head = Atomic.get t.head in
    if Atomic.get t.tail = head then max_int
    else Array.unsafe_get t.b (head land t.mask)
end

type record = {
  mutable time : float;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable v : float;
}

let scratch () = { time = 0.0; a = 0; b = 0; c = 0; v = 0.0 }

let pop_into (ring : Ring.t) (r : record) =
  let head = Atomic.get ring.Ring.head in
  if Atomic.get ring.Ring.tail = head then
    invalid_arg "Shard.pop_into: empty ring";
  let i = head land ring.Ring.mask in
  r.time <- Array.unsafe_get ring.Ring.time i;
  r.a <- Array.unsafe_get ring.Ring.a i;
  r.b <- Array.unsafe_get ring.Ring.b i;
  r.c <- Array.unsafe_get ring.Ring.c i;
  r.v <- Array.unsafe_get ring.Ring.v i;
  Atomic.set ring.Ring.head (head + 1)

(* Drain [rings] in (time, lane-id, ring-position) order: repeatedly pop
   the globally smallest head record, scanning lanes ascending with a
   strict < so ties resolve to the lowest lane id; within one lane, ring
   order (the lane's own emission order) is preserved by construction. *)
let merge rings ~consume =
  let lanes = Array.length rings in
  let r = scratch () in
  let continue = ref true in
  while !continue do
    let best_lane = ref (-1) in
    let best_time = ref infinity in
    for lane = 0 to lanes - 1 do
      if not (Ring.is_empty rings.(lane)) then begin
        let t = Ring.peek_time rings.(lane) in
        if t < !best_time then begin
          best_time := t;
          best_lane := lane
        end
      end
    done;
    if !best_lane < 0 then continue := false
    else begin
      pop_into rings.(!best_lane) r;
      consume ~lane:!best_lane r
    end
  done

let run ~lanes ~capacity_of ~lane ~consume =
  if lanes <= 0 then invalid_arg "Shard.run: non-positive lane count";
  let rings =
    Array.init lanes (fun l -> Ring.create ~capacity:(capacity_of ~lane:l))
  in
  let domains =
    Array.init lanes (fun l -> Domain.spawn (fun () -> lane ~lane:l rings.(l)))
  in
  (* Quiesce point: joining every lane establishes happens-before for all
     lane-local state, so the reducer (and any counter merging the caller
     does afterwards) reads fully published data. *)
  Array.iter Domain.join domains;
  merge rings ~consume
