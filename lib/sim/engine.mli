(** Discrete-event simulation engine.

    The engine owns a virtual clock (in seconds, as a float) and a pending
    event queue. Callbacks scheduled for the same instant fire in FIFO
    order of scheduling, which keeps runs fully deterministic. Every run
    also owns a root {!Rng.t}; subsystems should {!Rng.split} from it so
    that adding a new consumer does not perturb existing streams. *)

type t

val create : ?seed:int -> ?heap_capacity:int -> unit -> t
(** [create ~seed ()] builds an engine with its clock at [0.0]. The
    default seed is [42]. [heap_capacity] pre-sizes the event queue —
    pass the expected number of concurrently pending events when one
    engine hosts a whole mesh of PoPs (see {!Tango_mesh}) so the queue
    never re-copies mid-run. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. A negative delay
    raises [Invalid_argument]. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute virtual [time], which
    must not precede [now t]. *)

val every : t -> interval:float -> ?until:float -> (t -> unit) -> unit
(** [every t ~interval ?until f] runs [f] now and then every [interval]
    seconds, stopping once the clock would pass [until] (if given). *)

val pending : t -> int
(** Number of queued events. *)

val step : t -> bool
(** Execute the single earliest event. Returns [false] when the queue was
    empty (and the clock did not move). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue. [until] stops the clock at that time (events beyond
    it stay queued); [max_events] bounds the number of callbacks executed,
    guarding against runaway feedback loops. *)

val cancel_all : t -> unit
(** Drop every queued event. *)
