(** Flow-sharded domain lanes with a deterministic merge (DESIGN.md §11).

    The multicore dataplane partitions flows across [lanes] OCaml 5
    domains by flow hash. Each lane owns its state outright (no locks on
    the packet path) and emits flat timestamped result records into a
    preallocated single-producer/single-consumer ring; a single reducer
    then drains all rings in (virtual-time, lane-id, ring-position)
    order. Because that order is a pure function of the records — never
    of OS scheduling — seeded runs are byte-reproducible at any domain
    count. *)

val lane_of_hash : lanes:int -> int -> int
(** Which lane owns a flow hash: [(hash land max_int) mod lanes], so
    every packet of a flow lands on the same lane at a fixed lane count.
    Raises [Invalid_argument] when [lanes <= 0]. *)

(** Preallocated SPSC result ring over flat arrays: one float timestamp,
    three int fields and one float value per record, no per-record
    boxing. Exactly one domain may push and one domain may pop. *)
module Ring : sig
  type t

  val create : capacity:int -> t
  (** Capacity is rounded up to a power of two. Raises
      [Invalid_argument] when non-positive. *)

  val capacity : t -> int
  val length : t -> int
  val is_empty : t -> bool

  val push : t -> time:float -> a:int -> b:int -> c:int -> v:float -> unit
  (** Publish one record ([@hot], allocation-free). The ring does not
      block: the caller sizes it for the workload (one slot per record
      it will ever push), and overflow raises [Invalid_argument]. *)

  val peek_time : t -> float
  (** Timestamp of the oldest unread record, [infinity] when empty. *)

  val peek_b : t -> int
  (** The [b] field of the oldest unread record, [max_int] when empty —
      the secondary merge key (sequence number) for consumers that
      tie-break equal timestamps. *)
end

type record = {
  mutable time : float;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable v : float;
}
(** Reducer-side scratch: {!pop_into} overwrites one reused record, so
    draining allocates nothing per record. *)

val scratch : unit -> record

val pop_into : Ring.t -> record -> unit
(** Consume the oldest record into the scratch. Raises
    [Invalid_argument] on an empty ring. *)

val merge : Ring.t array -> consume:(lane:int -> record -> unit) -> unit
(** Drain every ring in (time, lane-id, ring-position) order — the
    deterministic k-way merge. Ties on time resolve to the lowest lane
    id; records of one lane keep their emission order. *)

val run :
  lanes:int ->
  capacity_of:(lane:int -> int) ->
  lane:(lane:int -> Ring.t -> unit) ->
  consume:(lane:int -> record -> unit) ->
  unit
(** Spawn [lanes] domains, run [lane] on each against its own ring, join
    them all (the quiesce point publishing every lane's state), then
    {!merge} the rings through [consume]. [capacity_of] must cover every
    record the lane will push — rings do not block, they raise. *)
