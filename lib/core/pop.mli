(** A Tango point of presence: the border switch plus its local server,
    as deployed at each edge network (§3–4).

    A PoP owns, per discovered outbound path, a tunnel whose remote
    endpoint lies in the peer's per-path prefix; its data-plane programs
    stamp, number and encapsulate outgoing packets and, on the inbound
    side, decapsulate, measure one-way delay, track loss/reordering and
    deliver to the host. Inbound per-path statistics are periodically
    reported back to the peer (the cooperative feedback loop), where they
    drive that peer's {!Policy} for traffic selection. *)

type t

val create :
  name:string ->
  node:int ->
  fabric:Tango_dataplane.Fabric.t ->
  ?clock_offset_ns:int64 ->
  ?ewma_alpha:float ->
  ?jitter_window_s:float ->
  ?policy_refresh_s:float ->
  ?readmit_backoff_s:float ->
  plan:Addressing.plan ->
  remote_plan:Addressing.plan ->
  outbound_paths:Discovery.path list ->
  policy:Policy.spec ->
  unit ->
  t
(** [outbound_paths] are the discovery results for the direction
    this PoP → peer (i.e. discovery run with the {e peer} as origin).

    [policy_refresh_s] (default 0.01, one probe interval) bounds how
    often the path-selection policy is fully re-evaluated: within a
    refresh interval, packets take the per-flow decision cache instead
    — one int-keyed lookup, no stats rebase, no policy scan. When a
    re-evaluation flips the preferred path the cache is invalidated in
    O(1) and every flow migrates on its next packet.

    [readmit_backoff_s] enables the policy's exponential flap damping
    (see {!Policy.create}); default off. *)

val wire : a:t -> b:t -> unit
(** Connect two PoPs so each delivers the other's packets. Must be called
    once before any traffic. *)

val name : t -> string
val node : t -> int
val engine_of : t -> Tango_sim.Engine.t
val path_count : t -> int
val path_label : t -> int -> string

(** {1 Traffic} *)

val send_app : t -> ?payload_bytes:int -> ?final_dst:Tango_net.Addr.t -> unit -> int
(** Send one application packet to the peer's host; returns the path id
    the policy selected. [final_dst] overrides the inner destination
    (used by the overlay to address a host {e beyond} the peer, which
    then relays). *)

(** {1 Overlay (Tango-of-N) hooks} *)

val set_transit_handler : t -> (now:float -> Tango_net.Packet.t -> unit) -> unit
(** Receive decapsulated packets whose inner destination lies outside
    this site's host prefix — the relaying case. Without a handler such
    packets fall through to normal host delivery. *)

val forward_transit : t -> Tango_net.Packet.t -> unit
(** Re-encapsulate a relayed packet onto this PoP's current best path
    toward {e its} peer, preserving packet identity and creation time. *)

val transited : t -> int
(** Packets relayed through this PoP. *)

val send_probe : t -> unit
(** Send one measurement probe on {e every} outbound path (the paper's
    per-10 ms probe train), dispatched as a single packet batch through
    {!Tango_dataplane.Fabric.send_batch}. A no-op while probe
    suppression is active. *)

val set_probe_suppression : t -> bool -> unit
(** Starve (or resume) the probe train without unscheduling it — the
    {!Tango_faults} probe-starvation fault. While suppressed, the peer's
    inbound statistics age out and its policy must detect this PoP's
    paths as dead by staleness alone. *)

val probes_suppressed : t -> bool

val start :
  t ->
  ?probe_interval_s:float ->
  ?report_interval_s:float ->
  ?dead_after_probes:int ->
  until_s:float ->
  unit ->
  unit
(** Schedule periodic probing (default 10 ms, as in §5) and peer
    reporting (default 100 ms) until [until_s].

    [dead_after_probes] arms probe-timeout dead-path detection: the
    policy's staleness bound becomes that many probe intervals, so a
    path whose measurements stop refreshing is declared dead after
    missing that many consecutive probes. Omitted, the policy keeps its
    default 1 s bound. Raises [Invalid_argument] on a non-positive
    count. *)

(** {1 Transport hooks}

    Reliable streams ({!Stream}) ride a dedicated port so their segments
    and ACKs do not pollute the app-latency metrics. *)

val set_stream_handler : t -> (now:float -> Tango_net.Packet.t -> unit) -> unit
(** Install the receiver for stream-port packets (at most one). *)

val send_stream :
  t ->
  ?payload_bytes:int ->
  route:[ `Policy | `Path of int ] ->
  content:Tango_net.Packet.content ->
  unit ->
  int
(** Send one transport segment toward the peer; returns the path used.
    [`Policy] consults the live path-selection policy, [`Path p] pins a
    tunnel. *)

(** {1 Control plane (lib/ctrl hooks)}

    The reconciler swaps re-discovered path tables in atomically, and
    the pair control channel rides a dedicated in-band port. *)

val install_outbound_paths : t -> Discovery.path list -> unit
(** Replace the outbound path table with a new generation: tunnels and
    labels are rebuilt, peer-reported stats are kept for retained
    indices (new paths start unmeasured), the per-flow decision cache is
    invalidated and {!table_epoch} is bumped — from the data plane's
    view the swap is atomic. Paths must be indexed densely from 0 in
    list order. Raises [Invalid_argument] on an empty, oversized or
    mis-indexed table. *)

val table_epoch : t -> int
(** Generation stamp of the installed path table; 0 at creation,
    incremented by every {!install_outbound_paths}. *)

val set_ctrl_handler : t -> (now:float -> Tango_net.Packet.t -> unit) -> unit
(** Install the receiver for control-channel packets (at most one). *)

val send_ctrl : t -> ?path:int -> content:Tango_net.Packet.content -> unit -> int
(** Send one control packet toward the peer over the path the live
    policy currently prefers (in-band: control fate-shares with data
    and fails over with it); returns the path used. [path] pins a
    tunnel instead — the channel's peer-loss probing rotates over every
    tunnel this way, so any live tunnel can carry the recovery. Raises
    [Invalid_argument] if the PoP has no tunnels. *)

val set_pinned : t -> bool -> unit
(** Freeze (or release) the path-selection refresh: while pinned, the
    current preference is held and no policy re-evaluation runs — the
    unilateral mode entered on peer loss, when stat reports have stopped
    and staleness would drive the adaptive policy blind. Unpinning
    forces a re-evaluation on the next packet. *)

val pinned : t -> bool

(** {1 Measurements} *)

val inbound_owd_series : t -> path:int -> Tango_telemetry.Series.t
(** One-way delays measured here, per inbound path id (offset-shifted by
    the clock skew, like the paper's). *)

val inbound_jitter_ms : t -> path:int -> float
(** Mean 1-s rolling stddev of the inbound OWD stream. *)

val inbound_stats : t -> Policy.path_stats array
(** Live snapshot of what this PoP measures on its inbound paths. *)

val outbound_stats : t -> Policy.path_stats array
(** Latest per-path stats reported by the peer — what the policy sees. *)

val detector_events : t -> path:int -> Tango_telemetry.Detect.event list
(** Route-change / spike events detected on an inbound path. *)

val tracker : t -> path:int -> Tango_dataplane.Seq_tracker.t

(** {1 Application-level metrics} *)

val app_latency_series : t -> Tango_telemetry.Series.t
(** True end-to-end latency (virtual time, clock-skew-free) of app
    packets received here. *)

val app_inorder_extra : t -> Tango_sim.Stats.t
(** Head-of-line blocking penalty under in-order delivery, seconds. *)

val chosen_path_series : t -> Tango_telemetry.Series.t
(** Path id chosen for each outgoing app packet over time. *)

val plan : t -> Addressing.plan
val remote_plan : t -> Addressing.plan

val clock : t -> Tango_dataplane.Clock.t

val step_clock : t -> step_ns:int64 -> unit
(** Apply an NTP-style step to this PoP's receive clock mid-run (the
    {!Tango_faults} clock fault). Relative OWD comparison across paths
    is supposed to survive it — every inbound path shifts equally. *)

val policy : t -> Policy.t

val policy_degraded : t -> bool
(** Whether the path-selection policy is in its all-paths-degraded
    pinned mode (see {!Policy.degraded}). *)

val policy_switches : t -> int

val policy_evaluations : t -> int
(** Full policy evaluations actually run — with the decision cache this
    is bounded by elapsed virtual time / [policy_refresh_s], not by the
    packet count. *)

val path_cache_hits : t -> int
val path_cache_misses : t -> int

val path_cache_flows : t -> int
(** Distinct flows that ever stored a decision. *)

val probes_sent : t -> int
val probes_received : t -> int
val app_received : t -> int
val reports_received : t -> int
