module Topology = Tango_topo.Topology
module Vultr = Tango_topo.Vultr
module Link = Tango_topo.Link
module Network = Tango_bgp.Network
module Prefix = Tango_net.Prefix

type route = Direct | Relay of int list

let pp_route ppf = function
  | Direct -> Format.pp_print_string ppf "direct"
  | Relay hops ->
      Format.fprintf ppf "relay via %s"
        (String.concat "," (List.map string_of_int hops))

type plan = {
  src : int;
  dst : int;
  route : route;
  owd_ms : float;
  direct_ms : float;
}

let plan_routes ~owd_ms ?(relay_overhead_ms = 0.1) ?(max_relays = 1) ~sites () =
  if sites < 2 then invalid_arg "Overlay.plan_routes: need at least two sites";
  if max_relays < 1 || max_relays > 2 then
    invalid_arg "Overlay.plan_routes: max_relays must be 1 or 2";
  let all = List.init sites Fun.id in
  let pairs =
    List.concat_map (fun s -> List.filter_map (fun d -> if s = d then None else Some (s, d)) all) all
  in
  List.map
    (fun (src, dst) ->
      let direct = owd_ms ~src ~dst in
      let best = ref (direct, Direct) in
      let consider owd route = if owd < fst !best then best := (owd, route) in
      List.iter
        (fun r ->
          if r <> src && r <> dst then begin
            let one_hop = owd_ms ~src ~dst:r +. owd_ms ~src:r ~dst +. relay_overhead_ms in
            consider one_hop (Relay [ r ]);
            if max_relays >= 2 then
              List.iter
                (fun r2 ->
                  if r2 <> src && r2 <> dst && r2 <> r then begin
                    let two_hop =
                      owd_ms ~src ~dst:r +. owd_ms ~src:r ~dst:r2
                      +. owd_ms ~src:r2 ~dst
                      +. (2.0 *. relay_overhead_ms)
                    in
                    consider two_hop (Relay [ r; r2 ])
                  end)
                all
          end)
        all;
      let owd, route = !best in
      { src; dst; route; owd_ms = owd; direct_ms = direct })
    pairs

let gain_ms plan =
  if Float.equal plan.direct_ms infinity && plan.owd_ms < infinity then infinity
  else Float.max 0.0 (plan.direct_ms -. plan.owd_ms)

module Triangle = struct
  let vultr_chi = 3

  let server_chi = 13

  let eastnet = 7018

  let slownet = 6453

  let build () =
    let t = Vultr.build () in
    Topology.add_node t ~id:vultr_chi ~asn:Vultr.vultr_asn "Vultr-CHI";
    Topology.add_node t ~id:server_chi ~asn:64514 ~private_asn:true "Tango-CHI";
    Topology.add_node t ~id:eastnet ~asn:eastnet "EastNet";
    Topology.add_node t ~id:slownet ~asn:slownet "SlowNet";
    Topology.connect t ~provider:vultr_chi ~customer:server_chi
      ~link:(Link.v ~jitter_ms:0.005 0.2) ();
    (* EastNet: a regional network reaching only CHI and NY — fast. *)
    Topology.connect t ~provider:eastnet ~customer:vultr_chi
      ~link:(Link.v ~jitter_ms:0.01 5.0) ();
    Topology.connect t ~provider:eastnet ~customer:Vultr.vultr_ny
      ~link:(Link.v ~jitter_ms:0.01 5.0) ();
    (* SlowNet: the only direct CHI–LA transit — long detour. *)
    Topology.connect t ~provider:slownet ~customer:vultr_chi
      ~link:(Link.v ~jitter_ms:0.05 30.0) ();
    Topology.connect t ~provider:slownet ~customer:Vultr.vultr_la
      ~link:(Link.v ~jitter_ms:0.05 30.0) ();
    t

  (* Site indices in the shared address block. *)
  let site_of_server node =
    if node = Vultr.server_la then 0
    else if node = Vultr.server_ny then 1
    else if node = server_chi then 2
    else invalid_arg (Printf.sprintf "Overlay.Triangle: node %d is not a server" node)

  let host_prefix ~site =
    (Addressing.carve ~block:Addressing.default_block ~site_index:site ~path_count:0)
      .Addressing.host_prefix

  let announce_hosts net =
    List.iter
      (fun node ->
        Network.announce net ~node (host_prefix ~site:(site_of_server node)) ())
      [ Vultr.server_la; Vultr.server_ny; server_chi ];
    ignore (Network.converge net)

  let static_owd_ms net ~src ~dst =
    let topo = Network.topology net in
    let addr = Prefix.nth_address (host_prefix ~site:(site_of_server dst)) 0x11L in
    match Network.forwarding_path net ~from_node:src addr with
    | None -> infinity
    | Some nodes ->
        let rec sum = function
          | a :: (b :: _ as rest) -> (
              match Topology.link topo a b with
              | Some l -> l.Link.delay_ms +. sum rest
              | None -> infinity)
          | [ _ ] | [] -> 0.0
        in
        sum nodes
end

(* Silence the unused-value warning for vultr_chi in Triangle: exposed
   implicitly through the topology. *)
let _ = Triangle.vultr_chi
