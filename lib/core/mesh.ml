module Engine = Tango_sim.Engine
module Stats = Tango_sim.Stats
module Network = Tango_bgp.Network
module Topology = Tango_topo.Topology
module Vultr = Tango_topo.Vultr
module Fabric = Tango_dataplane.Fabric
module Prefix = Tango_net.Prefix
module Series = Tango_telemetry.Series

type site = { name : string; node : int; host_prefix : Prefix.t }

type t = {
  engine : Engine.t;
  net : Network.t;
  fabric : Fabric.t;
  site_list : site array;
  pops : (int * int, Pop.t) Hashtbl.t;
  discovered : (int * int, Discovery.path list) Hashtbl.t;
  routes : (int * int, Overlay.route) Hashtbl.t;
  relay_overhead_ms : float;
}

let vultr_overrides (node : Topology.node) =
  if node.Topology.id = Vultr.vultr_la || node.Topology.id = Vultr.vultr_ny then
    { Network.no_overrides with neighbor_weight = Some Vultr.vultr_neighbor_weight }
  else Network.no_overrides

let fabric t = t.fabric

let sites t = Array.length t.site_list

let site_name t i = t.site_list.(i).name

let check_pair t src dst =
  let n = sites t in
  if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then
    invalid_arg (Printf.sprintf "Mesh: invalid site pair (%d,%d)" src dst)

let pop t ~src ~dst =
  check_pair t src dst;
  Hashtbl.find t.pops (src, dst)

let paths t ~src ~dst =
  check_pair t src dst;
  Hashtbl.find t.discovered (src, dst)

(* Per-pair tunnel slices live above the per-site slices in the shared
   block: slice 32 + src*N + dst holds the prefixes site [dst] announces
   for traffic from [src]. *)
let pair_slice ~site_count ~src ~dst = 32 + (src * site_count) + dst

let setup_triangle ?(seed = 11)
    ?(policy = Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 1.0 })
    ?(relay_overhead_ms = 0.1) () =
  let topo = Overlay.Triangle.build () in
  let engine = Engine.create ~seed () in
  let net = Network.create ~configure:vultr_overrides topo engine in
  let block = Addressing.default_block in
  let site_list =
    [|
      { name = "LA"; node = Vultr.server_la;
        host_prefix = (Addressing.carve ~block ~site_index:0 ~path_count:0).Addressing.host_prefix };
      { name = "NY"; node = Vultr.server_ny;
        host_prefix = (Addressing.carve ~block ~site_index:1 ~path_count:0).Addressing.host_prefix };
      { name = "CHI"; node = Overlay.Triangle.server_chi;
        host_prefix = (Addressing.carve ~block ~site_index:2 ~path_count:0).Addressing.host_prefix };
    |]
  in
  let n = Array.length site_list in
  let discovered = Hashtbl.create 8 in
  let probe = Prefix.subnet block 16 (16 * 101) in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let result =
          Discovery.run ~net ~origin:site_list.(dst).node
            ~observer:site_list.(src).node ~probe_prefix:probe ()
        in
        Hashtbl.replace discovered (src, dst) result.Discovery.paths
      end
    done
  done;
  (* Announce one host prefix per site, then the per-pair tunnel
     prefixes from each destination with the discovered communities. *)
  Array.iter
    (fun s -> Network.announce net ~node:s.node s.host_prefix ())
    site_list;
  let tunnel_prefixes ~src ~dst =
    let slice = pair_slice ~site_count:n ~src ~dst in
    let count = List.length (Hashtbl.find discovered (src, dst)) in
    List.init count (fun i -> Prefix.subnet block 16 ((16 * slice) + 1 + i))
  in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        List.iteri
          (fun i prefix ->
            let path = List.nth (Hashtbl.find discovered (src, dst)) i in
            Network.announce net ~node:site_list.(dst).node prefix
              ~communities:path.Discovery.communities ())
          (tunnel_prefixes ~src ~dst)
    done
  done;
  ignore (Network.converge net);
  let fabric = Fabric.create ~seed:(seed + 1) net in
  let pops = Hashtbl.create 8 in
  (* The paper's footnote 1: with more than one sending/receiving
     switch, comparing measurements across different ingress/egress
     points requires relative clock synchronization — a constant offset
     no longer cancels when summing segments of different pairs. The
     mesh therefore assumes synchronized site clocks (offset 0); the
     pairwise deployments in {!Pair} keep their deliberate skew. *)
  let clock_offsets = [| 0L; 0L; 0L |] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let plan =
          {
            Addressing.site_index = src;
            host_prefix = site_list.(src).host_prefix;
            tunnel_prefixes = tunnel_prefixes ~src:dst ~dst:src;
          }
        in
        let remote_plan =
          {
            Addressing.site_index = dst;
            host_prefix = site_list.(dst).host_prefix;
            tunnel_prefixes = tunnel_prefixes ~src ~dst;
          }
        in
        let p =
          Pop.create
            ~name:(Printf.sprintf "%s->%s" site_list.(src).name site_list.(dst).name)
            ~node:site_list.(src).node ~fabric
            ~clock_offset_ns:clock_offsets.(src mod Array.length clock_offsets)
            ~plan ~remote_plan
            ~outbound_paths:(Hashtbl.find discovered (src, dst))
            ~policy ()
        in
        Hashtbl.replace pops (src, dst) p
      end
    done
  done;
  for src = 0 to n - 1 do
    for dst = src + 1 to n - 1 do
      Pop.wire ~a:(Hashtbl.find pops (src, dst)) ~b:(Hashtbl.find pops (dst, src))
    done
  done;
  let t =
    {
      engine;
      net;
      fabric;
      site_list;
      pops;
      discovered;
      routes = Hashtbl.create 8;
      relay_overhead_ms;
    }
  in
  (* Relaying: any packet a site receives for a foreign host prefix is
     re-encapsulated onto that site's best path toward the final site. *)
  for here = 0 to n - 1 do
    let handler ~now:_ (packet : Tango_net.Packet.t) =
      let dst_addr = packet.Tango_net.Packet.flow.Tango_net.Flow.dst in
      let target = ref None in
      Array.iteri
        (fun i s -> if Prefix.mem s.host_prefix dst_addr then target := Some i)
        t.site_list;
      match !target with
      | Some final when final <> here ->
          Pop.forward_transit (Hashtbl.find t.pops (here, final)) packet
      | Some _ | None -> ()
    in
    for other = 0 to n - 1 do
      if other <> here then
        Pop.set_transit_handler (Hashtbl.find pops (here, other)) handler
    done
  done;
  (* Until planned otherwise, everything goes direct. *)
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then Hashtbl.replace t.routes (src, dst) Overlay.Direct
    done
  done;
  t

(* Pop iteration in sorted key order: probe scheduling and stats
   accumulation must not inherit Hashtbl hash order. *)
let sorted_pop_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.pops []
  |> List.sort (fun (a1, a2) (b1, b2) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

let start_measurement t ?probe_interval_s ?report_interval_s ~for_s () =
  let until_s = Engine.now t.engine +. for_s in
  List.iter
    (fun k ->
      Pop.start (Hashtbl.find t.pops k) ?probe_interval_s ?report_interval_s
        ~until_s ())
    (sorted_pop_keys t)

let run_for t duration = Engine.run ~until:(Engine.now t.engine +. duration) t.engine

(* Measurements older than this are not trusted for overlay planning: a
   blackholed segment stops producing samples entirely, and its last
   EWMA would otherwise advertise a healthy delay forever. *)
let max_segment_staleness_s = 3.0

let measured_owd_ms t ~src ~dst =
  check_pair t src dst;
  let stats = Pop.outbound_stats (Hashtbl.find t.pops (src, dst)) in
  let any_measured = ref false in
  let best =
    Array.fold_left
      (fun acc (s : Policy.path_stats) ->
        if s.Policy.samples > 0 && not (Float.is_nan s.Policy.owd_ewma_ms) then begin
          any_measured := true;
          if s.Policy.age_s <= max_segment_staleness_s then
            Float.min acc s.Policy.owd_ewma_ms
          else acc
        end
        else acc)
      infinity stats
  in
  if best < infinity then best
  else if !any_measured then
    (* Measurements existed but every path's are stale: the segment is
       effectively down right now. *)
    infinity
  else
    List.fold_left
      (fun acc (p : Discovery.path) -> Float.min acc p.Discovery.floor_owd_ms)
      infinity
      (Hashtbl.find t.discovered (src, dst))

let plan_routes t =
  let plans =
    Overlay.plan_routes
      ~owd_ms:(fun ~src ~dst -> measured_owd_ms t ~src ~dst)
      ~relay_overhead_ms:t.relay_overhead_ms ~sites:(sites t) ()
  in
  List.iter
    (fun (p : Overlay.plan) ->
      Hashtbl.replace t.routes (p.Overlay.src, p.Overlay.dst) p.Overlay.route)
    plans

let route t ~src ~dst =
  check_pair t src dst;
  Hashtbl.find t.routes (src, dst)

let send_app t ~src ~dst ?payload_bytes () =
  check_pair t src dst;
  match route t ~src ~dst with
  | Overlay.Direct -> ignore (Pop.send_app (Hashtbl.find t.pops (src, dst)) ?payload_bytes ())
  | Overlay.Relay (first :: _) ->
      let final_dst = Prefix.nth_address t.site_list.(dst).host_prefix 0x11L in
      ignore
        (Pop.send_app (Hashtbl.find t.pops (src, first)) ?payload_bytes ~final_dst ())
  | Overlay.Relay [] -> assert false

let fold_site_pops t ~site ~init ~f =
  List.fold_left
    (fun acc ((src, _) as k) ->
      if src = site then f acc (Hashtbl.find t.pops k) else acc)
    init (sorted_pop_keys t)

let app_received_at t ~site =
  fold_site_pops t ~site ~init:0 ~f:(fun acc p -> acc + Pop.app_received p)

let app_latency_at t ~site =
  let stats = Stats.create () in
  fold_site_pops t ~site ~init:() ~f:(fun () p ->
      Series.iter (Pop.app_latency_series p) (fun ~time:_ ~value ->
          Stats.add stats value));
  Stats.summarize stats

let transited_at t ~site =
  fold_site_pops t ~site ~init:0 ~f:(fun acc p -> acc + Pop.transited p)
