(** The paper's iterative path-discovery algorithm (§4.1, step 2).

    From the destination site, announce a probe prefix; at the source
    site, observe the best AS path BGP delivers; attach a community
    suppressing the provider's export to the transit adjacent to the
    origin; wait for reconvergence; repeat until the prefix becomes
    unreachable. Each iteration exposes one more of the wide-area paths
    the core was already holding. *)

type mechanism =
  [ `Communities  (** Provider action communities (the paper's §4). *)
  | `Poisoning
    (** AS-path poisoning (§3/§6): the origin inserts the transit's ASN
        before itself so that transit drops the route by loop detection.
        Needs no provider support at all, but lengthens the announced
        path and knocks the poisoned AS out for {e every} route to the
        prefix. *) ]

type path = {
  index : int;  (** Discovery order = the provider's preference order. *)
  communities : Tango_bgp.Community.Set.t;
      (** Suppression set that exposes this path (empty under
          [`Poisoning]). *)
  poisons : int list;
      (** ASNs poisoned to expose this path (empty under
          [`Communities]). *)
  as_path : Tango_bgp.As_path.t;  (** As observed at the source site. *)
  transits : int list;
      (** ASNs between the two provider sites, e.g. [[2914; 174]] for the
          paper's "NTT and Cogent" path. *)
  label : string;  (** Human name from the distinguishing transit. *)
  floor_owd_ms : float;
      (** Sum of link propagation delays along the observer→origin
          forwarding path at discovery time — the static one-way-delay
          floor of this path ([infinity] if it could not be resolved). *)
}

val pp_path : Format.formatter -> path -> unit

type result = {
  paths : path list;
  iterations : int;  (** BGP reconvergence rounds used (= paths + 1). *)
  convergence_time_s : float;  (** Total virtual time spent converging. *)
  messages : int;  (** BGP updates exchanged during discovery. *)
  truncated : bool;
      (** Exploration stopped early because the message budget would
          have been exceeded (never set when no budget was given). *)
}

val run :
  net:Tango_bgp.Network.t ->
  origin:int ->
  observer:int ->
  probe_prefix:Tango_net.Prefix.t ->
  ?mechanism:mechanism ->
  ?max_paths:int ->
  ?transit_namer:(int -> string) ->
  ?resume:path list ->
  ?message_budget:int ->
  ?iteration_cost_hint:int ->
  unit ->
  result
(** Discover the paths from [observer] toward [origin] (announcements
    flow origin→observer; data will flow observer→origin over them —
    and symmetrically, the same paths carry origin-bound traffic of the
    origin's own prefixes). The probe prefix is withdrawn before
    returning. [max_paths] (default 16) bounds the loop.
    [transit_namer] renders labels (defaults to {!Tango_topo.Vultr.transit_name}).

    [resume] (incremental re-discovery) is a trusted prefix of
    previously discovered paths: exploration starts from the
    suppression set those paths imply ({!suppression_of}) instead of
    from scratch, and the resumed paths are included in the result.
    [message_budget] caps the BGP updates this run may cause: before
    each announce the run stops — marking the result [truncated] — if
    the messages already spent plus the cost of the most expensive
    iteration seen so far (seeded by [iteration_cost_hint]) would
    exceed the budget. *)

(** {1 Per-iteration steps}

    [run] composed from its parts, for callers that must interleave
    exploration with a live simulation ({!Tango_ctrl}): announce, let
    the network settle on the engine, observe, grow the suppression
    set, repeat. These never call [Network.converge]. *)

val announce_step :
  net:Tango_bgp.Network.t ->
  origin:int ->
  probe_prefix:Tango_net.Prefix.t ->
  mechanism:mechanism ->
  suppressed:int list ->
  unit ->
  unit
(** (Re-)announce the probe prefix with the suppression set rendered as
    communities or poisons per [mechanism]. Propagation is scheduled on
    the engine; the caller decides how long to let it settle. *)

val observe_step :
  net:Tango_bgp.Network.t ->
  origin:int ->
  observer:int ->
  probe_prefix:Tango_net.Prefix.t ->
  ?mechanism:mechanism ->
  ?transit_namer:(int -> string) ->
  suppressed:int list ->
  index:int ->
  unit ->
  path option
(** Read the observer's current best path for the probe prefix and
    build the [path] record for iteration [index]; [None] when the
    prefix is unreachable at the observer. *)

val next_suppression :
  mechanism:mechanism -> suppressed:int list -> path -> int list option
(** The suppression set for the next iteration after observing [path],
    or [None] when exploration is exhausted (no knob left, or the knob
    is already suppressed). *)

val suppression_of : mechanism:mechanism -> path list -> int list
(** Replay {!next_suppression} over an ordered, trusted path list: the
    suppression set a discovery run holds after finding exactly those
    paths. *)
