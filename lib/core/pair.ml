module Engine = Tango_sim.Engine
module Network = Tango_bgp.Network
module Topology = Tango_topo.Topology
module Vultr = Tango_topo.Vultr
module Fabric = Tango_dataplane.Fabric
module Fig4 = Tango_workload.Fig4
module Prefix = Tango_net.Prefix

type t = {
  engine : Engine.t;
  net : Network.t;
  fabric : Fabric.t;
  scenario : Fig4.t option;
  pop_la : Pop.t;
  pop_ny : Pop.t;
  (* Mutable so the reconciler can record re-discovered tables; the
     PoPs' installed tunnels are updated separately via
     {!Pop.install_outbound_paths}. *)
  mutable discovery_to_ny : Discovery.result;
  mutable discovery_to_la : Discovery.result;
}

let vultr_overrides (node : Topology.node) =
  if node.Topology.id = Vultr.vultr_la || node.Topology.id = Vultr.vultr_ny then
    { Network.no_overrides with neighbor_weight = Some Vultr.vultr_neighbor_weight }
  else Network.no_overrides

let default_policy =
  Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 1.0 }

let setup ?(seed = 11) ?(policy_a = default_policy) ?(policy_b = default_policy)
    ?readmit_backoff_s ?extra_delay_ms ?lanes_of ?(clock_offset_a_ns = 0L)
    ?(clock_offset_b_ns = 0L) ?(configure = fun _ -> Network.no_overrides)
    ?(name_a = "A") ?(name_b = "B") ~topo ~server_a ~server_b () =
  let engine = Engine.create ~seed () in
  let net = Network.create ~configure topo engine in
  let block = Addressing.default_block in
  (* Scratch prefix for discovery probes, outside both site slices. *)
  let probe_prefix = Prefix.subnet block 16 (16 * 100) in
  let discovery_to_b =
    Discovery.run ~net ~origin:server_b ~observer:server_a ~probe_prefix ()
  in
  let discovery_to_a =
    Discovery.run ~net ~origin:server_a ~observer:server_b ~probe_prefix ()
  in
  let plan_a =
    Addressing.carve ~block ~site_index:0
      ~path_count:(List.length discovery_to_a.Discovery.paths)
  in
  let plan_b =
    Addressing.carve ~block ~site_index:1
      ~path_count:(List.length discovery_to_b.Discovery.paths)
  in
  (* Announce host prefixes plainly and each tunnel prefix with the
     community set discovery recorded for its path. *)
  let announce_site ~node ~(plan : Addressing.plan) ~(paths : Discovery.path list) =
    Network.announce net ~node plan.Addressing.host_prefix ();
    List.iteri
      (fun i prefix ->
        let path = List.nth paths i in
        Network.announce net ~node prefix
          ~communities:path.Discovery.communities ())
      plan.Addressing.tunnel_prefixes
  in
  announce_site ~node:server_a ~plan:plan_a ~paths:discovery_to_a.Discovery.paths;
  announce_site ~node:server_b ~plan:plan_b ~paths:discovery_to_b.Discovery.paths;
  ignore (Network.converge net);
  let fabric = Fabric.create ~seed:(seed + 1) ?lanes_of ?extra_delay_ms net in
  let pop_a =
    Pop.create ~name:name_a ~node:server_a ~fabric
      ~clock_offset_ns:clock_offset_a_ns ?readmit_backoff_s ~plan:plan_a
      ~remote_plan:plan_b ~outbound_paths:discovery_to_b.Discovery.paths
      ~policy:policy_a ()
  in
  let pop_b =
    Pop.create ~name:name_b ~node:server_b ~fabric
      ~clock_offset_ns:clock_offset_b_ns ?readmit_backoff_s ~plan:plan_b
      ~remote_plan:plan_a ~outbound_paths:discovery_to_a.Discovery.paths
      ~policy:policy_b ()
  in
  Pop.wire ~a:pop_a ~b:pop_b;
  {
    engine;
    net;
    fabric;
    scenario = None;
    pop_la = pop_a;
    pop_ny = pop_b;
    discovery_to_ny = discovery_to_b;
    discovery_to_la = discovery_to_a;
  }

let setup_vultr ?(seed = 11) ?(policy_la = default_policy)
    ?(policy_ny = default_policy) ?readmit_backoff_s ?scenario ?lanes_of
    ?(clock_offset_la_ns = 37_000_000L) ?(clock_offset_ny_ns = -12_000_000L) () =
  let extra_delay_ms = Option.map Fig4.extra_delay_ms scenario in
  let pair =
    setup ~seed ~policy_a:policy_la ~policy_b:policy_ny ?readmit_backoff_s
      ?extra_delay_ms ?lanes_of ~clock_offset_a_ns:clock_offset_la_ns
      ~clock_offset_b_ns:clock_offset_ny_ns ~configure:vultr_overrides
      ~name_a:"LA" ~name_b:"NY" ~topo:(Vultr.build ())
      ~server_a:Vultr.server_la ~server_b:Vultr.server_ny ()
  in
  { pair with scenario }

let engine t = t.engine

let network t = t.net

let fabric t = t.fabric

let scenario t = t.scenario

let pop_la t = t.pop_la

let pop_ny t = t.pop_ny

let paths_to_ny t = t.discovery_to_ny.Discovery.paths

let paths_to_la t = t.discovery_to_la.Discovery.paths

let discovery_to_ny t = t.discovery_to_ny

let discovery_to_la t = t.discovery_to_la

let update_paths_to_ny t paths =
  t.discovery_to_ny <- { t.discovery_to_ny with Discovery.paths }

let update_paths_to_la t paths =
  t.discovery_to_la <- { t.discovery_to_la with Discovery.paths }

let start_measurement t ?probe_interval_s ?report_interval_s ?dead_after_probes
    ~for_s () =
  (* Durations are relative to now: BGP bring-up and discovery already
     consumed virtual time. *)
  let until_s = Engine.now t.engine +. for_s in
  Pop.start t.pop_la ?probe_interval_s ?report_interval_s ?dead_after_probes
    ~until_s ();
  Pop.start t.pop_ny ?probe_interval_s ?report_interval_s ?dead_after_probes
    ~until_s ()

let run_for t duration = Engine.run ~until:(Engine.now t.engine +. duration) t.engine
