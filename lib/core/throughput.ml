(* Multicore batched dataplane throughput pipeline (DESIGN.md §11).

   This is the end-to-end packet path — encap, fabric forwarding, decap,
   per-flow measurement — run at maximum rate across flow-sharded domain
   lanes. Flows are partitioned by 5-tuple hash onto N lanes
   (Shard.lane_of_hash); every lane owns a full, independent copy of the
   world (topology, converged BGP tables, fabric, flow cache, sequence
   trackers), so the per-packet path takes no lock and shares no mutable
   state. Lanes emit one flat record per delivered packet into their SPSC
   ring; after all lanes are joined, a single reducer k-way-merges the
   rings deterministically and folds an order-insensitive fingerprint.

   Determinism at any domain count is by construction:

   - a flow's packets all live on one lane, and that lane processes them
     in (virtual-arrival-time, sequence) order via per-path FIFO rings —
     the per-flow observation order Seq_tracker sees is therefore a pure
     function of the workload, never of the lane count;
   - every per-packet quantity (send time, path choice, synthetic drop,
     arrival time, one-way delay) is computed from seeds, flow hashes
     and generation indices alone;
   - the reducer's fingerprint is commutative (sum + xor of per-record
     hashes), so cross-flow interleaving — the only thing that differs
     between lane counts — cannot affect it.

   The virtual workload: [flows] flows each send one packet per
   generation (generations are [gen_interval_s] apart); every
   [epoch_gens] generations the flow cache is invalidated and the
   per-flow path assignment rotates by one, putting fresh packets on a
   path whose delay differs from the in-flight ones' (reordering);
   a deterministic hash of (flow, generation) drops ~0.8% of packets
   before they enter the fabric (loss). Paths have distinct delays, so
   rotation genuinely overlaps old and new paths in flight.

   On the packet path proper (Flow_cache hit -> encap -> batched fabric
   send -> decap -> ring push -> Seq_tracker.observe) nothing is
   allocated that survives a minor collection: packets die within the
   generation that created them, and all carried state lives in
   preallocated flat arrays. The process-wide Metric registry is frozen
   during the parallel phase and the per-lane counts are published once,
   at the quiesce point after every domain is joined. *)

module Engine = Tango_sim.Engine
module Shard = Tango_sim.Shard
module Topology = Tango_topo.Topology
module Link = Tango_topo.Link
module Network = Tango_bgp.Network
module Addr = Tango_net.Addr
module Flow = Tango_net.Flow
module Packet = Tango_net.Packet
module Fabric = Tango_dataplane.Fabric
module Batch = Tango_dataplane.Batch
module Clock = Tango_dataplane.Clock
module Flow_cache = Tango_dataplane.Flow_cache
module Seq_tracker = Tango_dataplane.Seq_tracker
module Metric = Tango_obs.Metric
module Load = Tango_workload.Load

(* Process-wide observability, published only at quiesce points. *)
let m_offered =
  Metric.counter ~help:"Throughput pipeline: packets offered"
    "throughput_packets_offered_total"

let m_synthetic =
  Metric.counter ~help:"Throughput pipeline: synthetic pre-fabric drops"
    "throughput_synthetic_drops_total"

let m_lost =
  Metric.counter ~help:"Throughput pipeline: packets lost (tracker totals)"
    "throughput_packets_lost_total"

let m_reordered =
  Metric.counter ~help:"Throughput pipeline: reordered arrivals"
    "throughput_packets_reordered_total"

let g_lanes =
  Metric.gauge ~help:"Throughput pipeline: lanes of the last run"
    "throughput_lanes"

let m_evicted =
  Metric.counter ~help:"Throughput pipeline: flow-cache entries evicted"
    "throughput_cache_evictions_total"

let g_hit_rate =
  Metric.gauge ~help:"Throughput pipeline: flow-cache hit rate of the last run"
    "throughput_cache_hit_rate"

let g_cache_resident =
  Metric.gauge ~help:"Throughput pipeline: flow-cache entries resident at quiesce"
    "throughput_cache_resident"

let g_tracker_resident =
  Metric.gauge
    ~help:"Throughput pipeline: tracker provisional entries resident at quiesce"
    "throughput_tracker_resident"

let g_tracker_active =
  Metric.gauge ~help:"Throughput pipeline: trackers that saw traffic"
    "throughput_tracker_active_keys"

let paths = 4

let payload_bytes = 512

let gen_interval_s = 0.001

let epoch_gens = 25

(* ------------------------------------------------------------------ *)
(* Deterministic workload ingredients.                                  *)

(* Pre-fabric loss: a splitmix-style hash of (flow hash, generation)
   drops 8/1024 of offered packets, independent of lane count. *)
let[@hot] synthetic_drop ~flow_hash ~gen =
  let m = flow_hash lxor (gen * 0x2545F4914F6CDD1D) in
  let m = m lxor (m lsr 29) in
  m land 1023 < 8

type flow_slot = { f_flow : Flow.t; f_hash : int }

(* ------------------------------------------------------------------ *)
(* Per-lane world: topology, converged BGP, fabric, measurement state.  *)

(* Star topology with [paths] disjoint two-hop routes, every link
   jitter-free and loss-free so all routes are "plain" (batched fast
   path) and arrival times are closed-form. [first_hop_ms] sets the
   sender-to-transit delay of each path (the transit-to-receiver hop is
   a fixed 0.3 ms).

   The E14 ladder (first hops 0.7 + 0.6i; 1.0, 1.6, 2.2, 2.8 ms end to
   end) steps by more than the 1 ms generation interval, so every epoch
   rotation overlaps old and new paths in flight — the reordering
   source. The load-engine ladder (1.0, 1.3, 2.9, 1.6 ms end to end) is
   deliberately non-monotone: path 1 over path 0 reproduces the paper's
   ~30% default-route penalty (E2) for the E16 gate, while the
   2.9 -> 1.6 ms drop at the path-2-to-3 rotation exceeds one
   generation interval and keeps reordering alive for stride-1 flows. *)
(* Computed, not literal: 0.7 +. 0.6 differs from the literal 1.3 in
   the last bit, and the E14 fingerprints are bit-exact across
   releases. *)
let e14_first_hops =
  Array.init paths (fun i -> 0.7 +. (0.6 *. float_of_int i))

let load_first_hops = [| 0.7; 1.0; 2.6; 1.3 |]

let build_topology ~first_hop_ms () =
  let topo = Topology.create () in
  Topology.add_node topo ~id:0 ~asn:64500 "sender";
  for i = 0 to paths - 1 do
    let transit = 1 + i and receiver = 1 + paths + i in
    Topology.add_node topo ~id:transit ~asn:(64600 + i)
      (Printf.sprintf "transit-%d" i);
    Topology.add_node topo ~id:receiver ~asn:(64700 + i)
      (Printf.sprintf "receiver-%d" i);
    Topology.connect topo ~provider:transit ~customer:0
      ~link:(Link.v ~jitter_ms:0.0 ~bandwidth_mbps:100_000.0 first_hop_ms.(i))
      ();
    Topology.connect topo ~provider:transit ~customer:receiver
      ~link:(Link.v ~jitter_ms:0.0 ~bandwidth_mbps:100_000.0 0.3) ()
  done;
  topo

type lane_env = {
  l_fabric : Fabric.t;
  l_dsts : Addr.t array;  (* per-path tunnel endpoints at site 1 *)
  l_outer_src : Addr.t;
  l_clock : Clock.t;
  l_cache : Flow_cache.t;
  l_track : Seq_tracker.Table.t;  (* one tracker per lane-owned flow *)
  l_local : int array;  (* global flow id -> lane-local tracker key *)
  l_path_rings : Shard.Ring.t array;  (* in-flight arrivals, per path *)
  l_batch : Batch.t;
  l_t0 : float;  (* virtual time of generation 0 (post-convergence) *)
  mutable l_epoch : int;
  mutable l_offered : int;
  mutable l_synthetic : int;
  mutable l_delivered : int;
  mutable l_major_words : float;  (* major-heap words the lane allocated *)
}

(* Per-lane state is sized by what the lane actually owns: [own_flows]
   trackers (not the global flow count — a million-flow run at 4 lanes
   would otherwise hold 4 x 10^6 trackers), rings sized by the peak
   per-generation offered load, and a flow cache bounded by
   [cache_capacity] (per lane; [None] keeps the pre-existing unbounded
   behavior). *)
let build_lane_env ~seed ~first_hop_ms ~cache_expected ~cache_capacity
    ~tracker_ceiling ~tracker_idle_gens ~ring_cap ~own_flows ~local =
  let topo = build_topology ~first_hop_ms () in
  let engine = Engine.create ~seed () in
  let net = Network.create topo engine in
  let plan1 =
    Addressing.carve ~block:Addressing.default_block ~site_index:1
      ~path_count:paths
  in
  List.iteri
    (fun i prefix -> Network.announce net ~node:(1 + paths + i) prefix ())
    plan1.Addressing.tunnel_prefixes;
  ignore (Network.converge net);
  let fabric = Fabric.create ~seed net in
  let dsts =
    Array.init paths (fun p -> Addressing.tunnel_endpoint plan1 ~path:p)
  in
  Array.iteri
    (fun p dst ->
      if not (Fabric.route_plain fabric ~from_node:0 ~dst) then
        invalid_arg
          (Printf.sprintf "Throughput: path %d is not plain-routable" p))
    dsts;
  let plan0 =
    Addressing.carve ~block:Addressing.default_block ~site_index:0
      ~path_count:paths
  in
  {
    l_fabric = fabric;
    l_dsts = dsts;
    l_outer_src = Addressing.host_address plan0 1L;
    l_clock = Clock.create ();
    l_cache =
      Flow_cache.create ~expected_flows:cache_expected ?capacity:cache_capacity
        ();
    l_track =
      Seq_tracker.Table.create ~ceiling:tracker_ceiling
        ~idle_generations:tracker_idle_gens ~keys:own_flows ();
    l_local = local;
    l_path_rings =
      (* In-flight bound: arrivals are drained every generation and the
         slowest path holds under 4 generations of flight time, so no
         ring ever holds more than 4 generations of the peak offered
         load. *)
      Array.init paths (fun _ -> Shard.Ring.create ~capacity:ring_cap);
    l_batch = Batch.create ();
    l_t0 = Engine.now engine;
    l_epoch = 0;
    l_offered = 0;
    l_synthetic = 0;
    l_delivered = 0;
    l_major_words = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* The lane body: the per-packet hot path.                              *)

let lane_main env out_ring ~flows ~my_flows ~plan ~uniform ~generations
    ~batch_limit =
  (* Each domain has its own minor heap; widen it to 8 M words (64 MB)
     so minor collections — stop-the-world across every domain — stay
     rare during the run. Wider is not better: sizing each arena to the
     lane's whole allocation budget (128 MB+) measured ~5x slower at
     4 domains on one core, the arena-commit and rendezvous cost
     swamping the collections it saved. Results are GC-independent, so
     this knob only moves the wall clock. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = 1 lsl 23 };
  let nflows = Array.length flows in
  (* Delivery continuation: decap, compute the one-way delay from the
     carried switch timestamp, and push the flat arrival record onto the
     path's FIFO ring. Created once per lane run. *)
  let[@hot] on_delivered ~node:_ ~at_s packet =
    let e = Packet.decapsulate packet in
    let owd_ns =
      Int64.sub
        (Clock.now_ns env.l_clock ~sim_time_s:at_s)
        e.Packet.tango.Packet.timestamp_ns
    in
    Shard.Ring.push
      env.l_path_rings.(e.Packet.tango.Packet.path_id)
      ~time:at_s
      ~a:(packet.Packet.id mod nflows)
      ~b:(Int64.to_int e.Packet.tango.Packet.seq)
      ~c:e.Packet.tango.Packet.path_id
      ~v:(Int64.to_float owd_ns /. 1e6)
  in
  let flush ts =
    if not (Batch.is_empty env.l_batch) then begin
      Fabric.send_batch_direct env.l_fabric ~from_node:0 ~now_s:ts
        ~on_delivered_at:on_delivered env.l_batch;
      Batch.clear env.l_batch
    end
  in
  (* Drain every arrival up to [upto] in (arrival-time, sequence) order
     across the path rings: per-path arrival order equals send order
     (constant per-path delay), so a 4-way merge reconstructs the true
     arrival order; same-flow ties on time resolve by sequence, which is
     what keeps per-flow observation order lane-count-invariant. *)
  let scratch = Shard.scratch () in
  let drain upto =
    let continue = ref true in
    while !continue do
      let best = ref (-1) in
      let best_t = ref infinity in
      let best_seq = ref max_int in
      for p = 0 to paths - 1 do
        let ring = env.l_path_rings.(p) in
        if not (Shard.Ring.is_empty ring) then begin
          let tp = Shard.Ring.peek_time ring in
          let c = Float.compare tp !best_t in
          if c < 0 || (c = 0 && Shard.Ring.peek_b ring < !best_seq) then begin
            best := p;
            best_t := tp;
            best_seq := Shard.Ring.peek_b ring
          end
        end
      done;
      if !best < 0 || !best_t > upto then continue := false
      else begin
        Shard.pop_into env.l_path_rings.(!best) scratch;
        Seq_tracker.Table.observe ~now_s:scratch.Shard.time env.l_track
          ~key:(Array.unsafe_get env.l_local scratch.Shard.a)
          (Int64.of_int scratch.Shard.b);
        env.l_delivered <- env.l_delivered + 1;
        Shard.Ring.push out_ring ~time:scratch.Shard.time ~a:scratch.Shard.a
          ~b:scratch.Shard.b ~c:scratch.Shard.c ~v:scratch.Shard.v
      end
    done
  in
  let stat0 = Gc.quick_stat () in
  (* One send: path decision through the bounded cache, synthetic drop,
     encap, batched fabric submit. [sidx] is the flow's 0-based send
     index (its tunnel sequence number) — equal to [gen] for the uniform
     full-mesh workload, plan-derived otherwise. Every 8th send the flow
     confirms losses older than its reordering horizon (the slowest path
     holds under 4 generations of flight time and strides are >= 1
     generation, so sequence sidx - 8 can no longer arrive), bounding
     the tracker's provisional-missing set the way a real switch's
     fixed-size map would. *)
  let send_one f sidx seq64 ts ts_ns gen epoch =
    if sidx > 8 && sidx land 7 = 0 then
      Seq_tracker.Table.confirm_below env.l_track
        ~key:(Array.unsafe_get env.l_local f)
        (Int64.of_int (sidx - 8));
    env.l_offered <- env.l_offered + 1;
    let slot = Array.unsafe_get flows f in
    let h = slot.f_hash in
    let path =
      match Flow_cache.find env.l_cache ~flow_hash:h with
      | Some p -> p
      | None ->
          let p = (h + epoch) mod paths in
          Flow_cache.store env.l_cache ~flow_hash:h p;
          p
    in
    if synthetic_drop ~flow_hash:h ~gen then
      env.l_synthetic <- env.l_synthetic + 1
    else begin
      let packet =
        Packet.create
          ~id:((gen * nflows) + f)
          ~flow:slot.f_flow ~payload_bytes ~created_at:ts ()
      in
      Packet.encapsulate packet
        {
          Packet.outer_src = env.l_outer_src;
          outer_dst = Array.unsafe_get env.l_dsts path;
          udp_src = 40000 + path;
          udp_dst = 4789;
          tango =
            { Packet.timestamp_ns = ts_ns; seq = seq64; path_id = path; flags = 0 };
        };
      Batch.add env.l_batch packet;
      if Batch.length env.l_batch >= batch_limit then flush ts
    end
  in
  for gen = 0 to generations - 1 do
    let ts = env.l_t0 +. (float_of_int gen *. gen_interval_s) in
    drain ts;
    (* Generation tick for tracker aging: with aging off this only
       advances a counter; with [idle_generations > 0] it expires
       trackers whose flows went quiet past the horizon. *)
    ignore (Seq_tracker.Table.advance_generation env.l_track);
    let epoch = gen / epoch_gens in
    if epoch <> env.l_epoch then begin
      env.l_epoch <- epoch;
      Flow_cache.invalidate env.l_cache
    end;
    (* Per-generation constants, hoisted off the per-packet path (each
       would otherwise box a fresh Int64 per packet). *)
    let ts_ns = Clock.now_ns env.l_clock ~sim_time_s:ts in
    let gen64 = Int64.of_int gen in
    if uniform then
      (* Full-mesh blast: every flow sends every generation, sequence =
         generation; the hoisted [gen64] serves every packet. *)
      for fi = 0 to Array.length my_flows - 1 do
        send_one (Array.unsafe_get my_flows fi) gen gen64 ts ts_ns gen epoch
      done
    else
      for fi = 0 to Array.length my_flows - 1 do
        let f = Array.unsafe_get my_flows fi in
        if Load.sends_at plan ~flow:f ~gen then begin
          let sidx = Load.seq_index plan ~flow:f ~gen in
          send_one f sidx (Int64.of_int sidx) ts ts_ns gen epoch
        end
      done;
    flush ts;
    (* Drop the batch's stale slot references: if a minor collection
       lands between generations it finds no transient packets live. *)
    Batch.purge env.l_batch
  done;
  drain infinity;
  let stat1 = Gc.quick_stat () in
  env.l_major_words <- stat1.Gc.major_words -. stat0.Gc.major_words;
  Gc.set gc

(* ------------------------------------------------------------------ *)
(* Reduction and results.                                               *)

type result = {
  domains : int;
  batch : int;
  flows : int;
  generations : int;
  offered : int;
  delivered : int;
  synthetic_drops : int;
  lost : int;
  reordered : int;
  duplicates : int;
  cache_hits : int;
  cache_misses : int;
  cache_capacity : int;  (* per-lane bound; 0 = unbounded *)
  cache_evictions : int;
  cache_resident : int;  (* summed over lanes at quiesce *)
  tracker_active : int;  (* trackers that saw traffic, summed over lanes *)
  tracker_resident : int;  (* provisional entries at quiesce *)
  tracker_resident_peak : int;  (* sum of per-lane high-water marks *)
  tracker_ceiling : int;  (* per-lane advisory bound; 0 = none *)
  tracker_idle_gens : int;  (* aging horizon; 0 = off *)
  tracker_evictions : int;  (* idle trackers expired, summed over lanes *)
  path_delivered : int array;  (* deliveries per path id *)
  path_owd_ms : float array;  (* mean one-way delay per path id *)
  merged : int;
  fingerprint_sum : int;
  fingerprint_xor : int;
  wall_s : float;
  pps : float;
  major_words_per_packet : float;
}

(* FNV-style fold of one delivered-packet record. Only record fields go
   in — never lane ids or wall time — so the commutative (sum, xor)
   aggregate is identical at every domain count and batch size. *)
let record_hash (r : Shard.record) =
  let mix h v = (h lxor v) * 0x100000001B3 land max_int in
  let tb = Int64.to_int (Int64.bits_of_float r.Shard.time) land max_int in
  let vb = Int64.to_int (Int64.bits_of_float r.Shard.v) land max_int in
  mix (mix (mix (mix 0x811C9DC5 tb) r.Shard.a) ((r.Shard.b lsl 3) lxor r.Shard.c)) vb

let run ?(domains = 1) ?(batch = Batch.capacity) ?(flows = 512)
    ?(generations = 2000) ?(seed = 42) ?plan ?cache_capacity
    ?(tracker_ceiling = 0) ?(tracker_idle_gens = 0) () =
  if domains <= 0 then invalid_arg "Throughput.run: non-positive domains";
  if batch <= 0 || batch > Batch.capacity then
    invalid_arg "Throughput.run: batch outside [1, 64]";
  if flows <= 0 then invalid_arg "Throughput.run: non-positive flows";
  if generations <= 0 then
    invalid_arg "Throughput.run: non-positive generations";
  (match cache_capacity with
  | Some c when c <= 0 ->
      invalid_arg "Throughput.run: non-positive cache capacity"
  | _ -> ());
  if tracker_ceiling < 0 then
    invalid_arg "Throughput.run: negative tracker ceiling";
  if tracker_idle_gens < 0 then
    invalid_arg "Throughput.run: negative tracker idle generations";
  (* A [plan] replaces the uniform full-mesh workload (and its [flows] /
     [generations] arguments) with the million-flow engine's schedule;
     the tighter 0.3 ms path-delay spread puts the default-over-best
     one-way-delay ratio at the paper's ~30% (E2/E16). *)
  let uniform = Option.is_none plan in
  let plan =
    match plan with Some p -> p | None -> Load.uniform ~flows ~generations
  in
  let first_hop_ms = if uniform then e14_first_hops else load_first_hops in
  let flows = Load.flows plan in
  let generations = Load.generations plan in
  (* Shared immutable workload: flow records, hashes, lane assignment. *)
  let plan0 =
    Addressing.carve ~block:Addressing.default_block ~site_index:0
      ~path_count:paths
  in
  let plan1 =
    Addressing.carve ~block:Addressing.default_block ~site_index:1
      ~path_count:paths
  in
  let src = Addressing.host_address plan0 1L in
  let dst = Addressing.host_address plan1 2L in
  let flow_slots =
    Array.init flows (fun i ->
        let f =
          Flow.v ~src ~dst ~proto:17
            ~src_port:(1024 + (i mod 60000))
            ~dst_port:(5000 + (i / 60000))
        in
        { f_flow = f; f_hash = Flow.hash_5tuple f })
  in
  let flow_lane =
    Array.init flows (fun f ->
        Shard.lane_of_hash ~lanes:domains flow_slots.(f).f_hash)
  in
  let lane_flows = Array.make domains 0 in
  Array.iter (fun l -> lane_flows.(l) <- lane_flows.(l) + 1) flow_lane;
  (* Per-lane flow index lists (in increasing flow order, so each lane
     visits its flows in the same order at any lane count): the lane
     loop walks only its own flows instead of filtering all of them —
     the filter scan was per-generation fixed cost scaling with the
     lane count. *)
  let lane_flow_idx =
    let next = Array.make domains 0 in
    let idx = Array.init domains (fun l -> Array.make (max 1 lane_flows.(l)) 0) in
    Array.iteri
      (fun f l ->
        idx.(l).(next.(l)) <- f;
        next.(l) <- next.(l) + 1)
      flow_lane;
    Array.init domains (fun l -> Array.sub idx.(l) 0 lane_flows.(l))
  in
  (* Exact per-lane delivery bound for the out rings: a lane can never
     deliver more than it schedules. *)
  let lane_sends = Array.make domains 0 in
  if uniform then
    Array.iteri (fun l n -> lane_sends.(l) <- n * generations) lane_flows
  else
    Array.iteri
      (fun f l -> lane_sends.(l) <- lane_sends.(l) + Load.flow_pkts plan f)
      flow_lane;
  (* Every lane's world is built on the main domain, outside the timed
     region (BGP convergence is setup, not dataplane). Per-lane sizing:
     trackers for owned flows only, rings for 4 generations of the peak
     offered load — at 10^6 flows the old
     global-flow-count-times-lane-count sizing would be quadratic. *)
  let ring_cap = (4 * Load.max_gen_sends plan) + 8 in
  let cache_expected =
    match cache_capacity with Some c -> c | None -> flows
  in
  let envs =
    Array.init domains (fun l ->
        let local = Array.make flows (-1) in
        Array.iteri (fun i f -> local.(f) <- i) lane_flow_idx.(l);
        build_lane_env ~seed ~first_hop_ms ~cache_expected ~cache_capacity
          ~tracker_ceiling ~tracker_idle_gens ~ring_cap
          ~own_flows:lane_flows.(l) ~local)
  in
  (* Freeze the process-wide registry while lanes run: the direct path
     never touches it, and freezing turns any accidental use into a
     no-op instead of a cross-domain race. *)
  let metrics_were_enabled = Metric.enabled () in
  Metric.set_enabled false;
  let fp_sum = ref 0 in
  let fp_xor = ref 0 in
  let merged = ref 0 in
  let path_delivered = Array.make paths 0 in
  let path_owd_sum = Array.make paths 0.0 in
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = 1 lsl 22 };
  (* Start the timed phase from a settled heap: setup garbage (BGP
     convergence, env construction, any previous run in this process)
     must not bill its collection work to this run's lanes. *)
  Gc.full_major ();
  (* tango-lint: allow determinism-wallclock — wall time feeds the pps gauge only; fingerprints and merged outputs never include it *)
  let started = Unix.gettimeofday () in
  Shard.run ~lanes:domains
    ~capacity_of:(fun ~lane -> max 1 lane_sends.(lane))
    ~lane:(fun ~lane ring ->
      lane_main envs.(lane) ring ~flows:flow_slots
        ~my_flows:lane_flow_idx.(lane) ~plan ~uniform ~generations
        ~batch_limit:batch)
    ~consume:(fun ~lane:_ r ->
      incr merged;
      let h = record_hash r in
      fp_sum := (!fp_sum + h) land max_int;
      fp_xor := !fp_xor lxor h;
      let p = r.Shard.c in
      path_delivered.(p) <- path_delivered.(p) + 1;
      path_owd_sum.(p) <- path_owd_sum.(p) +. r.Shard.v);
  (* tango-lint: allow determinism-wallclock — wall time feeds the pps gauge only; fingerprints and merged outputs never include it *)
  let wall_s = Unix.gettimeofday () -. started in
  Gc.set gc;
  Metric.set_enabled metrics_were_enabled;
  (* Quiesce point: all lanes joined; publish per-lane counts. *)
  let offered = ref 0 in
  let delivered = ref 0 in
  let synthetic = ref 0 in
  let lost = ref 0 in
  let reordered = ref 0 in
  let duplicates = ref 0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let evictions = ref 0 in
  let cache_resident = ref 0 in
  let tracker_active = ref 0 in
  let tracker_resident = ref 0 in
  let tracker_peak = ref 0 in
  let tracker_evictions = ref 0 in
  let major_words = ref 0.0 in
  Array.iter
    (fun env ->
      if Fabric.direct_fallbacks env.l_fabric <> 0 then
        failwith
          "Throughput.run: direct path fell back to the canonical send";
      Fabric.quiesce_metrics env.l_fabric;
      offered := !offered + env.l_offered;
      delivered := !delivered + env.l_delivered;
      synthetic := !synthetic + env.l_synthetic;
      hits := !hits + Flow_cache.hits env.l_cache;
      misses := !misses + Flow_cache.misses env.l_cache;
      evictions := !evictions + Flow_cache.evictions env.l_cache;
      cache_resident := !cache_resident + Flow_cache.resident env.l_cache;
      tracker_active := !tracker_active + Seq_tracker.Table.active_keys env.l_track;
      tracker_resident := !tracker_resident + Seq_tracker.Table.resident env.l_track;
      tracker_peak := !tracker_peak + Seq_tracker.Table.resident_peak env.l_track;
      tracker_evictions :=
        !tracker_evictions + Seq_tracker.Table.evictions env.l_track;
      major_words := !major_words +. env.l_major_words;
      lost := !lost + Seq_tracker.Table.lost_total env.l_track;
      reordered := !reordered + Seq_tracker.Table.reordered_total env.l_track;
      duplicates := !duplicates + Seq_tracker.Table.duplicates_total env.l_track)
    envs;
  Metric.add m_offered !offered;
  Metric.add m_synthetic !synthetic;
  Metric.add m_lost !lost;
  Metric.add m_reordered !reordered;
  Metric.add m_evicted !evictions;
  Metric.set g_lanes (float_of_int domains);
  Metric.set_ratio g_hit_rate ~num:!hits ~den:(!hits + !misses);
  Metric.set g_cache_resident (float_of_int !cache_resident);
  Metric.set g_tracker_resident (float_of_int !tracker_resident);
  Metric.set g_tracker_active (float_of_int !tracker_active);
  let path_owd_ms =
    Array.init paths (fun p ->
        if path_delivered.(p) = 0 then 0.0
        else path_owd_sum.(p) /. float_of_int path_delivered.(p))
  in
  {
    domains;
    batch;
    flows;
    generations;
    offered = !offered;
    delivered = !delivered;
    synthetic_drops = !synthetic;
    lost = !lost;
    reordered = !reordered;
    duplicates = !duplicates;
    cache_hits = !hits;
    cache_misses = !misses;
    cache_capacity = (match cache_capacity with Some c -> c | None -> 0);
    cache_evictions = !evictions;
    cache_resident = !cache_resident;
    tracker_active = !tracker_active;
    tracker_resident = !tracker_resident;
    tracker_resident_peak = !tracker_peak;
    tracker_ceiling;
    tracker_idle_gens;
    tracker_evictions = !tracker_evictions;
    path_delivered;
    path_owd_ms;
    merged = !merged;
    fingerprint_sum = !fp_sum;
    fingerprint_xor = !fp_xor;
    wall_s;
    pps = (if wall_s > 0.0 then float_of_int !offered /. wall_s else 0.0);
    major_words_per_packet =
      (if !offered > 0 then !major_words /. float_of_int !offered else 0.0);
  }

let fingerprint r = Printf.sprintf "%015x-%015x" r.fingerprint_sum r.fingerprint_xor

let print_summary ?(timing = true) r =
  Printf.printf "throughput: flows %d paths %d generations %d offered %d\n"
    r.flows paths r.generations r.offered;
  Printf.printf
    "  delivered %d synthetic-drops %d lost %d reordered %d duplicates %d\n"
    r.delivered r.synthetic_drops r.lost r.reordered r.duplicates;
  Printf.printf "  flow-cache hits %d misses %d\n" r.cache_hits r.cache_misses;
  Printf.printf "  fingerprint %s merged %d\n" (fingerprint r) r.merged;
  if timing then
    Printf.printf
      "  domains %d batch %d wall %.3f s -> %.3f Mpps (%.4f major words/pkt)\n"
      r.domains r.batch r.wall_s (r.pps /. 1e6) r.major_words_per_packet

(* The E2 policy-quality ratio under load: mean one-way delay on path 1
   (the BGP-default route in the load topology) over path 0 (the best
   cooperative route). ~1.3 by construction of the load delay ladder;
   E16 gates that a million-flow mix still measures it. *)
let default_over_best r =
  if Array.length r.path_owd_ms < 2 || r.path_owd_ms.(0) <= 0.0 then 0.0
  else r.path_owd_ms.(1) /. r.path_owd_ms.(0)

let hit_rate r =
  let total = r.cache_hits + r.cache_misses in
  if total = 0 then 0.0 else float_of_int r.cache_hits /. float_of_int total

(* Everything above the timing line is deterministic for a fixed
   (plan, domains): totals and fingerprints are domain-count-invariant;
   cache and tracker figures depend on the lane partition but not on
   scheduling, so repeat runs are byte-identical (the CLI's
   [load --fingerprint] mode). *)
let print_load_summary ?(timing = true) plan r =
  Printf.printf "load: %s\n" (Format.asprintf "%a" Load.pp_summary plan);
  Printf.printf
    "  offered %d delivered %d synthetic-drops %d lost %d reordered %d \
     duplicates %d\n"
    r.offered r.delivered r.synthetic_drops r.lost r.reordered r.duplicates;
  Printf.printf
    "  flow-cache capacity %d hits %d misses %d hit-rate %.4f evictions %d \
     resident %d\n"
    r.cache_capacity r.cache_hits r.cache_misses (hit_rate r) r.cache_evictions
    r.cache_resident;
  Printf.printf "  trackers active %d resident %d peak %d ceiling %d\n"
    r.tracker_active r.tracker_resident r.tracker_resident_peak
    r.tracker_ceiling;
  (* Printed only when aging is armed, so default-off runs stay
     byte-identical to the pre-aging output. *)
  if r.tracker_idle_gens > 0 then
    Printf.printf "  tracker-aging idle-gens %d evictions %d\n"
      r.tracker_idle_gens r.tracker_evictions;
  Array.iteri
    (fun p n ->
      Printf.printf "  path %d delivered %d mean-owd %.4f ms\n" p n
        r.path_owd_ms.(p))
    r.path_delivered;
  Printf.printf "  policy default/best owd ratio %.4f\n" (default_over_best r);
  Printf.printf "  fingerprint %s merged %d\n" (fingerprint r) r.merged;
  if timing then
    Printf.printf
      "  domains %d batch %d wall %.3f s -> %.3f Mpps (%.4f major words/pkt)\n"
      r.domains r.batch r.wall_s (r.pps /. 1e6) r.major_words_per_packet
