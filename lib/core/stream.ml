module Engine = Tango_sim.Engine
module Packet = Tango_net.Packet
module Inorder = Tango_workload.Inorder

type Packet.content += Segment of int | Ack of int

type t = {
  sender : Pop.t;
  receiver : Pop.t;
  window : int;
  segment_bytes : int;
  route : [ `Policy | `Path of int ];
  min_rto_s : float;
  total_segments : int;
  engine : Engine.t;
  inorder : Inorder.t;
  sent_at : (int, float) Hashtbl.t;  (* outstanding original send times *)
  mutable base : int;  (* lowest unacked segment *)
  mutable cursor : int;  (* next segment to (re)transmit; rewinds on RTO *)
  mutable high_water : int;  (* highest segment ever transmitted + 1 *)
  mutable delivered : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable started_at : float;
  mutable completed_at : float option;
  mutable last_delivery_at : float;
  mutable max_stall : float;
  mutable timer_generation : int;  (* invalidates stale RTO timers *)
  (* AIMD congestion control: the in-flight budget is
     [min window cwnd]; timeouts halve ssthresh and re-enter slow
     start, which is what converts delay spikes into lost throughput. *)
  mutable cwnd : float;
  mutable ssthresh : float;
}

let max_rto_s = 2.0

let rto t =
  if Float.is_nan t.srtt then 0.2
  else Float.min max_rto_s (Float.max t.min_rto_s (t.srtt +. (4.0 *. t.rttvar)))

let update_rtt t sample =
  if Float.is_nan t.srtt then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.0
  end
  else begin
    let delta = abs_float (t.srtt -. sample) in
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. delta);
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
  end

let finished t = Option.is_some t.completed_at

let rec arm_timer t =
  if not (finished t) then begin
    let generation = t.timer_generation in
    Engine.schedule t.engine ~delay:(rto t) (fun _ ->
        if (not (finished t)) && generation = t.timer_generation then begin
          (* RTO fired with the window still outstanding: go-back-N,
             multiplicative decrease, slow-start restart. *)
          t.timeouts <- t.timeouts + 1;
          t.rttvar <- t.rttvar *. 2.0;
          t.ssthresh <- Float.max 2.0 (t.cwnd /. 2.0);
          t.cwnd <- 2.0;
          (* Go-back-N: rewind the send cursor to the lowest unacked
             segment and retransmit from there. *)
          t.cursor <- t.base;
          t.timer_generation <- t.timer_generation + 1;
          fill_window t;
          arm_timer t
        end)
  end

and effective_window t = max 1 (min t.window (int_of_float t.cwnd))

and fill_window t =
  let limit = min t.total_segments (t.base + effective_window t) in
  while t.cursor < limit do
    let seq = t.cursor in
    t.cursor <- seq + 1;
    if seq < t.high_water then begin
      (* Retransmission: not used for RTT sampling (Karn's rule). *)
      t.retransmissions <- t.retransmissions + 1;
      Hashtbl.remove t.sent_at seq
    end
    else begin
      t.high_water <- seq + 1;
      Hashtbl.replace t.sent_at seq (Engine.now t.engine)
    end;
    ignore
      (Pop.send_stream t.sender ~payload_bytes:t.segment_bytes ~route:t.route
         ~content:(Segment seq) ())
  done

let on_ack t ~now cumulative =
  if cumulative > t.base then begin
    (* RTT sample from the newest segment this ACK covers that was sent
       exactly once. *)
    (match Hashtbl.find_opt t.sent_at (cumulative - 1) with
    | Some sent -> update_rtt t (now -. sent)
    | None -> ());
    let acked = cumulative - t.base in
    for seq = t.base to cumulative - 1 do
      Hashtbl.remove t.sent_at seq
    done;
    t.base <- cumulative;
    if t.cursor < t.base then t.cursor <- t.base;
    (* Slow start below ssthresh, congestion avoidance above. *)
    for _ = 1 to acked do
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.0
      else t.cwnd <- t.cwnd +. (1.0 /. t.cwnd)
    done;
    t.timer_generation <- t.timer_generation + 1;
    if t.base >= t.total_segments then t.completed_at <- Some now
    else begin
      fill_window t;
      arm_timer t
    end
  end

let on_segment t ~now seq =
  let released = Inorder.arrival t.inorder ~seq ~time:now in
  List.iter
    (fun (_, at) ->
      if t.delivered > 0 || t.last_delivery_at > 0.0 then
        t.max_stall <- Float.max t.max_stall (at -. t.last_delivery_at);
      t.last_delivery_at <- at;
      t.delivered <- t.delivered + 1)
    released;
  (* Cumulative ACK for the in-order frontier, also sent on out-of-order
     arrivals (duplicate ACKs), riding the receiver's own route choice. *)
  ignore
    (Pop.send_stream t.receiver ~payload_bytes:40 ~route:t.route
       ~content:(Ack t.delivered) ())

let start ~sender ~receiver ?(window = 32) ?(segment_bytes = 1200)
    ?(route = `Policy) ?(min_rto_s = 0.05) ~total_segments () =
  if window < 1 then invalid_arg "Stream.start: window must be positive";
  if total_segments < 1 then invalid_arg "Stream.start: nothing to send";
  let t =
    {
      sender;
      receiver;
      window;
      segment_bytes;
      route;
      min_rto_s;
      total_segments;
      engine = Pop.engine_of sender;
      inorder = Inorder.create ();
      sent_at = Hashtbl.create 64;
      base = 0;
      cursor = 0;
      high_water = 0;
      delivered = 0;
      retransmissions = 0;
      timeouts = 0;
      srtt = nan;
      rttvar = nan;
      started_at = 0.0;
      completed_at = None;
      last_delivery_at = 0.0;
      max_stall = 0.0;
      timer_generation = 0;
      cwnd = 2.0;
      ssthresh = float_of_int window;
    }
  in
  t.started_at <- Engine.now t.engine;
  t.last_delivery_at <- t.started_at;
  Pop.set_stream_handler receiver (fun ~now packet ->
      match packet.Packet.content with
      | Some (Segment seq) -> on_segment t ~now seq
      | Some _ | None -> ());
  Pop.set_stream_handler sender (fun ~now packet ->
      match packet.Packet.content with
      | Some (Ack cumulative) -> on_ack t ~now cumulative
      | Some _ | None -> ());
  fill_window t;
  arm_timer t;
  t

let completed_at t = t.completed_at

let delivered_segments t = t.delivered

let retransmissions t = t.retransmissions

let timeouts t = t.timeouts

let goodput_mbps t =
  let stop = match t.completed_at with Some c -> c | None -> Engine.now t.engine in
  let elapsed = stop -. t.started_at in
  if elapsed <= 0.0 || t.delivered = 0 then 0.0
  else
    float_of_int (t.delivered * t.segment_bytes * 8) /. elapsed /. 1e6

let srtt_s t = t.srtt

let max_stall_s t = t.max_stall
