(** Per-packet path selection from live one-way measurements — the
    "logic for how a forwarding decision should be made based on path
    performance" of §3.

    Policies are stateful (hysteresis, dwell timers). The inputs are the
    per-path statistics the {e receiving} side measured and reported back
    (see {!Pop}); all values may be [nan] before measurements arrive, in
    which case policies fall back to the BGP-default path 0.

    Failover: the adaptive policies treat a path as unusable when its
    recent loss rate exceeds [max_loss] or its statistics are staler
    than [max_staleness_s] (a silent blackhole produces no fresh
    samples at all). An unusable current path is evacuated immediately,
    bypassing hysteresis and dwell.

    Flap damping: with [readmit_backoff_s] > 0, a path that recovers
    after its [n]th failure is banned as a switch target for
    [readmit_backoff_s * 2^(n-1)] seconds (capped at [backoff_max_s]),
    so a flapping path cannot drag the policy into oscillation. When
    {e every} path is unusable or banned, the policy enters a degraded
    mode: it pins the best-known path (lowest smoothed OWD ever
    reported, bans ignored) and holds it, raising one observability
    event per episode, until some path becomes usable again. *)

type path_stats = {
  path_id : int;
  owd_ewma_ms : float;  (** Smoothed one-way delay; [nan] if unmeasured. *)
  jitter_ms : float;  (** Live (EWMA) 1-s rolling stddev; [nan] if unmeasured. *)
  loss_rate : float;  (** Recent loss estimate in [0,1]. *)
  age_s : float;  (** Seconds since the newest sample behind these stats. *)
  samples : int;
}

val no_stats : path_id:int -> path_stats

type spec =
  | Bgp_default
      (** Always the provider's preferred path (path 0) — the status quo
          baseline. Never fails over. *)
  | Static of int  (** Pin one discovered path. Never fails over. *)
  | Lowest_owd of { hysteresis_ms : float; min_dwell_s : float }
      (** Chase the smallest smoothed OWD, switching only when the win
          exceeds [hysteresis_ms] and the current path has been held for
          [min_dwell_s]. *)
  | Jitter_aware of {
      beta : float;  (** Weight of jitter in the score: owd + beta*jitter. *)
      hysteresis_ms : float;
      min_dwell_s : float;
    }

val spec_to_string : spec -> string

type t

val create :
  ?max_loss:float ->
  ?max_staleness_s:float ->
  ?readmit_backoff_s:float ->
  ?backoff_max_s:float ->
  ?path_capacity:int ->
  spec ->
  t
(** Defaults: [max_loss] 0.25, [max_staleness_s] 1.0,
    [readmit_backoff_s] 0.0 (flap damping off), [backoff_max_s] 30.0,
    [path_capacity] 64. Per-path damping/ban state is preallocated flat
    at [path_capacity] so the scoring pass stays allocation-free (it is
    reachable from the [@hot] packet path); a path id at or beyond the
    capacity raises [Invalid_argument]. Raises [Invalid_argument] on a
    negative backoff, non-positive cap, or non-positive capacity. *)

val spec : t -> spec

val set_max_staleness_s : t -> float -> unit
(** Tune dead-path detection: statistics older than this are treated as
    a silent blackhole. {!Pop.start} derives it from the probe interval
    ([dead_after_probes] missed probes). Raises [Invalid_argument] on a
    non-positive value. *)

val max_staleness_s : t -> float

val choose : ?age_extra:float -> t -> now_s:float -> path_stats array -> int
(** Select a path id for the next packet. [age_extra] (default 0) is
    added to every path's [age_s] during staleness checks — callers with
    a stats array cached [age_extra] seconds ago pass the elapsed time
    instead of copying the array with re-based ages (the zero-alloc form
    of {!Pop.live_outbound_stats}). Raises [Invalid_argument] on an
    empty stats array. *)

val current : t -> int

val retarget : t -> path:int -> unit
(** Force the current selection (not counted as a switch) — used when a
    path-table swap shrinks the table under the policy's feet. Raises
    [Invalid_argument] on a negative path id. *)

val switches : t -> int
(** Number of path changes so far (control-plane churn metric). *)

val degraded : t -> bool
(** Whether the policy is currently in the all-paths-degraded mode
    (pinned to the best-known path, waiting for any path to recover). *)

val degraded_episodes : t -> int
(** Number of distinct all-paths-degraded episodes entered so far. *)

val readmit_banned : t -> path:int -> now_s:float -> bool
(** Whether [path] is currently serving a ban (re-admission or
    external). *)

val ban_remaining : t -> path:int -> now_s:float -> float
(** Seconds of ban left on [path] at [now_s] (0 when unbanned or out of
    range). Lets a caller that scheduled a readmission check at the
    original expiry detect that a later {!ban} extended the sentence. *)

val ban : t -> path:int -> now_s:float -> for_s:float -> unit
(** Externally ban [path] as a switch target for [for_s] seconds from
    [now_s] — the reconciler's drain of a path that churn removed from
    the table, reusing the flap-damping ban machinery. Never shortens an
    existing ban. Honored even with [readmit_backoff_s = 0]; a policy
    never banned this way pays nothing. Raises [Invalid_argument] on a
    negative path id or non-positive duration. *)

val unban : t -> path:int -> unit
(** Lift any ban on [path] (no-op for unknown paths) — used when a
    drained path is re-installed after recovery. *)

val fail_count : t -> path:int -> int
(** Consecutive-failure count backing [path]'s exponential backoff. *)
