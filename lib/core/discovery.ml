module Network = Tango_bgp.Network
module Community = Tango_bgp.Community
module As_path = Tango_bgp.As_path
module Topology = Tango_topo.Topology

type mechanism = [ `Communities | `Poisoning ]

type path = {
  index : int;
  communities : Community.Set.t;
  poisons : int list;
  as_path : As_path.t;
  transits : int list;
  label : string;
  floor_owd_ms : float;
}

let pp_path ppf p =
  Format.fprintf ppf "path %d (%s): [%a] via communities {%s}" p.index p.label
    As_path.pp p.as_path
    (String.concat ","
       (List.map Community.to_string (Community.Set.elements p.communities)))

type result = {
  paths : path list;
  iterations : int;
  convergence_time_s : float;
  messages : int;
  truncated : bool;
}

(* The ASNs of the providers fronting a server: stripped from observed
   paths to leave the transit sequence. *)
let provider_asns net node =
  let topo = Network.topology net in
  List.map (fun p -> Topology.asn topo p) (Topology.providers topo node)

let static_floor_ms net ~observer ~probe_prefix =
  let topo = Network.topology net in
  let addr = Tango_net.Prefix.nth_address probe_prefix 1L in
  match Network.forwarding_path net ~from_node:observer addr with
  | None -> infinity
  | Some nodes ->
      let rec sum = function
        | a :: (b :: _ as rest) -> (
            match Topology.link topo a b with
            | Some l -> l.Tango_topo.Link.delay_ms +. sum rest
            | None -> infinity)
        | [ _ ] | [] -> 0.0
      in
      sum nodes

let dedup_consecutive l =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = b then go rest else a :: go rest
    | ([ _ ] | []) as tail -> tail
  in
  go l

(* ------------------------------------------------------------------ *)
(* Per-iteration steps. [run] drives them synchronously (with a real
   converge between announce and observe); the control-plane
   reconciler drives the same steps asynchronously from engine events,
   with a scheduled settle delay instead of a recursive converge. *)

let communities_of suppressed =
  Community.Set.of_list
    (List.map
       (fun asn -> Community.action_to_community (Community.No_export_to asn))
       suppressed)

(* Under poisoning, the poisoned ASNs ride in the announced path
   itself; scrub them before reading the transit sequence or picking
   the next target. *)
let effective_of ~mechanism ~suppressed as_path =
  match mechanism with
  | `Communities -> as_path
  | `Poisoning ->
      As_path.of_list
        (List.filter
           (fun asn -> not (List.mem asn suppressed))
           (As_path.to_list as_path))

let announce_step ~net ~origin ~probe_prefix ~mechanism ~suppressed () =
  let communities =
    match mechanism with
    | `Communities -> communities_of suppressed
    | `Poisoning -> Community.Set.empty
  in
  let poison =
    match mechanism with `Communities -> [] | `Poisoning -> suppressed
  in
  Network.announce net ~node:origin probe_prefix ~communities ~poison ()

let observe_step ~net ~origin ~observer ~probe_prefix
    ?(mechanism = `Communities)
    ?(transit_namer = Tango_topo.Vultr.transit_name) ~suppressed ~index () =
  match Network.as_path net ~node:observer probe_prefix with
  | None -> None
  | Some as_path ->
      let strip = provider_asns net origin @ provider_asns net observer in
      let effective_path = effective_of ~mechanism ~suppressed as_path in
      let transits =
        As_path.to_list effective_path
        |> List.filter (fun asn -> not (List.mem asn strip))
        |> dedup_consecutive
      in
      let label =
        match List.rev transits with
        | [] -> "direct"
        | distinguishing :: _ -> transit_namer distinguishing
      in
      Some
        {
          index;
          communities =
            (match mechanism with
            | `Communities -> communities_of suppressed
            | `Poisoning -> Community.Set.empty);
          poisons =
            (match mechanism with `Communities -> [] | `Poisoning -> suppressed);
          as_path;
          transits;
          label;
          floor_owd_ms = static_floor_ms net ~observer ~probe_prefix;
        }

(* The next knob: suppress (or poison) the transit adjacent to the
   origin on the path just observed. When the origin's private ASN was
   stripped and only one provider hop remains, the provider itself is
   the knob — suppressing it is the "selective announcement" a
   multi-homed Tango site performs on its own exports. Returns the
   grown suppression set, or [None] when exploration is exhausted. *)
let next_suppression ~mechanism ~suppressed (p : path) =
  let effective = effective_of ~mechanism ~suppressed p.as_path in
  let next_target =
    match As_path.neighbor_of_origin effective with
    | Some n -> Some n
    | None -> As_path.origin_as effective
  in
  match next_target with
  | None -> None
  | Some next ->
      if List.mem next suppressed then None else Some (suppressed @ [ next ])

(* Replay [next_suppression] over an already-trusted path prefix: the
   suppression set discovery would hold after finding exactly these
   paths, in this order. *)
let suppression_of ~mechanism paths =
  List.fold_left
    (fun suppressed p ->
      match next_suppression ~mechanism ~suppressed p with
      | Some s -> s
      | None -> suppressed)
    [] paths

let run ~net ~origin ~observer ~probe_prefix ?(mechanism = `Communities)
    ?(max_paths = 16) ?(transit_namer = Tango_topo.Vultr.transit_name)
    ?(resume = []) ?message_budget ?(iteration_cost_hint = 0) () =
  let messages_before = Network.messages_delivered net in
  let spent () = Network.messages_delivered net - messages_before in
  let time_spent = ref 0.0 in
  let iterations = ref 0 in
  let truncated = ref false in
  (* Cost of the most expensive iteration so far: the budget gate is
     conservative — skip the next announce if it could overrun. *)
  let hint = ref iteration_cost_hint in
  let budget_allows () =
    match message_budget with None -> true | Some b -> spent () + !hint <= b
  in
  let rec explore suppressed acc index =
    if index >= max_paths then List.rev acc
    else if not (budget_allows ()) then begin
      truncated := true;
      List.rev acc
    end
    else begin
      let before_iter = spent () in
      announce_step ~net ~origin ~probe_prefix ~mechanism ~suppressed ();
      time_spent := !time_spent +. Network.converge net;
      incr iterations;
      hint := max !hint (spent () - before_iter);
      match
        observe_step ~net ~origin ~observer ~probe_prefix ~mechanism
          ~transit_namer ~suppressed ~index ()
      with
      | None -> List.rev acc
      | Some p
        when List.exists (fun q -> As_path.equal q.as_path p.as_path) acc ->
          (* Suppression had no effect (e.g. the provider does not honor
             the community): the path is not new, stop. *)
          List.rev acc
      | Some p -> (
          match next_suppression ~mechanism ~suppressed p with
          | None -> List.rev (p :: acc)
          | Some grown -> explore grown (p :: acc) (index + 1))
    end
  in
  let paths =
    explore
      (suppression_of ~mechanism resume)
      (List.rev resume) (List.length resume)
  in
  Network.withdraw net ~node:origin probe_prefix;
  time_spent := !time_spent +. Network.converge net;
  {
    paths;
    iterations = !iterations;
    convergence_time_s = !time_spent;
    messages = spent ();
    truncated = !truncated;
  }
