module Prefix = Tango_net.Prefix

type site = { name : string; clock_offset_ns : int64; policy : Policy.spec }

type t = {
  block : Prefix.t;
  probe_interval_s : float;
  report_interval_s : float;
  sites : site list;
}

let default =
  {
    block = Addressing.default_block;
    probe_interval_s = 0.01;
    report_interval_s = 0.1;
    sites =
      [
        {
          name = "LA";
          clock_offset_ns = 37_000_000L;
          policy = Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 1.0 };
        };
        {
          name = "NY";
          clock_offset_ns = -12_000_000L;
          policy = Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 1.0 };
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Ident of string
  | String_lit of string
  | Number of float
  | Lbrace
  | Rbrace
  | Semicolon

type positioned = { token : token; line : int }

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let tokenize input =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length input in
  let i = ref 0 in
  let push token = tokens := { token; line = !line } :: !tokens in
  let ident_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' | '/' | '+' -> true
    | _ -> false
  in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' then begin
      push Lbrace;
      incr i
    end
    else if c = '}' then begin
      push Rbrace;
      incr i
    end
    else if c = ';' then begin
      push Semicolon;
      incr i
    end
    else if c = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '"' && input.[!j] <> '\n' do
        incr j
      done;
      if !j >= n || input.[!j] <> '"' then fail !line "unterminated string";
      push (String_lit (String.sub input start (!j - start)));
      i := !j + 1
    end
    else if ident_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && ident_char input.[!j] do
        incr j
      done;
      let word = String.sub input start (!j - start) in
      i := !j;
      (* A word that reads as a number is a number; anything with a
         letter stays an identifier (so "2001:db8::/34" is an ident). *)
      match float_of_string_opt word with
      | Some v -> push (Number v)
      | None -> push (Ident word)
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

type stream = { mutable rest : positioned list; mutable last_line : int }

let peek s = match s.rest with [] -> None | t :: _ -> Some t

let advance s =
  match s.rest with
  | [] -> fail s.last_line "unexpected end of configuration"
  | t :: rest ->
      s.rest <- rest;
      s.last_line <- t.line;
      t

let expect s want ~what =
  let t = advance s in
  if t.token <> want then fail t.line "expected %s" what

let ident s ~what =
  let t = advance s in
  match t.token with
  | Ident v -> (v, t.line)
  | String_lit _ | Number _ | Lbrace | Rbrace | Semicolon ->
      fail t.line "expected %s" what

let number s ~what =
  let t = advance s in
  match t.token with
  | Number v -> v
  | Ident v -> (
      (* Allow negative numbers that lexed into idents like "-12". *)
      match float_of_string_opt v with
      | Some n -> n
      | None -> fail t.line "expected %s, got %S" what v)
  | String_lit _ | Lbrace | Rbrace | Semicolon -> fail t.line "expected %s" what

let string_lit s ~what =
  let t = advance s in
  match t.token with
  | String_lit v -> v
  | _ -> fail t.line "expected %s" what

(* key/value block: { key value; ... } returning an assoc list *)
let parse_kv_block s =
  expect s Lbrace ~what:"'{'";
  let rec go acc =
    match peek s with
    | Some { token = Rbrace; _ } ->
        ignore (advance s);
        List.rev acc
    | Some _ ->
        let key, line = ident s ~what:"a setting name" in
        let value = number s ~what:(Printf.sprintf "a number for %S" key) in
        expect s Semicolon ~what:"';'";
        go ((key, (value, line)) :: acc)
    | None -> fail s.last_line "unterminated block"
  in
  go []

let kv_find kvs key ~default = match List.assoc_opt key kvs with Some (v, _) -> v | None -> default

let kv_check_known kvs known =
  List.iter
    (fun (key, (_, line)) ->
      if not (List.mem key known) then fail line "unknown setting %S" key)
    kvs

let parse_policy s =
  let kind, line = ident s ~what:"a policy name" in
  match kind with
  | "bgp-default" ->
      expect s Semicolon ~what:"';'";
      Policy.Bgp_default
  | "static" ->
      let v = number s ~what:"a path id" in
      expect s Semicolon ~what:"';'";
      Policy.Static (int_of_float v)
  | "lowest-owd" ->
      let kvs = parse_kv_block s in
      kv_check_known kvs [ "hysteresis-ms"; "dwell-s" ];
      Policy.Lowest_owd
        {
          hysteresis_ms = kv_find kvs "hysteresis-ms" ~default:1.0;
          min_dwell_s = kv_find kvs "dwell-s" ~default:1.0;
        }
  | "jitter-aware" ->
      let kvs = parse_kv_block s in
      kv_check_known kvs [ "beta"; "hysteresis-ms"; "dwell-s" ];
      Policy.Jitter_aware
        {
          beta = kv_find kvs "beta" ~default:5.0;
          hysteresis_ms = kv_find kvs "hysteresis-ms" ~default:1.0;
          min_dwell_s = kv_find kvs "dwell-s" ~default:1.0;
        }
  | other -> fail line "unknown policy %S" other

let parse_site s =
  let name = string_lit s ~what:"a quoted site name" in
  expect s Lbrace ~what:"'{'";
  let clock_offset = ref 0L in
  let policy = ref (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 1.0 }) in
  let rec go () =
    match peek s with
    | Some { token = Rbrace; _ } -> ignore (advance s)
    | Some _ ->
        let key, line = ident s ~what:"a site setting" in
        (match key with
        | "clock-offset-ns" ->
            clock_offset := Int64.of_float (number s ~what:"an offset");
            expect s Semicolon ~what:"';'"
        | "policy" -> policy := parse_policy s
        | other -> fail line "unknown site setting %S" other);
        go ()
    | None -> fail s.last_line "unterminated site block"
  in
  go ();
  { name; clock_offset_ns = !clock_offset; policy = !policy }

let parse input =
  match tokenize input with
  | exception Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | tokens -> (
      let s = { rest = tokens; last_line = 1 } in
      let block = ref default.block in
      let probe = ref default.probe_interval_s in
      let report = ref default.report_interval_s in
      let sites = ref [] in
      let rec go () =
        match peek s with
        | None -> ()
        | Some _ ->
            let key, line = ident s ~what:"a top-level directive" in
            (match key with
            | "block" ->
                let v, vline = ident s ~what:"a prefix" in
                (match Prefix.of_string v with
                | Ok p -> block := p
                | Error e -> fail vline "%s" e);
                expect s Semicolon ~what:"';'"
            | "measurement" ->
                let kvs = parse_kv_block s in
                kv_check_known kvs [ "probe-interval"; "report-interval" ];
                probe := kv_find kvs "probe-interval" ~default:!probe;
                report := kv_find kvs "report-interval" ~default:!report
            | "site" ->
                let site = parse_site s in
                if List.exists (fun x -> x.name = site.name) !sites then
                  fail line "duplicate site %S" site.name;
                sites := site :: !sites
            | other -> fail line "unknown directive %S" other);
            go ()
      in
      match go () with
      | exception Parse_error (line, msg) ->
          Error (Printf.sprintf "line %d: %s" line msg)
      | () ->
          if !probe <= 0.0 || !report <= 0.0 then
            Error "measurement intervals must be positive"
          else
            Ok
              {
                block = !block;
                probe_interval_s = !probe;
                report_interval_s = !report;
                sites = (match !sites with [] -> default.sites | sites -> List.rev sites);
              })

let parse_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      parse content

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)

let policy_to_syntax = function
  | Policy.Bgp_default -> "policy bgp-default;"
  | Policy.Static i -> Printf.sprintf "policy static %d;" i
  | Policy.Lowest_owd { hysteresis_ms; min_dwell_s } ->
      Printf.sprintf "policy lowest-owd { hysteresis-ms %g; dwell-s %g; }"
        hysteresis_ms min_dwell_s
  | Policy.Jitter_aware { beta; hysteresis_ms; min_dwell_s } ->
      Printf.sprintf "policy jitter-aware { beta %g; hysteresis-ms %g; dwell-s %g; }"
        beta hysteresis_ms min_dwell_s

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "block %s;\n\n" (Prefix.to_string t.block));
  Buffer.add_string buf
    (Printf.sprintf "measurement {\n  probe-interval %g;\n  report-interval %g;\n}\n"
       t.probe_interval_s t.report_interval_s);
  List.iter
    (fun site ->
      Buffer.add_string buf
        (Printf.sprintf "\nsite \"%s\" {\n  clock-offset-ns %Ld;\n  %s\n}\n"
           site.name site.clock_offset_ns (policy_to_syntax site.policy)))
    t.sites;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Application                                                         *)

let measurement_args t = (t.probe_interval_s, t.report_interval_s)

let apply_vultr t =
  let find name = List.find_opt (fun s -> s.name = name) t.sites in
  match (find "LA", find "NY", List.length t.sites) with
  | Some la, Some ny, 2 ->
      Ok
        (Pair.setup_vultr ~policy_la:la.policy ~policy_ny:ny.policy
           ~clock_offset_la_ns:la.clock_offset_ns
           ~clock_offset_ny_ns:ny.clock_offset_ns ())
  | _ -> Error "apply_vultr needs exactly two sites named \"LA\" and \"NY\""
