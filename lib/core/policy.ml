module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability (DESIGN.md §8): emergency evacuations are
   the data-driven failovers of E9, distinct from ordinary switches. *)
let m_evacuations =
  Metric.counter
    ~help:"Emergency path evacuations (current path unusable, hysteresis bypassed)"
    "pop_failover_evacuations_total"

let k_evacuation = Trace.kind "pop.evacuation"

type path_stats = {
  path_id : int;
  owd_ewma_ms : float;
  jitter_ms : float;
  loss_rate : float;
  age_s : float;
  samples : int;
}

let no_stats ~path_id =
  { path_id; owd_ewma_ms = nan; jitter_ms = nan; loss_rate = 0.0; age_s = infinity; samples = 0 }

type spec =
  | Bgp_default
  | Static of int
  | Lowest_owd of { hysteresis_ms : float; min_dwell_s : float }
  | Jitter_aware of { beta : float; hysteresis_ms : float; min_dwell_s : float }

let spec_to_string = function
  | Bgp_default -> "bgp-default"
  | Static i -> Printf.sprintf "static-%d" i
  | Lowest_owd _ -> "lowest-owd"
  | Jitter_aware _ -> "jitter-aware"

type t = {
  spec : spec;
  max_loss : float;
  max_staleness_s : float;
  mutable current : int;
  mutable last_switch_s : float;
  mutable switches : int;
}

let create ?(max_loss = 0.25) ?(max_staleness_s = 1.0) spec =
  let current = match spec with Static i -> i | _ -> 0 in
  { spec; max_loss; max_staleness_s; current; last_switch_s = neg_infinity; switches = 0 }

let spec t = t.spec

let usable t stats =
  stats.samples > 0
  && (not (Float.is_nan stats.owd_ewma_ms))
  && stats.loss_rate <= t.max_loss
  && stats.age_s <= t.max_staleness_s

let score t ~beta stats =
  if not (usable t stats) then infinity
  else begin
    let jitter = if Float.is_nan stats.jitter_ms then 0.0 else stats.jitter_ms in
    stats.owd_ewma_ms +. (beta *. jitter)
  end

let adaptive t ~now_s ~beta ~hysteresis_ms ~min_dwell_s stats =
  let current_stats =
    Array.fold_left
      (fun acc s -> if s.path_id = t.current then Some s else acc)
      None stats
  in
  let current_usable =
    match current_stats with Some s -> usable t s | None -> false
  in
  let current_score =
    match current_stats with Some s -> score t ~beta s | None -> infinity
  in
  let best_id, best_score =
    Array.fold_left
      (fun (best_id, best_score) s ->
        let sc = score t ~beta s in
        if sc < best_score then (s.path_id, sc) else (best_id, best_score))
      (t.current, current_score) stats
  in
  let emergency =
    (* The path under our feet went bad: leave at once, ignoring
       hysteresis and dwell — but only toward a usable alternative. *)
    (not current_usable) && best_id <> t.current && best_score < infinity
  in
  let improvement =
    best_id <> t.current
    && best_score < current_score -. hysteresis_ms
    && now_s -. t.last_switch_s >= min_dwell_s
  in
  if emergency || improvement then begin
    if emergency then begin
      Metric.incr m_evacuations;
      Trace.record Trace.default ~now:now_s ~kind:k_evacuation t.current best_id
    end;
    t.current <- best_id;
    t.last_switch_s <- now_s;
    t.switches <- t.switches + 1
  end;
  t.current

let choose t ~now_s stats =
  if Array.length stats = 0 then invalid_arg "Policy.choose: no paths";
  match t.spec with
  | Bgp_default -> 0
  | Static i -> i
  | Lowest_owd { hysteresis_ms; min_dwell_s } ->
      adaptive t ~now_s ~beta:0.0 ~hysteresis_ms ~min_dwell_s stats
  | Jitter_aware { beta; hysteresis_ms; min_dwell_s } ->
      adaptive t ~now_s ~beta ~hysteresis_ms ~min_dwell_s stats

let current t = t.current

let switches t = t.switches
