module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability (DESIGN.md §8): emergency evacuations are
   the data-driven failovers of E9, distinct from ordinary switches. *)
let m_evacuations =
  Metric.counter
    ~help:"Emergency path evacuations (current path unusable, hysteresis bypassed)"
    "pop_failover_evacuations_total"

let m_all_degraded =
  Metric.counter
    ~help:"Episodes in which every path was unusable and the policy pinned \
           the best-known path"
    "pop_all_paths_degraded_total"

let m_readmit_bans =
  Metric.counter
    ~help:"Re-admission bans applied to flapping paths (exponential backoff)"
    "pop_readmit_bans_total"

let h_detection =
  Metric.histogram
    ~help:"Staleness of the abandoned path's statistics at emergency \
           failover (seconds) — how long the dead path went undetected"
    ~lo_exp:(-10) ~buckets:24 "pop_failover_detection_seconds"

let k_evacuation = Trace.kind "pop.evacuation"

let k_degraded = Trace.kind "pop.all_degraded"

let k_readmit_ban = Trace.kind "pop.readmit_ban"

type path_stats = {
  path_id : int;
  owd_ewma_ms : float;
  jitter_ms : float;
  loss_rate : float;
  age_s : float;
  samples : int;
}

let no_stats ~path_id =
  { path_id; owd_ewma_ms = nan; jitter_ms = nan; loss_rate = 0.0; age_s = infinity; samples = 0 }

type spec =
  | Bgp_default
  | Static of int
  | Lowest_owd of { hysteresis_ms : float; min_dwell_s : float }
  | Jitter_aware of { beta : float; hysteresis_ms : float; min_dwell_s : float }

let spec_to_string = function
  | Bgp_default -> "bgp-default"
  | Static i -> Printf.sprintf "static-%d" i
  | Lowest_owd _ -> "lowest-owd"
  | Jitter_aware _ -> "jitter-aware"

(* Per-path flap-damping state, kept as parallel flat arrays sized once
   at [create]: the scoring pass is reachable from [@hot] code
   (Pop.refresh_policy), so the state must never grow — lazily growing
   a record array here used to be three grandfathered hot-reach
   findings. [was_usable] tracks the raw measurement verdict (bans
   excluded), so a ban cannot re-trigger itself. *)
type t = {
  spec : spec;
  max_loss : float;
  mutable max_staleness_s : float;
  (* Exponential backoff on re-admitting a path that keeps failing:
     after its [n]th failure a recovered path must wait
     [readmit_backoff_s * 2^(n-1)] (capped at [backoff_max_s]) before it
     is eligible again. 0 disables the mechanism entirely. *)
  readmit_backoff_s : float;
  backoff_max_s : float;
  (* Set the first time an external ban ({!ban}) is applied, so the
     default (no reconciler, no backoff) scoring pass never has to
     consult per-path ban state. *)
  mutable external_bans : bool;
  capacity : int;
  was_usable : Bytes.t;
  fails : int array;
  banned_until : float array;
  last_down : float array;
  mutable current : int;
  mutable last_switch_s : float;
  mutable switches : int;
  mutable degraded : bool;
  mutable degraded_episodes : int;
}

let create ?(max_loss = 0.25) ?(max_staleness_s = 1.0) ?(readmit_backoff_s = 0.0)
    ?(backoff_max_s = 30.0) ?(path_capacity = 64) spec =
  if readmit_backoff_s < 0.0 then
    invalid_arg "Policy.create: negative readmit backoff";
  if backoff_max_s <= 0.0 then invalid_arg "Policy.create: non-positive backoff cap";
  if path_capacity <= 0 then invalid_arg "Policy.create: non-positive path capacity";
  let current = match spec with Static i -> i | _ -> 0 in
  {
    spec;
    max_loss;
    max_staleness_s;
    readmit_backoff_s;
    backoff_max_s;
    external_bans = false;
    capacity = path_capacity;
    was_usable = Bytes.make path_capacity '\000';
    fails = Array.make path_capacity 0;
    banned_until = Array.make path_capacity neg_infinity;
    last_down = Array.make path_capacity neg_infinity;
    current;
    last_switch_s = neg_infinity;
    switches = 0;
    degraded = false;
    degraded_episodes = 0;
  }

let spec t = t.spec

let set_max_staleness_s t s =
  if s <= 0.0 then invalid_arg "Policy.set_max_staleness_s: non-positive";
  t.max_staleness_s <- s

let max_staleness_s t = t.max_staleness_s

let[@hot] path_check t id =
  if id < 0 || id >= t.capacity then
    invalid_arg "Policy: path id outside the preallocated capacity"

(* [age_extra] re-bases a stats array measured [age_extra] seconds ago
   to the present without copying it: callers on the hot path (see
   Pop.refresh_policy) pass their raw cached array plus the elapsed
   time instead of materializing a rebased copy per evaluation. *)
let usable t ~age_extra stats =
  stats.samples > 0
  && (not (Float.is_nan stats.owd_ewma_ms))
  && stats.loss_rate <= t.max_loss
  && stats.age_s +. age_extra <= t.max_staleness_s

let score t ~beta ~age_extra stats =
  if not (usable t ~age_extra stats) then infinity
  else begin
    let jitter = if Float.is_nan stats.jitter_ms then 0.0 else stats.jitter_ms in
    stats.owd_ewma_ms +. (beta *. jitter)
  end

(* One bookkeeping pass per path per scoring pass: track up/down
   transitions of the raw measurement verdict and maintain the
   re-admission ban. Returns whether the path is eligible as a switch
   target (measurably usable and not serving a ban). *)
let update_damping t ~now_s ~meas stats =
  let id = stats.path_id in
  path_check t id;
  let was = Bytes.unsafe_get t.was_usable id <> '\000' in
  if was && not meas then begin
    (* Down transition. An isolated failure long after the previous one
       restarts the doubling rather than continuing it. *)
    t.fails.(id) <-
      (if now_s -. t.last_down.(id) > t.backoff_max_s *. 4.0 then 1
       else t.fails.(id) + 1);
    t.last_down.(id) <- now_s
  end
  else if (not was) && meas && t.fails.(id) > 0 then begin
    (* Up transition of a path with a failure history: it must hold for
       the (exponentially growing, capped) backoff window before it is
       eligible again. *)
    let backoff =
      Float.min t.backoff_max_s
        (t.readmit_backoff_s *. (2.0 ** float_of_int (t.fails.(id) - 1)))
    in
    t.banned_until.(id) <- now_s +. backoff;
    Metric.incr m_readmit_bans;
    Trace.record Trace.default ~now:now_s ~kind:k_readmit_ban id t.fails.(id)
  end;
  Bytes.unsafe_set t.was_usable id (if meas then '\001' else '\000');
  meas && now_s >= t.banned_until.(id)

let update_path_state t ~now_s ~age_extra stats =
  let meas = usable t ~age_extra stats in
  (* With re-admission backoff disabled (the default) the damping state
     machine is never consulted, so skip its bookkeeping entirely and
     keep the scoring pass at the pre-damping cost. External bans (the
     reconciler's drain of removed paths) must still hold, but only
     once one has actually been applied. *)
  if t.readmit_backoff_s > 0.0 then update_damping t ~now_s ~meas stats
  else if t.external_bans then begin
    path_check t stats.path_id;
    meas && now_s >= t.banned_until.(stats.path_id)
  end
  else meas

let observe_detection ~age_extra stats =
  match stats with
  | Some s when Float.is_finite s.age_s ->
      Metric.observe h_detection (s.age_s +. age_extra)
  | Some _ | None -> ()

let adaptive t ~now_s ~beta ~hysteresis_ms ~min_dwell_s ~age_extra stats =
  let current_stats = ref None in
  (* Best switch target over eligible paths; best-known path by smoothed
     OWD alone, for the all-degraded fallback (bans and staleness
     deliberately ignored — when everything is dead, the least-bad
     history wins). A plain indexed loop: an [Array.iter] closure here
     was a grandfathered hot-reach finding. *)
  let best_id = ref t.current and best_score = ref infinity in
  let best_known_id = ref t.current and best_known_owd = ref infinity in
  for i = 0 to Array.length stats - 1 do
    let s = stats.(i) in
    let eligible = update_path_state t ~now_s ~age_extra s in
    if s.path_id = t.current then current_stats := Some s;
    let sc = if eligible then score t ~beta ~age_extra s else infinity in
    if sc < !best_score then begin
      best_id := s.path_id;
      best_score := sc
    end;
    if
      s.samples > 0
      && (not (Float.is_nan s.owd_ewma_ms))
      && s.owd_ewma_ms < !best_known_owd
    then begin
      best_known_id := s.path_id;
      best_known_owd := s.owd_ewma_ms
    end
  done;
  let current_usable =
    match !current_stats with Some s -> usable t ~age_extra s | None -> false
  in
  let current_score =
    match !current_stats with Some s -> score t ~beta ~age_extra s | None -> infinity
  in
  if (not current_usable) && not (Float.is_finite !best_score) then begin
    (* Every path is unusable or banned: pin the best-known path and
       hold, raising one observability event per episode. Before any
       path has ever been measured there is nothing to degrade {e from}
       — hold the starting path silently instead. *)
    if !best_known_owd < infinity && not t.degraded then begin
      t.degraded <- true;
      t.degraded_episodes <- t.degraded_episodes + 1;
      Metric.incr m_all_degraded;
      Trace.record Trace.default ~now:now_s ~kind:k_degraded t.current !best_known_id;
      observe_detection ~age_extra !current_stats;
      if !best_known_id <> t.current then begin
        t.current <- !best_known_id;
        t.last_switch_s <- now_s;
        t.switches <- t.switches + 1
      end
    end
  end
  else begin
    (* At least one eligible target (or the current path recovered):
       any degraded episode is over. *)
    if t.degraded then t.degraded <- false;
    let emergency =
      (* The path under our feet went bad: leave at once, ignoring
         hysteresis and dwell — but only toward a usable alternative. *)
      (not current_usable) && !best_id <> t.current && !best_score < infinity
    in
    let improvement =
      !best_id <> t.current
      && !best_score < current_score -. hysteresis_ms
      && now_s -. t.last_switch_s >= min_dwell_s
    in
    if emergency || improvement then begin
      if emergency then begin
        Metric.incr m_evacuations;
        Trace.record Trace.default ~now:now_s ~kind:k_evacuation t.current !best_id;
        observe_detection ~age_extra !current_stats
      end;
      t.current <- !best_id;
      t.last_switch_s <- now_s;
      t.switches <- t.switches + 1
    end
  end;
  t.current

let choose ?(age_extra = 0.0) t ~now_s stats =
  if Array.length stats = 0 then invalid_arg "Policy.choose: no paths";
  match t.spec with
  | Bgp_default -> 0
  | Static i -> i
  | Lowest_owd { hysteresis_ms; min_dwell_s } ->
      adaptive t ~now_s ~beta:0.0 ~hysteresis_ms ~min_dwell_s ~age_extra stats
  | Jitter_aware { beta; hysteresis_ms; min_dwell_s } ->
      adaptive t ~now_s ~beta ~hysteresis_ms ~min_dwell_s ~age_extra stats

let current t = t.current

let retarget t ~path =
  if path < 0 then invalid_arg "Policy.retarget: negative path id";
  t.current <- path

let switches t = t.switches

let degraded t = t.degraded

let degraded_episodes t = t.degraded_episodes

let[@hot] readmit_banned t ~path ~now_s =
  path >= 0 && path < t.capacity && now_s < t.banned_until.(path)

let ban_remaining t ~path ~now_s =
  if path < 0 || path >= t.capacity then 0.0
  else Float.max 0.0 (t.banned_until.(path) -. now_s)

let[@hot] ban t ~path ~now_s ~for_s =
  if path < 0 then invalid_arg "Policy.ban: negative path id";
  if for_s <= 0.0 then invalid_arg "Policy.ban: non-positive duration";
  path_check t path;
  t.banned_until.(path) <- Float.max t.banned_until.(path) (now_s +. for_s);
  t.external_bans <- true

let unban t ~path =
  if path >= 0 && path < t.capacity then t.banned_until.(path) <- neg_infinity

let fail_count t ~path =
  if path >= 0 && path < t.capacity then t.fails.(path) else 0
