module Fabric = Tango_dataplane.Fabric
module Engine = Tango_sim.Engine
module Packet = Tango_net.Packet
module Flow = Tango_net.Flow

type lane = { offset_ms : float; flows : int }

type t = { lanes : lane list; spread_ms : float }

let cluster ~tolerance_ms values =
  if tolerance_ms <= 0.0 then invalid_arg "Ecmp_map.cluster: non-positive tolerance";
  let sorted = List.sort Float.compare values in
  let flush sum n acc = if n = 0 then acc else (sum /. float_of_int n, n) :: acc in
  let rec go sum n acc = function
    | [] -> List.rev (flush sum n acc)
    | v :: rest ->
        if n = 0 then go v 1 acc rest
        else begin
          let mean = sum /. float_of_int n in
          if v -. mean <= tolerance_ms then go (sum +. v) (n + 1) acc rest
          else go v 1 (flush sum n acc) rest
        end
  in
  go 0.0 0 [] sorted

let infer ~tolerance_ms floors =
  if List.is_empty floors then invalid_arg "Ecmp_map.infer: no observations";
  let clusters = cluster ~tolerance_ms (List.map snd floors) in
  let fastest = match clusters with (m, _) :: _ -> m | [] -> assert false in
  let lanes =
    List.map (fun (mean, n) -> { offset_ms = mean -. fastest; flows = n }) clusters
  in
  let spread_ms =
    match List.rev lanes with l :: _ -> l.offset_ms | [] -> 0.0
  in
  { lanes; spread_ms }

let probe ~fabric ~from_node ~src ~dst ?(flows = 64) ?(probes_per_flow = 10)
    ?(interval_s = 0.002) ?(tolerance_ms = 0.5) () =
  if flows <= 0 || probes_per_flow <= 0 then
    invalid_arg "Ecmp_map.probe: need positive flow/probe counts";
  let engine = Tango_bgp.Network.engine (Fabric.network fabric) in
  let floors = Hashtbl.create flows in
  for i = 0 to (flows * probes_per_flow) - 1 do
    let flow_id = i mod flows in
    Engine.schedule engine ~delay:(float_of_int i *. interval_s) (fun e ->
        let sent_at = Engine.now e in
        let flow =
          Flow.v ~src ~dst ~proto:17 ~src_port:(41_000 + flow_id) ~dst_port:7
        in
        let packet = Packet.create ~id:i ~flow ~payload_bytes:64 ~created_at:sent_at () in
        Fabric.send fabric ~from_node
          ~on_delivered:(fun ~node:_ _ ->
            let owd_ms = (Engine.now e -. sent_at) *. 1000.0 in
            let current =
              Option.value ~default:infinity (Hashtbl.find_opt floors flow_id)
            in
            Hashtbl.replace floors flow_id (Float.min current owd_ms))
          packet)
  done;
  Engine.run engine;
  infer ~tolerance_ms
    (Hashtbl.fold (fun id v acc -> (id, v) :: acc) floors []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
