(** Multicore batched dataplane throughput (DESIGN.md §11, experiment
    E14).

    Runs the full per-packet path — flow-cache path decision, Tango
    encapsulation, batched fabric forwarding, decapsulation, sequence
    tracking — over a deterministic multi-path workload, flow-sharded
    across OCaml 5 domain lanes with a deterministic merge
    ({!Tango_sim.Shard}). Seeded runs produce identical delivered-packet
    fingerprints and identical loss/reorder totals at {e any} domain
    count and batch size; only the wall-clock/pps figures vary. *)

type result = {
  domains : int;
  batch : int;  (** Flush threshold used, in [1, Batch.capacity]. *)
  flows : int;
  generations : int;
  offered : int;  (** Packets put on the wire (scheduled sends). *)
  delivered : int;
  synthetic_drops : int;  (** Deterministic pre-fabric loss. *)
  lost : int;  (** Summed per-flow tracker losses. *)
  reordered : int;
  duplicates : int;
  cache_hits : int;
  cache_misses : int;
  cache_capacity : int;  (** Per-lane flow-cache bound; 0 = unbounded. *)
  cache_evictions : int;  (** Clock-hand victims, summed over lanes. *)
  cache_resident : int;  (** Cached entries at quiesce, summed over lanes. *)
  tracker_active : int;  (** Trackers that saw traffic, summed over lanes. *)
  tracker_resident : int;  (** Provisional-missing entries at quiesce. *)
  tracker_resident_peak : int;
      (** Sum of per-lane resident high-water marks — an upper bound on
          the true process-wide peak. *)
  tracker_ceiling : int;  (** Per-lane advisory bound; 0 = none. *)
  tracker_idle_gens : int;  (** Tracker aging horizon; 0 = off. *)
  tracker_evictions : int;
      (** Idle trackers expired by generation sweeps, summed over
          lanes. *)
  path_delivered : int array;  (** Deliveries per path id. *)
  path_owd_ms : float array;  (** Mean one-way delay per path id. *)
  merged : int;  (** Records the reducer consumed (= delivered). *)
  fingerprint_sum : int;
  fingerprint_xor : int;
  wall_s : float;  (** Wall time of the parallel phase only. *)
  pps : float;  (** offered / wall_s. *)
  major_words_per_packet : float;
      (** Major-heap words allocated inside the lanes' generation loops,
          per offered packet — the steady-path allocation gate (the
          packet path itself allocates only minor words that die young;
          residual promotions come from live bookkeeping state, bounded
          by {!Tango_dataplane.Seq_tracker.confirm_below} pruning). *)
}

val run :
  ?domains:int ->
  ?batch:int ->
  ?flows:int ->
  ?generations:int ->
  ?seed:int ->
  ?plan:Tango_workload.Load.plan ->
  ?cache_capacity:int ->
  ?tracker_ceiling:int ->
  ?tracker_idle_gens:int ->
  unit ->
  result
(** Defaults: 1 domain, batch 64, 512 flows, 2000 generations, seed 42.
    Builds one independent world (star topology, converged BGP tables,
    fabric) per lane on the main domain, then runs the lanes in
    parallel and reduces. Raises [Failure] if any packet left the
    batched direct path (the pipeline's zero-fallback invariant), and
    [Invalid_argument] for out-of-range parameters ([batch] must lie in
    [1, 64]).

    [plan] swaps the uniform full-mesh workload for a
    {!Tango_workload.Load} schedule ([flows] and [generations] are then
    taken from the plan) over a tighter path-delay ladder (1.0–1.9 ms)
    whose default-over-best ratio reproduces E2's ~30% gap.
    [cache_capacity] bounds each lane's flow cache (clock-hand
    eviction); [tracker_ceiling] is the per-lane advisory bound on
    resident tracker state; [tracker_idle_gens] (default 0 = off)
    expires trackers whose flow has been idle for more than that many
    generations, freeing their provisional state
    ({!Tango_dataplane.Seq_tracker.Table.advance_generation}). *)

val fingerprint : result -> string
(** Printable order-insensitive digest of every delivered packet record
    (identical across domain counts and batch sizes for a fixed seeded
    workload). *)

val print_summary : ?timing:bool -> result -> unit
(** Print the run to stdout. The leading lines are deterministic for a
    seeded workload; [timing] (default true) appends the
    wall-clock/domains/pps line — pass [false] for byte-comparable
    output (the CLI's [--fingerprint] mode). *)

val default_over_best : result -> float
(** Mean one-way delay on path 1 (the BGP-default route of the load
    topology) over path 0 (the best cooperative route) — the E2
    policy-quality ratio as measured under load; [0.] when path 0 saw
    no traffic. *)

val hit_rate : result -> float
(** Flow-cache [hits / (hits + misses)]; [0.] before any lookup. *)

val print_load_summary : ?timing:bool -> Tango_workload.Load.plan -> result -> unit
(** Load-engine report: workload composition, delivery/loss totals,
    cache and tracker residency, per-path delivery + mean one-way
    delay, the policy-quality ratio, and the fingerprint. Everything
    above the [timing] line is deterministic for a fixed
    (plan, domains). *)
