(** Multicore batched dataplane throughput (DESIGN.md §11, experiment
    E14).

    Runs the full per-packet path — flow-cache path decision, Tango
    encapsulation, batched fabric forwarding, decapsulation, sequence
    tracking — over a deterministic multi-path workload, flow-sharded
    across OCaml 5 domain lanes with a deterministic merge
    ({!Tango_sim.Shard}). Seeded runs produce identical delivered-packet
    fingerprints and identical loss/reorder totals at {e any} domain
    count and batch size; only the wall-clock/pps figures vary. *)

type result = {
  domains : int;
  batch : int;  (** Flush threshold used, in [1, Batch.capacity]. *)
  flows : int;
  generations : int;
  offered : int;  (** flows x generations. *)
  delivered : int;
  synthetic_drops : int;  (** Deterministic pre-fabric loss. *)
  lost : int;  (** Summed per-flow tracker losses. *)
  reordered : int;
  duplicates : int;
  cache_hits : int;
  cache_misses : int;
  merged : int;  (** Records the reducer consumed (= delivered). *)
  fingerprint_sum : int;
  fingerprint_xor : int;
  wall_s : float;  (** Wall time of the parallel phase only. *)
  pps : float;  (** offered / wall_s. *)
  major_words_per_packet : float;
      (** Major-heap words allocated inside the lanes' generation loops,
          per offered packet — the steady-path allocation gate (the
          packet path itself allocates only minor words that die young;
          residual promotions come from live bookkeeping state, bounded
          by {!Tango_dataplane.Seq_tracker.confirm_below} pruning). *)
}

val run :
  ?domains:int ->
  ?batch:int ->
  ?flows:int ->
  ?generations:int ->
  ?seed:int ->
  unit ->
  result
(** Defaults: 1 domain, batch 64, 512 flows, 2000 generations, seed 42.
    Builds one independent world (star topology, converged BGP tables,
    fabric) per lane on the main domain, then runs the lanes in
    parallel and reduces. Raises [Failure] if any packet left the
    batched direct path (the pipeline's zero-fallback invariant), and
    [Invalid_argument] for out-of-range parameters ([batch] must lie in
    [1, 64]). *)

val fingerprint : result -> string
(** Printable order-insensitive digest of every delivered packet record
    (identical across domain counts and batch sizes for a fixed seeded
    workload). *)

val print_summary : ?timing:bool -> result -> unit
(** Print the run to stdout. The leading lines are deterministic for a
    seeded workload; [timing] (default true) appends the
    wall-clock/domains/pps line — pass [false] for byte-comparable
    output (the CLI's [--fingerprint] mode). *)
