module Engine = Tango_sim.Engine
module Stats = Tango_sim.Stats
module Packet = Tango_net.Packet
module Flow = Tango_net.Flow
module Addr = Tango_net.Addr
module Fabric = Tango_dataplane.Fabric
module Clock = Tango_dataplane.Clock
module Tunnel = Tango_dataplane.Tunnel
module Seq_tracker = Tango_dataplane.Seq_tracker
module Flow_cache = Tango_dataplane.Flow_cache
module Batch = Tango_dataplane.Batch
module Series = Tango_telemetry.Series
module Ewma = Tango_telemetry.Ewma
module Jitter = Tango_telemetry.Jitter
module Detect = Tango_telemetry.Detect
module Inorder = Tango_workload.Inorder
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability, aggregated across PoPs (DESIGN.md §8). *)
let m_policy_evals =
  Metric.counter ~help:"Full policy scoring passes" "pop_policy_evals_total"

let m_path_switches =
  Metric.counter ~help:"Preferred-path changes" "pop_path_switches_total"

let m_cache_hits =
  Metric.counter ~help:"Per-flow path-decision cache hits" "pop_flow_cache_hits_total"

let m_cache_misses =
  Metric.counter ~help:"Per-flow path-decision cache misses"
    "pop_flow_cache_misses_total"

let m_probes_sent = Metric.counter ~help:"Probe packets sent" "pop_probes_sent_total"

let m_probes_received =
  Metric.counter ~help:"Probe packets received" "pop_probes_received_total"

let m_reports_received =
  Metric.counter ~help:"Peer stat reports received" "pop_reports_received_total"

let m_app_received =
  Metric.counter ~help:"Application packets delivered to the host"
    "pop_app_received_total"

let m_transited =
  Metric.counter ~help:"Packets relayed onward for the overlay"
    "pop_transit_relayed_total"

let k_path_switch = Trace.kind "pop.path_switch"

let probe_port = 7

let report_port = 4790

let app_port = 5000

let stream_port = 5001

let ctrl_port = 4791

let max_paths = 16

type Packet.content += App_seq of int | Report of Policy.path_stats array

type t = {
  name : string;
  node : int;
  fabric : Fabric.t;
  (* Mutable so the fault engine can apply NTP-style clock steps
     mid-run ({!step_clock}); [Clock.t] itself stays immutable. *)
  mutable clock : Clock.t;
  ewma_alpha : float;
  plan : Addressing.plan;
  remote_plan : Addressing.plan;
  (* Mutable so the reconciler can swap in a re-discovered path table
     mid-run ({!install_outbound_paths}); [table_epoch] stamps each
     installed generation. *)
  mutable tunnels : Tunnel.t array;
  mutable path_labels : string array;
  mutable table_epoch : int;
  policy : Policy.t;
  (* Path-decision fast path: the policy is re-evaluated at most once
     per [policy_refresh_s] (one "flow epoch"); between evaluations,
     per-flow decisions come from the cache. A changed preference
     invalidates every cached flow at once. *)
  policy_refresh_s : float;
  path_cache : Flow_cache.t;
  mutable last_choice : int;
  mutable last_choice_at : float;
  mutable policy_evals : int;
  (* Inbound measurement state, indexed by path id. *)
  owd_series : Series.t array;
  owd_ewma : Ewma.t array;
  jitter : Jitter.t array;
  detectors : Detect.t array;
  trackers : Seq_tracker.t array;
  inbound_samples : int array;
  last_arrival : float array;
  (* Peer-reported stats for outbound paths, plus when the report
     arrived — ages are re-based to "now" at read time so staleness
     keeps growing when reports stop coming. *)
  mutable outbound_stats : Policy.path_stats array;
  mutable outbound_stats_at : float;
  (* Application metrics. *)
  app_latency : Series.t;
  inorder : Inorder.t;
  inorder_extra : Stats.t;
  chosen_paths : Series.t;
  mutable app_seq : int;
  mutable next_packet_id : int;
  (* Probe starvation (lib/faults): while set, periodic probes are
     silently skipped, so the peer's inbound stats go stale and its
     policy must detect the dead-path condition by staleness alone. *)
  mutable probes_suppressed : bool;
  (* Reused packet batch for the periodic probe burst: one
     Fabric.send_batch call per tick instead of one Fabric.send per
     path. *)
  probe_batch : Batch.t;
  mutable probes_sent : int;
  mutable probes_received : int;
  mutable app_received : int;
  mutable reports_received : int;
  mutable peer : t option;
  mutable stream_handler : (now:float -> Packet.t -> unit) option;
  (* In-band pair control channel (lib/ctrl): heartbeats and digests
     arrive on [ctrl_port]. While [pinned], the policy refresh is
     frozen (peer loss: stat reports stopped, so adaptive decisions
     would be driven by staleness noise). *)
  mutable ctrl_handler : (now:float -> Packet.t -> unit) option;
  mutable pinned : bool;
  (* Overlay hook: invoked for decapsulated packets whose inner
     destination is not in this site's host prefix (Tango-of-N
     relaying). *)
  mutable transit_handler : (now:float -> Packet.t -> unit) option;
  mutable transited : int;
}

let engine t = Tango_bgp.Network.engine (Fabric.network t.fabric)

let engine_of = engine

let tunnels_of ~plan ~remote_plan outbound_paths =
  Array.of_list
    (List.map
       (fun (p : Discovery.path) ->
         Tunnel.create ~path_id:p.Discovery.index ~label:p.Discovery.label
           ~local_endpoint:
             (Addressing.host_address plan (Int64.of_int p.Discovery.index))
           ~remote_endpoint:
             (Addressing.tunnel_endpoint remote_plan ~path:p.Discovery.index)
           ())
       outbound_paths)

let create ~name ~node ~fabric ?(clock_offset_ns = 0L) ?(ewma_alpha = 0.1)
    ?(jitter_window_s = 1.0) ?(policy_refresh_s = 0.01) ?readmit_backoff_s
    ~plan ~remote_plan ~outbound_paths ~policy () =
  if policy_refresh_s < 0.0 then
    invalid_arg "Pop.create: negative policy refresh interval";
  let tunnels = tunnels_of ~plan ~remote_plan outbound_paths in
  {
    name;
    node;
    fabric;
    clock = Clock.create ~offset_ns:clock_offset_ns ();
    ewma_alpha;
    plan;
    remote_plan;
    tunnels;
    path_labels =
      Array.of_list (List.map (fun (p : Discovery.path) -> p.Discovery.label) outbound_paths);
    table_epoch = 0;
    policy = Policy.create ?readmit_backoff_s policy;
    policy_refresh_s;
    path_cache = Flow_cache.create ();
    last_choice = (match policy with Policy.Static i -> i | _ -> 0);
    last_choice_at = neg_infinity;
    policy_evals = 0;
    owd_series = Array.init max_paths (fun _ -> Series.create ());
    owd_ewma = Array.init max_paths (fun _ -> Ewma.create ~alpha:ewma_alpha);
    jitter = Array.init max_paths (fun _ -> Jitter.create ~window_s:jitter_window_s ());
    detectors = Array.init max_paths (fun _ -> Detect.create ());
    trackers = Array.init max_paths (fun _ -> Seq_tracker.create ());
    inbound_samples = Array.make max_paths 0;
    last_arrival = Array.make max_paths neg_infinity;
    outbound_stats =
      Array.init (List.length outbound_paths) (fun i -> Policy.no_stats ~path_id:i);
    outbound_stats_at = 0.0;
    app_latency = Series.create ();
    inorder = Inorder.create ();
    inorder_extra = Stats.create ();
    chosen_paths = Series.create ();
    app_seq = 0;
    next_packet_id = 0;
    probes_sent = 0;
    probes_received = 0;
    app_received = 0;
    reports_received = 0;
    peer = None;
    probes_suppressed = false;
    probe_batch = Batch.create ();
    stream_handler = None;
    ctrl_handler = None;
    pinned = false;
    transit_handler = None;
    transited = 0;
  }

let name t = t.name

let node t = t.node

let path_count t = Array.length t.tunnels

let path_label t i =
  if i < 0 || i >= Array.length t.path_labels then
    invalid_arg (Printf.sprintf "Pop.path_label: no path %d" i)
  else t.path_labels.(i)

(* ------------------------------------------------------------------ *)
(* Receive side: the receiver eBPF program plus host delivery.          *)

let[@hot] record_measurement t ~now (reception : Tunnel.reception) =
  let path = reception.Tunnel.path_id in
  if path >= 0 && path < max_paths then begin
    Series.add t.owd_series.(path) ~time:now reception.Tunnel.owd_ms;
    Ewma.add t.owd_ewma.(path) reception.Tunnel.owd_ms;
    Jitter.add t.jitter.(path) ~time:now reception.Tunnel.owd_ms;
    Detect.add t.detectors.(path) ~time:now reception.Tunnel.owd_ms;
    Seq_tracker.observe ~now_s:now t.trackers.(path) reception.Tunnel.seq;
    t.inbound_samples.(path) <- t.inbound_samples.(path) + 1;
    t.last_arrival.(path) <- now
  end

(* Head-of-line accounting for a batch of in-order releases. A toplevel
   recursion rather than a [List.iter] closure: this runs on the packet
   path (hot-reach from {!handle_arrival}). *)
let rec note_inorder_extras t released =
  match released with
  | [] -> ()
  | (s, _) :: rest ->
      (match Inorder.head_of_line_extra t.inorder ~seq:s with
      | Some extra -> Stats.add t.inorder_extra extra
      | None -> ());
      note_inorder_extras t rest

let deliver_to_host t ~now (packet : Packet.t) =
  let flow = packet.Packet.flow in
  if
    (not (Tango_net.Prefix.mem t.plan.Addressing.host_prefix flow.Flow.dst))
    && Option.is_some t.transit_handler
  then begin
    (* Not addressed to a host here: hand to the overlay for relaying. *)
    t.transited <- t.transited + 1;
    Metric.incr m_transited;
    (Option.get t.transit_handler) ~now packet
  end
  else if flow.Flow.dst_port = probe_port then begin
    t.probes_received <- t.probes_received + 1;
    Metric.incr m_probes_received
  end
  else if flow.Flow.dst_port = report_port then begin
    match packet.Packet.content with
    | Some (Report stats) ->
        t.reports_received <- t.reports_received + 1;
        Metric.incr m_reports_received;
        t.outbound_stats <- stats;
        t.outbound_stats_at <- now
    | Some _ | None -> ()
  end
  else if flow.Flow.dst_port = stream_port then begin
    match t.stream_handler with
    | Some handler -> handler ~now packet
    | None -> ()
  end
  else if flow.Flow.dst_port = ctrl_port then begin
    match t.ctrl_handler with
    | Some handler -> handler ~now packet
    | None -> ()
  end
  else if flow.Flow.dst_port = app_port then begin
    t.app_received <- t.app_received + 1;
    Metric.incr m_app_received;
    let latency = now -. packet.Packet.created_at in
    Series.add t.app_latency ~time:now latency;
    match packet.Packet.content with
    | Some (App_seq seq) ->
        let released = Inorder.arrival t.inorder ~seq ~time:now in
        note_inorder_extras t released
    | Some _ | None -> ()
  end

let[@hot] handle_arrival t (packet : Packet.t) =
  let now = Engine.now (engine t) in
  if Packet.is_encapsulated packet then begin
    let reception = Tunnel.receive ~clock:t.clock ~now_s:now packet in
    record_measurement t ~now reception;
    deliver_to_host t ~now packet
  end
  else deliver_to_host t ~now packet

(* ------------------------------------------------------------------ *)
(* Send side: the sender eBPF program.                                  *)

let[@hot] dispatch t (packet : Packet.t) =
  match t.peer with
  | None -> invalid_arg "Pop: not wired to a peer (call Pop.wire)"
  | Some peer ->
      Fabric.send t.fabric ~from_node:t.node
        (* tango-lint: allow hot-alloc — delivery continuation handed to the fabric once per dispatch *)
        ~on_delivered:(fun ~node packet ->
          if node = peer.node then handle_arrival peer packet
          else if node = t.node then handle_arrival t packet)
        packet

let[@hot] dispatch_batch t batch =
  match t.peer with
  | None -> invalid_arg "Pop: not wired to a peer (call Pop.wire)"
  | Some peer ->
      Fabric.send_batch t.fabric ~from_node:t.node
        (* tango-lint: allow hot-alloc — one delivery continuation per batch, shared by up to 64 packets *)
        ~on_delivered:(fun ~node packet ->
          if node = peer.node then handle_arrival peer packet
          else if node = t.node then handle_arrival t packet)
        batch

let wire ~a ~b =
  a.peer <- Some b;
  b.peer <- Some a

let fresh_id t =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let send_flow t ~path ~flow ~payload_bytes ?content () =
  if path < 0 || path >= Array.length t.tunnels then
    invalid_arg (Printf.sprintf "Pop.send_on_path: no tunnel %d" path);
  let now = Engine.now (engine t) in
  let packet =
    Packet.create ~id:(fresh_id t) ~flow ~payload_bytes ?content ~created_at:now ()
  in
  Tunnel.send t.tunnels.(path) ~clock:t.clock ~now_s:now packet;
  dispatch t packet

let send_on_path t ~path ~src_port ~dst_port ~payload_bytes ?content ?dst () =
  let dst =
    match dst with
    | Some a -> a
    | None -> Addressing.host_address t.remote_plan 1L
  in
  let flow =
    Flow.v
      ~src:(Addressing.host_address t.plan 1L)
      ~dst ~proto:17 ~src_port ~dst_port
  in
  send_flow t ~path ~flow ~payload_bytes ?content ()

(* Peer-reported stats with ages re-based to the present: if reports
   stop (e.g. every path carrying them died), staleness keeps rising.
   This copying form is the cold accessor (CLI, experiments); the hot
   policy refresh below passes the raw array plus [~age_extra] instead,
   so no per-evaluation array is materialized. *)
let live_outbound_stats t =
  let now = Engine.now (engine t) in
  let extra = now -. t.outbound_stats_at in
  Array.map
    (fun (s : Policy.path_stats) -> { s with Policy.age_s = s.Policy.age_s +. extra })
    t.outbound_stats

(* One policy evaluation per flow epoch: the full scoring pass (and the
   stats-array rebase it needs) runs at most once per [policy_refresh_s]
   of virtual time; a changed preference invalidates the per-flow cache
   so every flow migrates on its next packet. *)
let[@hot] refresh_policy t ~now =
  if (not t.pinned) && now -. t.last_choice_at > t.policy_refresh_s then begin
    let path =
      Policy.choose t.policy ~now_s:now
        ~age_extra:(now -. t.outbound_stats_at)
        t.outbound_stats
    in
    t.policy_evals <- t.policy_evals + 1;
    Metric.incr m_policy_evals;
    t.last_choice_at <- now;
    if path <> t.last_choice then begin
      Metric.incr m_path_switches;
      Trace.record Trace.default ~now ~kind:k_path_switch t.last_choice path;
      t.last_choice <- path;
      Flow_cache.invalidate t.path_cache
    end
  end

let[@hot] choose_path t ~now ~flow_hash =
  refresh_policy t ~now;
  match Flow_cache.find t.path_cache ~flow_hash with
  | Some path ->
      Metric.incr m_cache_hits;
      path
  | None ->
      Metric.incr m_cache_misses;
      Flow_cache.store t.path_cache ~flow_hash t.last_choice;
      t.last_choice

let send_app t ?(payload_bytes = 512) ?final_dst () =
  let now = Engine.now (engine t) in
  let seq = t.app_seq in
  t.app_seq <- seq + 1;
  let dst =
    match final_dst with
    | Some a -> a
    | None -> Addressing.host_address t.remote_plan 1L
  in
  let flow =
    Flow.v
      ~src:(Addressing.host_address t.plan 1L)
      ~dst ~proto:17
      ~src_port:(50000 + (seq mod 1000))
      ~dst_port:app_port
  in
  let path = choose_path t ~now ~flow_hash:(Flow.hash_5tuple flow) in
  Series.add t.chosen_paths ~time:now (float_of_int path);
  send_flow t ~path ~flow ~payload_bytes ~content:(App_seq seq) ();
  path

let set_transit_handler t handler = t.transit_handler <- Some handler

let transited t = t.transited

(* Relay a decapsulated in-flight packet onward over this PoP's own best
   path, preserving its identity and creation time so end-to-end
   latency measurements span the whole overlay route. *)
let forward_transit t (packet : Packet.t) =
  let now = Engine.now (engine t) in
  let path =
    choose_path t ~now ~flow_hash:(Flow.hash_5tuple packet.Packet.flow)
  in
  Tunnel.send t.tunnels.(path) ~clock:t.clock ~now_s:now packet;
  dispatch t packet

let set_stream_handler t handler = t.stream_handler <- Some handler

(* ------------------------------------------------------------------ *)
(* Control plane: epoch-versioned path-table swap and the in-band pair
   control channel (lib/ctrl).                                          *)

let install_outbound_paths t outbound_paths =
  let n = List.length outbound_paths in
  if n = 0 then invalid_arg "Pop.install_outbound_paths: empty path table";
  if n > max_paths then
    invalid_arg (Printf.sprintf "Pop.install_outbound_paths: %d paths (max %d)" n max_paths);
  List.iteri
    (fun i (p : Discovery.path) ->
      if p.Discovery.index <> i then
        invalid_arg
          (Printf.sprintf
             "Pop.install_outbound_paths: path at position %d has index %d" i
             p.Discovery.index))
    outbound_paths;
  t.tunnels <- tunnels_of ~plan:t.plan ~remote_plan:t.remote_plan outbound_paths;
  t.path_labels <-
    Array.of_list
      (List.map (fun (p : Discovery.path) -> p.Discovery.label) outbound_paths);
  (* Retained indices keep their peer-reported stats; paths new in this
     epoch start unmeasured, exactly like at creation. *)
  let old = t.outbound_stats in
  t.outbound_stats <-
    Array.init n (fun i ->
        if i < Array.length old then old.(i) else Policy.no_stats ~path_id:i);
  if t.last_choice >= n then t.last_choice <- 0;
  if Policy.current t.policy >= n then Policy.retarget t.policy ~path:0;
  t.table_epoch <- t.table_epoch + 1;
  (* Drop every cached per-flow decision and force a full policy pass on
     the next packet: the swap is atomic from the data plane's view. *)
  t.last_choice_at <- neg_infinity;
  Flow_cache.invalidate t.path_cache

let table_epoch t = t.table_epoch

let set_ctrl_handler t handler = t.ctrl_handler <- Some handler

(* Control traffic is in-band: it rides whatever path the live policy
   currently prefers, fate-sharing with the data plane, and fails over
   with it. *)
let send_ctrl t ?path ~content () =
  if Array.length t.tunnels = 0 then invalid_arg "Pop.send_ctrl: no tunnels";
  let flow =
    Flow.v
      ~src:(Addressing.host_address t.plan 1L)
      ~dst:(Addressing.host_address t.remote_plan 1L)
      ~proto:17 ~src_port:ctrl_port ~dst_port:ctrl_port
  in
  let path =
    match path with
    | Some p -> p
    | None ->
        let now = Engine.now (engine t) in
        choose_path t ~now ~flow_hash:(Flow.hash_5tuple flow)
  in
  send_flow t ~path ~flow ~payload_bytes:64 ~content ();
  path

let set_pinned t v =
  t.pinned <- v;
  (* On unpin, re-evaluate on the very next packet rather than waiting
     out a refresh interval. *)
  if not v then t.last_choice_at <- neg_infinity

let pinned t = t.pinned

(* Transport-layer segments: path selection via the live policy (like
   app traffic) or pinned to one tunnel, without polluting the
   app-latency metrics. *)
let send_stream t ?(payload_bytes = 1200) ~route ~content () =
  let flow =
    Flow.v
      ~src:(Addressing.host_address t.plan 1L)
      ~dst:(Addressing.host_address t.remote_plan 1L)
      ~proto:17 ~src_port:stream_port ~dst_port:stream_port
  in
  let path =
    match route with
    | `Policy ->
        let now = Engine.now (engine t) in
        choose_path t ~now ~flow_hash:(Flow.hash_5tuple flow)
    | `Path p -> p
  in
  send_flow t ~path ~flow ~payload_bytes ~content ();
  path

(* The per-tick probe burst is the one place a PoP naturally holds many
   packets at once, so it goes through the batched fabric path: every
   tunnel's probe is created and encapsulated first, then the whole
   burst is dispatched with one [Fabric.send_batch] call. Packet ids,
   tunnel sequence numbers and fabric injection order are identical to
   the per-packet loop this replaces. *)
let send_probe t =
  if not t.probes_suppressed then begin
    let now = Engine.now (engine t) in
    let dst = Addressing.host_address t.remote_plan 1L in
    let src = Addressing.host_address t.plan 1L in
    Batch.clear t.probe_batch;
    for path = 0 to Array.length t.tunnels - 1 do
      t.probes_sent <- t.probes_sent + 1;
      Metric.incr m_probes_sent;
      let flow =
        Flow.v ~src ~dst ~proto:17 ~src_port:probe_port ~dst_port:probe_port
      in
      let packet =
        Packet.create ~id:(fresh_id t) ~flow ~payload_bytes:64 ~created_at:now
          ()
      in
      Tunnel.send t.tunnels.(path) ~clock:t.clock ~now_s:now packet;
      Batch.add t.probe_batch packet;
      if Batch.is_full t.probe_batch then begin
        dispatch_batch t t.probe_batch;
        Batch.clear t.probe_batch
      end
    done;
    if not (Batch.is_empty t.probe_batch) then begin
      dispatch_batch t t.probe_batch;
      Batch.clear t.probe_batch
    end
  end

let set_probe_suppression t suppressed = t.probes_suppressed <- suppressed

let probes_suppressed t = t.probes_suppressed

(* Inbound path ids are the peer's tunnel indices, which target this
   site's announced tunnel prefixes — so the count comes from our own
   address plan, not from our outbound tunnel set. *)
let inbound_path_count t = List.length t.plan.Addressing.tunnel_prefixes

let inbound_snapshot t =
  let now = Engine.now (engine t) in
  Array.init (inbound_path_count t) (fun path ->
      {
        Policy.path_id = path;
        owd_ewma_ms = Ewma.value t.owd_ewma.(path);
        (* Policies need the live jitter estimate, not the trace-long
           average the paper reports. *)
        jitter_ms = Jitter.recent t.jitter.(path);
        loss_rate = Seq_tracker.recent_loss_rate t.trackers.(path);
        age_s = now -. t.last_arrival.(path);
        samples = t.inbound_samples.(path);
      })

let send_report t =
  if Array.length t.tunnels > 0 then begin
    (* Ride the provider-default path: reports must flow even before any
       measurements exist. *)
    send_on_path t ~path:0 ~src_port:report_port ~dst_port:report_port
      ~payload_bytes:128
      ~content:(Report (inbound_snapshot t))
      ()
  end

let start t ?(probe_interval_s = 0.01) ?(report_interval_s = 0.1)
    ?dead_after_probes ~until_s () =
  (match dead_after_probes with
  | Some n ->
      if n <= 0 then invalid_arg "Pop.start: non-positive dead_after_probes";
      Policy.set_max_staleness_s t.policy (float_of_int n *. probe_interval_s)
  | None -> ());
  let e = engine t in
  Tango_workload.Traffic.periodic e ~interval_s:probe_interval_s ~until_s
    (fun _ -> send_probe t);
  Tango_workload.Traffic.periodic e ~interval_s:report_interval_s ~until_s
    (fun _ -> send_report t)

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)

let check_path _t path =
  if path < 0 || path >= max_paths then
    invalid_arg (Printf.sprintf "Pop: path id %d out of range" path)

let inbound_owd_series t ~path =
  check_path t path;
  t.owd_series.(path)

let inbound_jitter_ms t ~path =
  check_path t path;
  Jitter.value t.jitter.(path)

let inbound_stats t = inbound_snapshot t

let outbound_stats t = live_outbound_stats t

let detector_events t ~path =
  check_path t path;
  Detect.events t.detectors.(path)

let tracker t ~path =
  check_path t path;
  t.trackers.(path)

let app_latency_series t = t.app_latency

let app_inorder_extra t = t.inorder_extra

let chosen_path_series t = t.chosen_paths

let plan t = t.plan

let remote_plan t = t.remote_plan

let clock t = t.clock

let step_clock t ~step_ns = t.clock <- Clock.step t.clock ~step_ns

let policy t = t.policy

let policy_degraded t = Policy.degraded t.policy

let policy_switches t = Policy.switches t.policy

let policy_evaluations t = t.policy_evals

let path_cache_hits t = Flow_cache.hits t.path_cache

let path_cache_misses t = Flow_cache.misses t.path_cache

let path_cache_flows t = Flow_cache.flows t.path_cache

let probes_sent t = t.probes_sent

let probes_received t = t.probes_received

let app_received t = t.app_received

let reports_received t = t.reports_received
