(** End-to-end orchestration of a two-site Tango deployment — the
    paper's prototype (§4): Vultr LA + NY, BGP sessions to the provider,
    path discovery in both directions, per-path prefixes and tunnels, and
    the measurement plane.

    [setup_vultr] performs, in order: BGP bring-up and convergence;
    iterative discovery LA→NY and NY→LA (Fig. 3); announcement of one
    tunnel /48 per discovered path with its community set plus a host
    prefix per site; fabric construction (optionally with the Fig. 4
    dynamics); and PoP instantiation with deliberately skewed clocks —
    relative OWD comparison must survive unsynchronized clocks. *)

type t

val setup :
  ?seed:int ->
  ?policy_a:Policy.spec ->
  ?policy_b:Policy.spec ->
  ?readmit_backoff_s:float ->
  ?extra_delay_ms:(from_node:int -> to_node:int -> time_s:float -> float) ->
  ?lanes_of:(int -> Tango_dataplane.Ecmp.lanes) ->
  ?clock_offset_a_ns:int64 ->
  ?clock_offset_b_ns:int64 ->
  ?configure:(Tango_topo.Topology.node -> Tango_bgp.Network.overrides) ->
  ?name_a:string ->
  ?name_b:string ->
  topo:Tango_topo.Topology.t ->
  server_a:int ->
  server_b:int ->
  unit ->
  t
(** Generic two-site deployment over any topology: discovery in both
    directions between the given server nodes, per-path prefix
    announcements, tunnels and PoPs. Site A maps onto the accessors
    named [la] below and site B onto [ny] (the Vultr deployment is
    [setup_vultr], a thin wrapper). Clock offsets default to 0 here. *)

val setup_vultr :
  ?seed:int ->
  ?policy_la:Policy.spec ->
  ?policy_ny:Policy.spec ->
  ?readmit_backoff_s:float ->
  ?scenario:Tango_workload.Fig4.t ->
  ?lanes_of:(int -> Tango_dataplane.Ecmp.lanes) ->
  ?clock_offset_la_ns:int64 ->
  ?clock_offset_ny_ns:int64 ->
  unit ->
  t
(** Defaults: both policies [Lowest_owd] (hysteresis 1 ms, dwell 1 s); no
    scenario dynamics; single-lane transits; clock offsets +37 ms (LA)
    and −12 ms (NY). [readmit_backoff_s] arms both policies' flap
    damping (see {!Policy.create}; default off). *)

val engine : t -> Tango_sim.Engine.t
val network : t -> Tango_bgp.Network.t
val fabric : t -> Tango_dataplane.Fabric.t
val scenario : t -> Tango_workload.Fig4.t option

val pop_la : t -> Pop.t
val pop_ny : t -> Pop.t

val paths_to_ny : t -> Discovery.path list
(** Paths for LA→NY traffic, in provider preference order. *)

val paths_to_la : t -> Discovery.path list

val discovery_to_ny : t -> Discovery.result
val discovery_to_la : t -> Discovery.result

val update_paths_to_ny : t -> Discovery.path list -> unit
(** Record a reconciled LA→NY path table (discovery metadata other than
    the path list is preserved). Reconciler hook — callers are expected
    to install the same table into the sending PoP via
    {!Pop.install_outbound_paths}. *)

val update_paths_to_la : t -> Discovery.path list -> unit

val start_measurement :
  t ->
  ?probe_interval_s:float ->
  ?report_interval_s:float ->
  ?dead_after_probes:int ->
  for_s:float ->
  unit ->
  unit
(** Begin the probe trains and peer reports on both PoPs, running for
    [for_s] seconds of virtual time from now (BGP bring-up and discovery
    already consumed some of the clock). [dead_after_probes] arms
    probe-timeout dead-path detection on both PoPs (see {!Pop.start}). *)

val run_for : t -> float -> unit
(** Advance the simulation by the given duration. *)
