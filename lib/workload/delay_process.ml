module Rng = Tango_sim.Rng

type spike = { at_s : float; magnitude_ms : float; width_s : float }

type event =
  | Level_shift of {
      start_s : float;
      duration_s : float;
      magnitude_ms : float;
      onset : spike list;
    }
  | Instability of { start_s : float; duration_s : float; spikes : spike list }

(* Rectangular: a spike holds its magnitude for its whole width and ends
   abruptly. The sharp trailing edge matters — it is what reorders
   packets (a packet sent just after the edge overtakes one sent just
   before), producing the TCP head-of-line blocking §5 describes. *)
let spike_value s ~time_s =
  let dt = time_s -. s.at_s in
  if dt < 0.0 || dt >= s.width_s then 0.0 else s.magnitude_ms

let make_instability ~rng ~start_s ~duration_s ~rate_hz ~max_magnitude_ms
    ?(width_s = 1.5) () =
  if duration_s <= 0.0 then invalid_arg "make_instability: non-positive duration";
  if rate_hz <= 0.0 then invalid_arg "make_instability: non-positive rate";
  let rec arrivals t acc =
    let t = t +. Rng.exponential rng ~rate:rate_hz in
    if t >= start_s +. duration_s then List.rev acc
    else begin
      let magnitude =
        Float.min max_magnitude_ms (Rng.pareto rng ~scale:(max_magnitude_ms /. 10.0) ~shape:1.2)
      in
      arrivals t ({ at_s = t; magnitude_ms = magnitude; width_s } :: acc)
    end
  in
  let spikes = arrivals start_s [] in
  (* Pin the headline: one spike in the middle reaches the cap. *)
  let cap_spike =
    { at_s = start_s +. (duration_s /. 2.0); magnitude_ms = max_magnitude_ms; width_s }
  in
  Instability { start_s; duration_s; spikes = cap_spike :: spikes }

let make_route_change ~rng ~start_s ~duration_s ~magnitude_ms () =
  (* A couple of brief excursions right around the change, as in Fig. 4
     (middle): instability, then the new level. *)
  let onset =
    List.init 3 (fun i ->
        {
          at_s = start_s -. 2.0 +. (1.5 *. float_of_int i) +. Rng.float rng 0.5;
          magnitude_ms = magnitude_ms *. (2.0 +. Rng.float rng 2.0);
          width_s = 1.0;
        })
  in
  Level_shift { start_s; duration_s; magnitude_ms; onset }

type t = {
  base_ms : float;
  diurnal_amplitude_ms : float;
  diurnal_period_s : float;
  diurnal_phase : float;
  ou_std_ms : float;
  ou_tau_s : float;
  white_std_ms : float;
  event_list : event list;
  rng : Rng.t;
  mutable ou_state : float;
  mutable last_time : float;
}

let create ~seed ?(base_ms = 0.0) ?(diurnal_amplitude_ms = 0.0)
    ?(diurnal_period_s = 86400.0) ?(diurnal_phase = 0.0) ?(ou_std_ms = 0.0)
    ?(ou_tau_s = 10.0) ?(white_std_ms = 0.0) ?(events = []) () =
  if diurnal_period_s <= 0.0 then invalid_arg "Delay_process: non-positive period";
  if ou_tau_s <= 0.0 then invalid_arg "Delay_process: non-positive tau";
  if base_ms < 0.0 then invalid_arg "Delay_process: negative base";
  {
    base_ms;
    diurnal_amplitude_ms;
    diurnal_period_s;
    diurnal_phase;
    ou_std_ms;
    ou_tau_s;
    white_std_ms;
    event_list = events;
    rng = Rng.create ~seed;
    ou_state = 0.0;
    last_time = neg_infinity;
  }

let event_value event ~time_s =
  match event with
  | Level_shift { start_s; duration_s; magnitude_ms; onset } ->
      let shift =
        if time_s >= start_s && time_s < start_s +. duration_s then magnitude_ms
        else 0.0
      in
      List.fold_left (fun acc s -> acc +. spike_value s ~time_s) shift onset
  | Instability { spikes; _ } ->
      (* Overlapping spikes do not stack; the worst one dominates, which
         keeps the calibrated peak exact. *)
      List.fold_left (fun acc s -> Float.max acc (spike_value s ~time_s)) 0.0 spikes

let floor_value t ~time_s =
  let diurnal =
    t.diurnal_amplitude_ms
    *. (1.0 +. sin ((2.0 *. Float.pi *. time_s /. t.diurnal_period_s) +. t.diurnal_phase))
    /. 2.0
  in
  List.fold_left
    (fun acc e -> acc +. event_value e ~time_s)
    (t.base_ms +. diurnal) t.event_list

let advance_ou t ~time_s =
  if t.ou_std_ms > 0.0 then begin
    let dt = if Float.equal t.last_time neg_infinity then 0.0 else time_s -. t.last_time in
    let decay = exp (-.dt /. t.ou_tau_s) in
    let innovation_std = t.ou_std_ms *. sqrt (1.0 -. (decay *. decay)) in
    t.ou_state <-
      (t.ou_state *. decay)
      +. (if innovation_std > 0.0 then Rng.gaussian t.rng ~mean:0.0 ~std:innovation_std else 0.0)
  end;
  t.last_time <- time_s

let value t ~time_s =
  if time_s < t.last_time then
    invalid_arg "Delay_process.value: time went backwards";
  advance_ou t ~time_s;
  let white =
    if t.white_std_ms > 0.0 then Rng.gaussian t.rng ~mean:0.0 ~std:t.white_std_ms
    else 0.0
  in
  Float.max 0.0 (floor_value t ~time_s +. t.ou_state +. white)

let events t = t.event_list
