(* The million-flow workload engine (DESIGN.md §14): a seeded generator
   of per-flow send schedules that look like edge traffic instead of a
   synthetic full-mesh blast. Three ingredients, each independently
   testable:

   - Heavy-tailed sizes. Bulk flow sizes draw from a bounded Pareto
     (inverse CDF), so most flows are mice and a few are elephants —
     the regime where a per-flow decision cache earns its keep.
   - Diurnal arrival waves. Flow start times sample a sinusoidally
     modulated intensity over the horizon, so load peaks and troughs
     like a day of user traffic. The modulation conserves total mass:
     depth changes *when* flows arrive, never how many.
   - Traffic classes. Short RPC (a few packets, back to back), bulk
     (Pareto-sized, back to back), and video-like CBR (fixed cadence,
     one packet every [video_stride] generations).

   The output is a [plan]: four flat int arrays (class, start, stride,
   packet count) indexed by flow. A plan is pure data — the dataplane
   asks [sends_at] per (flow, generation) and derives the tunnel
   sequence number from [seq_index], so the same plan drives any lane
   partition to byte-identical schedules. Everything derives from the
   seed via SplitMix64; no wall clock, no global state. *)

module Rng = Tango_sim.Rng

type cls = Rpc | Bulk | Video

let cls_to_int = function Rpc -> 0 | Bulk -> 1 | Video -> 2

let cls_of_int = function
  | 0 -> Rpc
  | 1 -> Bulk
  | 2 -> Video
  | c -> invalid_arg (Printf.sprintf "Load.cls_of_int: %d" c)

type mix = { rpc : float; bulk : float; video : float }

type config = {
  flows : int;
  generations : int;  (* horizon, in dataplane generations (1 ms each) *)
  seed : int;
  mix : mix;
  alpha : float;  (* bounded-Pareto tail exponent for bulk sizes *)
  size_lo : float;  (* bulk size bounds, in packets *)
  size_hi : float;
  waves : float;  (* diurnal wave periods across the horizon *)
  wave_depth : float;  (* modulation depth in [0, 1) *)
  rpc_max : int;  (* RPC sizes uniform in [1, rpc_max] packets *)
  video_stride : int;  (* CBR cadence: one packet per this many gens *)
  video_pkts : int;  (* CBR segment length cap, in packets *)
}

let default_config ?(flows = 10_000) ?(generations = 400) ?(seed = 42) () =
  {
    flows;
    generations;
    seed;
    mix = { rpc = 0.5; bulk = 0.3; video = 0.2 };
    alpha = 1.3;
    size_lo = 8.0;
    size_hi = 2_000.0;
    waves = 2.0;
    wave_depth = 0.6;
    rpc_max = 3;
    video_stride = 4;
    video_pkts = 120;
  }

let validate c =
  if c.flows <= 0 then invalid_arg "Load: flows must be positive";
  if c.generations <= 0 then invalid_arg "Load: generations must be positive";
  if c.mix.rpc < 0.0 || c.mix.bulk < 0.0 || c.mix.video < 0.0 then
    invalid_arg "Load: negative class share";
  let s = c.mix.rpc +. c.mix.bulk +. c.mix.video in
  if Float.abs (s -. 1.0) > 1e-9 then
    invalid_arg "Load: class mix must sum to 1";
  if c.alpha <= 0.0 then invalid_arg "Load: alpha must be positive";
  if c.size_lo < 1.0 || c.size_hi <= c.size_lo then
    invalid_arg "Load: need 1 <= size_lo < size_hi";
  if c.waves <= 0.0 then invalid_arg "Load: waves must be positive";
  if c.wave_depth < 0.0 || c.wave_depth >= 1.0 then
    invalid_arg "Load: wave_depth must be in [0, 1)";
  if c.rpc_max < 1 then invalid_arg "Load: rpc_max must be >= 1";
  if c.video_stride < 1 then invalid_arg "Load: video_stride must be >= 1";
  if c.video_pkts < 1 then invalid_arg "Load: video_pkts must be >= 1"

(* Bounded Pareto on [lo, hi] with tail exponent alpha, by inverting
   F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha). As hi -> infinity
   this degrades gracefully to the pure Pareto inverse CDF. *)
let bounded_pareto rng ~alpha ~lo ~hi =
  let u = Rng.float rng 1.0 in
  let tail = 1.0 -. ((lo /. hi) ** alpha) in
  lo *. ((1.0 -. (u *. tail)) ** (-1.0 /. alpha))

(* Relative arrival intensity at generation [g]: 1 + depth * sin over
   [waves] full periods. Summed over the horizon the sine integrates to
   ~0, so total mass stays [generations] regardless of depth. *)
let diurnal_weight ~generations ~waves ~depth g =
  let phase =
    2.0 *. Float.pi *. waves *. ((float_of_int g +. 0.5) /. float_of_int generations)
  in
  1.0 +. (depth *. sin phase)

let diurnal_cumulative ~generations ~waves ~depth =
  let cum = Array.make generations 0.0 in
  let acc = ref 0.0 in
  for g = 0 to generations - 1 do
    acc := !acc +. diurnal_weight ~generations ~waves ~depth g;
    cum.(g) <- !acc
  done;
  cum

(* Smallest g with cum.(g) > u — inverse-CDF sampling of a start
   generation from the diurnal intensity. *)
let sample_start rng cum =
  let total = cum.(Array.length cum - 1) in
  let u = Rng.float rng total in
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

type plan = {
  config : config;
  cls : int array;  (* per-flow class tag, cls_to_int *)
  start_gen : int array;
  stride : int array;
  pkts : int array;  (* sends scheduled inside the horizon *)
  gen_sends : int array;  (* offered packets per generation *)
  total_packets : int;
  max_gen_sends : int;
}

let plan config =
  validate config;
  let n = config.flows and gens = config.generations in
  let rng = Rng.create ~seed:config.seed in
  let cum =
    diurnal_cumulative ~generations:gens ~waves:config.waves
      ~depth:config.wave_depth
  in
  let cls = Array.make n 0 in
  let start_gen = Array.make n 0 in
  let stride = Array.make n 1 in
  let pkts = Array.make n 0 in
  let gen_sends = Array.make gens 0 in
  let total = ref 0 in
  for f = 0 to n - 1 do
    let u = Rng.float rng 1.0 in
    let c = if u < config.mix.rpc then Rpc
            else if u < config.mix.rpc +. config.mix.bulk then Bulk
            else Video
    in
    let start = sample_start rng cum in
    let st, size =
      match c with
      | Rpc -> (1, 1 + Rng.int rng config.rpc_max)
      | Bulk ->
          let s =
            bounded_pareto rng ~alpha:config.alpha ~lo:config.size_lo
              ~hi:config.size_hi
          in
          (1, int_of_float (Float.ceil s))
      | Video -> (config.video_stride, config.video_pkts)
    in
    (* Clip the schedule to the horizon: a flow sends at
       start, start+st, ... while the index stays under its size and the
       generation under the horizon. *)
    let max_sends = ((gens - start) + st - 1) / st in
    let sends = if size < max_sends then size else max_sends in
    cls.(f) <- cls_to_int c;
    start_gen.(f) <- start;
    stride.(f) <- st;
    pkts.(f) <- sends;
    for k = 0 to sends - 1 do
      let g = start + (k * st) in
      gen_sends.(g) <- gen_sends.(g) + 1
    done;
    total := !total + sends
  done;
  let max_gen_sends = Array.fold_left (fun a b -> if b > a then b else a) 0 gen_sends in
  {
    config;
    cls;
    start_gen;
    stride;
    pkts;
    gen_sends;
    total_packets = !total;
    max_gen_sends;
  }

(* The E14 full-mesh blast expressed as a plan: every flow sends one
   packet every generation for the whole horizon. Drives the unified
   dataplane loop to byte-identical behavior with the pre-plan code. *)
let uniform ~flows ~generations =
  if flows <= 0 || generations <= 0 then
    invalid_arg "Load.uniform: flows and generations must be positive";
  let c = default_config ~flows ~generations () in
  {
    config = c;
    cls = Array.make flows (cls_to_int Bulk);
    start_gen = Array.make flows 0;
    stride = Array.make flows 1;
    pkts = Array.make flows generations;
    gen_sends = Array.make generations flows;
    total_packets = flows * generations;
    max_gen_sends = flows;
  }

let flows plan = plan.config.flows

let generations plan = plan.config.generations

let total_packets plan = plan.total_packets

let max_gen_sends plan = plan.max_gen_sends

let gen_sends plan g = plan.gen_sends.(g)

let flow_class plan f = cls_of_int plan.cls.(f)

let flow_start plan f = plan.start_gen.(f)

let flow_stride plan f = plan.stride.(f)

let flow_pkts plan f = plan.pkts.(f)

let[@inline] sends_at plan ~flow ~gen =
  let d = gen - Array.unsafe_get plan.start_gen flow in
  d >= 0
  &&
  let st = Array.unsafe_get plan.stride flow in
  d mod st = 0 && d / st < Array.unsafe_get plan.pkts flow

let[@inline] seq_index plan ~flow ~gen =
  (gen - Array.unsafe_get plan.start_gen flow)
  / Array.unsafe_get plan.stride flow

let class_counts plan =
  let rpc = ref 0 and bulk = ref 0 and video = ref 0 in
  Array.iter
    (fun c ->
      if c = 0 then incr rpc else if c = 1 then incr bulk else incr video)
    plan.cls;
  (!rpc, !bulk, !video)

(* FNV-1a fold over every schedule-determining int — two plans are
   byte-identical iff their fingerprints match (modulo 2^60-rare
   collisions), which is what the same-seed determinism tests compare. *)
let fingerprint plan =
  let fnv_prime = 1099511628211 in
  let h = ref 1469598103934665603 in
  let mix v = h := (!h lxor v) * fnv_prime land max_int in
  mix plan.config.flows;
  mix plan.config.generations;
  mix plan.config.seed;
  mix plan.total_packets;
  for f = 0 to plan.config.flows - 1 do
    mix plan.cls.(f);
    mix plan.start_gen.(f);
    mix plan.stride.(f);
    mix plan.pkts.(f)
  done;
  Printf.sprintf "%015x" (!h land max_int)

let pp_summary ppf plan =
  let rpc, bulk, video = class_counts plan in
  Format.fprintf ppf
    "flows=%d (rpc=%d bulk=%d video=%d) gens=%d packets=%d peak-gen=%d"
    plan.config.flows rpc bulk video plan.config.generations
    plan.total_packets plan.max_gen_sends
