(** Million-flow workload engine: seeded, heavy-tailed, diurnal flow
    schedules for the batched dataplane (DESIGN.md §14).

    A {!plan} is pure data — flat per-flow arrays of (class, start
    generation, send stride, packet count) — built deterministically
    from a seed. The dataplane asks {!sends_at} per (flow, generation)
    and numbers tunnel sequences with {!seq_index}, so any lane
    partition of the same plan produces byte-identical schedules. *)

type cls = Rpc | Bulk | Video

val cls_to_int : cls -> int
val cls_of_int : int -> cls

type mix = { rpc : float; bulk : float; video : float }
(** Class shares; must sum to 1. *)

type config = {
  flows : int;
  generations : int;  (** horizon, in dataplane generations (1 ms each) *)
  seed : int;
  mix : mix;
  alpha : float;  (** bounded-Pareto tail exponent for bulk sizes *)
  size_lo : float;  (** bulk size bounds, in packets *)
  size_hi : float;
  waves : float;  (** diurnal wave periods across the horizon *)
  wave_depth : float;  (** modulation depth in [0, 1) *)
  rpc_max : int;  (** RPC sizes uniform in [1, rpc_max] packets *)
  video_stride : int;  (** CBR cadence: one packet per this many gens *)
  video_pkts : int;  (** CBR segment length cap, in packets *)
}

val default_config :
  ?flows:int -> ?generations:int -> ?seed:int -> unit -> config
(** 50% RPC / 30% bulk / 20% video, Pareto(1.3) on [8, 2000] packets,
    two diurnal waves at depth 0.6. *)

val bounded_pareto : Tango_sim.Rng.t -> alpha:float -> lo:float -> hi:float -> float
(** Inverse-CDF draw from the bounded Pareto on [lo, hi] with tail
    exponent [alpha]. *)

val diurnal_weight :
  generations:int -> waves:float -> depth:float -> int -> float
(** Relative arrival intensity at a generation: [1 + depth * sin] over
    [waves] full periods. Mass-conserving: the weights over the horizon
    sum to [generations] (up to the half-sample phase offset). *)

val diurnal_cumulative :
  generations:int -> waves:float -> depth:float -> float array
(** Cumulative sums of {!diurnal_weight} — the inverse-CDF table flow
    start times sample from. *)

type plan

val plan : config -> plan
(** Build the full per-flow schedule. Deterministic in [config] (same
    config, byte-identical plan). Raises [Invalid_argument] on
    malformed configs. *)

val uniform : flows:int -> generations:int -> plan
(** The E14 full-mesh blast as a plan: every flow sends one packet per
    generation over the whole horizon. *)

val flows : plan -> int
val generations : plan -> int

val total_packets : plan -> int
(** Packets scheduled inside the horizon, summed over flows. *)

val max_gen_sends : plan -> int
(** Peak offered packets in any single generation — sizes in-flight
    rings. *)

val gen_sends : plan -> int -> int
(** Offered packets at one generation. *)

val flow_class : plan -> int -> cls
val flow_start : plan -> int -> int
val flow_stride : plan -> int -> int
val flow_pkts : plan -> int -> int

val sends_at : plan -> flow:int -> gen:int -> bool
(** Does this flow put a packet on the wire at this generation? O(1),
    allocation-free. *)

val seq_index : plan -> flow:int -> gen:int -> int
(** 0-based send index of the flow at a generation where {!sends_at}
    holds — the packet's tunnel sequence number. *)

val class_counts : plan -> int * int * int
(** (rpc, bulk, video) flow counts. *)

val fingerprint : plan -> string
(** FNV-1a fold over every schedule-determining int; equal for
    byte-identical plans. *)

val pp_summary : Format.formatter -> plan -> unit
