type t = { addr : Addr.t; len : int }

let mask_v4 len =
  if len = 0 then 0l
  else Int32.shift_left Int32.minus_one (32 - len)

let mask_v6 len =
  Ipv6.shift_left (Ipv6.lognot Ipv6.any) (128 - len)

let canonicalize addr len =
  match addr with
  | Addr.V4 a -> Addr.V4 (Ipv4.of_int32 (Int32.logand (Ipv4.to_int32 a) (mask_v4 len)))
  | Addr.V6 a -> Addr.V6 (Ipv6.logand a (mask_v6 len))

let v addr len =
  let bits = Addr.family_bits addr in
  if len < 0 || len > bits then
    Err.invalid "Prefix.v: length %d out of range for /%d family" len bits;
  { addr = canonicalize addr len; len }

let addr t = t.addr

let length t = t.len

let compare a b =
  let c = Addr.compare a.addr b.addr in
  if c <> 0 then c else Int.compare a.len b.len

let equal a b = compare a b = 0

let of_string s =
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "missing '/' in prefix %S" s)
  | Some i -> (
      let addr_part = String.sub s 0 i in
      let len_part = String.sub s (i + 1) (String.length s - i - 1) in
      match (Addr.of_string addr_part, int_of_string_opt len_part) with
      | Ok a, Some len when len >= 0 && len <= Addr.family_bits a -> Ok (v a len)
      | Ok _, _ -> Error (Printf.sprintf "bad prefix length in %S" s)
      | Error e, _ -> Error e)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> Err.invalid "%s" msg

let to_string t = Printf.sprintf "%s/%d" (Addr.to_string t.addr) t.len

let pp ppf t = Format.pp_print_string ppf (to_string t)

let mem t a =
  match (t.addr, a) with
  | Addr.V4 net, Addr.V4 x ->
      Int32.equal (Ipv4.to_int32 net)
        (Int32.logand (Ipv4.to_int32 x) (mask_v4 t.len))
  | Addr.V6 net, Addr.V6 x -> Ipv6.equal net (Ipv6.logand x (mask_v6 t.len))
  | Addr.V4 _, Addr.V6 _ | Addr.V6 _, Addr.V4 _ -> false

let subsumes p q = p.len <= q.len && mem p q.addr

let overlaps p q = subsumes p q || subsumes q p

let subnet t extra i =
  if extra < 0 then Err.invalid "Prefix.subnet: negative extra bits";
  let bits = Addr.family_bits t.addr in
  let new_len = t.len + extra in
  if new_len > bits then
    Err.invalid "Prefix.subnet: /%d exceeds family width" new_len;
  if i < 0 || (extra < 62 && i >= 1 lsl extra) then
    Err.invalid "Prefix.subnet: index %d out of range for %d extra bits" i extra;
  let base =
    match t.addr with
    | Addr.V4 a ->
        let shifted = Int32.shift_left (Int32.of_int i) (32 - new_len) in
        Addr.V4 (Ipv4.of_int32 (Int32.logor (Ipv4.to_int32 a) shifted))
    | Addr.V6 a ->
        let index = Ipv6.make 0L (Int64.of_int i) in
        Addr.V6 (Ipv6.logor a (Ipv6.shift_left index (128 - new_len)))
  in
  v base new_len

let nth_address t i =
  if Int64.compare i 0L < 0 then Err.invalid "Prefix.nth_address: negative index";
  match t.addr with
  | Addr.V4 a -> Addr.V4 (Ipv4.add a (Int64.to_int i))
  | Addr.V6 a -> Addr.V6 (Ipv6.add a i)
