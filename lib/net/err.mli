(** The declared contract-violation exception of the net library.
    Per-packet code must not raise anonymous [Invalid_argument] /
    [Failure] (lint rule [no-failwith]); it raises {!Invalid} instead. *)

exception Invalid of string

val invalid : ('a, unit, string, 'b) format4 -> 'a
(** [invalid fmt ...] raises {!Invalid} with the formatted message.
    Formatting only happens on the raise path, so callers stay
    allocation-free when the check passes. *)
