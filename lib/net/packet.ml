type tango_header = {
  timestamp_ns : int64;
  seq : int64;
  path_id : int;
  flags : int;
}

type encap = {
  outer_src : Addr.t;
  outer_dst : Addr.t;
  udp_src : int;
  udp_dst : int;
  tango : tango_header;
}

type content = ..

type t = {
  id : int;
  flow : Flow.t;
  payload_bytes : int;
  created_at : float;
  content : content option;
  mutable encap : encap option;
  mutable hops : int list;
}

let create ~id ~flow ~payload_bytes ?content ~created_at () =
  if payload_bytes < 0 then Err.invalid "Packet.create: negative payload";
  { id; flow; payload_bytes; created_at; content; encap = None; hops = [] }

let encapsulate t encap =
  match t.encap with
  | Some _ -> Err.invalid "Packet.encapsulate: already encapsulated"
  | None -> t.encap <- Some encap

let decapsulate t =
  match t.encap with
  | None -> Err.invalid "Packet.decapsulate: not encapsulated"
  | Some e ->
      t.encap <- None;
      e

let is_encapsulated t = Option.is_some t.encap

let forwarding_flow t =
  match t.encap with
  | None -> t.flow
  | Some e ->
      Flow.v ~src:e.outer_src ~dst:e.outer_dst ~proto:17 ~src_port:e.udp_src
        ~dst_port:e.udp_dst

let forwarding_dst t =
  match t.encap with None -> t.flow.Flow.dst | Some e -> e.outer_dst

let record_hop t asn = t.hops <- asn :: t.hops

let path_taken t = List.rev t.hops

(* Fixed header sizes: inner IPv6 (40); tunnel adds outer IPv6 (40),
   UDP (8) and the 20-byte Tango shim. *)
let inner_header_bytes = 40

let tunnel_header_bytes = 40 + 8 + 20

let wire_size t =
  t.payload_bytes + inner_header_bytes
  + match t.encap with None -> 0 | Some _ -> tunnel_header_bytes

let pp ppf t =
  Format.fprintf ppf "#%d %a%s %dB" t.id Flow.pp t.flow
    (match t.encap with
    | None -> ""
    | Some e ->
        Printf.sprintf " [tunnel -> %s path=%d seq=%Ld]"
          (Addr.to_string e.outer_dst) e.tango.path_id e.tango.seq)
    t.payload_bytes
