(* The one declared exception for contract violations in the per-packet
   net library. tango_lint bans undeclared failwith / Invalid_argument
   under lib/net, so a raise from here is always distinguishable from a
   stdlib failure leaking out of the dataplane. *)

exception Invalid of string

let () =
  Printexc.register_printer (function
    | Invalid msg -> Some ("Tango_net.Err.Invalid: " ^ msg)
    | _ -> None)

let invalid fmt = Printf.ksprintf (fun msg -> raise (Invalid msg)) fmt
