(* The one declared exception for contract violations in the per-packet
   net library. tango_lint bans undeclared failwith / Invalid_argument
   under lib/net, so a raise from here is always distinguishable from a
   stdlib failure leaking out of the dataplane. The implementation is
   shared with lib/dataplane via Tango_err; the functor application is
   generative, so this [Invalid] stays a distinct exception. *)

include Tango_err.Make (struct
  let lib = "Tango_net"
end)
