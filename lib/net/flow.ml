type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;
  src_port : int;
  dst_port : int;
}

let v ~src ~dst ~proto ~src_port ~dst_port =
  let check_port name p =
    if p < 0 || p > 0xFFFF then
      Err.invalid "Flow.v: %s port %d out of range" name p
  in
  check_port "source" src_port;
  check_port "destination" dst_port;
  if proto < 0 || proto > 255 then
    Err.invalid "Flow.v: protocol %d out of range" proto;
  { src; dst; proto; src_port; dst_port }

let compare a b =
  let c = Addr.compare a.src b.src in
  if c <> 0 then c
  else begin
    let c = Addr.compare a.dst b.dst in
    if c <> 0 then c
    else begin
      let c = Int.compare a.proto b.proto in
      if c <> 0 then c
      else begin
        let c = Int.compare a.src_port b.src_port in
        if c <> 0 then c else Int.compare a.dst_port b.dst_port
      end
    end
  end

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "%a:%d -> %a:%d proto=%d" Addr.pp t.src t.src_port
    Addr.pp t.dst t.dst_port t.proto

let reverse t =
  { t with src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

(* FNV-1a, folding every byte of both addresses, the ports, the protocol
   and the salt. Stable across runs: ECMP decisions must be reproducible. *)
let hash_5tuple ?(salt = 0) t =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let feed_byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xFF))) fnv_prime
  in
  let feed_int64 x =
    for shift = 0 to 7 do
      feed_byte (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
    done
  in
  let feed_addr = function
    | Addr.V4 a -> feed_int64 (Int64.of_int32 (Ipv4.to_int32 a))
    | Addr.V6 a ->
        feed_int64 (Ipv6.hi a);
        feed_int64 (Ipv6.lo a)
  in
  feed_addr t.src;
  feed_addr t.dst;
  feed_byte t.proto;
  feed_byte t.src_port;
  feed_byte (t.src_port lsr 8);
  feed_byte t.dst_port;
  feed_byte (t.dst_port lsr 8);
  feed_int64 (Int64.of_int salt);
  (* Keep 62 bits so the result is a non-negative native int. *)
  Int64.to_int (Int64.shift_right_logical !h 2)
