(** IPv6 addresses as opaque 128-bit values (two 64-bit halves).

    Parsing accepts full and "::"-compressed textual forms; printing
    follows RFC 5952 (lowercase hex, longest zero run compressed,
    leftmost run on ties, no compression of a single group). *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val make : int64 -> int64 -> t
(** [make hi lo] from the high and low 64 bits (network order). *)

val hi : t -> int64
val lo : t -> int64

val of_groups : int array -> t
(** From eight 16-bit groups, most significant first. Raises
    {!Err.Invalid} unless exactly eight in-range groups are given. *)

val to_groups : t -> int array

val of_string : string -> (t, string) result
val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val add : t -> int64 -> t
(** 128-bit addition of a non-negative 64-bit offset, with carry. *)

val logand : t -> t -> t
val logor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** [shift_left t n] for [0 <= n <= 128]. *)

val shift_right : t -> int -> t
(** Logical right shift, [0 <= n <= 128]. *)

val any : t
(** [::] *)

val localhost : t
(** [::1] *)
