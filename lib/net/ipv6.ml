type t = { hi : int64; lo : int64 }

let compare a b =
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let equal a b = compare a b = 0

(* Multiply-xor mix of the two halves; no tuple for Hashtbl.hash to
   walk polymorphically. The constant is the splitmix64 multiplier. *)
let hash t =
  Int64.to_int (Int64.logxor t.hi (Int64.mul t.lo 0xBF58476D1CE4E5B9L)) land max_int

let make hi lo = { hi; lo }

let hi t = t.hi

let lo t = t.lo

let of_groups groups =
  if Array.length groups <> 8 then
    Err.invalid "Ipv6.of_groups: expected 8 groups";
  Array.iter
    (fun g ->
      if g < 0 || g > 0xFFFF then
        Err.invalid "Ipv6.of_groups: group %x out of range" g)
    groups;
  let pack a b c d =
    Int64.logor
      (Int64.shift_left (Int64.of_int a) 48)
      (Int64.logor
         (Int64.shift_left (Int64.of_int b) 32)
         (Int64.logor (Int64.shift_left (Int64.of_int c) 16) (Int64.of_int d)))
  in
  {
    hi = pack groups.(0) groups.(1) groups.(2) groups.(3);
    lo = pack groups.(4) groups.(5) groups.(6) groups.(7);
  }

let to_groups t =
  let unpack word =
    [|
      Int64.to_int (Int64.logand (Int64.shift_right_logical word 48) 0xFFFFL);
      Int64.to_int (Int64.logand (Int64.shift_right_logical word 32) 0xFFFFL);
      Int64.to_int (Int64.logand (Int64.shift_right_logical word 16) 0xFFFFL);
      Int64.to_int (Int64.logand word 0xFFFFL);
    |]
  in
  Array.append (unpack t.hi) (unpack t.lo)

(* RFC 5952: compress the longest run of >= 2 zero groups (leftmost wins). *)
let to_string t =
  let groups = to_groups t in
  let best_start = ref (-1) and best_len = ref 0 in
  let cur_start = ref (-1) and cur_len = ref 0 in
  for i = 0 to 7 do
    if groups.(i) = 0 then begin
      if !cur_start < 0 then cur_start := i;
      incr cur_len;
      if !cur_len > !best_len then begin
        best_len := !cur_len;
        best_start := !cur_start
      end
    end
    else begin
      cur_start := -1;
      cur_len := 0
    end
  done;
  let buf = Buffer.create 40 in
  if !best_len >= 2 then begin
    for i = 0 to !best_start - 1 do
      if i > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" groups.(i))
    done;
    Buffer.add_string buf "::";
    for i = !best_start + !best_len to 7 do
      if i > !best_start + !best_len then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" groups.(i))
    done
  end
  else
    for i = 0 to 7 do
      if i > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" groups.(i))
    done;
  Buffer.contents buf

let parse_group s =
  let len = String.length s in
  if len = 0 || len > 4 then None
  else begin
    let ok = ref true in
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
        | _ -> ok := false)
      s;
    if !ok then int_of_string_opt ("0x" ^ s) else None
  end

let of_string s =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  if String.length s = 0 then fail "empty IPv6 address"
  else begin
    (* Split on "::" first; each side is a plain ':'-separated list. *)
    let double_colon_count =
      let count = ref 0 in
      for i = 0 to String.length s - 2 do
        if s.[i] = ':' && s.[i + 1] = ':' then incr count
      done;
      (* "::" inside ":::" would double-count; reject those outright. *)
      !count
    in
    let contains_triple =
      let found = ref false in
      for i = 0 to String.length s - 3 do
        if s.[i] = ':' && s.[i + 1] = ':' && s.[i + 2] = ':' then found := true
      done;
      !found
    in
    if contains_triple then fail "invalid ':::' in %S" s
    else if double_colon_count > 1 then fail "multiple '::' in %S" s
    else begin
      let split_groups part =
        if String.equal part "" then Some []
        else begin
          let pieces = String.split_on_char ':' part in
          let rec parse_all acc = function
            | [] -> Some (List.rev acc)
            | piece :: rest -> (
                match parse_group piece with
                | Some g -> parse_all (g :: acc) rest
                | None -> None)
          in
          parse_all [] pieces
        end
      in
      let build left right =
        match (split_groups left, split_groups right) with
        | Some l, Some r ->
            let missing = 8 - List.length l - List.length r in
            if missing < 0 then fail "too many groups in %S" s
            else begin
              let zeros = List.init missing (fun _ -> 0) in
              let all = l @ zeros @ r in
              Ok (of_groups (Array.of_list all))
            end
        | _ -> fail "invalid group in %S" s
      in
      match String.index_opt s ':' with
      | None -> fail "not an IPv6 address: %S" s
      | Some _ -> (
          match
            (* Locate the "::" if present. *)
            let rec find i =
              if i >= String.length s - 1 then None
              else if s.[i] = ':' && s.[i + 1] = ':' then Some i
              else find (i + 1)
            in
            find 0
          with
          | Some i ->
              let left = String.sub s 0 i in
              let right = String.sub s (i + 2) (String.length s - i - 2) in
              build left right
          | None -> (
              match split_groups s with
              | Some groups when List.length groups = 8 ->
                  Ok (of_groups (Array.of_list groups))
              | Some _ -> fail "wrong group count in %S" s
              | None -> fail "invalid group in %S" s))
    end
  end

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> Err.invalid "%s" msg

let pp ppf t = Format.pp_print_string ppf (to_string t)

let add t offset =
  let lo = Int64.add t.lo offset in
  (* Unsigned overflow detection: result is smaller than an operand. *)
  let carried = Int64.unsigned_compare lo t.lo < 0 in
  { hi = (if carried then Int64.add t.hi 1L else t.hi); lo }

let logand a b = { hi = Int64.logand a.hi b.hi; lo = Int64.logand a.lo b.lo }

let logor a b = { hi = Int64.logor a.hi b.hi; lo = Int64.logor a.lo b.lo }

let lognot a = { hi = Int64.lognot a.hi; lo = Int64.lognot a.lo }

let shift_left t n =
  if n < 0 || n > 128 then Err.invalid "Ipv6.shift_left: shift out of range";
  if n = 0 then t
  else if n >= 128 then { hi = 0L; lo = 0L }
  else if n >= 64 then { hi = Int64.shift_left t.lo (n - 64); lo = 0L }
  else
    {
      hi =
        Int64.logor (Int64.shift_left t.hi n)
          (Int64.shift_right_logical t.lo (64 - n));
      lo = Int64.shift_left t.lo n;
    }

let shift_right t n =
  if n < 0 || n > 128 then Err.invalid "Ipv6.shift_right: shift out of range";
  if n = 0 then t
  else if n >= 128 then { hi = 0L; lo = 0L }
  else if n >= 64 then { hi = 0L; lo = Int64.shift_right_logical t.hi (n - 64) }
  else
    {
      hi = Int64.shift_right_logical t.hi n;
      lo =
        Int64.logor
          (Int64.shift_right_logical t.lo n)
          (Int64.shift_left t.hi (64 - n));
    }

let any = { hi = 0L; lo = 0L }

let localhost = { hi = 0L; lo = 1L }
