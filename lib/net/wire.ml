type ipv6_header = {
  traffic_class : int;
  flow_label : int;
  payload_length : int;
  next_header : int;
  hop_limit : int;
  src : Ipv6.t;
  dst : Ipv6.t;
}

type udp_header = { src_port : int; dst_port : int; length : int; checksum : int }

let tango_shim_bytes = 20

let tango_shim_auth_bytes = 28

let auth_flag = 0x0001

let ipv6_header_bytes = 40

let udp_header_bytes = 8

let max_frame_bytes ~payload_bytes =
  ipv6_header_bytes + udp_header_bytes + tango_shim_auth_bytes + payload_bytes

let[@hot] set_u16 buf off v =
  Bytes.set_uint8 buf off ((v lsr 8) land 0xFF);
  Bytes.set_uint8 buf (off + 1) (v land 0xFF)

let[@hot] get_u16 buf off = (Bytes.get_uint8 buf off lsl 8) lor Bytes.get_uint8 buf (off + 1)

let[@hot] set_u32 buf off v =
  Bytes.set_uint8 buf off ((v lsr 24) land 0xFF);
  Bytes.set_uint8 buf (off + 1) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 buf (off + 2) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 buf (off + 3) (v land 0xFF)

let[@hot] get_u32 buf off =
  (Bytes.get_uint8 buf off lsl 24)
  lor (Bytes.get_uint8 buf (off + 1) lsl 16)
  lor (Bytes.get_uint8 buf (off + 2) lsl 8)
  lor Bytes.get_uint8 buf (off + 3)

let[@hot] set_u64 buf off v =
  for i = 0 to 7 do
    Bytes.set_uint8 buf (off + i)
      (Int64.to_int (Int64.shift_right_logical v ((7 - i) * 8)) land 0xFF)
  done

let[@hot] get_u64 buf off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Bytes.get_uint8 buf (off + i)))
  done;
  !v

let[@hot] set_ipv6 buf off a =
  set_u64 buf off (Ipv6.hi a);
  set_u64 buf (off + 8) (Ipv6.lo a)

let[@hot] get_ipv6 buf off = Ipv6.make (get_u64 buf off) (get_u64 buf (off + 8))

(* One's-complement accumulation: callers add 16-bit words into a plain
   int accumulator, then [finish_sum] folds the carries and complements.
   Splitting it this way lets the pseudo-header be folded straight into
   the running sum without ever materializing it as bytes. *)

let[@hot] finish_sum sum =
  let sum = ref sum in
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

(* Sum the 16-bit big-endian words of [buf.(off .. off+len-1)], padding
   an odd tail with a zero byte. The word starting at absolute offset
   [skip] (which must be [off]-aligned to a word boundary) is treated as
   zero — how the checksum field itself is excluded without copying. *)
let[@hot] sum_range buf ~off ~len ~skip acc =
  let acc = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    if !i <> skip then acc := !acc + get_u16 buf !i;
    i := !i + 2
  done;
  if len land 1 = 1 then acc := !acc + (Bytes.get_uint8 buf (stop - 1) lsl 8);
  !acc

let[@hot] sum_u64 v acc =
  acc
  + (Int64.to_int (Int64.shift_right_logical v 48) land 0xFFFF)
  + (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFF)
  + (Int64.to_int (Int64.shift_right_logical v 16) land 0xFFFF)
  + (Int64.to_int v land 0xFFFF)

let internet_checksum buf =
  finish_sum (sum_range buf ~off:0 ~len:(Bytes.length buf) ~skip:(-1) 0)

(* IPv6 pseudo-header (src, dst, upper-layer length, next-header 17)
   folded word-by-word into the running sum — no scratch buffer. *)
let[@hot] udp_checksum_range ~src ~dst buf ~off ~len ~skip =
  let acc =
    sum_u64 (Ipv6.hi src)
      (sum_u64 (Ipv6.lo src) (sum_u64 (Ipv6.hi dst) (sum_u64 (Ipv6.lo dst) 0)))
  in
  let acc = acc + (len lsr 16) + (len land 0xFFFF) + 17 in
  let sum = finish_sum (sum_range buf ~off ~len ~skip acc) in
  if sum = 0 then 0xFFFF else sum

let udp_checksum ~src ~dst ~udp =
  udp_checksum_range ~src ~dst udp ~off:0 ~len:(Bytes.length udp) ~skip:(-1)

(* Authentication covers everything an attacker could usefully rewrite:
   outer addresses (path identity), ports (ECMP pin) and the shim. *)
let auth_message_bytes = 56

let[@hot] auth_message_into m ~outer_src ~outer_dst ~udp_src ~udp_dst
    ~(tango : Packet.tango_header) ~flags =
  if Bytes.length m < auth_message_bytes then
    Err.invalid "Wire.auth_message_into: buffer shorter than 56 bytes";
  set_ipv6 m 0 outer_src;
  set_ipv6 m 16 outer_dst;
  set_u16 m 32 udp_src;
  set_u16 m 34 udp_dst;
  set_u64 m 36 tango.Packet.timestamp_ns;
  set_u64 m 44 tango.Packet.seq;
  set_u16 m 52 tango.Packet.path_id;
  set_u16 m 54 flags

(* Per-module scratch for the 56-byte MAC input, reused across packets
   the way an eBPF program reuses its per-CPU scratch map. The simulator
   is single-domain; this is not safe under parallel domains. *)
let auth_scratch = Bytes.make auth_message_bytes '\000'

let[@hot] mac ~auth_key ~outer_src ~outer_dst ~udp_src ~udp_dst ~tango ~flags =
  auth_message_into auth_scratch ~outer_src ~outer_dst ~udp_src ~udp_dst ~tango
    ~flags;
  Siphash.mac auth_key auth_scratch

let[@hot] encode_tunnel_into ?auth_key ~outer_src ~outer_dst ~udp_src ~udp_dst
    ~(tango : Packet.tango_header) ~buf payload =
  let authenticated = Option.is_some auth_key in
  let shim_bytes = if authenticated then tango_shim_auth_bytes else tango_shim_bytes in
  let wire_flags =
    if authenticated then tango.flags lor auth_flag else tango.flags land lnot auth_flag
  in
  let payload_len = Bytes.length payload in
  let udp_len = udp_header_bytes + shim_bytes + payload_len in
  let total = ipv6_header_bytes + udp_len in
  if Bytes.length buf < total then
    Err.invalid "Wire.encode_tunnel_into: buffer %d < frame %d"
         (Bytes.length buf) total;
  (* IPv6 fixed header. *)
  Bytes.set_uint8 buf 0 0x60;
  Bytes.set_uint8 buf 1 0;
  set_u16 buf 2 0;
  set_u16 buf 4 udp_len;
  Bytes.set_uint8 buf 6 17 (* next header: UDP *);
  Bytes.set_uint8 buf 7 64 (* hop limit *);
  set_ipv6 buf 8 outer_src;
  set_ipv6 buf 24 outer_dst;
  (* UDP header. *)
  let udp_off = ipv6_header_bytes in
  set_u16 buf udp_off udp_src;
  set_u16 buf (udp_off + 2) udp_dst;
  set_u16 buf (udp_off + 4) udp_len;
  set_u16 buf (udp_off + 6) 0;
  (* Tango shim: timestamp(8) seq(8) path_id(2) flags(2) [tag(8)]. *)
  let shim_off = udp_off + udp_header_bytes in
  set_u64 buf shim_off tango.timestamp_ns;
  set_u64 buf (shim_off + 8) tango.seq;
  set_u16 buf (shim_off + 16) tango.path_id;
  set_u16 buf (shim_off + 18) wire_flags;
  (match auth_key with
  | Some key ->
      set_u64 buf (shim_off + 20)
        (mac ~auth_key:key ~outer_src ~outer_dst ~udp_src ~udp_dst ~tango
           ~flags:wire_flags)
  | None -> ());
  Bytes.blit payload 0 buf (shim_off + shim_bytes) payload_len;
  (* Checksum over the UDP datagram in place (the field is still zero). *)
  let sum =
    udp_checksum_range ~src:outer_src ~dst:outer_dst buf ~off:udp_off
      ~len:udp_len ~skip:(-1)
  in
  set_u16 buf (udp_off + 6) sum;
  total

let encode_tunnel ?auth_key ~outer_src ~outer_dst ~udp_src ~udp_dst ~tango
    payload =
  let authenticated = Option.is_some auth_key in
  let shim_bytes = if authenticated then tango_shim_auth_bytes else tango_shim_bytes in
  let total =
    ipv6_header_bytes + udp_header_bytes + shim_bytes + Bytes.length payload
  in
  let buf = Bytes.create total in
  let written =
    encode_tunnel_into ?auth_key ~outer_src ~outer_dst ~udp_src ~udp_dst ~tango
      ~buf payload
  in
  assert (written = total);
  buf

(* Zero-copy parse: validate the frame and locate the payload without
   allocating anything beyond the two small header records. *)
let decode_tunnel_spans ?auth_key buf =
  let len = Bytes.length buf in
  if len < ipv6_header_bytes + udp_header_bytes + tango_shim_bytes then
    Error (Printf.sprintf "frame too short: %d bytes" len)
  else if Bytes.get_uint8 buf 0 lsr 4 <> 6 then
    Error "not an IPv6 frame"
  else begin
    let payload_length = get_u16 buf 4 in
    let next_header = Bytes.get_uint8 buf 6 in
    if next_header <> 17 then Error (Printf.sprintf "next header %d is not UDP" next_header)
    else if ipv6_header_bytes + payload_length > len then Error "truncated frame"
    else begin
      let ipv6 =
        {
          traffic_class =
            ((Bytes.get_uint8 buf 0 land 0x0F) lsl 4)
            lor (Bytes.get_uint8 buf 1 lsr 4);
          flow_label =
            ((Bytes.get_uint8 buf 1 land 0x0F) lsl 16)
            lor (Bytes.get_uint8 buf 2 lsl 8)
            lor Bytes.get_uint8 buf 3;
          payload_length;
          next_header;
          hop_limit = Bytes.get_uint8 buf 7;
          src = get_ipv6 buf 8;
          dst = get_ipv6 buf 24;
        }
      in
      let udp_off = ipv6_header_bytes in
      let udp =
        {
          src_port = get_u16 buf udp_off;
          dst_port = get_u16 buf (udp_off + 2);
          length = get_u16 buf (udp_off + 4);
          checksum = get_u16 buf (udp_off + 6);
        }
      in
      if udp.length <> payload_length then Error "UDP length mismatch"
      else begin
        (* Verify by recomputing with the checksum word skipped in place —
           no zeroed copy of the datagram. *)
        let expect =
          udp_checksum_range ~src:ipv6.src ~dst:ipv6.dst buf ~off:udp_off
            ~len:udp.length ~skip:(udp_off + 6)
        in
        if expect <> udp.checksum then
          Error
            (Printf.sprintf "bad UDP checksum: got %04x want %04x" udp.checksum
               expect)
        else begin
          let shim_off = udp_off + udp_header_bytes in
          let wire_flags = get_u16 buf (shim_off + 18) in
          let authenticated = wire_flags land auth_flag <> 0 in
          let tango : Packet.tango_header =
            {
              timestamp_ns = get_u64 buf shim_off;
              seq = get_u64 buf (shim_off + 8);
              path_id = get_u16 buf (shim_off + 16);
              flags = wire_flags;
            }
          in
          let shim_bytes =
            if authenticated then tango_shim_auth_bytes else tango_shim_bytes
          in
          if ipv6_header_bytes + payload_length < shim_off + shim_bytes then
            Error "frame too short for its shim"
          else begin
            match (auth_key, authenticated) with
            | None, true -> Error "authenticated frame but no key configured"
            | Some _, false -> Error "unauthenticated frame rejected (key configured)"
            | None, false ->
                let payload_off = shim_off + shim_bytes in
                let payload_len = ipv6_header_bytes + payload_length - payload_off in
                Ok (ipv6, udp, tango, payload_off, payload_len)
            | Some key, true ->
                let expect =
                  mac ~auth_key:key ~outer_src:ipv6.src ~outer_dst:ipv6.dst
                    ~udp_src:udp.src_port ~udp_dst:udp.dst_port ~tango
                    ~flags:wire_flags
                in
                if not (Int64.equal expect (get_u64 buf (shim_off + 20))) then
                  Error "authentication tag mismatch"
                else begin
                  let payload_off = shim_off + shim_bytes in
                  let payload_len = ipv6_header_bytes + payload_length - payload_off in
                  Ok (ipv6, udp, tango, payload_off, payload_len)
                end
          end
        end
      end
    end
  end

let decode_tunnel_into ?auth_key ~payload buf =
  match decode_tunnel_spans ?auth_key buf with
  | Error _ as e -> e
  | Ok (ipv6, udp, tango, payload_off, payload_len) ->
      if Bytes.length payload < payload_len then
        Error
          (Printf.sprintf "payload buffer %d < payload %d" (Bytes.length payload)
             payload_len)
      else begin
        Bytes.blit buf payload_off payload 0 payload_len;
        Ok (ipv6, udp, tango, payload_len)
      end

let decode_tunnel ?auth_key buf =
  match decode_tunnel_spans ?auth_key buf with
  | Error _ as e -> e
  | Ok (ipv6, udp, tango, payload_off, payload_len) ->
      Ok (ipv6, udp, tango, Bytes.sub buf payload_off payload_len)
