(** IPv4 addresses as opaque 32-bit values. *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d]; each octet must fit in a byte,
    otherwise {!Err.Invalid} is raised. *)

val of_string : string -> (t, string) result
(** Parse dotted-quad notation. *)

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val succ : t -> t
(** Numerically next address, wrapping at [255.255.255.255]. *)

val add : t -> int -> t
(** [add t n] offsets the address by [n] (mod 2^32). *)

val localhost : t
val any : t
val broadcast : t
