(** SipHash-2-4 (Aumasson–Bernstein): a fast keyed pseudorandom function
    producing 64-bit tags.

    Used to authenticate the Tango measurement shim against on-path
    attackers who would otherwise inject or rewrite timestamps to skew
    the path statistics (§6, "wide-area, efficient & trustworthy
    telemetry"). SipHash is small enough for a switch data plane and
    needs only a 128-bit shared key between the two cooperating edges. *)

type key
(** 128-bit secret key. *)

val key : int64 -> int64 -> key
(** [key k0 k1] from two little-endian 64-bit halves. *)

val key_of_string : string -> key
(** From exactly 16 bytes (little-endian halves); raises
    {!Err.Invalid} otherwise. *)

val mac : key -> Bytes.t -> int64
(** SipHash-2-4 of the byte string. *)

val mac_string : key -> string -> int64
