type key = { k0 : int64; k1 : int64 }

let key k0 k1 = { k0; k1 }

let key_of_string s =
  if String.length s <> 16 then
    Err.invalid "Siphash.key_of_string: need exactly 16 bytes";
  let le64 off =
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
    done;
    !v
  in
  { k0 = le64 0; k1 = le64 8 }

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

(* One SipRound over the four-lane state. *)
let[@inline] sipround v0 v1 v2 v3 =
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  (v0, v1, v2, v3)

let mac { k0; k1 } input =
  let len = Bytes.length input in
  let v0 = ref (Int64.logxor k0 0x736f6d6570736575L) in
  let v1 = ref (Int64.logxor k1 0x646f72616e646f6dL) in
  let v2 = ref (Int64.logxor k0 0x6c7967656e657261L) in
  let v3 = ref (Int64.logxor k1 0x7465646279746573L) in
  let word off available =
    (* Little-endian load of up to 8 bytes. *)
    let v = ref 0L in
    for i = min available 8 - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Bytes.get_uint8 input (off + i)))
    done;
    !v
  in
  let rounds m n =
    v3 := Int64.logxor !v3 m;
    for _ = 1 to n do
      let a, b, c, d = sipround !v0 !v1 !v2 !v3 in
      v0 := a;
      v1 := b;
      v2 := c;
      v3 := d
    done;
    v0 := Int64.logxor !v0 m
  in
  let full_blocks = len / 8 in
  for block = 0 to full_blocks - 1 do
    rounds (word (block * 8) 8) 2
  done;
  (* Final block: remaining bytes plus the length in the top byte. *)
  let remaining = len land 7 in
  let last =
    Int64.logor
      (word (full_blocks * 8) remaining)
      (Int64.shift_left (Int64.of_int (len land 0xFF)) 56)
  in
  rounds last 2;
  v2 := Int64.logxor !v2 0xFFL;
  for _ = 1 to 4 do
    let a, b, c, d = sipround !v0 !v1 !v2 !v3 in
    v0 := a;
    v1 := b;
    v2 := c;
    v3 := d
  done;
  Int64.logxor (Int64.logxor !v0 !v1) (Int64.logxor !v2 !v3)

let mac_string k s = mac k (Bytes.of_string s)
