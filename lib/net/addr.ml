type t = V4 of Ipv4.t | V6 of Ipv6.t

let compare a b =
  match (a, b) with
  | V4 x, V4 y -> Ipv4.compare x y
  | V6 x, V6 y -> Ipv6.compare x y
  | V4 _, V6 _ -> -1
  | V6 _, V4 _ -> 1

let equal a b = compare a b = 0

(* Family-tagged mix without building a tuple for Hashtbl.hash to walk
   polymorphically: shift leaves room for the V4/V6 tag bit. *)
let hash = function
  | V4 x -> (Int32.to_int (Ipv4.to_int32 x) lsl 1) land max_int
  | V6 x -> ((Ipv6.hash x lsl 1) lor 1) land max_int

let of_string s =
  match Ipv4.of_string s with
  | Ok v4 -> Ok (V4 v4)
  | Error _ -> (
      match Ipv6.of_string s with
      | Ok v6 -> Ok (V6 v6)
      | Error _ -> Error (Printf.sprintf "not an IP address: %S" s))

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> Err.invalid "%s" msg

let to_string = function
  | V4 x -> Ipv4.to_string x
  | V6 x -> Ipv6.to_string x

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_v4 = function V4 _ -> true | V6 _ -> false

let is_v6 = function V6 _ -> true | V4 _ -> false

let family_bits = function V4 _ -> 32 | V6 _ -> 128
