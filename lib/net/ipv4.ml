type t = int32

let compare = Int32.unsigned_compare

let equal = Int32.equal

let of_int32 x = x

let to_int32 x = x

let of_octets a b c d =
  let check name v =
    if v < 0 || v > 255 then
      Err.invalid "Ipv4.of_octets: %s octet %d out of range" name v
  in
  check "first" a;
  check "second" b;
  check "third" c;
  check "fourth" d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let octet t shift = Int32.to_int (Int32.logand (Int32.shift_right_logical t shift) 0xFFl)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 24) (octet t 16) (octet t 8) (octet t 0)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let parse x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && String.length x <= 3 -> Some v
        | Some _ | None -> None
      in
      match (parse a, parse b, parse c, parse d) with
      | Some a, Some b, Some c, Some d -> Ok (of_octets a b c d)
      | _ -> Error (Printf.sprintf "invalid IPv4 octet in %S" s))
  | _ -> Error (Printf.sprintf "invalid IPv4 address %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> Err.invalid "%s" msg

let pp ppf t = Format.pp_print_string ppf (to_string t)

let add t n = Int32.add t (Int32.of_int n)

let succ t = add t 1

let localhost = of_octets 127 0 0 1

let any = 0l

let broadcast = of_octets 255 255 255 255
