(** Byte-level encoding of the Tango tunnel headers.

    This is the exact layout the paper's eBPF programs prepend to data
    packets: an outer IPv6 header, a UDP header (present to pin ECMP
    hashing), and a 20-byte Tango shim carrying the sender timestamp, a
    per-tunnel sequence number, the path id and flags. The simulator works
    on structured {!Packet.t} values, but encoding/decoding is implemented
    and tested so the header format is a checked artifact, not prose. *)

type ipv6_header = {
  traffic_class : int;
  flow_label : int;
  payload_length : int;
  next_header : int;
  hop_limit : int;
  src : Ipv6.t;
  dst : Ipv6.t;
}

type udp_header = { src_port : int; dst_port : int; length : int; checksum : int }

val tango_shim_bytes : int
(** Size of the plain Tango shim: 20 bytes. *)

val tango_shim_auth_bytes : int
(** Size of the authenticated shim: 28 bytes (a SipHash-2-4 tag over the
    outer addresses, UDP ports and shim fields is appended). Frames with
    flag bit 0 set carry it — the §6 "trustworthy telemetry" extension
    protecting the measurement stream from on-path forgery. *)

val auth_flag : int
(** Flag bit marking an authenticated shim (0x0001). *)

(** {2 Cursor primitives}

    Big-endian in-place scalar codecs, exported so other wire formats
    (the {!Tango_mesh.Segment} stack, future per-hop MAC chains) reuse
    the same zero-allocation cursor discipline instead of growing their
    own byte twiddling. All are [\[@hot\]]-clean: no bounds beyond the
    [Bytes] primitives, no allocation. *)

val set_u16 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val set_u32 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val set_u64 : Bytes.t -> int -> int64 -> unit
val get_u64 : Bytes.t -> int -> int64

val internet_checksum : Bytes.t -> int
(** RFC 1071 one's-complement sum over a buffer (odd lengths padded). *)

val udp_checksum :
  src:Ipv6.t -> dst:Ipv6.t -> udp:Bytes.t -> int
(** UDP checksum over the IPv6 pseudo-header plus the UDP header+payload
    bytes (with its checksum field zeroed). Never returns 0 (0xFFFF is
    substituted, per RFC 2460). The pseudo-header is folded directly
    into the running sum — no scratch buffer is materialized. *)

val max_frame_bytes : payload_bytes:int -> int
(** Size of the largest frame {!encode_tunnel_into} can emit for a
    payload of [payload_bytes] (the authenticated-shim layout) — how big
    a reusable output buffer must be. *)

val encode_tunnel :
  ?auth_key:Siphash.key ->
  outer_src:Ipv6.t ->
  outer_dst:Ipv6.t ->
  udp_src:int ->
  udp_dst:int ->
  tango:Packet.tango_header ->
  Bytes.t ->
  Bytes.t
(** [encode_tunnel ... payload] produces the full outer frame: IPv6 + UDP + Tango shim + payload, with
    a valid UDP checksum and payload lengths filled in. With [auth_key]
    the shim is the 28-byte authenticated variant and {!auth_flag} is
    set in the flags on the wire. Allocates exactly the returned frame;
    the zero-allocation path is {!encode_tunnel_into}. *)

val encode_tunnel_into :
  ?auth_key:Siphash.key ->
  outer_src:Ipv6.t ->
  outer_dst:Ipv6.t ->
  udp_src:int ->
  udp_dst:int ->
  tango:Packet.tango_header ->
  buf:Bytes.t ->
  Bytes.t ->
  int
(** Like {!encode_tunnel} but writes the frame into the caller-provided
    [buf] starting at offset 0 and returns the frame length — the
    per-packet fast path; a switch reuses one buffer of
    {!max_frame_bytes} for every packet and allocates nothing. Raises
    {!Err.Invalid} when [buf] is too small. Bytes of [buf] beyond
    the returned length are left untouched. Not safe under parallel
    domains (a shared 56-byte MAC scratch is reused, in the way an eBPF
    program reuses a per-CPU scratch map). *)

val decode_tunnel :
  ?auth_key:Siphash.key ->
  Bytes.t ->
  (ipv6_header * udp_header * Packet.tango_header * Bytes.t, string) result
(** Parse and validate a frame produced by {!encode_tunnel}: version
    check, length checks and UDP checksum verification; when the frame is
    authenticated, [auth_key] must be supplied and the tag must verify.
    Supplying a key also {e requires} the frame to be authenticated, so
    an on-path attacker cannot strip protection. Returns the headers and
    the inner payload. *)

val decode_tunnel_into :
  ?auth_key:Siphash.key ->
  payload:Bytes.t ->
  Bytes.t ->
  (ipv6_header * udp_header * Packet.tango_header * int, string) result
(** Like {!decode_tunnel} but copies the inner payload into the
    caller-provided [payload] buffer at offset 0 and returns its length
    — validation (including the checksum, verified in place with the
    checksum word skipped rather than over a zeroed copy) allocates no
    intermediate buffers. Errors when [payload] is too small for the
    frame's payload. *)
