(** Simulated packets.

    A packet carries its original (inner) 5-tuple, an optional Tango
    tunnel encapsulation, and bookkeeping used by the simulator: creation
    time, the AS-level hops traversed so far, and a unique id. *)

type tango_header = {
  timestamp_ns : int64;  (** Sender switch clock at encap time. *)
  seq : int64;  (** Per-tunnel sequence number (loss/reorder detection). *)
  path_id : int;  (** Index of the discovered wide-area path used. *)
  flags : int;  (** Reserved; carried through verbatim. *)
}

type encap = {
  outer_src : Addr.t;
  outer_dst : Addr.t;  (** Tunnel endpoint — selects the wide-area path. *)
  udp_src : int;  (** Fixed per tunnel so ECMP cannot spray the flow. *)
  udp_dst : int;
  tango : tango_header;
}

type content = ..
(** Extensible application payloads (e.g. Tango's peer telemetry
    reports); the simulator forwards them opaquely. *)

type t = {
  id : int;
  flow : Flow.t;  (** Inner (host-to-host) 5-tuple. *)
  payload_bytes : int;
  created_at : float;  (** Virtual time at creation. *)
  content : content option;
  mutable encap : encap option;
  mutable hops : int list;  (** ASNs traversed, most recent first. *)
}

val create :
  id:int ->
  flow:Flow.t ->
  payload_bytes:int ->
  ?content:content ->
  created_at:float ->
  unit ->
  t

val encapsulate : t -> encap -> unit
(** Raises {!Err.Invalid} if the packet is already encapsulated —
    Tango never nests tunnels between a single pair of PoPs. *)

val decapsulate : t -> encap
(** Remove and return the encapsulation; raises {!Err.Invalid} when
    there is none. *)

val is_encapsulated : t -> bool

val forwarding_flow : t -> Flow.t
(** The 5-tuple the core sees: the outer UDP flow when encapsulated,
    otherwise the inner flow. *)

val forwarding_dst : t -> Addr.t
(** Destination address the core routes on — [forwarding_flow]'s [dst]
    without materializing the flow record (the batched fast path resolves
    routes by destination only, so it never needs the full 5-tuple). *)

val record_hop : t -> int -> unit
(** Note traversal of an AS. *)

val path_taken : t -> int list
(** ASNs in traversal order. *)

val wire_size : t -> int
(** Payload plus all header bytes currently on the packet. *)

val pp : Format.formatter -> t -> unit
