(** CIDR prefixes over {!Addr.t}, used both as destination aggregates and —
    Tango's reinterpretation — as names for wide-area routes.

    A prefix is stored in canonical form: host bits are zeroed at
    construction time, so structural equality matches semantic equality. *)

type t

val v : Addr.t -> int -> t
(** [v addr len] canonicalizes [addr] to [len] bits. Raises
    {!Err.Invalid} if [len] is outside the family's range. *)

val addr : t -> Addr.t
(** Canonical (masked) network address. *)

val length : t -> int
(** Prefix length in bits. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val of_string : string -> (t, string) result
(** Parse ["addr/len"]. *)

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val mem : t -> Addr.t -> bool
(** [mem p a] — does [a] fall inside [p]? Always false across families. *)

val subsumes : t -> t -> bool
(** [subsumes p q] — is [q] (as a set of addresses) contained in [p]? *)

val overlaps : t -> t -> bool

val subnet : t -> int -> int -> t
(** [subnet p extra i] is the [i]-th subdivision of [p] into prefixes of
    length [length p + extra]. Used to carve per-route /48s out of an
    institution's IPv6 block. Raises {!Err.Invalid} when [i] is out of
    range or the resulting length is illegal. *)

val nth_address : t -> int64 -> Addr.t
(** [nth_address p i] is the [i]-th host address within [p]; [i] is not
    range-checked beyond being non-negative. *)
