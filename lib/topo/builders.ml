let chain n =
  if n < 1 then invalid_arg "Builders.chain: need at least one node";
  let t = Topology.create () in
  for i = 0 to n - 1 do
    Topology.add_node t ~id:i ~asn:i (Printf.sprintf "chain-%d" i)
  done;
  for i = 0 to n - 2 do
    Topology.connect t ~provider:i ~customer:(i + 1) ()
  done;
  t

let star ~center ~leaves =
  if leaves < 0 then invalid_arg "Builders.star: negative leaf count";
  let t = Topology.create () in
  Topology.add_node t ~id:center ~asn:center "hub";
  for i = 1 to leaves do
    let id = center + i in
    Topology.add_node t ~id ~asn:id (Printf.sprintf "leaf-%d" i);
    Topology.connect t ~provider:center ~customer:id ()
  done;
  t

let tier1_mesh asns =
  let t = Topology.create () in
  List.iter (fun asn -> Topology.add_node t ~id:asn ~asn (Printf.sprintf "t1-%d" asn)) asns;
  let rec mesh = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> Topology.connect_peers t a b ()) rest;
        mesh rest
  in
  mesh asns;
  t

let random_hierarchy ~seed ~tier1 ~tier2 ~stubs =
  if tier1 < 1 then invalid_arg "Builders.random_hierarchy: need a tier-1";
  let rng = Tango_sim.Rng.create ~seed in
  let t = Topology.create () in
  let next_id = ref 0 in
  let fresh name =
    let id = !next_id in
    incr next_id;
    Topology.add_node t ~id ~asn:id (Printf.sprintf "%s-%d" name id);
    id
  in
  let t1 = List.init tier1 (fun _ -> fresh "tier1") in
  let rec mesh = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> Topology.connect_peers t a b ()) rest;
        mesh rest
  in
  mesh t1;
  let t1_arr = Array.of_list t1 in
  let pick_distinct arr k =
    let k = min k (Array.length arr) in
    let shuffled = Array.copy arr in
    Tango_sim.Rng.shuffle rng shuffled;
    Array.to_list (Array.sub shuffled 0 k)
  in
  let t2 =
    List.init tier2 (fun _ ->
        let id = fresh "tier2" in
        let provider_count = 1 + Tango_sim.Rng.int rng 3 in
        List.iter
          (fun p -> Topology.connect t ~provider:p ~customer:id ())
          (pick_distinct t1_arr provider_count);
        id)
  in
  (* Sparse tier-2 peering. *)
  let t2_arr = Array.of_list t2 in
  let n2 = Array.length t2_arr in
  if n2 >= 2 then
    for _ = 1 to n2 do
      let a = t2_arr.(Tango_sim.Rng.int rng n2) in
      let b = t2_arr.(Tango_sim.Rng.int rng n2) in
      if a <> b && Option.is_none (Topology.relationship t a b) then
        Topology.connect_peers t a b ()
    done;
  for _ = 1 to stubs do
    let id = fresh "stub" in
    let provider_count = 1 + Tango_sim.Rng.int rng 2 in
    let pool = if n2 > 0 then t2_arr else t1_arr in
    List.iter
      (fun p -> Topology.connect t ~provider:p ~customer:id ())
      (pick_distinct pool provider_count)
  done;
  t
