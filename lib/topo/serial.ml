let parse input =
  let t = Topology.create () in
  let seen = Hashtbl.create 64 in
  let ensure asn =
    if not (Hashtbl.mem seen asn) then begin
      Hashtbl.replace seen asn ();
      Topology.add_node t ~id:asn ~asn (Printf.sprintf "AS%d" asn)
    end
  in
  let lines = String.split_on_char '\n' input in
  let error = ref None in
  List.iteri
    (fun idx line ->
      if Option.is_none !error then begin
        let lineno = idx + 1 in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if not (String.equal line "") then begin
          match String.split_on_char '|' line with
          | [ a; b; rel ] -> (
              match
                (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b),
                 String.trim rel)
              with
              | Some a, Some b, rel when String.equal rel "-1" || String.equal rel "0" -> (
                  ensure a;
                  ensure b;
                  match
                    if String.equal rel "-1" then Topology.connect t ~provider:a ~customer:b ()
                    else Topology.connect_peers t a b ()
                  with
                  | () -> ()
                  | exception Invalid_argument msg ->
                      error := Some (Printf.sprintf "line %d: %s" lineno msg))
              | Some _, Some _, rel ->
                  error := Some (Printf.sprintf "line %d: unknown relationship %S" lineno rel)
              | _ -> error := Some (Printf.sprintf "line %d: invalid ASN" lineno))
          | _ ->
              error :=
                Some (Printf.sprintf "line %d: expected 'as|as|rel', got %S" lineno line)
        end
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok t

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# <provider-as>|<customer-as>|-1  or  <peer-as>|<peer-as>|0\n";
  let emitted = Hashtbl.create 64 in
  List.iter
    (fun (node : Topology.node) ->
      if node.Topology.id <> node.Topology.asn then
        invalid_arg "Serial.to_string: node id differs from ASN";
      List.iter
        (fun (peer, rel, _link) ->
          let key = (min node.Topology.id peer, max node.Topology.id peer) in
          if not (Hashtbl.mem emitted key) then begin
            Hashtbl.replace emitted key ();
            match rel with
            | Relationship.Customer ->
                Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" node.Topology.id peer)
            | Relationship.Provider ->
                Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" peer node.Topology.id)
            | Relationship.Peer ->
                Buffer.add_string buf (Printf.sprintf "%d|%d|0\n" node.Topology.id peer)
          end)
        (Topology.neighbors t node.Topology.id))
    (Topology.nodes t);
  Buffer.contents buf

let load_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      parse content

let save_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string t))
