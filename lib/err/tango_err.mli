(** Shared declared-exception helper behind the per-library [Err]
    modules of the per-packet libraries (lib/net, lib/dataplane).

    Each library applies {!Make} once at its own [Err] module, getting
    a {e generative} [Invalid] exception — raises stay distinguishable
    per library — while the printer registration and the ksprintf raise
    helper live in one place. *)

module type S = sig
  exception Invalid of string

  val invalid : ('a, unit, string, 'b) format4 -> 'a
  (** [invalid fmt ...] raises [Invalid] with the formatted message.
      Formatting only happens on the raise path, so callers stay
      allocation-free when the check passes. *)
end

module Make (_ : sig
  val lib : string
  (** Library name used as the printer prefix, e.g. ["Tango_net"]:
      exceptions print as ["<lib>.Err.Invalid: <msg>"]. *)
end) : S
