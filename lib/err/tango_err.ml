(* The one shared declared-exception helper behind the per-library
   [Err] modules. tango_lint bans anonymous failwith / Invalid_argument
   under lib/net and lib/dataplane (rule no-failwith); each of those
   libraries applies [Make] once, getting its own generative [Invalid]
   exception — so a raise from one library is still distinguishable
   from the other's — with the registered printer and the ksprintf
   raise helper implemented in exactly one place. *)

module type S = sig
  exception Invalid of string

  val invalid : ('a, unit, string, 'b) format4 -> 'a
end

module Make (Lib : sig
  val lib : string
end) : S = struct
  exception Invalid of string

  let () =
    Printexc.register_printer (function
      | Invalid msg -> Some (Lib.lib ^ ".Err.Invalid: " ^ msg)
      | _ -> None)

  let invalid fmt = Printf.ksprintf (fun msg -> raise (Invalid msg)) fmt
end
