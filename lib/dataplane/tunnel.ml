module Packet = Tango_net.Packet

type t = {
  path_id : int;
  label : string;
  local_endpoint : Tango_net.Addr.t;
  remote_endpoint : Tango_net.Addr.t;
  udp_src : int;
  udp_dst : int;
  mutable next_seq : int64;
}

let create ~path_id ~label ~local_endpoint ~remote_endpoint ?udp_src
    ?(udp_dst = 4789) () =
  if path_id < 0 || path_id > 0xFFFF then
    Err.invalid "Tunnel.create: path_id outside 16 bits";
  let udp_src = match udp_src with Some p -> p | None -> 40000 + path_id in
  { path_id; label; local_endpoint; remote_endpoint; udp_src; udp_dst; next_seq = 0L }

let send t ~clock ~now_s (packet : Packet.t) =
  let seq = t.next_seq in
  t.next_seq <- Int64.add seq 1L;
  Packet.encapsulate packet
    {
      Packet.outer_src = t.local_endpoint;
      outer_dst = t.remote_endpoint;
      udp_src = t.udp_src;
      udp_dst = t.udp_dst;
      tango =
        {
          Packet.timestamp_ns = Clock.now_ns clock ~sim_time_s:now_s;
          seq;
          path_id = t.path_id;
          flags = 0;
        };
    }

type reception = { owd_ms : float; seq : int64; path_id : int }

let receive ~clock ~now_s (packet : Packet.t) =
  let encap = Packet.decapsulate packet in
  let arrival = Clock.now_ns clock ~sim_time_s:now_s in
  let owd_ns = Int64.sub arrival encap.Packet.tango.Packet.timestamp_ns in
  (* tango-lint: allow hot-reach — probe-path only: the batched dataplane reads decapsulate directly (Throughput.lane drain), so this one minor record per 100 Hz probe never sits on the per-packet path *)
  {
    owd_ms = Int64.to_float owd_ns /. 1e6;
    seq = encap.Packet.tango.Packet.seq;
    path_id = encap.Packet.tango.Packet.path_id;
  }

let pp ppf (t : t) =
  Format.fprintf ppf "tunnel %d (%s) %s -> %s udp %d->%d" t.path_id t.label
    (Tango_net.Addr.to_string t.local_endpoint)
    (Tango_net.Addr.to_string t.remote_endpoint)
    t.udp_src t.udp_dst
