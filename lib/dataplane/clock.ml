type t = { offset_ns : int64; drift_ppm : float }

let create ?(offset_ns = 0L) ?(drift_ppm = 0.0) () = { offset_ns; drift_ppm }

let now_ns t ~sim_time_s =
  let base = Int64.of_float (sim_time_s *. 1e9) in
  let drift = Int64.of_float (sim_time_s *. t.drift_ppm *. 1e3) in
  Int64.add (Int64.add base t.offset_ns) drift

let offset_ns t = t.offset_ns

let drift_ppm t = t.drift_ppm

let step t ~step_ns =
  { t with offset_ns = Int64.add t.offset_ns step_ns }
