(* Declared contract-violation exception for the dataplane library —
   the dataplane counterpart of [Tango_net.Err]. tango_lint bans
   undeclared failwith / Invalid_argument under lib/dataplane. *)

exception Invalid of string

let () =
  Printexc.register_printer (function
    | Invalid msg -> Some ("Tango_dataplane.Err.Invalid: " ^ msg)
    | _ -> None)

let invalid fmt = Printf.ksprintf (fun msg -> raise (Invalid msg)) fmt
