(* Declared contract-violation exception for the dataplane library —
   the dataplane counterpart of [Tango_net.Err]. tango_lint bans
   undeclared failwith / Invalid_argument under lib/dataplane. The
   implementation is shared with lib/net via Tango_err; the functor
   application is generative, so this [Invalid] stays a distinct
   exception. *)

include Tango_err.Make (struct
  let lib = "Tango_dataplane"
end)
