(** Tango tunnels and the sender/receiver data-plane programs.

    A tunnel binds a discovered wide-area path (identified by [path_id])
    to a pair of addresses drawn from the per-path prefixes, with fixed
    UDP ports so ECMP hashing in the core cannot spray the tunnel across
    internal lanes. The [send] program is the paper's sender-side eBPF:
    stamp, number and encapsulate; [receive] is the receiver side:
    decapsulate and compute the one-way delay from the embedded
    timestamp. *)

type t = {
  path_id : int;
  label : string;  (** Human name of the path, e.g. "GTT". *)
  local_endpoint : Tango_net.Addr.t;
  remote_endpoint : Tango_net.Addr.t;
  udp_src : int;
  udp_dst : int;
  mutable next_seq : int64;
}

val create :
  path_id:int ->
  label:string ->
  local_endpoint:Tango_net.Addr.t ->
  remote_endpoint:Tango_net.Addr.t ->
  ?udp_src:int ->
  ?udp_dst:int ->
  unit ->
  t
(** Default ports: source [40000 + path_id] (distinct per tunnel),
    destination 4789. *)

val send : t -> clock:Clock.t -> now_s:float -> Tango_net.Packet.t -> unit
(** Sender program: encapsulate the packet on this tunnel, stamping the
    sender clock and the tunnel's next sequence number (which advances).
    Raises {!Err.Invalid} if the packet is already encapsulated. *)

type reception = {
  owd_ms : float;  (** Receiver clock minus embedded timestamp. *)
  seq : int64;
  path_id : int;
}

val receive :
  clock:Clock.t -> now_s:float -> Tango_net.Packet.t -> reception
(** Receiver program: decapsulate and compute the (offset-shifted)
    one-way delay. Raises {!Err.Invalid} on non-tunneled packets. *)

val pp : Format.formatter -> t -> unit
