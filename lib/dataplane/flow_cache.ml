(* Generation-stamped flow -> path map, the software analogue of the
   eBPF per-flow decision map a Tango switch would keep: the expensive
   policy evaluation runs once per flow epoch and every later packet of
   the flow hits an O(1) int-keyed lookup. Invalidation is O(1) too —
   bumping the generation strands every stored entry, and stale slots
   are overwritten in place on their next miss, so flipping the
   preferred path never walks the table. *)

(* Entries pack (generation, path) into one int so a hit allocates
   nothing: generation lsl path_bits lor path. *)
let path_bits = 8

let max_path = (1 lsl path_bits) - 1

(* The generation stamp gets everything above the path byte except the
   top bit (packed entries stay positive): int_size - 1 - path_bits
   bits, i.e. 54 on 64-bit. The stamp wraps modulo 2^gen_bits; an
   unmasked [generation lsl path_bits] would silently drop high bits
   instead, letting a stale entry stamped g alias generation
   g + 2^gen_bits and serve an orphaned decision. On wrap the table is
   reset, because entries stamped in the stamp's previous life at the
   same masked value would otherwise read as fresh. *)
let gen_bits = Sys.int_size - 1 - path_bits

let gen_mask = (1 lsl gen_bits) - 1

let max_generation = gen_mask

type t = {
  table : (int, int) Hashtbl.t;
  mutable generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ?(expected_flows = 1024) () =
  {
    table = Hashtbl.create expected_flows;
    generation = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let[@hot] find t ~flow_hash =
  match Hashtbl.find_opt t.table flow_hash with
  | Some packed when packed lsr path_bits = t.generation ->
      t.hits <- t.hits + 1;
      Some (packed land max_path)
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let[@hot] store t ~flow_hash path =
  if path < 0 || path > max_path then
    Err.invalid "Flow_cache.store: path %d outside [0, %d]" path max_path;
  Hashtbl.replace t.table flow_hash ((t.generation lsl path_bits) lor path)

let invalidate t =
  let next = (t.generation + 1) land gen_mask in
  (* Wraparound: the new stamp value collides with stamps from the
     previous trip around, so drop the stored entries outright — a
     once-per-2^54-invalidations O(n) cost that buys an exact "a stale
     generation is never served" guarantee. *)
  if next = 0 then Hashtbl.reset t.table;
  t.generation <- next;
  t.invalidations <- t.invalidations + 1

let generation t = t.generation

let set_generation t g =
  if g < 0 || g > max_generation then
    Err.invalid "Flow_cache.set_generation: %d outside [0, %d]" g max_generation;
  t.generation <- g

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let flows t = Hashtbl.length t.table
