(* Generation-stamped flow -> path map, the software analogue of the
   eBPF per-flow decision map a Tango switch would keep: the expensive
   policy evaluation runs once per flow epoch and every later packet of
   the flow hits an O(1) int-keyed lookup. Invalidation is O(1) too —
   bumping the generation strands every stored entry, and stale slots
   are overwritten in place on their next miss, so flipping the
   preferred path never walks the table.

   Two residency modes share the packed-entry format:

   - Unbounded (the default, and the only mode before the million-flow
     engine): the table maps flow hash -> packed entry and grows with
     the flow population.
   - Bounded ([capacity] given): the table maps flow hash -> slot in
     flat arrays of [capacity] entries and a clock hand evicts when the
     slots fill. The hand is generation-aware: a slot stamped with an
     older generation is already worthless (a lookup would miss anyway),
     so it is reclaimed on sight, while fresh entries get the classic
     one-bit second chance. A hit stays zero-allocation: one Hashtbl
     probe, one array load, one ref-bit store. *)

module Metric = Tango_obs.Metric

(* Process-wide eviction pressure, aggregated across caches (one cache
   per dataplane lane; see DESIGN.md §14). *)
let m_evictions =
  Metric.counter ~help:"Bounded flow-cache entries evicted by the clock hand"
    "flow_cache_evictions_total"

(* Entries pack (generation, path) into one int so a hit allocates
   nothing: generation lsl path_bits lor path. *)
let path_bits = 8

let max_path = (1 lsl path_bits) - 1

(* The generation stamp gets everything above the path byte except the
   top bit (packed entries stay positive): int_size - 1 - path_bits
   bits, i.e. 54 on 64-bit. The stamp wraps modulo 2^gen_bits; an
   unmasked [generation lsl path_bits] would silently drop high bits
   instead, letting a stale entry stamped g alias generation
   g + 2^gen_bits and serve an orphaned decision. On wrap the table is
   reset, because entries stamped in the stamp's previous life at the
   same masked value would otherwise read as fresh. *)
let gen_bits = Sys.int_size - 1 - path_bits

let gen_mask = (1 lsl gen_bits) - 1

let max_generation = gen_mask

type t = {
  table : (int, int) Hashtbl.t;
      (* unbounded: flow hash -> packed entry; bounded: flow hash -> slot *)
  capacity : int;  (* 0 = unbounded *)
  slot_key : int array;  (* bounded only; length = capacity *)
  slot_packed : int array;
  slot_ref : Bytes.t;  (* clock-hand second-chance bits *)
  mutable hand : int;
  mutable filled : int;  (* slots in use; resets only on generation wrap *)
  mutable evictions : int;
  mutable generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let no_slots = [||]

let no_bits = Bytes.create 0

let create ?(expected_flows = 1024) ?capacity () =
  match capacity with
  | None ->
      {
        table = Hashtbl.create expected_flows;
        capacity = 0;
        slot_key = no_slots;
        slot_packed = no_slots;
        slot_ref = no_bits;
        hand = 0;
        filled = 0;
        evictions = 0;
        generation = 0;
        hits = 0;
        misses = 0;
        invalidations = 0;
      }
  | Some c ->
      if c <= 0 then
        Err.invalid "Flow_cache.create: capacity %d must be positive" c;
      {
        table = Hashtbl.create c;
        capacity = c;
        slot_key = Array.make c 0;
        slot_packed = Array.make c 0;
        slot_ref = Bytes.make c '\000';
        hand = 0;
        filled = 0;
        evictions = 0;
        generation = 0;
        hits = 0;
        misses = 0;
        invalidations = 0;
      }

let[@hot] find t ~flow_hash =
  if t.capacity = 0 then
    match Hashtbl.find_opt t.table flow_hash with
    | Some packed when packed lsr path_bits = t.generation ->
        t.hits <- t.hits + 1;
        Some (packed land max_path)
    | Some _ | None ->
        t.misses <- t.misses + 1;
        None
  else
    match Hashtbl.find_opt t.table flow_hash with
    | Some slot ->
        let packed = Array.unsafe_get t.slot_packed slot in
        if packed lsr path_bits = t.generation then begin
          t.hits <- t.hits + 1;
          Bytes.unsafe_set t.slot_ref slot '\001';
          Some (packed land max_path)
        end
        else begin
          t.misses <- t.misses + 1;
          None
        end
    | None ->
        t.misses <- t.misses + 1;
        None

(* Advance the clock hand to the next reclaimable slot. Stale-generation
   slots are reclaimed on sight (their entry can never hit again until
   overwritten); fresh slots spend their second-chance bit first. Worst
   case one full sweep clears every ref bit and the next visit evicts,
   so the [steps] guard is belt-and-braces termination, never the common
   exit. *)
let rec clock_sweep t steps =
  let s = t.hand in
  t.hand <- (if s + 1 = t.capacity then 0 else s + 1);
  if Array.unsafe_get t.slot_packed s lsr path_bits <> t.generation then s
  else if Bytes.unsafe_get t.slot_ref s <> '\000' && steps < 2 * t.capacity
  then begin
    Bytes.unsafe_set t.slot_ref s '\000';
    clock_sweep t (steps + 1)
  end
  else s

let[@hot] store t ~flow_hash path =
  if path < 0 || path > max_path then
    Err.invalid "Flow_cache.store: path %d outside [0, %d]" path max_path;
  let packed = (t.generation lsl path_bits) lor path in
  if t.capacity = 0 then Hashtbl.replace t.table flow_hash packed
  else
    match Hashtbl.find_opt t.table flow_hash with
    | Some slot ->
        Array.unsafe_set t.slot_packed slot packed;
        Bytes.unsafe_set t.slot_ref slot '\001'
    | None ->
        let slot =
          if t.filled < t.capacity then begin
            let s = t.filled in
            t.filled <- s + 1;
            s
          end
          else begin
            let s = clock_sweep t 0 in
            Hashtbl.remove t.table (Array.unsafe_get t.slot_key s);
            t.evictions <- t.evictions + 1;
            Metric.incr m_evictions;
            s
          end
        in
        Array.unsafe_set t.slot_key slot flow_hash;
        Array.unsafe_set t.slot_packed slot packed;
        Bytes.unsafe_set t.slot_ref slot '\001';
        Hashtbl.add t.table flow_hash slot

let invalidate t =
  let next = (t.generation + 1) land gen_mask in
  (* Wraparound: the new stamp value collides with stamps from the
     previous trip around, so drop the stored entries outright — a
     once-per-2^54-invalidations O(n) cost that buys an exact "a stale
     generation is never served" guarantee. In bounded mode the slot
     arrays are implicitly cleared too: no table entry means no slot is
     ever read, and the fill pointer restarts from zero. *)
  if next = 0 then begin
    Hashtbl.reset t.table;
    t.filled <- 0;
    t.hand <- 0
  end;
  t.generation <- next;
  t.invalidations <- t.invalidations + 1

let generation t = t.generation

let set_generation t g =
  if g < 0 || g > max_generation then
    Err.invalid "Flow_cache.set_generation: %d outside [0, %d]" g max_generation;
  t.generation <- g

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let flows t = Hashtbl.length t.table

let capacity t = t.capacity

let resident t = Hashtbl.length t.table

let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
