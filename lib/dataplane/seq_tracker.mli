(** Per-tunnel loss and reordering detection from the Tango sequence
    numbers (§3: "tunnel-specific sequence numbers on packets can allow
    Tango to additionally compute loss and reordering"). *)

type t

val create : unit -> t

val observe : ?now_s:float -> t -> int64 -> unit
(** Feed the sequence number of an arriving packet. A gap is counted as
    provisional loss; a late arrival of a previously-missing number
    converts the loss into a reordering; a second arrival of a delivered
    number counts as a duplicate. Each event also feeds the obs layer
    (counters plus trace records stamped [now_s]; the tracker itself is
    clockless, so callers without a clock may omit it). *)

val received : t -> int
val lost : t -> int
(** Numbers missing: gaps never filled, plus everything confirmed by
    {!confirm_below}. *)

val confirm_below : t -> int64 -> unit
(** Declare every still-missing sequence strictly below the bound
    permanently lost: pruned from the provisional set (bounding its
    size, like the fixed-size map a real switch keeps) while still
    counting in {!lost}. Only call with bounds the reordering horizon
    can no longer reach — a late arrival of a confirmed sequence counts
    as a duplicate. Cost is one load when nothing is provisionally
    missing. Raises {!Err.Invalid} for bounds outside [0, max_int]. *)

val reordered : t -> int
val duplicates : t -> int

val provisional : t -> int
(** Sequences currently held in the provisional-missing set — the
    tracker's resident state. Maintained incrementally, so reading it is
    one load even at 10^6 trackers. *)

val loss_rate : t -> float
(** [lost / (received + lost)]; [0.] before any traffic. *)

val recent_loss_rate : t -> float
(** EWMA of the per-packet loss indicator — a {e live} estimate that
    climbs within tens of packets of a loss episode and decays
    afterwards (reorder heals are credited back). Feeds failover
    policies. *)

val pp : Format.formatter -> t -> unit

(** A dense keyed population of trackers with O(1) aggregate accounting
    of active keys and resident provisional state — the structure the
    million-flow load engine keeps per dataplane lane (DESIGN.md §14).
    The [ceiling] is an advisory bound checked against the resident
    peak: callers keep under it by pruning with {!confirm_below} as
    flows advance, and {!within_ceiling} reports whether they
    succeeded. *)
module Table : sig
  type tracker = t

  type t

  val create : ?ceiling:int -> ?idle_generations:int -> keys:int -> unit -> t
  (** A table of [keys] fresh trackers. [ceiling] bounds (advisorily)
      the total provisional entries; [0] (default) means unbounded.
      [idle_generations] (default [0] = aging off) is the expiry
      horizon for {!advance_generation}: a tracker not observed for
      more than that many whole generations is evicted. Raises
      {!Err.Invalid} when any is negative. *)

  val keys : t -> int

  val tracker : t -> int -> tracker
  (** Direct access to one tracker (reads only — feeding it sequences
      directly would bypass the table's accounting). *)

  val observe : ?now_s:float -> t -> key:int -> int64 -> unit
  (** {!Seq_tracker.observe} on the keyed tracker, updating the active
      and resident aggregates. *)

  val confirm_below : t -> key:int -> int64 -> unit
  (** {!Seq_tracker.confirm_below} on the keyed tracker, crediting the
      pruned entries back to the resident aggregate. *)

  val prune : t -> bound_of:(int -> int64) -> unit
  (** {!confirm_below} every key at its own bound — the full-table sweep
      a memory-pressure response would run. *)

  val advance_generation : t -> int
  (** Close the current generation and open the next, returning its
      number. With [idle_generations > 0] this also sweeps the table:
      every tracker whose last observation is more than
      [idle_generations] generations old is {e evicted} — its
      provisional-missing set is freed (the entries count as confirmed
      losses; they can no longer heal into reorderings) and credited
      back to {!resident}, and its next observation re-anchors on the
      arriving sequence instead of counting the idle gap as loss. The
      sweep is O(keys); call it at generation cadence, not per packet.
      With [idle_generations = 0] only the generation number advances. *)

  val generation : t -> int
  (** Current generation number (starts at 0). *)

  val idle_generations : t -> int

  val evictions : t -> int
  (** Trackers expired by {!advance_generation} sweeps so far. *)

  val active_keys : t -> int
  (** Trackers that have observed at least one packet. *)

  val resident : t -> int
  (** Total provisional-missing entries across all trackers now. *)

  val resident_peak : t -> int
  (** High-water mark of {!resident} over the table's lifetime. *)

  val ceiling : t -> int

  val within_ceiling : t -> bool
  (** [true] iff no ceiling is set or the resident peak stayed at or
      under it. *)

  val received_total : t -> int
  val lost_total : t -> int
  val reordered_total : t -> int
  val duplicates_total : t -> int
end
