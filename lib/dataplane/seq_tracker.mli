(** Per-tunnel loss and reordering detection from the Tango sequence
    numbers (§3: "tunnel-specific sequence numbers on packets can allow
    Tango to additionally compute loss and reordering"). *)

type t

val create : unit -> t

val observe : ?now_s:float -> t -> int64 -> unit
(** Feed the sequence number of an arriving packet. A gap is counted as
    provisional loss; a late arrival of a previously-missing number
    converts the loss into a reordering; a second arrival of a delivered
    number counts as a duplicate. Each event also feeds the obs layer
    (counters plus trace records stamped [now_s]; the tracker itself is
    clockless, so callers without a clock may omit it). *)

val received : t -> int
val lost : t -> int
(** Numbers missing: gaps never filled, plus everything confirmed by
    {!confirm_below}. *)

val confirm_below : t -> int64 -> unit
(** Declare every still-missing sequence strictly below the bound
    permanently lost: pruned from the provisional set (bounding its
    size, like the fixed-size map a real switch keeps) while still
    counting in {!lost}. Only call with bounds the reordering horizon
    can no longer reach — a late arrival of a confirmed sequence counts
    as a duplicate. Cost is one load when nothing is provisionally
    missing. Raises {!Err.Invalid} for bounds outside [0, max_int]. *)

val reordered : t -> int
val duplicates : t -> int

val loss_rate : t -> float
(** [lost / (received + lost)]; [0.] before any traffic. *)

val recent_loss_rate : t -> float
(** EWMA of the per-packet loss indicator — a {e live} estimate that
    climbs within tens of packets of a loss episode and decays
    afterwards (reorder heals are credited back). Feeds failover
    policies. *)

val pp : Format.formatter -> t -> unit
