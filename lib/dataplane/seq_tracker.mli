(** Per-tunnel loss and reordering detection from the Tango sequence
    numbers (§3: "tunnel-specific sequence numbers on packets can allow
    Tango to additionally compute loss and reordering"). *)

type t

val create : unit -> t

val observe : ?now_s:float -> t -> int64 -> unit
(** Feed the sequence number of an arriving packet. A gap is counted as
    provisional loss; a late arrival of a previously-missing number
    converts the loss into a reordering; a second arrival of a delivered
    number counts as a duplicate. Each event also feeds the obs layer
    (counters plus trace records stamped [now_s]; the tracker itself is
    clockless, so callers without a clock may omit it). *)

val received : t -> int
val lost : t -> int
(** Numbers still missing (gaps never filled). *)

val reordered : t -> int
val duplicates : t -> int

val loss_rate : t -> float
(** [lost / (received + lost)]; [0.] before any traffic. *)

val recent_loss_rate : t -> float
(** EWMA of the per-packet loss indicator — a {e live} estimate that
    climbs within tens of packets of a loss episode and decays
    afterwards (reorder heals are credited back). Feeds failover
    policies. *)

val pp : Format.formatter -> t -> unit
