(** Per-flow path-decision cache — the software analogue of the eBPF
    decision map a Tango switch keeps so the policy runs once per flow
    epoch, not once per packet.

    Keys are {!Tango_net.Flow.hash_5tuple} values; entries are stamped
    with the cache's generation. {!invalidate} bumps the generation in
    O(1), instantly orphaning every stored decision (stale slots are
    overwritten in place on their next miss) — this is how a telemetry
    update that flips the preferred path flushes the fast path without
    walking the table. A hit performs one int-keyed lookup and allocates
    only the returned option.

    A cache created with [~capacity] additionally bounds resident state:
    entries live in flat slot arrays and a generation-aware clock hand
    evicts when the slots fill (stale-generation victims are reclaimed
    on sight, fresh entries get a one-bit second chance). With capacity
    at least the number of distinct flows the bounded cache never evicts
    and behaves identically to the unbounded one. *)

type t

val max_path : int
(** Largest storable path id (255 — path ids pack into the low byte of
    a generation-stamped entry). *)

val create : ?expected_flows:int -> ?capacity:int -> unit -> t
(** [expected_flows] presizes the table (default 1024). [capacity]
    bounds resident entries and enables clock-hand eviction; omitted
    means unbounded (the pre-existing behavior). Raises {!Err.Invalid}
    when [capacity <= 0]. *)

val find : t -> flow_hash:int -> int option
(** The cached path for the flow, or [None] when absent or stamped with
    an older generation. Counts a hit or a miss; a bounded-mode hit also
    sets the slot's second-chance bit. *)

val store : t -> flow_hash:int -> int -> unit
(** Record the decision for the current generation, evicting a victim
    first when a bounded cache is full and the flow is new. Raises
    {!Err.Invalid} for path ids outside [0, 255]. *)

val invalidate : t -> unit
(** Orphan every cached decision (O(1) generation bump). The stamp is a
    packed-int field of [Sys.int_size - 9] bits (54 on 64-bit): it wraps
    modulo [max_generation + 1], and on wrap the table is reset so an
    entry stamped in the stamp's previous life can never read as fresh. *)

val max_generation : int
(** Largest generation stamp; {!invalidate} wraps past it to 0. *)

val set_generation : t -> int -> unit
(** Force the generation stamp — a test hook for exercising wraparound
    without 2^54 {!invalidate} calls. Raises {!Err.Invalid} outside
    [0, max_generation]. *)

val generation : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int

val flows : t -> int
(** Number of distinct flows currently stored (including stale slots;
    for a bounded cache this never exceeds {!capacity}). *)

val capacity : t -> int
(** The resident-entry bound, or [0] for an unbounded cache. *)

val resident : t -> int
(** Entries currently occupying slots — same value as {!flows}, named
    for the obs gauge it feeds. *)

val evictions : t -> int
(** Entries reclaimed by the clock hand (always [0] when unbounded). *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)
