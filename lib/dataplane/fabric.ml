module Network = Tango_bgp.Network
module Route = Tango_bgp.Route
module Topology = Tango_topo.Topology
module Link = Tango_topo.Link
module Engine = Tango_sim.Engine
module Rng = Tango_sim.Rng
module Packet = Tango_net.Packet
module Flow = Tango_net.Flow
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability (aggregated across fabrics; see DESIGN.md
   §8). Drop counters are indexed by the same codes [send] passes to
   the trace records. *)
let m_sent = Metric.counter ~help:"Packets entering the fabric" "fabric_packets_sent_total"

let m_delivered =
  Metric.counter ~help:"Packets delivered to an edge node" "fabric_packets_delivered_total"

let m_forwarded =
  Metric.counter ~help:"Per-hop forwards scheduled" "fabric_packets_forwarded_total"

let m_dropped =
  Metric.counter ~help:"Packets dropped, any reason" "fabric_packets_dropped_total"

let drop_ttl = 0

let drop_unroutable = 1

let drop_link_failure = 2

let drop_loss = 3

let drop_queue_overflow = 4

let drop_fault = 5

let drop_counters =
  [|
    Metric.counter ~help:"Drops: hop limit exceeded" "fabric_drops_ttl_total";
    Metric.counter ~help:"Drops: no route" "fabric_drops_unroutable_total";
    Metric.counter ~help:"Drops: failed link" "fabric_drops_link_failure_total";
    Metric.counter ~help:"Drops: random link loss" "fabric_drops_loss_total";
    Metric.counter ~help:"Drops: queue-delay bound exceeded"
      "fabric_drops_queue_overflow_total";
    Metric.counter ~help:"Drops: injected fault loss (lib/faults brownout)"
      "fabric_drops_fault_total";
  |]

let h_queue_wait =
  Metric.histogram ~help:"Per-link transmitter queueing delay (seconds)"
    ~lo_exp:(-20) ~buckets:24 "fabric_queue_wait_seconds"

let k_drop = Trace.kind "fabric.drop"

let k_deliver = Trace.kind "fabric.deliver"

(* Resolved end-to-end route, the unit of the batched fast path: the
   full node walk for one (from, dst) pair with its delay terms
   pre-summed. [plain] marks routes with no stochastic terms anywhere
   (zero jitter, zero loss on every link) — only those can skip the
   hop-by-hop machinery, because their delivery time is a closed-form
   function of the send time and the packet size. *)
type route_entry = {
  mutable e_from : int;
  mutable e_dst : Tango_net.Addr.t;
  mutable e_dest : int;  (* delivering node; -1 when unresolvable *)
  mutable e_links : int array;  (* packed directed-link keys, send order *)
  mutable e_asns : int array;  (* ASNs of every node visited, from included *)
  mutable e_delay_s : float;  (* sum of link propagation delays *)
  mutable e_per_byte_s : float;  (* sum of per-byte transmission delays *)
  mutable e_plain : bool;
}

type t = {
  net : Network.t;
  rng : Rng.t;
  lanes_of : int -> Ecmp.lanes;
  extra_delay_ms : from_node:int -> to_node:int -> time_s:float -> float;
  (* Whether the caller supplied lanes_of/extra_delay_ms hooks: hooked
     fabrics never take the batched fast path (the hooks are per-hop and
     per-packet by contract). *)
  custom_hooks : bool;
  (* Batched-route cache, validated against Network.revision: filled
     lazily per (from, dst), flushed whenever any BGP table may have
     changed. A handful of slots suffices — a PoP talks to a handful of
     tunnel endpoints. *)
  route_cache : route_entry option array;
  mutable route_rev : int;
  mutable route_clock : int;
  (* Counters for the synchronous direct path, which must not touch the
     process-wide Metric registry (lanes run on their own domains):
     published into the registry at quiesce points. *)
  mutable direct_sent : int;
  mutable direct_delivered : int;
  mutable published_sent : int;
  mutable published_delivered : int;
  mutable direct_fallbacks : int;
  (* Per-directed-link state lives in flat arrays indexed by the packed
     key [from * node_count + to] — O(1) with no tuple allocation or
     polymorphic hashing on the per-packet path, sized once from the
     topology (node ids are small dense ints). *)
  node_count : int;
  failed_links : Bytes.t;
  (* Bandwidth contention (optional): per directed link, when its
     transmitter frees up. Allocated only when [max_queue_s] is set —
     node ids reach into the thousands (transit ids are ASNs), so a
     node_count^2 array is tens of MB. *)
  max_queue_s : float option;
  busy_until : float array;
  (* Fault-injection hooks (lib/faults): per-directed-link extra drop
     probability and extra one-way delay, both dynamic. All per-packet
     checks are gated behind [fault_count > 0], so the fault-free fast
     path pays exactly one load and one branch — and the arrays stay
     unallocated (zero-length) until the first [set_link_fault], so a
     fault-free fabric costs nothing at all. *)
  mutable fault_count : int;
  mutable fault_set : Bytes.t;
  mutable fault_loss : float array;
  mutable fault_extra : (time_s:float -> float) array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let no_lanes = [| 0.0 |]

let no_fault_extra_ms ~time_s:_ = 0.0

let route_cache_slots = 16

let create ?(seed = 4242) ?lanes_of ?extra_delay_ms ?max_queue_s net =
  (match max_queue_s with
  | Some q when q < 0.0 -> Err.invalid "Fabric.create: negative queue bound"
  | Some _ | None -> ());
  let custom_hooks = Option.is_some lanes_of || Option.is_some extra_delay_ms in
  let lanes_of =
    match lanes_of with Some f -> f | None -> fun _ -> no_lanes
  in
  let extra_delay_ms =
    match extra_delay_ms with
    | Some f -> f
    | None -> fun ~from_node:_ ~to_node:_ ~time_s:_ -> 0.0
  in
  let node_count =
    1
    + List.fold_left
        (fun m (n : Topology.node) -> max m n.Topology.id)
        (-1)
        (Topology.nodes (Network.topology net))
  in
  {
    net;
    rng = Rng.create ~seed;
    lanes_of;
    extra_delay_ms;
    custom_hooks;
    route_cache = Array.make route_cache_slots None;
    route_rev = -1;
    route_clock = 0;
    direct_sent = 0;
    direct_delivered = 0;
    published_sent = 0;
    published_delivered = 0;
    direct_fallbacks = 0;
    node_count;
    failed_links = Bytes.make (node_count * node_count) '\000';
    max_queue_s;
    busy_until =
      (match max_queue_s with
      | Some _ -> Array.make (node_count * node_count) neg_infinity
      | None -> [||]);
    fault_count = 0;
    fault_set = Bytes.empty;
    fault_loss = [||];
    fault_extra = [||];
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let[@hot] link_key t ~from_node ~to_node =
  if
    from_node < 0 || from_node >= t.node_count || to_node < 0
    || to_node >= t.node_count
  then
    Err.invalid "Fabric: link %d -> %d outside the topology" from_node
         to_node;
  (from_node * t.node_count) + to_node

let network t = t.net

let hop_limit = 64

(* tango-lint: allow hot-alloc — no-op default: fast-path callers pass ~on_dropped explicitly *)
let[@hot] send t ~from_node ?(on_dropped = fun ~reason:_ _ -> ()) ~on_delivered packet =
  t.sent <- t.sent + 1;
  Metric.incr m_sent;
  let engine = Network.engine t.net in
  let topo = Network.topology t.net in
  (* tango-lint: allow hot-alloc — one drop-accounting closure per send, not per hop *)
  let drop reason code =
    t.dropped <- t.dropped + 1;
    Metric.incr m_dropped;
    Metric.incr drop_counters.(code);
    Trace.record Trace.default ~now:(Engine.now engine) ~kind:k_drop
      packet.Packet.id code;
    on_dropped ~reason packet
  in
  (* tango-lint: allow hot-alloc — delivery-accounting closure shared by both local-route branches, once per send *)
  let deliver node =
    t.delivered <- t.delivered + 1;
    Metric.incr m_delivered;
    Trace.record Trace.default ~now:(Engine.now engine) ~kind:k_deliver
      packet.Packet.id node;
    on_delivered ~node packet
  in
  (* tango-lint: allow hot-alloc — recursive forwarding loop captures the packet once per send *)
  let rec at_node node hops =
    Packet.record_hop packet (Topology.asn topo node);
    if hops > hop_limit then drop "ttl" drop_ttl
    else begin
      let flow = Packet.forwarding_flow packet in
      match Network.route_for_addr t.net ~node flow.Flow.dst with
      | None -> drop "unroutable" drop_unroutable
      | Some route ->
          if Route.local route then deliver node
          else begin
            match route.Route.learned_from with
            | None -> deliver node
            | Some next -> forward node next hops
          end
    end
  (* tango-lint: allow hot-alloc — part of the same per-send recursive loop *)
  and forward node next hops =
    match Topology.link topo node next with
    | None -> drop "unroutable" drop_unroutable
    | Some link ->
        let key = (node * t.node_count) + next in
        if Bytes.get t.failed_links key <> '\000' then
          drop "link-failure" drop_link_failure
        else if link.Link.loss > 0.0 && Rng.float t.rng 1.0 < link.Link.loss then
          drop "loss" drop_loss
        else if
          t.fault_count > 0
          && t.fault_loss.(key) > 0.0
          && Rng.float t.rng 1.0 < t.fault_loss.(key)
        then drop "fault-loss" drop_fault
        else begin
          let flow = Packet.forwarding_flow packet in
          let jitter =
            if link.Link.jitter_ms > 0.0 then
              Float.max 0.0 (Rng.gaussian t.rng ~mean:0.0 ~std:link.Link.jitter_ms)
            else 0.0
          in
          let lane = Ecmp.lane_delay_ms (t.lanes_of next) ~salt:next flow in
          let now_s = Engine.now engine in
          let dynamic =
            t.extra_delay_ms ~from_node:node ~to_node:next ~time_s:now_s
          in
          let fault_ms =
            if t.fault_count > 0 then t.fault_extra.(key) ~time_s:now_s else 0.0
          in
          let transmission_s =
            Link.transmission_delay_ms link ~bytes:(Packet.wire_size packet)
            /. 1000.0
          in
          (* Optional FIFO contention: wait for the transmitter, drop on
             overflow (tail drop against the queue-delay bound). *)
          let queueing_result =
            match t.max_queue_s with
            | None -> Some 0.0
            | Some bound ->
                let now = now_s in
                let free_at = Float.max now t.busy_until.(key) in
                let wait = free_at -. now in
                if wait > bound then None
                else begin
                  t.busy_until.(key) <- free_at +. transmission_s;
                  Metric.observe h_queue_wait wait;
                  Some wait
                end
          in
          match queueing_result with
          | None -> drop "queue-overflow" drop_queue_overflow
          | Some queueing_s ->
              let delay_s =
                ((link.Link.delay_ms +. jitter +. lane +. dynamic +. fault_ms)
                /. 1000.0)
                +. transmission_s +. queueing_s
              in
              Metric.incr m_forwarded;
              (* tango-lint: allow hot-alloc — event-engine continuation: one closure per scheduled hop *)
              Engine.schedule engine ~delay:(Float.max 0.0 delay_s) (fun _ ->
                  at_node next (hops + 1))
        end
  in
  at_node from_node 0

(* ------------------------------------------------------------------ *)
(* Batched sends (DESIGN.md §11).

   [send] resolves the route hop by hop, on arrival, with one scheduled
   engine event per hop — faithful, but ~5 closures and a full RIB
   lookup per hop. The batched path instead snapshots the whole route
   once per (from, dst) pair and reuses it for every packet of every
   batch until the control plane changes ([Network.revision] moves).
   That snapshot is only sound when nothing along the route is
   stochastic or dynamic, so eligibility is checked at three levels:

   - per fabric: no fault hooks installed, no queueing model, no custom
     lanes_of/extra_delay_ms hooks;
   - per route: every link has zero jitter and zero loss ([e_plain]);
   - per batch: no failed link along the snapshot.

   Anything else falls back to the canonical [send], packet by packet,
   in order — so batching never changes observable behavior, it only
   amortizes work when the route provably has one outcome. Batched
   sends resolve the route at injection time (a FIB snapshot, like a
   real batched fast path), whereas [send] re-resolves at each hop's
   arrival; the two can differ only while BGP messages are in flight,
   which the revision check turns into a cache flush. *)

let no_addr = Tango_net.Addr.of_string_exn "::"

let empty_route =
  {
    e_from = -1;
    e_dst = no_addr;
    e_dest = -1;
    e_links = [||];
    e_asns = [||];
    e_delay_s = 0.0;
    e_per_byte_s = 0.0;
    e_plain = false;
  }

(* Walk the converged tables from [from_node] toward [dst], summing the
   deterministic delay terms. Unroutable / over-limit walks yield a
   non-plain entry, which routes every packet through the fallback (and
   thus through [send]'s exact drop accounting). *)
let resolve_route t ~from_node ~dst =
  let topo = Network.topology t.net in
  let links = ref [] in
  let asns = ref [ Topology.asn topo from_node ] in
  let delay_s = ref 0.0 in
  let per_byte_s = ref 0.0 in
  let plain = ref true in
  let rec walk node hops =
    if hops > hop_limit then None
    else
      match Network.route_for_addr t.net ~node dst with
      | None -> None
      | Some route ->
          if Route.local route then Some node
          else begin
            match route.Route.learned_from with
            | None -> Some node
            | Some next -> (
                match Topology.link topo node next with
                | None -> None
                | Some link ->
                    links := ((node * t.node_count) + next) :: !links;
                    asns := Topology.asn topo next :: !asns;
                    delay_s := !delay_s +. (link.Link.delay_ms /. 1000.0);
                    per_byte_s :=
                      !per_byte_s +. (8.0 /. (link.Link.bandwidth_mbps *. 1e6));
                    if link.Link.jitter_ms > 0.0 || link.Link.loss > 0.0 then
                      plain := false;
                    walk next (hops + 1))
          end
  in
  match walk from_node 0 with
  | None ->
      {
        empty_route with
        e_from = from_node;
        e_dst = dst;
        e_links = [||];
        e_asns = [||];
      }
  | Some dest ->
      {
        e_from = from_node;
        e_dst = dst;
        e_dest = dest;
        e_links = Array.of_list (List.rev !links);
        e_asns = Array.of_list (List.rev !asns);
        e_delay_s = !delay_s;
        e_per_byte_s = !per_byte_s;
        e_plain = !plain;
      }

let[@hot] batch_eligible t =
  t.fault_count = 0 && Option.is_none t.max_queue_s && not t.custom_hooks

(* Flush the route cache whenever the control plane may have moved.
   Called once per batch, not per packet. *)
let[@hot] revalidate_routes t =
  let rev = Network.revision t.net in
  if rev <> t.route_rev then begin
    Array.fill t.route_cache 0 route_cache_slots None;
    t.route_rev <- rev
  end

let[@hot] rec lookup_route t ~from_node ~dst slot =
  if slot >= route_cache_slots then begin
    let entry = resolve_route t ~from_node ~dst in
    t.route_cache.(t.route_clock) <- Some entry;
    t.route_clock <- (t.route_clock + 1) mod route_cache_slots;
    entry
  end
  else
    match Array.unsafe_get t.route_cache slot with
    | Some e when e.e_from = from_node && Tango_net.Addr.equal e.e_dst dst -> e
    | Some _ | None -> lookup_route t ~from_node ~dst (slot + 1)

let[@hot] rec links_ok_from t links i =
  i >= Array.length links
  || Bytes.unsafe_get t.failed_links (Array.unsafe_get links i) = '\000'
     && links_ok_from t links (i + 1)

let[@hot] record_route_hops packet (e : route_entry) =
  for i = 0 to Array.length e.e_asns - 1 do
    Packet.record_hop packet (Array.unsafe_get e.e_asns i)
  done

let drop_ignored ~reason:_ _ = ()

let[@hot] send_batch t ~from_node ?(on_dropped = drop_ignored) ~on_delivered
    batch =
  let eligible = batch_eligible t in
  if eligible then revalidate_routes t;
  let engine = Network.engine t.net in
  for i = 0 to Batch.length batch - 1 do
    let packet = Batch.get batch i in
    let fast =
      if not eligible then false
      else begin
        let e =
          lookup_route t ~from_node ~dst:(Packet.forwarding_dst packet) 0
        in
        if e.e_plain && links_ok_from t e.e_links 0 then begin
          t.sent <- t.sent + 1;
          Metric.incr m_sent;
          record_route_hops packet e;
          Metric.add m_forwarded (Array.length e.e_links);
          let arrival =
            Engine.now engine +. e.e_delay_s
            +. (float_of_int (Packet.wire_size packet) *. e.e_per_byte_s)
          in
          let dest = e.e_dest in
          (* tango-lint: allow hot-alloc — one delivery event closure per packet (vs ~5 closures + an event per hop on the canonical path) *)
          Engine.schedule_at engine ~time:arrival (fun _ ->
              t.delivered <- t.delivered + 1;
              Metric.incr m_delivered;
              Trace.record Trace.default ~now:(Engine.now engine)
                ~kind:k_deliver packet.Packet.id dest;
              on_delivered ~node:dest packet);
          true
        end
        else false
      end
    in
    if not fast then send t ~from_node ~on_dropped ~on_delivered packet
  done

let route_plain t ~from_node ~dst =
  batch_eligible t
  &&
  begin
    revalidate_routes t;
    let e = lookup_route t ~from_node ~dst 0 in
    e.e_plain && links_ok_from t e.e_links 0
  end

let[@hot] send_batch_direct t ~from_node ~now_s ?(on_dropped = drop_ignored)
    ~on_delivered_at batch =
  let eligible = batch_eligible t in
  if eligible then revalidate_routes t;
  let engine = Network.engine t.net in
  (* tango-lint: allow hot-alloc — one fallback-wrapping closure per batch call, not per packet *)
  let on_delivered ~node packet =
    on_delivered_at ~node ~at_s:(Engine.now engine) packet
  in
  for i = 0 to Batch.length batch - 1 do
    let packet = Batch.get batch i in
    let fast =
      if not eligible then false
      else begin
        let e =
          lookup_route t ~from_node ~dst:(Packet.forwarding_dst packet) 0
        in
        if e.e_plain && links_ok_from t e.e_links 0 then begin
          t.sent <- t.sent + 1;
          t.direct_sent <- t.direct_sent + 1;
          record_route_hops packet e;
          let arrival =
            now_s +. e.e_delay_s
            +. (float_of_int (Packet.wire_size packet) *. e.e_per_byte_s)
          in
          t.delivered <- t.delivered + 1;
          t.direct_delivered <- t.direct_delivered + 1;
          on_delivered_at ~node:e.e_dest ~at_s:arrival packet;
          true
        end
        else false
      end
    in
    if not fast then begin
      t.direct_fallbacks <- t.direct_fallbacks + 1;
      send t ~from_node ~on_dropped ~on_delivered packet
    end
  done

let direct_fallbacks t = t.direct_fallbacks

(* Publish the direct-path deltas into the process-wide registry.
   Idempotent; call only at quiesce points (after every lane domain has
   been joined), never while lanes run. *)
let quiesce_metrics t =
  let ds = t.direct_sent - t.published_sent in
  let dd = t.direct_delivered - t.published_delivered in
  if ds > 0 then Metric.add m_sent ds;
  if dd > 0 then Metric.add m_delivered dd;
  t.published_sent <- t.direct_sent;
  t.published_delivered <- t.direct_delivered

let fail_link t ~from_node ~to_node =
  Bytes.set t.failed_links (link_key t ~from_node ~to_node) '\001'

let heal_link t ~from_node ~to_node =
  Bytes.set t.failed_links (link_key t ~from_node ~to_node) '\000'

let link_failed t ~from_node ~to_node =
  Bytes.get t.failed_links (link_key t ~from_node ~to_node) <> '\000'

(* ------------------------------------------------------------------ *)
(* Fault-injection hooks (driven by lib/faults).                        *)

let ensure_fault_arrays t =
  if Array.length t.fault_loss = 0 then begin
    let n = t.node_count * t.node_count in
    t.fault_set <- Bytes.make n '\000';
    t.fault_loss <- Array.make n 0.0;
    t.fault_extra <- Array.make n no_fault_extra_ms
  end

let set_link_fault t ~from_node ~to_node ?(loss = 0.0) ?extra_delay_ms () =
  if loss < 0.0 || loss > 1.0 then
    Err.invalid "Fabric.set_link_fault: loss %g outside [0,1]" loss;
  ensure_fault_arrays t;
  let key = link_key t ~from_node ~to_node in
  if Bytes.get t.fault_set key = '\000' then begin
    Bytes.set t.fault_set key '\001';
    t.fault_count <- t.fault_count + 1
  end;
  t.fault_loss.(key) <- loss;
  t.fault_extra.(key) <-
    (match extra_delay_ms with Some f -> f | None -> no_fault_extra_ms)

let clear_link_fault t ~from_node ~to_node =
  let key = link_key t ~from_node ~to_node in
  if Array.length t.fault_loss > 0 then begin
    if Bytes.get t.fault_set key <> '\000' then begin
      Bytes.set t.fault_set key '\000';
      t.fault_count <- t.fault_count - 1
    end;
    t.fault_loss.(key) <- 0.0;
    t.fault_extra.(key) <- no_fault_extra_ms
  end

let clear_faults t =
  Bytes.fill t.fault_set 0 (Bytes.length t.fault_set) '\000';
  Array.fill t.fault_loss 0 (Array.length t.fault_loss) 0.0;
  Array.fill t.fault_extra 0 (Array.length t.fault_extra) no_fault_extra_ms;
  t.fault_count <- 0

let fault_count t = t.fault_count

let link_fault_loss t ~from_node ~to_node =
  if t.fault_count = 0 then 0.0 else t.fault_loss.(link_key t ~from_node ~to_node)

let[@hot] link_fault_extra_ms t ~from_node ~to_node ~time_s =
  if t.fault_count = 0 then 0.0
  else t.fault_extra.(link_key t ~from_node ~to_node) ~time_s

let sent t = t.sent

let delivered t = t.delivered

let dropped t = t.dropped
