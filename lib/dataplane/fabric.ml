module Network = Tango_bgp.Network
module Route = Tango_bgp.Route
module Topology = Tango_topo.Topology
module Link = Tango_topo.Link
module Engine = Tango_sim.Engine
module Rng = Tango_sim.Rng
module Packet = Tango_net.Packet
module Flow = Tango_net.Flow
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability (aggregated across fabrics; see DESIGN.md
   §8). Drop counters are indexed by the same codes [send] passes to
   the trace records. *)
let m_sent = Metric.counter ~help:"Packets entering the fabric" "fabric_packets_sent_total"

let m_delivered =
  Metric.counter ~help:"Packets delivered to an edge node" "fabric_packets_delivered_total"

let m_forwarded =
  Metric.counter ~help:"Per-hop forwards scheduled" "fabric_packets_forwarded_total"

let m_dropped =
  Metric.counter ~help:"Packets dropped, any reason" "fabric_packets_dropped_total"

let drop_ttl = 0

let drop_unroutable = 1

let drop_link_failure = 2

let drop_loss = 3

let drop_queue_overflow = 4

let drop_fault = 5

let drop_counters =
  [|
    Metric.counter ~help:"Drops: hop limit exceeded" "fabric_drops_ttl_total";
    Metric.counter ~help:"Drops: no route" "fabric_drops_unroutable_total";
    Metric.counter ~help:"Drops: failed link" "fabric_drops_link_failure_total";
    Metric.counter ~help:"Drops: random link loss" "fabric_drops_loss_total";
    Metric.counter ~help:"Drops: queue-delay bound exceeded"
      "fabric_drops_queue_overflow_total";
    Metric.counter ~help:"Drops: injected fault loss (lib/faults brownout)"
      "fabric_drops_fault_total";
  |]

let h_queue_wait =
  Metric.histogram ~help:"Per-link transmitter queueing delay (seconds)"
    ~lo_exp:(-20) ~buckets:24 "fabric_queue_wait_seconds"

let k_drop = Trace.kind "fabric.drop"

let k_deliver = Trace.kind "fabric.deliver"

type t = {
  net : Network.t;
  rng : Rng.t;
  lanes_of : int -> Ecmp.lanes;
  extra_delay_ms : from_node:int -> to_node:int -> time_s:float -> float;
  (* Per-directed-link state lives in flat arrays indexed by the packed
     key [from * node_count + to] — O(1) with no tuple allocation or
     polymorphic hashing on the per-packet path, sized once from the
     topology (node ids are small dense ints). *)
  node_count : int;
  failed_links : Bytes.t;
  (* Bandwidth contention (optional): per directed link, when its
     transmitter frees up. Allocated only when [max_queue_s] is set —
     node ids reach into the thousands (transit ids are ASNs), so a
     node_count^2 array is tens of MB. *)
  max_queue_s : float option;
  busy_until : float array;
  (* Fault-injection hooks (lib/faults): per-directed-link extra drop
     probability and extra one-way delay, both dynamic. All per-packet
     checks are gated behind [fault_count > 0], so the fault-free fast
     path pays exactly one load and one branch — and the arrays stay
     unallocated (zero-length) until the first [set_link_fault], so a
     fault-free fabric costs nothing at all. *)
  mutable fault_count : int;
  mutable fault_set : Bytes.t;
  mutable fault_loss : float array;
  mutable fault_extra : (time_s:float -> float) array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let no_lanes = [| 0.0 |]

let no_fault_extra_ms ~time_s:_ = 0.0

let create ?(seed = 4242) ?(lanes_of = fun _ -> no_lanes)
    ?(extra_delay_ms = fun ~from_node:_ ~to_node:_ ~time_s:_ -> 0.0)
    ?max_queue_s net =
  (match max_queue_s with
  | Some q when q < 0.0 -> Err.invalid "Fabric.create: negative queue bound"
  | Some _ | None -> ());
  let node_count =
    1
    + List.fold_left
        (fun m (n : Topology.node) -> max m n.Topology.id)
        (-1)
        (Topology.nodes (Network.topology net))
  in
  {
    net;
    rng = Rng.create ~seed;
    lanes_of;
    extra_delay_ms;
    node_count;
    failed_links = Bytes.make (node_count * node_count) '\000';
    max_queue_s;
    busy_until =
      (match max_queue_s with
      | Some _ -> Array.make (node_count * node_count) neg_infinity
      | None -> [||]);
    fault_count = 0;
    fault_set = Bytes.empty;
    fault_loss = [||];
    fault_extra = [||];
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let[@hot] link_key t ~from_node ~to_node =
  if
    from_node < 0 || from_node >= t.node_count || to_node < 0
    || to_node >= t.node_count
  then
    Err.invalid "Fabric: link %d -> %d outside the topology" from_node
         to_node;
  (from_node * t.node_count) + to_node

let network t = t.net

let hop_limit = 64

(* tango-lint: allow hot-alloc — no-op default: fast-path callers pass ~on_dropped explicitly *)
let[@hot] send t ~from_node ?(on_dropped = fun ~reason:_ _ -> ()) ~on_delivered packet =
  t.sent <- t.sent + 1;
  Metric.incr m_sent;
  let engine = Network.engine t.net in
  let topo = Network.topology t.net in
  (* tango-lint: allow hot-alloc — one drop-accounting closure per send, not per hop *)
  let drop reason code =
    t.dropped <- t.dropped + 1;
    Metric.incr m_dropped;
    Metric.incr drop_counters.(code);
    Trace.record Trace.default ~now:(Engine.now engine) ~kind:k_drop
      packet.Packet.id code;
    on_dropped ~reason packet
  in
  (* tango-lint: allow hot-alloc — delivery-accounting closure shared by both local-route branches, once per send *)
  let deliver node =
    t.delivered <- t.delivered + 1;
    Metric.incr m_delivered;
    Trace.record Trace.default ~now:(Engine.now engine) ~kind:k_deliver
      packet.Packet.id node;
    on_delivered ~node packet
  in
  (* tango-lint: allow hot-alloc — recursive forwarding loop captures the packet once per send *)
  let rec at_node node hops =
    Packet.record_hop packet (Topology.asn topo node);
    if hops > hop_limit then drop "ttl" drop_ttl
    else begin
      let flow = Packet.forwarding_flow packet in
      match Network.route_for_addr t.net ~node flow.Flow.dst with
      | None -> drop "unroutable" drop_unroutable
      | Some route ->
          if Route.local route then deliver node
          else begin
            match route.Route.learned_from with
            | None -> deliver node
            | Some next -> forward node next hops
          end
    end
  (* tango-lint: allow hot-alloc — part of the same per-send recursive loop *)
  and forward node next hops =
    match Topology.link topo node next with
    | None -> drop "unroutable" drop_unroutable
    | Some link ->
        let key = (node * t.node_count) + next in
        if Bytes.get t.failed_links key <> '\000' then
          drop "link-failure" drop_link_failure
        else if link.Link.loss > 0.0 && Rng.float t.rng 1.0 < link.Link.loss then
          drop "loss" drop_loss
        else if
          t.fault_count > 0
          && t.fault_loss.(key) > 0.0
          && Rng.float t.rng 1.0 < t.fault_loss.(key)
        then drop "fault-loss" drop_fault
        else begin
          let flow = Packet.forwarding_flow packet in
          let jitter =
            if link.Link.jitter_ms > 0.0 then
              Float.max 0.0 (Rng.gaussian t.rng ~mean:0.0 ~std:link.Link.jitter_ms)
            else 0.0
          in
          let lane = Ecmp.lane_delay_ms (t.lanes_of next) ~salt:next flow in
          let now_s = Engine.now engine in
          let dynamic =
            t.extra_delay_ms ~from_node:node ~to_node:next ~time_s:now_s
          in
          let fault_ms =
            if t.fault_count > 0 then t.fault_extra.(key) ~time_s:now_s else 0.0
          in
          let transmission_s =
            Link.transmission_delay_ms link ~bytes:(Packet.wire_size packet)
            /. 1000.0
          in
          (* Optional FIFO contention: wait for the transmitter, drop on
             overflow (tail drop against the queue-delay bound). *)
          let queueing_result =
            match t.max_queue_s with
            | None -> Some 0.0
            | Some bound ->
                let now = now_s in
                let free_at = Float.max now t.busy_until.(key) in
                let wait = free_at -. now in
                if wait > bound then None
                else begin
                  t.busy_until.(key) <- free_at +. transmission_s;
                  Metric.observe h_queue_wait wait;
                  Some wait
                end
          in
          match queueing_result with
          | None -> drop "queue-overflow" drop_queue_overflow
          | Some queueing_s ->
              let delay_s =
                ((link.Link.delay_ms +. jitter +. lane +. dynamic +. fault_ms)
                /. 1000.0)
                +. transmission_s +. queueing_s
              in
              Metric.incr m_forwarded;
              (* tango-lint: allow hot-alloc — event-engine continuation: one closure per scheduled hop *)
              Engine.schedule engine ~delay:(Float.max 0.0 delay_s) (fun _ ->
                  at_node next (hops + 1))
        end
  in
  at_node from_node 0

let fail_link t ~from_node ~to_node =
  Bytes.set t.failed_links (link_key t ~from_node ~to_node) '\001'

let heal_link t ~from_node ~to_node =
  Bytes.set t.failed_links (link_key t ~from_node ~to_node) '\000'

let link_failed t ~from_node ~to_node =
  Bytes.get t.failed_links (link_key t ~from_node ~to_node) <> '\000'

(* ------------------------------------------------------------------ *)
(* Fault-injection hooks (driven by lib/faults).                        *)

let ensure_fault_arrays t =
  if Array.length t.fault_loss = 0 then begin
    let n = t.node_count * t.node_count in
    t.fault_set <- Bytes.make n '\000';
    t.fault_loss <- Array.make n 0.0;
    t.fault_extra <- Array.make n no_fault_extra_ms
  end

let set_link_fault t ~from_node ~to_node ?(loss = 0.0) ?extra_delay_ms () =
  if loss < 0.0 || loss > 1.0 then
    Err.invalid "Fabric.set_link_fault: loss %g outside [0,1]" loss;
  ensure_fault_arrays t;
  let key = link_key t ~from_node ~to_node in
  if Bytes.get t.fault_set key = '\000' then begin
    Bytes.set t.fault_set key '\001';
    t.fault_count <- t.fault_count + 1
  end;
  t.fault_loss.(key) <- loss;
  t.fault_extra.(key) <-
    (match extra_delay_ms with Some f -> f | None -> no_fault_extra_ms)

let clear_link_fault t ~from_node ~to_node =
  let key = link_key t ~from_node ~to_node in
  if Array.length t.fault_loss > 0 then begin
    if Bytes.get t.fault_set key <> '\000' then begin
      Bytes.set t.fault_set key '\000';
      t.fault_count <- t.fault_count - 1
    end;
    t.fault_loss.(key) <- 0.0;
    t.fault_extra.(key) <- no_fault_extra_ms
  end

let clear_faults t =
  Bytes.fill t.fault_set 0 (Bytes.length t.fault_set) '\000';
  Array.fill t.fault_loss 0 (Array.length t.fault_loss) 0.0;
  Array.fill t.fault_extra 0 (Array.length t.fault_extra) no_fault_extra_ms;
  t.fault_count <- 0

let fault_count t = t.fault_count

let link_fault_loss t ~from_node ~to_node =
  if t.fault_count = 0 then 0.0 else t.fault_loss.(link_key t ~from_node ~to_node)

let[@hot] link_fault_extra_ms t ~from_node ~to_node ~time_s =
  if t.fault_count = 0 then 0.0
  else t.fault_extra.(link_key t ~from_node ~to_node) ~time_s

let sent t = t.sent

let delivered t = t.delivered

let dropped t = t.dropped
