module Network = Tango_bgp.Network
module Route = Tango_bgp.Route
module Topology = Tango_topo.Topology
module Link = Tango_topo.Link
module Engine = Tango_sim.Engine
module Rng = Tango_sim.Rng
module Packet = Tango_net.Packet
module Flow = Tango_net.Flow

type t = {
  net : Network.t;
  rng : Rng.t;
  lanes_of : int -> Ecmp.lanes;
  extra_delay_ms : from_node:int -> to_node:int -> time_s:float -> float;
  (* Per-directed-link state lives in flat arrays indexed by the packed
     key [from * node_count + to] — O(1) with no tuple allocation or
     polymorphic hashing on the per-packet path, sized once from the
     topology (node ids are small dense ints). *)
  node_count : int;
  failed_links : Bytes.t;
  (* Bandwidth contention (optional): per directed link, when its
     transmitter frees up. *)
  max_queue_s : float option;
  busy_until : float array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let no_lanes = [| 0.0 |]

let create ?(seed = 4242) ?(lanes_of = fun _ -> no_lanes)
    ?(extra_delay_ms = fun ~from_node:_ ~to_node:_ ~time_s:_ -> 0.0)
    ?max_queue_s net =
  (match max_queue_s with
  | Some q when q < 0.0 -> Err.invalid "Fabric.create: negative queue bound"
  | Some _ | None -> ());
  let node_count =
    1
    + List.fold_left
        (fun m (n : Topology.node) -> max m n.Topology.id)
        (-1)
        (Topology.nodes (Network.topology net))
  in
  {
    net;
    rng = Rng.create ~seed;
    lanes_of;
    extra_delay_ms;
    node_count;
    failed_links = Bytes.make (node_count * node_count) '\000';
    max_queue_s;
    busy_until = Array.make (node_count * node_count) neg_infinity;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let[@hot] link_key t ~from_node ~to_node =
  if
    from_node < 0 || from_node >= t.node_count || to_node < 0
    || to_node >= t.node_count
  then
    Err.invalid "Fabric: link %d -> %d outside the topology" from_node
         to_node;
  (from_node * t.node_count) + to_node

let network t = t.net

let hop_limit = 64

(* tango-lint: allow hot-alloc — no-op default: fast-path callers pass ~on_dropped explicitly *)
let[@hot] send t ~from_node ?(on_dropped = fun ~reason:_ _ -> ()) ~on_delivered packet =
  t.sent <- t.sent + 1;
  let engine = Network.engine t.net in
  let topo = Network.topology t.net in
  (* tango-lint: allow hot-alloc — one drop-accounting closure per send, not per hop *)
  let drop reason =
    t.dropped <- t.dropped + 1;
    on_dropped ~reason packet
  in
  (* tango-lint: allow hot-alloc — recursive forwarding loop captures the packet once per send *)
  let rec at_node node hops =
    Packet.record_hop packet (Topology.asn topo node);
    if hops > hop_limit then drop "ttl"
    else begin
      let flow = Packet.forwarding_flow packet in
      match Network.route_for_addr t.net ~node flow.Flow.dst with
      | None -> drop "unroutable"
      | Some route ->
          if Route.local route then begin
            t.delivered <- t.delivered + 1;
            on_delivered ~node packet
          end
          else begin
            match route.Route.learned_from with
            | None ->
                t.delivered <- t.delivered + 1;
                on_delivered ~node packet
            | Some next -> forward node next hops
          end
    end
  (* tango-lint: allow hot-alloc — part of the same per-send recursive loop *)
  and forward node next hops =
    match Topology.link topo node next with
    | None -> drop "unroutable"
    | Some link ->
        if Bytes.get t.failed_links ((node * t.node_count) + next) <> '\000' then
          drop "link-failure"
        else if link.Link.loss > 0.0 && Rng.float t.rng 1.0 < link.Link.loss then
          drop "loss"
        else begin
          let flow = Packet.forwarding_flow packet in
          let jitter =
            if link.Link.jitter_ms > 0.0 then
              Float.max 0.0 (Rng.gaussian t.rng ~mean:0.0 ~std:link.Link.jitter_ms)
            else 0.0
          in
          let lane = Ecmp.lane_delay_ms (t.lanes_of next) ~salt:next flow in
          let dynamic =
            t.extra_delay_ms ~from_node:node ~to_node:next
              ~time_s:(Engine.now engine)
          in
          let transmission_s =
            Link.transmission_delay_ms link ~bytes:(Packet.wire_size packet)
            /. 1000.0
          in
          (* Optional FIFO contention: wait for the transmitter, drop on
             overflow (tail drop against the queue-delay bound). *)
          let queueing_result =
            match t.max_queue_s with
            | None -> Some 0.0
            | Some bound ->
                let now = Engine.now engine in
                let key = (node * t.node_count) + next in
                let free_at = Float.max now t.busy_until.(key) in
                let wait = free_at -. now in
                if wait > bound then None
                else begin
                  t.busy_until.(key) <- free_at +. transmission_s;
                  Some wait
                end
          in
          match queueing_result with
          | None -> drop "queue-overflow"
          | Some queueing_s ->
              let delay_s =
                ((link.Link.delay_ms +. jitter +. lane +. dynamic) /. 1000.0)
                +. transmission_s +. queueing_s
              in
              (* tango-lint: allow hot-alloc — event-engine continuation: one closure per scheduled hop *)
              Engine.schedule engine ~delay:(Float.max 0.0 delay_s) (fun _ ->
                  at_node next (hops + 1))
        end
  in
  at_node from_node 0

let fail_link t ~from_node ~to_node =
  Bytes.set t.failed_links (link_key t ~from_node ~to_node) '\001'

let heal_link t ~from_node ~to_node =
  Bytes.set t.failed_links (link_key t ~from_node ~to_node) '\000'

let link_failed t ~from_node ~to_node =
  Bytes.get t.failed_links (link_key t ~from_node ~to_node) <> '\000'

let sent t = t.sent

let delivered t = t.delivered

let dropped t = t.dropped
