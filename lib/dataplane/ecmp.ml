type lanes = float array

let uniform_lanes ~count ~spread_ms =
  if count < 1 then Err.invalid "Ecmp.uniform_lanes: need at least one lane";
  if spread_ms < 0.0 then Err.invalid "Ecmp.uniform_lanes: negative spread";
  Array.init count (fun i -> float_of_int i *. spread_ms)

let select lanes ~salt flow =
  let n = Array.length lanes in
  if n = 0 then Err.invalid "Ecmp.select: no lanes";
  Tango_net.Flow.hash_5tuple ~salt flow mod n

let lane_delay_ms lanes ~salt flow = lanes.(select lanes ~salt flow)
