(** Fixed 64-slot packet batches — the XDP-style unit of work of the
    batched dataplane (DESIGN.md §11).

    Batching lets {!Fabric.send_batch} and [Pop.dispatch_batch] pay
    their per-call overhead (eligibility checks, route-cache
    revalidation, callback closures, fault-hook and obs branches) once
    per up-to-64 packets instead of once per packet. The slot array is
    preallocated on the first {!add}; the steady-state path writes in
    place and allocates nothing. *)

type t

val capacity : int
(** 64 — fixed, like the kernel's NAPI budget. *)

val create : unit -> t

val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val add : t -> Tango_net.Packet.t -> unit
(** Append a packet. Raises {!Err.Invalid} when full — callers flush on
    {!is_full}. *)

val get : t -> int -> Tango_net.Packet.t
(** The i-th packet. Raises {!Err.Invalid} outside [0, length). *)

val iter : t -> f:(Tango_net.Packet.t -> unit) -> unit

val clear : t -> unit
(** Reset the length (slots keep their last references until
    overwritten — at most one stale batch of packets stays reachable). *)

val purge : t -> unit
(** {!clear}, plus drop the stale slot references (at most one packet
    stays reachable, as the array seed) — so a minor collection right
    after finds no transient packets to promote. *)
