(** The wide-area packet fabric: hop-by-hop data-plane forwarding driven
    by the converged BGP tables.

    Each hop is resolved {e on arrival} at a node (so in-flight BGP
    changes affect packets mid-path, as in reality). Per-hop latency is
    the link's propagation delay, plus Gaussian link jitter, plus the
    receiving transit's ECMP-lane offset for the packet's forwarding
    5-tuple, plus a caller-supplied dynamic component — the hook the
    workload layer uses to inject diurnal drift, route-change level
    shifts and instability spikes per transit network. *)

type t

val create :
  ?seed:int ->
  ?lanes_of:(int -> Ecmp.lanes) ->
  ?extra_delay_ms:(from_node:int -> to_node:int -> time_s:float -> float) ->
  ?max_queue_s:float ->
  Tango_bgp.Network.t ->
  t
(** The fabric shares the BGP network's topology and engine. Defaults: a
    single zero-offset lane everywhere and no dynamic delay.
    [max_queue_s] enables bandwidth contention: each directed link
    serializes packets FIFO at its link rate and tail-drops a packet
    whose queueing delay would exceed the bound (reason
    ["queue-overflow"]). Without it, links have unbounded parallel
    capacity (delay-only model). *)

val network : t -> Tango_bgp.Network.t

val send :
  t ->
  from_node:int ->
  ?on_dropped:(reason:string -> Tango_net.Packet.t -> unit) ->
  on_delivered:(node:int -> Tango_net.Packet.t -> unit) ->
  Tango_net.Packet.t ->
  unit
(** Inject a packet at [from_node]; it is forwarded toward the
    destination of its {!Tango_net.Packet.forwarding_flow}. Exactly one
    of the callbacks eventually fires (drop reasons: ["unroutable"],
    ["loss"], ["ttl"]). *)

val send_batch :
  t ->
  from_node:int ->
  ?on_dropped:(reason:string -> Tango_net.Packet.t -> unit) ->
  on_delivered:(node:int -> Tango_net.Packet.t -> unit) ->
  Batch.t ->
  unit
(** Inject every packet of a batch at [from_node], in batch order.
    Behaviorally equivalent to calling {!send} per packet; the batched
    fast path applies when the fabric carries no faults, no queueing
    model and no custom hooks, {e and} the packet's route is "plain"
    (zero jitter and zero loss on every link, none failed). Plain routes
    are resolved once per (from, dst) pair — a FIB snapshot validated
    against {!Tango_bgp.Network.revision} — and delivery is scheduled as
    a single engine event at the closed-form arrival time, amortizing
    the per-hop closures, RIB lookups and obs branches across the batch.
    Everything else falls back to {!send}, packet by packet, in order. *)

val send_batch_direct :
  t ->
  from_node:int ->
  now_s:float ->
  ?on_dropped:(reason:string -> Tango_net.Packet.t -> unit) ->
  on_delivered_at:(node:int -> at_s:float -> Tango_net.Packet.t -> unit) ->
  Batch.t ->
  unit
(** The multicore lane variant of {!send_batch}: synchronous, engine-free
    and registry-free, safe to call from a non-main domain. Packets on
    plain routes are "delivered" immediately with their computed virtual
    arrival time [at_s] (measured from the caller-supplied virtual send
    time [now_s]); the caller reorders by [at_s] (see
    {!Tango_sim.Shard}). No process-wide metric or trace is touched —
    per-fabric counts accumulate locally and are published by
    {!quiesce_metrics}. Ineligible packets fall back to {!send} (which
    does touch the registry and the engine — lane code must keep
    {!direct_fallbacks} at zero, and the throughput pipeline asserts
    that). *)

val route_plain : t -> from_node:int -> dst:Tango_net.Addr.t -> bool
(** Whether a batched send from [from_node] to [dst] would take the fast
    path right now — fabric eligible, route resolvable, every link
    jitter-free, loss-free and healthy. Setup-time probe for lane
    pipelines that require [direct_fallbacks] to stay zero. *)

val direct_fallbacks : t -> int
(** Packets {!send_batch_direct} had to route through the canonical
    {!send}. *)

val quiesce_metrics : t -> unit
(** Publish the direct-path packet counts into the process-wide metric
    registry. Idempotent (publishes deltas since the last call). Only
    call at quiesce points — after every lane domain using this fabric
    has been joined. *)

val fail_link : t -> from_node:int -> to_node:int -> unit
(** Silently blackhole a directed link: packets crossing it are dropped
    with reason ["link-failure"], while BGP remains oblivious — the
    gray-failure scenario that motivates data-driven failover (the paper
    cites Blink-style recovery as the kind of technique Tango enables).
    Idempotent. Link state lives in flat arrays indexed by the packed
    key [from * node_count + to]; raises {!Err.Invalid} for node ids
    outside the topology. *)

val heal_link : t -> from_node:int -> to_node:int -> unit
val link_failed : t -> from_node:int -> to_node:int -> bool

val set_link_fault :
  t ->
  from_node:int ->
  to_node:int ->
  ?loss:float ->
  ?extra_delay_ms:(time_s:float -> float) ->
  unit ->
  unit
(** Attach a dynamic fault to a directed link (the brownout hook of
    {!Tango_faults}): packets crossing it are additionally dropped with
    probability [loss] (reason ["fault-loss"]) and delayed by
    [extra_delay_ms ~time_s] milliseconds. Replaces any previous fault on
    the link. The per-packet cost with no faults anywhere is a single
    counter load and branch. Raises {!Err.Invalid} when [loss] is outside
    [0,1] or a node id is outside the topology. *)

val clear_link_fault : t -> from_node:int -> to_node:int -> unit
(** Remove the fault on one directed link. Idempotent. *)

val clear_faults : t -> unit
(** Remove every link fault (does not heal {!fail_link} blackholes). *)

val fault_count : t -> int
(** Number of directed links currently carrying a fault. *)

val link_fault_loss : t -> from_node:int -> to_node:int -> float

val link_fault_extra_ms :
  t -> from_node:int -> to_node:int -> time_s:float -> float
(** The extra fault delay a packet crossing the link at [time_s] would
    incur — the exact check the forwarding fast path performs, exposed
    for tests and the microbenchmarks. *)

val sent : t -> int
val delivered : t -> int
val dropped : t -> int
