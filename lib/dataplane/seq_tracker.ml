(* Missing sequence numbers are kept in a set; with 10 ms probe spacing
   and realistic loss the set stays tiny.

   Sequence numbers arrive as int64 (the wire field is 64-bit) but are
   stored as native ints: tunnel sequences count up from zero and can
   never reach 2^62 in a simulation, and an int set avoids boxing an
   Int64 on every comparison of the per-packet path. *)
module Int_set = Set.Make (Int)
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability, aggregated across trackers (one tracker
   per inbound path per PoP; see DESIGN.md §8). *)
let m_loss =
  Metric.counter ~help:"Sequence numbers provisionally declared lost"
    "seq_loss_total"

let m_reorder =
  Metric.counter ~help:"Provisional losses that arrived late (reordering)"
    "seq_reorder_total"

let m_duplicate =
  Metric.counter ~help:"Duplicate sequence numbers received" "seq_duplicate_total"

let k_loss = Trace.kind "seq.loss"

let k_reorder = Trace.kind "seq.reorder"

let k_duplicate = Trace.kind "seq.duplicate"

type t = {
  mutable next_expected : int;
  mutable missing : Int_set.t;
  mutable confirmed_lost : int;  (* pruned from [missing] by confirm_below *)
  mutable received : int;
  mutable reordered : int;
  mutable duplicates : int;
  mutable recent : float;  (* EWMA of the per-packet loss indicator *)
}

let recent_alpha = 0.05

let create () =
  {
    next_expected = 0;
    missing = Int_set.empty;
    confirmed_lost = 0;
    received = 0;
    reordered = 0;
    duplicates = 0;
    recent = 0.0;
  }

let[@hot] bump_recent t indicator =
  t.recent <- (recent_alpha *. indicator) +. ((1.0 -. recent_alpha) *. t.recent)

(* [now_s] only stamps the emitted trace records (the tracker itself is
   clockless); callers without a clock may omit it. *)
let[@hot] observe ?(now_s = 0.0) t seq64 =
  if Int64.compare seq64 (Int64.of_int max_int) > 0 || Int64.compare seq64 0L < 0
  then Err.invalid "Seq_tracker.observe: sequence outside [0, max_int]";
  let seq = Int64.to_int seq64 in
  if seq >= t.next_expected then begin
    (* Every number skipped over becomes provisionally missing. *)
    for skipped = t.next_expected to seq - 1 do
      t.missing <- Int_set.add skipped t.missing;
      Metric.incr m_loss;
      Trace.record Trace.default ~now:now_s ~kind:k_loss skipped 0;
      bump_recent t 1.0
    done;
    t.next_expected <- seq + 1;
    t.received <- t.received + 1;
    bump_recent t 0.0
  end
  else if Int_set.mem seq t.missing then begin
    t.missing <- Int_set.remove seq t.missing;
    t.received <- t.received + 1;
    t.reordered <- t.reordered + 1;
    Metric.incr m_reorder;
    Trace.record Trace.default ~now:now_s ~kind:k_reorder seq 0;
    (* The provisional loss turned out to be reordering. *)
    bump_recent t (-1.0);
    if t.recent < 0.0 then t.recent <- 0.0
  end
  else begin
    t.duplicates <- t.duplicates + 1;
    Metric.incr m_duplicate;
    Trace.record Trace.default ~now:now_s ~kind:k_duplicate seq 0
  end

let received t = t.received

(* Bound the missing set, like the fixed-size map a real switch would
   keep: every still-provisional sequence below [bound] is declared
   permanently lost and dropped from the set (it keeps counting in
   [lost]). A late arrival of a confirmed sequence counts as a
   duplicate, so only call with a bound the reordering horizon can no
   longer reach. The empty-set check keeps the per-call cost of the
   common case at one load. *)
let confirm_below t bound64 =
  if
    Int64.compare bound64 (Int64.of_int max_int) > 0
    || Int64.compare bound64 0L < 0
  then Err.invalid "Seq_tracker.confirm_below: bound outside [0, max_int]";
  if not (Int_set.is_empty t.missing) then begin
    let bound = Int64.to_int bound64 in
    let stale, present, fresh = Int_set.split bound t.missing in
    (* [split] removes [bound] itself from both halves; it is not below
       the bound, so it stays provisional. *)
    let fresh = if present then Int_set.add bound fresh else fresh in
    if not (Int_set.is_empty stale) then begin
      t.confirmed_lost <- t.confirmed_lost + Int_set.cardinal stale;
      t.missing <- fresh
    end
    else t.missing <- fresh
  end

let lost t = t.confirmed_lost + Int_set.cardinal t.missing

let reordered t = t.reordered

let duplicates t = t.duplicates

let recent_loss_rate t = t.recent

let loss_rate t =
  let total = t.received + lost t in
  if total = 0 then 0.0 else float_of_int (lost t) /. float_of_int total

let pp ppf t =
  Format.fprintf ppf "rx=%d lost=%d reordered=%d dup=%d" t.received (lost t)
    t.reordered t.duplicates
