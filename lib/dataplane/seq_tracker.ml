(* Missing sequence numbers are kept in a set; with 10 ms probe spacing
   and realistic loss the set stays tiny.

   Sequence numbers arrive as int64 (the wire field is 64-bit) but are
   stored as native ints: tunnel sequences count up from zero and can
   never reach 2^62 in a simulation, and an int set avoids boxing an
   Int64 on every comparison of the per-packet path. *)
module Int_set = Set.Make (Int)
module Metric = Tango_obs.Metric
module Trace = Tango_obs.Trace

(* Process-wide observability, aggregated across trackers (one tracker
   per inbound path per PoP; see DESIGN.md §8). *)
let m_loss =
  Metric.counter ~help:"Sequence numbers provisionally declared lost"
    "seq_loss_total"

let m_reorder =
  Metric.counter ~help:"Provisional losses that arrived late (reordering)"
    "seq_reorder_total"

let m_duplicate =
  Metric.counter ~help:"Duplicate sequence numbers received" "seq_duplicate_total"

let k_loss = Trace.kind "seq.loss"

let k_reorder = Trace.kind "seq.reorder"

let k_duplicate = Trace.kind "seq.duplicate"

type t = {
  mutable next_expected : int;
  mutable resync : bool;
      (* Set when table-level expiry dropped this tracker's state: the
         next observation re-anchors [next_expected] at the arriving
         sequence instead of counting the idle gap as loss. *)
  mutable missing : Int_set.t;
  mutable provisional : int;
      (* Int_set.cardinal missing, maintained incrementally so resident
         accounting over 10^6 trackers costs one load per tracker *)
  mutable confirmed_lost : int;  (* pruned from [missing] by confirm_below *)
  mutable received : int;
  mutable reordered : int;
  mutable duplicates : int;
  mutable recent : float;  (* EWMA of the per-packet loss indicator *)
}

let recent_alpha = 0.05

let create () =
  {
    next_expected = 0;
    resync = false;
    missing = Int_set.empty;
    provisional = 0;
    confirmed_lost = 0;
    received = 0;
    reordered = 0;
    duplicates = 0;
    recent = 0.0;
  }

let[@hot] bump_recent t indicator =
  t.recent <- (recent_alpha *. indicator) +. ((1.0 -. recent_alpha) *. t.recent)

(* [now_s] only stamps the emitted trace records (the tracker itself is
   clockless); callers without a clock may omit it. *)
let[@hot] observe ?(now_s = 0.0) t seq64 =
  if Int64.compare seq64 (Int64.of_int max_int) > 0 || Int64.compare seq64 0L < 0
  then Err.invalid "Seq_tracker.observe: sequence outside [0, max_int]";
  let seq = Int64.to_int seq64 in
  if t.resync then begin
    t.resync <- false;
    t.next_expected <- seq
  end;
  if seq >= t.next_expected then begin
    (* Every number skipped over becomes provisionally missing. *)
    for skipped = t.next_expected to seq - 1 do
      t.missing <- Int_set.add skipped t.missing;
      t.provisional <- t.provisional + 1;
      Metric.incr m_loss;
      Trace.record Trace.default ~now:now_s ~kind:k_loss skipped 0;
      bump_recent t 1.0
    done;
    t.next_expected <- seq + 1;
    t.received <- t.received + 1;
    bump_recent t 0.0
  end
  else if Int_set.mem seq t.missing then begin
    t.missing <- Int_set.remove seq t.missing;
    t.provisional <- t.provisional - 1;
    t.received <- t.received + 1;
    t.reordered <- t.reordered + 1;
    Metric.incr m_reorder;
    Trace.record Trace.default ~now:now_s ~kind:k_reorder seq 0;
    (* The provisional loss turned out to be reordering. *)
    bump_recent t (-1.0);
    if t.recent < 0.0 then t.recent <- 0.0
  end
  else begin
    t.duplicates <- t.duplicates + 1;
    Metric.incr m_duplicate;
    Trace.record Trace.default ~now:now_s ~kind:k_duplicate seq 0
  end

let received t = t.received

(* Bound the missing set, like the fixed-size map a real switch would
   keep: every still-provisional sequence below [bound] is declared
   permanently lost and dropped from the set (it keeps counting in
   [lost]). A late arrival of a confirmed sequence counts as a
   duplicate, so only call with a bound the reordering horizon can no
   longer reach. The empty-set check keeps the per-call cost of the
   common case at one load. *)
let confirm_below t bound64 =
  if
    Int64.compare bound64 (Int64.of_int max_int) > 0
    || Int64.compare bound64 0L < 0
  then Err.invalid "Seq_tracker.confirm_below: bound outside [0, max_int]";
  if not (Int_set.is_empty t.missing) then begin
    let bound = Int64.to_int bound64 in
    let stale, present, fresh = Int_set.split bound t.missing in
    (* [split] removes [bound] itself from both halves; it is not below
       the bound, so it stays provisional. *)
    let fresh = if present then Int_set.add bound fresh else fresh in
    let n_stale = Int_set.cardinal stale in
    if n_stale > 0 then begin
      t.confirmed_lost <- t.confirmed_lost + n_stale;
      t.provisional <- t.provisional - n_stale
    end;
    t.missing <- fresh
  end

let provisional t = t.provisional

let lost t = t.confirmed_lost + t.provisional

let reordered t = t.reordered

let duplicates t = t.duplicates

let recent_loss_rate t = t.recent

let loss_rate t =
  let total = t.received + lost t in
  if total = 0 then 0.0 else float_of_int (lost t) /. float_of_int total

let pp ppf t =
  Format.fprintf ppf "rx=%d lost=%d reordered=%d dup=%d" t.received (lost t)
    t.reordered t.duplicates

(* A dense keyed population of trackers with memory accounting — the
   10^6-key regime of the million-flow engine, where "how much per-flow
   state is resident right now" is itself an operational signal. The
   table maintains the aggregate provisional-entry count incrementally
   (O(1) per observe thanks to [provisional]) so the load engine can
   gate a run's resident-state peak against a configured ceiling
   without ever walking a million trackers. *)
module Table = struct
  type tracker = t

  type nonrec t = {
    trackers : tracker array;
    ceiling : int;  (* advisory bound on resident provisional entries *)
    idle_generations : int;  (* expiry horizon; 0 = aging off *)
    last_gen : int array;  (* generation of each key's last observation *)
    mutable generation : int;
    mutable resident : int;  (* Σ provisional over all trackers *)
    mutable resident_peak : int;
    mutable active : int;  (* trackers that have observed ≥ 1 packet *)
    mutable evictions : int;  (* trackers expired by generation sweeps *)
  }

  let create ?(ceiling = 0) ?(idle_generations = 0) ~keys () =
    if keys < 0 then Err.invalid "Seq_tracker.Table.create: keys %d negative" keys;
    if ceiling < 0 then
      Err.invalid "Seq_tracker.Table.create: ceiling %d negative" ceiling;
    if idle_generations < 0 then
      Err.invalid "Seq_tracker.Table.create: idle_generations %d negative"
        idle_generations;
    {
      trackers = Array.init keys (fun _ -> create ());
      ceiling;
      idle_generations;
      last_gen = Array.make (max keys 1) 0;
      generation = 0;
      resident = 0;
      resident_peak = 0;
      active = 0;
      evictions = 0;
    }

  let keys tbl = Array.length tbl.trackers

  let tracker tbl key = tbl.trackers.(key)

  (* [received = 0] characterizes an untouched tracker: the very first
     observe always lands in the in-order branch (next_expected is 0 and
     sequences are non-negative), so it cannot register only a duplicate
     or only provisional losses. *)
  let[@hot] observe ?now_s tbl ~key seq64 =
    let tr = Array.unsafe_get tbl.trackers key in
    let untouched = tr.received = 0 in
    let before = tr.provisional in
    observe ?now_s tr seq64;
    Array.unsafe_set tbl.last_gen key tbl.generation;
    if untouched then tbl.active <- tbl.active + 1;
    let d = tr.provisional - before in
    if d <> 0 then begin
      tbl.resident <- tbl.resident + d;
      if tbl.resident > tbl.resident_peak then tbl.resident_peak <- tbl.resident
    end

  let[@hot] confirm_below tbl ~key bound64 =
    let tr = Array.unsafe_get tbl.trackers key in
    let before = tr.provisional in
    confirm_below tr bound64;
    tbl.resident <- tbl.resident + (tr.provisional - before)

  let prune tbl ~bound_of =
    for key = 0 to Array.length tbl.trackers - 1 do
      confirm_below tbl ~key (bound_of key)
    done

  (* Expire one idle tracker: its provisional set is freed (credited
     back to the resident aggregate, entries counting as confirmed
     losses — they can no longer heal), and the tracker re-anchors on
     its next observation instead of treating the idle gap as loss. *)
  let evict tbl ~key =
    let tr = tbl.trackers.(key) in
    let freed = tr.provisional in
    if freed > 0 then begin
      tr.confirmed_lost <- tr.confirmed_lost + freed;
      tr.provisional <- 0;
      tr.missing <- Int_set.empty;
      tbl.resident <- tbl.resident - freed
    end;
    tr.resync <- true;
    tbl.evictions <- tbl.evictions + 1

  let advance_generation tbl =
    tbl.generation <- tbl.generation + 1;
    if tbl.idle_generations > 0 then begin
      let horizon = tbl.generation - tbl.idle_generations in
      for key = 0 to Array.length tbl.trackers - 1 do
        let tr = Array.unsafe_get tbl.trackers key in
        if tr.received > 0 && (not tr.resync) && tbl.last_gen.(key) < horizon
        then evict tbl ~key
      done
    end;
    tbl.generation

  let generation tbl = tbl.generation

  let idle_generations tbl = tbl.idle_generations

  let evictions tbl = tbl.evictions

  let active_keys tbl = tbl.active

  let resident tbl = tbl.resident

  let resident_peak tbl = tbl.resident_peak

  let ceiling tbl = tbl.ceiling

  let within_ceiling tbl = tbl.ceiling = 0 || tbl.resident_peak <= tbl.ceiling

  let total f tbl = Array.fold_left (fun acc tr -> acc + f tr) 0 tbl.trackers

  let received_total tbl = total received tbl

  let lost_total tbl = total lost tbl

  let reordered_total tbl = total reordered tbl

  let duplicates_total tbl = total duplicates tbl
end
