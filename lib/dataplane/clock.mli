(** Per-switch hardware clocks.

    The paper's one-way-delay measurement deliberately tolerates
    unsynchronized clocks: each switch stamps packets with its own clock
    and the receiver subtracts with its own, so every OWD is shifted by
    the same constant offset and {e relative} comparisons across paths
    remain exact. This module models that: a clock is the virtual time
    plus a constant offset (and optional drift, for experiments probing
    the paper's footnote-1 caveat). *)

type t

val create : ?offset_ns:int64 -> ?drift_ppm:float -> unit -> t
(** [offset_ns] is the constant skew versus true (virtual) time;
    [drift_ppm] a linear drift in parts-per-million (default 0). *)

val now_ns : t -> sim_time_s:float -> int64
(** Clock reading when the simulation clock shows [sim_time_s]. *)

val offset_ns : t -> int64

val drift_ppm : t -> float

val step : t -> step_ns:int64 -> t
(** [step t ~step_ns] is [t] with its constant offset shifted by
    [step_ns] — an NTP-style clock step. Relative OWD comparison is
    supposed to survive these; the fault engine uses them to prove it
    (and to stress {!Seq_tracker}'s clockless design). *)
