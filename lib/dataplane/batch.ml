(* Fixed-size packet batches for the batched dataplane (DESIGN.md §11).

   A batch is a preallocated 64-slot array plus a length: the XDP-style
   unit of work that lets Fabric/Pop amortize their per-send overhead
   (eligibility checks, route-cache validation, callback closures, the
   fault-hook and obs branches) across up to 64 packets. The slot array
   is allocated once, on the first [add] (OCaml arrays need a seed
   element, and the first packet is it); after that the steady-state
   path writes in place and allocates nothing. [clear] only resets the
   length — slots keep their last packet reference until overwritten,
   which pins at most one stale batch of packets and costs nothing. *)

module Packet = Tango_net.Packet

let capacity = 64

type t = { mutable slots : Packet.t array; mutable len : int }

let create () = { slots = [||]; len = 0 }

let length t = t.len

let[@hot] is_full t = t.len >= capacity

let[@hot] is_empty t = t.len = 0

let[@hot] clear t = t.len <- 0

let[@hot] add t packet =
  if t.len >= capacity then Err.invalid "Batch.add: batch full (%d slots)" capacity;
  if Array.length t.slots = 0 then begin
    (* One-time slot allocation, seeded by the first packet ever added. *)
    t.slots <- Array.make capacity packet;
    t.len <- 1
  end
  else begin
    Array.unsafe_set t.slots t.len packet;
    t.len <- t.len + 1
  end

let[@hot] get t i =
  if i < 0 || i >= t.len then Err.invalid "Batch.get: index %d outside [0, %d)" i t.len;
  Array.unsafe_get t.slots i

let iter t ~f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.slots i)
  done

(* Drop the stale packet references [clear] leaves behind by refilling
   every slot with slot 0's packet — after this, the batch keeps at most
   one packet alive. Lane loops call this at quiesce boundaries so a
   minor collection there finds no transient packets to promote. *)
let purge t =
  if Array.length t.slots > 0 then
    Array.fill t.slots 0 capacity (Array.unsafe_get t.slots 0);
  t.len <- 0
