(* Tests for the workload layer: delay processes, the Fig. 4 scenario,
   traffic generators, and the in-order delivery model. *)

open Tango_workload
module Rng = Tango_sim.Rng
module Engine = Tango_sim.Engine
module Vultr = Tango_topo.Vultr

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Delay_process                                                       *)

let test_spike_shape () =
  let s = { Delay_process.at_s = 10.0; magnitude_ms = 50.0; width_s = 2.0 } in
  check_float "before" 0.0 (Delay_process.spike_value s ~time_s:9.9);
  check_float "onset" 50.0 (Delay_process.spike_value s ~time_s:10.0);
  check_float "holds" 50.0 (Delay_process.spike_value s ~time_s:11.0);
  check_float "sharp trailing edge" 0.0 (Delay_process.spike_value s ~time_s:12.0)

let test_level_shift_floor () =
  let rng = Rng.create ~seed:1 in
  let event =
    Delay_process.make_route_change ~rng ~start_s:100.0 ~duration_s:60.0
      ~magnitude_ms:5.0 ()
  in
  let p = Delay_process.create ~seed:2 ~events:[ event ] () in
  check_float "before" 0.0 (Delay_process.floor_value p ~time_s:50.0);
  check_float "during" 5.0 (Delay_process.floor_value p ~time_s:130.0);
  check_float "after" 0.0 (Delay_process.floor_value p ~time_s:200.0)

let test_instability_peak_pinned () =
  let rng = Rng.create ~seed:3 in
  let event =
    Delay_process.make_instability ~rng ~start_s:100.0 ~duration_s:60.0
      ~rate_hz:0.5 ~max_magnitude_ms:50.0 ()
  in
  let p = Delay_process.create ~seed:4 ~events:[ event ] () in
  (* Scan the window: the cap spike guarantees the peak reaches 50. *)
  let peak = ref 0.0 in
  for i = 0 to 6000 do
    let t = 100.0 +. (float_of_int i /. 100.0) in
    peak := Float.max !peak (Delay_process.floor_value p ~time_s:t)
  done;
  check_float "peak equals cap" 50.0 !peak;
  (* Outside the window, nothing. *)
  check_float "quiet before" 0.0 (Delay_process.floor_value p ~time_s:99.0);
  check_float "quiet after" 0.0 (Delay_process.floor_value p ~time_s:161.6)

let test_instability_spikes_bounded () =
  let rng = Rng.create ~seed:5 in
  match
    Delay_process.make_instability ~rng ~start_s:0.0 ~duration_s:100.0
      ~rate_hz:1.0 ~max_magnitude_ms:50.0 ()
  with
  | Delay_process.Instability { spikes; _ } ->
      Alcotest.(check bool) "spikes exist" true (List.length spikes > 10);
      List.iter
        (fun (s : Delay_process.spike) ->
          Alcotest.(check bool) "magnitude capped" true (s.magnitude_ms <= 50.0);
          Alcotest.(check bool) "inside window" true
            (s.at_s >= 0.0 && s.at_s <= 100.0))
        spikes
  | Delay_process.Level_shift _ -> Alcotest.fail "wrong event type"

let test_diurnal_period () =
  let p =
    Delay_process.create ~seed:6 ~diurnal_amplitude_ms:2.0 ~diurnal_period_s:100.0 ()
  in
  let v0 = Delay_process.floor_value p ~time_s:0.0 in
  let v100 = Delay_process.floor_value p ~time_s:100.0 in
  check_float "periodic" v0 v100;
  let peak = Delay_process.floor_value p ~time_s:25.0 in
  check_float "amplitude" 2.0 peak

let test_white_noise_statistics () =
  let p = Delay_process.create ~seed:7 ~white_std_ms:0.33 () in
  let stats = Tango_sim.Stats.create () in
  for i = 0 to 20_000 do
    Tango_sim.Stats.add stats (Delay_process.value p ~time_s:(float_of_int i *. 0.01))
  done;
  (* Clamped at zero, so the observed std of a zero-floor process is
     below the nominal; it must still be clearly nonzero. *)
  Alcotest.(check bool) "noisy" true (Tango_sim.Stats.stddev stats > 0.1)

let test_process_values_nonnegative () =
  let p =
    Delay_process.create ~seed:8 ~white_std_ms:1.0 ~ou_std_ms:1.0 ()
  in
  for i = 0 to 5_000 do
    let v = Delay_process.value p ~time_s:(float_of_int i *. 0.01) in
    if v < 0.0 then Alcotest.failf "negative delay %f" v
  done

let test_process_monotonic_clock_enforced () =
  let p = Delay_process.create ~seed:9 ~ou_std_ms:0.1 () in
  ignore (Delay_process.value p ~time_s:10.0);
  Alcotest.(check bool) "backwards rejected" true
    (try ignore (Delay_process.value p ~time_s:9.0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fig4 scenario                                                       *)

let test_fig4_windows () =
  let sc = Fig4.create ~horizon_s:600.0 () in
  let rc0, rc1 = Fig4.route_change_window sc in
  let i0, i1 = Fig4.instability_window sc in
  check_float "rc start" 240.0 rc0;
  check_float "rc stop" 360.0 rc1;
  check_float "inst start" 420.0 i0;
  check_float "inst stop" 480.0 i1

let test_fig4_gtt_westbound_has_events () =
  let sc = Fig4.create () in
  match Fig4.process_for sc ~transit:Vultr.gtt ~toward:Vultr.vultr_la with
  | None -> Alcotest.fail "missing GTT westbound process"
  | Some p ->
      let events = Delay_process.events p in
      Alcotest.(check int) "two events" 2 (List.length events);
      let rc0, _ = Fig4.route_change_window sc in
      (* Level shift is +5 ms inside its window. *)
      Alcotest.(check bool) "shift visible" true
        (Delay_process.floor_value p ~time_s:(rc0 +. 10.0) >= 4.9)

let test_fig4_unrelated_links_zero () =
  let sc = Fig4.create () in
  check_float "no process on peer links" 0.0
    (Fig4.extra_delay_ms sc ~from_node:Vultr.ntt ~to_node:Vultr.cogent ~time_s:1.0)

let test_fig4_telia_noisier_than_gtt_eastbound () =
  let sc = Fig4.create ~seed:21 () in
  let sample transit =
    match Fig4.process_for sc ~transit ~toward:Vultr.vultr_ny with
    | None -> Alcotest.fail "missing process"
    | Some p ->
        let stats = Tango_sim.Stats.create () in
        for i = 0 to 5_000 do
          Tango_sim.Stats.add stats (Delay_process.value p ~time_s:(float_of_int i *. 0.01))
        done;
        Tango_sim.Stats.stddev stats
  in
  let telia = sample Vultr.telia and gtt = sample Vultr.gtt in
  Alcotest.(check bool) "telia much noisier" true (telia > (5.0 *. gtt))

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)

let test_traffic_periodic_count () =
  let e = Engine.create () in
  let count = ref 0 in
  Traffic.periodic e ~interval_s:0.01 ~until_s:1.0 (fun _ -> incr count);
  Engine.run e;
  (* Ticks at 0.00, 0.01, ...; float accumulation may or may not include
     the tick at exactly 1.00. *)
  Alcotest.(check bool) "100 Hz for 1 s" true (!count >= 100 && !count <= 101)

let test_traffic_periodic_start () =
  let e = Engine.create () in
  let first = ref nan in
  Traffic.periodic e ~interval_s:0.5 ~start_s:2.0 ~until_s:3.0 (fun e ->
      if Float.is_nan !first then first := Engine.now e);
  Engine.run e;
  check_float "starts at 2" 2.0 !first

let test_traffic_poisson_rate () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:10 in
  let count = ref 0 in
  Traffic.poisson e ~rng ~rate_hz:100.0 ~until_s:10.0 (fun _ -> incr count);
  Engine.run e;
  Alcotest.(check bool) "about 1000 arrivals" true (!count > 850 && !count < 1150)

let test_traffic_on_off_bursty () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:11 in
  let count = ref 0 in
  Traffic.on_off e ~rng ~rate_hz:100.0 ~burst_s:0.5 ~idle_s:0.5 ~until_s:10.0
    (fun _ -> incr count);
  Engine.run e;
  (* Duty cycle ~50%: far fewer than a constant 100 Hz source. *)
  Alcotest.(check bool) "bursty" true (!count > 100 && !count < 900)

(* ------------------------------------------------------------------ *)
(* Inorder                                                             *)

let test_inorder_sequential () =
  let io = Inorder.create () in
  let r0 = Inorder.arrival io ~seq:0 ~time:1.0 in
  let r1 = Inorder.arrival io ~seq:1 ~time:2.0 in
  Alcotest.(check (list (pair int (float 1e-9)))) "release 0" [ (0, 1.0) ] r0;
  Alcotest.(check (list (pair int (float 1e-9)))) "release 1" [ (1, 2.0) ] r1;
  Alcotest.(check int) "pending" 0 (Inorder.pending io)

let test_inorder_head_of_line () =
  let io = Inorder.create () in
  ignore (Inorder.arrival io ~seq:0 ~time:1.0);
  (* Packet 1 is delayed; 2 and 3 arrive and must wait. *)
  Alcotest.(check (list (pair int (float 1e-9)))) "2 blocked" []
    (Inorder.arrival io ~seq:2 ~time:1.1);
  Alcotest.(check (list (pair int (float 1e-9)))) "3 blocked" []
    (Inorder.arrival io ~seq:3 ~time:1.2);
  Alcotest.(check int) "two pending" 2 (Inorder.pending io);
  let released = Inorder.arrival io ~seq:1 ~time:1.5 in
  Alcotest.(check (list (pair int (float 1e-9)))) "burst release"
    [ (1, 1.5); (2, 1.5); (3, 1.5) ]
    released;
  (* Packet 2 waited 0.4 s behind the slow packet 1. *)
  Alcotest.(check (option (float 1e-6))) "hol extra" (Some 0.4)
    (Inorder.head_of_line_extra io ~seq:2);
  Alcotest.(check (option (float 1e-6))) "unblocking packet itself" (Some 0.0)
    (Inorder.head_of_line_extra io ~seq:1)

let test_inorder_duplicates_ignored () =
  let io = Inorder.create () in
  ignore (Inorder.arrival io ~seq:0 ~time:1.0);
  Alcotest.(check (list (pair int (float 1e-9)))) "dup ignored" []
    (Inorder.arrival io ~seq:0 ~time:2.0);
  Alcotest.(check int) "one released" 1 (Inorder.released io)

let inorder_qcheck_all_released =
  QCheck.Test.make ~name:"any permutation fully releases in order" ~count:200
    QCheck.(int_bound 30)
    (fun n ->
      let io = Inorder.create () in
      let arr = Array.init (n + 1) Fun.id in
      let rng = Rng.create ~seed:(n + 100) in
      Tango_sim.Rng.shuffle rng arr;
      let released = ref [] in
      Array.iteri
        (fun i seq ->
          let out = Inorder.arrival io ~seq ~time:(float_of_int i) in
          released := !released @ List.map fst out)
        arr;
      !released = List.init (n + 1) Fun.id && Inorder.pending io = 0)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tango_workload"
    [
      ( "delay_process",
        [
          tc "spike shape" `Quick test_spike_shape;
          tc "level shift floor" `Quick test_level_shift_floor;
          tc "instability peak pinned" `Quick test_instability_peak_pinned;
          tc "spikes bounded" `Quick test_instability_spikes_bounded;
          tc "diurnal period" `Quick test_diurnal_period;
          tc "white noise stats" `Slow test_white_noise_statistics;
          tc "non-negative" `Quick test_process_values_nonnegative;
          tc "monotonic clock" `Quick test_process_monotonic_clock_enforced;
        ] );
      ( "fig4",
        [
          tc "windows" `Quick test_fig4_windows;
          tc "gtt westbound events" `Quick test_fig4_gtt_westbound_has_events;
          tc "unrelated links zero" `Quick test_fig4_unrelated_links_zero;
          tc "telia noisier than gtt" `Slow test_fig4_telia_noisier_than_gtt_eastbound;
        ] );
      ( "traffic",
        [
          tc "periodic count" `Quick test_traffic_periodic_count;
          tc "periodic start" `Quick test_traffic_periodic_start;
          tc "poisson rate" `Quick test_traffic_poisson_rate;
          tc "on-off bursty" `Quick test_traffic_on_off_bursty;
        ] );
      ( "inorder",
        [
          tc "sequential" `Quick test_inorder_sequential;
          tc "head of line" `Quick test_inorder_head_of_line;
          tc "duplicates" `Quick test_inorder_duplicates_ignored;
          qc inorder_qcheck_all_released;
        ] );
    ]
