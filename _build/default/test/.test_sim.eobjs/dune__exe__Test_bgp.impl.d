test/test_bgp.ml: Alcotest As_path Community Decision Int List Network Option Printf QCheck QCheck_alcotest Route Speaker String Tango_bgp Tango_net Tango_sim Tango_topo Update
