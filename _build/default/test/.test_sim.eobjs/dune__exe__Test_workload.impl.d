test/test_workload.ml: Alcotest Array Delay_process Fig4 Float Fun Inorder List QCheck QCheck_alcotest Tango_sim Tango_topo Tango_workload Traffic
