test/test_topo.ml: Alcotest Builders Int Link List Printf Relationship Serial String Tango_bgp Tango_net Tango_sim Tango_topo Topology Vultr
