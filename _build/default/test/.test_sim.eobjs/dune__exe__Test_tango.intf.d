test/test_tango.mli:
