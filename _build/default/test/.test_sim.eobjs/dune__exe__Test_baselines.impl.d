test/test_baselines.ml: Alcotest Array Gen List QCheck QCheck_alcotest Tango Tango_baselines Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_telemetry Tango_topo
