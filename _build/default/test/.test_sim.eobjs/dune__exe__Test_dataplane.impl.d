test/test_dataplane.ml: Alcotest Array Clock Ecmp Fabric Fun Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Seq_tracker Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_topo Tunnel
