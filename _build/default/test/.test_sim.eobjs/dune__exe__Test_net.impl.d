test/test_net.ml: Addr Alcotest Bytes Char Flow Int64 Ipv4 Ipv6 List Packet Prefix Printf QCheck QCheck_alcotest Siphash Tango_net Wire
