test/test_sim.ml: Alcotest Array Engine Float Fun Gen Heap Int Int64 List QCheck QCheck_alcotest Rng Stats Tango_sim
