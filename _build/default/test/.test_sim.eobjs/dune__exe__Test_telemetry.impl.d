test/test_telemetry.ml: Alcotest Ascii_plot Detect Ewma Export Filename Float Gen Jitter List QCheck QCheck_alcotest Rolling Series String Sys Tango_sim Tango_telemetry
