(* Tests for the baseline comparators: RTT/2 route control and
   non-tunneled ECMP measurement. *)

module Rtt = Tango_baselines.Rtt_control
module Ecmp_probe = Tango_baselines.Ecmp_probe
module Vultr = Tango_topo.Vultr
module Network = Tango_bgp.Network
module Prefix = Tango_net.Prefix
module Series = Tango_telemetry.Series

(* ------------------------------------------------------------------ *)
(* Rtt_control                                                         *)

let test_rtt_estimates () =
  let est = Rtt.estimates ~forward_ms:[| 30.0; 40.0 |] ~reverse_ms:[| 20.0; 10.0 |] in
  Alcotest.(check int) "count" 2 (Array.length est);
  Alcotest.(check (float 1e-9)) "path0" 25.0 est.(0).Rtt.rtt_half_ms;
  Alcotest.(check (float 1e-9)) "path1" 25.0 est.(1).Rtt.rtt_half_ms

let test_rtt_mismatch_rejected () =
  Alcotest.(check bool) "length mismatch" true
    (try ignore (Rtt.estimates ~forward_ms:[| 1.0 |] ~reverse_ms:[||]); false
     with Invalid_argument _ -> true)

let test_rtt_blind_to_asymmetry () =
  (* Forward congestion on path 0 is invisible when the reverse is
     correspondingly fast: the core failure mode of RTT control. *)
  let forward = [| 40.0; 31.0 |] and reverse = [| 20.0; 31.0 |] in
  let est = Rtt.estimates ~forward_ms:forward ~reverse_ms:reverse in
  Alcotest.(check int) "rtt picks the congested path" 0 (Rtt.best est);
  Alcotest.(check int) "owd picks the truly faster one" 1 (Rtt.best_one_way forward);
  Alcotest.(check (float 1e-9)) "regret" 9.0
    (Rtt.regret_ms ~forward_ms:forward ~chosen:(Rtt.best est))

let test_rtt_agrees_when_symmetric () =
  let forward = [| 36.4; 28.0 |] and reverse = [| 36.4; 28.0 |] in
  let est = Rtt.estimates ~forward_ms:forward ~reverse_ms:reverse in
  Alcotest.(check int) "same choice" (Rtt.best_one_way forward) (Rtt.best est);
  Alcotest.(check (float 1e-9)) "no regret" 0.0
    (Rtt.regret_ms ~forward_ms:forward ~chosen:(Rtt.best est))

let test_rtt_nan_skipped () =
  let est = Rtt.estimates ~forward_ms:[| nan; 30.0 |] ~reverse_ms:[| nan; 30.0 |] in
  Alcotest.(check int) "nan skipped" 1 (Rtt.best est)

let test_rtt_no_usable () =
  Alcotest.(check bool) "raises" true
    (try ignore (Rtt.best_one_way [| nan; nan |]); false
     with Invalid_argument _ -> true)

let rtt_qcheck_regret_nonnegative =
  QCheck.Test.make ~name:"rtt regret is never negative" ~count:300
    QCheck.(
      pair
        (array_of_size (Gen.int_range 1 6) (float_range 1.0 100.0))
        (array_of_size (Gen.int_range 1 6) (float_range 1.0 100.0)))
    (fun (forward, reverse) ->
      QCheck.assume (Array.length forward = Array.length reverse);
      let est = Rtt.estimates ~forward_ms:forward ~reverse_ms:reverse in
      Rtt.regret_ms ~forward_ms:forward ~chosen:(Rtt.best est) >= 0.0)

(* ------------------------------------------------------------------ *)
(* Ecmp_probe                                                          *)

let vultr_with_lanes () =
  let topo = Vultr.build () in
  let engine = Tango_sim.Engine.create () in
  let configure (node : Tango_topo.Topology.node) =
    if node.Tango_topo.Topology.id = Vultr.vultr_la
       || node.Tango_topo.Topology.id = Vultr.vultr_ny
    then
      { Network.no_overrides with neighbor_weight = Some Vultr.vultr_neighbor_weight }
    else Network.no_overrides
  in
  let net = Network.create ~configure topo engine in
  let plan =
    Tango.Addressing.carve ~block:Tango.Addressing.default_block ~site_index:1
      ~path_count:0
  in
  Network.announce net ~node:Vultr.server_ny plan.Tango.Addressing.host_prefix ();
  ignore (Network.converge net);
  let fabric =
    Tango_dataplane.Fabric.create ~seed:5
      ~lanes_of:(fun node ->
        if node = Vultr.ntt then
          Tango_dataplane.Ecmp.uniform_lanes ~count:4 ~spread_ms:2.0
        else [| 0.0 |])
      net
  in
  let src =
    Tango.Addressing.host_address
      (Tango.Addressing.carve ~block:Tango.Addressing.default_block ~site_index:0
         ~path_count:0)
      1L
  in
  (fabric, src, Tango.Addressing.host_address plan 1L)

let test_ecmp_probe_pinned_is_tight () =
  let fabric, src, dst = vultr_with_lanes () in
  let r =
    Ecmp_probe.measure ~fabric ~from_node:Vultr.server_la ~src ~dst ~mode:`Pinned
      ~probes:300 ~interval_s:0.005 ()
  in
  Alcotest.(check int) "all delivered" 300 r.Ecmp_probe.delivered;
  Alcotest.(check bool) "tiny stddev" true
    ((Series.stats r.Ecmp_probe.series).Tango_sim.Stats.stddev < 0.1)

let test_ecmp_probe_naive_is_noisy () =
  let fabric, src, dst = vultr_with_lanes () in
  let naive =
    Ecmp_probe.measure ~fabric ~from_node:Vultr.server_la ~src ~dst
      ~mode:(`Per_flow_ports 64) ~probes:600 ~interval_s:0.005 ()
  in
  let pinned =
    Ecmp_probe.measure ~fabric ~from_node:Vultr.server_la ~src ~dst ~mode:`Pinned
      ~probes:600 ~interval_s:0.005 ()
  in
  Alcotest.(check bool) "naive visibly noisier" true
    ((Series.stats naive.Ecmp_probe.series).Tango_sim.Stats.stddev > 1.0);
  Alcotest.(check bool) "ratio large" true
    (Ecmp_probe.conflation_ratio ~naive ~pinned > 5.0)

let test_ecmp_probe_no_lanes_equal () =
  (* Without internal lanes, naive and pinned measurements agree. *)
  let topo = Vultr.build () in
  let engine = Tango_sim.Engine.create () in
  let net = Network.create topo engine in
  let plan =
    Tango.Addressing.carve ~block:Tango.Addressing.default_block ~site_index:1
      ~path_count:0
  in
  Network.announce net ~node:Vultr.server_ny plan.Tango.Addressing.host_prefix ();
  ignore (Network.converge net);
  let fabric = Tango_dataplane.Fabric.create ~seed:6 net in
  let src =
    Tango.Addressing.host_address
      (Tango.Addressing.carve ~block:Tango.Addressing.default_block ~site_index:0
         ~path_count:0)
      1L
  in
  let dst = Tango.Addressing.host_address plan 1L in
  let naive =
    Ecmp_probe.measure ~fabric ~from_node:Vultr.server_la ~src ~dst
      ~mode:(`Per_flow_ports 32) ~probes:300 ~interval_s:0.005 ()
  in
  Alcotest.(check bool) "no fabricated variance" true
    ((Series.stats naive.Ecmp_probe.series).Tango_sim.Stats.stddev < 0.1)

(* ------------------------------------------------------------------ *)
(* Overlay planning                                                    *)

let test_overlay_direct_when_best () =
  let owd ~src ~dst = float_of_int (10 * (1 + src + dst)) in
  let plans = Tango.Overlay.plan_routes ~owd_ms:owd ~sites:3 () in
  List.iter
    (fun (p : Tango.Overlay.plan) ->
      Alcotest.(check bool) "relaying never beats the triangle inequality here" true
        (p.Tango.Overlay.route = Tango.Overlay.Direct))
    plans

let test_overlay_relay_when_direct_poor () =
  let owd ~src ~dst =
    match (src, dst) with
    | 0, 2 | 2, 0 -> 100.0
    | _ -> 10.0
  in
  let plans = Tango.Overlay.plan_routes ~owd_ms:owd ~sites:3 ~relay_overhead_ms:0.5 () in
  let p02 = List.find (fun (p : Tango.Overlay.plan) -> p.Tango.Overlay.src = 0 && p.Tango.Overlay.dst = 2) plans in
  Alcotest.(check bool) "relays via 1" true
    (p02.Tango.Overlay.route = Tango.Overlay.Relay [ 1 ]);
  Alcotest.(check (float 1e-9)) "owd" 20.5 p02.Tango.Overlay.owd_ms;
  Alcotest.(check (float 1e-9)) "gain" 79.5 (Tango.Overlay.gain_ms p02)

let test_overlay_two_hop () =
  (* 0-1 and 1-2 and 2-3 are cheap; everything else expensive: reaching
     3 from 0 needs two relays. *)
  let owd ~src ~dst =
    match (src, dst) with
    | 0, 1 | 1, 0 | 1, 2 | 2, 1 | 2, 3 | 3, 2 -> 10.0
    | _ -> 500.0
  in
  let plans = Tango.Overlay.plan_routes ~owd_ms:owd ~sites:4 ~max_relays:2 () in
  let p03 = List.find (fun (p : Tango.Overlay.plan) -> p.Tango.Overlay.src = 0 && p.Tango.Overlay.dst = 3) plans in
  Alcotest.(check bool) "two relays" true
    (p03.Tango.Overlay.route = Tango.Overlay.Relay [ 1; 2 ])

let test_overlay_relay_overhead_counts () =
  (* A relay that would tie with direct must lose due to overhead. *)
  let owd ~src ~dst = match (src, dst) with 0, 2 | 2, 0 -> 20.0 | _ -> 10.0 in
  let plans = Tango.Overlay.plan_routes ~owd_ms:owd ~sites:3 ~relay_overhead_ms:1.0 () in
  let p02 = List.find (fun (p : Tango.Overlay.plan) -> p.Tango.Overlay.src = 0 && p.Tango.Overlay.dst = 2) plans in
  Alcotest.(check bool) "stays direct" true (p02.Tango.Overlay.route = Tango.Overlay.Direct)

let test_overlay_invalid_args () =
  Alcotest.(check bool) "one site" true
    (try ignore (Tango.Overlay.plan_routes ~owd_ms:(fun ~src:_ ~dst:_ -> 1.0) ~sites:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "max_relays 3" true
    (try
       ignore (Tango.Overlay.plan_routes ~owd_ms:(fun ~src:_ ~dst:_ -> 1.0) ~max_relays:3 ~sites:3 ());
       false
     with Invalid_argument _ -> true)

let overlay_qcheck_never_worse_than_direct =
  QCheck.Test.make ~name:"overlay plan never exceeds the direct delay" ~count:200
    QCheck.(array_of_size (Gen.return 16) (float_range 1.0 100.0))
    (fun weights ->
      let owd ~src ~dst = weights.((src * 4) + dst) in
      let plans = Tango.Overlay.plan_routes ~owd_ms:owd ~sites:4 () in
      List.for_all
        (fun (p : Tango.Overlay.plan) ->
          p.Tango.Overlay.owd_ms <= p.Tango.Overlay.direct_ms +. 1e-9)
        plans)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tango_baselines"
    [
      ( "rtt_control",
        [
          tc "estimates" `Quick test_rtt_estimates;
          tc "mismatch rejected" `Quick test_rtt_mismatch_rejected;
          tc "blind to asymmetry" `Quick test_rtt_blind_to_asymmetry;
          tc "agrees when symmetric" `Quick test_rtt_agrees_when_symmetric;
          tc "nan skipped" `Quick test_rtt_nan_skipped;
          tc "no usable estimate" `Quick test_rtt_no_usable;
          qc rtt_qcheck_regret_nonnegative;
        ] );
      ( "ecmp_probe",
        [
          tc "pinned is tight" `Quick test_ecmp_probe_pinned_is_tight;
          tc "naive is noisy" `Quick test_ecmp_probe_naive_is_noisy;
          tc "no lanes: equal" `Quick test_ecmp_probe_no_lanes_equal;
        ] );
      ( "overlay",
        [
          tc "direct when best" `Quick test_overlay_direct_when_best;
          tc "relay when direct poor" `Quick test_overlay_relay_when_direct_poor;
          tc "two hops" `Quick test_overlay_two_hop;
          tc "overhead counts" `Quick test_overlay_relay_overhead_counts;
          tc "invalid args" `Quick test_overlay_invalid_args;
          qc overlay_qcheck_never_worse_than_direct;
        ] );
    ]
