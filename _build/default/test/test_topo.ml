(* Tests for the AS-topology substrate. *)

open Tango_topo

(* ------------------------------------------------------------------ *)
(* Relationship                                                        *)

let test_rel_inverse () =
  Alcotest.(check bool) "customer<->provider" true
    (Relationship.equal (Relationship.inverse Relationship.Customer) Relationship.Provider);
  Alcotest.(check bool) "peer self-inverse" true
    (Relationship.equal (Relationship.inverse Relationship.Peer) Relationship.Peer)

let test_rel_export_rules () =
  let check lf et expect =
    Alcotest.(check bool)
      (Printf.sprintf "%s->%s" (Relationship.to_string lf) (Relationship.to_string et))
      expect
      (Relationship.export_allowed ~learned_from:lf ~exporting_to:et)
  in
  let open Relationship in
  (* Customer routes go everywhere. *)
  check Customer Customer true;
  check Customer Peer true;
  check Customer Provider true;
  (* Peer/provider routes go to customers only. *)
  check Peer Customer true;
  check Peer Peer false;
  check Peer Provider false;
  check Provider Customer true;
  check Provider Peer false;
  check Provider Provider false

let test_rel_local_pref () =
  Alcotest.(check bool) "customer > peer > provider" true
    (Relationship.base_local_pref Relationship.Customer
     > Relationship.base_local_pref Relationship.Peer
    && Relationship.base_local_pref Relationship.Peer
       > Relationship.base_local_pref Relationship.Provider)

(* ------------------------------------------------------------------ *)
(* Link                                                                *)

let test_link_validation () =
  Alcotest.(check bool) "negative delay" true
    (try ignore (Link.v (-1.0)); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "loss 1.0" true
    (try ignore (Link.v ~loss:1.0 1.0); false with Invalid_argument _ -> true)

let test_link_transmission () =
  let l = Link.v ~bandwidth_mbps:1000.0 1.0 in
  (* 125000 bytes = 1 Mbit over 1 Gb/s = 1 ms. *)
  Alcotest.(check (float 1e-9)) "serialization" 1.0
    (Link.transmission_delay_ms l ~bytes:125_000)

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let triangle () =
  let t = Topology.create () in
  Topology.add_node t ~id:1 ~asn:100 "p";
  Topology.add_node t ~id:2 ~asn:200 "c1";
  Topology.add_node t ~id:3 ~asn:300 "c2";
  Topology.connect t ~provider:1 ~customer:2 ();
  Topology.connect t ~provider:1 ~customer:3 ();
  Topology.connect_peers t 2 3 ();
  t

let test_topology_relationships () =
  let t = triangle () in
  Alcotest.(check bool) "2 is 1's customer" true
    (Topology.relationship t 1 2 = Some Relationship.Customer);
  Alcotest.(check bool) "1 is 2's provider" true
    (Topology.relationship t 2 1 = Some Relationship.Provider);
  Alcotest.(check bool) "2-3 peers" true
    (Topology.relationship t 2 3 = Some Relationship.Peer);
  Alcotest.(check bool) "non-adjacent" true (Topology.relationship t 2 2 = None)

let test_topology_queries () =
  let t = triangle () in
  Alcotest.(check (list int)) "customers of 1" [ 2; 3 ] (Topology.customers t 1);
  Alcotest.(check (list int)) "providers of 2" [ 1 ] (Topology.providers t 2);
  Alcotest.(check (list int)) "peers of 3" [ 2 ] (Topology.peers_of t 3);
  Alcotest.(check int) "edge count" 3 (Topology.edge_count t);
  Alcotest.(check int) "degree" 2 (Topology.degree t 2);
  Alcotest.(check string) "name" "p" (Topology.name t 1);
  Alcotest.(check int) "asn" 300 (Topology.asn t 3)

let test_topology_duplicates_rejected () =
  let t = triangle () in
  Alcotest.(check bool) "dup node" true
    (try Topology.add_node t ~id:1 ~asn:1 "x"; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dup edge" true
    (try Topology.connect t ~provider:1 ~customer:2 (); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "self loop" true
    (try Topology.connect_peers t 1 1 (); false
     with Invalid_argument _ -> true)

let test_valley_free () =
  let t = Topology.create () in
  (* 1 and 2 are tier-1 peers; 3 customer of 1; 4 customer of 2;
     5 customer of both 3 and 4. *)
  List.iteri
    (fun i name -> Topology.add_node t ~id:(i + 1) ~asn:(i + 1) name)
    [ "t1a"; "t1b"; "mid-a"; "mid-b"; "stub" ];
  Topology.connect_peers t 1 2 ();
  Topology.connect t ~provider:1 ~customer:3 ();
  Topology.connect t ~provider:2 ~customer:4 ();
  Topology.connect t ~provider:3 ~customer:5 ();
  Topology.connect t ~provider:4 ~customer:5 ();
  let vf = Topology.is_valley_free t in
  Alcotest.(check bool) "up-peer-down" true (vf [ 5; 3; 1; 2; 4; 5 ]);
  Alcotest.(check bool) "up-down" true (vf [ 5; 3; 1 ]);
  Alcotest.(check bool) "down then up is a valley" false (vf [ 1; 3; 5; 4 ]);
  Alcotest.(check bool) "peer then up invalid" false (vf [ 1; 2; 4; 5; 3 ]);
  Alcotest.(check bool) "single node" true (vf [ 5 ]);
  Alcotest.(check bool) "non-adjacent path" false (vf [ 5; 1 ])

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

let test_chain () =
  let t = Builders.chain 4 in
  Alcotest.(check int) "edges" 3 (Topology.edge_count t);
  Alcotest.(check bool) "0 provides 1" true
    (Topology.relationship t 0 1 = Some Relationship.Customer)

let test_star () =
  let t = Builders.star ~center:100 ~leaves:5 in
  Alcotest.(check int) "degree" 5 (Topology.degree t 100);
  Alcotest.(check (list int)) "customers" [ 101; 102; 103; 104; 105 ]
    (Topology.customers t 100)

let test_tier1_mesh () =
  let t = Builders.tier1_mesh [ 10; 20; 30 ] in
  Alcotest.(check int) "edges" 3 (Topology.edge_count t);
  Alcotest.(check bool) "peers" true
    (Topology.relationship t 10 30 = Some Relationship.Peer)

let test_random_hierarchy_wellformed () =
  let t = Builders.random_hierarchy ~seed:5 ~tier1:3 ~tier2:6 ~stubs:10 in
  Alcotest.(check int) "node count" 19 (List.length (Topology.nodes t));
  (* Every stub has at least one provider; tier-1s have none. *)
  List.iter
    (fun (n : Topology.node) ->
      let providers = Topology.providers t n.Topology.id in
      if n.Topology.name.[0] = 's' then
        Alcotest.(check bool) "stub has provider" true (providers <> [])
      else if String.length n.Topology.name > 4 && String.sub n.Topology.name 0 5 = "tier1"
      then Alcotest.(check (list int)) "tier1 has no provider" [] providers)
    (Topology.nodes t)

let test_random_hierarchy_deterministic () =
  let a = Builders.random_hierarchy ~seed:9 ~tier1:2 ~tier2:4 ~stubs:6 in
  let b = Builders.random_hierarchy ~seed:9 ~tier1:2 ~tier2:4 ~stubs:6 in
  Alcotest.(check int) "same edge count" (Topology.edge_count a) (Topology.edge_count b)

(* ------------------------------------------------------------------ *)
(* Serial format                                                       *)

let test_serial_parse () =
  let doc = "# tier-1 clique\n1|2|0\n1|10|-1\n2|20|-1\n10|100|-1\n" in
  match Serial.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      Alcotest.(check int) "nodes" 5 (List.length (Topology.nodes t));
      Alcotest.(check bool) "peers" true
        (Topology.relationship t 1 2 = Some Relationship.Peer);
      Alcotest.(check bool) "provider" true
        (Topology.relationship t 1 10 = Some Relationship.Customer);
      Alcotest.(check string) "name" "AS100" (Topology.name t 100)

let test_serial_roundtrip () =
  let t = Builders.random_hierarchy ~seed:3 ~tier1:3 ~tier2:5 ~stubs:8 in
  match Serial.parse (Serial.to_string t) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok t' ->
      Alcotest.(check int) "same node count"
        (List.length (Topology.nodes t))
        (List.length (Topology.nodes t'));
      Alcotest.(check int) "same edge count" (Topology.edge_count t)
        (Topology.edge_count t');
      List.iter
        (fun (n : Topology.node) ->
          List.iter
            (fun (peer, rel, _) ->
              Alcotest.(check bool) "same relationship" true
                (Topology.relationship t' n.Topology.id peer = Some rel))
            (Topology.neighbors t n.Topology.id))
        (Topology.nodes t)

let test_serial_errors () =
  let expect doc =
    match Serial.parse doc with
    | Ok _ -> Alcotest.failf "accepted %S" doc
    | Error e ->
        Alcotest.(check bool) "line number present" true
          (String.length e > 5 && String.sub e 0 5 = "line ")
  in
  expect "1|2";
  expect "1|2|5";
  expect "a|2|0";
  expect "1|1|0";
  expect "1|2|0\n1|2|-1"

let test_serial_propagation_smoke () =
  (* A serial-loaded topology drives the BGP machinery unchanged. *)
  let doc = "1|2|0\n1|10|-1\n2|20|-1\n10|100|-1\n20|100|-1\n" in
  match Serial.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok topo ->
      let engine = Tango_sim.Engine.create () in
      let net = Tango_bgp.Network.create topo engine in
      Tango_bgp.Network.announce net ~node:100
        (Tango_net.Prefix.of_string_exn "10.0.0.0/8")
        ();
      ignore (Tango_bgp.Network.converge net);
      Alcotest.(check bool) "multi-homed stub visible at both tier-1s" true
        (Tango_bgp.Network.best_route net ~node:1 (Tango_net.Prefix.of_string_exn "10.0.0.0/8")
         <> None
        && Tango_bgp.Network.best_route net ~node:2
             (Tango_net.Prefix.of_string_exn "10.0.0.0/8")
           <> None)

(* ------------------------------------------------------------------ *)
(* Vultr scenario                                                      *)

let test_vultr_shape () =
  let t = Vultr.build () in
  Alcotest.(check int) "nine nodes" 9 (List.length (Topology.nodes t));
  (* Vultr NY buys from NTT/Telia/GTT/Cogent; LA from NTT/Telia/GTT/Level3. *)
  let sort = List.sort Int.compare in
  Alcotest.(check (list int)) "NY upstreams"
    (sort [ Vultr.ntt; Vultr.telia; Vultr.gtt; Vultr.cogent ])
    (sort (Topology.providers t Vultr.vultr_ny));
  Alcotest.(check (list int)) "LA upstreams"
    (sort [ Vultr.ntt; Vultr.telia; Vultr.gtt; Vultr.level3 ])
    (sort (Topology.providers t Vultr.vultr_la));
  (* The two Vultr sites share an ASN but are not directly connected. *)
  Alcotest.(check int) "same ASN" (Topology.asn t Vultr.vultr_la)
    (Topology.asn t Vultr.vultr_ny);
  Alcotest.(check bool) "no private WAN" true
    (Topology.relationship t Vultr.vultr_la Vultr.vultr_ny = None);
  (* Transit full mesh: 5 choose 2 = 10 peering edges. *)
  let transits = [ Vultr.ntt; Vultr.telia; Vultr.gtt; Vultr.cogent; Vultr.level3 ] in
  let peer_edges =
    List.concat_map
      (fun a ->
        List.filter
          (fun b -> a < b && Topology.relationship t a b = Some Relationship.Peer)
          transits)
      transits
  in
  Alcotest.(check int) "transit mesh" 10 (List.length peer_edges)

let test_vultr_servers_private () =
  let t = Vultr.build () in
  Alcotest.(check bool) "LA server private" true
    (Topology.node t Vultr.server_la).Topology.private_asn;
  Alcotest.(check bool) "vultr not private" false
    (Topology.node t Vultr.vultr_la).Topology.private_asn

let test_vultr_calibration () =
  let t = Vultr.build () in
  (* Sum the server-to-server link delays through each direct transit and
     compare with the paper-calibrated OWD targets. *)
  let owd via =
    let d a b =
      match Topology.link t a b with
      | Some l -> l.Link.delay_ms
      | None -> Alcotest.failf "missing link %d-%d" a b
    in
    d Vultr.server_la Vultr.vultr_la
    +. d Vultr.vultr_la via +. d via Vultr.vultr_ny
    +. d Vultr.vultr_ny Vultr.server_ny
  in
  List.iter
    (fun via ->
      match Vultr.expected_owd_ms ~via with
      | Some target -> Alcotest.(check (float 1e-6)) (Vultr.transit_name via) target (owd via)
      | None -> ())
    [ Vultr.ntt; Vultr.telia; Vultr.gtt ];
  (* The headline ratio: default (NTT) is 30% above the best (GTT). *)
  Alcotest.(check (float 1e-3)) "30%% gap" 1.3 (owd Vultr.ntt /. owd Vultr.gtt)

let test_vultr_weights () =
  Alcotest.(check bool) "NTT > Telia > GTT > Cogent" true
    (Vultr.vultr_neighbor_weight Vultr.ntt > Vultr.vultr_neighbor_weight Vultr.telia
    && Vultr.vultr_neighbor_weight Vultr.telia > Vultr.vultr_neighbor_weight Vultr.gtt
    && Vultr.vultr_neighbor_weight Vultr.gtt > Vultr.vultr_neighbor_weight Vultr.cogent)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "tango_topo"
    [
      ( "relationship",
        [
          tc "inverse" `Quick test_rel_inverse;
          tc "export rules" `Quick test_rel_export_rules;
          tc "local pref order" `Quick test_rel_local_pref;
        ] );
      ( "link",
        [
          tc "validation" `Quick test_link_validation;
          tc "transmission delay" `Quick test_link_transmission;
        ] );
      ( "topology",
        [
          tc "relationships" `Quick test_topology_relationships;
          tc "queries" `Quick test_topology_queries;
          tc "duplicates rejected" `Quick test_topology_duplicates_rejected;
          tc "valley-free" `Quick test_valley_free;
        ] );
      ( "builders",
        [
          tc "chain" `Quick test_chain;
          tc "star" `Quick test_star;
          tc "tier1 mesh" `Quick test_tier1_mesh;
          tc "random well-formed" `Quick test_random_hierarchy_wellformed;
          tc "random deterministic" `Quick test_random_hierarchy_deterministic;
        ] );
      ( "serial",
        [
          tc "parse" `Quick test_serial_parse;
          tc "roundtrip" `Quick test_serial_roundtrip;
          tc "errors" `Quick test_serial_errors;
          tc "propagation smoke" `Quick test_serial_propagation_smoke;
        ] );
      ( "vultr",
        [
          tc "shape" `Quick test_vultr_shape;
          tc "private servers" `Quick test_vultr_servers_private;
          tc "delay calibration" `Quick test_vultr_calibration;
          tc "preference weights" `Quick test_vultr_weights;
        ] );
    ]
