(* Tests for the BGP substrate: communities, AS paths, decision process,
   speakers, and event-driven propagation — including the calibrated Vultr
   scenario that underpins the paper's Fig. 3. *)

open Tango_bgp
module Prefix = Tango_net.Prefix
module Topology = Tango_topo.Topology
module Relationship = Tango_topo.Relationship
module Engine = Tango_sim.Engine

let prefix s = Prefix.of_string_exn s

(* ------------------------------------------------------------------ *)
(* Community                                                           *)

let test_community_validation () =
  Alcotest.(check bool) "out of range" true
    (try ignore (Community.v 70000 1); false with Invalid_argument _ -> true)

let test_community_string_roundtrip () =
  let c = Community.v 20473 6001 in
  Alcotest.(check string) "print" "20473:6001" (Community.to_string c);
  (match Community.of_string "20473:6001" with
  | Ok c' -> Alcotest.(check bool) "parse" true (Community.equal c c')
  | Error e -> Alcotest.fail e);
  (match Community.of_string "junk" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error _ -> ())

let test_community_action_roundtrip () =
  let actions =
    [
      Community.No_export_to 2914;
      Community.Export_only_to 174;
      Community.Prepend_to (1299, 2);
      Community.No_export_transit;
    ]
  in
  List.iter
    (fun a ->
      match Community.action_of_community (Community.action_to_community a) with
      | Some a' -> Alcotest.(check bool) "roundtrip" true (a = a')
      | None -> Alcotest.fail "action did not decode")
    actions

let test_community_ordinary_not_action () =
  Alcotest.(check bool) "plain community has no action" true
    (Community.action_of_community (Community.v 20473 4000) = None)

let test_community_actions_of_set () =
  let set =
    Community.Set.of_list
      [
        Community.v 20473 4000;
        Community.action_to_community (Community.No_export_to 2914);
        Community.action_to_community (Community.No_export_to 1299);
      ]
  in
  Alcotest.(check int) "two actions" 2 (List.length (Community.actions_of_set set))

(* ------------------------------------------------------------------ *)
(* As_path                                                             *)

let test_as_path_basics () =
  let p = As_path.of_list [ 20473; 2914; 20473 ] in
  Alcotest.(check int) "length" 3 (As_path.length p);
  Alcotest.(check (option int)) "origin" (Some 20473) (As_path.origin_as p);
  Alcotest.(check (option int)) "first hop" (Some 20473) (As_path.first_hop p);
  Alcotest.(check bool) "contains" true (As_path.contains p 2914)

let test_as_path_prepend () =
  let p = As_path.prepend_n (As_path.of_list [ 1 ]) 7 3 in
  Alcotest.(check (list int)) "triple prepend" [ 7; 7; 7; 1 ] (As_path.to_list p);
  Alcotest.(check int) "length counts repeats" 4 (As_path.length p)

let test_as_path_neighbor_of_origin () =
  let check l expect =
    Alcotest.(check (option int)) (As_path.to_string (As_path.of_list l)) expect
      (As_path.neighbor_of_origin (As_path.of_list l))
  in
  check [ 2914; 20473 ] (Some 2914);
  (* Same ASN at both ends (Vultr LA observing Vultr NY's origination). *)
  check [ 20473; 2914; 174; 20473 ] (Some 174);
  (* Prepadding at the origin must be skipped. *)
  check [ 2914; 20473; 20473; 20473 ] (Some 2914);
  check [ 20473 ] None;
  check [] None

let test_as_path_poison () =
  let p = As_path.poison (As_path.of_list [ 2914; 20473 ]) 666 in
  Alcotest.(check (list int)) "poison before origin" [ 2914; 666; 20473 ]
    (As_path.to_list p)

let test_as_path_strip_private () =
  let p = As_path.of_list [ 64512; 2914; 65000; 20473 ] in
  Alcotest.(check (list int)) "private removed" [ 2914; 20473 ]
    (As_path.to_list (As_path.strip_private p))

(* ------------------------------------------------------------------ *)
(* Decision                                                            *)

let mk_route ?(lp = 100) ?(w = 0) ?(med = 0) ?(next_hop = 1) ?learned_from path =
  Route.make ~prefix:(prefix "2001:db8::/32") ~path:(As_path.of_list path)
    ~next_hop ?learned_from ~local_pref:lp ~neighbor_weight:w ~med ()

let test_decision_local_pref_first () =
  let a = mk_route ~lp:200 ~learned_from:1 [ 1; 2; 3; 4 ] in
  let b = mk_route ~lp:100 ~learned_from:2 [ 9 ] in
  Alcotest.(check bool) "higher lp wins despite longer path" true
    (Decision.compare a b < 0)

let test_decision_path_length_before_weight () =
  (* The documented deviation: weight is a late tie-break, after length. *)
  let short_low_weight = mk_route ~w:0 ~learned_from:1 [ 1; 2 ] in
  let long_high_weight = mk_route ~w:500 ~learned_from:2 [ 3; 4; 5 ] in
  Alcotest.(check bool) "shorter path wins" true
    (Decision.compare short_low_weight long_high_weight < 0)

let test_decision_weight_breaks_length_ties () =
  let a = mk_route ~w:120 ~next_hop:9 ~learned_from:9 [ 1; 2 ] in
  let b = mk_route ~w:110 ~next_hop:1 ~learned_from:1 [ 3; 4 ] in
  Alcotest.(check bool) "weight decides" true (Decision.compare a b < 0)

let test_decision_med_and_node_tiebreak () =
  let a = mk_route ~med:10 ~next_hop:5 ~learned_from:5 [ 1; 2 ] in
  let b = mk_route ~med:20 ~next_hop:3 ~learned_from:3 [ 3; 4 ] in
  Alcotest.(check bool) "lower med" true (Decision.compare a b < 0);
  let c = mk_route ~next_hop:3 ~learned_from:3 [ 1; 2 ] in
  let d = mk_route ~next_hop:5 ~learned_from:5 [ 3; 4 ] in
  Alcotest.(check bool) "lower node id" true (Decision.compare c d < 0)

let test_decision_local_beats_learned () =
  let local = mk_route ~lp:100 [ ] in
  let learned = mk_route ~lp:5000 ~learned_from:2 [ 1 ] in
  Alcotest.(check bool) "local first" true (Decision.compare local learned < 0)

let test_decision_best_and_rank () =
  let a = mk_route ~lp:300 ~learned_from:1 ~next_hop:1 [ 1 ] in
  let b = mk_route ~lp:200 ~learned_from:2 ~next_hop:2 [ 2 ] in
  let c = mk_route ~lp:100 ~learned_from:3 ~next_hop:3 [ 3 ] in
  Alcotest.(check bool) "best" true (Decision.best [ c; a; b ] = Some a);
  Alcotest.(check bool) "rank" true (Decision.rank [ c; a; b ] = [ a; b; c ]);
  Alcotest.(check bool) "empty" true (Decision.best [] = None)

(* ------------------------------------------------------------------ *)
(* Speaker                                                             *)

let test_speaker_originate_exports_to_all () =
  let s = Speaker.create ~node_id:1 ~asn:100 () in
  Speaker.add_neighbor s ~node_id:2 ~asn:200 ~rel:Relationship.Customer ();
  Speaker.add_neighbor s ~node_id:3 ~asn:300 ~rel:Relationship.Provider ();
  let emissions = Speaker.originate s (prefix "10.0.0.0/8") () in
  Alcotest.(check int) "two updates" 2 (List.length emissions);
  List.iter
    (fun { Update.update; _ } ->
      match update with
      | Update.Announce r ->
          Alcotest.(check (list int)) "own asn prepended" [ 100 ]
            (As_path.to_list r.Route.path)
      | Update.Withdraw _ -> Alcotest.fail "unexpected withdraw")
    emissions

let test_speaker_loop_rejection () =
  let s = Speaker.create ~node_id:1 ~asn:100 () in
  Speaker.add_neighbor s ~node_id:2 ~asn:200 ~rel:Relationship.Provider ();
  let wire =
    Route.make ~prefix:(prefix "10.0.0.0/8")
      ~path:(As_path.of_list [ 200; 100; 300 ])
      ~next_hop:2 ()
  in
  ignore (Speaker.receive s ~from_node:2 (Update.Announce wire));
  Alcotest.(check bool) "rejected" true (Speaker.best s (prefix "10.0.0.0/8") = None)

let test_speaker_allowas_in () =
  let s = Speaker.create ~node_id:1 ~asn:100 ~allowas_in:true () in
  Speaker.add_neighbor s ~node_id:2 ~asn:200 ~rel:Relationship.Provider ();
  let wire =
    Route.make ~prefix:(prefix "10.0.0.0/8")
      ~path:(As_path.of_list [ 200; 100; 300 ])
      ~next_hop:2 ()
  in
  ignore (Speaker.receive s ~from_node:2 (Update.Announce wire));
  Alcotest.(check bool) "accepted" true (Speaker.best s (prefix "10.0.0.0/8") <> None)

let test_speaker_gao_rexford_no_peer_transit () =
  (* A route learned from a provider must not be exported to a peer. *)
  let s = Speaker.create ~node_id:1 ~asn:100 () in
  Speaker.add_neighbor s ~node_id:2 ~asn:200 ~rel:Relationship.Provider ();
  Speaker.add_neighbor s ~node_id:3 ~asn:300 ~rel:Relationship.Peer ();
  Speaker.add_neighbor s ~node_id:4 ~asn:400 ~rel:Relationship.Customer ();
  let wire =
    Route.make ~prefix:(prefix "10.0.0.0/8") ~path:(As_path.of_list [ 200 ])
      ~next_hop:2 ()
  in
  let emissions = Speaker.receive s ~from_node:2 (Update.Announce wire) in
  let targets = List.map (fun e -> e.Update.to_node) emissions in
  Alcotest.(check (list int)) "customer only" [ 4 ] targets

let test_speaker_split_horizon () =
  let s = Speaker.create ~node_id:1 ~asn:100 () in
  Speaker.add_neighbor s ~node_id:2 ~asn:200 ~rel:Relationship.Customer ();
  let wire =
    Route.make ~prefix:(prefix "10.0.0.0/8") ~path:(As_path.of_list [ 200 ])
      ~next_hop:2 ()
  in
  let emissions = Speaker.receive s ~from_node:2 (Update.Announce wire) in
  Alcotest.(check bool) "never back to sender" true
    (List.for_all (fun e -> e.Update.to_node <> 2) emissions)

let test_speaker_withdraw_cascade () =
  let s = Speaker.create ~node_id:1 ~asn:100 () in
  Speaker.add_neighbor s ~node_id:2 ~asn:200 ~rel:Relationship.Customer ();
  Speaker.add_neighbor s ~node_id:3 ~asn:300 ~rel:Relationship.Customer ();
  let wire =
    Route.make ~prefix:(prefix "10.0.0.0/8") ~path:(As_path.of_list [ 200 ])
      ~next_hop:2 ()
  in
  ignore (Speaker.receive s ~from_node:2 (Update.Announce wire));
  let emissions = Speaker.receive s ~from_node:2 (Update.Withdraw (prefix "10.0.0.0/8")) in
  Alcotest.(check bool) "withdraw forwarded" true
    (List.exists
       (fun e -> e.Update.to_node = 3 && e.Update.update = Update.Withdraw (prefix "10.0.0.0/8"))
       emissions);
  Alcotest.(check bool) "loc rib empty" true (Speaker.best s (prefix "10.0.0.0/8") = None)

let test_speaker_remove_private () =
  let s =
    Speaker.create ~node_id:1 ~asn:20473 ~remove_private_on_export:true ()
  in
  Speaker.add_neighbor s ~node_id:2 ~asn:64512 ~rel:Relationship.Customer ();
  Speaker.add_neighbor s ~node_id:3 ~asn:2914 ~rel:Relationship.Provider ();
  let wire =
    Route.make ~prefix:(prefix "2001:db8::/48")
      ~path:(As_path.of_list [ 64512 ]) ~next_hop:2 ()
  in
  let emissions = Speaker.receive s ~from_node:2 (Update.Announce wire) in
  List.iter
    (fun e ->
      match e.Update.update with
      | Update.Announce r when e.Update.to_node = 3 ->
          Alcotest.(check (list int)) "private asn stripped" [ 20473 ]
            (As_path.to_list r.Route.path)
      | _ -> ())
    emissions

let receive_from_customer_with_communities s communities =
  let wire =
    Route.make ~prefix:(prefix "2001:db8::/48")
      ~path:(As_path.of_list [ 64512 ]) ~next_hop:2
      ~communities ()
  in
  Speaker.receive s ~from_node:2 (Update.Announce wire)

let vultr_like_speaker ~interprets () =
  let s =
    Speaker.create ~node_id:1 ~asn:20473 ~interprets_actions:interprets
      ~remove_private_on_export:true ()
  in
  Speaker.add_neighbor s ~node_id:2 ~asn:64512 ~rel:Relationship.Customer ();
  Speaker.add_neighbor s ~node_id:2914 ~asn:2914 ~rel:Relationship.Provider ();
  Speaker.add_neighbor s ~node_id:1299 ~asn:1299 ~rel:Relationship.Provider ();
  s

let test_speaker_no_export_to_action () =
  let s = vultr_like_speaker ~interprets:true () in
  let communities =
    Community.Set.singleton (Community.action_to_community (Community.No_export_to 2914))
  in
  let emissions = receive_from_customer_with_communities s communities in
  let targets =
    List.filter_map
      (fun e ->
        match e.Update.update with
        | Update.Announce _ -> Some e.Update.to_node
        | Update.Withdraw _ -> None)
      emissions
  in
  Alcotest.(check bool) "2914 suppressed" false (List.mem 2914 targets);
  Alcotest.(check bool) "1299 announced" true (List.mem 1299 targets)

let test_speaker_action_ignored_when_not_interpreting () =
  let s = vultr_like_speaker ~interprets:false () in
  let communities =
    Community.Set.singleton (Community.action_to_community (Community.No_export_to 2914))
  in
  let emissions = receive_from_customer_with_communities s communities in
  let targets = List.map (fun e -> e.Update.to_node) emissions in
  Alcotest.(check bool) "2914 still announced" true (List.mem 2914 targets)

let test_speaker_no_export_transit_action () =
  let s = vultr_like_speaker ~interprets:true () in
  let communities =
    Community.Set.singleton (Community.action_to_community Community.No_export_transit)
  in
  let emissions = receive_from_customer_with_communities s communities in
  Alcotest.(check int) "nothing exported upstream" 0 (List.length emissions)

let test_speaker_export_only_action () =
  let s = vultr_like_speaker ~interprets:true () in
  let communities =
    Community.Set.singleton (Community.action_to_community (Community.Export_only_to 1299))
  in
  let emissions = receive_from_customer_with_communities s communities in
  let targets = List.map (fun e -> e.Update.to_node) emissions in
  Alcotest.(check (list int)) "only telia" [ 1299 ] targets

let test_speaker_prepend_action () =
  let s = vultr_like_speaker ~interprets:true () in
  let communities =
    Community.Set.singleton (Community.action_to_community (Community.Prepend_to (2914, 2)))
  in
  let emissions = receive_from_customer_with_communities s communities in
  List.iter
    (fun e ->
      match e.Update.update with
      | Update.Announce r when e.Update.to_node = 2914 ->
          Alcotest.(check (list int)) "prepended twice extra" [ 20473; 20473; 20473 ]
            (As_path.to_list r.Route.path)
      | Update.Announce r when e.Update.to_node = 1299 ->
          Alcotest.(check (list int)) "normal elsewhere" [ 20473 ]
            (As_path.to_list r.Route.path)
      | _ -> ())
    emissions

(* ------------------------------------------------------------------ *)
(* Network propagation                                                 *)

let converge_chain () =
  let topo = Tango_topo.Builders.chain 4 in
  let engine = Engine.create () in
  let net = Network.create topo engine in
  Network.announce net ~node:3 (prefix "10.0.0.0/8") ();
  ignore (Network.converge net);
  net

let test_network_chain_propagation () =
  let net = converge_chain () in
  (match Network.as_path net ~node:0 (prefix "10.0.0.0/8") with
  | Some path -> Alcotest.(check (list int)) "full path" [ 1; 2; 3 ] (As_path.to_list path)
  | None -> Alcotest.fail "prefix did not propagate");
  Alcotest.(check bool) "messages flowed" true (Network.messages_delivered net > 0)

let test_network_forwarding_path () =
  let net = converge_chain () in
  let addr = Tango_net.Addr.of_string_exn "10.1.2.3" in
  Alcotest.(check (option (list int))) "hop-by-hop" (Some [ 0; 1; 2; 3 ])
    (Network.forwarding_path net ~from_node:0 addr);
  Alcotest.(check (option (list int))) "unroutable" None
    (Network.forwarding_path net ~from_node:0 (Tango_net.Addr.of_string_exn "11.0.0.1"))

let test_network_withdraw () =
  let net = converge_chain () in
  Network.withdraw net ~node:3 (prefix "10.0.0.0/8");
  ignore (Network.converge net);
  Alcotest.(check bool) "gone everywhere" true
    (Network.best_route net ~node:0 (prefix "10.0.0.0/8") = None)

let test_network_valley_free_propagation () =
  (* 1 -peer- 2; 3 customer of 1; 4 customer of 2; 5 peer of 1.
     A route from 3 must reach 4 (via the peering) but never 5
     (1 may not export a peer... rather: 1 exports customer route to
     peers, but 2 must not re-export it to its peer 5'... construct:
     5 peers with 2 instead). *)
  let topo = Topology.create () in
  List.iter (fun (id, name) -> Topology.add_node topo ~id ~asn:id name)
    [ (1, "t1a"); (2, "t1b"); (3, "cust-a"); (4, "cust-b"); (5, "t1c") ];
  Topology.connect_peers topo 1 2 ();
  Topology.connect_peers topo 2 5 ();
  Topology.connect topo ~provider:1 ~customer:3 ();
  Topology.connect topo ~provider:2 ~customer:4 ();
  let engine = Engine.create () in
  let net = Network.create topo engine in
  Network.announce net ~node:3 (prefix "10.0.0.0/8") ();
  ignore (Network.converge net);
  Alcotest.(check bool) "customer of peer reached" true
    (Network.best_route net ~node:4 (prefix "10.0.0.0/8") <> None);
  Alcotest.(check bool) "peer of peer NOT reached" true
    (Network.best_route net ~node:5 (prefix "10.0.0.0/8") = None)

let test_network_poisoning () =
  (* Stub 5 below providers 3 and 4, which sit below peered tier-1s 1,2.
     Poisoning AS 4 forces 4 (and anything that only reaches 5 via 4) to
     drop the route. *)
  let topo = Topology.create () in
  List.iter (fun (id, name) -> Topology.add_node topo ~id ~asn:id name)
    [ (1, "t1a"); (2, "t1b"); (3, "mid-a"); (4, "mid-b"); (5, "stub") ];
  Topology.connect_peers topo 1 2 ();
  Topology.connect topo ~provider:1 ~customer:3 ();
  Topology.connect topo ~provider:2 ~customer:4 ();
  Topology.connect topo ~provider:3 ~customer:5 ();
  Topology.connect topo ~provider:4 ~customer:5 ();
  let engine = Engine.create () in
  let net = Network.create topo engine in
  Network.announce net ~node:5 (prefix "10.0.0.0/8") ~poison:[ 4 ] ();
  ignore (Network.converge net);
  Alcotest.(check bool) "poisoned AS rejects" true
    (Network.best_route net ~node:4 (prefix "10.0.0.0/8") = None);
  (match Network.as_path net ~node:1 (prefix "10.0.0.0/8") with
  | Some p ->
      (* The origin sandwiches the poisoned ASN: 5 announces "5 4 5". *)
      Alcotest.(check (list int)) "poison visible in path" [ 3; 5; 4; 5 ]
        (As_path.to_list p)
  | None -> Alcotest.fail "tier-1 should still have the route")

let test_network_mrai_same_outcome_less_churn () =
  (* With MRAI, the network must converge to the same routes while
     delivering no more updates than without. *)
  let build mrai_s =
    let topo = Tango_topo.Builders.random_hierarchy ~seed:5 ~tier1:3 ~tier2:6 ~stubs:10 in
    let engine = Engine.create () in
    let net = Network.create ~mrai_s topo engine in
    Network.announce net ~node:18 (prefix "10.0.0.0/8") ();
    (* Retract and re-announce to generate churn MRAI can absorb. *)
    Network.withdraw net ~node:18 (prefix "10.0.0.0/8");
    Network.announce net ~node:18 (prefix "10.0.0.0/8") ();
    ignore (Network.converge net);
    net
  in
  let fast = build 0.0 and damped = build 5.0 in
  for node = 0 to 17 do
    let path net = Network.as_path net ~node (prefix "10.0.0.0/8") in
    Alcotest.(check bool)
      (Printf.sprintf "node %d same route" node)
      true
      (match (path fast, path damped) with
      | Some a, Some b -> As_path.equal a b
      | None, None -> true
      | Some _, None | None, Some _ -> false)
  done;
  Alcotest.(check bool) "fewer or equal updates" true
    (Network.messages_delivered damped <= Network.messages_delivered fast)

let test_network_mrai_coalesces_flaps () =
  (* Rapid announce/withdraw/announce inside one hold-down reaches the
     neighbor as a single (latest) update. *)
  let topo = Tango_topo.Builders.chain 2 in
  let engine = Engine.create () in
  let net = Network.create ~mrai_s:10.0 topo engine in
  let p = prefix "10.0.0.0/8" in
  Network.announce net ~node:1 p ();
  Network.withdraw net ~node:1 p;
  Network.announce net ~node:1 p ();
  Network.withdraw net ~node:1 p;
  Network.announce net ~node:1 p ();
  ignore (Network.converge net);
  Alcotest.(check bool) "route present" true (Network.best_route net ~node:0 p <> None);
  (* First update goes straight out; the four flaps behind it coalesce
     into one more. *)
  Alcotest.(check int) "two updates total" 2 (Network.messages_delivered net)

(* Property tests: on random Gao-Rexford hierarchies, the converged
   network must satisfy the classic global invariants. *)

let random_converged seed =
  let topo =
    Tango_topo.Builders.random_hierarchy ~seed ~tier1:3 ~tier2:5 ~stubs:8
  in
  let engine = Engine.create () in
  let net = Network.create topo engine in
  (* Announce from the last stub (always a stub by construction). *)
  let origin = 15 in
  Network.announce net ~node:origin (prefix "10.0.0.0/8") ();
  ignore (Network.converge net);
  (topo, net, origin)

let bgp_qcheck_no_loops =
  QCheck.Test.make ~name:"converged paths never contain a loop" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let topo, net, _ = random_converged seed in
      List.for_all
        (fun (n : Topology.node) ->
          match Network.as_path net ~node:n.Topology.id (prefix "10.0.0.0/8") with
          | None -> true
          | Some path ->
              let l = As_path.to_list path in
              List.length l = List.length (List.sort_uniq Int.compare l))
        (Topology.nodes topo))

let bgp_qcheck_valley_free =
  QCheck.Test.make ~name:"converged forwarding paths are valley-free" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let topo, net, _ = random_converged seed in
      let addr = Tango_net.Addr.of_string_exn "10.1.2.3" in
      List.for_all
        (fun (n : Topology.node) ->
          match Network.forwarding_path net ~from_node:n.Topology.id addr with
          | None -> true
          | Some path -> Topology.is_valley_free topo path)
        (Topology.nodes topo))

let bgp_qcheck_withdraw_cleans_everything =
  QCheck.Test.make ~name:"withdraw leaves no residue anywhere" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let topo, net, origin = random_converged seed in
      Network.withdraw net ~node:origin (prefix "10.0.0.0/8");
      ignore (Network.converge net);
      List.for_all
        (fun (n : Topology.node) ->
          Network.best_route net ~node:n.Topology.id (prefix "10.0.0.0/8") = None)
        (Topology.nodes topo))

let bgp_qcheck_customer_reaches_origin =
  QCheck.Test.make ~name:"providers of the origin always learn the route" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let topo, net, origin = random_converged seed in
      List.for_all
        (fun p -> Network.best_route net ~node:p (prefix "10.0.0.0/8") <> None)
        (Topology.providers topo origin))

(* ------------------------------------------------------------------ *)
(* The Vultr scenario: Fig. 3's discovery substrate                    *)

module Vultr = Tango_topo.Vultr

let vultr_overrides (node : Topology.node) =
  if node.Topology.id = Vultr.vultr_la || node.Topology.id = Vultr.vultr_ny then
    { Network.no_overrides with neighbor_weight = Some Vultr.vultr_neighbor_weight }
  else Network.no_overrides

let vultr_net () =
  let topo = Vultr.build () in
  let engine = Engine.create () in
  Network.create ~configure:vultr_overrides topo engine

let ny_prefix = prefix "2001:db8:b000::/48"

let suppress asns =
  Community.Set.of_list
    (List.map (fun a -> Community.action_to_community (Community.No_export_to a)) asns)

let observed_transits net =
  match Network.as_path net ~node:Vultr.server_la ny_prefix with
  | None -> None
  | Some path ->
      (* Strip Vultr's ASN: what remains is the transit sequence. *)
      Some
        (List.filter (fun a -> a <> Vultr.vultr_asn) (As_path.to_list path))

let test_vultr_default_route_is_ntt () =
  let net = vultr_net () in
  Network.announce net ~node:Vultr.server_ny ny_prefix ();
  ignore (Network.converge net);
  (match Network.as_path net ~node:Vultr.server_la ny_prefix with
  | Some p ->
      Alcotest.(check (list int)) "LA sees Vultr-NTT-Vultr"
        [ Vultr.vultr_asn; Vultr.ntt; Vultr.vultr_asn ]
        (As_path.to_list p)
  | None -> Alcotest.fail "no route at LA server")

let test_vultr_suppression_sequence () =
  (* The iterative discovery of the paper, step by step. *)
  let net = vultr_net () in
  let step communities expect =
    Network.announce net ~node:Vultr.server_ny ny_prefix
      ~communities:(suppress communities) ();
    ignore (Network.converge net);
    Alcotest.(check (option (list int)))
      (Printf.sprintf "suppressing [%s]"
         (String.concat ";" (List.map string_of_int communities)))
      expect (observed_transits net)
  in
  step [] (Some [ Vultr.ntt ]);
  step [ Vultr.ntt ] (Some [ Vultr.telia ]);
  step [ Vultr.ntt; Vultr.telia ] (Some [ Vultr.gtt ]);
  step [ Vultr.ntt; Vultr.telia; Vultr.gtt ] (Some [ Vultr.ntt; Vultr.cogent ]);
  step [ Vultr.ntt; Vultr.telia; Vultr.gtt; Vultr.cogent ] None

let test_vultr_reverse_direction () =
  (* NY -> LA: the fourth path runs through Level3 instead of Cogent. *)
  let net = vultr_net () in
  let la_prefix = prefix "2001:db8:a000::/48" in
  Network.announce net ~node:Vultr.server_la la_prefix
    ~communities:(suppress [ Vultr.ntt; Vultr.telia; Vultr.gtt ]) ();
  ignore (Network.converge net);
  match Network.as_path net ~node:Vultr.server_ny la_prefix with
  | Some p ->
      let transits =
        List.filter (fun a -> a <> Vultr.vultr_asn) (As_path.to_list p)
      in
      Alcotest.(check (list int)) "via NTT+Level3" [ Vultr.ntt; Vultr.level3 ] transits
  | None -> Alcotest.fail "no route at NY server"

let test_vultr_forwarding_path_follows_bgp () =
  let net = vultr_net () in
  Network.announce net ~node:Vultr.server_ny ny_prefix
    ~communities:(suppress [ Vultr.ntt ]) ();
  ignore (Network.converge net);
  let addr = Prefix.nth_address ny_prefix 1L in
  Alcotest.(check (option (list int))) "data follows Telia"
    (Some [ Vultr.server_la; Vultr.vultr_la; Vultr.telia; Vultr.vultr_ny; Vultr.server_ny ])
    (Network.forwarding_path net ~from_node:Vultr.server_la addr)

let test_vultr_host_and_tunnel_prefixes_coexist () =
  let net = vultr_net () in
  let tunnel0 = prefix "2001:db8:b000::/48" in
  let tunnel1 = prefix "2001:db8:b001::/48" in
  Network.announce net ~node:Vultr.server_ny tunnel0 ();
  Network.announce net ~node:Vultr.server_ny tunnel1
    ~communities:(suppress [ Vultr.ntt ]) ();
  ignore (Network.converge net);
  let path_of p =
    Option.map
      (fun path -> List.filter (fun a -> a <> Vultr.vultr_asn) (As_path.to_list path))
      (Network.as_path net ~node:Vultr.server_la p)
  in
  Alcotest.(check (option (list int))) "tunnel0 on NTT" (Some [ Vultr.ntt ]) (path_of tunnel0);
  Alcotest.(check (option (list int))) "tunnel1 on Telia" (Some [ Vultr.telia ]) (path_of tunnel1)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "tango_bgp"
    [
      ( "community",
        [
          tc "validation" `Quick test_community_validation;
          tc "string roundtrip" `Quick test_community_string_roundtrip;
          tc "action roundtrip" `Quick test_community_action_roundtrip;
          tc "ordinary not action" `Quick test_community_ordinary_not_action;
          tc "actions of set" `Quick test_community_actions_of_set;
        ] );
      ( "as_path",
        [
          tc "basics" `Quick test_as_path_basics;
          tc "prepend" `Quick test_as_path_prepend;
          tc "neighbor of origin" `Quick test_as_path_neighbor_of_origin;
          tc "poison" `Quick test_as_path_poison;
          tc "strip private" `Quick test_as_path_strip_private;
        ] );
      ( "decision",
        [
          tc "local pref first" `Quick test_decision_local_pref_first;
          tc "length before weight" `Quick test_decision_path_length_before_weight;
          tc "weight breaks ties" `Quick test_decision_weight_breaks_length_ties;
          tc "med and node id" `Quick test_decision_med_and_node_tiebreak;
          tc "local beats learned" `Quick test_decision_local_beats_learned;
          tc "best and rank" `Quick test_decision_best_and_rank;
        ] );
      ( "speaker",
        [
          tc "originate exports" `Quick test_speaker_originate_exports_to_all;
          tc "loop rejection" `Quick test_speaker_loop_rejection;
          tc "allowas-in" `Quick test_speaker_allowas_in;
          tc "no peer transit" `Quick test_speaker_gao_rexford_no_peer_transit;
          tc "split horizon" `Quick test_speaker_split_horizon;
          tc "withdraw cascade" `Quick test_speaker_withdraw_cascade;
          tc "remove private" `Quick test_speaker_remove_private;
          tc "no-export-to action" `Quick test_speaker_no_export_to_action;
          tc "action needs interpreter" `Quick test_speaker_action_ignored_when_not_interpreting;
          tc "no-export-transit action" `Quick test_speaker_no_export_transit_action;
          tc "export-only action" `Quick test_speaker_export_only_action;
          tc "prepend action" `Quick test_speaker_prepend_action;
        ] );
      ( "network",
        [
          tc "chain propagation" `Quick test_network_chain_propagation;
          tc "forwarding path" `Quick test_network_forwarding_path;
          tc "withdraw" `Quick test_network_withdraw;
          tc "valley-free propagation" `Quick test_network_valley_free_propagation;
          tc "poisoning" `Quick test_network_poisoning;
          tc "mrai same outcome" `Quick test_network_mrai_same_outcome_less_churn;
          tc "mrai coalesces flaps" `Quick test_network_mrai_coalesces_flaps;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest bgp_qcheck_no_loops;
          QCheck_alcotest.to_alcotest bgp_qcheck_valley_free;
          QCheck_alcotest.to_alcotest bgp_qcheck_withdraw_cleans_everything;
          QCheck_alcotest.to_alcotest bgp_qcheck_customer_reaches_origin;
        ] );
      ( "vultr",
        [
          tc "default is NTT" `Quick test_vultr_default_route_is_ntt;
          tc "suppression sequence (Fig 3)" `Quick test_vultr_suppression_sequence;
          tc "reverse via Level3" `Quick test_vultr_reverse_direction;
          tc "forwarding follows BGP" `Quick test_vultr_forwarding_path_follows_bgp;
          tc "multiple prefixes coexist" `Quick test_vultr_host_and_tunnel_prefixes_coexist;
        ] );
    ]
