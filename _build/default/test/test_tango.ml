(* Tests for the Tango core: address plans, path discovery (Fig. 3),
   routing policies, and the full two-PoP integration with live one-way
   measurements. *)

open Tango
module Prefix = Tango_net.Prefix
module Vultr = Tango_topo.Vultr
module Series = Tango_telemetry.Series

(* ------------------------------------------------------------------ *)
(* Addressing                                                          *)

let test_carve_shape () =
  let plan = Addressing.carve ~block:Addressing.default_block ~site_index:0 ~path_count:4 in
  Alcotest.(check int) "four tunnel prefixes" 4 (List.length plan.Addressing.tunnel_prefixes);
  List.iter
    (fun p ->
      Alcotest.(check bool) "inside block" true
        (Prefix.subsumes Addressing.default_block p);
      Alcotest.(check bool) "distinct from host" false
        (Prefix.equal p plan.Addressing.host_prefix))
    plan.Addressing.tunnel_prefixes

let test_carve_sites_disjoint () =
  let a = Addressing.carve ~block:Addressing.default_block ~site_index:0 ~path_count:4 in
  let b = Addressing.carve ~block:Addressing.default_block ~site_index:1 ~path_count:4 in
  let all plan = plan.Addressing.host_prefix :: plan.Addressing.tunnel_prefixes in
  List.iter
    (fun pa ->
      List.iter
        (fun pb ->
          Alcotest.(check bool) "disjoint" false (Prefix.overlaps pa pb))
        (all b))
    (all a)

let test_carve_limits () =
  Alcotest.(check bool) "too many paths" true
    (try
       ignore (Addressing.carve ~block:Addressing.default_block ~site_index:0 ~path_count:16);
       false
     with Invalid_argument _ -> true)

let test_tunnel_endpoint_membership () =
  let plan = Addressing.carve ~block:Addressing.default_block ~site_index:2 ~path_count:3 in
  List.iteri
    (fun i p ->
      let ep = Addressing.tunnel_endpoint plan ~path:i in
      Alcotest.(check bool) "endpoint inside its prefix" true (Prefix.mem p ep))
    plan.Addressing.tunnel_prefixes;
  Alcotest.(check bool) "host address in host prefix" true
    (Prefix.mem plan.Addressing.host_prefix (Addressing.host_address plan 5L))

(* ------------------------------------------------------------------ *)
(* Discovery (Fig. 3)                                                  *)

let vultr_net () =
  let topo = Vultr.build () in
  let engine = Tango_sim.Engine.create () in
  Tango_bgp.Network.create
    ~configure:(fun node ->
      if node.Tango_topo.Topology.id = Vultr.vultr_la
         || node.Tango_topo.Topology.id = Vultr.vultr_ny
      then
        { Tango_bgp.Network.no_overrides with
          neighbor_weight = Some Vultr.vultr_neighbor_weight }
      else Tango_bgp.Network.no_overrides)
    topo engine

let probe = Prefix.of_string_exn "2001:db8:7000::/48"

let test_discovery_la_to_ny () =
  let net = vultr_net () in
  let result =
    Discovery.run ~net ~origin:Vultr.server_ny ~observer:Vultr.server_la
      ~probe_prefix:probe ()
  in
  let labels = List.map (fun p -> p.Discovery.label) result.Discovery.paths in
  Alcotest.(check (list string)) "paper order (Fig 3)"
    [ "NTT"; "Telia"; "GTT"; "Cogent" ] labels;
  Alcotest.(check int) "iterations = paths + 1" 5 result.Discovery.iterations;
  (* Path i needs exactly i suppression communities. *)
  List.iteri
    (fun i p ->
      Alcotest.(check int)
        (Printf.sprintf "path %d communities" i)
        i
        (Tango_bgp.Community.Set.cardinal p.Discovery.communities))
    result.Discovery.paths;
  (* The Cogent path traverses two transits. *)
  let cogent = List.nth result.Discovery.paths 3 in
  Alcotest.(check (list int)) "NTT then Cogent" [ Vultr.ntt; Vultr.cogent ]
    cogent.Discovery.transits

let test_discovery_ny_to_la () =
  let net = vultr_net () in
  let result =
    Discovery.run ~net ~origin:Vultr.server_la ~observer:Vultr.server_ny
      ~probe_prefix:probe ()
  in
  let labels = List.map (fun p -> p.Discovery.label) result.Discovery.paths in
  Alcotest.(check (list string)) "reverse direction"
    [ "NTT"; "Telia"; "GTT"; "Level3" ] labels

let test_discovery_withdraws_probe () =
  let net = vultr_net () in
  ignore
    (Discovery.run ~net ~origin:Vultr.server_ny ~observer:Vultr.server_la
       ~probe_prefix:probe ());
  Alcotest.(check bool) "probe gone" true
    (Tango_bgp.Network.best_route net ~node:Vultr.server_la probe = None)

let test_discovery_max_paths () =
  let net = vultr_net () in
  let result =
    Discovery.run ~net ~origin:Vultr.server_ny ~observer:Vultr.server_la
      ~probe_prefix:probe ~max_paths:2 ()
  in
  Alcotest.(check int) "capped" 2 (List.length result.Discovery.paths)

let test_discovery_by_poisoning () =
  (* §3/§6: poisoning needs no community support, but it knocks the
     poisoned transit out entirely, so the fourth path detours through
     whichever transits remain (Cogent reached via Level3) rather than
     via the poisoned NTT. *)
  let net = vultr_net () in
  let result =
    Discovery.run ~net ~origin:Vultr.server_ny ~observer:Vultr.server_la
      ~probe_prefix:probe ~mechanism:`Poisoning ()
  in
  let labels = List.map (fun p -> p.Discovery.label) result.Discovery.paths in
  Alcotest.(check int) "four paths" 4 (List.length result.Discovery.paths);
  Alcotest.(check (list string)) "first three match communities"
    [ "NTT"; "Telia"; "GTT" ]
    (List.filteri (fun i _ -> i < 3) labels);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "no communities" 0
        (Tango_bgp.Community.Set.cardinal p.Discovery.communities);
      Alcotest.(check int) "i poisons" i (List.length p.Discovery.poisons))
    result.Discovery.paths;
  (* The poisoned ASNs are visible in the raw announced path. *)
  let last = List.nth result.Discovery.paths 3 in
  Alcotest.(check bool) "poison rides in as-path" true
    (List.for_all
       (fun asn -> Tango_bgp.As_path.contains last.Discovery.as_path asn)
       last.Discovery.poisons)

let test_discovery_single_homed_chain () =
  (* A single-homed stub behind one provider chain: exactly one path. *)
  let topo = Tango_topo.Builders.chain 4 in
  let engine = Tango_sim.Engine.create () in
  let net = Tango_bgp.Network.create topo engine in
  let result =
    Discovery.run ~net ~origin:3 ~observer:0
      ~probe_prefix:(Prefix.of_string_exn "10.0.0.0/8")
      ~transit_namer:(fun asn -> Printf.sprintf "AS%d" asn)
      ()
  in
  Alcotest.(check int) "one path" 1 (List.length result.Discovery.paths)

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let path_stats ?(loss = 0.0) ?(age = 0.0) ?(jitter = 0.0) path_id owd =
  {
    Policy.path_id;
    owd_ewma_ms = owd;
    jitter_ms = jitter;
    loss_rate = loss;
    age_s = age;
    samples = 100;
  }

let stats ~owd0 ~owd1 = [| path_stats 0 owd0; path_stats 1 owd1 |]

let test_policy_bgp_default () =
  let p = Policy.create Policy.Bgp_default in
  Alcotest.(check int) "always 0" 0
    (Policy.choose p ~now_s:0.0 (stats ~owd0:100.0 ~owd1:1.0))

let test_policy_static () =
  let p = Policy.create (Policy.Static 1) in
  Alcotest.(check int) "pinned" 1
    (Policy.choose p ~now_s:0.0 (stats ~owd0:1.0 ~owd1:100.0))

let test_policy_lowest_owd_switches () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 0.0 }) in
  Alcotest.(check int) "moves to faster path" 1
    (Policy.choose p ~now_s:0.0 (stats ~owd0:36.4 ~owd1:28.0));
  Alcotest.(check int) "switch recorded" 1 (Policy.switches p)

let test_policy_hysteresis_blocks_small_win () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 2.0; min_dwell_s = 0.0 }) in
  Alcotest.(check int) "0.5ms win not enough" 0
    (Policy.choose p ~now_s:0.0 (stats ~owd0:28.5 ~owd1:28.0))

let test_policy_dwell_blocks_flapping () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 0.5; min_dwell_s = 10.0 }) in
  ignore (Policy.choose p ~now_s:0.0 (stats ~owd0:30.0 ~owd1:28.0));
  Alcotest.(check int) "switched once" 1 (Policy.current p);
  (* Path 0 becomes better again, but we are inside the dwell. *)
  Alcotest.(check int) "held" 1
    (Policy.choose p ~now_s:5.0 (stats ~owd0:25.0 ~owd1:28.0));
  Alcotest.(check int) "released after dwell" 0
    (Policy.choose p ~now_s:11.0 (stats ~owd0:25.0 ~owd1:28.0))

let test_policy_jitter_aware () =
  let p =
    Policy.create (Policy.Jitter_aware { beta = 10.0; hysteresis_ms = 0.1; min_dwell_s = 0.0 })
  in
  let stats =
    [| path_stats ~jitter:0.33 0 28.0; path_stats ~jitter:0.01 1 29.0 |]
  in
  (* 28 + 3.3 > 29 + 0.1: the steadier path wins despite higher OWD. *)
  Alcotest.(check int) "prefers low jitter" 1 (Policy.choose p ~now_s:0.0 stats)

let test_policy_loss_failover () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 100.0 }) in
  (* Establish path 0 as current (it is the default). *)
  Alcotest.(check int) "starts on best" 0
    (Policy.choose p ~now_s:0.0 (stats ~owd0:28.0 ~owd1:31.0));
  (* Path 0 starts dropping everything: evacuate immediately, even inside
     the dwell window. *)
  let lossy = [| path_stats ~loss:0.8 0 28.0; path_stats 1 31.0 |] in
  Alcotest.(check int) "emergency failover" 1 (Policy.choose p ~now_s:0.5 lossy)

let test_policy_staleness_failover () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 100.0 }) in
  ignore (Policy.choose p ~now_s:0.0 (stats ~owd0:28.0 ~owd1:31.0));
  (* No fresh samples from path 0 for 5 s (silent blackhole). *)
  let stale = [| path_stats ~age:5.0 0 28.0; path_stats 1 31.0 |] in
  Alcotest.(check int) "stale path evacuated" 1 (Policy.choose p ~now_s:0.5 stale)

let test_policy_no_failover_without_alternative () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 0.0 }) in
  ignore (Policy.choose p ~now_s:0.0 (stats ~owd0:28.0 ~owd1:31.0));
  (* Everything is down: stay put rather than bounce. *)
  let all_bad = [| path_stats ~loss:0.9 0 28.0; path_stats ~loss:0.9 1 31.0 |] in
  Alcotest.(check int) "holds current" 0 (Policy.choose p ~now_s:1.0 all_bad)

let test_policy_no_measurements_fallback () =
  let p = Policy.create (Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 0.0 }) in
  let empty = [| Policy.no_stats ~path_id:0; Policy.no_stats ~path_id:1 |] in
  Alcotest.(check int) "default path" 0 (Policy.choose p ~now_s:0.0 empty)

(* ------------------------------------------------------------------ *)
(* ECMP reverse engineering                                            *)

let test_ecmp_map_cluster () =
  let clusters =
    Ecmp_map.cluster ~tolerance_ms:0.5 [ 10.1; 10.0; 12.0; 12.2; 9.9; 14.05; 14.0 ]
  in
  Alcotest.(check int) "three clusters" 3 (List.length clusters);
  match clusters with
  | [ (m1, n1); (m2, n2); (m3, n3) ] ->
      Alcotest.(check int) "sizes" 7 (n1 + n2 + n3);
      Alcotest.(check bool) "means ordered" true (m1 < m2 && m2 < m3);
      Alcotest.(check bool) "first near 10" true (abs_float (m1 -. 10.0) < 0.2)
  | _ -> Alcotest.fail "unexpected shape"

let test_ecmp_map_cluster_single () =
  Alcotest.(check int) "one cluster" 1
    (List.length (Ecmp_map.cluster ~tolerance_ms:1.0 [ 5.0; 5.1; 5.2; 4.9 ]))

let test_ecmp_map_infer () =
  let floors = [ (0, 28.0); (1, 30.0); (2, 28.1); (3, 32.0); (4, 30.1) ] in
  let map = Ecmp_map.infer ~tolerance_ms:0.5 floors in
  Alcotest.(check int) "three lanes" 3 (List.length map.Ecmp_map.lanes);
  Alcotest.(check (float 0.1)) "spread" 3.95 map.Ecmp_map.spread_ms;
  (match map.Ecmp_map.lanes with
  | first :: _ -> Alcotest.(check (float 1e-9)) "fastest at 0" 0.0 first.Ecmp_map.offset_ms
  | [] -> Alcotest.fail "no lanes")

let test_ecmp_map_probe_end_to_end () =
  (* A transit with 4 lanes 2 ms apart must be inferred from probes. *)
  let net = vultr_net () in
  let plan = Addressing.carve ~block:Addressing.default_block ~site_index:1 ~path_count:0 in
  Tango_bgp.Network.announce net ~node:Vultr.server_ny plan.Addressing.host_prefix ();
  ignore (Tango_bgp.Network.converge net);
  let fabric =
    Tango_dataplane.Fabric.create ~seed:3
      ~lanes_of:(fun node ->
        if node = Vultr.ntt then
          Tango_dataplane.Ecmp.uniform_lanes ~count:4 ~spread_ms:2.0
        else [| 0.0 |])
      net
  in
  let map =
    Ecmp_map.probe ~fabric ~from_node:Vultr.server_la
      ~src:
        (Addressing.host_address
           (Addressing.carve ~block:Addressing.default_block ~site_index:0 ~path_count:0)
           1L)
      ~dst:(Addressing.host_address plan 1L)
      ~flows:64 ~probes_per_flow:8 ()
  in
  Alcotest.(check int) "four lanes found" 4 (List.length map.Ecmp_map.lanes);
  Alcotest.(check (float 0.3)) "spread ~6ms" 6.0 map.Ecmp_map.spread_ms

let test_pair_generic_topology () =
  (* The generic setup works on any topology: two dual-homed enterprise
     sites (the paper's ASX/ASY motivating case, but multi-homed), with
     providers that honor action communities. *)
  let topo = Tango_topo.Topology.create () in
  let add id name = Tango_topo.Topology.add_node topo ~id ~asn:id name in
  add 100 "isp-a";
  add 200 "isp-b";
  Tango_topo.Topology.add_node topo ~id:1 ~asn:64512 ~private_asn:true "asx";
  Tango_topo.Topology.add_node topo ~id:2 ~asn:64513 ~private_asn:true "asy";
  Tango_topo.Topology.connect_peers topo 100 200
    ~link:(Tango_topo.Link.v 1.0) ();
  Tango_topo.Topology.connect topo ~provider:100 ~customer:1
    ~link:(Tango_topo.Link.v 5.0) ();
  Tango_topo.Topology.connect topo ~provider:200 ~customer:1
    ~link:(Tango_topo.Link.v 9.0) ();
  Tango_topo.Topology.connect topo ~provider:100 ~customer:2
    ~link:(Tango_topo.Link.v 5.0) ();
  Tango_topo.Topology.connect topo ~provider:200 ~customer:2
    ~link:(Tango_topo.Link.v 9.0) ();
  let pair =
    Pair.setup ~seed:31 ~topo ~server_a:1 ~server_b:2
      ~configure:(fun _ ->
        { Tango_bgp.Network.no_overrides with interprets_actions = Some true })
      ()
  in
  (* Both directions expose the ISP-A path (10 ms) and the ISP-B path
     (18 ms). *)
  Alcotest.(check int) "two paths" 2 (List.length (Pair.paths_to_ny pair));
  Pair.start_measurement pair ~for_s:5.0 ();
  Pair.run_for pair 6.0;
  let b = Pair.pop_ny pair in
  let mean path =
    (Series.stats (Pop.inbound_owd_series b ~path)).Tango_sim.Stats.mean
  in
  Alcotest.(check bool) "fast path ~10ms" true (abs_float (mean 0 -. 10.0) < 0.5);
  Alcotest.(check bool) "slow path ~18ms" true (abs_float (mean 1 -. 18.0) < 0.5)

(* ------------------------------------------------------------------ *)
(* Stream transport                                                    *)

let test_stream_invalid_args () =
  let pair = Pair.setup_vultr ~seed:30 () in
  Alcotest.(check bool) "zero window" true
    (try
       ignore
         (Stream.start ~sender:(Pair.pop_ny pair) ~receiver:(Pair.pop_la pair)
            ~window:0 ~total_segments:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero segments" true
    (try
       ignore
         (Stream.start ~sender:(Pair.pop_ny pair) ~receiver:(Pair.pop_la pair)
            ~total_segments:0 ());
       false
     with Invalid_argument _ -> true)

let test_pop_bounds () =
  let pair = Pair.setup_vultr ~seed:32 () in
  let la = Pair.pop_la pair in
  Alcotest.(check bool) "bad path label" true
    (try ignore (Pop.path_label la 9); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad series path" true
    (try ignore (Pop.inbound_owd_series la ~path:(-1)); false
     with Invalid_argument _ -> true)

let test_config_parse_file_missing () =
  match Config.parse_file "/nonexistent/tango.conf" with
  | Ok _ -> Alcotest.fail "read a missing file"
  | Error _ -> ()

let test_stream_basic_transfer () =
  let pair = Pair.setup_vultr ~seed:8 () in
  Pair.start_measurement pair ~for_s:30.0 ();
  (* Windowed transfer NY -> LA pinned on GTT (path 2). *)
  let stream =
    Stream.start ~sender:(Pair.pop_ny pair) ~receiver:(Pair.pop_la pair)
      ~route:(`Path 2) ~total_segments:500 ()
  in
  Pair.run_for pair 31.0;
  Alcotest.(check bool) "finished" true (Stream.finished stream);
  Alcotest.(check int) "all delivered" 500 (Stream.delivered_segments stream);
  Alcotest.(check int) "no loss, no retransmit" 0 (Stream.retransmissions stream);
  (* Window 32 of 1200 B over a ~56.8 ms RTT: ~5.4 Mb/s. *)
  let goodput = Stream.goodput_mbps stream in
  Alcotest.(check bool)
    (Printf.sprintf "plausible goodput (%.2f Mb/s)" goodput)
    true
    (goodput > 3.0 && goodput < 8.0);
  Alcotest.(check bool) "srtt near 57ms" true
    (abs_float (Stream.srtt_s stream -. 0.0568) < 0.01)

let test_stream_recovers_from_blackhole () =
  (* A short outage on the pinned path: the stream must retransmit and
     still complete after the heal. *)
  let pair = Pair.setup_vultr ~seed:9 () in
  let engine = Pair.engine pair in
  let fabric = Pair.fabric pair in
  let t0 = Tango_sim.Engine.now engine in
  Pair.start_measurement pair ~for_s:40.0 ();
  let stream =
    Stream.start ~sender:(Pair.pop_ny pair) ~receiver:(Pair.pop_la pair)
      ~route:(`Path 2) ~total_segments:2000 ()
  in
  (* The transfer takes ~3.5 s; the outage hits it mid-flight. *)
  Tango_sim.Engine.schedule_at engine ~time:(t0 +. 0.3) (fun _ ->
      Tango_dataplane.Fabric.fail_link fabric ~from_node:Vultr.gtt
        ~to_node:Vultr.vultr_la);
  Tango_sim.Engine.schedule_at engine ~time:(t0 +. 2.3) (fun _ ->
      Tango_dataplane.Fabric.heal_link fabric ~from_node:Vultr.gtt
        ~to_node:Vultr.vultr_la);
  Pair.run_for pair 41.0;
  Alcotest.(check bool) "finished despite outage" true (Stream.finished stream);
  Alcotest.(check bool) "timeouts occurred" true (Stream.timeouts stream > 0);
  Alcotest.(check bool) "retransmissions occurred" true (Stream.retransmissions stream > 0);
  (* The two-second outage shows up as a head-of-line stall. *)
  Alcotest.(check bool) "stall spans the outage" true (Stream.max_stall_s stream > 1.5)

(* ------------------------------------------------------------------ *)
(* Pair integration                                                    *)

let test_pair_setup_paths () =
  let pair = Pair.setup_vultr () in
  Alcotest.(check (list string)) "LA->NY paths"
    [ "NTT"; "Telia"; "GTT"; "Cogent" ]
    (List.map (fun p -> p.Discovery.label) (Pair.paths_to_ny pair));
  Alcotest.(check (list string)) "NY->LA paths"
    [ "NTT"; "Telia"; "GTT"; "Level3" ]
    (List.map (fun p -> p.Discovery.label) (Pair.paths_to_la pair));
  Alcotest.(check int) "LA pop tunnels" 4 (Pop.path_count (Pair.pop_la pair));
  Alcotest.(check string) "label" "GTT" (Pop.path_label (Pair.pop_la pair) 2)

let measured_pair () =
  let pair = Pair.setup_vultr ~seed:3 () in
  Pair.start_measurement pair ~for_s:10.0 ();
  Pair.run_for pair 10.5;
  pair

let test_pair_measurement_plane () =
  let pair = measured_pair () in
  let ny = Pair.pop_ny pair in
  (* ~100 Hz probes per path for 10 s; path 0 additionally carries the
     peer reports, which are measured too (Tango measures on all data
     packets, not just probes). *)
  for path = 0 to 3 do
    let n = Series.length (Pop.inbound_owd_series ny ~path) in
    Alcotest.(check bool)
      (Printf.sprintf "path %d sample count (%d)" path n)
      true
      (n > 900 && n < 1250)
  done;
  (* Relative OWDs survive the deliberately skewed clocks: the paper's
     headline 30% gap shows up as an 8.4 ms NTT-GTT difference. *)
  let mean path = (Series.stats (Pop.inbound_owd_series ny ~path)).Tango_sim.Stats.mean in
  let ntt = mean 0 and telia = mean 1 and gtt = mean 2 in
  Alcotest.(check bool) "NTT - GTT = 8.4ms" true (abs_float (ntt -. gtt -. 8.4) < 0.3);
  Alcotest.(check bool) "Telia - GTT = 3ms" true (abs_float (telia -. gtt -. 3.0) < 0.3);
  (* The absolute values are skew-shifted (LA clock +37ms, NY -12ms). *)
  Alcotest.(check bool) "absolute OWD shows skew" true (gtt < 0.0);
  (* No loss on quiet paths. *)
  for path = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "path %d no loss" path)
      0
      (Tango_dataplane.Seq_tracker.lost (Pop.tracker ny ~path))
  done

let test_pair_reports_flow () =
  let pair = measured_pair () in
  let la = Pair.pop_la pair in
  Alcotest.(check bool) "reports received" true (Pop.reports_received la > 50);
  let outbound = Pop.outbound_stats la in
  Alcotest.(check int) "four paths reported" 4 (Array.length outbound);
  Array.iter
    (fun (s : Policy.path_stats) ->
      Alcotest.(check bool) "stats populated" true (s.Policy.samples > 0))
    outbound

let test_pair_policy_converges_to_gtt () =
  let pair = Pair.setup_vultr ~seed:4 () in
  Pair.start_measurement pair ~for_s:20.0 ();
  let la = Pair.pop_la pair in
  let engine = Pair.engine pair in
  let t0 = Tango_sim.Engine.now engine in
  let chosen_late = ref [] in
  Tango_workload.Traffic.periodic engine ~interval_s:0.05 ~until_s:(t0 +. 20.0)
    (fun e ->
      let path = Pop.send_app la () in
      if Tango_sim.Engine.now e > t0 +. 5.0 then chosen_late := path :: !chosen_late);
  Pair.run_for pair 21.0;
  Alcotest.(check bool) "app packets sent" true (!chosen_late <> []);
  List.iter
    (fun path -> Alcotest.(check int) "GTT chosen after warmup" 2 path)
    !chosen_late;
  let ny = Pair.pop_ny pair in
  Alcotest.(check bool) "app packets received" true (Pop.app_received ny > 300);
  (* True end-to-end latency of the GTT path: ~28.4 ms (clock-free). *)
  let app = Series.stats (Pop.app_latency_series ny) in
  Alcotest.(check bool) "app latency near 28ms" true
    (app.Tango_sim.Stats.p50 > 0.027 && app.Tango_sim.Stats.p50 < 0.031)

let test_pair_silent_blackhole_failover () =
  let pair =
    Pair.setup_vultr ~seed:5
      ~policy_ny:(Policy.Lowest_owd { hysteresis_ms = 1.0; min_dwell_s = 2.0 })
      ()
  in
  let engine = Pair.engine pair in
  let ny = Pair.pop_ny pair and la = Pair.pop_la pair in
  let fabric = Pair.fabric pair in
  let t0 = Tango_sim.Engine.now engine in
  Pair.start_measurement pair ~for_s:20.0 ();
  let sent = ref 0 in
  Tango_workload.Traffic.periodic engine ~interval_s:0.02 ~until_s:(t0 +. 20.0)
    (fun _ ->
      incr sent;
      ignore (Pop.send_app ny ()));
  (* The adaptive sender converges onto GTT; blackhole it silently. *)
  Tango_sim.Engine.schedule_at engine ~time:(t0 +. 8.0) (fun _ ->
      Tango_dataplane.Fabric.fail_link fabric ~from_node:Vultr.gtt
        ~to_node:Vultr.vultr_la);
  Pair.run_for pair 21.0;
  let lost = !sent - Pop.app_received la in
  Alcotest.(check bool) "sender evacuated" true (Pop.policy_switches ny >= 2);
  (* Outage lasts 12 s of a 20 s run; without failover ~60% would die. *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded loss (%d/%d)" lost !sent)
    true
    (float_of_int lost /. float_of_int !sent < 0.25);
  Alcotest.(check bool) "traffic kept flowing" true (Pop.app_received la > 700)

let test_pair_probe_accounting () =
  let pair = measured_pair () in
  let la = Pair.pop_la pair and ny = Pair.pop_ny pair in
  Alcotest.(check bool) "probes sent" true (Pop.probes_sent la > 3500);
  (* Every probe LA sent arrived at NY (no loss configured). *)
  Alcotest.(check int) "all probes delivered" (Pop.probes_sent la)
    (Pop.probes_received ny)

(* ------------------------------------------------------------------ *)
(* Config DSL                                                          *)

let sample_config =
  {|
# Tango deployment
block 2001:db8:4000::/34;

measurement {
  probe-interval 0.02;
  report-interval 0.2;
}

site "LA" {
  clock-offset-ns 37000000;
  policy lowest-owd { hysteresis-ms 2.0; dwell-s 3.0; }
}

site "NY" {
  clock-offset-ns -12000000;
  policy jitter-aware { beta 4.0; hysteresis-ms 1.5; dwell-s 2.5; }
}
|}

let test_config_parse () =
  match Config.parse sample_config with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cfg ->
      Alcotest.(check (float 1e-9)) "probe" 0.02 cfg.Config.probe_interval_s;
      Alcotest.(check (float 1e-9)) "report" 0.2 cfg.Config.report_interval_s;
      Alcotest.(check int) "two sites" 2 (List.length cfg.Config.sites);
      let ny = List.find (fun s -> s.Config.name = "NY") cfg.Config.sites in
      Alcotest.(check int64) "offset" (-12_000_000L) ny.Config.clock_offset_ns;
      (match ny.Config.policy with
      | Policy.Jitter_aware { beta; hysteresis_ms; min_dwell_s } ->
          Alcotest.(check (float 1e-9)) "beta" 4.0 beta;
          Alcotest.(check (float 1e-9)) "hysteresis" 1.5 hysteresis_ms;
          Alcotest.(check (float 1e-9)) "dwell" 2.5 min_dwell_s
      | _ -> Alcotest.fail "wrong policy parsed")

let test_config_roundtrip () =
  match Config.parse sample_config with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cfg -> (
      match Config.parse (Config.to_string cfg) with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok cfg' -> Alcotest.(check bool) "roundtrip equal" true (cfg = cfg'))

let test_config_defaults () =
  match Config.parse "" with
  | Error e -> Alcotest.failf "empty config should parse: %s" e
  | Ok cfg -> Alcotest.(check bool) "defaults" true (cfg = Config.default)

let test_config_errors () =
  let expect_error ~needle text =
    match Config.parse text with
    | Ok _ -> Alcotest.failf "accepted bad config %S" text
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %S" e needle)
          true
          (let len_n = String.length needle and len_e = String.length e in
           let rec search i =
             i + len_n <= len_e && (String.sub e i len_n = needle || search (i + 1))
           in
           search 0)
  in
  expect_error ~needle:"unknown directive" "frobnicate 3;";
  expect_error ~needle:"line 3" "block 2001:db8::/34;\nmeasurement { probe-interval 0.01; }\nbogus;";
  expect_error ~needle:"duplicate site" "site \"LA\" { }\nsite \"LA\" { }";
  expect_error ~needle:"unterminated" "site \"LA ";
  expect_error ~needle:"unknown policy" "site \"LA\" { policy teleport; }";
  expect_error ~needle:"unknown setting" "measurement { cadence 5; }"

let test_config_apply () =
  match Config.parse sample_config with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cfg -> (
      match Config.apply_vultr cfg with
      | Error e -> Alcotest.failf "apply failed: %s" e
      | Ok pair ->
          Alcotest.(check int) "pair is set up" 4
            (Pop.path_count (Pair.pop_la pair));
          let probe, report = Config.measurement_args cfg in
          Alcotest.(check (float 1e-9)) "probe arg" 0.02 probe;
          Alcotest.(check (float 1e-9)) "report arg" 0.2 report)

let test_config_apply_needs_both_sites () =
  match Config.parse "site \"LA\" { }" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cfg -> (
      match Config.apply_vultr cfg with
      | Ok _ -> Alcotest.fail "applied one-site config"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Mesh: live Tango-of-N                                               *)

let test_mesh_setup () =
  let mesh = Mesh.setup_triangle ~seed:21 () in
  Alcotest.(check int) "three sites" 3 (Mesh.sites mesh);
  Alcotest.(check string) "names" "CHI" (Mesh.site_name mesh 2);
  (* LA<->NY keep their four paths; CHI pairs are single-homed per
     direction. *)
  Alcotest.(check int) "LA->NY paths" 4 (List.length (Mesh.paths mesh ~src:0 ~dst:1));
  Alcotest.(check int) "CHI->LA paths" 1 (List.length (Mesh.paths mesh ~src:2 ~dst:0));
  Alcotest.(check int) "NY->CHI paths" 1 (List.length (Mesh.paths mesh ~src:1 ~dst:2));
  Alcotest.(check bool) "pair lookup validates" true
    (try ignore (Mesh.pop mesh ~src:1 ~dst:1); false with Invalid_argument _ -> true)

let test_mesh_measurement_and_planning () =
  let mesh = Mesh.setup_triangle ~seed:22 () in
  (* Before measurements: static floors drive planning. *)
  Mesh.plan_routes mesh;
  Alcotest.(check bool) "CHI->LA relays via NY (floors)" true
    (Mesh.route mesh ~src:2 ~dst:0 = Tango.Overlay.Relay [ 1 ]);
  Alcotest.(check bool) "NY->CHI direct" true
    (Mesh.route mesh ~src:1 ~dst:2 = Tango.Overlay.Direct);
  Mesh.start_measurement mesh ~for_s:10.0 ();
  Mesh.run_for mesh 10.5;
  (* Live measurements agree with the calibration. *)
  Alcotest.(check bool) "NY->LA measured ~28" true
    (abs_float (Mesh.measured_owd_ms mesh ~src:1 ~dst:0 -. 28.0) < 1.0);
  Alcotest.(check bool) "CHI->LA measured ~60" true
    (abs_float (Mesh.measured_owd_ms mesh ~src:2 ~dst:0 -. 60.4) < 1.0);
  Mesh.plan_routes mesh;
  Alcotest.(check bool) "relay survives live data" true
    (Mesh.route mesh ~src:2 ~dst:0 = Tango.Overlay.Relay [ 1 ])

let test_mesh_live_relay () =
  let mesh = Mesh.setup_triangle ~seed:23 () in
  Mesh.start_measurement mesh ~for_s:15.0 ();
  Mesh.run_for mesh 3.0;
  Mesh.plan_routes mesh;
  (* 100 app packets CHI -> LA over the planned (relayed) route. *)
  let engine = Tango_sim.Engine.now (Pop.engine_of (Mesh.pop mesh ~src:2 ~dst:0)) in
  ignore engine;
  for _ = 1 to 100 do
    Mesh.send_app mesh ~src:2 ~dst:0 ()
  done;
  Mesh.run_for mesh 2.0;
  Alcotest.(check int) "all delivered at LA" 100 (Mesh.app_received_at mesh ~site:0);
  Alcotest.(check int) "NY relayed them" 100 (Mesh.transited_at mesh ~site:1);
  (* End-to-end latency spans both segments: ~38.5 ms, far below the
     60.4 ms direct detour. *)
  let lat = Mesh.app_latency_at mesh ~site:0 in
  Alcotest.(check bool)
    (Printf.sprintf "relayed latency ~38.5ms (got %.1f)" (lat.Tango_sim.Stats.p50 *. 1000.0))
    true
    (lat.Tango_sim.Stats.p50 > 0.036 && lat.Tango_sim.Stats.p50 < 0.041)

let test_mesh_replans_around_dead_relay () =
  (* The CHI->NY segment blackholes mid-run: the relay route through NY
     becomes useless and a replan must fall back to the (slow but alive)
     direct CHI->LA transit. *)
  let mesh = Mesh.setup_triangle ~seed:25 () in
  Mesh.start_measurement mesh ~for_s:20.0 ();
  Mesh.run_for mesh 3.0;
  Mesh.plan_routes mesh;
  Alcotest.(check bool) "initially relays" true
    (Mesh.route mesh ~src:2 ~dst:0 = Tango.Overlay.Relay [ 1 ]);
  (* Kill the link carrying CHI -> NY traffic (EastNet's handoff to the
     NY site); probes on that segment stop arriving, its stats go stale. *)
  Tango_dataplane.Fabric.fail_link (Mesh.fabric mesh)
    ~from_node:Overlay.Triangle.eastnet ~to_node:Vultr.vultr_ny;
  Mesh.run_for mesh 6.0;
  Alcotest.(check bool) "segment now unusable" true
    (Mesh.measured_owd_ms mesh ~src:2 ~dst:1 = infinity);
  Mesh.plan_routes mesh;
  Alcotest.(check bool) "replanned to direct" true
    (Mesh.route mesh ~src:2 ~dst:0 = Tango.Overlay.Direct)

let test_mesh_direct_unaffected () =
  let mesh = Mesh.setup_triangle ~seed:24 () in
  Mesh.start_measurement mesh ~for_s:10.0 ();
  Mesh.run_for mesh 3.0;
  Mesh.plan_routes mesh;
  for _ = 1 to 50 do
    Mesh.send_app mesh ~src:1 ~dst:0 ()
  done;
  Mesh.run_for mesh 1.0;
  Alcotest.(check int) "direct delivery" 50 (Mesh.app_received_at mesh ~site:0);
  Alcotest.(check int) "nothing relayed" 0 (Mesh.transited_at mesh ~site:2);
  let lat = Mesh.app_latency_at mesh ~site:0 in
  Alcotest.(check bool) "direct ~28ms" true
    (lat.Tango_sim.Stats.p50 > 0.027 && lat.Tango_sim.Stats.p50 < 0.030)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "tango_core"
    [
      ( "addressing",
        [
          tc "carve shape" `Quick test_carve_shape;
          tc "sites disjoint" `Quick test_carve_sites_disjoint;
          tc "limits" `Quick test_carve_limits;
          tc "endpoints" `Quick test_tunnel_endpoint_membership;
        ] );
      ( "discovery",
        [
          tc "LA->NY (Fig 3)" `Quick test_discovery_la_to_ny;
          tc "NY->LA (Fig 3)" `Quick test_discovery_ny_to_la;
          tc "withdraws probe" `Quick test_discovery_withdraws_probe;
          tc "max paths" `Quick test_discovery_max_paths;
          tc "poisoning mechanism" `Quick test_discovery_by_poisoning;
          tc "single-homed chain" `Quick test_discovery_single_homed_chain;
        ] );
      ( "policy",
        [
          tc "bgp default" `Quick test_policy_bgp_default;
          tc "static" `Quick test_policy_static;
          tc "lowest owd" `Quick test_policy_lowest_owd_switches;
          tc "hysteresis" `Quick test_policy_hysteresis_blocks_small_win;
          tc "dwell" `Quick test_policy_dwell_blocks_flapping;
          tc "jitter aware" `Quick test_policy_jitter_aware;
          tc "loss failover" `Quick test_policy_loss_failover;
          tc "staleness failover" `Quick test_policy_staleness_failover;
          tc "no failover without alternative" `Quick test_policy_no_failover_without_alternative;
          tc "fallback" `Quick test_policy_no_measurements_fallback;
        ] );
      ( "ecmp_map",
        [
          tc "cluster" `Quick test_ecmp_map_cluster;
          tc "cluster single" `Quick test_ecmp_map_cluster_single;
          tc "infer" `Quick test_ecmp_map_infer;
          tc "probe end-to-end" `Quick test_ecmp_map_probe_end_to_end;
        ] );
      ( "stream",
        [
          tc "invalid args" `Quick test_stream_invalid_args;
          tc "pop bounds" `Quick test_pop_bounds;
          tc "basic transfer" `Slow test_stream_basic_transfer;
          tc "recovers from blackhole" `Slow test_stream_recovers_from_blackhole;
        ] );
      ( "config",
        [
          tc "parse" `Quick test_config_parse;
          tc "roundtrip" `Quick test_config_roundtrip;
          tc "defaults" `Quick test_config_defaults;
          tc "errors" `Quick test_config_errors;
          tc "apply" `Quick test_config_apply;
          tc "apply needs both sites" `Quick test_config_apply_needs_both_sites;
          tc "parse_file missing" `Quick test_config_parse_file_missing;
        ] );
      ( "mesh",
        [
          tc "setup" `Quick test_mesh_setup;
          tc "measurement and planning" `Slow test_mesh_measurement_and_planning;
          tc "replans around dead relay" `Slow test_mesh_replans_around_dead_relay;
          tc "live relay" `Slow test_mesh_live_relay;
          tc "direct unaffected" `Slow test_mesh_direct_unaffected;
        ] );
      ( "pair",
        [
          tc "setup paths" `Quick test_pair_setup_paths;
          tc "measurement plane" `Slow test_pair_measurement_plane;
          tc "reports flow" `Slow test_pair_reports_flow;
          tc "policy converges to GTT" `Slow test_pair_policy_converges_to_gtt;
          tc "silent blackhole failover" `Slow test_pair_silent_blackhole_failover;
          tc "probe accounting" `Slow test_pair_probe_accounting;
          tc "generic topology" `Quick test_pair_generic_topology;
        ] );
    ]
