type t = int list

let empty = []

let of_list l = l

let to_list t = t

let length = List.length

let prepend t asn = asn :: t

let prepend_n t asn n =
  if n < 0 then invalid_arg "As_path.prepend_n: negative count";
  let rec go acc n = if n = 0 then acc else go (asn :: acc) (n - 1) in
  go t n

let contains t asn = List.mem asn t

let rec origin_as = function
  | [] -> None
  | [ asn ] -> Some asn
  | _ :: rest -> origin_as rest

let first_hop = function [] -> None | asn :: _ -> Some asn

let neighbor_of_origin t =
  (* Walk from the origin end, skipping prepended repeats of the origin
     ASN; the first differing ASN is the origin's neighbor. Done from the
     tail because with Tango both ends may share the provider ASN, so the
     head of the path can legitimately equal the origin. *)
  match List.rev t with
  | [] -> None
  | origin :: rest ->
      let rec skip = function
        | x :: more when x = origin -> skip more
        | x :: _ -> Some x
        | [] -> None
      in
      skip rest

let poison t asn =
  match List.rev t with
  | [] -> [ asn ]
  | origin :: rest -> List.rev (origin :: asn :: rest)

let is_private asn = asn >= 64512 && asn <= 65534

let strip_private t = List.filter (fun asn -> not (is_private asn)) t

let equal = List.equal Int.equal

let compare = List.compare Int.compare

let to_string t = String.concat " " (List.map string_of_int t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
