lib/bgp/decision.ml: As_path Bool Int List Route
