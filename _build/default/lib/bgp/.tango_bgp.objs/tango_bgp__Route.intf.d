lib/bgp/route.mli: As_path Community Format Tango_net
