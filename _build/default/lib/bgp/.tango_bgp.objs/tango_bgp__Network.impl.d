lib/bgp/network.ml: Hashtbl List Option Printf Route Speaker Tango_net Tango_sim Tango_topo Update
