lib/bgp/community.ml: Format Int List Printf Stdlib String
