lib/bgp/community.mli: Format Stdlib
