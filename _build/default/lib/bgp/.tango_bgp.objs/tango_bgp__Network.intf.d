lib/bgp/network.mli: As_path Community Route Speaker Tango_net Tango_sim Tango_topo
