lib/bgp/speaker.mli: Community Route Tango_net Tango_topo Update
