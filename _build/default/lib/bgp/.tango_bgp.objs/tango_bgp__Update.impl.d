lib/bgp/update.ml: Format Route Tango_net
