lib/bgp/route.ml: As_path Community Format List Option String Tango_net
