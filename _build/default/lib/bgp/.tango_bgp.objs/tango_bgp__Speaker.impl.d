lib/bgp/speaker.ml: As_path Community Decision Hashtbl List Option Printf Route Tango_net Tango_topo Update
