lib/bgp/as_path.ml: Format Int List String
