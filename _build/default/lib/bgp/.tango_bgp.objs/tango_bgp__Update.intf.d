lib/bgp/update.mli: Format Route Tango_net
