let compare (a : Route.t) (b : Route.t) =
  let by f cmp rest = match cmp (f a) (f b) with 0 -> rest () | c -> c in
  by Route.local
    (fun x y -> Bool.compare y x)
    (fun () ->
      by
        (fun r -> r.Route.local_pref)
        (fun x y -> Int.compare y x)
        (fun () ->
          by
            (fun r -> As_path.length r.Route.path)
            Int.compare
            (fun () ->
              by
                (fun r -> r.Route.neighbor_weight)
                (fun x y -> Int.compare y x)
                (fun () ->
                  by
                    (fun r -> Route.origin_rank r.Route.origin)
                    Int.compare
                    (fun () ->
                      by
                        (fun r -> r.Route.med)
                        Int.compare
                        (fun () ->
                          Int.compare a.Route.next_hop b.Route.next_hop))))))

let best = function
  | [] -> None
  | candidates -> Some (List.fold_left (fun acc r -> if compare r acc < 0 then r else acc) (List.hd candidates) candidates)

let rank candidates = List.sort compare candidates
