(** BGP communities (RFC 1997) and the provider "action communities"
    Tango leans on.

    A community is a 32-bit value written [asn:value]. Transit providers
    such as Vultr's AS 20473 publish action communities their customers
    can attach to shape the provider's outbound announcements; the ones
    modelled here follow Vultr's BGP customer guide: suppress export to a
    specific AS, export only to a specific AS, prepend on export to a
    specific AS, and do-not-export-to-any-transit. Only the provider that
    owns the action namespace interprets them — everyone else carries
    them transparently, which is what lets a Tango endpoint steer a
    remote provider's announcements. *)

type t = int * int
(** [(upper, lower)], each 16-bit. *)

val v : int -> int -> t
(** Raises [Invalid_argument] when either half exceeds 16 bits. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit

module Set : Stdlib.Set.S with type elt = t

(** Provider-interpreted actions. The [int] argument names a neighbor ASN
    of the interpreting provider. *)
type action =
  | No_export_to of int  (** Do not announce to this neighbor AS. *)
  | Export_only_to of int  (** Announce only to this neighbor AS. *)
  | Prepend_to of int * int  (** [(asn, n)]: prepend n times (1-3) to asn. *)
  | No_export_transit  (** Do not announce to any transit provider. *)

val action_to_community : action -> t
val action_of_community : t -> action option
(** Inverse of {!action_to_community}; [None] for ordinary communities. *)

val actions_of_set : Set.t -> action list
(** All decodable actions carried in a community set, in community
    order. *)

val no_export_well_known : t
(** RFC 1997 NO_EXPORT (65535:65281). *)
