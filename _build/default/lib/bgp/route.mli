(** A BGP route: a prefix plus its path attributes, with the local
    (non-transitive) attributes the decision process needs. *)

type origin = Igp | Egp | Incomplete

val origin_rank : origin -> int
(** Lower is preferred: IGP 0, EGP 1, INCOMPLETE 2. *)

type t = {
  prefix : Tango_net.Prefix.t;
  path : As_path.t;
  next_hop : int;  (** Node id of the advertising router; own id if local. *)
  learned_from : int option;  (** Neighbor node id; [None] = originated here. *)
  local_pref : int;
  neighbor_weight : int;
      (** Operator preference among otherwise-equal neighbors; a late
          tie-break (after path length) in our decision process —
          reproducing the transit ordering the paper observed at Vultr. *)
  med : int;
  origin : origin;
  communities : Community.Set.t;
}

val make :
  prefix:Tango_net.Prefix.t ->
  path:As_path.t ->
  next_hop:int ->
  ?learned_from:int ->
  ?local_pref:int ->
  ?neighbor_weight:int ->
  ?med:int ->
  ?origin:origin ->
  ?communities:Community.Set.t ->
  unit ->
  t

val local : t -> bool
val has_community : t -> Community.t -> bool
val pp : Format.formatter -> t -> unit
