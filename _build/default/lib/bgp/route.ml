type origin = Igp | Egp | Incomplete

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

type t = {
  prefix : Tango_net.Prefix.t;
  path : As_path.t;
  next_hop : int;
  learned_from : int option;
  local_pref : int;
  neighbor_weight : int;
  med : int;
  origin : origin;
  communities : Community.Set.t;
}

let make ~prefix ~path ~next_hop ?learned_from ?(local_pref = 100)
    ?(neighbor_weight = 0) ?(med = 0) ?(origin = Igp)
    ?(communities = Community.Set.empty) () =
  {
    prefix;
    path;
    next_hop;
    learned_from;
    local_pref;
    neighbor_weight;
    med;
    origin;
    communities;
  }

let local t = Option.is_none t.learned_from

let has_community t c = Community.Set.mem c t.communities

let pp ppf t =
  Format.fprintf ppf "%a via node %d path [%a] lp=%d w=%d%s"
    Tango_net.Prefix.pp t.prefix t.next_hop As_path.pp t.path t.local_pref
    t.neighbor_weight
    (if Community.Set.is_empty t.communities then ""
     else
       " comm {"
       ^ String.concat ","
           (List.map Community.to_string (Community.Set.elements t.communities))
       ^ "}")
