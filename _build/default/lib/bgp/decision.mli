(** The BGP route decision process.

    Standard ordering with one documented deviation: the per-neighbor
    operator weight is compared {e after} AS-path length rather than
    first (as Cisco's [weight] would be). This reproduces the behaviour
    the paper observed at Vultr: direct transit paths beat two-transit
    paths regardless of which transit carries them, and the NTT > Telia >
    GTT ordering only breaks ties among equal-length paths. *)

val compare : Route.t -> Route.t -> int
(** Negative when the first route is preferred. Total order:
    local routes first, then higher local-pref, shorter AS path, higher
    neighbor weight, lower origin rank, lower MED, lower advertising
    node id. *)

val best : Route.t list -> Route.t option

val rank : Route.t list -> Route.t list
(** All candidates, most preferred first. *)
