type t = Announce of Route.t | Withdraw of Tango_net.Prefix.t

let pp ppf = function
  | Announce r -> Format.fprintf ppf "announce %a" Route.pp r
  | Withdraw p -> Format.fprintf ppf "withdraw %a" Tango_net.Prefix.pp p

type emission = { to_node : int; update : t }
