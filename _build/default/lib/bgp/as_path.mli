(** AS paths: the sequence of ASNs a route has traversed, most recently
    prepended AS first (so the origin AS is last). *)

type t

val empty : t
(** Path of a locally originated route before any export. *)

val of_list : int list -> t
val to_list : t -> int list

val length : t -> int
(** Number of hops, counting repeated (prepended) ASNs individually —
    this is the length BGP's decision process compares. *)

val prepend : t -> int -> t
val prepend_n : t -> int -> int -> t
(** [prepend_n t asn n] prepends [asn] [n] times. *)

val contains : t -> int -> bool
val origin_as : t -> int option
(** Last (oldest) ASN. *)

val first_hop : t -> int option
(** Most recently prepended ASN. *)

val neighbor_of_origin : t -> int option
(** The ASN adjacent to the origin — for Tango discovery, the provider's
    neighbor that must be suppressed next. [None] for paths with fewer
    than two distinct positions. *)

val poison : t -> int -> t
(** [poison t asn] inserts [asn] before the origin so that AS [asn] will
    reject the route by loop detection (AS-path poisoning, §3). *)

val strip_private : t -> t
(** Remove private ASNs (64512–65534, and 4200000000+ which cannot occur
    in our 16-bit world) — what Vultr does to its customers' private
    session ASNs. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
