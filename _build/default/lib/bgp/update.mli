(** BGP update messages as they travel between speakers. *)

type t =
  | Announce of Route.t
      (** Route as placed on the wire: path already prepended by the
          sender; local attributes (local-pref, weight) are meaningless
          until the receiver's import policy assigns them. *)
  | Withdraw of Tango_net.Prefix.t

val pp : Format.formatter -> t -> unit

type emission = { to_node : int; update : t }
(** An update a speaker wants delivered to a neighbor. *)
