(** "From Tango of 2 to Tango of N" (§6): treat pairwise Tango
    deployments as building blocks of a RON-like overlay, where a PoP may
    reach another via an intermediate PoP when the relayed segments
    outperform every direct wide-area path.

    The overlay plans routes over a matrix of measured per-segment
    one-way delays; relaying costs a configurable per-hop processing
    overhead (decapsulate, look up, re-encapsulate). *)

type route =
  | Direct
  | Relay of int list  (** Intermediate PoP indices, in order. *)

val pp_route : Format.formatter -> route -> unit

type plan = {
  src : int;
  dst : int;
  route : route;
  owd_ms : float;  (** Predicted one-way delay of the chosen route. *)
  direct_ms : float;  (** Best direct delay, for comparison. *)
}

val plan_routes :
  owd_ms:(src:int -> dst:int -> float) ->
  ?relay_overhead_ms:float ->
  ?max_relays:int ->
  sites:int ->
  unit ->
  plan list
(** Compute, for every ordered pair of the [sites] PoPs, the best route
    using up to [max_relays] (default 1) intermediate PoPs. [owd_ms]
    gives the measured best direct delay of each segment ([infinity]
    when two sites have no direct connectivity). [relay_overhead_ms]
    defaults to 0.1. Raises [Invalid_argument] when [sites < 2] or
    [max_relays] is not 1 or 2. *)

val gain_ms : plan -> float
(** [direct_ms - owd_ms]: how much the overlay saves (0 for direct). *)

(** A ready-made N=3 topology for experiments: the Vultr pair plus a
    third site ("CHI") whose direct connectivity to LA is deliberately
    poor (single congested transit), so relaying through NY wins. *)
module Triangle : sig
  val server_chi : int

  val eastnet : int
  (** The regional transit connecting CHI and NY (fast). *)

  val slownet : int
  (** The only transit serving CHI–LA directly. *)

  val build : unit -> Tango_topo.Topology.t
  (** Extends {!Tango_topo.Vultr.build} with the third site. *)

  val static_owd_ms :
    Tango_bgp.Network.t -> src:int -> dst:int -> float
  (** Sum of link propagation delays along the converged BGP forwarding
      path between two server nodes' host addresses — the floor OWD a
      Tango pair would measure on the default path. [infinity] when
      unroutable. Host prefixes must have been announced already. *)

  val host_prefix : site:int -> Tango_net.Prefix.t
  (** The host prefix {!announce_hosts} uses for a server node. *)

  val announce_hosts : Tango_bgp.Network.t -> unit
  (** Announce a host prefix from each of the three servers and
      converge. *)
end
