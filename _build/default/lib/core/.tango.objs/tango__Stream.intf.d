lib/core/stream.mli: Pop
