lib/core/mesh.ml: Addressing Array Discovery Float Hashtbl List Overlay Policy Pop Printf Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_telemetry Tango_topo
