lib/core/policy.mli:
