lib/core/config.ml: Addressing Buffer Int64 List Pair Policy Printf String Tango_net
