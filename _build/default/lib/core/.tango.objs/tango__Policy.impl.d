lib/core/policy.ml: Array Float Printf
