lib/core/addressing.ml: Int64 List Printf Tango_net
