lib/core/overlay.ml: Addressing Float Format Fun List Printf String Tango_bgp Tango_net Tango_topo
