lib/core/addressing.mli: Tango_net
