lib/core/mesh.mli: Discovery Overlay Policy Pop Tango_dataplane Tango_sim
