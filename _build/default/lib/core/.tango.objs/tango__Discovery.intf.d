lib/core/discovery.mli: Format Tango_bgp Tango_net
