lib/core/pair.mli: Discovery Policy Pop Tango_bgp Tango_dataplane Tango_sim Tango_topo Tango_workload
