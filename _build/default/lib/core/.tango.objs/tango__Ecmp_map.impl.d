lib/core/ecmp_map.ml: Float Hashtbl List Option Tango_bgp Tango_dataplane Tango_net Tango_sim
