lib/core/pop.ml: Addressing Array Discovery Int64 List Option Policy Printf Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_telemetry Tango_workload
