lib/core/overlay.mli: Format Tango_bgp Tango_net Tango_topo
