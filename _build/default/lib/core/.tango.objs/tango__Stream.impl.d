lib/core/stream.ml: Float Hashtbl List Pop Tango_net Tango_sim Tango_workload
