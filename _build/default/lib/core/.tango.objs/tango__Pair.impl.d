lib/core/pair.ml: Addressing Discovery List Option Policy Pop Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_topo Tango_workload
