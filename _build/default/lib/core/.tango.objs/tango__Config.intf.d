lib/core/config.mli: Pair Policy Tango_net
