lib/core/discovery.ml: Format List String Tango_bgp Tango_net Tango_topo
