lib/core/ecmp_map.mli: Tango_dataplane Tango_net
