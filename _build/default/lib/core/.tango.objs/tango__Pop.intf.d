lib/core/pop.mli: Addressing Discovery Policy Tango_dataplane Tango_net Tango_sim Tango_telemetry
