module Prefix = Tango_net.Prefix

type plan = {
  site_index : int;
  host_prefix : Prefix.t;
  tunnel_prefixes : Prefix.t list;
}

let max_paths_per_site = 15

let default_block = Prefix.of_string_exn "2001:db8:4000::/34"

let carve ~block ~site_index ~path_count =
  if path_count < 0 || path_count > max_paths_per_site then
    invalid_arg
      (Printf.sprintf "Addressing.carve: path_count %d outside [0,%d]"
         path_count max_paths_per_site);
  if site_index < 0 then invalid_arg "Addressing.carve: negative site index";
  (* Site i owns subnet indices [16i, 16i+15]; subnets take 16 extra bits
     so a /32 block yields /48s, as in the paper's deployment. *)
  let base = 16 * site_index in
  let subnet i = Prefix.subnet block 16 (base + i) in
  {
    site_index;
    host_prefix = subnet 0;
    tunnel_prefixes = List.init path_count (fun i -> subnet (i + 1));
  }

let host_address plan i = Prefix.nth_address plan.host_prefix (Int64.add 0x10L i)

let tunnel_endpoint plan ~path =
  match List.nth_opt plan.tunnel_prefixes path with
  | Some p -> Prefix.nth_address p 1L
  | None ->
      invalid_arg
        (Printf.sprintf "Addressing.tunnel_endpoint: no tunnel prefix for path %d" path)
