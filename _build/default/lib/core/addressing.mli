(** Address-plan carving (§3: "Tango separates edge-network addressing
    from interdomain prefixes").

    Each Tango site draws from a common institution block (the paper used
    a Princeton IPv6 allocation) one {b host prefix} — announced plainly,
    used to address applications — and one {b tunnel prefix per
    wide-area path}, each announced with the community set that pins it
    to that path. Prefixes in Tango name routes, not destinations. *)

type plan = {
  site_index : int;
  host_prefix : Tango_net.Prefix.t;
  tunnel_prefixes : Tango_net.Prefix.t list;
}

val max_paths_per_site : int
(** 15: a site occupies a 16-subnet slice of the block. *)

val carve : block:Tango_net.Prefix.t -> site_index:int -> path_count:int -> plan
(** [carve ~block ~site_index ~path_count] — subnets are /48s when
    [block] is the default /32-style IPv6 block (16 extra bits are always
    used, whatever the block length). Raises [Invalid_argument] when
    [path_count > max_paths_per_site] or the block is too small. *)

val default_block : Tango_net.Prefix.t
(** [2001:db8:4000::/34] — a documentation-range stand-in for the
    institution's allocation. *)

val host_address : plan -> int64 -> Tango_net.Addr.t
(** [host_address plan i] — the i-th host in the site's host prefix. *)

val tunnel_endpoint : plan -> path:int -> Tango_net.Addr.t
(** The address a peer targets to ride path [path] toward this site
    (the ::1 of the corresponding tunnel prefix). *)
