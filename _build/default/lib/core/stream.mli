(** A reliable in-order byte stream over a Tango pair — the transport
    model behind §5's claim that a single delayed packet stalls a TCP
    application ("future application packets will be delivered
    out-of-order, resulting in a reduction in TCP throughput").

    The sender keeps a fixed window of segments in flight, retransmits
    go-back-N on an RTO estimated Jacobson-style (SRTT + 4·RTTVAR), and
    the receiver delivers in order and returns cumulative ACKs. Segments
    ride the PoPs' stream port: path selection follows the sender PoP's
    live policy (or a pinned tunnel), so the same transport can be
    compared across routing policies. *)

type t

val start :
  sender:Pop.t ->
  receiver:Pop.t ->
  ?window:int ->
  ?segment_bytes:int ->
  ?route:[ `Policy | `Path of int ] ->
  ?min_rto_s:float ->
  total_segments:int ->
  unit ->
  t
(** Begin transferring [total_segments] segments from [sender] to
    [receiver] (both must already be wired). Defaults: window 32,
    segments of 1200 B, [`Policy] routing, 50 ms RTO floor. The transfer
    progresses as the simulation runs. *)

val finished : t -> bool
(** All segments delivered in order and acknowledged. *)

val completed_at : t -> float option
(** Virtual time when the transfer finished. *)

val delivered_segments : t -> int
(** Segments the receiver has released in order so far. *)

val retransmissions : t -> int
val timeouts : t -> int

val goodput_mbps : t -> float
(** In-order delivered payload divided by elapsed transfer time (from
    first send to completion, or to "now" while running). [0.] before
    any delivery. *)

val srtt_s : t -> float
(** Current smoothed RTT estimate; [nan] before the first sample. *)

val max_stall_s : t -> float
(** Longest gap between consecutive in-order deliveries at the receiver
    — §5's head-of-line figure of merit for the application. *)
