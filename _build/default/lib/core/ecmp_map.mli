(** ECMP reverse engineering (§6: "worth being automated using more
    knobs such as AS-path poisoning, ECMP reverse engineering etc.").

    A transit that load-balances internally exposes one delay floor per
    internal lane. By probing many distinct 5-tuples toward the same
    destination and clustering each flow's minimum observed delay, a
    Tango endpoint can estimate how many lanes the default path hides
    and how far apart they are — useful both to pick good tunnel ports
    and to know how much variance a non-tunneled service would suffer. *)

type lane = {
  offset_ms : float;  (** Delay floor relative to the fastest lane. *)
  flows : int;  (** Probe flows that hashed onto this lane. *)
}

type t = {
  lanes : lane list;  (** Sorted by offset, fastest first. *)
  spread_ms : float;  (** Offset of the slowest lane. *)
}

val cluster : tolerance_ms:float -> float list -> (float * int) list
(** Greedy 1-D clustering: sorted values within [tolerance_ms] of the
    running cluster mean merge; returns (mean, size) per cluster in
    ascending order. *)

val infer : tolerance_ms:float -> (int * float) list -> t
(** [infer ~tolerance_ms floors] from per-flow (flow id, min delay ms)
    observations. Raises [Invalid_argument] on an empty list. *)

val probe :
  fabric:Tango_dataplane.Fabric.t ->
  from_node:int ->
  src:Tango_net.Addr.t ->
  dst:Tango_net.Addr.t ->
  ?flows:int ->
  ?probes_per_flow:int ->
  ?interval_s:float ->
  ?tolerance_ms:float ->
  unit ->
  t
(** Active measurement: send [flows] distinct-port probe flows (default
    64) with [probes_per_flow] packets each (default 10), then infer the
    lane structure from the per-flow floors. Runs the engine until the
    probes drain. *)
