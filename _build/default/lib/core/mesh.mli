(** A live Tango-of-N overlay (§6) built from pairwise Tango deployments.

    Every ordered pair of sites runs the full pairwise machinery — its
    own discovery, per-pair tunnel prefixes announced by the destination,
    a {!Pop} with tunnels, probes and peer reports — and the overlay
    layer adds RON-style relaying on top: an overlay route may traverse
    an intermediate site, whose PoP decapsulates, recognizes a foreign
    inner destination, and re-encapsulates onto its own best path toward
    the final site. End-to-end latency spans the whole overlay route
    because relayed packets keep their identity and creation time. *)

type t

val setup_triangle :
  ?seed:int ->
  ?policy:Policy.spec ->
  ?relay_overhead_ms:float ->
  unit ->
  t
(** Build the three-site topology of {!Overlay.Triangle} (LA, NY, CHI —
    with CHI's only direct transit to LA taking a long detour), run
    discovery for all six ordered pairs, announce per-pair tunnel
    prefixes plus one host prefix per site, and instantiate the six
    PoPs. Default policy: [Lowest_owd] (hysteresis 1 ms, dwell 1 s). *)

val sites : t -> int
val site_name : t -> int -> string
val fabric : t -> Tango_dataplane.Fabric.t

val pop : t -> src:int -> dst:int -> Pop.t
(** The PoP at site [src] facing site [dst]. Raises [Invalid_argument]
    for unknown or equal indices. *)

val paths : t -> src:int -> dst:int -> Discovery.path list
(** Discovery result for traffic [src] → [dst]. *)

val start_measurement :
  t ->
  ?probe_interval_s:float ->
  ?report_interval_s:float ->
  for_s:float ->
  unit ->
  unit
(** Start probe trains and reports on every PoP. *)

val run_for : t -> float -> unit

val measured_owd_ms : t -> src:int -> dst:int -> float
(** Best live smoothed OWD over the pair's paths, as reported back to
    [src]; falls back to the discovery floor before measurements
    arrive. *)

val plan_routes : t -> unit
(** Recompute overlay routes for every ordered pair from the current
    measured segment delays. *)

val route : t -> src:int -> dst:int -> Overlay.route
(** Current overlay route ([Direct] until {!plan_routes} finds better). *)

val send_app : t -> src:int -> dst:int -> ?payload_bytes:int -> unit -> unit
(** Send one application packet along the current overlay route. *)

val app_received_at : t -> site:int -> int
(** Application packets delivered to hosts at a site (over all its
    PoPs). *)

val app_latency_at : t -> site:int -> Tango_sim.Stats.summary
(** End-to-end latency of app packets received at the site, merged over
    its PoPs (true virtual-time latency, relay hops included). *)

val transited_at : t -> site:int -> int
(** Packets the site relayed onward for other pairs. *)
