(** Deployment configuration files.

    The paper's prototype "generated static configurations for tunnel
    endpoints" next to hand-written BIRD configs; this module gives the
    reproduction the same operational surface: a small BIRD-style text
    format describing a two-site deployment — the address block, the
    measurement cadence, and per-site clock offsets and routing policies
    — that parses into a validated {!t} and applies directly onto the
    Vultr scenario.

    {v
    # tango.conf
    block 2001:db8:4000::/34;

    measurement {
      probe-interval 0.010;
      report-interval 0.100;
    }

    site "LA" {
      clock-offset-ns 37000000;
      policy lowest-owd { hysteresis-ms 1.0; dwell-s 2.0; }
    }

    site "NY" {
      clock-offset-ns -12000000;
      policy jitter-aware { beta 5.0; hysteresis-ms 1.0; dwell-s 2.0; }
    }
    v}

    Comments run from [#] to end of line. Policies: [bgp-default],
    [static N], [lowest-owd { ... }], [jitter-aware { ... }]. *)

type site = {
  name : string;
  clock_offset_ns : int64;
  policy : Policy.spec;
}

type t = {
  block : Tango_net.Prefix.t;
  probe_interval_s : float;
  report_interval_s : float;
  sites : site list;
}

val default : t
(** The paper deployment: default block, 10 ms probes, 100 ms reports,
    sites LA/NY with the deliberate clock skews and lowest-OWD policy. *)

val parse : string -> (t, string) result
(** Parse a configuration text; errors carry a line number. Unspecified
    fields take their {!default}s; sites must have unique names. *)

val parse_file : string -> (t, string) result

val to_string : t -> string
(** Render back to the concrete syntax ([parse (to_string t)] succeeds
    and yields an equal configuration). *)

val apply_vultr : t -> (Pair.t, string) result
(** Instantiate the two-site Vultr deployment from a configuration with
    exactly two sites named ["LA"] and ["NY"] (in any order). The pair is
    fully set up (discovery done); measurement must still be started
    with the configured cadence, see {!measurement_args}. *)

val measurement_args : t -> float * float
(** [(probe_interval_s, report_interval_s)]. *)
