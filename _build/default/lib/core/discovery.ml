module Network = Tango_bgp.Network
module Community = Tango_bgp.Community
module As_path = Tango_bgp.As_path
module Topology = Tango_topo.Topology

type mechanism = [ `Communities | `Poisoning ]

type path = {
  index : int;
  communities : Community.Set.t;
  poisons : int list;
  as_path : As_path.t;
  transits : int list;
  label : string;
  floor_owd_ms : float;
}

let pp_path ppf p =
  Format.fprintf ppf "path %d (%s): [%a] via communities {%s}" p.index p.label
    As_path.pp p.as_path
    (String.concat ","
       (List.map Community.to_string (Community.Set.elements p.communities)))

type result = {
  paths : path list;
  iterations : int;
  convergence_time_s : float;
  messages : int;
}

(* The ASNs of the providers fronting a server: stripped from observed
   paths to leave the transit sequence. *)
let provider_asns net node =
  let topo = Network.topology net in
  List.map (fun p -> Topology.asn topo p) (Topology.providers topo node)

let static_floor_ms net ~observer ~probe_prefix =
  let topo = Network.topology net in
  let addr = Tango_net.Prefix.nth_address probe_prefix 1L in
  match Network.forwarding_path net ~from_node:observer addr with
  | None -> infinity
  | Some nodes ->
      let rec sum = function
        | a :: (b :: _ as rest) -> (
            match Topology.link topo a b with
            | Some l -> l.Tango_topo.Link.delay_ms +. sum rest
            | None -> infinity)
        | [ _ ] | [] -> 0.0
      in
      sum nodes

let dedup_consecutive l =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = b then go rest else a :: go rest
    | ([ _ ] | []) as tail -> tail
  in
  go l

let run ~net ~origin ~observer ~probe_prefix ?(mechanism = `Communities)
    ?(max_paths = 16) ?(transit_namer = Tango_topo.Vultr.transit_name) () =
  let strip = provider_asns net origin @ provider_asns net observer in
  let messages_before = Network.messages_delivered net in
  let time_spent = ref 0.0 in
  let iterations = ref 0 in
  let communities_of suppressed =
    Community.Set.of_list
      (List.map
         (fun asn -> Community.action_to_community (Community.No_export_to asn))
         suppressed)
  in
  let rec explore suppressed acc index =
    if index >= max_paths then List.rev acc
    else begin
      let communities =
        match mechanism with
        | `Communities -> communities_of suppressed
        | `Poisoning -> Community.Set.empty
      in
      let poison = match mechanism with `Communities -> [] | `Poisoning -> suppressed in
      Network.announce net ~node:origin probe_prefix ~communities ~poison ();
      time_spent := !time_spent +. Network.converge net;
      incr iterations;
      match Network.as_path net ~node:observer probe_prefix with
      | None -> List.rev acc
      | Some as_path when
          List.exists (fun p -> As_path.equal p.as_path as_path) acc ->
          (* Suppression had no effect (e.g. the provider does not honor
             the community): the path is not new, stop. *)
          List.rev acc
      | Some as_path ->
          (* Under poisoning, the poisoned ASNs ride in the announced
             path itself; scrub them before reading the transit
             sequence or picking the next target. *)
          let effective_path =
            match mechanism with
            | `Communities -> as_path
            | `Poisoning ->
                As_path.of_list
                  (List.filter
                     (fun asn -> not (List.mem asn suppressed))
                     (As_path.to_list as_path))
          in
          let transits =
            As_path.to_list effective_path
            |> List.filter (fun asn -> not (List.mem asn strip))
            |> dedup_consecutive
          in
          let label =
            match List.rev transits with
            | [] -> "direct"
            | distinguishing :: _ -> transit_namer distinguishing
          in
          let found =
            {
              index;
              communities;
              poisons = poison;
              as_path;
              transits;
              label;
              floor_owd_ms = static_floor_ms net ~observer ~probe_prefix;
            }
          in
          (* The next knob: suppress (or poison) the transit adjacent to
             the origin on the path just observed. When the origin's
             private ASN was stripped and only one provider hop remains,
             the provider itself is the knob — suppressing it is the
             "selective announcement" a multi-homed Tango site performs
             on its own exports. *)
          let next_target =
            match As_path.neighbor_of_origin effective_path with
            | Some n -> Some n
            | None -> As_path.origin_as effective_path
          in
          (match next_target with
          | None -> List.rev (found :: acc)
          | Some next ->
              if List.mem next suppressed then List.rev (found :: acc)
              else explore (suppressed @ [ next ]) (found :: acc) (index + 1))
    end
  in
  let paths = explore [] [] 0 in
  Network.withdraw net ~node:origin probe_prefix;
  time_spent := !time_spent +. Network.converge net;
  {
    paths;
    iterations = !iterations;
    convergence_time_s = !time_spent;
    messages = Network.messages_delivered net - messages_before;
  }
