type t = {
  mutable next_seq : int;
  buffer : (int, float) Hashtbl.t;  (* out-of-order arrivals *)
  arrivals : (int, float) Hashtbl.t;
  releases : (int, float) Hashtbl.t;
  mutable released : int;
}

let create () =
  {
    next_seq = 0;
    buffer = Hashtbl.create 64;
    arrivals = Hashtbl.create 64;
    releases = Hashtbl.create 64;
    released = 0;
  }

let arrival t ~seq ~time =
  if seq < t.next_seq || Hashtbl.mem t.buffer seq then []
  else begin
    Hashtbl.replace t.arrivals seq time;
    Hashtbl.replace t.buffer seq time;
    if seq > t.next_seq then []
    else begin
      (* This arrival fills the head: release the contiguous run. *)
      let rec release acc =
        match Hashtbl.find_opt t.buffer t.next_seq with
        | None -> List.rev acc
        | Some _ ->
            Hashtbl.remove t.buffer t.next_seq;
            Hashtbl.replace t.releases t.next_seq time;
            t.released <- t.released + 1;
            let this = t.next_seq in
            t.next_seq <- this + 1;
            release ((this, time) :: acc)
      in
      release []
    end
  end

let released t = t.released

let pending t = Hashtbl.length t.buffer

let head_of_line_extra t ~seq =
  match (Hashtbl.find_opt t.releases seq, Hashtbl.find_opt t.arrivals seq) with
  | Some release, Some arrival -> Some (release -. arrival)
  | _ -> None
