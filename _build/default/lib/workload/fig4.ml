module Vultr = Tango_topo.Vultr
module Rng = Tango_sim.Rng

type t = {
  horizon_s : float;
  processes : (int * int, Delay_process.t) Hashtbl.t;
  route_change : float * float;
  instability : float * float;
}

let create ?(seed = 77) ?(horizon_s = 600.0) ?(route_change_magnitude_ms = 5.0)
    ?(instability_peak_extra_ms = 50.0) () =
  if horizon_s <= 0.0 then invalid_arg "Fig4.create: non-positive horizon";
  let rng = Rng.create ~seed in
  let processes = Hashtbl.create 16 in
  let fresh_seed () = Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF in
  let register ~transit ~toward process =
    Hashtbl.replace processes (transit, toward) process
  in
  let rc_start = 0.40 *. horizon_s and rc_stop = 0.60 *. horizon_s in
  let inst_start = 0.70 *. horizon_s and inst_stop = 0.80 *. horizon_s in
  let gtt_events =
    let event_rng = Rng.create ~seed:(fresh_seed ()) in
    [
      Delay_process.make_route_change ~rng:event_rng ~start_s:rc_start
        ~duration_s:(rc_stop -. rc_start) ~magnitude_ms:route_change_magnitude_ms ();
      Delay_process.make_instability ~rng:event_rng ~start_s:inst_start
        ~duration_s:(inst_stop -. inst_start) ~rate_hz:0.5
        ~max_magnitude_ms:instability_peak_extra_ms ();
    ]
  in
  (* Westbound: the direction plotted in Fig. 4 (NY -> LA). Each noisy
     process sits on a positive base so its noise is never clamped. *)
  register ~transit:Vultr.gtt ~toward:Vultr.vultr_la
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:0.1 ~white_std_ms:0.01
       ~ou_std_ms:0.02 ~ou_tau_s:15.0 ~events:gtt_events ());
  register ~transit:Vultr.ntt ~toward:Vultr.vultr_la
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:0.8
       ~diurnal_amplitude_ms:0.6 ~diurnal_period_s:horizon_s ~white_std_ms:0.05
       ~ou_std_ms:0.15 ~ou_tau_s:20.0 ());
  register ~transit:Vultr.telia ~toward:Vultr.vultr_la
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:1.5 ~white_std_ms:0.30
       ~ou_std_ms:0.10 ~ou_tau_s:8.0 ());
  register ~transit:Vultr.level3 ~toward:Vultr.vultr_la
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:0.6
       ~diurnal_amplitude_ms:0.3 ~diurnal_period_s:(horizon_s /. 2.0)
       ~white_std_ms:0.12 ~ou_std_ms:0.10 ());
  (* Eastbound: LA -> NY, the direction whose jitter §5 quotes. *)
  register ~transit:Vultr.gtt ~toward:Vultr.vultr_ny
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:0.1 ~white_std_ms:0.004
       ~ou_std_ms:0.01 ~ou_tau_s:15.0 ());
  register ~transit:Vultr.ntt ~toward:Vultr.vultr_ny
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:0.8
       ~diurnal_amplitude_ms:0.5 ~diurnal_period_s:horizon_s ~white_std_ms:0.08
       ~ou_std_ms:0.12 ());
  register ~transit:Vultr.telia ~toward:Vultr.vultr_ny
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:1.5 ~white_std_ms:0.33
       ~ou_std_ms:0.08 ~ou_tau_s:8.0 ());
  register ~transit:Vultr.cogent ~toward:Vultr.vultr_ny
    (Delay_process.create ~seed:(fresh_seed ()) ~base_ms:0.6 ~white_std_ms:0.10
       ~ou_std_ms:0.10 ());
  {
    horizon_s;
    processes;
    route_change = (rc_start, rc_stop);
    instability = (inst_start, inst_stop);
  }

let horizon_s t = t.horizon_s

let extra_delay_ms t ~from_node ~to_node ~time_s =
  match Hashtbl.find_opt t.processes (from_node, to_node) with
  | Some process -> Delay_process.value process ~time_s
  | None -> 0.0

let route_change_window t = t.route_change

let instability_window t = t.instability

let process_for t ~transit ~toward = Hashtbl.find_opt t.processes (transit, toward)
