(** The calibrated dynamics of the paper's measurement study (§5, Fig. 4),
    time-compressed onto a configurable horizon.

    Each transit network gets an independent {!Delay_process.t} per
    direction, attached to the directed link where that transit hands
    traffic to the destination Vultr site — so the NTT/Telia/GTT/Cogent
    paths east- and west-bound all evolve independently, as the paper
    observed. Headline shapes:

    - GTT is the quiet, fastest path (jitter ≈ 0.01 ms eastbound);
    - Telia is noisy (jitter ≈ 0.33 ms eastbound);
    - NTT (the BGP default) drifts ~30% above GTT;
    - westbound GTT suffers one internal route change (+5 ms level for a
      tenth of the horizon, Fig. 4 middle) and one instability window
      (spikes up to 78 ms total OWD against the 28 ms floor, Fig. 4
      right). *)

type t

val create :
  ?seed:int ->
  ?horizon_s:float ->
  ?route_change_magnitude_ms:float ->
  ?instability_peak_extra_ms:float ->
  unit ->
  t
(** [horizon_s] defaults to 600 s (the compressed "8 days").
    [route_change_magnitude_ms] defaults to 5; the route change occupies
    [0.40, 0.60) of the horizon. [instability_peak_extra_ms] defaults to
    50 (28 ms floor + 50 = 78 ms peak); the instability window occupies
    [0.70, 0.80). *)

val horizon_s : t -> float

val extra_delay_ms : t -> from_node:int -> to_node:int -> time_s:float -> float
(** Plug into {!Tango_dataplane.Fabric.create}. *)

val route_change_window : t -> float * float
(** [(start, stop)] in seconds. *)

val instability_window : t -> float * float

val process_for :
  t -> transit:int -> toward:int -> Delay_process.t option
(** The process attached to the [transit -> toward] directed link, for
    tests and calibration checks. *)
