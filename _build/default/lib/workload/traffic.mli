(** Traffic generators driving the measurement and application planes. *)

val periodic :
  Tango_sim.Engine.t ->
  interval_s:float ->
  ?start_s:float ->
  ?until_s:float ->
  (Tango_sim.Engine.t -> unit) ->
  unit
(** Fire [f] every [interval_s] starting at [start_s] (default: now),
    stopping after [until_s]. The paper's probe train is
    [periodic ~interval_s:0.01]. *)

val poisson :
  Tango_sim.Engine.t ->
  rng:Tango_sim.Rng.t ->
  rate_hz:float ->
  ?until_s:float ->
  (Tango_sim.Engine.t -> unit) ->
  unit
(** Poisson arrivals at [rate_hz]. *)

val on_off :
  Tango_sim.Engine.t ->
  rng:Tango_sim.Rng.t ->
  rate_hz:float ->
  burst_s:float ->
  idle_s:float ->
  ?until_s:float ->
  (Tango_sim.Engine.t -> unit) ->
  unit
(** Bursty source: periodic sends at [rate_hz] during exponentially-sized
    bursts (mean [burst_s]) separated by exponential idle gaps (mean
    [idle_s]). *)
