(** In-order delivery model for application-level impact (§5).

    The paper argues that even when a path still delivers {e some}
    packets at the minimum OWD during an instability episode, TCP-style
    in-order delivery turns a single delayed packet into head-of-line
    blocking for everything behind it. This module replays a stream of
    (sequence, network-arrival-time) pairs through an in-order release
    buffer and reports per-packet application delivery times. *)

type t

val create : unit -> t

val arrival : t -> seq:int -> time:float -> (int * float) list
(** Record a packet's network arrival; returns the packets released to
    the application by this arrival as [(seq, release_time)] — i.e. the
    contiguous run now deliverable. A released packet's release time is
    the arrival time of the packet that unblocked it. Duplicate or
    already-released sequence numbers release nothing. *)

val released : t -> int
val pending : t -> int
(** Packets buffered, waiting for a gap to fill. *)

val head_of_line_extra : t -> seq:int -> float option
(** For a released packet, the extra delay in seconds it spent blocked
    behind the missing packet ([release - arrival]); [None] if the
    sequence number has not been released. *)
