lib/workload/inorder.ml: Hashtbl List
