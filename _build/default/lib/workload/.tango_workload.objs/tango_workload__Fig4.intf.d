lib/workload/fig4.mli: Delay_process
