lib/workload/delay_process.ml: Float List Tango_sim
