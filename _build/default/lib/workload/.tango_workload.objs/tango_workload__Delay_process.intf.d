lib/workload/delay_process.mli: Tango_sim
