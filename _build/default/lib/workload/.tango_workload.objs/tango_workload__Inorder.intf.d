lib/workload/inorder.mli:
