lib/workload/fig4.ml: Delay_process Hashtbl Int64 Tango_sim Tango_topo
