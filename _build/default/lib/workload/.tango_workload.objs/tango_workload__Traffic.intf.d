lib/workload/traffic.mli: Tango_sim
