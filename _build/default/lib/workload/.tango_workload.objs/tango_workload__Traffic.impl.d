lib/workload/traffic.ml: Float Tango_sim
