module Engine = Tango_sim.Engine
module Rng = Tango_sim.Rng

let periodic engine ~interval_s ?start_s ?until_s f =
  if interval_s <= 0.0 then invalid_arg "Traffic.periodic: non-positive interval";
  let start = match start_s with Some s -> s | None -> Engine.now engine in
  let rec tick e =
    (match until_s with
    | Some stop when Engine.now e > stop -> ()
    | Some _ | None ->
        f e;
        Engine.schedule e ~delay:interval_s tick)
  in
  Engine.schedule_at engine ~time:(Float.max start (Engine.now engine)) tick

let poisson engine ~rng ~rate_hz ?until_s f =
  if rate_hz <= 0.0 then invalid_arg "Traffic.poisson: non-positive rate";
  let rec next e =
    let gap = Rng.exponential rng ~rate:rate_hz in
    let at = Engine.now e +. gap in
    match until_s with
    | Some stop when at > stop -> ()
    | Some _ | None ->
        Engine.schedule e ~delay:gap (fun e ->
            f e;
            next e)
  in
  next engine

let on_off engine ~rng ~rate_hz ~burst_s ~idle_s ?until_s f =
  if rate_hz <= 0.0 || burst_s <= 0.0 || idle_s <= 0.0 then
    invalid_arg "Traffic.on_off: non-positive parameter";
  let interval = 1.0 /. rate_hz in
  let expired e =
    match until_s with Some stop -> Engine.now e > stop | None -> false
  in
  let rec burst e remaining =
    if not (expired e) then
      if remaining <= 0.0 then begin
        let gap = Rng.exponential rng ~rate:(1.0 /. idle_s) in
        Engine.schedule e ~delay:gap (fun e ->
            burst e (Rng.exponential rng ~rate:(1.0 /. burst_s)))
      end
      else begin
        f e;
        Engine.schedule e ~delay:interval (fun e -> burst e (remaining -. interval))
      end
  in
  Engine.schedule engine ~delay:0.0 (fun e ->
      burst e (Rng.exponential rng ~rate:(1.0 /. burst_s)))
