(** Synthetic time-varying delay of one transit network in one direction.

    The paper measured the real NTT/Telia/GTT backbones for eight days;
    we substitute a generative model whose terms map one-to-one onto the
    phenomena §5 reports:

    - a {b diurnal} sinusoid (slow drift visible in the 24 h panel);
    - {b correlated noise}: an Ornstein–Uhlenbeck process (short-term
      wander);
    - {b white noise} per sample (per-packet jitter — this is what the
      1-s rolling-stddev metric picks up);
    - scheduled {b events}: route-change level shifts (Fig. 4 middle) and
      instability windows with heavy-tailed spikes (Fig. 4 right).

    A process is queried with a monotonically non-decreasing clock by the
    packet fabric and returns the extra one-way delay in ms. *)

type spike = { at_s : float; magnitude_ms : float; width_s : float }

type event =
  | Level_shift of {
      start_s : float;
      duration_s : float;
      magnitude_ms : float;
      onset : spike list;  (** Brief instability around the change. *)
    }
  | Instability of { start_s : float; duration_s : float; spikes : spike list }

val spike_value : spike -> time_s:float -> float
(** Triangular contribution of one spike at a given time. *)

val make_instability :
  rng:Tango_sim.Rng.t ->
  start_s:float ->
  duration_s:float ->
  rate_hz:float ->
  max_magnitude_ms:float ->
  ?width_s:float ->
  unit ->
  event
(** Poisson spike arrivals with Pareto magnitudes capped at
    [max_magnitude_ms]; at least one spike reaches the cap, so the
    episode's headline peak is deterministic. *)

val make_route_change :
  rng:Tango_sim.Rng.t ->
  start_s:float ->
  duration_s:float ->
  magnitude_ms:float ->
  unit ->
  event

type t

val create :
  seed:int ->
  ?base_ms:float ->
  ?diurnal_amplitude_ms:float ->
  ?diurnal_period_s:float ->
  ?diurnal_phase:float ->
  ?ou_std_ms:float ->
  ?ou_tau_s:float ->
  ?white_std_ms:float ->
  ?events:event list ->
  unit ->
  t
(** All stochastic terms default to zero/off. [base_ms] is a constant
    positive floor; noisy processes need one large enough that the
    zero-clamp never bites, or their noise distribution is truncated. *)

val value : t -> time_s:float -> float
(** Extra delay at [time_s] (>= 0; the deterministic floor plus noise is
    clamped at zero). Advances the internal noise state: query times must
    be non-decreasing. *)

val floor_value : t -> time_s:float -> float
(** Deterministic part only (diurnal + events, no noise) — useful for
    tests and calibration. *)

val events : t -> event list
