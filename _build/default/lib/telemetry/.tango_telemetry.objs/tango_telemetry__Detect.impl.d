lib/telemetry/detect.ml: Float Format List Queue Rolling
