lib/telemetry/export.ml: Fun List Printf Series String
