lib/telemetry/export.mli: Series
