lib/telemetry/rolling.mli:
