lib/telemetry/jitter.ml: Ewma Rolling
