lib/telemetry/ewma.mli:
