lib/telemetry/ascii_plot.mli: Series
