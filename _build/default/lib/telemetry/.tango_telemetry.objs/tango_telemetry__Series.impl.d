lib/telemetry/series.ml: Array Float Printf Tango_sim
