lib/telemetry/detect.mli: Format
