lib/telemetry/rolling.ml: Float Queue
