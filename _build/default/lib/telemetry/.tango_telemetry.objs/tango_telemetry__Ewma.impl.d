lib/telemetry/ewma.ml:
