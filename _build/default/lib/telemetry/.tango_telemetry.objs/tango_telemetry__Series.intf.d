lib/telemetry/series.mli: Tango_sim
