lib/telemetry/jitter.mli:
