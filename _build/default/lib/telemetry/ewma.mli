(** Exponentially weighted moving average — the smoothing used by the
    adaptive routing policies. *)

type t

val create : alpha:float -> t
(** [alpha] in (0, 1]: weight of each new sample. *)

val add : t -> float -> unit
val value : t -> float
(** Current average; [nan] before the first sample. *)

val initialized : t -> bool
val reset : t -> unit
