(** The paper's sub-second jitter metric: the {e mean} standard deviation
    of a rolling window (1 s by default) over the one-way-delay stream
    (§5: GTT ≈ 0.01 ms vs Telia ≈ 0.33 ms on LA→NY). *)

type t

val create : ?window_s:float -> ?recent_alpha:float -> unit -> t
(** Default window: 1 s, as in the paper. [recent_alpha] smooths the
    {!recent} estimate (default 0.01 per sample). *)

val add : t -> time:float -> float -> unit
(** Feed one OWD sample; the current window stddev is folded into the
    running mean. *)

val value : t -> float
(** Mean rolling-window stddev so far; [nan] before any sample. This is
    the paper's reporting metric, averaged over the whole trace. *)

val recent : t -> float
(** EWMA-smoothed rolling-window stddev — a {e live} jitter estimate
    that rises within seconds of an instability episode and decays after
    it. This is what adaptive policies should consume; [nan] before any
    sample. *)

val current_window_stddev : t -> float
val samples : t -> int
