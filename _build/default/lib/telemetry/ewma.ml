type t = { alpha : float; mutable value : float; mutable initialized : bool }

let create ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha outside (0,1]";
  { alpha; value = nan; initialized = false }

let add t x =
  if t.initialized then t.value <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.value)
  else begin
    t.value <- x;
    t.initialized <- true
  end

let value t = t.value

let initialized t = t.initialized

let reset t =
  t.value <- nan;
  t.initialized <- false
