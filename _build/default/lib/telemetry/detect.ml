type event =
  | Level_shift of { at : float; before_ms : float; after_ms : float }
  | Spike of { at : float; value_ms : float; baseline_ms : float }

let pp_event ppf = function
  | Level_shift { at; before_ms; after_ms } ->
      Format.fprintf ppf "level shift at %.1fs: %.2fms -> %.2fms" at before_ms
        after_ms
  | Spike { at; value_ms; baseline_ms } ->
      Format.fprintf ppf "spike at %.1fs: %.2fms (baseline %.2fms)" at value_ms
        baseline_ms

type t = {
  older : Rolling.t;  (* window [t-2w, t-w], approximated by delayed feed *)
  recent : Rolling.t;
  delay_buffer : (float * float) Queue.t;  (* samples waiting to age into [older] *)
  window_s : float;
  shift_threshold_ms : float;
  spike_threshold_ms : float;
  cooldown_s : float;
  mutable last_shift_at : float;
  mutable last_spike_at : float;
  mutable history : event list;
}

let create ?(window_s = 5.0) ?(shift_threshold_ms = 2.0)
    ?(spike_threshold_ms = 10.0) ?(cooldown_s = 30.0) () =
  {
    older = Rolling.create ~window_s;
    recent = Rolling.create ~window_s;
    delay_buffer = Queue.create ();
    window_s;
    shift_threshold_ms;
    spike_threshold_ms;
    cooldown_s;
    last_shift_at = neg_infinity;
    last_spike_at = neg_infinity;
    history = [];
  }

let add t ~time value =
  (* Samples flow into [recent] immediately and into [older] once they
     are a window old, so the two windows cover adjacent spans. *)
  Rolling.add t.recent ~time value;
  Queue.push (time, value) t.delay_buffer;
  let rec drain () =
    match Queue.peek_opt t.delay_buffer with
    | Some (ts, v) when ts <= time -. t.window_s ->
        ignore (Queue.pop t.delay_buffer);
        Rolling.add t.older ~time:ts v;
        (* Manually advance the eviction horizon of [older]. *)
        ignore v;
        drain ()
    | Some _ | None -> ()
  in
  drain ();
  let baseline = Rolling.mean t.older in
  let detected =
    if Rolling.count t.older < 10 || Float.is_nan baseline then None
    else if
      value -. baseline > t.spike_threshold_ms
      && time -. t.last_spike_at > t.window_s
    then begin
      t.last_spike_at <- time;
      Some (Spike { at = time; value_ms = value; baseline_ms = baseline })
    end
    else begin
      let recent_mean = Rolling.mean t.recent in
      if
        Rolling.count t.recent >= 10
        && (not (Float.is_nan recent_mean))
        && abs_float (recent_mean -. baseline) > t.shift_threshold_ms
        && time -. t.last_shift_at > t.cooldown_s
      then begin
        t.last_shift_at <- time;
        Some (Level_shift { at = time; before_ms = baseline; after_ms = recent_mean })
      end
      else None
    end
  in
  (match detected with
  | Some e -> t.history <- e :: t.history
  | None -> ());
  detected

let events t = List.rev t.history
