type t = {
  mutable times : float array;
  mutable vals : float array;
  mutable size : int;
}

let create ?(capacity = 1024) () =
  let capacity = max capacity 1 in
  { times = Array.make capacity 0.0; vals = Array.make capacity 0.0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let add t ~time value =
  if t.size > 0 && time < t.times.(t.size - 1) then
    invalid_arg
      (Printf.sprintf "Series.add: time %g precedes last sample %g" time
         t.times.(t.size - 1));
  if t.size = Array.length t.times then begin
    let capacity = 2 * Array.length t.times in
    let times = Array.make capacity 0.0 and vals = Array.make capacity 0.0 in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.times <- times;
    t.vals <- vals
  end;
  t.times.(t.size) <- time;
  t.vals.(t.size) <- value;
  t.size <- t.size + 1

let check_index t i =
  if i < 0 || i >= t.size then invalid_arg "Series: index out of bounds"

let time_at t i =
  check_index t i;
  t.times.(i)

let value_at t i =
  check_index t i;
  t.vals.(i)

let first_time t = if t.size = 0 then None else Some t.times.(0)

let last_time t = if t.size = 0 then None else Some t.times.(t.size - 1)

let last_value t = if t.size = 0 then None else Some t.vals.(t.size - 1)

let iter t f =
  for i = 0 to t.size - 1 do
    f ~time:t.times.(i) ~value:t.vals.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc ~time:t.times.(i) ~value:t.vals.(i)
  done;
  !acc

let stats t =
  let s = Tango_sim.Stats.create () in
  for i = 0 to t.size - 1 do
    Tango_sim.Stats.add s t.vals.(i)
  done;
  Tango_sim.Stats.summarize s

(* First index with time >= target, by binary search. *)
let lower_bound t target =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.times.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let between t ~t0 ~t1 =
  let start = lower_bound t t0 and stop = lower_bound t t1 in
  let out = create ~capacity:(max 1 (stop - start)) () in
  for i = start to stop - 1 do
    add out ~time:t.times.(i) t.vals.(i)
  done;
  out

let downsample t ~bucket_s =
  if bucket_s <= 0.0 then invalid_arg "Series.downsample: non-positive bucket";
  let out = create () in
  if t.size > 0 then begin
    let bucket_start = ref (Float.of_int (int_of_float (t.times.(0) /. bucket_s)) *. bucket_s) in
    let sum = ref 0.0 and n = ref 0 in
    let flush () =
      if !n > 0 then add out ~time:!bucket_start (!sum /. float_of_int !n);
      sum := 0.0;
      n := 0
    in
    for i = 0 to t.size - 1 do
      let b = Float.of_int (int_of_float (t.times.(i) /. bucket_s)) *. bucket_s in
      if b > !bucket_start then begin
        flush ();
        bucket_start := b
      end;
      sum := !sum +. t.vals.(i);
      incr n
    done;
    flush ()
  end;
  out

let values t = Array.sub t.vals 0 t.size

let times t = Array.sub t.times 0 t.size
