(** Append-only time series of (time, value) samples.

    Times must be fed non-decreasing (simulation order); the structure is
    backed by growable arrays, so eight simulated days of samples remain
    cheap and slicing is O(log n + k). *)

type t

val create : ?capacity:int -> unit -> t

val add : t -> time:float -> float -> unit
(** Raises [Invalid_argument] if [time] precedes the last sample. *)

val length : t -> int
val is_empty : t -> bool

val time_at : t -> int -> float
val value_at : t -> int -> float

val first_time : t -> float option
val last_time : t -> float option
val last_value : t -> float option

val iter : t -> (time:float -> value:float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> time:float -> value:float -> 'a) -> 'a

val stats : t -> Tango_sim.Stats.summary
(** Summary over all values. *)

val between : t -> t0:float -> t1:float -> t
(** Samples with [t0 <= time < t1], as a fresh series. *)

val downsample : t -> bucket_s:float -> t
(** Mean value per time bucket, stamped at the bucket start. Empty
    buckets produce no sample. *)

val values : t -> float array
val times : t -> float array
