let series_to_channel oc ?header series =
  (match header with
  | Some (a, b) -> Printf.fprintf oc "%s,%s\n" a b
  | None -> ());
  Series.iter series (fun ~time ~value -> Printf.fprintf oc "%.6f,%.6f\n" time value)

(* Index of the last sample at or before [target], or -1. *)
let last_at_or_before series target =
  let n = Series.length series in
  let rec search lo hi =
    if lo > hi then hi
    else begin
      let mid = (lo + hi) / 2 in
      if Series.time_at series mid <= target then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (n - 1)

let aligned_to_channel oc ~labels series_list =
  if List.length labels <> List.length series_list then
    invalid_arg "Export.aligned_to_channel: labels/series mismatch";
  Printf.fprintf oc "time,%s\n" (String.concat "," labels);
  match series_list with
  | [] -> ()
  | grid :: _ ->
      Series.iter grid (fun ~time ~value:_ ->
          let cells =
            List.map
              (fun s ->
                let i = last_at_or_before s time in
                if i < 0 then "" else Printf.sprintf "%.6f" (Series.value_at s i))
              series_list
          in
          Printf.fprintf oc "%.6f,%s\n" time (String.concat "," cells))

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let series_to_file path ?header series =
  with_file path (fun oc -> series_to_channel oc ?header series)

let aligned_to_file path ~labels series_list =
  with_file path (fun oc -> aligned_to_channel oc ~labels series_list)
