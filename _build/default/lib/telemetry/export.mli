(** CSV export of measurement series, for offline plotting of the Fig. 4
    reproductions. *)

val series_to_channel :
  out_channel -> ?header:string * string -> Series.t -> unit
(** One series as "time,value" rows, with an optional header pair. *)

val aligned_to_channel :
  out_channel -> labels:string list -> Series.t list -> unit
(** Several series sharing a sampling grid, one column per series; rows
    are produced at every time present in the first series and the other
    series contribute their most recent value at or before that time
    (empty cell when they have none yet). Raises [Invalid_argument] when
    labels and series counts differ. *)

val series_to_file :
  string -> ?header:string * string -> Series.t -> unit

val aligned_to_file : string -> labels:string list -> Series.t list -> unit
