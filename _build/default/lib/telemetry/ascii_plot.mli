(** Terminal rendering of measurement series, so the harness can show
    the Fig. 4 panels directly rather than only summarizing them.

    Multiple series share one canvas; each gets a distinct glyph. Axes
    are labelled with the time range and value range; values are
    column-averaged into the available width. *)

type t = {
  label : string;
  glyph : char;
  series : Series.t;
}

val render :
  ?width:int ->
  ?height:int ->
  ?t0:float ->
  ?t1:float ->
  ?title:string ->
  t list ->
  string
(** Render the series between [t0] and [t1] (defaults: the union of
    their spans) onto a [width] × [height] canvas (default 72 × 16).
    Returns the complete multi-line plot including axes and a legend.
    Series with no samples in range are listed in the legend as
    "(no data)". Raises [Invalid_argument] on an empty series list or
    non-positive dimensions. *)

val render_to_channel :
  out_channel ->
  ?width:int ->
  ?height:int ->
  ?t0:float ->
  ?t1:float ->
  ?title:string ->
  t list ->
  unit
