type t = {
  rolling : Rolling.t;
  recent : Ewma.t;
  mutable sum_stddev : float;
  mutable n : int;
}

let create ?(window_s = 1.0) ?(recent_alpha = 0.01) () =
  {
    rolling = Rolling.create ~window_s;
    recent = Ewma.create ~alpha:recent_alpha;
    sum_stddev = 0.0;
    n = 0;
  }

let add t ~time value =
  Rolling.add t.rolling ~time value;
  (* Only meaningful once the window holds at least two samples. *)
  if Rolling.count t.rolling >= 2 then begin
    let std = Rolling.stddev t.rolling in
    t.sum_stddev <- t.sum_stddev +. std;
    Ewma.add t.recent std;
    t.n <- t.n + 1
  end

let value t = if t.n = 0 then nan else t.sum_stddev /. float_of_int t.n

let recent t = Ewma.value t.recent

let current_window_stddev t = Rolling.stddev t.rolling

let samples t = t.n
