type t = {
  window_s : float;
  samples : (float * float) Queue.t;
  mutable sum : float;
  mutable sum_sq : float;
  mutable last_time : float;
}

let create ~window_s =
  if window_s <= 0.0 then invalid_arg "Rolling.create: non-positive window";
  { window_s; samples = Queue.create (); sum = 0.0; sum_sq = 0.0; last_time = neg_infinity }

let evict t ~now =
  let cutoff = now -. t.window_s in
  let rec go () =
    match Queue.peek_opt t.samples with
    | Some (time, v) when time < cutoff ->
        ignore (Queue.pop t.samples);
        t.sum <- t.sum -. v;
        t.sum_sq <- t.sum_sq -. (v *. v);
        go ()
    | Some _ | None -> ()
  in
  go ()

let add t ~time value =
  if time < t.last_time then invalid_arg "Rolling.add: time went backwards";
  t.last_time <- time;
  Queue.push (time, value) t.samples;
  t.sum <- t.sum +. value;
  t.sum_sq <- t.sum_sq +. (value *. value);
  evict t ~now:time

let count t = Queue.length t.samples

let mean t =
  let n = count t in
  if n = 0 then nan else t.sum /. float_of_int n

let stddev t =
  let n = count t in
  if n < 2 then 0.0
  else begin
    let nf = float_of_int n in
    let variance = (t.sum_sq /. nf) -. ((t.sum /. nf) ** 2.0) in
    sqrt (Float.max 0.0 variance)
  end

let min_value t =
  Queue.fold (fun acc (_, v) -> Float.min acc v) infinity t.samples

let window_s t = t.window_s
