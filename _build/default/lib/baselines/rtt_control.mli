(** The round-trip baseline: what route control looks like without
    cooperation (§2.1).

    A single multi-homed site can only measure round trips and halve
    them. When the two directions of a path diverge — e.g. a westbound
    instability while eastbound stays clean — RTT/2 blurs the congested
    direction with the quiet one and can rank the paths wrong for the
    direction that matters. *)

type estimate = {
  path_id : int;
  rtt_half_ms : float;  (** (forward OWD + reverse OWD) / 2. *)
}

val estimates :
  forward_ms:float array -> reverse_ms:float array -> estimate array
(** Combine per-path one-way delays into the RTT/2 view. Arrays must
    have equal length; [nan] entries propagate. *)

val best : estimate array -> int
(** Path id with the smallest RTT/2 ([nan] entries skipped); raises
    [Invalid_argument] when no usable estimate exists. *)

val best_one_way : float array -> int
(** Ground truth for one direction: index of the smallest OWD. *)

val regret_ms : forward_ms:float array -> chosen:int -> float
(** Extra forward delay of the chosen path versus the true forward
    optimum — the cost of deciding from round trips. *)
