type estimate = { path_id : int; rtt_half_ms : float }

let estimates ~forward_ms ~reverse_ms =
  if Array.length forward_ms <> Array.length reverse_ms then
    invalid_arg "Rtt_control.estimates: array length mismatch";
  Array.mapi
    (fun i fwd -> { path_id = i; rtt_half_ms = (fwd +. reverse_ms.(i)) /. 2.0 })
    forward_ms

let best_index values =
  let best = ref (-1) and best_v = ref infinity in
  Array.iteri
    (fun i v ->
      if (not (Float.is_nan v)) && v < !best_v then begin
        best := i;
        best_v := v
      end)
    values;
  if !best < 0 then invalid_arg "Rtt_control: no usable estimate";
  !best

let best estimates = (estimates.(best_index (Array.map (fun e -> e.rtt_half_ms) estimates))).path_id

let best_one_way forward_ms = best_index forward_ms

let regret_ms ~forward_ms ~chosen =
  let optimal = best_one_way forward_ms in
  forward_ms.(chosen) -. forward_ms.(optimal)
