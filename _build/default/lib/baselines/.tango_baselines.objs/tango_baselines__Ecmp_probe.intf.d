lib/baselines/ecmp_probe.mli: Tango_dataplane Tango_net Tango_telemetry
