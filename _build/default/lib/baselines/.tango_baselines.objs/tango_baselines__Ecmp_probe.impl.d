lib/baselines/ecmp_probe.ml: Float List Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_telemetry
