lib/baselines/rtt_control.ml: Array Float
