lib/baselines/rtt_control.mli:
