module Fabric = Tango_dataplane.Fabric
module Engine = Tango_sim.Engine
module Series = Tango_telemetry.Series
module Packet = Tango_net.Packet
module Flow = Tango_net.Flow

type result = { series : Series.t; flows : int; delivered : int }

let measure ~fabric ~from_node ~src ~dst ~mode ~probes ~interval_s () =
  if probes <= 0 then invalid_arg "Ecmp_probe.measure: no probes";
  let engine = Tango_bgp.Network.engine (Fabric.network fabric) in
  let series = Series.create ~capacity:probes () in
  let delivered = ref 0 in
  let flows = match mode with `Per_flow_ports n -> max 1 n | `Pinned -> 1 in
  (* Pending samples buffered because fabric deliveries can complete out
     of send order, while Series requires monotone times. *)
  let samples = ref [] in
  for i = 0 to probes - 1 do
    let src_port = match mode with `Pinned -> 40_000 | `Per_flow_ports n -> 40_000 + (i mod max 1 n) in
    Engine.schedule engine ~delay:(float_of_int i *. interval_s) (fun e ->
        let sent_at = Engine.now e in
        let flow = Flow.v ~src ~dst ~proto:17 ~src_port ~dst_port:7 in
        let packet =
          Packet.create ~id:i ~flow ~payload_bytes:64 ~created_at:sent_at ()
        in
        Fabric.send fabric ~from_node
          ~on_delivered:(fun ~node:_ _ ->
            incr delivered;
            let owd_ms = (Engine.now e -. sent_at) *. 1000.0 in
            samples := (sent_at, owd_ms) :: !samples)
          packet)
  done;
  Engine.run engine;
  List.iter
    (fun (t, v) -> Series.add series ~time:t v)
    (List.sort (fun (a, _) (b, _) -> Float.compare a b) !samples);
  { series; flows; delivered = !delivered }

let conflation_ratio ~naive ~pinned =
  let std r = (Series.stats r.series).Tango_sim.Stats.stddev in
  let denominator = std pinned in
  if denominator <= 0.0 then infinity else std naive /. denominator
