(** The non-tunneled measurement baseline (§3's motivation for tunnels,
    ablated in E7).

    Without a fixed-5-tuple tunnel, each application flow hashes onto a
    different internal ECMP lane of the transit, so a measurement box
    aggregating per-flow delays sees several distinct paths as one noisy
    series. This harness sends probe flows over the fabric either with
    per-flow varying ports (naive) or with one pinned 5-tuple
    (Tango-style) and returns the observed delay series. *)

type result = {
  series : Tango_telemetry.Series.t;  (** Observed delays, ms. *)
  flows : int;
  delivered : int;
}

val measure :
  fabric:Tango_dataplane.Fabric.t ->
  from_node:int ->
  src:Tango_net.Addr.t ->
  dst:Tango_net.Addr.t ->
  mode:[ `Per_flow_ports of int | `Pinned ] ->
  probes:int ->
  interval_s:float ->
  unit ->
  result
(** Schedule [probes] probes at [interval_s] spacing and run the engine
    until they drain. [`Per_flow_ports n] rotates the source port over
    [n] distinct flows (round-robin); [`Pinned] keeps one 5-tuple. The
    series records (send time, one-way delay in ms) per delivered
    probe. *)

val conflation_ratio : naive:result -> pinned:result -> float
(** Stddev(naive) / stddev(pinned): how much variance the lack of
    tunneling fabricates. *)
