lib/net/ipv6.ml: Array Buffer Format Hashtbl Int64 List Printf String
