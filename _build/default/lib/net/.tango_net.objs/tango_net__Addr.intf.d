lib/net/addr.mli: Format Ipv4 Ipv6
