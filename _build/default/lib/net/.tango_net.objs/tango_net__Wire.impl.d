lib/net/wire.ml: Bytes Int64 Ipv6 Option Packet Printf Siphash
