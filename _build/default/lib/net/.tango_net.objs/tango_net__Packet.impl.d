lib/net/packet.ml: Addr Flow Format List Option Printf
