lib/net/siphash.mli: Bytes
