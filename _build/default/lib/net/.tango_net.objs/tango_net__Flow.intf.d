lib/net/flow.mli: Addr Format
