lib/net/ipv4.ml: Format Int32 Printf String
