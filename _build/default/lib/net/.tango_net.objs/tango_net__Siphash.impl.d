lib/net/siphash.ml: Bytes Char Int64 String
