lib/net/prefix.ml: Addr Format Int Int32 Int64 Ipv4 Ipv6 Printf String
