lib/net/flow.ml: Addr Format Int Int64 Ipv4 Ipv6 Printf
