lib/net/wire.mli: Bytes Ipv6 Packet Siphash
