lib/net/packet.mli: Addr Flow Format
