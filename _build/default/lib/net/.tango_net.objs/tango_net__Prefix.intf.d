lib/net/prefix.mli: Addr Format
