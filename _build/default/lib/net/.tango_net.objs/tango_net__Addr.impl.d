lib/net/addr.ml: Format Hashtbl Ipv4 Ipv6 Printf
