(** IP addresses of either family. *)

type t = V4 of Ipv4.t | V6 of Ipv6.t

val compare : t -> t -> int
(** V4 sorts before V6; within a family, numeric order. *)

val equal : t -> t -> bool
val hash : t -> int

val of_string : string -> (t, string) result
(** Tries IPv4 dotted-quad first, then IPv6. *)

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_v4 : t -> bool
val is_v6 : t -> bool

val family_bits : t -> int
(** 32 for V4, 128 for V6. *)
