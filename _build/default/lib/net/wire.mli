(** Byte-level encoding of the Tango tunnel headers.

    This is the exact layout the paper's eBPF programs prepend to data
    packets: an outer IPv6 header, a UDP header (present to pin ECMP
    hashing), and a 20-byte Tango shim carrying the sender timestamp, a
    per-tunnel sequence number, the path id and flags. The simulator works
    on structured {!Packet.t} values, but encoding/decoding is implemented
    and tested so the header format is a checked artifact, not prose. *)

type ipv6_header = {
  traffic_class : int;
  flow_label : int;
  payload_length : int;
  next_header : int;
  hop_limit : int;
  src : Ipv6.t;
  dst : Ipv6.t;
}

type udp_header = { src_port : int; dst_port : int; length : int; checksum : int }

val tango_shim_bytes : int
(** Size of the plain Tango shim: 20 bytes. *)

val tango_shim_auth_bytes : int
(** Size of the authenticated shim: 28 bytes (a SipHash-2-4 tag over the
    outer addresses, UDP ports and shim fields is appended). Frames with
    flag bit 0 set carry it — the §6 "trustworthy telemetry" extension
    protecting the measurement stream from on-path forgery. *)

val auth_flag : int
(** Flag bit marking an authenticated shim (0x0001). *)

val internet_checksum : Bytes.t -> int
(** RFC 1071 one's-complement sum over a buffer (odd lengths padded). *)

val udp_checksum :
  src:Ipv6.t -> dst:Ipv6.t -> udp:Bytes.t -> int
(** UDP checksum over the IPv6 pseudo-header plus the UDP header+payload
    bytes (with its checksum field zeroed). Never returns 0 (0xFFFF is
    substituted, per RFC 2460). *)

val encode_tunnel :
  ?auth_key:Siphash.key ->
  outer_src:Ipv6.t ->
  outer_dst:Ipv6.t ->
  udp_src:int ->
  udp_dst:int ->
  tango:Packet.tango_header ->
  Bytes.t ->
  Bytes.t
(** [encode_tunnel ... payload] produces the full outer frame: IPv6 + UDP + Tango shim + payload, with
    a valid UDP checksum and payload lengths filled in. With [auth_key]
    the shim is the 28-byte authenticated variant and {!auth_flag} is
    set in the flags on the wire. *)

val decode_tunnel :
  ?auth_key:Siphash.key ->
  Bytes.t ->
  (ipv6_header * udp_header * Packet.tango_header * Bytes.t, string) result
(** Parse and validate a frame produced by {!encode_tunnel}: version
    check, length checks and UDP checksum verification; when the frame is
    authenticated, [auth_key] must be supplied and the tag must verify.
    Supplying a key also {e requires} the frame to be authenticated, so
    an on-path attacker cannot strip protection. Returns the headers and
    the inner payload. *)
