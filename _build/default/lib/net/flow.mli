(** Transport 5-tuples, the unit of ECMP hashing in the core. *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;  (** IP protocol number, e.g. 6 TCP, 17 UDP. *)
  src_port : int;
  dst_port : int;
}

val v :
  src:Addr.t -> dst:Addr.t -> proto:int -> src_port:int -> dst_port:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val reverse : t -> t
(** Swap source and destination (address and port). *)

val hash_5tuple : ?salt:int -> t -> int
(** Deterministic FNV-1a over the 5-tuple, non-negative. Core routers use
    [salt] to decorrelate hash decisions at different hops. *)
