(** AS business relationships, seen from one endpoint of a link.

    [Customer] means "the neighbor is my customer", [Provider] means "the
    neighbor is my provider". The standard Gao–Rexford rules are provided
    here so every policy decision in the BGP layer shares one definition. *)

type t = Customer | Provider | Peer

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val inverse : t -> t
(** How the neighbor sees me: a customer's neighbor is its provider. *)

val export_allowed : learned_from:t -> exporting_to:t -> bool
(** Gao–Rexford export rule: a route learned from a customer may be
    exported to anyone; routes learned from peers or providers may be
    exported only to customers. *)

val base_local_pref : t -> int
(** Gao–Rexford preference: customer (300) > peer (200) > provider (100). *)
