type t = {
  delay_ms : float;
  jitter_ms : float;
  bandwidth_mbps : float;
  loss : float;
}

let v ?(jitter_ms = 0.02) ?(bandwidth_mbps = 10_000.0) ?(loss = 0.0) delay_ms =
  if delay_ms < 0.0 then invalid_arg "Link.v: negative delay";
  if jitter_ms < 0.0 then invalid_arg "Link.v: negative jitter";
  if bandwidth_mbps <= 0.0 then invalid_arg "Link.v: non-positive bandwidth";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.v: loss outside [0,1)";
  { delay_ms; jitter_ms; bandwidth_mbps; loss }

let default = v 1.0

let transmission_delay_ms t ~bytes =
  if bytes < 0 then invalid_arg "Link.transmission_delay_ms: negative size";
  float_of_int (bytes * 8) /. (t.bandwidth_mbps *. 1000.0)

let pp ppf t =
  Format.fprintf ppf "%.2fms j=%.3fms %.0fMb/s loss=%.4f" t.delay_ms
    t.jitter_ms t.bandwidth_mbps t.loss
