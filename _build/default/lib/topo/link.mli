(** Physical properties of an inter-AS link. *)

type t = {
  delay_ms : float;  (** One-way propagation delay. *)
  jitter_ms : float;  (** Stddev of per-packet delay noise. *)
  bandwidth_mbps : float;
  loss : float;  (** Independent per-packet loss probability, [0,1). *)
}

val v : ?jitter_ms:float -> ?bandwidth_mbps:float -> ?loss:float -> float -> t
(** [v delay_ms] with defaults: jitter 0.02 ms, 10 Gb/s, no loss. Raises
    [Invalid_argument] on negative delay/jitter or loss outside [0,1). *)

val default : t
(** 1 ms link. *)

val transmission_delay_ms : t -> bytes:int -> float
(** Serialization time of [bytes] at the link rate. *)

val pp : Format.formatter -> t -> unit
