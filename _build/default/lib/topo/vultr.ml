let vultr_asn = 20473

let vultr_la = 1

let vultr_ny = 2

let server_la = 11

let server_ny = 12

let ntt = 2914

let telia = 1299

let gtt = 3257

let cogent = 174

let level3 = 3356

let transit_name id =
  if id = ntt then "NTT"
  else if id = telia then "Telia"
  else if id = gtt then "GTT"
  else if id = cogent then "Cogent"
  else if id = level3 then "Level3"
  else Printf.sprintf "AS%d" id

(* Split each direct transit's calibrated server-to-server OWD across its
   two Vultr attachment links; the 0.4 ms accounts for the two server
   links. *)
let half target = (target -. 0.4) /. 2.0

let access_link = Link.v ~jitter_ms:0.005 0.2

let peering_link = Link.v ~jitter_ms:0.005 1.0

let build () =
  let t = Topology.create () in
  Topology.add_node t ~id:vultr_la ~asn:vultr_asn "Vultr-LA";
  Topology.add_node t ~id:vultr_ny ~asn:vultr_asn "Vultr-NY";
  Topology.add_node t ~id:server_la ~asn:64512 ~private_asn:true "Tango-LA";
  Topology.add_node t ~id:server_ny ~asn:64513 ~private_asn:true "Tango-NY";
  Topology.add_node t ~id:ntt ~asn:ntt "NTT";
  Topology.add_node t ~id:telia ~asn:telia "Telia";
  Topology.add_node t ~id:gtt ~asn:gtt "GTT";
  Topology.add_node t ~id:cogent ~asn:cogent "Cogent";
  Topology.add_node t ~id:level3 ~asn:level3 "Level3";
  (* Servers are Vultr customers (eBGP to the co-located router). *)
  Topology.connect t ~provider:vultr_la ~customer:server_la ~link:access_link ();
  Topology.connect t ~provider:vultr_ny ~customer:server_ny ~link:access_link ();
  (* Vultr transit attachments; the cross-country delay lives here. *)
  let attach vultr transit delay =
    Topology.connect t ~provider:transit ~customer:vultr
      ~link:(Link.v ~jitter_ms:0.01 delay) ()
  in
  attach vultr_la ntt (half 36.4);
  attach vultr_ny ntt (half 36.4);
  attach vultr_la telia (half 31.0);
  attach vultr_ny telia (half 31.0);
  attach vultr_la gtt (half 28.0);
  attach vultr_ny gtt (half 28.0);
  attach vultr_ny cogent 14.1;
  attach vultr_la level3 14.1;
  (* Full settlement-free mesh among the transits. *)
  let transits = [ ntt; telia; gtt; cogent; level3 ] in
  let rec mesh = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> Topology.connect_peers t a b ~link:peering_link ()) rest;
        mesh rest
  in
  mesh transits;
  t

let vultr_neighbor_weight id =
  if id = ntt then 120
  else if id = telia then 115
  else if id = gtt then 110
  else if id = cogent || id = level3 then 105
  else 100

let expected_owd_ms ~via =
  if via = ntt then Some 36.4
  else if via = telia then Some 31.0
  else if via = gtt then Some 28.0
  else None
