(** Loading and saving AS topologies in the CAIDA "serial-1"
    relationship format, so measured Internet graphs (or synthetic dumps)
    can drive discovery and propagation experiments.

    Each line is [provider|customer|-1] or [peer|peer|0]; [#] starts a
    comment. Node ids equal ASNs and names are ["AS<n>"]; link
    properties take defaults (this format carries none). Multi-node
    ASes (like the two Vultr sites) cannot be represented — use the
    programmatic builders for those. *)

val parse : string -> (Topology.t, string) result
(** Parse a document; errors carry the line number. Duplicate edges and
    self-loops are rejected. *)

val to_string : Topology.t -> string
(** Render a topology built on [node id = ASN]; raises
    [Invalid_argument] when a node's id and ASN differ (the format
    cannot express it). *)

val load_file : string -> (Topology.t, string) result
val save_file : string -> Topology.t -> unit
