(** Topology generators for tests, examples and benchmarks. *)

val chain : int -> Topology.t
(** [chain n] — node 0 is the top provider, node [i] is the provider of
    node [i+1]. Node ids and ASNs are [0 .. n-1]. *)

val star : center:int -> leaves:int -> Topology.t
(** One provider with [leaves] customers; node ids [center] and
    [center+1 ..]. *)

val tier1_mesh : int list -> Topology.t
(** Fully peered mesh over the given ASNs (node id = ASN). *)

val random_hierarchy :
  seed:int -> tier1:int -> tier2:int -> stubs:int -> Topology.t
(** Random three-tier Internet-like topology: a tier-1 clique; each tier-2
    AS buys transit from 1–3 tier-1s and peers with some tier-2s; each
    stub buys from 1–2 tier-2s. Node ids are assigned densely from 0.
    Deterministic in [seed]. *)
