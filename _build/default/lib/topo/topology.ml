type node = { id : int; asn : int; name : string; private_asn : bool }

(* Adjacency stores, for node [a], the neighbor id with the neighbor's
   role *relative to a* plus the link. *)
type t = {
  nodes : (int, node) Hashtbl.t;
  mutable node_order : int list;  (* reversed insertion order *)
  adjacency : (int, (int * Relationship.t * Link.t) list ref) Hashtbl.t;
  mutable edges : int;
}

let create () =
  { nodes = Hashtbl.create 64; node_order = []; adjacency = Hashtbl.create 64; edges = 0 }

let add_node t ~id ~asn ?(private_asn = false) name =
  if Hashtbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Topology.add_node: duplicate node id %d" id);
  Hashtbl.replace t.nodes id { id; asn; name; private_asn };
  t.node_order <- id :: t.node_order;
  Hashtbl.replace t.adjacency id (ref [])

let adjacency_exn t id =
  match Hashtbl.find_opt t.adjacency id with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Topology: unknown node id %d" id)

let already_adjacent t a b =
  List.exists (fun (n, _, _) -> n = b) !(adjacency_exn t a)

let add_edge t a b rel_of_b link =
  if a = b then invalid_arg "Topology: self loop";
  if already_adjacent t a b then
    invalid_arg (Printf.sprintf "Topology: duplicate edge %d-%d" a b);
  let adj_a = adjacency_exn t a and adj_b = adjacency_exn t b in
  adj_a := !adj_a @ [ (b, rel_of_b, link) ];
  adj_b := !adj_b @ [ (a, Relationship.inverse rel_of_b, link) ];
  t.edges <- t.edges + 1

let connect t ~provider ~customer ?(link = Link.default) () =
  (* From the provider's viewpoint the neighbor is a Customer. *)
  add_edge t provider customer Relationship.Customer link

let connect_peers t a b ?(link = Link.default) () =
  add_edge t a b Relationship.Peer link

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> raise Not_found

let node_opt t id = Hashtbl.find_opt t.nodes id

let nodes t = List.rev_map (fun id -> node t id) t.node_order

let asn t id = (node t id).asn

let name t id = (node t id).name

let relationship t a b =
  match Hashtbl.find_opt t.adjacency a with
  | None -> None
  | Some adj ->
      List.find_map (fun (n, rel, _) -> if n = b then Some rel else None) !adj

let link t a b =
  match Hashtbl.find_opt t.adjacency a with
  | None -> None
  | Some adj ->
      List.find_map (fun (n, _, l) -> if n = b then Some l else None) !adj

let neighbors t id = !(adjacency_exn t id)

let degree t id = List.length (neighbors t id)

let edge_count t = t.edges

let filter_neighbors t id rel =
  List.filter_map
    (fun (n, r, _) -> if Relationship.equal r rel then Some n else None)
    (neighbors t id)

let customers t id = filter_neighbors t id Relationship.Customer

let providers t id = filter_neighbors t id Relationship.Provider

let peers_of t id = filter_neighbors t id Relationship.Peer

let is_valley_free t path =
  (* Classify each step of the traffic path: Up (customer→provider),
     Down (provider→customer) or Flat (peer). Valid = Up* Flat? Down*. *)
  let rec steps = function
    | a :: (b :: _ as rest) -> (
        match relationship t a b with
        | None -> None
        | Some rel -> (
            match steps rest with
            | None -> None
            | Some tail -> Some (rel :: tail)))
    | [ _ ] | [] -> Some []
  in
  match steps path with
  | None -> false
  | Some moves ->
      (* [rel] is the next hop's role relative to the current node:
         Provider = going up, Customer = going down, Peer = flat. *)
      let rec check ~descending ~peered = function
        | [] -> true
        | Relationship.Provider :: rest ->
            if descending || peered then false
            else check ~descending ~peered rest
        | Relationship.Peer :: rest ->
            if descending || peered then false
            else check ~descending ~peered:true rest
        | Relationship.Customer :: rest -> check ~descending:true ~peered rest
      in
      check ~descending:false ~peered:false moves

let pp ppf t =
  Format.fprintf ppf "topology: %d nodes, %d edges@." (Hashtbl.length t.nodes)
    t.edges;
  List.iter
    (fun n ->
      Format.fprintf ppf "  [%d] AS%d %s:" n.id n.asn n.name;
      List.iter
        (fun (peer, rel, _) ->
          Format.fprintf ppf " %d(%s)" peer (Relationship.to_string rel))
        (neighbors t n.id);
      Format.fprintf ppf "@.")
    (nodes t)
