(** AS-level topology graph.

    Nodes are identified by a small integer [node id] and carry an ASN
    separately: two border sites of the same provider (e.g. Vultr LA and
    Vultr NY) are distinct nodes sharing ASN 20473, exactly as in the
    paper's deployment. Edges are annotated with the business relationship
    and link properties. *)

type node = {
  id : int;
  asn : int;
  name : string;
  private_asn : bool;  (** True for customer servers on private ASNs. *)
}

type t

val create : unit -> t

val add_node : t -> id:int -> asn:int -> ?private_asn:bool -> string -> unit
(** Raises [Invalid_argument] when the id is already taken. *)

val connect :
  t -> provider:int -> customer:int -> ?link:Link.t -> unit -> unit
(** Provider–customer edge. Raises if either endpoint is unknown, the
    edge already exists, or [provider = customer]. *)

val connect_peers : t -> int -> int -> ?link:Link.t -> unit -> unit
(** Settlement-free peering edge. *)

val node : t -> int -> node
(** Raises [Not_found] for unknown ids. *)

val node_opt : t -> int -> node option
val nodes : t -> node list
(** All nodes in insertion order. *)

val asn : t -> int -> int
val name : t -> int -> string

val relationship : t -> int -> int -> Relationship.t option
(** [relationship t a b]: [b]'s role relative to [a] ([Some Customer] =
    b is a's customer), [None] when not adjacent. *)

val link : t -> int -> int -> Link.t option

val neighbors : t -> int -> (int * Relationship.t * Link.t) list
(** Adjacent node ids with the neighbor's role and the link, in edge
    insertion order (deterministic). *)

val degree : t -> int -> int
val edge_count : t -> int

val customers : t -> int -> int list
val providers : t -> int -> int list
val peers_of : t -> int -> int list

val is_valley_free : t -> int list -> bool
(** Check a node-id path (traffic direction) against Gao–Rexford: once
    the path goes down (provider→customer) or sideways (peer), it must
    keep going down. Vacuously true for paths shorter than 3. *)

val pp : Format.formatter -> t -> unit
