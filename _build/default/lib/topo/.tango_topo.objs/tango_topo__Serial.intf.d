lib/topo/serial.mli: Topology
