lib/topo/vultr.ml: Link List Printf Topology
