lib/topo/link.mli: Format
