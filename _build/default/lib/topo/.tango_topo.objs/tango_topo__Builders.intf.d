lib/topo/builders.mli: Topology
