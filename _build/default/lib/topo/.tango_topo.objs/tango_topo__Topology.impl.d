lib/topo/topology.ml: Format Hashtbl Link List Printf Relationship
