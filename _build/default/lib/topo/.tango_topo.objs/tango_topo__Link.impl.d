lib/topo/link.ml: Format
