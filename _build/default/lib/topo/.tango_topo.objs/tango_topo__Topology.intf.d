lib/topo/topology.mli: Format Link Relationship
