lib/topo/builders.ml: Array List Printf Tango_sim Topology
