lib/topo/serial.ml: Buffer Fun Hashtbl List Printf Relationship String Topology
