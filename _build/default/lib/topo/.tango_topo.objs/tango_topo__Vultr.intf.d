lib/topo/vultr.mli: Topology
