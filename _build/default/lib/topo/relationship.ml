type t = Customer | Provider | Peer

let equal a b =
  match (a, b) with
  | Customer, Customer | Provider, Provider | Peer, Peer -> true
  | (Customer | Provider | Peer), _ -> false

let to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let inverse = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer

let export_allowed ~learned_from ~exporting_to =
  match learned_from with
  | Customer -> true
  | Peer | Provider -> ( match exporting_to with Customer -> true | Peer | Provider -> false)

let base_local_pref = function Customer -> 300 | Peer -> 200 | Provider -> 100
