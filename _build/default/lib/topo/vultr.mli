(** The calibrated topology of the paper's deployment (§4, Fig. 3).

    Two Vultr datacenter border routers (LA and NY, both AS 20473, no
    private WAN between them), one Tango server behind each on a private
    ASN, and the five transit networks observed in the paper: NTT, Telia,
    GTT, Cogent and Level3. Vultr NY buys transit from NTT/Telia/GTT/
    Cogent; Vultr LA from NTT/Telia/GTT/Level3; the transits peer among
    themselves. Link delays are calibrated so the static one-way delays
    land on the paper's numbers: GTT 28 ms (best), Telia 31 ms, NTT
    36.4 ms (the BGP default, 30% worse than GTT), and ~33.5 ms for the
    two-transit Cogent / Level3 paths. *)

val vultr_asn : int

(* Node ids. *)
val vultr_la : int
val vultr_ny : int
val server_la : int
val server_ny : int
val ntt : int
val telia : int
val gtt : int
val cogent : int
val level3 : int

val transit_name : int -> string
(** Human name for a transit node id ("NTT", "Telia", ...). *)

val build : unit -> Topology.t

val vultr_neighbor_weight : int -> int
(** Vultr's per-transit preference used as a late tie-break in its route
    decision, reproducing the order the paper observed:
    NTT > Telia > GTT > (Cogent | Level3). *)

val expected_owd_ms : via:int -> float option
(** Calibrated static one-way delay server-to-server through the given
    transit (the direct paths only): NTT 36.4, Telia 31.0, GTT 28.0. *)
