lib/dataplane/seq_tracker.ml: Format Int64 Set
