lib/dataplane/clock.mli:
