lib/dataplane/ecmp.mli: Tango_net
