lib/dataplane/seq_tracker.mli: Format
