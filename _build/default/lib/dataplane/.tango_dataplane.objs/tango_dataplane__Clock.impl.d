lib/dataplane/clock.ml: Int64
