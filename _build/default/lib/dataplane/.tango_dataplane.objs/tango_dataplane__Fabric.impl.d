lib/dataplane/fabric.ml: Ecmp Float Hashtbl Option Tango_bgp Tango_net Tango_sim Tango_topo
