lib/dataplane/tunnel.mli: Clock Format Tango_net
