lib/dataplane/fabric.mli: Ecmp Tango_bgp Tango_net
