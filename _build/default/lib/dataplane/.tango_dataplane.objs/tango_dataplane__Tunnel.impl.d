lib/dataplane/tunnel.ml: Clock Format Int64 Tango_net
