lib/dataplane/ecmp.ml: Array Tango_net
