(* Missing sequence numbers are kept in a set; with 10 ms probe spacing
   and realistic loss the set stays tiny. *)
module Int64_set = Set.Make (Int64)

type t = {
  mutable next_expected : int64;
  mutable missing : Int64_set.t;
  mutable received : int;
  mutable reordered : int;
  mutable duplicates : int;
  mutable recent : float;  (* EWMA of the per-packet loss indicator *)
}

let recent_alpha = 0.05

let create () =
  {
    next_expected = 0L;
    missing = Int64_set.empty;
    received = 0;
    reordered = 0;
    duplicates = 0;
    recent = 0.0;
  }

let bump_recent t indicator =
  t.recent <- (recent_alpha *. indicator) +. ((1.0 -. recent_alpha) *. t.recent)

let observe t seq =
  if Int64.compare seq t.next_expected >= 0 then begin
    (* Every number skipped over becomes provisionally missing. *)
    let cursor = ref t.next_expected in
    while Int64.compare !cursor seq < 0 do
      t.missing <- Int64_set.add !cursor t.missing;
      bump_recent t 1.0;
      cursor := Int64.add !cursor 1L
    done;
    t.next_expected <- Int64.add seq 1L;
    t.received <- t.received + 1;
    bump_recent t 0.0
  end
  else if Int64_set.mem seq t.missing then begin
    t.missing <- Int64_set.remove seq t.missing;
    t.received <- t.received + 1;
    t.reordered <- t.reordered + 1;
    (* The provisional loss turned out to be reordering. *)
    bump_recent t (-1.0);
    if t.recent < 0.0 then t.recent <- 0.0
  end
  else t.duplicates <- t.duplicates + 1

let received t = t.received

let lost t = Int64_set.cardinal t.missing

let reordered t = t.reordered

let duplicates t = t.duplicates

let recent_loss_rate t = t.recent

let loss_rate t =
  let total = t.received + lost t in
  if total = 0 then 0.0 else float_of_int (lost t) /. float_of_int total

let pp ppf t =
  Format.fprintf ppf "rx=%d lost=%d reordered=%d dup=%d" t.received (lost t)
    t.reordered t.duplicates
