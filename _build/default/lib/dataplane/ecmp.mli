(** ECMP lane selection inside transit networks.

    Real backbones spread flows over parallel internal paths by hashing
    the 5-tuple. Tango's tunnels pin the outer 5-tuple precisely so that
    all packets of a tunnel ride one lane; raw host traffic hashes per
    flow and lands on different lanes — which is why non-tunneled
    measurement conflates several paths into one noisy series (§3,
    ablated in experiment E7). *)

type lanes = float array
(** Additional per-lane delay offsets in ms; index 0 is the fastest. *)

val uniform_lanes : count:int -> spread_ms:float -> lanes
(** [count] lanes at offsets [0, spread, 2*spread, ...]. *)

val select : lanes -> salt:int -> Tango_net.Flow.t -> int
(** Deterministic lane index for a flow at a node ([salt] decorrelates
    nodes). *)

val lane_delay_ms : lanes -> salt:int -> Tango_net.Flow.t -> float
