type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  reservoir : float array;
  reservoir_cap : int;
  mutable reservoir_n : int;
  rng : Rng.t;
}

let create ?(reservoir = 4096) ?(seed = 7) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    reservoir = Array.make (max reservoir 1) 0.0;
    reservoir_cap = reservoir;
    reservoir_n = 0;
    rng = Rng.create ~seed;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  if t.reservoir_cap > 0 then
    if t.reservoir_n < t.reservoir_cap then begin
      t.reservoir.(t.reservoir_n) <- x;
      t.reservoir_n <- t.reservoir_n + 1
    end
    else begin
      (* Vitter's algorithm R: keep each element with probability cap/n. *)
      let j = Rng.int t.rng t.n in
      if j < t.reservoir_cap then t.reservoir.(j) <- x
    end

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = t.min_v

let max_value t = t.max_v

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  if t.reservoir_n = 0 then nan
  else begin
    let sample = Array.sub t.reservoir 0 t.reservoir_n in
    Array.sort Float.compare sample;
    let pos = q *. float_of_int (t.reservoir_n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sample.(lo)
    else begin
      let w = pos -. float_of_int lo in
      ((1.0 -. w) *. sample.(lo)) +. (w *. sample.(hi))
    end
  end

let merge a b =
  let t = create ~reservoir:(max a.reservoir_cap b.reservoir_cap) () in
  let feed src =
    (* Reconstruct moments exactly via Chan's parallel update. *)
    if src.n > 0 then begin
      let n_a = float_of_int t.n and n_b = float_of_int src.n in
      let delta = src.mean -. t.mean in
      let n_ab = n_a +. n_b in
      let mean = t.mean +. (delta *. n_b /. n_ab) in
      let m2 = t.m2 +. src.m2 +. (delta *. delta *. n_a *. n_b /. n_ab) in
      t.n <- t.n + src.n;
      t.mean <- mean;
      t.m2 <- m2;
      if src.min_v < t.min_v then t.min_v <- src.min_v;
      if src.max_v > t.max_v then t.max_v <- src.max_v
    end;
    for i = 0 to src.reservoir_n - 1 do
      if t.reservoir_cap > 0 then
        if t.reservoir_n < t.reservoir_cap then begin
          t.reservoir.(t.reservoir_n) <- src.reservoir.(i);
          t.reservoir_n <- t.reservoir_n + 1
        end
        else begin
          let j = Rng.int t.rng (t.reservoir_n + i + 1) in
          if j < t.reservoir_cap then t.reservoir.(j) <- src.reservoir.(i)
        end
    done
  in
  feed a;
  feed b;
  t

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize (t : t) =
  {
    n = t.n;
    mean = mean t;
    stddev = stddev t;
    min = min_value t;
    max = max_value t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4f std=%.4f min=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f"
    s.n s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
