lib/sim/heap.mli:
