lib/sim/rng.mli:
