(** Deterministic pseudo-random number generation for simulations.

    The generator is SplitMix64: fast, statistically solid for simulation
    purposes, and — crucially for reproducible experiments — splittable, so
    that independent subsystems can draw from independent streams derived
    from a single seed without sharing mutable state ordering. *)

type t
(** A mutable generator. Two generators created with the same seed produce
    identical streams. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Any integer seed is valid. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new generator whose stream is (for simulation
    purposes) independent of [t]'s future stream. [t] advances. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mean:float -> std:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1. /. rate]). *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto deviate, [>= scale]; heavy-tailed for spike magnitudes. *)

val choice : t -> 'a array -> 'a
(** Uniform pick from a non-empty array. Raises [Invalid_argument] on
    an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
