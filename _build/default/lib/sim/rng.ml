type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: state advances by the golden gamma, the
   mixed value is returned. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniformly random mantissa bits. *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mean ~std =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (std *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  -.log (draw ()) /. rate

let pareto t ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then
    invalid_arg "Rng.pareto: scale and shape must be positive";
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  scale /. (draw () ** (1.0 /. shape))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
