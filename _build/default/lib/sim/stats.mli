(** Streaming statistics.

    All accumulators run in O(1) memory (plus a bounded reservoir for
    quantiles), so eight simulated days of 10 ms samples cost nothing. *)

type t
(** Welford accumulator with min/max and an optional quantile reservoir. *)

val create : ?reservoir:int -> ?seed:int -> unit -> t
(** [create ~reservoir ()] keeps a uniform sample of up to [reservoir]
    observations (default 4096; [0] disables quantiles). *)

val add : t -> float -> unit
(** Feed one observation. *)

val count : t -> int
val mean : t -> float
(** Mean of observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    reservoir. [nan] when empty or when the reservoir is disabled. *)

val merge : t -> t -> t
(** Combine two accumulators (reservoirs are concatenated then trimmed). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : t -> summary
val pp_summary : Format.formatter -> summary -> unit
