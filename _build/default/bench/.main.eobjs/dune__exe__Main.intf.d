bench/main.mli:
