bench/micro.ml: Analyze Bechamel Benchmark Bytes Float Hashtbl Instance Int64 List Measure Printf Staged String Tango_bgp Tango_dataplane Tango_net Tango_sim Tango_telemetry Test Time Toolkit
