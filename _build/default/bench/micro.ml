(* Bechamel microbenchmarks for the per-packet hot paths: what a real
   Tango switch/eBPF program executes on every packet. *)

open Bechamel
open Toolkit

let ipv6 = Tango_net.Ipv6.of_string_exn "2001:db8:4000::1"

let ipv6_b = Tango_net.Ipv6.of_string_exn "2001:db8:4010::1"

let flow =
  Tango_net.Flow.v
    ~src:(Tango_net.Addr.V6 ipv6)
    ~dst:(Tango_net.Addr.V6 ipv6_b)
    ~proto:17 ~src_port:40000 ~dst_port:4789

let tango_header =
  { Tango_net.Packet.timestamp_ns = 123456789L; seq = 42L; path_id = 2; flags = 0 }

let payload = Bytes.make 512 'x'

let frame =
  Tango_net.Wire.encode_tunnel ~outer_src:ipv6 ~outer_dst:ipv6_b ~udp_src:40000
    ~udp_dst:4789 ~tango:tango_header payload

let test_encode =
  Test.make ~name:"wire.encode_tunnel (512B)"
    (Staged.stage (fun () ->
         ignore
           (Tango_net.Wire.encode_tunnel ~outer_src:ipv6 ~outer_dst:ipv6_b
              ~udp_src:40000 ~udp_dst:4789 ~tango:tango_header payload)))

let test_decode =
  Test.make ~name:"wire.decode_tunnel (512B)"
    (Staged.stage (fun () -> ignore (Tango_net.Wire.decode_tunnel frame)))

let test_hash =
  Test.make ~name:"flow.hash_5tuple"
    (Staged.stage (fun () -> ignore (Tango_net.Flow.hash_5tuple flow)))

let test_rolling =
  let rolling = Tango_telemetry.Rolling.create ~window_s:1.0 in
  let clock = ref 0.0 in
  Test.make ~name:"rolling.add (1s window @100Hz)"
    (Staged.stage (fun () ->
         clock := !clock +. 0.01;
         Tango_telemetry.Rolling.add rolling ~time:!clock 28.0))

let test_jitter =
  let jitter = Tango_telemetry.Jitter.create () in
  let clock = ref 0.0 in
  Test.make ~name:"jitter.add"
    (Staged.stage (fun () ->
         clock := !clock +. 0.01;
         Tango_telemetry.Jitter.add jitter ~time:!clock 28.0))

let test_tracker =
  let tracker = Tango_dataplane.Seq_tracker.create () in
  let seq = ref 0L in
  Test.make ~name:"seq_tracker.observe"
    (Staged.stage (fun () ->
         Tango_dataplane.Seq_tracker.observe tracker !seq;
         seq := Int64.add !seq 1L))

let test_heap =
  let heap = Tango_sim.Heap.create ~cmp:Float.compare in
  let rng = Tango_sim.Rng.create ~seed:1 in
  Test.make ~name:"heap push+pop"
    (Staged.stage (fun () ->
         Tango_sim.Heap.push heap (Tango_sim.Rng.float rng 1.0);
         ignore (Tango_sim.Heap.pop heap)))

let test_rng =
  let rng = Tango_sim.Rng.create ~seed:2 in
  Test.make ~name:"rng.gaussian"
    (Staged.stage (fun () -> ignore (Tango_sim.Rng.gaussian rng ~mean:0.0 ~std:1.0)))

let siphash_key = Tango_net.Siphash.key 0x0706050403020100L 0x0f0e0d0c0b0a0908L

let siphash_message = Bytes.make 56 '\x42'

let test_siphash =
  Test.make ~name:"siphash-2-4 (56B shim message)"
    (Staged.stage (fun () -> ignore (Tango_net.Siphash.mac siphash_key siphash_message)))

let auth_frame =
  Tango_net.Wire.encode_tunnel ~auth_key:siphash_key ~outer_src:ipv6
    ~outer_dst:ipv6_b ~udp_src:40000 ~udp_dst:4789 ~tango:tango_header payload

let test_auth_decode =
  Test.make ~name:"wire.decode_tunnel authenticated (512B)"
    (Staged.stage (fun () ->
         ignore (Tango_net.Wire.decode_tunnel ~auth_key:siphash_key auth_frame)))

let test_decision =
  let route i =
    Tango_bgp.Route.make
      ~prefix:(Tango_net.Prefix.of_string_exn "2001:db8::/48")
      ~path:(Tango_bgp.As_path.of_list [ 2914 + i; 20473 ])
      ~next_hop:i ~learned_from:i ()
  in
  let candidates = List.init 8 route in
  Test.make ~name:"bgp decision (8 candidates)"
    (Staged.stage (fun () -> ignore (Tango_bgp.Decision.best candidates)))

let all_tests =
  Test.make_grouped ~name:"tango"
    [
      test_encode;
      test_decode;
      test_siphash;
      test_auth_decode;
      test_hash;
      test_rolling;
      test_jitter;
      test_tracker;
      test_heap;
      test_rng;
      test_decision;
    ]

let run () =
  Printf.printf "\n=== Microbenchmarks (ns per operation, OLS fit) ===\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-36s %10.1f ns/op\n" name est
      | Some ests ->
          Printf.printf "  %-36s %s\n" name
            (String.concat " " (List.map (Printf.sprintf "%.1f") ests))
      | None -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
