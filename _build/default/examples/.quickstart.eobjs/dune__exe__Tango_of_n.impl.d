examples/tango_of_n.ml: Array Discovery Float List Mesh Overlay Printf String Tango Tango_bgp Tango_net Tango_sim Tango_topo
