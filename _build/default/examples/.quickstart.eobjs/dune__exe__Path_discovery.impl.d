examples/path_discovery.ml: List Printf String Tango_bgp Tango_net Tango_sim Tango_topo
