examples/drone_analytics.ml: Pair Policy Pop Printf Tango Tango_sim Tango_telemetry Tango_workload
