examples/path_discovery.mli:
