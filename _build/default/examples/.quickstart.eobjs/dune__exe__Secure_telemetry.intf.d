examples/secure_telemetry.mli:
