examples/quickstart.ml: Discovery List Option Pair Pop Printf Tango Tango_sim Tango_telemetry Tango_workload
