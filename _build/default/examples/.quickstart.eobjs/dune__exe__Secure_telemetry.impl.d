examples/secure_telemetry.ml: Bytes Int64 Printf Tango_net
