examples/drone_analytics.mli:
