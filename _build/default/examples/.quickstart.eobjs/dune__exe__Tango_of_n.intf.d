examples/tango_of_n.mli:
