examples/quickstart.mli:
