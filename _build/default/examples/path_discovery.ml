(* A walkthrough of the paper's §4.1 discovery procedure at the raw BGP
   level: announce, observe the AS path at the far end, attach a
   community suppressing the provider's export to the transit adjacent to
   the origin, wait for reconvergence, repeat — until the prefix becomes
   unreachable.

   This is the same loop `Tango.Discovery.run` automates; here every BGP
   step is spelled out so the mechanics are visible.

   Run with: dune exec examples/path_discovery.exe *)

module Engine = Tango_sim.Engine
module Network = Tango_bgp.Network
module Community = Tango_bgp.Community
module As_path = Tango_bgp.As_path
module Vultr = Tango_topo.Vultr
module Prefix = Tango_net.Prefix

let vultr_overrides (node : Tango_topo.Topology.node) =
  if node.Tango_topo.Topology.id = Vultr.vultr_la
     || node.Tango_topo.Topology.id = Vultr.vultr_ny
  then
    { Network.no_overrides with neighbor_weight = Some Vultr.vultr_neighbor_weight }
  else Network.no_overrides

let () =
  print_endline "Manual path discovery (the paper's three-step procedure)";
  print_endline "=========================================================";
  let topo = Vultr.build () in
  let engine = Engine.create () in
  let net = Network.create ~configure:vultr_overrides topo engine in
  let prefix = Prefix.of_string_exn "2001:db8:4063::/48" in

  (* Step 1: the NY server establishes its eBGP session and propagates an
     advertisement through Vultr (already wired into the topology); we
     originate the probe prefix there. *)
  Printf.printf "\nStep 1: NY server announces %s through Vultr (AS %d)\n"
    (Prefix.to_string prefix) Vultr.vultr_asn;

  (* Steps 2-3, iterated. *)
  let suppressed = ref [] in
  let stop = ref false in
  let iteration = ref 0 in
  while not !stop do
    incr iteration;
    let communities =
      Community.Set.of_list
        (List.map
           (fun asn -> Community.action_to_community (Community.No_export_to asn))
           !suppressed)
    in
    Network.announce net ~node:Vultr.server_ny prefix ~communities ();
    let elapsed = Network.converge net in
    Printf.printf "\nIteration %d (BGP reconverged in %.1fs virtual time)\n"
      !iteration elapsed;
    if !suppressed <> [] then
      Printf.printf "  communities attached: %s\n"
        (String.concat ", "
           (List.map
              (fun asn ->
                Community.to_string
                  (Community.action_to_community (Community.No_export_to asn)))
              !suppressed));
    match Network.as_path net ~node:Vultr.server_la prefix with
    | None ->
        Printf.printf "  LA server: prefix UNREACHABLE -> discovery complete\n";
        stop := true
    | Some path ->
        Printf.printf "  LA server observes AS path: [%s]\n" (As_path.to_string path);
        let transits =
          List.filter (fun a -> a <> Vultr.vultr_asn) (As_path.to_list path)
        in
        Printf.printf "  transit sequence: %s\n"
          (String.concat " -> " (List.map Vultr.transit_name transits));
        (match As_path.neighbor_of_origin path with
        | Some next when not (List.mem next !suppressed) ->
            Printf.printf
              "  next: tell Vultr NY not to export to %s (community %s)\n"
              (Vultr.transit_name next)
              (Community.to_string
                 (Community.action_to_community (Community.No_export_to next)));
            suppressed := !suppressed @ [ next ]
        | Some _ | None -> stop := true)
  done;
  Printf.printf
    "\n%d paths exposed between the two sites; each becomes a /48 + tunnel.\n"
    (!iteration - 1)
