(* §6's "From Tango of 2 to Tango of N": pairwise Tango deployments as
   the building blocks of a RON-like overlay. Three sites — LA, NY and a
   Chicago site whose only direct transit to LA takes a long detour —
   and the overlay planner decides where one-hop relaying pays off.

   Run with: dune exec examples/tango_of_n.exe *)

open Tango
module Engine = Tango_sim.Engine
module Network = Tango_bgp.Network
module Vultr = Tango_topo.Vultr
module Prefix = Tango_net.Prefix

let vultr_overrides (node : Tango_topo.Topology.node) =
  if node.Tango_topo.Topology.id = Vultr.vultr_la
     || node.Tango_topo.Topology.id = Vultr.vultr_ny
  then
    { Network.no_overrides with neighbor_weight = Some Vultr.vultr_neighbor_weight }
  else Network.no_overrides

let () =
  print_endline "Tango of N: relaying over pairwise deployments";
  print_endline "==============================================";
  let topo = Overlay.Triangle.build () in
  let engine = Engine.create () in
  let net = Network.create ~configure:vultr_overrides topo engine in
  Overlay.Triangle.announce_hosts net;
  let servers = [| Vultr.server_la; Vultr.server_ny; Overlay.Triangle.server_chi |] in
  let names = [| "LA"; "NY"; "CHI" |] in

  (* Every ordered pair runs full Tango discovery and keeps its best
     exposed path. *)
  let best = Array.make_matrix 3 3 infinity in
  for s = 0 to 2 do
    for d = 0 to 2 do
      if s <> d then begin
        let r =
          Discovery.run ~net ~origin:servers.(d) ~observer:servers.(s)
            ~probe_prefix:(Prefix.of_string_exn "2001:db8:4c00::/48")
            ()
        in
        Printf.printf "%s -> %s: %d paths exposed (%s)\n" names.(s) names.(d)
          (List.length r.Discovery.paths)
          (String.concat ", "
             (List.map (fun p -> p.Discovery.label) r.Discovery.paths));
        best.(s).(d) <-
          List.fold_left
            (fun acc (p : Discovery.path) -> Float.min acc p.Discovery.floor_owd_ms)
            infinity r.Discovery.paths
      end
    done
  done;

  print_endline "\nOverlay plan (one-hop relaying allowed):";
  let plans =
    Overlay.plan_routes ~owd_ms:(fun ~src ~dst -> best.(src).(dst)) ~sites:3 ()
  in
  List.iter
    (fun (p : Overlay.plan) ->
      let route =
        match p.Overlay.route with
        | Overlay.Direct -> "direct"
        | Overlay.Relay hops ->
            "via " ^ String.concat "," (List.map (fun i -> names.(i)) hops)
      in
      Printf.printf "  %-3s -> %-3s %-10s %6.1f ms  (saves %.1f ms)\n"
        names.(p.Overlay.src) names.(p.Overlay.dst) route p.Overlay.owd_ms
        (Overlay.gain_ms p))
    plans;

  (* And now live: a full three-site mesh with measurement, planning and
     actual relay forwarding in the data plane. *)
  print_endline "\nLive mesh (10 s of measurement, then 200 CHI->LA packets):";
  let mesh = Mesh.setup_triangle () in
  Mesh.start_measurement mesh ~for_s:10.0 ();
  Mesh.run_for mesh 5.0;
  Mesh.plan_routes mesh;
  for _ = 1 to 200 do
    Mesh.send_app mesh ~src:2 ~dst:0 ()
  done;
  Mesh.run_for mesh 6.0;
  let lat = Mesh.app_latency_at mesh ~site:0 in
  Printf.printf
    "  delivered %d/200 at LA, relayed through NY: %d, p50 end-to-end %.1f ms\n"
    (Mesh.app_received_at mesh ~site:0)
    (Mesh.transited_at mesh ~site:1)
    (lat.Tango_sim.Stats.p50 *. 1000.0);
  Printf.printf "  (the direct CHI->LA transit would take %.1f ms)\n" best.(2).(0)
