(* Quickstart: bring up a two-site Tango deployment (the paper's Vultr
   LA/NY prototype), discover the wide-area paths, measure them with live
   traffic for ten seconds, and route an application over the best one.

   Run with: dune exec examples/quickstart.exe *)

open Tango
module Series = Tango_telemetry.Series

let () =
  print_endline "Tango quickstart";
  print_endline "================";

  (* 1. One call performs BGP bring-up, Fig-3-style path discovery in
     both directions, per-path prefix announcements and tunnel setup. *)
  let pair = Pair.setup_vultr () in
  Printf.printf "\nDiscovered paths LA -> NY:\n";
  List.iter
    (fun (p : Discovery.path) ->
      Printf.printf "  path %d: %-7s (static floor %.1f ms)\n" p.Discovery.index
        p.Discovery.label p.Discovery.floor_owd_ms)
    (Pair.paths_to_ny pair);

  (* 2. Start the measurement plane: 10 ms probe trains on every path in
     both directions, plus the cooperative feedback reports. *)
  Pair.start_measurement pair ~for_s:10.0 ();

  (* 3. Send application traffic while measuring; the default policy
     (lowest smoothed one-way delay with hysteresis) picks the path. *)
  let la = Pair.pop_la pair in
  let engine = Pair.engine pair in
  let t0 = Tango_sim.Engine.now engine in
  Tango_workload.Traffic.periodic engine ~interval_s:0.05 ~until_s:(t0 +. 10.0)
    (fun _ -> ignore (Pop.send_app la ()));
  Pair.run_for pair 11.0;

  (* 4. Inspect what the receiving side measured, per path. *)
  let ny = Pair.pop_ny pair in
  Printf.printf "\nOne-way delay measured at NY (ms, clock-offset included):\n";
  Printf.printf "  %-8s %8s %8s %8s %10s\n" "path" "mean" "p99" "jitter" "samples";
  for path = 0 to Pop.path_count la - 1 do
    let s = Series.stats (Pop.inbound_owd_series ny ~path) in
    Printf.printf "  %-8s %8.2f %8.2f %8.4f %10d\n"
      (Pop.path_label la path) s.Tango_sim.Stats.mean s.Tango_sim.Stats.p99
      (Pop.inbound_jitter_ms ny ~path)
      s.Tango_sim.Stats.n
  done;

  let app = Series.stats (Pop.app_latency_series ny) in
  Printf.printf
    "\nApplication traffic: %d packets, median end-to-end latency %.1f ms\n"
    (Pop.app_received ny)
    (app.Tango_sim.Stats.p50 *. 1000.0);
  let settled =
    int_of_float (Option.value ~default:0.0 (Series.last_value (Pop.chosen_path_series la)))
  in
  Printf.printf "Policy settled on path %d (%s), switching %d time(s)\n" settled
    (Pop.path_label la settled)
    (Pop.policy_switches la)
