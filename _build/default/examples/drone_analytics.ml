(* The paper's §2 motivating scenario: AS X runs real-time analytics on
   drone data in VMs inside cloud AS Y; occasional wide-area delay spikes
   break the adaptive control loop. With Tango, the drone traffic dodges
   the route change and instability episodes.

   We model the control loop with a latency deadline: a control update
   that takes more than 40 ms end-to-end (or is stalled behind a slow
   packet by TCP-style in-order delivery) is a missed tick.

   Run with: dune exec examples/drone_analytics.exe *)

open Tango
module Engine = Tango_sim.Engine
module Series = Tango_telemetry.Series
module Stats = Tango_sim.Stats

let deadline_s = 0.040

let run_with ~name ~policy =
  (* Fig. 4 dynamics, compressed onto 120 s: one GTT route change and
     one GTT instability window. Drone telemetry flows NY -> LA. *)
  let scenario = Tango_workload.Fig4.create ~horizon_s:120.0 () in
  let pair =
    Pair.setup_vultr ~seed:7 ~scenario ~policy_ny:policy ~clock_offset_la_ns:0L
      ~clock_offset_ny_ns:0L ()
  in
  let engine = Pair.engine pair in
  let ny = Pair.pop_ny pair in
  let la = Pair.pop_la pair in
  let t0 = Engine.now engine in
  Pair.start_measurement pair ~probe_interval_s:0.02 ~for_s:120.0 ();
  (* 50 Hz control updates, small payloads. *)
  Tango_workload.Traffic.periodic engine ~interval_s:0.02 ~until_s:(t0 +. 120.0)
    (fun _ -> ignore (Pop.send_app ny ~payload_bytes:128 ()));
  Pair.run_for pair 121.0;
  let latency = Pop.app_latency_series la in
  let missed =
    Series.fold latency ~init:0 ~f:(fun acc ~time:_ ~value ->
        if value > deadline_s then acc + 1 else acc)
  in
  let stats = Series.stats latency in
  let hol = Stats.summarize (Pop.app_inorder_extra la) in
  Printf.printf
    "  %-22s mean %5.1f ms   p99 %5.1f ms   missed ticks %4d/%d   max HoL stall %5.1f ms\n"
    name
    (stats.Stats.mean *. 1000.0)
    (stats.Stats.p99 *. 1000.0)
    missed (Series.length latency)
    (hol.Stats.max *. 1000.0)

let () =
  print_endline "Drone analytics over the wide area (the paper's motivating app)";
  print_endline "===============================================================";
  Printf.printf "control-loop deadline: %.0f ms\n\n" (deadline_s *. 1000.0);
  run_with ~name:"status quo (BGP only)" ~policy:Policy.Bgp_default;
  run_with ~name:"pin fastest path" ~policy:(Policy.Static 2);
  run_with ~name:"Tango adaptive"
    ~policy:(Policy.Jitter_aware { beta = 5.0; hysteresis_ms = 1.0; min_dwell_s = 2.0 });
  print_endline "\nTango's live one-way measurements let the control traffic leave a";
  print_endline "path during its bad episodes and come back afterwards."
