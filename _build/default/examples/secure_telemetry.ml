(* §6 "wide-area, efficient & trustworthy telemetry": an on-path attacker
   who can rewrite packets would love to fake path performance — e.g.
   rewrite Tango timestamps so a path it controls looks fast. The
   reproduction's wire format supports a SipHash-2-4 authenticated shim
   under a key shared by the two cooperating edges; this example shows
   the attack succeeding against the plain shim and failing against the
   authenticated one.

   Run with: dune exec examples/secure_telemetry.exe *)

module Wire = Tango_net.Wire
module Siphash = Tango_net.Siphash
module Ipv6 = Tango_net.Ipv6
module Packet = Tango_net.Packet

let src = Ipv6.of_string_exn "2001:db8:4000::1"

let dst = Ipv6.of_string_exn "2001:db8:4010::1"

let key = Siphash.key_of_string "tango shared key" (* 16 bytes *)

(* The attacker rewrites the embedded timestamp (claiming the packet was
   sent later, i.e. the path is faster than it is) and repairs the UDP
   checksum, which needs no key. *)
let attack frame =
  let tampered = Bytes.copy frame in
  (* Timestamp lives at offset 48 (40 IPv6 + 8 UDP). Add ~16 ms. *)
  let read_u64 off =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Bytes.get_uint8 tampered (off + i)))
    done;
    !v
  in
  let write_u64 off v =
    for i = 0 to 7 do
      Bytes.set_uint8 tampered (off + i)
        (Int64.to_int (Int64.shift_right_logical v ((7 - i) * 8)) land 0xFF)
    done
  in
  write_u64 48 (Int64.add (read_u64 48) 16_000_000L);
  (* Repair the checksum like any on-path middlebox could. *)
  let udp_len = Bytes.length tampered - 40 in
  let udp = Bytes.sub tampered 40 udp_len in
  Bytes.set_uint8 udp 6 0;
  Bytes.set_uint8 udp 7 0;
  let s = Ipv6.make (read_u64 8) (read_u64 16)
  and d = Ipv6.make (read_u64 24) (read_u64 32) in
  let sum = Wire.udp_checksum ~src:s ~dst:d ~udp in
  Bytes.set_uint8 tampered 46 (sum lsr 8);
  Bytes.set_uint8 tampered 47 (sum land 0xFF);
  tampered

let tango = { Packet.timestamp_ns = 1_000_000_000L; seq = 7L; path_id = 2; flags = 0 }

let payload = Bytes.of_string "drone control update"

let () =
  print_endline "Trustworthy telemetry (§6 future work)";
  print_endline "======================================";

  print_endline "\n1. Plain Tango shim:";
  let plain =
    Wire.encode_tunnel ~outer_src:src ~outer_dst:dst ~udp_src:40002
      ~udp_dst:4789 ~tango payload
  in
  (match Wire.decode_tunnel (attack plain) with
  | Ok (_, _, t, _) ->
      Printf.printf
        "   attacker shifted the timestamp by %+.1f ms and the receiver accepted it\n"
        (Int64.to_float (Int64.sub t.Packet.timestamp_ns tango.Packet.timestamp_ns)
        /. 1e6);
      print_endline "   -> the path now measures ~16 ms faster than reality"
  | Error e -> Printf.printf "   unexpectedly rejected: %s\n" e);

  print_endline "\n2. Authenticated shim (SipHash-2-4 over addresses, ports and shim):";
  let authed =
    Wire.encode_tunnel ~auth_key:key ~outer_src:src ~outer_dst:dst
      ~udp_src:40002 ~udp_dst:4789 ~tango payload
  in
  (match Wire.decode_tunnel ~auth_key:key authed with
  | Ok _ -> print_endline "   legitimate frame verifies"
  | Error e -> Printf.printf "   BUG: legitimate frame rejected: %s\n" e);
  (match Wire.decode_tunnel ~auth_key:key (attack authed) with
  | Ok _ -> print_endline "   BUG: forged frame accepted"
  | Error e -> Printf.printf "   forged frame rejected: %s\n" e);

  print_endline "\n3. Downgrade attempt (strip the auth flag):";
  (match Wire.decode_tunnel ~auth_key:key plain with
  | Ok _ -> print_endline "   BUG: unauthenticated frame accepted"
  | Error e -> Printf.printf "   rejected: %s\n" e);

  print_endline
    "\nCost: one 64-bit MAC over 56 bytes per packet (see the microbenchmarks:\n\
     ~100 ns on this substrate), 8 extra shim bytes on the wire."
