(* Bench-regression gate.

   Usage:
     dune exec bench/compare.exe -- BENCH_baseline.json BENCH.json
     dune exec bench/compare.exe -- --tolerance 0.25 baseline.json current.json

   Reads two microbenchmark result files in the BENCH.json schema
   (EXPERIMENTS.md) and exits non-zero when, for any benchmark present
   in both files,

     - ns/op regressed by more than the tolerance (default 25%), or
     - major-heap words/op went from (effectively) zero in the baseline
       to non-zero now — the zero-allocation fast path grew a leak, or
     - pps (throughput pipeline rows; higher is better) dropped by more
       than 15% against the baseline.

   Benchmarks present in only one file are reported but never fail the
   gate, so adding or retiring benchmarks does not require regenerating
   the baseline in the same commit. *)

module Json = Tango_obs.Json

type row = { ns : float option; major : float option; pps : float option }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let rows_of_file path =
  let json =
    match Json.parse (read_file path) with
    | v -> v
    | exception Json.Parse_error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
  in
  let results =
    match Json.member "results" json with
    | Some (Json.List l) -> l
    | _ ->
        Printf.eprintf "%s: no \"results\" array\n" path;
        exit 2
  in
  List.filter_map
    (fun entry ->
      match Json.string_opt (Json.member "name" entry) with
      | Some name ->
          Some
            ( name,
              {
                ns = Json.number_opt (Json.member "ns_per_op" entry);
                major = Json.number_opt (Json.member "major_words_per_op" entry);
                pps = Json.number_opt (Json.member "pps" entry);
              } )
      | None -> None)
    results

(* OLS fits on sub-ns ops can come out slightly negative; clamp so the
   ratio test is meaningful. Below this floor a benchmark is treated as
   free and never regresses. *)
let ns_floor = 0.5

(* Noise floor for the major-words gate: a baseline at or under this is
   "zero-allocation", and staying under it is a pass. *)
let major_epsilon = 0.01

(* Allowed fractional pps drop for throughput rows (higher is better). *)
let pps_tolerance = 0.15

let () =
  let tolerance = ref 0.25 in
  let paths = ref [] in
  let spec =
    [
      ( "--tolerance",
        Arg.Set_float tolerance,
        "FRAC  allowed fractional ns/op regression (default 0.25)" );
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "bench regression gate: compare.exe [--tolerance FRAC] BASELINE CURRENT";
  let baseline_path, current_path =
    match List.rev !paths with
    | [ b; c ] -> (b, c)
    | _ ->
        Printf.eprintf "usage: compare.exe [--tolerance FRAC] BASELINE CURRENT\n";
        exit 2
  in
  let baseline = rows_of_file baseline_path in
  let current = rows_of_file current_path in
  let failures = ref 0 in
  let compared = ref 0 in
  Printf.printf "bench gate: %s vs %s (tolerance %.0f%%)\n" baseline_path
    current_path (100.0 *. !tolerance);
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name current with
      | None -> Printf.printf "  ~ %-45s only in baseline (skipped)\n" name
      | Some cur -> (
          incr compared;
          (match (base.ns, cur.ns) with
          | Some b, Some c ->
              let b = Float.max b ns_floor and c = Float.max c ns_floor in
              let ratio = c /. b in
              if ratio > 1.0 +. !tolerance then begin
                incr failures;
                Printf.printf "  ! %-45s ns/op %8.1f -> %8.1f  (%+.0f%%)\n" name
                  b c
                  ((ratio -. 1.0) *. 100.0)
              end
              else
                Printf.printf "  . %-45s ns/op %8.1f -> %8.1f  (%+.0f%%)\n" name
                  b c
                  ((ratio -. 1.0) *. 100.0)
          | _ -> Printf.printf "  ~ %-45s no ns/op estimate\n" name);
          (match (base.major, cur.major) with
          | Some b, Some c when Float.abs b <= major_epsilon && c > major_epsilon
            ->
              incr failures;
              Printf.printf
                "  ! %-45s major words/op %.3f -> %.3f (was zero-alloc)\n" name
                b c
          | _ -> ());
          (* Throughput rows: higher is better; gate on a >15% drop. A
             pps field present on only one side (schema drift, or a
             BENCH.json produced by an older harness) is reported but
             never gated, like a benchmark present in only one file. *)
          match (base.pps, cur.pps) with
          | Some b, Some c when b > 0.0 ->
              let ratio = c /. b in
              if ratio < 1.0 -. pps_tolerance then begin
                incr failures;
                Printf.printf "  ! %-45s pps %11.0f -> %11.0f  (%+.0f%%)\n" name
                  b c
                  ((ratio -. 1.0) *. 100.0)
              end
              else
                Printf.printf "  . %-45s pps %11.0f -> %11.0f  (%+.0f%%)\n" name
                  b c
                  ((ratio -. 1.0) *. 100.0)
          | Some _, None ->
              Printf.printf "  ~ %-45s pps only in baseline (not gated)\n" name
          | None, Some _ ->
              Printf.printf "  ~ %-45s pps only in current (not gated)\n" name
          | _ -> ()))
    baseline;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "  ~ %-45s new benchmark (not gated)\n" name)
    current;
  (* Relational gates, evaluated within the CURRENT file so machine
     speed cancels out: attestation verification must stay within its
     budget relative to the plain codec it rides on (E17's
     bounded-verify-cost gate). Rows missing from the current file are
     skipped, like absent benchmarks above. *)
  List.iter
    (fun (num_name, den_name, limit) ->
      match (List.assoc_opt num_name current, List.assoc_opt den_name current) with
      | Some { ns = Some n; _ }, Some { ns = Some d; _ } ->
          incr compared;
          let n = Float.max n ns_floor and d = Float.max d ns_floor in
          let ratio = n /. d in
          if ratio > limit then begin
            incr failures;
            Printf.printf "  ! %-45s %.2fx of %s (limit %.1fx)\n" num_name ratio
              den_name limit
          end
          else
            Printf.printf "  . %-45s %.2fx of %s (limit %.1fx)\n" num_name ratio
              den_name limit
      | _ -> ())
    [
      ( "tango/mesh.attest.verify (4 hops)",
        "tango/mesh.segment decode_into (4 hops)",
        2.0 );
    ];
  if !failures > 0 then begin
    Printf.printf "FAIL: %d regression(s) across %d compared benchmarks\n"
      !failures !compared;
    exit 1
  end
  else Printf.printf "OK: %d benchmarks within tolerance\n" !compared
